module Json = Sb_util.Json
module Stats = Sb_util.Stats
module Tablefmt = Sb_util.Tablefmt

type cell = {
  experiment : string;
  engine : string;
  arch : string;
  cell : string;
  iters : int;
  repeats : int;
  seconds : float;
  mean_seconds : float;
  samples : float list;
  kernel_insns : int;
  perf : (string * int) list;
  status : string;
}

(* "retried n" cells carry real measurements — the flakiness was upstream
   of the numbers — so they compare like "ok"; terminal failures
   ("failed"/"timeout"/"quarantined") carry nan placeholders and must
   never reach the classifier *)
let ok_status s =
  s = "ok" || (String.length s >= 7 && String.sub s 0 7 = "retried")

type run = { source : string; cells : cell list }

let default_threshold = 0.05

(* ------------------------------------------------------------------ *)
(* Classification                                                       *)
(* ------------------------------------------------------------------ *)

type verdict = Regressed | Improved | Unchanged

type note = Confirmed | Below_threshold | Within_noise

type comparison = {
  c_old : cell;
  c_new : cell;
  c_delta : float;
  c_ci_old : float * float;
  c_ci_new : float * float;
  c_verdict : verdict;
  c_note : note;
  c_insns_changed : bool;
}

let classify ~threshold ~old_cell ~new_cell =
  let delta =
    Stats.relative_change ~baseline:old_cell.seconds new_cell.seconds
  in
  let ci_old = Stats.ci95 old_cell.samples in
  let ci_new = Stats.ci95 new_cell.samples in
  let verdict, note =
    if Float.abs delta < threshold then (Unchanged, Below_threshold)
    else if Stats.intervals_overlap ci_old ci_new then (Unchanged, Within_noise)
    else if delta > 0. then (Regressed, Confirmed)
    else (Improved, Confirmed)
  in
  {
    c_old = old_cell;
    c_new = new_cell;
    c_delta = delta;
    c_ci_old = ci_old;
    c_ci_new = ci_new;
    c_verdict = verdict;
    c_note = note;
    c_insns_changed = old_cell.kernel_insns <> new_cell.kernel_insns;
  }

(* ------------------------------------------------------------------ *)
(* Pairing                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  r_threshold : float;
  r_old_source : string;
  r_new_source : string;
  r_engine_remap : (string * string) option;
  r_pairs : comparison list;
  r_only_old : cell list;
  r_only_new : cell list;
  r_mismatched : (cell * cell) list;
  r_skipped_status : (cell * cell) list;
  r_skipped_samples : (cell * cell) list;
}

(* cells are recorded per experiment but the sweep memoization means the
   same (engine, arch, cell) triple shows up with identical numbers in
   every experiment that shares it — keep the first occurrence *)
let dedup ~with_engine cells =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let k = ((if with_engine then c.engine else ""), c.arch, c.cell) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    cells

let engines_of cells = List.sort_uniq compare (List.map (fun c -> c.engine) cells)

let pair_runs ~with_engine old_cells new_cells =
  let key c = ((if with_engine then c.engine else ""), c.arch, c.cell) in
  let old_cells = dedup ~with_engine old_cells in
  let new_cells = dedup ~with_engine new_cells in
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace new_tbl (key c) c) new_cells;
  let pairs, only_old =
    List.partition_map
      (fun o ->
        match Hashtbl.find_opt new_tbl (key o) with
        | Some n ->
          Hashtbl.remove new_tbl (key o);
          Either.Left (o, n)
        | None -> Either.Right o)
      old_cells
  in
  let only_new =
    List.filter (fun c -> Hashtbl.mem new_tbl (key c)) new_cells
  in
  (pairs, only_old, only_new)

let compare_runs ?(threshold = default_threshold) ?(ignore_engine = false)
    ~old_run ~new_run () =
  let pairs, only_old, only_new, remap =
    let strict =
      pair_runs ~with_engine:(not ignore_engine) old_run.cells new_run.cells
    in
    match strict with
    | [], _, _ when not ignore_engine -> (
      (* no key matched: if each side is a single (different) engine
         configuration, this is an engine-version diff — the paper's
         old-vs-new QEMU scenario — so pair by (arch, cell) and say so *)
      match (engines_of old_run.cells, engines_of new_run.cells) with
      | [ e_old ], [ e_new ] when e_old <> e_new ->
        let pairs, only_old, only_new =
          pair_runs ~with_engine:false old_run.cells new_run.cells
        in
        (pairs, only_old, only_new, Some (e_old, e_new))
      | _ ->
        let pairs, only_old, only_new = strict in
        (pairs, only_old, only_new, None)
      )
    | pairs, only_old, only_new -> (pairs, only_old, only_new, None)
  in
  (* failed/timeout/quarantined cells carry placeholder numbers, so route
     them out before the iteration-count check (a failed cell records
     iters = 0, which would otherwise mislabel the pair as mismatched) *)
  let skipped_status, rest =
    List.partition
      (fun (o, n) -> not (ok_status o.status && ok_status n.status))
      pairs
  in
  let rest, mismatched =
    List.partition (fun (o, n) -> o.iters = n.iters) rest
  in
  (* a 0- or 1-sample vector has no spread: ci95 degenerates to a point
     (or nan), and "significance" would be decided by raw threshold alone.
     Classify such pairs as skipped rather than pretending to a verdict. *)
  let enough c = List.length c.samples >= 2 in
  let comparable, skipped_samples =
    List.partition (fun (o, n) -> enough o && enough n) rest
  in
  let comparisons =
    List.map
      (fun (o, n) -> classify ~threshold ~old_cell:o ~new_cell:n)
      comparable
  in
  {
    r_threshold = threshold;
    r_old_source = old_run.source;
    r_new_source = new_run.source;
    r_engine_remap = remap;
    r_pairs = comparisons;
    r_only_old = only_old;
    r_only_new = only_new;
    r_mismatched = mismatched;
    r_skipped_status = skipped_status;
    r_skipped_samples = skipped_samples;
  }

let regressions report =
  List.filter (fun c -> c.c_verdict = Regressed) report.r_pairs

let improvements report =
  List.filter (fun c -> c.c_verdict = Improved) report.r_pairs

let exit_code ~strict report =
  if strict && regressions report <> [] then 1 else 0

(* ------------------------------------------------------------------ *)
(* Category attribution                                                 *)
(* ------------------------------------------------------------------ *)

let category_of_cell name =
  let of_bench (b : Simbench.Bench.t) =
    Simbench.Category.name b.Simbench.Bench.category
  in
  match Simbench.Suite.find name with
  | Some b -> of_bench b
  | None -> (
    match Simbench.Suite_ext.find name with
    | Some b -> of_bench b
    | None -> (
      match Sb_workloads.Workloads.find name with
      | Some w -> of_bench w.Sb_workloads.Workloads.bench
      | None -> "Other"))

(* the paper's reading of a category-level shift: which simulator
   mechanism moves that category *)
let mechanism_hint = function
  | "Code Generation" ->
    Some "translation / code-generation path (translation cache, IR passes)"
  | "Control Flow" ->
    Some "block dispatch and chaining (front caches, chain verification)"
  | "Exception Handling" -> Some "exception and interrupt delivery"
  | "I/O" -> Some "device emulation / memory-mapped I/O path"
  | "Memory System" -> Some "memory system (TLB/page cache, memory helpers)"
  | "Application" -> Some "whole-workload behaviour (SPEC-analog level)"
  | _ -> None

type category_summary = {
  cat_name : string;
  cat_cells : int;
  cat_regressed : int;
  cat_improved : int;
  cat_geomean_ratio : float;
}

let attribution report =
  let tbl : (string, comparison list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun c ->
      let cat = category_of_cell c.c_old.cell in
      match Hashtbl.find_opt tbl cat with
      | Some l -> l := c :: !l
      | None ->
        Hashtbl.add tbl cat (ref [ c ]);
        order := cat :: !order)
    report.r_pairs;
  List.rev_map
    (fun cat ->
      let cs = !(Hashtbl.find tbl cat) in
      let count v = List.length (List.filter (fun c -> c.c_verdict = v) cs) in
      {
        cat_name = cat;
        cat_cells = List.length cs;
        cat_regressed = count Regressed;
        cat_improved = count Improved;
        cat_geomean_ratio =
          Stats.geomean
            (List.map (fun c -> c.c_new.seconds /. c.c_old.seconds) cs);
      })
    !order

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let pct f = Printf.sprintf "%+.1f%%" (f *. 100.)

let verdict_name = function
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Unchanged -> "unchanged"

let note_name = function
  | Confirmed -> "confirmed"
  | Below_threshold -> "below threshold"
  | Within_noise -> "within noise"

let verdict_cell c =
  match c.c_verdict with
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Unchanged -> (
    match c.c_note with
    | Within_noise -> "unchanged (noise)"
    | _ -> "unchanged")

let cell_row c =
  [
    c.c_old.cell;
    c.c_old.arch;
    (match c.c_old.engine = c.c_new.engine with
    | true -> c.c_old.engine
    | false -> c.c_old.engine ^ " -> " ^ c.c_new.engine);
    Printf.sprintf "%.4f" c.c_old.seconds;
    Printf.sprintf "%.4f" c.c_new.seconds;
    pct c.c_delta;
    verdict_cell c ^ (if c.c_insns_changed then " !insns" else "");
  ]

let cells_header = [ "Cell"; "Arch"; "Engine"; "Old s"; "New s"; "Delta"; "Verdict" ]

let category_summary_line s =
  if s.cat_regressed > 0 then
    Printf.sprintf "%s regressed %s (%d/%d cells)%s" s.cat_name
      (pct (s.cat_geomean_ratio -. 1.))
      s.cat_regressed s.cat_cells
      (match mechanism_hint s.cat_name with
      | Some m -> " — consistent with a change in the " ^ m
      | None -> "")
  else if s.cat_improved > 0 then
    Printf.sprintf "%s improved %s (%d/%d cells)" s.cat_name
      (pct (s.cat_geomean_ratio -. 1.))
      s.cat_improved s.cat_cells
  else Printf.sprintf "%s unchanged" s.cat_name

let render ?(all_cells = false) report =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "Comparing OLD=%s vs NEW=%s: %d paired cells, threshold +/-%.1f%%\n"
    report.r_old_source report.r_new_source
    (List.length report.r_pairs)
    (report.r_threshold *. 100.);
  (match report.r_engine_remap with
  | Some (e_old, e_new) ->
    out "(engine-version diff: every cell compared across %s -> %s)\n" e_old
      e_new
  | None -> ());
  out "\n";
  let changed =
    List.filter (fun c -> c.c_verdict <> Unchanged) report.r_pairs
  in
  let shown = if all_cells then report.r_pairs else changed in
  let shown =
    (* regressions first, then by magnitude *)
    List.stable_sort
      (fun a b ->
        match (a.c_verdict, b.c_verdict) with
        | Regressed, Regressed -> compare b.c_delta a.c_delta
        | Regressed, _ -> -1
        | _, Regressed -> 1
        | _ -> compare (Float.abs b.c_delta) (Float.abs a.c_delta))
      shown
  in
  if shown = [] then out "No cells to show: every paired cell is unchanged.\n"
  else begin
    Buffer.add_string buf
      (Tablefmt.render ~header:cells_header (List.map cell_row shown));
    if (not all_cells) && List.length report.r_pairs > List.length shown then
      out "(%d unchanged cells not shown)\n"
        (List.length report.r_pairs - List.length shown)
  end;
  out "\nCategory attribution:\n";
  List.iter (fun s -> out "  %s\n" (category_summary_line s)) (attribution report);
  if report.r_skipped_status <> [] then begin
    out "\nSkipped cells (failure status, not compared):\n";
    List.iter
      (fun (o, n) ->
        out "  %s/%s/%s: old %s, new %s\n" o.cell o.arch o.engine o.status
          n.status)
      report.r_skipped_status
  end;
  let n v = List.length (List.filter (fun c -> c.c_verdict = v) report.r_pairs) in
  out "\nSummary: %d regressed, %d improved, %d unchanged" (n Regressed)
    (n Improved) (n Unchanged);
  if report.r_only_old <> [] then
    out "; %d cells only in OLD" (List.length report.r_only_old);
  if report.r_only_new <> [] then
    out "; %d cells only in NEW" (List.length report.r_only_new);
  if report.r_mismatched <> [] then
    out "; %d pairs skipped (iteration counts differ)"
      (List.length report.r_mismatched);
  if report.r_skipped_status <> [] then
    out "; %d pairs skipped (failed/timeout cells)"
      (List.length report.r_skipped_status);
  if report.r_skipped_samples <> [] then
    out "; %d pairs skipped (insufficient samples)"
      (List.length report.r_skipped_samples);
  out "\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON output                                                          *)
(* ------------------------------------------------------------------ *)

let json_of_comparison c =
  let interval (lo, hi) = Json.List [ Json.Float lo; Json.Float hi ] in
  Json.Obj
    [
      ("cell", Json.String c.c_old.cell);
      ("arch", Json.String c.c_old.arch);
      ("old_engine", Json.String c.c_old.engine);
      ("new_engine", Json.String c.c_new.engine);
      ("old_seconds", Json.Float c.c_old.seconds);
      ("new_seconds", Json.Float c.c_new.seconds);
      ("delta", Json.Float c.c_delta);
      ("ci_old", interval c.c_ci_old);
      ("ci_new", interval c.c_ci_new);
      ("verdict", Json.String (verdict_name c.c_verdict));
      ("note", Json.String (note_name c.c_note));
      ("insns_changed", Json.Bool c.c_insns_changed);
      ("category", Json.String (category_of_cell c.c_old.cell));
    ]

let to_json report =
  let n v = List.length (List.filter (fun c -> c.c_verdict = v) report.r_pairs) in
  Json.Obj
    [
      ("schema", Json.String "simbench-compare-1");
      ("old", Json.String report.r_old_source);
      ("new", Json.String report.r_new_source);
      ("threshold", Json.Float report.r_threshold);
      ( "engine_remap",
        match report.r_engine_remap with
        | Some (a, b) -> Json.List [ Json.String a; Json.String b ]
        | None -> Json.Null );
      ("regressed", Json.Int (n Regressed));
      ("improved", Json.Int (n Improved));
      ("unchanged", Json.Int (n Unchanged));
      ("only_old", Json.Int (List.length report.r_only_old));
      ("only_new", Json.Int (List.length report.r_only_new));
      ("skipped_status", Json.Int (List.length report.r_skipped_status));
      ("skipped_samples", Json.Int (List.length report.r_skipped_samples));
      ( "skipped",
        Json.List
          (List.map
             (fun (o, n) ->
               Json.Obj
                 [
                   ("cell", Json.String o.cell);
                   ("arch", Json.String o.arch);
                   ("engine", Json.String o.engine);
                   ("old_status", Json.String o.status);
                   ("new_status", Json.String n.status);
                 ])
             report.r_skipped_status) );
      ( "categories",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("category", Json.String s.cat_name);
                   ("cells", Json.Int s.cat_cells);
                   ("regressed", Json.Int s.cat_regressed);
                   ("improved", Json.Int s.cat_improved);
                   ("geomean_ratio", Json.Float s.cat_geomean_ratio);
                 ])
             (attribution report)) );
      ("cells", Json.List (List.map json_of_comparison report.r_pairs));
    ]
