(** Loading and snapshotting serialized benchmark runs.

    Two on-disk shapes are understood, both schema-tagged so old files
    (which lack the raw per-repeat samples) are rejected with a clear
    message instead of mis-decoded:

    - a {e run directory}: the [BENCH_<experiment>.json] files written by
      [bench/main.exe --json DIR] (schema {!bench_schema});
    - a {e snapshot}: one self-contained file merging every cell of a run
      (schema {!snapshot_schema}), written by [simbench baseline] and the
      thing you check in as a CI baseline (see [bench/baseline/]). *)

val bench_schema : string
(** ["simbench-bench-json-3"] — per-experiment [--json] files; bumped when
    cells gained the per-cell [status] field.  Schema-2 files (no
    [status]) are still accepted on read; their cells default to
    status ["ok"]. *)

val snapshot_schema : string
(** ["simbench-baseline-1"] — merged baseline snapshots. *)

val json_of_cell : Regress.cell -> Sb_util.Json.t

val cell_of_json :
  source:string ->
  experiment:string ->
  Sb_util.Json.t ->
  (Regress.cell, string) result
(** [experiment] is the default when the cell object carries none (bench
    files record it once at top level); errors name [source] and the cell. *)

val load_bench_file : string -> (Regress.cell list, string) result
(** One [BENCH_*.json] file; rejects files that are neither
    {!bench_schema} nor the schema-2 back-compat shape. *)

val load_run_dir : string -> (Regress.run, string) result
(** Every [BENCH_*.json] in a [--json] output directory, sorted by file
    name; an error if there are none. *)

val load_snapshot : string -> (Regress.run, string) result

val load : string -> (Regress.run, string) result
(** Directory: {!load_run_dir}.  File: accepted as either a snapshot or a
    single bench file, keyed on its ["schema"] field. *)

val filter_engine : Regress.run -> string -> Regress.run
(** Keep only the cells of one engine label (pair with
    [Regress.compare_runs ~ignore_engine:true]). *)

val json_of_run : Regress.run -> Sb_util.Json.t

val write_snapshot : out:string -> Regress.run -> unit
(** Serialize as a snapshot, creating parent directories as needed. *)
