module Json = Sb_util.Json

(* schema tags: readers reject anything else with a clear message instead
   of mis-decoding old files.
   bench 3: cells gained "status" (failure-as-data); schema-2 files are
   still readable — the field defaults to "ok". *)
let bench_schema = "simbench-bench-json-3"
let bench_schema_compat = [ bench_schema; "simbench-bench-json-2" ]
let snapshot_schema = "simbench-baseline-1"

let ( let* ) = Result.bind

let error_in ~source msg = Error (Printf.sprintf "%s: %s" source msg)

let field ~source obj name decode =
  match Json.member name obj with
  | None -> error_in ~source (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match decode v with
    | Some x -> Ok x
    | None -> error_in ~source (Printf.sprintf "field %S has the wrong shape" name))

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)
(* ------------------------------------------------------------------ *)

let json_of_cell (c : Regress.cell) =
  Json.Obj
    [
      ("experiment", Json.String c.Regress.experiment);
      ("cell", Json.String c.Regress.cell);
      ("engine", Json.String c.Regress.engine);
      ("arch", Json.String c.Regress.arch);
      ("iters", Json.Int c.Regress.iters);
      ("repeats", Json.Int c.Regress.repeats);
      ("seconds", Json.Float c.Regress.seconds);
      ("mean_seconds", Json.Float c.Regress.mean_seconds);
      ( "samples",
        Json.List (List.map (fun s -> Json.Float s) c.Regress.samples) );
      ("kernel_insns", Json.Int c.Regress.kernel_insns);
      ( "kernel_perf",
        Json.Obj
          (List.map (fun (name, n) -> (name, Json.Int n)) c.Regress.perf) );
      ("status", Json.String c.Regress.status);
    ]

let cell_of_json ~source ~experiment j =
  let experiment =
    match Option.bind (Json.member "experiment" j) Json.string_opt with
    | Some e -> e
    | None -> experiment
  in
  let* cell = field ~source j "cell" Json.string_opt in
  let source = Printf.sprintf "%s (cell %S)" source cell in
  let* engine = field ~source j "engine" Json.string_opt in
  let* arch = field ~source j "arch" Json.string_opt in
  let* iters = field ~source j "iters" Json.int_opt in
  let* repeats = field ~source j "repeats" Json.int_opt in
  let* seconds = field ~source j "seconds" Json.float_opt in
  let* mean_seconds = field ~source j "mean_seconds" Json.float_opt in
  let* samples_json = field ~source j "samples" Json.list_opt in
  let* samples =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        match Json.float_opt s with
        | Some f -> Ok (f :: acc)
        | None -> error_in ~source "non-numeric entry in \"samples\"")
      (Ok []) samples_json
    |> Result.map List.rev
  in
  let* kernel_insns = field ~source j "kernel_insns" Json.int_opt in
  let perf =
    match Json.member "kernel_perf" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (name, v) -> Option.map (fun n -> (name, n)) (Json.int_opt v))
        fields
    | _ -> []
  in
  (* absent in schema-2 files and in snapshots taken from them *)
  let status =
    match Option.bind (Json.member "status" j) Json.string_opt with
    | Some s -> s
    | None -> "ok"
  in
  Ok
    {
      Regress.experiment;
      engine;
      arch;
      cell;
      iters;
      repeats;
      seconds;
      mean_seconds;
      samples;
      kernel_insns;
      perf;
      status;
    }

let cells_of_json ~source ~experiment j =
  let* cells_json = field ~source j "cells" Json.list_opt in
  List.fold_left
    (fun acc c ->
      let* acc = acc in
      let* cell = cell_of_json ~source ~experiment c in
      Ok (cell :: acc))
    (Ok []) cells_json
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* File formats                                                         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in_noerr ic;
    Ok s

let check_schema ~source ~expected j =
  match Option.bind (Json.member "schema" j) Json.string_opt with
  | Some s when s = expected -> Ok ()
  | Some s ->
    error_in ~source
      (Printf.sprintf "schema %S is not the expected %S — re-create this file \
                       with the current tools"
         s expected)
  | None ->
    error_in ~source
      (Printf.sprintf
         "no \"schema\" field: this looks like a pre-%s file (older builds \
          did not record per-repeat samples) — re-run the benchmark with \
          --json to regenerate it"
         expected)

let parse ~source s =
  match Json.of_string s with
  | Ok j -> Ok j
  | Error msg -> error_in ~source msg

let is_bench_schema tag = List.mem tag bench_schema_compat

(* one BENCH_<experiment>.json written by bench/main.exe --json *)
let load_bench_file path =
  let* s = read_file path in
  let* j = parse ~source:path s in
  let* () =
    match Option.bind (Json.member "schema" j) Json.string_opt with
    | Some tag when is_bench_schema tag -> Ok ()
    | _ -> check_schema ~source:path ~expected:bench_schema j
  in
  let* experiment = field ~source:path j "experiment" Json.string_opt in
  cells_of_json ~source:path ~experiment j

let is_bench_file name =
  String.length name > 6
  && String.sub name 0 6 = "BENCH_"
  && Filename.check_suffix name ".json"

let load_run_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
    let files = List.sort compare (List.filter is_bench_file (Array.to_list entries)) in
    if files = [] then
      error_in ~source:dir "no BENCH_*.json files (is this a --json output directory?)"
    else
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* cells = load_bench_file (Filename.concat dir name) in
          Ok (acc @ cells))
        (Ok []) files
      |> Result.map (fun cells -> { Regress.source = dir; cells })

let load_snapshot path =
  let* s = read_file path in
  let* j = parse ~source:path s in
  let* () = check_schema ~source:path ~expected:snapshot_schema j in
  let* cells = cells_of_json ~source:path ~experiment:"?" j in
  Ok { Regress.source = path; cells }

let load path =
  if not (Sys.file_exists path) then
    error_in ~source:path "no such file or directory"
  else if Sys.is_directory path then load_run_dir path
  else
    let* s = read_file path in
    let* j = parse ~source:path s in
    match Option.bind (Json.member "schema" j) Json.string_opt with
    | Some tag when tag = snapshot_schema ->
      let* cells = cells_of_json ~source:path ~experiment:"?" j in
      Ok { Regress.source = path; cells }
    | Some tag when is_bench_schema tag ->
      let* experiment = field ~source:path j "experiment" Json.string_opt in
      let* cells = cells_of_json ~source:path ~experiment j in
      Ok { Regress.source = path; cells }
    | _ ->
      (* surface the standard schema message for unknown/missing tags *)
      let* () = check_schema ~source:path ~expected:snapshot_schema j in
      Ok { Regress.source = path; cells = [] }

let filter_engine run engine =
  {
    run with
    Regress.cells =
      List.filter (fun c -> c.Regress.engine = engine) run.Regress.cells;
  }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let json_of_run (run : Regress.run) =
  Json.Obj
    [
      ("schema", Json.String snapshot_schema);
      ("source", Json.String run.Regress.source);
      ( "host",
        Json.String (Printf.sprintf "OCaml %s (%s)" Sys.ocaml_version Sys.os_type)
      );
      ("cells", Json.List (List.map json_of_cell run.Regress.cells));
    ]

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_snapshot ~out run =
  mkdir_p (Filename.dirname out);
  let oc = open_out out in
  output_string oc (Json.to_string (json_of_run run));
  output_char oc '\n';
  close_out oc
