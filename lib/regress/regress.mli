(** Statistical regression detection between two benchmark runs.

    The paper's whole argument is that SimBench {e pinpoints} regressions
    that application-suite averages hide (Figures 2, 5 and 8): a
    per-benchmark collapse — mcf falling off a cliff between two QEMU
    releases — disappears inside the SPEC geometric mean.  This module
    loads two serialized runs (see {!Baseline}), pairs their measurement
    cells, decides {e with statistical confidence} which cells regressed,
    and attributes each shift to the mechanism category the affected
    benchmarks isolate.

    Significance is noise-aware: the reported time of a cell is the
    minimum across repeats, but the decision uses the {e full} sample
    vector — a pair only counts as regressed/improved when (a) the
    relative change of the reported time clears a minimum-effect
    threshold (default 5%, absorbing the documented ±5-10% host jitter on
    sub-10ms cells) {e and} (b) the t-based 95% confidence intervals of
    the two sample sets do not overlap.  Pairs where either side has
    fewer than two samples are not classified at all: with a degenerate
    (point or nan) interval there is no noise estimate, so they are
    reported as skipped (insufficient samples).  Cells whose status
    records a harness failure ("failed"/"timeout"/"quarantined") are
    likewise skipped with a note instead of compared. *)

(** One serialized measurement cell: {!Sb_report.Experiments.row} plus its
    experiment of origin, as read back from [--json] output. *)
type cell = {
  experiment : string;
  engine : string;
  arch : string;
  cell : string;
  iters : int;
  repeats : int;
  seconds : float;  (** reported time: minimum across repeats *)
  mean_seconds : float;
  samples : float list;  (** raw per-repeat kernel seconds, run order *)
  kernel_insns : int;
  perf : (string * int) list;
  status : string;
      (** ["ok"], ["retried <n>"] (compared normally), or a terminal
          harness failure (["failed"]/["timeout"]/["quarantined"]:
          skipped).  Schema-2 files without the field read as ["ok"]. *)
}

type run = { source : string; cells : cell list }

val default_threshold : float
(** [0.05]: a 5% minimum effect. *)

type verdict = Regressed | Improved | Unchanged

(** Why a pair got its verdict. *)
type note =
  | Confirmed  (** over threshold and confidence intervals disjoint *)
  | Below_threshold
  | Within_noise  (** over threshold, but the intervals overlap *)

type comparison = {
  c_old : cell;
  c_new : cell;
  c_delta : float;  (** relative change of the reported (min) seconds *)
  c_ci_old : float * float;
  c_ci_new : float * float;
  c_verdict : verdict;
  c_note : note;
  c_insns_changed : bool;
      (** retired kernel instruction counts differ — a deterministic,
          noise-free signal that guest-visible behaviour changed *)
}

val classify : threshold:float -> old_cell:cell -> new_cell:cell -> comparison

type report = {
  r_threshold : float;
  r_old_source : string;
  r_new_source : string;
  r_engine_remap : (string * string) option;
      (** set when the runs had disjoint single-engine labels and cells
          were paired by (arch, cell) across the rename — the old-vs-new
          engine-version scenario of Figures 2/6 *)
  r_pairs : comparison list;
  r_only_old : cell list;
  r_only_new : cell list;
  r_mismatched : (cell * cell) list;
      (** paired cells whose iteration counts differ: not comparable *)
  r_skipped_status : (cell * cell) list;
      (** pairs where at least one side is a harness failure
          (status "failed"/"timeout"/"quarantined"): skipped with a note *)
  r_skipped_samples : (cell * cell) list;
      (** pairs where a side has fewer than two samples: no noise
          estimate, so no verdict is pretended *)
}

val compare_runs :
  ?threshold:float ->
  ?ignore_engine:bool ->
  old_run:run ->
  new_run:run ->
  unit ->
  report
(** Pairs cells by (engine, arch, cell) — duplicates across experiments
    (shared memoized sweep cells) are collapsed to their first occurrence.
    With [ignore_engine:true] the engine label is dropped from the key
    (used with {!Baseline.filter_engine} to compare two engine
    configurations out of the same sweep).  If strict pairing matches
    nothing and each run holds exactly one distinct engine, the engines
    are treated as renamed ([r_engine_remap]). *)

val regressions : report -> comparison list
val improvements : report -> comparison list

val exit_code : strict:bool -> report -> int
(** [1] when [strict] and at least one confirmed regression, else [0]. *)

val category_of_cell : string -> string
(** Benchmark/workload name to SimBench category name ({!Simbench.Category});
    SPEC-analog workloads map to "Application", unknown cells to "Other". *)

val mechanism_hint : string -> string option
(** The simulator mechanism a category-level shift implicates — the
    paper's reading ("code-gen regressed: consistent with a
    translation-cache change"). *)

type category_summary = {
  cat_name : string;
  cat_cells : int;
  cat_regressed : int;
  cat_improved : int;
  cat_geomean_ratio : float;  (** geomean of new/old reported seconds *)
}

val attribution : report -> category_summary list
(** Per-category roll-up of every paired cell, in first-seen order. *)

val render : ?all_cells:bool -> report -> string
(** Human-readable diff: changed cells (all cells with [all_cells:true])
    as a {!Sb_util.Tablefmt} table, regressions first, then the category
    attribution, a list of status-skipped cells with their statuses, and
    a summary line including skip counts. *)

val to_json : report -> Sb_util.Json.t
(** Machine-readable report ([simbench compare --json]). *)
