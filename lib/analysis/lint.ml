open Simbench

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  region : string;
  loc : Cfg.loc option;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let render f =
  let where =
    match f.loc with
    | Some l -> " at " ^ Cfg.string_of_loc l
    | None -> ""
  in
  Printf.sprintf "%s[%s] %s%s: %s" (severity_name f.severity) f.rule f.region
    where f.message

let errors = List.filter (fun f -> f.severity = Error)

let reg_names = [| "v0"; "v1"; "v2"; "v3"; "v4"; "sp"; "lr" |]

let reg_name r =
  if r >= 0 && r < Array.length reg_names then reg_names.(r)
  else Printf.sprintf "r%d" r

let sort_findings fs =
  List.stable_sort
    (fun a b ->
      let key f = ((match f.loc with Some l -> l.Cfg.index | None -> -1), f.rule) in
      compare (key a) (key b))
    fs

(* ------------------------------------------------------------------ *)
(* Whole-program rules                                                  *)
(* ------------------------------------------------------------------ *)

let num_regs = Array.length reg_names
let all_regs_mask = (1 lsl num_regs) - 1

let mask_of regs =
  List.fold_left
    (fun m r -> if r >= 0 && r < num_regs then m lor (1 lsl r) else m)
    0 regs

let lint_program ?(roots = []) program =
  let g = Cfg.build program in
  let nb = Array.length g.Cfg.blocks in
  let findings = ref [] in
  let emit ?loc ?(region = "program") ~rule ~severity message =
    findings := { rule; severity; region; loc; message } :: !findings
  in
  (* undefined-label: every reference must resolve *)
  List.iter
    (fun (l, _kind, idx) ->
      if not (Hashtbl.mem g.Cfg.label_def l) then
        emit ~loc:(Cfg.loc g idx) ~rule:"undefined-label" ~severity:Error
          (Printf.sprintf "reference to undefined label %S" l))
    g.Cfg.refs;
  (* duplicate-label *)
  List.iter
    (fun (l, idx) ->
      let first = Hashtbl.find g.Cfg.label_def l in
      emit ~loc:(Cfg.loc g idx) ~rule:"duplicate-label" ~severity:Error
        (Printf.sprintf "label %S already defined at op %d" l first))
    g.Cfg.dup_labels;
  let reach = Cfg.reachable ~roots g in
  (* unreachable-code: code blocks no root or edge reaches *)
  Array.iter
    (fun b ->
      if (not reach.(b.Cfg.id)) && (not b.Cfg.data_only) && b.Cfg.body <> []
      then
        emit
          ~loc:(Cfg.loc g (List.hd b.Cfg.body))
          ~rule:"unreachable-code" ~severity:Warning
          "code is unreachable from the entry, any address-taken label, or \
           any root")
    g.Cfg.blocks;
  (* fall-off-end / fall-into-data *)
  let can_fall b =
    match b.Cfg.term with
    | Cfg.T_fall | Cfg.T_cond _ | Cfg.T_call _ | Cfg.T_call_reg -> true
    | _ -> false
  in
  let align_only b =
    List.for_all
      (fun j -> match g.Cfg.ops.(j) with Pasm.Align _ | Pasm.Org _ -> true | _ -> false)
      b.Cfg.body
  in
  let rec landing id =
    if id >= nb then `Off_end
    else
      let b = g.Cfg.blocks.(id) in
      if not b.Cfg.data_only then `Code
      else if align_only b then landing (id + 1)
      else `Data
  in
  Array.iter
    (fun b ->
      if reach.(b.Cfg.id) && (not b.Cfg.data_only) && can_fall b then begin
        let loc =
          match List.rev b.Cfg.body with
          | j :: _ -> Cfg.loc g j
          | [] -> Cfg.loc g b.Cfg.start
        in
        match landing (b.Cfg.id + 1) with
        | `Code -> ()
        | `Off_end ->
          emit ~loc ~rule:"fall-off-end" ~severity:Error
            "control can run past the end of the program without Halt, Ret \
             or Eret"
        | `Data ->
          emit ~loc ~rule:"fall-into-data" ~severity:Error
            "control can fall through into data words"
      end)
    g.Cfg.blocks;
  (* use-before-def: forward must-defined dataflow (meet = intersection).
     The entry starts with nothing defined; hardware-entered roots and
     address-taken blocks start with everything defined. *)
  let inb = Array.make nb all_regs_mask in
  let visited = Array.make nb false in
  let wl = Queue.create () in
  let push id v =
    let nv = (if visited.(id) then inb.(id) else all_regs_mask) land v in
    if (not visited.(id)) || nv <> inb.(id) then begin
      visited.(id) <- true;
      inb.(id) <- nv;
      Queue.add id wl
    end
  in
  if nb > 0 then push 0 0;
  Array.iter
    (fun b -> if b.Cfg.address_taken then push b.Cfg.id all_regs_mask)
    g.Cfg.blocks;
  List.iter
    (fun l ->
      match Cfg.target g l with
      | Some t -> push t all_regs_mask
      | None -> ())
    roots;
  while not (Queue.is_empty wl) do
    let id = Queue.pop wl in
    let b = g.Cfg.blocks.(id) in
    let out =
      List.fold_left
        (fun s j -> s lor mask_of (Cfg.defs g.Cfg.ops.(j)))
        inb.(id) b.Cfg.body
    in
    List.iter (fun s -> push s out) (Cfg.succs g b)
  done;
  let ubd_seen = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      if visited.(b.Cfg.id) then begin
        let set = ref inb.(b.Cfg.id) in
        List.iter
          (fun j ->
            let op = g.Cfg.ops.(j) in
            List.iter
              (fun r ->
                if
                  r >= 0 && r < num_regs
                  && !set land (1 lsl r) = 0
                  && not (Hashtbl.mem ubd_seen (j, r))
                then begin
                  Hashtbl.add ubd_seen (j, r) ();
                  emit ~loc:(Cfg.loc g j) ~rule:"use-before-def"
                    ~severity:Error
                    (Printf.sprintf
                       "%s may be read before any definition reaches this op"
                       (reg_name r))
                end)
              (Cfg.uses op);
            set := !set lor mask_of (Cfg.defs op))
          b.Cfg.body
      end)
    g.Cfg.blocks;
  (* lr-clobber: from every Call target, make sure no path reaches a Ret
     with lr still holding an inner call's return address *)
  let call_targets =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun b ->
        match b.Cfg.term with
        | Cfg.T_call l -> (
          match Cfg.target g l with
          | Some t -> Hashtbl.replace tbl t ()
          | None -> ())
        | _ -> ())
      g.Cfg.blocks;
    Hashtbl.fold (fun t () acc -> t :: acc) tbl []
  in
  let lr_reported = Hashtbl.create 8 in
  let intact = 1 and clobbered = 2 in
  List.iter
    (fun root ->
      let st = Array.make nb 0 in
      let wl = Queue.create () in
      let push id v =
        let nv = st.(id) lor v in
        if nv <> st.(id) then begin
          st.(id) <- nv;
          Queue.add id wl
        end
      in
      push root intact;
      while not (Queue.is_empty wl) do
        let id = Queue.pop wl in
        let b = g.Cfg.blocks.(id) in
        let s = ref st.(id) in
        List.iter
          (fun j ->
            match g.Cfg.ops.(j) with
            | Pasm.Call _ | Pasm.Call_reg _ -> ()  (* modelled on the edge *)
            | op -> if List.mem Pasm.lr (Cfg.defs op) then s := intact)
          b.Cfg.body;
        (match b.Cfg.term with
        | Cfg.T_ret when !s land clobbered <> 0 -> (
          match List.rev b.Cfg.body with
          | j :: _ when not (Hashtbl.mem lr_reported j) ->
            Hashtbl.add lr_reported j ();
            emit ~loc:(Cfg.loc g j) ~rule:"lr-clobber" ~severity:Error
              (Printf.sprintf
                 "function entered at %S can reach this Ret with lr \
                  clobbered by an inner call"
                 (String.concat "/" g.Cfg.blocks.(root).Cfg.labels))
          | _ -> ())
        | _ -> ());
        match b.Cfg.term with
        | Cfg.T_call _ | Cfg.T_call_reg -> (
          (* the callee is analysed as its own root; past the call, lr
             holds the inner return address *)
          match Cfg.fall g b with
          | Some f -> push f clobbered
          | None -> ())
        | _ -> List.iter (fun succ -> push succ !s) (Cfg.succs g b)
      done)
    call_targets;
  (* unused-label *)
  let used = Hashtbl.create 64 in
  List.iter (fun (l, _, _) -> Hashtbl.replace used l ()) g.Cfg.refs;
  List.iter (fun l -> Hashtbl.replace used l ()) roots;
  if nb > 0 then
    List.iter (fun l -> Hashtbl.replace used l ()) g.Cfg.blocks.(0).Cfg.labels;
  Hashtbl.iter
    (fun l idx ->
      if not (Hashtbl.mem used l) then
        emit ~loc:(Cfg.loc g idx) ~rule:"unused-label" ~severity:Warning
          (Printf.sprintf "label %S is never referenced" l))
    g.Cfg.label_def;
  sort_findings !findings

(* ------------------------------------------------------------------ *)
(* Phase-scoped convention rules                                        *)
(* ------------------------------------------------------------------ *)

(* v4 is the runtime's iteration counter: nothing in a benchmark body may
   write it. *)
let v4_rule ~region ops =
  let g = Cfg.build ops in
  let findings = ref [] in
  Array.iteri
    (fun j op ->
      if List.mem Pasm.v4 (Cfg.defs op) then
        findings :=
          {
            rule = "v4-clobber";
            severity = Error;
            region;
            loc = Some (Cfg.loc g j);
            message = "writes the runtime iteration counter v4";
          }
          :: !findings)
    g.Cfg.ops;
  List.rev !findings

(* v3 is the exception handlers' scratch register: any faulting op may
   clobber it, so no value may be live in v3 across one.  Advisory
   ([severity = Warning]) for Application-category programs, which run fully
   mapped and take no synchronous faults. *)
let v3_rule ~region ~severity sub =
  let g = Cfg.build sub in
  let nb = Array.length g.Cfg.blocks in
  let live_in = Array.make nb false in
  let live_out = Array.make nb false in
  let transfer out body =
    List.fold_left
      (fun live j ->
        let op = g.Cfg.ops.(j) in
        let live = if List.mem Pasm.v3 (Cfg.defs op) then false else live in
        if List.mem Pasm.v3 (Cfg.uses op) then true else live)
      out (List.rev body)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = nb - 1 downto 0 do
      let b = g.Cfg.blocks.(id) in
      let out = List.exists (fun s -> live_in.(s)) (Cfg.succs g b) in
      let inl = transfer out b.Cfg.body in
      if out <> live_out.(id) || inl <> live_in.(id) then begin
        live_out.(id) <- out;
        live_in.(id) <- inl;
        changed := true
      end
    done
  done;
  let findings = ref [] in
  Array.iter
    (fun b ->
      ignore
        (List.fold_left
           (fun live j ->
             let op = g.Cfg.ops.(j) in
             let defs_v3 = List.mem Pasm.v3 (Cfg.defs op) in
             if Cfg.faults op && live && not defs_v3 then
               findings :=
                 {
                   rule = "v3-across-fault";
                   severity;
                   region;
                   loc = Some (Cfg.loc g j);
                   message =
                     "a value is live in the exception-handler scratch \
                      register v3 across this faulting op";
                 }
                 :: !findings;
             let live = if defs_v3 then false else live in
             if List.mem Pasm.v3 (Cfg.uses op) then true else live)
           live_out.(b.Cfg.id)
           (List.rev b.Cfg.body)))
    g.Cfg.blocks;
  List.rev !findings

(* sp must balance: back to its entry value at the end of the kernel phase
   and at every function return. *)
type sp_off = Known of int | Top

let sp_rule ~region ~sentinel sub =
  let g = Cfg.build sub in
  let nb = Array.length g.Cfg.blocks in
  let meet a b =
    match (a, b) with Known x, Known y when x = y -> Known x | _ -> Top
  in
  let step off op =
    match op with
    | Pasm.Alu (Sb_isa.Uop.Add, d, s, Pasm.I k) when d = Pasm.sp && s = Pasm.sp
      -> (
      match off with Known o -> Known (o + k) | Top -> Top)
    | Pasm.Alu (Sb_isa.Uop.Sub, d, s, Pasm.I k) when d = Pasm.sp && s = Pasm.sp
      -> (
      match off with Known o -> Known (o - k) | Top -> Top)
    | op when List.mem Pasm.sp (Cfg.defs op) -> Top
    | _ -> off
  in
  let st = Array.make nb None in
  let wl = Queue.create () in
  let push id v =
    match st.(id) with
    | None ->
      st.(id) <- Some v;
      Queue.add id wl
    | Some old ->
      let nv = meet old v in
      if nv <> old then begin
        st.(id) <- Some nv;
        Queue.add id wl
      end
  in
  if nb > 0 then push 0 (Known 0);
  (* functions — whether entered by Call or through an address table — start
     with a fresh, balanced frame *)
  Array.iter
    (fun b ->
      (match b.Cfg.term with
      | Cfg.T_call l -> (
        match Cfg.target g l with Some t -> push t (Known 0) | None -> ())
      | _ -> ());
      if b.Cfg.address_taken && not b.Cfg.data_only then push b.Cfg.id (Known 0))
    g.Cfg.blocks;
  while not (Queue.is_empty wl) do
    let id = Queue.pop wl in
    let b = g.Cfg.blocks.(id) in
    match st.(id) with
    | None -> ()
    | Some inv -> (
      let out =
        List.fold_left (fun o j -> step o g.Cfg.ops.(j)) inv b.Cfg.body
      in
      match b.Cfg.term with
      | Cfg.T_call _ | Cfg.T_call_reg -> (
        (* intraprocedural: a balanced callee returns sp unchanged *)
        match Cfg.fall g b with Some f -> push f out | None -> ())
      | _ -> List.iter (fun s -> push s out) (Cfg.succs g b))
  done;
  let findings = ref [] in
  let report j what off =
    let message =
      match off with
      | Known d ->
        Printf.sprintf "%s with sp displaced by %d bytes" what d
      | Top -> Printf.sprintf "%s with a statically unknown sp" what
    in
    findings :=
      {
        rule = "sp-imbalance";
        severity = Error;
        region;
        loc = Some (Cfg.loc g j);
        message;
      }
      :: !findings
  in
  Array.iter
    (fun b ->
      match st.(b.Cfg.id) with
      | None -> ()
      | Some inv ->
        let off = ref inv in
        List.iter
          (fun j ->
            if j = sentinel && !off <> Known 0 then
              report j "the kernel phase ends" !off;
            off := step !off g.Cfg.ops.(j))
          b.Cfg.body;
        if b.Cfg.term = Cfg.T_ret && !off <> Known 0 then
          match List.rev b.Cfg.body with
          | j :: _ -> report j "this function returns" !off
          | [] -> ())
    g.Cfg.blocks;
  List.rev !findings

let lint_bench ~support ?(platform = Platform.sbp_ref) bench =
  let program = Rt.ops ~support ~platform ~bench in
  let prog = lint_program ~roots:Rt.vector_slot_labels program in
  let body = bench.Bench.body ~support ~platform in
  (* the kernel phase flows into a sentinel Halt, then the functions it
     calls; this sub-program carries the phase-scoped rules *)
  let sub = body.Bench.kernel @ [ Pasm.Halt ] @ body.Bench.functions in
  let sentinel = List.length body.Bench.kernel in
  let handler_ops =
    List.concat_map (fun (_vector, ops) -> ops) body.Bench.handlers
  in
  (* Application-category programs (the SPEC-analog workloads) run fully
     mapped and take no synchronous faults, so the v3 scratch-register
     convention is advisory for them. *)
  let v3_severity =
    if bench.Bench.category = Category.Application then Warning else Error
  in
  prog
  @ v4_rule ~region:"kernel" body.Bench.kernel
  @ v4_rule ~region:"functions" body.Bench.functions
  @ v4_rule ~region:"handler" handler_ops
  @ v3_rule ~region:"kernel" ~severity:v3_severity sub
  @ sp_rule ~region:"kernel" ~sentinel sub

let lint_suite ?benches () =
  let benches =
    match benches with Some b -> b | None -> Suite.all @ Suite_ext.all
  in
  List.concat_map
    (fun arch ->
      let support = Engines.support arch in
      List.map
        (fun bench ->
          ( bench.Bench.name,
            Support.name support,
            lint_bench ~support bench ))
        benches)
    Engines.all_arches
