(** Symbolic evaluation of micro-op sequences over an unknown initial
    machine state.

    The shared term library behind both static checkers: the DBT IR pass
    validator ({!Ir_check}) proves each optimiser pass transparent by
    running the before/after IR through [exec] and comparing states; the
    translation validator ({!Tv}) does the same for the decoder's
    reference semantics against the DBT's emitted IR.

    Registers and flags become expression trees over the initial state;
    loads and coprocessor reads become opaque terms indexed by their
    position in the effect sequence, so "the same load" compares equal
    across two runs.  {!binop} folds constants through
    {!Sb_sim.Alu_eval} (the evaluator the optimiser and every engine
    share), applies the peephole's algebraic identities, and normalises
    shift amounts to the architecture's [land 0xFF] / saturate semantics —
    every rule exact on u32, so structural equality of two states is a
    sound (per-block) proof of architectural equality. *)

type expr = private { id : int; node : node }
(** Terms are hash-consed: structurally equal terms are physically equal
    and carry the same unique [id], making state comparison O(1) per
    component even when the unfolded tree is exponential (DAG-shaped value
    graphs).  Build terms with {!const}/{!binop}/{!exec} only. *)

and node =
  | Const of int
  | Init of int  (** initial value of guest register r *)
  | Flag0 of int  (** initial flag; 0=n 1=z 2=c 3=v *)
  | Pc0
  | Binop of Sb_isa.Uop.alu_op * expr * expr
  | Flag of int * Sb_isa.Uop.alu_op * expr * expr
      (** flag f after a set_flags op *)
  | Mem of int  (** value produced by effect #i (a load) *)
  | Cop of int  (** value produced by effect #i (a coprocessor read) *)
  | Ite of guard * expr * expr

and guard = Sb_isa.Uop.cond * expr * expr * expr * expr

type event =
  | E_load of Sb_isa.Uop.width * expr * bool
  | E_store of Sb_isa.Uop.width * expr * expr * bool
  | E_cop_read of int
  | E_cop_write of int * expr
  | E_svc of int
  | E_undef
  | E_eret
  | E_tlb_page of expr
  | E_tlb_all
  | E_wfi
  | E_halt

type state = {
  regs : expr array;  (** 16 entries; architectures with fewer ignore the rest *)
  flags : expr array;  (** 4 entries: n z c v *)
  mutable pc : expr;
  mutable events : event list;  (** newest first *)
  mutable n_events : int;
}

val init_state : ?pc:expr -> unit -> state
(** Fresh symbolic state; [pc] defaults to the opaque {!Pc0} (right for
    pass validation, where both sides share it) and can be seeded with the
    concrete next-pc when modelling a known instruction stream. *)

val const : int -> expr

val binop : Sb_isa.Uop.alu_op -> expr -> expr -> expr
val operand : state -> Sb_isa.Uop.operand -> expr

val exec : state -> va:int -> len:int -> Sb_isa.Uop.t -> unit
(** Execute one micro-op of the instruction at [va] (encoded length
    [len]) against the state.  Mirrors the interpreter's reference
    semantics, including out-of-range coprocessor registers raising the
    undefined exception. *)

val expr_str : expr -> string
val event_str : event -> string

val diff : ?labels:string * string -> state -> state -> string option
(** First differing component (register, flag, pc, or ordered effect),
    rendered with both symbolic values; [labels] names the two sides in
    the rendering (default ["before"]/["after"]). *)
