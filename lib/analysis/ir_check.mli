(** Static validator for the DBT optimiser's transparency contract.

    Every {!Sb_dbt.Ir} pass must be architecturally transparent: the final
    register file, flags, program counter and the ordered sequence of
    memory / coprocessor / exception effects must be identical with and
    without the rewrite ({!Sb_dbt.Ir} documentation).  This module proves it
    per block: both the before- and after-pass IR are run through the
    {!Sym} symbolic evaluator and the two symbolic states are compared
    after every instruction slot.  The first mismatching instruction and
    component are reported.

    [?version] attributes a violation to the DBT release whose
    configuration ran the pass — when sweeping {!Sb_dbt.Version.all},
    reports name the offending release, not just the pass. *)

type violation = {
  pass : string;
  version : string option;  (** DBT release the pass ran under, if known *)
  va : int;  (** virtual address of the first mismatching instruction *)
  index : int;  (** its index within the block *)
  detail : string;  (** which component diverged, with both symbolic values *)
}

val check :
  ?version:string ->
  pass:string ->
  before:Sb_dbt.Ir.t ->
  after:Sb_dbt.Ir.t ->
  unit ->
  violation option

val message : violation -> string

val validator :
  ?version:string -> (violation -> unit) -> Sb_dbt.Ir.pass_validator
(** Adapt [check] to the {!Sb_dbt.Ir.pass_validator} hook: runs [check] and
    feeds any violation to the callback. *)
