(** Static validator for the DBT optimiser's transparency contract.

    Every {!Sb_dbt.Ir} pass must be architecturally transparent: the final
    register file, flags, program counter and the ordered sequence of
    memory / coprocessor / exception effects must be identical with and
    without the rewrite ({!Sb_dbt.Ir} documentation).  This module proves it
    per block: both the before- and after-pass IR are run through a symbolic
    evaluator (constants fold through {!Sb_sim.Alu_eval}, algebraic
    identities like [x+0] normalise away, loads and coprocessor reads become
    opaque terms indexed by their position in the effect sequence), and the
    two symbolic states are compared after every instruction slot.  The
    first mismatching instruction and component are reported. *)

type violation = {
  pass : string;
  va : int;  (** virtual address of the first mismatching instruction *)
  index : int;  (** its index within the block *)
  detail : string;  (** which component diverged, with both symbolic values *)
}

val check :
  pass:string -> before:Sb_dbt.Ir.t -> after:Sb_dbt.Ir.t -> violation option

val message : violation -> string

val validator : (violation -> unit) -> Sb_dbt.Ir.pass_validator
(** Adapt [check] to the {!Sb_dbt.Ir.pass_validator} hook: runs [check] and
    feeds any violation to the callback. *)
