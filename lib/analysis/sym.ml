open Sb_isa

let u32_mask = 0xFFFF_FFFF

(* Symbolic values over the initial machine state.  [Mem]/[Cop] are opaque
   terms indexed by their position in the effect sequence, which also makes
   "the same load" compare equal across the two runs.

   Terms are hash-consed: every expression carries a unique [id], and
   structurally equal terms built anywhere are the same physical value.
   Equality is therefore O(1) — the polymorphic comparisons in [diff]
   resolve on the leading [id] field — where naive structural comparison
   of two independently built states is exponential on code whose every
   value references both live values (add r1,r1,r2 / xor r2,r2,r1 chains
   unfold to Fibonacci-sized trees). *)
type expr = { id : int; node : node }

and node =
  | Const of int
  | Init of int  (* initial value of guest register r *)
  | Flag0 of int  (* initial flag; 0=n 1=z 2=c 3=v *)
  | Pc0
  | Binop of Uop.alu_op * expr * expr
  | Flag of int * Uop.alu_op * expr * expr  (* flag f after a set_flags op *)
  | Mem of int  (* value produced by effect #i (a load) *)
  | Cop of int  (* value produced by effect #i (a coprocessor read) *)
  | Ite of guard * expr * expr

and guard = Uop.cond * expr * expr * expr * expr  (* cond over n z c v *)

(* Consing key: the node with children collapsed to their ids, so hashing
   and bucket comparison never traverse the term. *)
type key =
  | K_const of int
  | K_init of int
  | K_flag0 of int
  | K_pc0
  | K_binop of Uop.alu_op * int * int
  | K_flag of int * Uop.alu_op * int * int
  | K_mem of int
  | K_cop of int
  | K_ite of Uop.cond * int * int * int * int * int * int

let key_of = function
  | Const v -> K_const v
  | Init r -> K_init r
  | Flag0 f -> K_flag0 f
  | Pc0 -> K_pc0
  | Binop (op, a, b) -> K_binop (op, a.id, b.id)
  | Flag (f, op, a, b) -> K_flag (f, op, a.id, b.id)
  | Mem i -> K_mem i
  | Cop i -> K_cop i
  | Ite ((c, n, z, cf, vf), t, e) ->
    K_ite (c, n.id, z.id, cf.id, vf.id, t.id, e.id)

let cons_tbl : (key, expr) Hashtbl.t = Hashtbl.create 4096

let next_id = ref 0

let mk node =
  let key = key_of node in
  match Hashtbl.find_opt cons_tbl key with
  | Some e -> e
  | None ->
    incr next_id;
    let e = { id = !next_id; node } in
    Hashtbl.add cons_tbl key e;
    e

let const v = mk (Const v)

type event =
  | E_load of Uop.width * expr * bool
  | E_store of Uop.width * expr * expr * bool  (* addr, value, user *)
  | E_cop_read of int
  | E_cop_write of int * expr
  | E_svc of int
  | E_undef
  | E_eret
  | E_tlb_page of expr
  | E_tlb_all
  | E_wfi
  | E_halt

type state = {
  regs : expr array;
  flags : expr array;
  mutable pc : expr;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
}

let init_state ?pc () =
  {
    regs = Array.init 16 (fun r -> mk (Init r));
    flags = Array.init 4 (fun f -> mk (Flag0 f));
    pc = (match pc with Some pc -> pc | None -> mk Pc0);
    events = [];
    n_events = 0;
  }

(* Folding mirrors what the passes and the emitter may do: constant
   evaluation goes through the same Alu_eval the optimiser and every engine
   use; the algebraic identities are exactly the ones peephole exploits;
   and shift amounts normalise to the [land 0xFF] / saturate-at-32
   semantics Alu_eval defines, so the DBT's specialised shift emissions
   (amount pre-masked, >=32 folded to zero, arithmetic shifts clamped to
   31) compare structurally equal to the generic evaluator.  All rules are
   exact on u32. *)
let rec binop op a b =
  match (op, a.node, b.node) with
  | _, Const x, Const y -> const (Sb_sim.Alu_eval.eval op x y)
  | (Uop.Lsl | Uop.Lsr), _, Const v when v land 0xFF >= 32 -> const 0
  | (Uop.Lsl | Uop.Lsr), _, Const v when v land 0xFF <> v ->
    binop op a (const (v land 0xFF))
  | Uop.Asr, _, Const v when min 31 (v land 0xFF) <> v ->
    binop op a (const (min 31 (v land 0xFF)))
  | ( (Uop.Add | Uop.Sub | Uop.Orr | Uop.Xor | Uop.Lsl | Uop.Lsr | Uop.Asr),
      _,
      Const 0 ) ->
    a
  | (Uop.Add | Uop.Orr), Const 0, _ -> b
  | Uop.Mul, _, Const 1 -> a
  | Uop.Mul, Const 1, _ -> b
  | Uop.Mul, _, Const 0 | Uop.Mul, Const 0, _ -> const 0
  | _ -> mk (Binop (op, a, b))

let operand st = function
  | Uop.Reg r -> st.regs.(r)
  | Uop.Imm v -> const (v land u32_mask)

let push st ev =
  st.events <- ev :: st.events;
  st.n_events <- st.n_events + 1

(* Coprocessor accesses with an out-of-range register raise the undefined
   exception in every engine (the interpreter through [Sb_sim.Cop], the
   DBT at emission time), so model them as the undef effect rather than a
   coprocessor effect.  Decoders can produce such uops: the creg field is a
   full byte but only [Cregs.count] registers exist. *)
let creg_valid creg = creg >= 0 && creg < Cregs.count

let exec st ~va ~len uop =
  match uop with
  | Uop.Nop -> ()
  | Uop.Alu { op; rd; rn; rm; set_flags } ->
    let a = operand st rn and b = operand st rm in
    if set_flags then
      for f = 0 to 3 do
        st.flags.(f) <- mk (Flag (f, op, a, b))
      done;
    (match rd with
    | Some rd -> st.regs.(rd) <- binop op a b
    | None -> ())
  | Uop.Load { width; rd; base; offset; user } ->
    let addr = binop Uop.Add (operand st base) (const offset) in
    let idx = st.n_events in
    push st (E_load (width, addr, user));
    st.regs.(rd) <- mk (Mem idx)
  | Uop.Store { width; rs; base; offset; user } ->
    let addr = binop Uop.Add (operand st base) (const offset) in
    push st (E_store (width, addr, st.regs.(rs), user))
  | Uop.Branch { cond; target; link } -> (
    let ret = const ((va + len) land u32_mask) in
    match cond with
    | Uop.Always ->
      (match link with Some l -> st.regs.(l) <- ret | None -> ());
      st.pc <-
        (match target with
        | Uop.Direct t -> const t
        | Uop.Indirect r -> st.regs.(r))
    | _ ->
      let g =
        (cond, st.flags.(0), st.flags.(1), st.flags.(2), st.flags.(3))
      in
      (match link with
      | Some l -> st.regs.(l) <- mk (Ite (g, ret, st.regs.(l)))
      | None -> ());
      let tgt =
        match target with
        | Uop.Direct t -> const t
        | Uop.Indirect r -> st.regs.(r)
      in
      st.pc <- mk (Ite (g, tgt, st.pc)))
  | Uop.Svc n -> push st (E_svc n)
  | Uop.Undef -> push st E_undef
  | Uop.Eret -> push st E_eret
  | Uop.Cop_read { rd; creg } ->
    if creg_valid creg then begin
      let idx = st.n_events in
      push st (E_cop_read creg);
      st.regs.(rd) <- mk (Cop idx)
    end
    else push st E_undef
  | Uop.Cop_write { creg; src } ->
    if creg_valid creg then push st (E_cop_write (creg, operand st src))
    else push st E_undef
  | Uop.Tlb_inv_page r -> push st (E_tlb_page st.regs.(r))
  | Uop.Tlb_inv_all -> push st E_tlb_all
  | Uop.Wfi -> push st E_wfi
  | Uop.Halt -> push st E_halt

(* ---------------- pretty-printing ----------------------------------- *)

let op_name = function
  | Uop.Add -> "add"
  | Uop.Sub -> "sub"
  | Uop.And_ -> "and"
  | Uop.Orr -> "orr"
  | Uop.Xor -> "xor"
  | Uop.Lsl -> "lsl"
  | Uop.Lsr -> "lsr"
  | Uop.Asr -> "asr"
  | Uop.Mul -> "mul"

let flag_name = [| "n"; "z"; "c"; "v" |]

let cond_name = function
  | Uop.Always -> "al"
  | Uop.Eq -> "eq"
  | Uop.Ne -> "ne"
  | Uop.Lt -> "lt"
  | Uop.Ge -> "ge"
  | Uop.Ltu -> "ltu"
  | Uop.Geu -> "geu"

(* Deep terms render as "..." past this depth: a shared subterm can unfold
   to an exponentially large tree (see [mk]), and a divergence message
   only needs the top of the term to locate the disagreement. *)
let max_render_depth = 8

let rec expr_at depth e =
  if depth > max_render_depth then "..."
  else
    match e.node with
    | Const v -> Printf.sprintf "0x%x" v
    | Init r -> Printf.sprintf "r%d.in" r
    | Flag0 f -> flag_name.(f) ^ ".in"
    | Pc0 -> "pc.in"
    | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (op_name op)
        (expr_at (depth + 1) a)
        (expr_at (depth + 1) b)
    | Flag (f, op, a, b) ->
      Printf.sprintf "%s(%s %s %s)" flag_name.(f) (op_name op)
        (expr_at (depth + 1) a)
        (expr_at (depth + 1) b)
    | Mem i -> Printf.sprintf "load#%d" i
    | Cop i -> Printf.sprintf "cop#%d" i
    | Ite ((c, _, _, _, _), t, e) ->
      Printf.sprintf "(if %s then %s else %s)" (cond_name c)
        (expr_at (depth + 1) t)
        (expr_at (depth + 1) e)

let expr_str e = expr_at 0 e

let event_str = function
  | E_load (_, addr, user) ->
    Printf.sprintf "load%s[%s]" (if user then ".user" else "") (expr_str addr)
  | E_store (_, addr, v, user) ->
    Printf.sprintf "store%s[%s]=%s"
      (if user then ".user" else "")
      (expr_str addr) (expr_str v)
  | E_cop_read c -> Printf.sprintf "cop-read[%d]" c
  | E_cop_write (c, v) -> Printf.sprintf "cop-write[%d]=%s" c (expr_str v)
  | E_svc n -> Printf.sprintf "svc#%d" n
  | E_undef -> "undef"
  | E_eret -> "eret"
  | E_tlb_page a -> Printf.sprintf "tlb-inv-page[%s]" (expr_str a)
  | E_tlb_all -> "tlb-inv-all"
  | E_wfi -> "wfi"
  | E_halt -> "halt"

(* ---------------- comparison ---------------------------------------- *)

(* Hash-consing makes equal terms physically equal, so these are O(1). *)
let expr_eq (a : expr) b = a == b

let event_eq a b =
  match (a, b) with
  | E_load (w1, a1, u1), E_load (w2, a2, u2) ->
    w1 = w2 && expr_eq a1 a2 && u1 = u2
  | E_store (w1, a1, v1, u1), E_store (w2, a2, v2, u2) ->
    w1 = w2 && expr_eq a1 a2 && expr_eq v1 v2 && u1 = u2
  | E_cop_write (c1, v1), E_cop_write (c2, v2) -> c1 = c2 && expr_eq v1 v2
  | E_tlb_page a1, E_tlb_page a2 -> expr_eq a1 a2
  | (E_cop_read _ | E_svc _ | E_undef | E_eret | E_tlb_all | E_wfi | E_halt), _
    ->
    a = b
  | _, _ -> false

let diff ?(labels = ("before", "after")) a b =
  let la, lb = labels in
  let mismatch = ref None in
  let note what va vb =
    if !mismatch = None then mismatch := Some (what, va, vb)
  in
  for r = 0 to 15 do
    if not (expr_eq a.regs.(r) b.regs.(r)) then
      note (Printf.sprintf "register r%d" r)
        (expr_str a.regs.(r))
        (expr_str b.regs.(r))
  done;
  for f = 0 to 3 do
    if not (expr_eq a.flags.(f) b.flags.(f)) then
      note
        (Printf.sprintf "flag %s" flag_name.(f))
        (expr_str a.flags.(f))
        (expr_str b.flags.(f))
  done;
  if not (expr_eq a.pc b.pc) then note "pc" (expr_str a.pc) (expr_str b.pc);
  (let ea = List.rev a.events and eb = List.rev b.events in
   let rec first i = function
     | [], [] -> ()
     | x :: xs, y :: ys ->
       if event_eq x y then first (i + 1) (xs, ys)
       else note (Printf.sprintf "effect #%d" i) (event_str x) (event_str y)
     | x :: _, [] -> note (Printf.sprintf "effect #%d" i) (event_str x) "-"
     | [], y :: _ -> note (Printf.sprintf "effect #%d" i) "-" (event_str y)
   in
   first 0 (ea, eb));
  match !mismatch with
  | None -> None
  | Some (what, va, vb) ->
    Some (Printf.sprintf "%s: %s (%s) vs %s (%s)" what va la vb lb)
