open Sb_isa

let u32_mask = 0xFFFF_FFFF

(* Where a case's bytes are placed for decoding; any code address works
   because both sides decode the same stream at the same address. *)
let base_va = 0x10000

type divergence = {
  arch : string;
  version : string;
  cls : string;
  case : string;
  bytes : string;  (* hex, fetch order *)
  sequence : string;  (* "single" or "const-prefixed" *)
  component : string;  (* "closure", "threaded" or "threaded+mmu" *)
  detail : string;  (* first divergent component, rendered by Sym.diff *)
}

type coverage = {
  cov_cls : string;
  cov_cases : int;
  cov_checks : int;  (* case x version x sequence checks performed *)
  cov_skip : string option;
}

type report = {
  rep_arch : string;
  rep_versions : string list;
  rep_coverage : coverage list;
  rep_checks : int;
  rep_divergences : divergence list;
  rep_truncated : bool;  (* divergence scan stopped at the cap *)
  rep_selector_space : int;
  rep_selector_desc : string;
  rep_gaps : int list;  (* selector values no class claims *)
  rep_overlaps : int list;  (* selector values claimed twice *)
}

let arch_module : Arch_sig.arch_id -> (module Arch_sig.ARCH) = function
  | Arch_sig.Sba -> (module Sb_arch_sba.Arch)
  | Arch_sig.Vlx -> (module Sb_arch_vlx.Arch)

let encodings = function
  | Arch_sig.Sba -> Sb_arch_sba.Encodings.set
  | Arch_sig.Vlx -> Sb_arch_vlx.Encodings.set

let hex_bytes bytes =
  String.concat "" (List.map (Printf.sprintf "%02x") bytes)

(* Decode the whole byte stream at [base_va].  Bytes past the end read as
   zero, like the padding after a benchmark image; the stream is finite and
   every decode consumes at least one byte, so this terminates. *)
let decode_stream (module A : Arch_sig.ARCH) bytes =
  let arr = Array.of_list bytes in
  let n = Array.length arr in
  let fetch8 a =
    let i = a - base_va in
    if i >= 0 && i < n then arr.(i) land 0xFF else 0
  in
  let rec go addr acc =
    if addr - base_va >= n then List.rev acc
    else
      let d = A.decode ~fetch8 ~addr in
      go (addr + max 1 d.Uop.length) (d :: acc)
  in
  go base_va []

(* Reference semantics: the interpreter's exec_insn sets pc to the next
   instruction before running the uops (a branch then overwrites it), and
   the DBT commits the block-end pc the same way; seeding the symbolic pc
   identically on both sides makes the final pc concrete and comparable. *)
let exec_reference ds =
  let st = Sym.init_state () in
  List.iter
    (fun (d : Uop.decoded) ->
      st.Sym.pc <- Sym.const ((d.Uop.addr + d.Uop.length) land u32_mask);
      List.iter (Sym.exec st ~va:d.Uop.addr ~len:d.Uop.length) d.Uop.uops)
    ds;
  st

let exec_dbt ~config ds =
  let ir, _ = Sb_dbt.Emission.ir_of_decoded ~config ds in
  let st = Sym.init_state () in
  Array.iter
    (fun (insn : Sb_dbt.Ir.insn) ->
      st.Sym.pc <- Sym.const ((insn.Sb_dbt.Ir.va + insn.Sb_dbt.Ir.len) land u32_mask);
      List.iter
        (fun uop ->
          List.iter
            (Sym.exec st ~va:insn.Sb_dbt.Ir.va ~len:insn.Sb_dbt.Ir.len)
            (Sb_dbt.Emission.model_uop uop))
        insn.Sb_dbt.Ir.uops)
    ir;
  st

(* The threaded backend's lowering for the same sequence: the decoded
   instructions go through the identical IR pipeline, then through the real
   token encoder and back out of its decoder
   ({!Sb_dbt.Emission.model_threaded}).  Executing that model symbolically
   proves the opstream — not just the closure emission — preserves the
   architecture. *)
let exec_threaded ~config ~mmu ds =
  let modeled = Sb_dbt.Emission.model_threaded ~config ~mmu ds in
  let st = Sym.init_state () in
  List.iter
    (fun (va, len, uops) ->
      st.Sym.pc <- Sym.const ((va + len) land u32_mask);
      List.iter (Sym.exec st ~va ~len) uops)
    modeled;
  st

(* Every version is checked against all three lowerings — the closure
   emission and the threaded opstream under both translation regimes — so
   `tv --strict` enumerates the threaded backend for every registered DBT
   version, and a divergence names the broken component. *)
let check_case arch_mod ~config bytes =
  let ds = decode_stream arch_mod bytes in
  let reference = exec_reference ds in
  match Sym.diff ~labels:("reference", "dbt") reference (exec_dbt ~config ds) with
  | Some detail -> Some ("closure", detail)
  | None -> (
    match
      Sym.diff ~labels:("reference", "threaded") reference
        (exec_threaded ~config ~mmu:false ds)
    with
    | Some detail -> Some ("threaded", detail)
    | None -> (
      match
        Sym.diff ~labels:("reference", "threaded") reference
          (exec_threaded ~config ~mmu:true ds)
      with
      | Some detail -> Some ("threaded+mmu", detail)
      | None -> None))

let default_max_divergences = 50

let run ~arch ?versions ?(max_divergences = default_max_divergences) () =
  let set = encodings arch in
  let arch_mod = arch_module arch in
  let arch_name = Arch_sig.arch_id_name arch in
  let versions =
    match versions with
    | Some vs ->
      List.map
        (fun v ->
          match Sb_dbt.Version.find v with
          | Some config -> (v, config)
          | None -> invalid_arg (Printf.sprintf "unknown DBT version %S" v))
        vs
    | None -> Sb_dbt.Version.all
  in
  let gaps, overlaps = Encoding.gaps set in
  let divergences = ref [] in
  let n_div = ref 0 in
  let truncated = ref false in
  let checks_total = ref 0 in
  let coverage =
    List.map
      (fun (c : Encoding.cls) ->
        let checks = ref 0 in
        (match c.Encoding.skip with
        | Some _ -> ()
        | None ->
          List.iter
            (fun (case : Encoding.case) ->
              List.iter
                (fun (vname, config) ->
                  List.iter
                    (fun (sequence, bytes) ->
                      if not !truncated then begin
                        incr checks;
                        incr checks_total;
                        match check_case arch_mod ~config bytes with
                        | None -> ()
                        | Some (component, detail) ->
                          incr n_div;
                          if !n_div > max_divergences then truncated := true
                          else
                            divergences :=
                              {
                                arch = arch_name;
                                version = vname;
                                cls = c.Encoding.name;
                                case = case.Encoding.label;
                                bytes = hex_bytes bytes;
                                sequence;
                                component;
                                detail;
                              }
                              :: !divergences
                      end)
                    [
                      ("single", case.Encoding.bytes);
                      ( "const-prefixed",
                        set.Encoding.const_prefix.Encoding.bytes
                        @ case.Encoding.bytes );
                    ])
                versions)
            c.Encoding.cases);
        {
          cov_cls = c.Encoding.name;
          cov_cases = List.length c.Encoding.cases;
          cov_checks = !checks;
          cov_skip = c.Encoding.skip;
        })
      set.Encoding.classes
  in
  {
    rep_arch = arch_name;
    rep_versions = List.map fst versions;
    rep_coverage = coverage;
    rep_checks = !checks_total;
    rep_divergences = List.rev !divergences;
    rep_truncated = !truncated;
    rep_selector_space = set.Encoding.selector_space;
    rep_selector_desc = set.Encoding.selector_desc;
    rep_gaps = gaps;
    rep_overlaps = overlaps;
  }

(* A report is clean when nothing diverged and the enumeration tiles the
   selector space; [strict] additionally rejects classes that are neither
   skipped-with-a-reason nor backed by at least one case. *)
let enumeration_complete r =
  r.rep_gaps = [] && r.rep_overlaps = []
  && List.for_all
       (fun c -> c.cov_skip <> None || c.cov_cases > 0)
       r.rep_coverage

let ok ?(strict = false) r =
  r.rep_divergences = [] && (not r.rep_truncated)
  && ((not strict) || enumeration_complete r)

(* ---------------- rendering ----------------------------------------- *)

let render ?(verbose = false) r =
  let b = Buffer.create 1024 in
  let n_classes = List.length r.rep_coverage in
  let n_cases = List.fold_left (fun a c -> a + c.cov_cases) 0 r.rep_coverage in
  let skipped = List.filter (fun c -> c.cov_skip <> None) r.rep_coverage in
  Buffer.add_string b
    (Printf.sprintf
       "tv %s: %d opcode classes, %d encodings, %d versions -> %d checks, %d \
        divergence%s\n"
       r.rep_arch n_classes n_cases
       (List.length r.rep_versions)
       r.rep_checks
       (List.length r.rep_divergences)
       (if List.length r.rep_divergences = 1 then "" else "s"));
  Buffer.add_string b
    (Printf.sprintf "  selector space (%s): %d values, %d gap%s, %d overlap%s\n"
       r.rep_selector_desc r.rep_selector_space
       (List.length r.rep_gaps)
       (if List.length r.rep_gaps = 1 then "" else "s")
       (List.length r.rep_overlaps)
       (if List.length r.rep_overlaps = 1 then "" else "s"));
  if r.rep_gaps <> [] then
    Buffer.add_string b
      (Printf.sprintf "  unclaimed selectors: %s\n"
         (String.concat ", "
            (List.map (Printf.sprintf "0x%02x") r.rep_gaps)));
  if r.rep_overlaps <> [] then
    Buffer.add_string b
      (Printf.sprintf "  doubly-claimed selectors: %s\n"
         (String.concat ", "
            (List.map (Printf.sprintf "0x%02x") r.rep_overlaps)));
  List.iter
    (fun c ->
      match c.cov_skip with
      | Some reason ->
        Buffer.add_string b
          (Printf.sprintf "  skipped %-12s %s\n" c.cov_cls reason)
      | None -> ())
    skipped;
  if verbose then
    List.iter
      (fun c ->
        if c.cov_skip = None then
          Buffer.add_string b
            (Printf.sprintf "  %-12s %3d encodings  %5d checks\n" c.cov_cls
               c.cov_cases c.cov_checks))
      r.rep_coverage;
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "DIVERGENCE %s dbt %s [%s]: %s (%s) [%s, %s]: %s\n"
           d.arch d.version d.component d.cls d.case d.bytes d.sequence
           d.detail))
    r.rep_divergences;
  if r.rep_truncated then
    Buffer.add_string b
      (Printf.sprintf "  (divergence scan stopped after %d findings)\n"
         (List.length r.rep_divergences));
  Buffer.contents b

let json_schema = "simbench-tv-json-2"

let to_json r =
  let open Sb_util.Json in
  Obj
    [
      ("schema", String json_schema);
      ("arch", String r.rep_arch);
      ("versions", List (List.map (fun v -> String v) r.rep_versions));
      ("selector_space", Int r.rep_selector_space);
      ("selector_desc", String r.rep_selector_desc);
      ("gaps", List (List.map (fun s -> Int s) r.rep_gaps));
      ("overlaps", List (List.map (fun s -> Int s) r.rep_overlaps));
      ("checks", Int r.rep_checks);
      ( "coverage",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("class", String c.cov_cls);
                   ("cases", Int c.cov_cases);
                   ("checks", Int c.cov_checks);
                   ( "skipped",
                     match c.cov_skip with
                     | Some reason -> String reason
                     | None -> Null );
                 ])
             r.rep_coverage) );
      ("truncated", Bool r.rep_truncated);
      ( "divergences",
        List
          (List.map
             (fun d ->
               Obj
                 [
                   ("version", String d.version);
                   ("class", String d.cls);
                   ("case", String d.case);
                   ("bytes", String d.bytes);
                   ("sequence", String d.sequence);
                   ("component", String d.component);
                   ("detail", String d.detail);
                 ])
             r.rep_divergences) );
    ]

(* ---------------- whole-image pass-validation sweep ------------------ *)

(* Linearly decode an assembled image and run every optimiser pass of the
   given configuration over block-sized chunks, collecting pass-validator
   violations.  This is the static counterpart of `verify
   --validate-passes`: it sees the shipped benchmark code rather than
   random programs, and it needs no guest run.  Chunking at block
   terminators (capped like the DBT's block former) keeps the IR shapes
   representative; transparency is required of every chunking, so any
   violation found here is real. *)
let sweep_program ~arch ?(config = Sb_dbt.Config.default) ?version ~read8 ~base
    ~len () =
  let (module A : Arch_sig.ARCH) = arch_module arch in
  let version =
    match version with Some _ -> version | None -> Sb_dbt.Version.name_of config
  in
  let violations = ref [] in
  let seen = Hashtbl.create 16 in
  let validate ~pass ~before ~after =
    match Ir_check.check ?version ~pass ~before ~after () with
    | None -> ()
    | Some v ->
      let key = (v.Ir_check.pass, v.Ir_check.va, v.Ir_check.detail) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        violations := v :: !violations
      end
  in
  let stop = base + len in
  let flush chunk =
    match List.rev chunk with
    | [] -> ()
    | ds -> ignore (Sb_dbt.Emission.ir_of_decoded ~config ~validate ds)
  in
  let rec go addr chunk n =
    if addr >= stop then flush chunk
    else
      let d = A.decode ~fetch8:read8 ~addr in
      let chunk = d :: chunk in
      let n = n + 1 in
      if d.Uop.terminates_block || n >= 32 then begin
        flush chunk;
        go (addr + max 1 d.Uop.length) [] 0
      end
      else go (addr + max 1 d.Uop.length) chunk n
  in
  go base [] 0;
  List.rev !violations
