(** Symbolic translation validation: decode -> IR emission vs. interpreter
    semantics.

    For every encoding class an architecture enumerates
    ({!Sb_arch_sba.Encodings}, {!Sb_arch_vlx.Encodings}), each concrete
    encoding is decoded once and executed twice over the symbolic domain of
    {!Sym}: directly over the decoded micro-ops (the interpreter's
    reference semantics — the interpreter executes exactly these) and over
    the IR the DBT emits for the block after running the optimiser pipeline
    of a given {!Sb_dbt.Version}, with the emitter's instruction
    specialisations modelled by {!Sb_dbt.Emission.model_uop}.  Equal final
    symbolic states prove the translation preserves the architecture for
    {e every} initial register file, flag assignment and memory contents —
    not just the ones a test run happens to produce.

    Each encoding is checked standalone and behind a constant-seeding
    prefix instruction, so cross-instruction constant propagation is
    exercised, for every registered DBT version. *)

type divergence = {
  arch : string;
  version : string;  (** DBT version whose pipeline diverged *)
  cls : string;  (** encoding class name *)
  case : string;  (** case label within the class *)
  bytes : string;  (** the encoding, hex, in fetch order *)
  sequence : string;  (** ["single"] or ["const-prefixed"] *)
  component : string;
      (** which lowering diverged: ["closure"] for the closure emitter's
          model, ["threaded"] / ["threaded+mmu"] for the token-threaded
          opstream under the physical / virtual memory regime *)
  detail : string;  (** first divergent component, with both symbolic values *)
}

type coverage = {
  cov_cls : string;
  cov_cases : int;
  cov_checks : int;
  cov_skip : string option;  (** reason, for classes deliberately skipped *)
}

type report = {
  rep_arch : string;
  rep_versions : string list;
  rep_coverage : coverage list;
  rep_checks : int;
  rep_divergences : divergence list;
  rep_truncated : bool;  (** scan stopped at the divergence cap *)
  rep_selector_space : int;
  rep_selector_desc : string;
  rep_gaps : int list;  (** selector values no class claims *)
  rep_overlaps : int list;  (** selector values claimed more than once *)
}

val encodings : Sb_isa.Arch_sig.arch_id -> Sb_isa.Encoding.set
(** The architecture's encoding-space enumeration. *)

val run :
  arch:Sb_isa.Arch_sig.arch_id ->
  ?versions:string list ->
  ?max_divergences:int ->
  unit ->
  report
(** Validate every enumerated encoding under every listed DBT version
    (default: all of {!Sb_dbt.Version.all}).  Raises [Invalid_argument] on
    an unknown version name. *)

val ok : ?strict:bool -> report -> bool
(** No divergences and the scan was not truncated; with [~strict:true] the
    enumeration must also tile the selector space (no gaps, no overlaps, no
    unskipped class without cases). *)

val enumeration_complete : report -> bool

val render : ?verbose:bool -> report -> string
(** Human-readable coverage report; [~verbose:true] adds a per-class
    check-count table. *)

val json_schema : string
(** ["simbench-tv-json-2"] — the [schema] field of {!to_json} output
    (bumped when the threaded-lowering [component] attribution was added
    to divergence records). *)

val to_json : report -> Sb_util.Json.t

val check_case :
  (module Sb_isa.Arch_sig.ARCH) ->
  config:Sb_dbt.Config.t ->
  int list ->
  (string * string) option
(** One byte sequence under one configuration, checked against the closure
    emission model and the threaded opstream lowering (both translation
    regimes); [Some (component, detail)] on the first divergence.  Exposed
    for unit tests. *)

val sweep_program :
  arch:Sb_isa.Arch_sig.arch_id ->
  ?config:Sb_dbt.Config.t ->
  ?version:string ->
  read8:(int -> int) ->
  base:int ->
  len:int ->
  unit ->
  Ir_check.violation list
(** Statically sweep an assembled image: decode linearly, chunk at block
    terminators (capped like the DBT's block former), run the
    configuration's optimiser pipeline over each chunk under the
    {!Ir_check} pass validator, and return the (deduplicated) violations.
    The lint verb runs this over every benchmark image. *)
