(** Control-flow graphs over portable benchmark assembly ({!Simbench.Pasm}).

    Blocks are layout-ordered: a block starts at every label and after every
    control-transfer instruction.  Data directives ([Raw_word], [Word_sym],
    [Align], [Org], [Space]) form data-only blocks that the code rules skip.

    Programs can be entered at places no static branch reaches — exception
    vector slots, [Jmp_reg]/[Call_reg] targets loaded from address tables.
    Address-taken labels (referenced by [La] or [Word_sym]) and caller-
    supplied [roots] are therefore extra reachability roots. *)

type loc = {
  index : int;  (** position in the op list *)
  context : string option;  (** nearest preceding label *)
  offset : int;  (** ops past that label *)
}

val string_of_loc : loc -> string

type ref_kind = Branch_target | Call_target | Address

(** How a block's last op hands control onwards. *)
type term =
  | T_fall  (** no transfer: ends at a label boundary or program end *)
  | T_jump of string  (** [Jmp] / unconditional [Br] *)
  | T_cond of string  (** conditional [Br]: target or fallthrough *)
  | T_call of string  (** [Call]: callee plus return to fallthrough *)
  | T_call_reg  (** indirect call: unknown callee, returns to fallthrough *)
  | T_jump_reg  (** indirect jump: unknown target *)
  | T_ret  (** jump through [lr] *)
  | T_stop  (** [Halt] / [Eret]: no static successor *)

type block = {
  id : int;
  start : int;  (** op index of the block's first op (labels included) *)
  labels : string list;
  body : int list;  (** op indices, labels excluded *)
  term : term;
  data_only : bool;
  address_taken : bool;  (** some label referenced by [La] or [Word_sym] *)
}

type t = {
  ops : Simbench.Pasm.op array;
  locs : loc array;
  blocks : block array;
  label_def : (string, int) Hashtbl.t;  (** label -> defining op index *)
  label_block : (string, int) Hashtbl.t;  (** label -> block id *)
  refs : (string * ref_kind * int) list;  (** label, kind, referencing op *)
  dup_labels : (string * int) list;  (** extra definitions of a label *)
}

val build : Simbench.Pasm.op list -> t

val loc : t -> int -> loc

val target : t -> string -> int option
(** Block a label resolves to, if defined. *)

val fall : t -> block -> int option
(** The layout-next block, when [term] can reach it ([T_fall], [T_cond],
    [T_call], [T_call_reg]). *)

val succs : t -> block -> int list
(** All static successors: branch/call targets plus fallthrough. *)

val reachable : ?roots:string list -> t -> bool array
(** Per-block reachability from block 0, address-taken blocks, and
    [roots]. *)

(** Register use/def sets of single ops, over the 7-register Pasm file
    (v0..v4, sp, lr). *)

val uses : Simbench.Pasm.op -> Simbench.Pasm.reg list
val defs : Simbench.Pasm.op -> Simbench.Pasm.reg list

val faults : Simbench.Pasm.op -> bool
(** Ops that can raise a synchronous exception (memory accesses, [Syscall],
    [Undef], and indirect transfers that can prefetch-abort) — the ops
    across which no value may live in the handler-scratch register [v3]. *)
