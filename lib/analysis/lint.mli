(** Static checker for portable benchmark assembly.

    Enforces the conventions {!Simbench.Pasm} documents but the runtime can
    only discover dynamically (as a cross-engine divergence or a wedged
    guest): structural sanity of the label graph, definite initialisation,
    and the three register conventions — [v4] is the runtime's iteration
    counter, [v3] is exception-handler scratch, [sp]/[lr] must balance
    across a phase.  See docs/analysis.md for each rule with a minimal
    failing example. *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  region : string;
      (** where the linted program came from: "program" for whole-image
          rules, "kernel" / "functions" / "handler" for phase-scoped
          rules *)
  loc : Cfg.loc option;
  message : string;
}

val render : finding -> string
(** ["error[use-before-def] program at op 12 (sb_rw+3): ..."]. *)

val errors : finding list -> finding list

val lint_program :
  ?roots:string list -> Simbench.Pasm.op list -> finding list
(** Whole-program rules: undefined / duplicate / unused labels, unreachable
    code, falling off the end (or into data), register use-before-def, and
    [lr] clobbered across nested calls.  [roots] are labels entered by
    hardware (extra reachability roots, registers assumed defined). *)

val lint_bench :
  support:Simbench.Support.t ->
  ?platform:Simbench.Platform.t ->
  Simbench.Bench.t ->
  finding list
(** [lint_program] over the full runtime image ({!Simbench.Rt.ops}) plus the
    phase-scoped convention rules on the benchmark body: [v4] clobbering,
    values live in [v3] across faulting ops, and [sp] imbalance across the
    kernel phase or a function.  For [Category.Application] programs (the
    SPEC-analog workloads, which run fully mapped and take no synchronous
    faults) the [v3] rule is advisory: findings carry [Warning] severity. *)

val lint_suite :
  ?benches:Simbench.Bench.t list ->
  unit ->
  (string * string * finding list) list
(** Every benchmark (default: shipped suite + extension suite) under every
    architecture support package; [(bench, arch, findings)] triples. *)
