open Simbench

type loc = { index : int; context : string option; offset : int }

let string_of_loc l =
  match l.context with
  | Some label -> Printf.sprintf "op %d (%s+%d)" l.index label l.offset
  | None -> Printf.sprintf "op %d" l.index

type ref_kind = Branch_target | Call_target | Address

type term =
  | T_fall
  | T_jump of string
  | T_cond of string
  | T_call of string
  | T_call_reg
  | T_jump_reg
  | T_ret
  | T_stop

type block = {
  id : int;
  start : int;
  labels : string list;
  body : int list;
  term : term;
  data_only : bool;
  address_taken : bool;
}

type t = {
  ops : Pasm.op array;
  locs : loc array;
  blocks : block array;
  label_def : (string, int) Hashtbl.t;
  label_block : (string, int) Hashtbl.t;
  refs : (string * ref_kind * int) list;
  dup_labels : (string * int) list;
}

let is_directive = function
  | Pasm.Raw_word _ | Pasm.Word_sym _ | Pasm.Align _ | Pasm.Org _
  | Pasm.Space _ ->
    true
  | _ -> false

(* Ops after which control cannot simply continue to the next op — they end
   a basic block. *)
let ends_block = function
  | Pasm.Br _ | Pasm.Jmp _ | Pasm.Jmp_reg _ | Pasm.Call _ | Pasm.Call_reg _
  | Pasm.Ret | Pasm.Eret | Pasm.Halt ->
    true
  | _ -> false

let ref_of_op i = function
  | Pasm.Br (_, l) | Pasm.Jmp l -> Some (l, Branch_target, i)
  | Pasm.Call l -> Some (l, Call_target, i)
  | Pasm.La (_, l) | Pasm.Word_sym l -> Some (l, Address, i)
  | _ -> None

let build program =
  let ops = Array.of_list program in
  let n = Array.length ops in
  let locs = Array.make n { index = 0; context = None; offset = 0 } in
  let context = ref None and offset = ref 0 in
  for i = 0 to n - 1 do
    (match ops.(i) with
    | Pasm.L l ->
      context := Some l;
      offset := 0
    | _ -> incr offset);
    locs.(i) <- { index = i; context = !context; offset = !offset }
  done;
  let label_def = Hashtbl.create 64 in
  let dup_labels = ref [] in
  let refs = ref [] in
  for i = 0 to n - 1 do
    (match ops.(i) with
    | Pasm.L l ->
      if Hashtbl.mem label_def l then dup_labels := (l, i) :: !dup_labels
      else Hashtbl.add label_def l i
    | _ -> ());
    match ref_of_op i ops.(i) with
    | Some r -> refs := r :: !refs
    | None -> ()
  done;
  let refs = List.rev !refs in
  let address_taken_labels = Hashtbl.create 16 in
  List.iter
    (fun (l, kind, _) ->
      if kind = Address then Hashtbl.replace address_taken_labels l ())
    refs;
  (* block boundaries: a run of labels, then body ops up to (and including)
     a control transfer, or up to the next label *)
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    while !i < n && (match ops.(!i) with Pasm.L _ -> true | _ -> false) do
      incr i
    done;
    let continue = ref true in
    while !continue && !i < n do
      match ops.(!i) with
      | Pasm.L _ -> continue := false
      | op ->
        incr i;
        if ends_block op then continue := false
    done;
    spans := (start, !i) :: !spans
  done;
  let spans = Array.of_list (List.rev !spans) in
  let blocks =
    Array.mapi
      (fun id (start, stop) ->
        let labels = ref [] and body = ref [] in
        for j = start to stop - 1 do
          match ops.(j) with
          | Pasm.L l -> labels := l :: !labels
          | _ -> body := j :: !body
        done;
        let labels = List.rev !labels and body = List.rev !body in
        let term =
          match if body = [] then None else Some ops.(stop - 1) with
          | Some (Pasm.Jmp l) -> T_jump l
          | Some (Pasm.Br (cond, l)) ->
            if cond = Sb_isa.Uop.Always then T_jump l else T_cond l
          | Some (Pasm.Call l) -> T_call l
          | Some (Pasm.Call_reg _) -> T_call_reg
          | Some (Pasm.Jmp_reg _) -> T_jump_reg
          | Some Pasm.Ret -> T_ret
          | Some (Pasm.Eret | Pasm.Halt) -> T_stop
          | Some _ | None -> T_fall
        in
        let data_only =
          body <> [] && List.for_all (fun j -> is_directive ops.(j)) body
        in
        let address_taken =
          List.exists (Hashtbl.mem address_taken_labels) labels
        in
        { id; start; labels; body; term; data_only; address_taken })
      spans
  in
  let label_block = Hashtbl.create 64 in
  Array.iter
    (fun b ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem label_block l) then
            Hashtbl.add label_block l b.id)
        b.labels)
    blocks;
  { ops; locs; blocks; label_def; label_block; refs; dup_labels = !dup_labels }

let loc g i = g.locs.(i)
let target g l = Hashtbl.find_opt g.label_block l

let fall g b =
  let next = b.id + 1 in
  let can_fall =
    match b.term with
    | T_fall | T_cond _ | T_call _ | T_call_reg -> true
    | T_jump _ | T_jump_reg | T_ret | T_stop -> false
  in
  if can_fall && next < Array.length g.blocks then Some next else None

let succs g b =
  let tgt l = match target g l with Some t -> [ t ] | None -> [] in
  let jumps =
    match b.term with
    | T_jump l | T_cond l | T_call l -> tgt l
    | _ -> []
  in
  let fallthrough = match fall g b with Some f -> [ f ] | None -> [] in
  jumps @ fallthrough

let reachable ?(roots = []) g =
  let n = Array.length g.blocks in
  let seen = Array.make n false in
  let rec visit id =
    if id < n && not seen.(id) then begin
      seen.(id) <- true;
      List.iter visit (succs g g.blocks.(id))
    end
  in
  if n > 0 then visit 0;
  Array.iter (fun b -> if b.address_taken then visit b.id) g.blocks;
  List.iter
    (fun l -> match target g l with Some t -> visit t | None -> ())
    roots;
  seen

let uses = function
  | Pasm.Mov (_, s) -> [ s ]
  | Pasm.Alu (_, _, a, Pasm.R b) -> [ a; b ]
  | Pasm.Alu (_, _, a, Pasm.I _) -> [ a ]
  | Pasm.Cmp (a, Pasm.R b) -> [ a; b ]
  | Pasm.Cmp (a, Pasm.I _) -> [ a ]
  | Pasm.Jmp_reg r | Pasm.Call_reg r -> [ r ]
  | Pasm.Ret -> [ Pasm.lr ]
  | Pasm.Load (_, _, base, _) | Pasm.Load_user (_, base, _) -> [ base ]
  | Pasm.Store (_, s, base, _) | Pasm.Store_user (s, base, _) -> [ s; base ]
  | Pasm.Cop_write (_, s) -> [ s ]
  | Pasm.Cop_write_lr _ -> [ Pasm.lr ]
  | Pasm.Tlb_inv_page r -> [ r ]
  | _ -> []

let defs = function
  | Pasm.Li (r, _) | Pasm.La (r, _) | Pasm.Mov (r, _) -> [ r ]
  | Pasm.Alu (_, d, _, _) -> [ d ]
  | Pasm.Load (_, d, _, _) | Pasm.Load_user (d, _, _) -> [ d ]
  | Pasm.Call _ | Pasm.Call_reg _ -> [ Pasm.lr ]
  | Pasm.Cop_read (d, _) | Pasm.Cop_safe_read d -> [ d ]
  | _ -> []

let faults = function
  | Pasm.Load _ | Pasm.Store _ | Pasm.Load_user _ | Pasm.Store_user _
  | Pasm.Syscall | Pasm.Undef | Pasm.Jmp_reg _ | Pasm.Call_reg _ ->
    true
  | _ -> false
