open Sb_isa

let u32_mask = 0xFFFF_FFFF

(* Symbolic values over the initial machine state.  [Mem]/[Cop] are opaque
   terms indexed by their position in the effect sequence, which also makes
   "the same load" compare equal across the two runs. *)
type expr =
  | Const of int
  | Init of int  (* initial value of guest register r *)
  | Flag0 of int  (* initial flag; 0=n 1=z 2=c 3=v *)
  | Pc0
  | Binop of Uop.alu_op * expr * expr
  | Flag of int * Uop.alu_op * expr * expr  (* flag f after a set_flags op *)
  | Mem of int  (* value produced by effect #i (a load) *)
  | Cop of int  (* value produced by effect #i (a coprocessor read) *)
  | Ite of guard * expr * expr

and guard = Uop.cond * expr * expr * expr * expr  (* cond over n z c v *)

type event =
  | E_load of Uop.width * expr * bool
  | E_store of Uop.width * expr * expr * bool  (* addr, value, user *)
  | E_cop_read of int
  | E_cop_write of int * expr
  | E_svc of int
  | E_undef
  | E_eret
  | E_tlb_page of expr
  | E_tlb_all
  | E_wfi
  | E_halt

type state = {
  regs : expr array;
  flags : expr array;
  mutable pc : expr;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
}

let init_state () =
  {
    regs = Array.init 16 (fun r -> Init r);
    flags = Array.init 4 (fun f -> Flag0 f);
    pc = Pc0;
    events = [];
    n_events = 0;
  }

(* Folding mirrors what the passes may do: constant evaluation goes through
   the same Alu_eval the optimiser and every engine use, and the algebraic
   identities are exactly the ones peephole exploits (all exact on u32). *)
let binop op a b =
  match (op, a, b) with
  | _, Const x, Const y -> Const (Sb_sim.Alu_eval.eval op x y)
  | ( (Uop.Add | Uop.Sub | Uop.Orr | Uop.Xor | Uop.Lsl | Uop.Lsr | Uop.Asr),
      x,
      Const 0 ) ->
    x
  | (Uop.Add | Uop.Orr), Const 0, x -> x
  | Uop.Mul, x, Const 1 | Uop.Mul, Const 1, x -> x
  | Uop.Mul, _, Const 0 | Uop.Mul, Const 0, _ -> Const 0
  | _ -> Binop (op, a, b)

let operand st = function
  | Uop.Reg r -> st.regs.(r)
  | Uop.Imm v -> Const (v land u32_mask)

let push st ev =
  st.events <- ev :: st.events;
  st.n_events <- st.n_events + 1

let exec st ~va ~len uop =
  match uop with
  | Uop.Nop -> ()
  | Uop.Alu { op; rd; rn; rm; set_flags } ->
    let a = operand st rn and b = operand st rm in
    if set_flags then
      for f = 0 to 3 do
        st.flags.(f) <- Flag (f, op, a, b)
      done;
    (match rd with
    | Some rd -> st.regs.(rd) <- binop op a b
    | None -> ())
  | Uop.Load { width; rd; base; offset; user } ->
    let addr = binop Uop.Add (operand st base) (Const offset) in
    let idx = st.n_events in
    push st (E_load (width, addr, user));
    st.regs.(rd) <- Mem idx
  | Uop.Store { width; rs; base; offset; user } ->
    let addr = binop Uop.Add (operand st base) (Const offset) in
    push st (E_store (width, addr, st.regs.(rs), user))
  | Uop.Branch { cond; target; link } -> (
    let ret = Const ((va + len) land u32_mask) in
    match cond with
    | Uop.Always ->
      (match link with Some l -> st.regs.(l) <- ret | None -> ());
      st.pc <-
        (match target with
        | Uop.Direct t -> Const t
        | Uop.Indirect r -> st.regs.(r))
    | _ ->
      let g =
        (cond, st.flags.(0), st.flags.(1), st.flags.(2), st.flags.(3))
      in
      (match link with
      | Some l -> st.regs.(l) <- Ite (g, ret, st.regs.(l))
      | None -> ());
      let tgt =
        match target with
        | Uop.Direct t -> Const t
        | Uop.Indirect r -> st.regs.(r)
      in
      st.pc <- Ite (g, tgt, st.pc))
  | Uop.Svc n -> push st (E_svc n)
  | Uop.Undef -> push st E_undef
  | Uop.Eret -> push st E_eret
  | Uop.Cop_read { rd; creg } ->
    let idx = st.n_events in
    push st (E_cop_read creg);
    st.regs.(rd) <- Cop idx
  | Uop.Cop_write { creg; src } -> push st (E_cop_write (creg, operand st src))
  | Uop.Tlb_inv_page r -> push st (E_tlb_page st.regs.(r))
  | Uop.Tlb_inv_all -> push st E_tlb_all
  | Uop.Wfi -> push st E_wfi
  | Uop.Halt -> push st E_halt

(* ---------------- pretty-printing ----------------------------------- *)

let op_name = function
  | Uop.Add -> "add"
  | Uop.Sub -> "sub"
  | Uop.And_ -> "and"
  | Uop.Orr -> "orr"
  | Uop.Xor -> "xor"
  | Uop.Lsl -> "lsl"
  | Uop.Lsr -> "lsr"
  | Uop.Asr -> "asr"
  | Uop.Mul -> "mul"

let flag_name = [| "n"; "z"; "c"; "v" |]

let cond_name = function
  | Uop.Always -> "al"
  | Uop.Eq -> "eq"
  | Uop.Ne -> "ne"
  | Uop.Lt -> "lt"
  | Uop.Ge -> "ge"
  | Uop.Ltu -> "ltu"
  | Uop.Geu -> "geu"

let rec expr_str = function
  | Const v -> Printf.sprintf "0x%x" v
  | Init r -> Printf.sprintf "r%d.in" r
  | Flag0 f -> flag_name.(f) ^ ".in"
  | Pc0 -> "pc.in"
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (op_name op) (expr_str a) (expr_str b)
  | Flag (f, op, a, b) ->
    Printf.sprintf "%s(%s %s %s)" flag_name.(f) (op_name op) (expr_str a)
      (expr_str b)
  | Mem i -> Printf.sprintf "load#%d" i
  | Cop i -> Printf.sprintf "cop#%d" i
  | Ite ((c, _, _, _, _), t, e) ->
    Printf.sprintf "(if %s then %s else %s)" (cond_name c) (expr_str t)
      (expr_str e)

let event_str = function
  | E_load (_, addr, user) ->
    Printf.sprintf "load%s[%s]" (if user then ".user" else "") (expr_str addr)
  | E_store (_, addr, v, user) ->
    Printf.sprintf "store%s[%s]=%s"
      (if user then ".user" else "")
      (expr_str addr) (expr_str v)
  | E_cop_read c -> Printf.sprintf "cop-read[%d]" c
  | E_cop_write (c, v) -> Printf.sprintf "cop-write[%d]=%s" c (expr_str v)
  | E_svc n -> Printf.sprintf "svc#%d" n
  | E_undef -> "undef"
  | E_eret -> "eret"
  | E_tlb_page a -> Printf.sprintf "tlb-inv-page[%s]" (expr_str a)
  | E_tlb_all -> "tlb-inv-all"
  | E_wfi -> "wfi"
  | E_halt -> "halt"

(* ---------------- comparison ---------------------------------------- *)

let diff a b =
  let mismatch = ref None in
  let note what va vb =
    if !mismatch = None then mismatch := Some (what, va, vb)
  in
  for r = 0 to 15 do
    if a.regs.(r) <> b.regs.(r) then
      note (Printf.sprintf "register r%d" r)
        (expr_str a.regs.(r))
        (expr_str b.regs.(r))
  done;
  for f = 0 to 3 do
    if a.flags.(f) <> b.flags.(f) then
      note
        (Printf.sprintf "flag %s" flag_name.(f))
        (expr_str a.flags.(f))
        (expr_str b.flags.(f))
  done;
  if a.pc <> b.pc then note "pc" (expr_str a.pc) (expr_str b.pc);
  (if a.events <> b.events then
     let ea = List.rev a.events and eb = List.rev b.events in
     let rec first i = function
       | [], [] -> ()
       | x :: xs, y :: ys ->
         if x = y then first (i + 1) (xs, ys)
         else
           note
             (Printf.sprintf "effect #%d" i)
             (event_str x) (event_str y)
       | x :: _, [] -> note (Printf.sprintf "effect #%d" i) (event_str x) "-"
       | [], y :: _ -> note (Printf.sprintf "effect #%d" i) "-" (event_str y)
     in
     first 0 (ea, eb));
  match !mismatch with
  | None -> None
  | Some (what, va, vb) ->
    Some (Printf.sprintf "%s: %s (before) vs %s (after)" what va vb)

type violation = { pass : string; va : int; index : int; detail : string }

exception Found of violation

let check ~pass ~before ~after =
  let nb = Array.length before and na = Array.length after in
  if nb <> na then
    Some
      {
        pass;
        va = (if nb > 0 then before.(0).Sb_dbt.Ir.va else 0);
        index = 0;
        detail =
          Printf.sprintf "pass changed the instruction count (%d -> %d)" nb na;
      }
  else
    let sb = init_state () and sa = init_state () in
    try
      for i = 0 to nb - 1 do
        let ib = before.(i) and ia = after.(i) in
        List.iter (exec sb ~va:ib.Sb_dbt.Ir.va ~len:ib.Sb_dbt.Ir.len)
          ib.Sb_dbt.Ir.uops;
        List.iter (exec sa ~va:ia.Sb_dbt.Ir.va ~len:ia.Sb_dbt.Ir.len)
          ia.Sb_dbt.Ir.uops;
        match diff sb sa with
        | Some detail ->
          raise (Found { pass; va = ib.Sb_dbt.Ir.va; index = i; detail })
        | None -> ()
      done;
      None
    with Found v -> Some v

let message v =
  Printf.sprintf
    "pass %S is not architecturally transparent at va=0x%x (insn %d): %s"
    v.pass v.va v.index v.detail

let validator report ~pass ~before ~after =
  match check ~pass ~before ~after with
  | Some v -> report v
  | None -> ()
