type violation = {
  pass : string;
  version : string option;
  va : int;
  index : int;
  detail : string;
}

exception Found of violation

let check ?version ~pass ~before ~after () =
  let nb = Array.length before and na = Array.length after in
  if nb <> na then
    Some
      {
        pass;
        version;
        va = (if nb > 0 then before.(0).Sb_dbt.Ir.va else 0);
        index = 0;
        detail =
          Printf.sprintf "pass changed the instruction count (%d -> %d)" nb na;
      }
  else
    let sb = Sym.init_state () and sa = Sym.init_state () in
    try
      for i = 0 to nb - 1 do
        let ib = before.(i) and ia = after.(i) in
        List.iter (Sym.exec sb ~va:ib.Sb_dbt.Ir.va ~len:ib.Sb_dbt.Ir.len)
          ib.Sb_dbt.Ir.uops;
        List.iter (Sym.exec sa ~va:ia.Sb_dbt.Ir.va ~len:ia.Sb_dbt.Ir.len)
          ia.Sb_dbt.Ir.uops;
        match Sym.diff sb sa with
        | Some detail ->
          raise (Found { pass; version; va = ib.Sb_dbt.Ir.va; index = i; detail })
        | None -> ()
      done;
      None
    with Found v -> Some v

let message v =
  Printf.sprintf
    "pass %S%s is not architecturally transparent at va=0x%x (insn %d): %s"
    v.pass
    (match v.version with
    | Some ver -> Printf.sprintf " (dbt %s)" ver
    | None -> "")
    v.va v.index v.detail

let validator ?version report ~pass ~before ~after =
  match check ?version ~pass ~before ~after () with
  | Some v -> report v
  | None -> ()
