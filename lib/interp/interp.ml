open Sb_isa
open Sb_sim

module Config = struct
  type t = { tlb_entries : int; predecode : bool; front_cache : bool }

  let default = { tlb_entries = 256; predecode = true; front_cache = true }
end

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

(* direct-mapped fetch front cache: virtual page -> predecoded page array *)
let fetch_front_bits = 6
let fetch_front_size = 1 lsl fetch_front_bits
let fetch_front_mask = fetch_front_size - 1

module Make_configured
    (A : Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) =
struct
  let name = Printf.sprintf "interp-%s" A.name

  let features =
    [
      ("Execution Model", "Fast Interpreter");
      ("Memory Access", "Single Level Cache");
      ("Code Generation", "None");
      ("Control Flow", "Interpreted");
      ("Interrupts", "Insn. Boundaries");
      ("Synchronous Exceptions", "Interpreted");
      ("Undefined Instruction", "Interpreted");
    ]

  exception Guest_fault of {
    vector : Exn.vector;
    cause : int;
    far : int option;
    return_addr : int;
  }

  exception Stop of Run_result.stop_reason

  (* One slot of the fetch front cache.  A hit proves: this virtual page
     translated to the page whose predecode array is [fs_arr], with execute
     permission, under this ASID and privilege, and no translation-affecting
     event ([fs_gen]) has happened since.  Self-modifying code needs no tag:
     SMC invalidation clears the array in place, so stale entries read as
     [None] and fall back to the slow path. *)
  type fetch_slot = {
    mutable fs_vpn : int;  (* -1 = empty *)
    mutable fs_asid : int;
    mutable fs_gen : int;
    mutable fs_mode : Sb_mmu.Access.privilege;
    mutable fs_arr : Uop.decoded option array;
  }

  type ctx = {
    machine : Machine.t;
    cpu : Cpu.t;
    bus : Sb_mem.Bus.t;
    perf : Perf.t;
    tlb : Sb_mmu.Tlb.t;
    decode_cache : (int, Uop.decoded option array) Hashtbl.t;
    fetch_front : fetch_slot array;
    mutable fetch_gen : int;
        (* bumped on any event that may change va->pa mappings, mirroring
           the DBT's chain_gen *)
    code_pages : Bytes.t;
    mutable timer_backlog : int;
  }

  let make_ctx machine perf =
    let ram_pages = (Sb_mem.Bus.ram_size machine.Machine.bus + page_mask) / page_size in
    {
      machine;
      cpu = machine.Machine.cpu;
      bus = machine.Machine.bus;
      perf;
      tlb = Sb_mmu.Tlb.create ~entries:C.config.Config.tlb_entries;
      decode_cache = Hashtbl.create 64;
      fetch_front =
        Array.init fetch_front_size (fun _ ->
            {
              fs_vpn = -1;
              fs_asid = 0;
              fs_gen = 0;
              fs_mode = Sb_mmu.Access.Kernel;
              fs_arr = [||];
            });
      fetch_gen = 0;
      code_pages = Bytes.make ((ram_pages + 7) / 8) '\000';
      timer_backlog = 0;
    }

  (* code-page bitmap for self-modifying-code detection *)
  let code_bit_get ctx ppage =
    Char.code (Bytes.get ctx.code_pages (ppage lsr 3)) land (1 lsl (ppage land 7)) <> 0

  let code_bit_set ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) lor (1 lsl (ppage land 7))))

  let code_bit_clear ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) land lnot (1 lsl (ppage land 7))))

  let data_fault ~iaddr ~kind ~va fault =
    let cause = Exn.Cause.of_fault ~kind fault in
    match kind with
    | Sb_mmu.Access.Execute ->
      raise
        (Guest_fault
           { vector = Exn.Prefetch_abort; cause; far = Some va; return_addr = va })
    | Sb_mmu.Access.Read | Sb_mmu.Access.Write ->
      raise
        (Guest_fault
           { vector = Exn.Data_abort; cause; far = Some va; return_addr = iaddr })

  let bus_fault ~iaddr ~kind ~va =
    match kind with
    | Sb_mmu.Access.Execute ->
      raise
        (Guest_fault
           {
             vector = Exn.Prefetch_abort;
             cause = Exn.Cause.bus_error;
             far = Some va;
             return_addr = va;
           })
    | Sb_mmu.Access.Read | Sb_mmu.Access.Write ->
      raise
        (Guest_fault
           {
             vector = Exn.Data_abort;
             cause = Exn.Cause.bus_error;
             far = Some va;
             return_addr = iaddr;
           })

  let walker_read32 ctx pa =
    try Sb_mem.Bus.read32 ctx.bus pa with Sb_mem.Bus.Fault _ -> 0

  let translate ctx ~va ~kind ~priv ~iaddr =
    if not (Cpu.mmu_enabled ctx.cpu) then va
    else begin
      let vpn = va lsr page_shift in
      let asid = ctx.cpu.Cpu.cop.(Cregs.asid) in
      match Sb_mmu.Tlb.lookup ctx.tlb ~vpn ~asid with
      | Some e ->
        Perf.incr ctx.perf Perf.Tlb_hit;
        if Sb_mmu.Access.Ap.permits ~ap:e.Sb_mmu.Tlb.ap ~xn:e.Sb_mmu.Tlb.xn kind priv
        then (e.Sb_mmu.Tlb.ppn lsl page_shift) lor (va land page_mask)
        else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission
      | None -> (
        Perf.incr ctx.perf Perf.Tlb_miss;
        Perf.incr ctx.perf Perf.Mmu_walks;
        let ttbr = ctx.cpu.Cpu.cop.(Cregs.ttbr) in
        match Sb_mmu.Walker.walk ~read32:(walker_read32 ctx) ~ttbr ~va with
        | Error fault -> data_fault ~iaddr ~kind ~va fault
        | Ok m ->
          Perf.add ctx.perf Perf.Walk_levels m.Sb_mmu.Walker.levels;
          Sb_mmu.Tlb.insert ctx.tlb
            {
              Sb_mmu.Tlb.vpn;
              ppn = m.Sb_mmu.Walker.pa_page lsr page_shift;
              ap = m.Sb_mmu.Walker.ap;
              xn = m.Sb_mmu.Walker.xn;
              asid;
            };
          if Sb_mmu.Access.Ap.permits ~ap:m.Sb_mmu.Walker.ap ~xn:m.Sb_mmu.Walker.xn
               kind priv
          then m.Sb_mmu.Walker.pa_page lor (va land page_mask)
          else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission)
    end

  let read_phys ctx ~iaddr ~va width pa =
    if Sb_mem.Bus.is_ram ctx.bus pa then
      let ram = Sb_mem.Bus.ram ctx.bus in
      match width with
      | Uop.W8 -> Sb_mem.Phys_mem.read8 ram pa
      | Uop.W16 -> Sb_mem.Phys_mem.read16 ram pa
      | Uop.W32 -> Sb_mem.Phys_mem.read32 ram pa
    else begin
      Perf.incr ctx.perf Perf.Io_reads;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.read8 ctx.bus pa
        | Uop.W16 -> Sb_mem.Bus.read16 ctx.bus pa
        | Uop.W32 -> Sb_mem.Bus.read32 ctx.bus pa
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Read ~va
    end

  let smc_check ctx pa =
    let ppage = pa lsr page_shift in
    if code_bit_get ctx ppage then begin
      (* clear in place: the page array is reused when the code is
         re-decoded, as a pre-decoding interpreter would *)
      (match Hashtbl.find_opt ctx.decode_cache ppage with
      | Some arr -> Array.fill arr 0 page_size None
      | None -> ());
      code_bit_clear ctx ppage;
      Perf.incr ctx.perf Perf.Smc_invalidations
    end

  let write_phys ctx ~iaddr ~va width pa v =
    if Sb_mem.Bus.is_ram ctx.bus pa then begin
      let ram = Sb_mem.Bus.ram ctx.bus in
      (match width with
      | Uop.W8 -> Sb_mem.Phys_mem.write8 ram pa v
      | Uop.W16 -> Sb_mem.Phys_mem.write16 ram pa v
      | Uop.W32 -> Sb_mem.Phys_mem.write32 ram pa v);
      smc_check ctx pa
    end
    else begin
      Perf.incr ctx.perf Perf.Io_writes;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.write8 ctx.bus pa v
        | Uop.W16 -> Sb_mem.Bus.write16 ctx.bus pa v
        | Uop.W32 -> Sb_mem.Bus.write32 ctx.bus pa v
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Write ~va
    end

  let fetch_byte ctx ~iaddr a =
    let pa = translate ctx ~va:a ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr in
    if Sb_mem.Bus.is_ram ctx.bus pa then
      Sb_mem.Phys_mem.read8 (Sb_mem.Bus.ram ctx.bus) pa
    else bus_fault ~iaddr ~kind:Sb_mmu.Access.Execute ~va:a

  let decode_at ctx va =
    Perf.incr ctx.perf Perf.Decodes;
    A.decode ~fetch8:(fetch_byte ctx ~iaddr:va) ~addr:va

  let use_fetch_front = C.config.Config.predecode && C.config.Config.front_cache

  let fetch_decode_slow ctx va =
    let pa =
      translate ctx ~va ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr:va
    in
    if not (Sb_mem.Bus.is_ram ctx.bus pa) then
      bus_fault ~iaddr:va ~kind:Sb_mmu.Access.Execute ~va
    else if not C.config.Config.predecode then decode_at ctx va
    else begin
      let ppage = pa lsr page_shift in
      let arr =
        match Hashtbl.find_opt ctx.decode_cache ppage with
        | Some arr -> arr
        | None ->
          let arr = Array.make page_size None in
          Hashtbl.add ctx.decode_cache ppage arr;
          code_bit_set ctx ppage;
          arr
      in
      if use_fetch_front then begin
        (* the translation above vouched for (vpn, asid, mode) -> arr with
           execute permission; remember it for subsequent fetches *)
        let vpn = va lsr page_shift in
        let slot = ctx.fetch_front.(vpn land fetch_front_mask) in
        slot.fs_vpn <- vpn;
        slot.fs_asid <- ctx.cpu.Cpu.cop.(Cregs.asid);
        slot.fs_gen <- ctx.fetch_gen;
        slot.fs_mode <- ctx.cpu.Cpu.mode;
        slot.fs_arr <- arr
      end;
      match arr.(pa land page_mask) with
      | Some d when d.Uop.addr = va -> d
      | _ ->
        let d = decode_at ctx va in
        (* never cache an instruction that straddles a page: its tail bytes
           live on a page whose invalidation would not reach this entry *)
        if (va + d.Uop.length - 1) lsr page_shift <> va lsr page_shift then d
        else begin
          arr.(pa land page_mask) <- Some d;
          (* the page holds decoded state again: re-arm write detection *)
          code_bit_set ctx ppage;
          d
        end
    end

  (* Fast path: one tag compare skips the TLB probe, the permission check
     and the decode-cache hash lookup for fetches that stay on a recently
     fetched page — the common case for straight-line code and tight
     loops. *)
  let fetch_decode ctx va =
    if not use_fetch_front then fetch_decode_slow ctx va
    else begin
      let vpn = va lsr page_shift in
      let slot =
        Array.unsafe_get ctx.fetch_front (vpn land fetch_front_mask)
      in
      if
        slot.fs_vpn = vpn
        && slot.fs_gen = ctx.fetch_gen
        && slot.fs_asid = ctx.cpu.Cpu.cop.(Cregs.asid)
        && slot.fs_mode = ctx.cpu.Cpu.mode
      then begin
        match slot.fs_arr.(va land page_mask) with
        | Some d when d.Uop.addr = va ->
          Perf.incr ctx.perf Perf.Front_cache_hits;
          d
        | _ -> fetch_decode_slow ctx va
      end
      else fetch_decode_slow ctx va
    end

  let operand ctx = function
    | Uop.Reg r -> ctx.cpu.Cpu.regs.(r)
    | Uop.Imm v -> v land 0xFFFF_FFFF

  let flush_translation ctx =
    Sb_mmu.Tlb.flush ctx.tlb;
    ctx.fetch_gen <- ctx.fetch_gen + 1

  let exec_uop ctx (d : Uop.decoded) uop =
    let cpu = ctx.cpu in
    match uop with
    | Uop.Nop -> ()
    | Uop.Alu { op; rd; rn; rm; set_flags } ->
      let a = operand ctx rn in
      let b = operand ctx rm in
      if set_flags then begin
        let result, n, z, c, v = Alu_eval.eval_flags op a b in
        cpu.Cpu.flag_n <- n;
        cpu.Cpu.flag_z <- z;
        cpu.Cpu.flag_c <- c;
        cpu.Cpu.flag_v <- v;
        match rd with Some rd -> cpu.Cpu.regs.(rd) <- result | None -> ()
      end
      else begin
        match rd with
        | Some rd -> cpu.Cpu.regs.(rd) <- Alu_eval.eval op a b
        | None -> ignore (Alu_eval.eval op a b)
      end
    | Uop.Load { width; rd; base; offset; user } ->
      Perf.incr ctx.perf Perf.Loads;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ~va ~kind:Sb_mmu.Access.Read ~priv ~iaddr:d.Uop.addr in
      cpu.Cpu.regs.(rd) <- read_phys ctx ~iaddr:d.Uop.addr ~va width pa
    | Uop.Store { width; rs; base; offset; user } ->
      Perf.incr ctx.perf Perf.Stores;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ~va ~kind:Sb_mmu.Access.Write ~priv ~iaddr:d.Uop.addr in
      write_phys ctx ~iaddr:d.Uop.addr ~va width pa cpu.Cpu.regs.(rs)
    | Uop.Branch { cond; target; link } ->
      (match target with
      | Uop.Direct _ -> Perf.incr ctx.perf Perf.Branch_direct
      | Uop.Indirect _ -> Perf.incr ctx.perf Perf.Branch_indirect);
      let taken =
        Uop.eval_cond cond ~n:cpu.Cpu.flag_n ~z:cpu.Cpu.flag_z ~c:cpu.Cpu.flag_c
          ~v:cpu.Cpu.flag_v
      in
      if taken then begin
        Perf.incr ctx.perf Perf.Branch_taken;
        let return_addr = d.Uop.addr + d.Uop.length in
        (match link with
        | Some l -> cpu.Cpu.regs.(l) <- return_addr land 0xFFFF_FFFF
        | None -> ());
        (match target with
        | Uop.Direct t -> cpu.Cpu.pc <- t
        | Uop.Indirect r -> cpu.Cpu.pc <- cpu.Cpu.regs.(r));
        if cpu.Cpu.pc lsr page_shift <> d.Uop.addr lsr page_shift then
          Perf.incr ctx.perf
            (match target with
            | Uop.Direct _ -> Perf.Branch_cross_direct
            | Uop.Indirect _ -> Perf.Branch_cross_indirect)
      end
    | Uop.Svc _ ->
      raise
        (Guest_fault
           {
             vector = Exn.Syscall;
             cause = Exn.Cause.syscall;
             far = None;
             return_addr = d.Uop.addr + d.Uop.length;
           })
    | Uop.Undef ->
      raise
        (Guest_fault
           {
             vector = Exn.Undefined;
             cause = Exn.Cause.undefined;
             far = None;
             return_addr = d.Uop.addr;
           })
    | Uop.Eret -> Exn.eret cpu
    | Uop.Cop_read { rd; creg } -> (
      match Cop.read cpu ~creg with
      | Ok v ->
        Perf.incr ctx.perf Perf.Cop_reads;
        cpu.Cpu.regs.(rd) <- v
      | Error `Undefined ->
        raise
          (Guest_fault
             {
               vector = Exn.Undefined;
               cause = Exn.Cause.undefined;
               far = None;
               return_addr = d.Uop.addr;
             }))
    | Uop.Cop_write { creg; src } -> (
      let value = operand ctx src in
      match Cop.write cpu ~creg ~value with
      | Ok Cop.No_effect -> Perf.incr ctx.perf Perf.Cop_writes
      | Ok Cop.Translation_changed ->
        Perf.incr ctx.perf Perf.Cop_writes;
        flush_translation ctx
      | Ok Cop.Asid_changed ->
        (* tagged TLB: switching address spaces keeps the entries *)
        Perf.incr ctx.perf Perf.Cop_writes
      | Error `Undefined ->
        raise
          (Guest_fault
             {
               vector = Exn.Undefined;
               cause = Exn.Cause.undefined;
               far = None;
               return_addr = d.Uop.addr;
             }))
    | Uop.Tlb_inv_page r ->
      Perf.incr ctx.perf Perf.Tlb_inv_page_ops;
      Sb_mmu.Tlb.invalidate_page ctx.tlb
        ~vpn:(cpu.Cpu.regs.(r) lsr page_shift)
        ~asid:cpu.Cpu.cop.(Cregs.asid);
      ctx.fetch_gen <- ctx.fetch_gen + 1
    | Uop.Tlb_inv_all ->
      Perf.incr ctx.perf Perf.Tlb_flush_ops;
      Sb_mmu.Tlb.flush ctx.tlb;
      ctx.fetch_gen <- ctx.fetch_gen + 1
    | Uop.Wfi -> (
      match Runner.wait_for_interrupt ctx.machine ~perf:ctx.perf with
      | `Wake -> ()
      | `Deadlock -> raise (Stop Run_result.Wfi_deadlock))
    | Uop.Halt -> raise (Stop Run_result.Halted)

  let exec_insn ctx (d : Uop.decoded) =
    ctx.cpu.Cpu.pc <- (d.Uop.addr + d.Uop.length) land 0xFFFF_FFFF;
    List.iter (exec_uop ctx d) d.uops;
    Perf.incr ctx.perf Perf.Insns;
    Perf.add ctx.perf Perf.Uops (List.length d.uops)

  let deliver ctx (vector, cause, far, return_addr) =
    Perf.incr ctx.perf Perf.Exceptions_total;
    (match vector with
    | Exn.Data_abort -> Perf.incr ctx.perf Perf.Data_abort
    | Exn.Prefetch_abort -> Perf.incr ctx.perf Perf.Prefetch_abort
    | Exn.Undefined -> Perf.incr ctx.perf Perf.Undef_insn
    | Exn.Syscall -> Perf.incr ctx.perf Perf.Svc_taken
    | Exn.Irq -> Perf.incr ctx.perf Perf.Irq_taken
    | Exn.Reset -> ());
    Exn.enter ctx.cpu vector ~return_addr ?far ~cause ()

  let take_irq ctx =
    deliver ctx (Exn.Irq, Exn.Cause.irq, None, ctx.cpu.Cpu.pc)

  let timer_tick ctx =
    ctx.timer_backlog <- ctx.timer_backlog + 1;
    if ctx.timer_backlog >= 64 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  let flush_timer ctx =
    if ctx.timer_backlog > 0 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  (* Leaving at a switch point: push any batched timer ticks to the device
     so the snapshot (and the engine that resumes it) sees the same timer
     state a cold run would at this instruction. *)
  let switch_stop ctx =
    flush_timer ctx;
    raise (Stop Run_result.Switch_point)

  (* A phase boundary was crossed: flush batched device time so timer
     state is a pure function of retired instructions at every phase
     edge — a run resumed from a phase snapshot then ticks identically
     to one that crossed the boundary itself. *)
  let phase_sync ctx benchdev =
    flush_timer ctx;
    Sb_mem.Benchdev.clear_sync benchdev;
    if Sb_mem.Benchdev.stop_pending benchdev then switch_stop ctx

  let execute ctx ~max_insns =
    let steps = ref 0 in
    let benchdev = ctx.machine.Machine.benchdev in
    try
      while !steps < max_insns do
        if Sb_mem.Benchdev.sync_pending benchdev then phase_sync ctx benchdev;
        if Machine.irq_pending ctx.machine then take_irq ctx
        else begin
          (try
             let d = fetch_decode ctx ctx.cpu.Cpu.pc in
             exec_insn ctx d
           with Guest_fault { vector; cause; far; return_addr } ->
             deliver ctx (vector, cause, far, return_addr));
          incr steps;
          timer_tick ctx
        end
      done;
      Run_result.Insn_limit
    with Stop reason -> reason

  (* Any run exit flushes the batched ticks: at every run boundary the
     timer count is then an exact function of retired instructions, so a
     snapshot taken between runs (engine switch, debugger step) carries
     complete device time and no ticks are stranded in the context. *)
  let execute ctx ~max_insns =
    let stop = execute ctx ~max_insns in
    flush_timer ctx;
    stop

  (* The last run's translation state (TLB, decode cache, fetch front) is
     kept and revalidated against [(machine, state_gen)]: a debugger
     stepping the same machine reuses it instead of re-deriving everything
     per instruction, while any external state change (load_program,
     reset, snapshot restore, Machine.touch) forces a rebuild. *)
  let session : (Machine.t * int * ctx) option ref = ref None

  let ctx_for machine =
    match !session with
    | Some (m, gen, ctx)
      when m == machine && gen = machine.Machine.state_gen ->
      (* the ctx owns its counter array (compiled state may capture it);
         a new run starts it from zero in place *)
      Perf.reset ctx.perf;
      ctx
    | _ ->
      let ctx = make_ctx machine (Perf.create ()) in
      session := Some (machine, machine.Machine.state_gen, ctx);
      ctx

  let run ?max_insns machine =
    let max_insns =
      match max_insns with Some n -> n | None -> !Runner.insn_budget
    in
    let ctx = ctx_for machine in
    Runner.wrap ~name ~machine ~perf:ctx.perf
      ~execute:(fun () -> execute ctx ~max_insns)
end

module Make (A : Arch_sig.ARCH) =
  Make_configured
    (A)
    (struct
      let config = Config.default
    end)
