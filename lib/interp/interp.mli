(** Fast interpreter engine (the SimIt-ARM analog).

    Implementation techniques, mirroring the paper's Figure 4 row:
    - execution model: pre-decoded interpretation (a per-physical-page
      decode cache avoids re-decoding hot code);
    - memory access: single-level page cache (one unified software TLB);
    - no code generation;
    - control flow: interpreted (every branch re-enters the dispatch loop);
    - interrupts checked at instruction boundaries;
    - synchronous exceptions interpreted directly.

    Self-modifying code is handled with a per-page code bitmap: a store to a
    page holding pre-decoded instructions drops that page's decode cache. *)

module Make (A : Sb_isa.Arch_sig.ARCH) : Sb_sim.Engine.ENGINE

module Config : sig
  type t = {
    tlb_entries : int;      (** unified TLB size (power of two) *)
    predecode : bool;       (** false degrades to decode-every-time *)
    front_cache : bool;
        (** direct-mapped (virtual page -> predecode array) cache in front
            of the TLB probe and decode-cache lookup; invalidated by the
            same translation-change events that flush the TLB, and immune
            to self-modifying code because SMC clears the predecode arrays
            in place.  Off only for ablation. *)
  }

  val default : t
end

module Make_configured (A : Sb_isa.Arch_sig.ARCH) (C : sig
  val config : Config.t
end) : Sb_sim.Engine.ENGINE
(** Ablation entry point: the TLB-geometry and pre-decode sweeps build
    engines with non-default configurations. *)
