(* Host-side micro-TLB: a direct-mapped (virtual page -> host byte offset)
   cache in front of the engine's architectural page cache.  An entry is a
   proof that, at fill time, the translation (vpn, asid, priv, kind) was
   walked, permitted, and landed on a page wholly resident in flat RAM —
   so a hit may read or write Phys_mem without bounds checks or bus
   dispatch.  The access kind is not tagged: engines keep one instance per
   kind (read / write / execute), which keeps the probe to two compares. *)

type t = {
  keys : int array;  (* packed (priv, asid, vpn); -1 = empty *)
  bases : int array;  (* host byte offset of the page base in flat RAM *)
  gens : int array;  (* generation the entry was filled under *)
  mask : int;
  mutable gen : int;
}

let vpn_bits = 20
let vpn_mask = (1 lsl vpn_bits) - 1

(* a 32-bit VA has at most 2^20 pages, so asid and priv pack above it *)
let key ~vpn ~asid ~priv = ((((asid lsl 1) lor priv) lsl vpn_bits) lor vpn)

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Mtlb.create: entries must be a positive power of two";
  {
    keys = Array.make entries (-1);
    bases = Array.make entries 0;
    gens = Array.make entries (-1);
    mask = entries - 1;
    gen = 0;
  }

let entries t = Array.length t.keys

let probe t ~vpn ~asid ~priv =
  let i = vpn land t.mask in
  if
    Array.unsafe_get t.keys i = key ~vpn ~asid ~priv
    && Array.unsafe_get t.gens i = t.gen
  then Array.unsafe_get t.bases i
  else -1

let fill t ~vpn ~asid ~priv ~base =
  let i = vpn land t.mask in
  t.keys.(i) <- key ~vpn ~asid ~priv;
  t.bases.(i) <- base;
  t.gens.(i) <- t.gen

let invalidate_page t ~vpn =
  (* any ASID, any privilege: conservative over-invalidation is always
     safe, and TLBIMVA is rare enough that precision does not pay *)
  let i = vpn land t.mask in
  if t.keys.(i) >= 0 && t.keys.(i) land vpn_mask = vpn then t.keys.(i) <- -1

let flush t = t.gen <- t.gen + 1

let generation t = t.gen
