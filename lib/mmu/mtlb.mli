(** Host-side micro-TLB: a direct-mapped (virtual page -> host byte offset)
    cache used by the DBT's flat-memory fast path.

    Unlike {!Tlb} (which models a guest-visible TLB for timing studies),
    this structure is a host optimization: a hit is a proof that at fill
    time the translation was walked, permitted, and resolved to a page
    wholly resident in flat RAM, so the caller may access {!Sb_mem.Phys_mem}
    via its unchecked accessors.  Entries are tagged with (vpn, asid,
    privilege) and a generation number; [flush] is O(1) — it bumps the
    generation, invalidating every entry lazily.

    The access kind (read / write / execute) is deliberately not part of
    the key: engines keep one instance per kind so that a probe is a single
    index plus two compares. *)

type t

val create : entries:int -> t
(** [entries] must be a positive power of two. *)

val entries : t -> int

val probe : t -> vpn:int -> asid:int -> priv:int -> int
(** Host byte offset of the page base in flat RAM, or [-1] on miss. *)

val fill : t -> vpn:int -> asid:int -> priv:int -> base:int -> unit

val invalidate_page : t -> vpn:int -> unit
(** Drop any entry for [vpn], regardless of ASID or privilege
    (conservative over-invalidation is always safe). *)

val flush : t -> unit
(** Invalidate every entry in O(1) by bumping the generation. *)

val generation : t -> int
