(** Serializable, seeded fault plans.

    A plan is pure data: everything {!Sb_fault.Fault} needs to reproduce a
    chaos run bit-identically — the program-generator chaos knobs, the
    bus-error ordinals, the RAM bit flips and the spurious interrupt
    lines.  Plans round-trip through JSON (schema
    ["simbench-fault-plan-1"]) so a diverging run can be attached to a bug
    report and replayed anywhere. *)

val schema : string

type t = {
  seed : int;  (** seeds both the guest program and this plan's draws *)
  mmio_chunks : int;
      (** device-window load/store chunks woven into the random program *)
  storm_chunks : int;  (** TLB-invalidation chunks woven in *)
  bus_errors : int list;
      (** 0-based device-access ordinals that raise a bus fault (see
          {!Sb_mem.Bus.set_fault_injector}) *)
  bit_flips : (int * int) list;
      (** [(offset, bit)] flips applied to the scratch window before the
          run; offsets are taken modulo {!flip_window_len} *)
  spurious_irqs : int list;
      (** interrupt lines raised at the controller before the run; never
          enabled by the guest, so pending-but-masked by construction *)
}

val flip_window_len : int
(** Size of the scratch arena bit flips land in (the window
    {!Sb_verify.Verify.run_outcome} digests). *)

val generate : seed:int -> t
(** Deterministically derive a plan from [seed]: 4–11 MMIO chunks, 0–3
    storm chunks, 1–3 bus-error ordinals within the MMIO traffic, 0–3 bit
    flips, 0–2 spurious interrupt lines. *)

val to_json : t -> Sb_util.Json.t
val of_json : Sb_util.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Write the plan as one JSON line. Raises [Sys_error] on I/O failure. *)

val load : string -> (t, string) result
