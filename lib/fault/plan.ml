let schema = "simbench-fault-plan-1"

type t = {
  seed : int;
  mmio_chunks : int;
  storm_chunks : int;
  bus_errors : int list;
  bit_flips : (int * int) list;
  spurious_irqs : int list;
}

(* The scratch arena both architectures' random programs hammer — the
   same window Verify digests, so a flipped bit that survives to the end
   of the run is part of the compared state. *)
let flip_window_len = 16 * 4096

let sorted_unique l = List.sort_uniq compare l

let generate ~seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let mmio_chunks = 4 + Sb_util.Xorshift.int rng 8 in
  let storm_chunks = Sb_util.Xorshift.int rng 4 in
  let n_bus = 1 + Sb_util.Xorshift.int rng 3 in
  let bus_errors =
    sorted_unique
      (List.concat
         (List.map
            (fun _ -> [ Sb_util.Xorshift.int rng mmio_chunks ])
            (List.init n_bus Fun.id)))
  in
  let n_flips = Sb_util.Xorshift.int rng 4 in
  let rec gen_flips n acc =
    if n = 0 then List.rev acc
    else
      let off = Sb_util.Xorshift.int rng flip_window_len in
      let bit = Sb_util.Xorshift.int rng 8 in
      gen_flips (n - 1) ((off, bit) :: acc)
  in
  let bit_flips = gen_flips n_flips [] in
  let n_irqs = Sb_util.Xorshift.int rng 3 in
  let rec gen_irqs n acc =
    if n = 0 then sorted_unique acc
    else gen_irqs (n - 1) ((2 + Sb_util.Xorshift.int rng 30) :: acc)
  in
  let spurious_irqs = gen_irqs n_irqs [] in
  { seed; mmio_chunks; storm_chunks; bus_errors; bit_flips; spurious_irqs }

let to_json t =
  Sb_util.Json.Obj
    [
      ("schema", Sb_util.Json.String schema);
      ("seed", Sb_util.Json.Int t.seed);
      ("mmio_chunks", Sb_util.Json.Int t.mmio_chunks);
      ("storm_chunks", Sb_util.Json.Int t.storm_chunks);
      ( "bus_errors",
        Sb_util.Json.List (List.map (fun n -> Sb_util.Json.Int n) t.bus_errors)
      );
      ( "bit_flips",
        Sb_util.Json.List
          (List.map
             (fun (off, bit) ->
               Sb_util.Json.List [ Sb_util.Json.Int off; Sb_util.Json.Int bit ])
             t.bit_flips) );
      ( "spurious_irqs",
        Sb_util.Json.List
          (List.map (fun n -> Sb_util.Json.Int n) t.spurious_irqs) );
    ]

let ( let* ) = Result.bind

let error fmt = Printf.ksprintf (fun s -> Error s) fmt

let int_field name json =
  match Sb_util.Json.member name json with
  | Some v -> (
    match Sb_util.Json.int_opt v with
    | Some n -> Ok n
    | None -> error "field %S is not an integer" name)
  | None -> error "missing field %S" name

let int_list_field name json =
  match Sb_util.Json.member name json with
  | None -> error "missing field %S" name
  | Some v -> (
    match Sb_util.Json.list_opt v with
    | None -> error "field %S is not a list" name
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Sb_util.Json.int_opt item with
          | Some n -> Ok (n :: acc)
          | None -> error "field %S contains a non-integer" name)
        (Ok []) items
      |> Result.map List.rev)

let of_json json =
  let* () =
    match Sb_util.Json.member "schema" json with
    | Some (Sb_util.Json.String s) when s = schema -> Ok ()
    | Some (Sb_util.Json.String s) ->
      error "fault plan has schema %S, expected %S" s schema
    | _ -> error "fault plan is missing its %S schema tag" schema
  in
  let* seed = int_field "seed" json in
  let* mmio_chunks = int_field "mmio_chunks" json in
  let* storm_chunks = int_field "storm_chunks" json in
  let* bus_errors = int_list_field "bus_errors" json in
  let* spurious_irqs = int_list_field "spurious_irqs" json in
  let* bit_flips =
    match Sb_util.Json.member "bit_flips" json with
    | None -> error "missing field %S" "bit_flips"
    | Some v -> (
      match Sb_util.Json.list_opt v with
      | None -> error "field %S is not a list" "bit_flips"
      | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Sb_util.Json.list_opt item with
            | Some [ o; b ] -> (
              match (Sb_util.Json.int_opt o, Sb_util.Json.int_opt b) with
              | Some off, Some bit -> Ok ((off, bit) :: acc)
              | _ -> error "bit_flips entries must be [offset, bit]")
            | _ -> error "bit_flips entries must be [offset, bit]")
          (Ok []) items
        |> Result.map List.rev)
  in
  if mmio_chunks < 0 || storm_chunks < 0 then
    error "chunk counts must be non-negative"
  else
    Ok { seed; mmio_chunks; storm_chunks; bus_errors; bit_flips; spurious_irqs }

let of_string s =
  let* json = Sb_util.Json.of_string s in
  of_json json

let to_string t = Sb_util.Json.to_string (to_json t)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> of_string contents
