(** Deterministic fault injection with differential checking.

    Arms a {!Plan} on a freshly-loaded machine (bus-error injection keyed
    on the architectural MMIO access ordinal, pre-run bit flips in the
    scratch window, spurious-but-masked interrupt lines), then runs the
    plan's chaos-augmented random program on every engine and demands the
    same architectural outcome — same registers, flags, memory window,
    event counters (including abort counts) — or the same guest
    exception.  A divergence means an engine mishandles faults the others
    handle, exactly the class of bug ordinary fault-free differential
    testing never reaches.

    Used by [simbench chaos] and [test/test_fault.ml]. *)

val arm : Plan.t -> Sb_sim.Machine.t -> unit
(** Apply the plan's bit flips and spurious interrupts and install its
    bus-error injector.  Call after [load_program], before running — the
    [?prepare] hook of {!Sb_verify.Verify.run_outcome}. *)

val program : arch:Sb_isa.Arch_sig.arch_id -> Plan.t -> Sb_asm.Program.t
(** The plan's guest program: {!Sb_verify.Verify.random_program} seeded
    with [plan.seed] and the plan's chaos chunk counts. *)

val check :
  ?engines:Sb_sim.Engine.t list ->
  ?max_insns:int ->
  arch:Sb_isa.Arch_sig.arch_id ->
  Plan.t ->
  (Sb_verify.Verify.outcome, Sb_verify.Verify.divergence) result
(** Differentially run one plan across [engines] (default
    {!Sb_verify.Verify.default_engines}). *)

val sweep :
  ?engines:Sb_sim.Engine.t list ->
  ?max_insns:int ->
  arch:Sb_isa.Arch_sig.arch_id ->
  seeds:int ->
  unit ->
  Sb_verify.Verify.divergence list
(** Check plans generated from seeds [1..seeds]; each divergence carries
    the plan seed that produced it.  Empty list = all engines agreed under
    every plan. *)
