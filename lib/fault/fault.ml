(* Deterministic fault injection: arm a Plan on a freshly-loaded machine,
   then differentially check that every engine reaches the same
   architectural state despite the faults.  All three injection channels
   are deterministic by construction:

   - bus errors key off the device-access ordinal, which is architectural
     (every engine issues the same MMIO sequence in the same order);
   - bit flips perturb the scratch window before execution starts, so all
     engines see the same initial RAM image;
   - spurious interrupt lines go pending at the controller, but the random
     programs never write the ENABLE register, so they stay masked — the
     controller must still not let them leak into execution. *)

let scratch_base = Simbench.Platform.sbp_ref.Simbench.Platform.scratch_base

let arm (plan : Plan.t) (machine : Sb_sim.Machine.t) =
  let ram = Sb_mem.Bus.ram machine.Sb_sim.Machine.bus in
  List.iter
    (fun (off, bit) ->
      let addr = scratch_base + (off mod Plan.flip_window_len) in
      let b = Sb_mem.Phys_mem.read8 ram addr in
      Sb_mem.Phys_mem.write8 ram addr (b lxor (1 lsl (bit land 7))))
    plan.Plan.bit_flips;
  List.iter
    (fun line -> Sb_mem.Intc.raise_line machine.Sb_sim.Machine.intc line)
    plan.Plan.spurious_irqs;
  match plan.Plan.bus_errors with
  | [] -> Sb_mem.Bus.set_fault_injector machine.Sb_sim.Machine.bus None
  | ordinals ->
    let tbl = Hashtbl.create 8 in
    List.iter (fun n -> Hashtbl.replace tbl n ()) ordinals;
    Sb_mem.Bus.set_fault_injector machine.Sb_sim.Machine.bus
      (Some (fun ~nth ~rw:_ ~addr:_ -> Hashtbl.mem tbl nth))

let program ~arch (plan : Plan.t) =
  Sb_verify.Verify.random_program ~mmio_chunks:plan.Plan.mmio_chunks
    ~storm_chunks:plan.Plan.storm_chunks ~arch ~seed:plan.Plan.seed ()

let check ?engines ?max_insns ~arch (plan : Plan.t) =
  let engines =
    match engines with
    | Some e -> e
    | None -> Sb_verify.Verify.default_engines arch
  in
  Sb_verify.Verify.compare_engines ~engines
    ~nregs:(Sb_verify.Verify.nregs_of arch)
    ?max_insns ~prepare:(arm plan)
    (program ~arch plan)

let sweep ?engines ?max_insns ~arch ~seeds () =
  let rec go i acc =
    if i >= seeds then List.rev acc
    else
      let plan = Plan.generate ~seed:(i + 1) in
      match check ?engines ?max_insns ~arch plan with
      | Ok _ -> go (i + 1) acc
      | Error d ->
        go (i + 1) ({ d with Sb_verify.Verify.seed = Some (i + 1) } :: acc)
  in
  go 0 []
