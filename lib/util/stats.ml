let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. float_of_int (List.length xs))

let weighted_geomean = function
  | [] -> nan
  | xs ->
    let num = List.fold_left (fun acc (v, w) -> acc +. (w *. log v)) 0. xs in
    let den = List.fold_left (fun acc (_, w) -> acc +. w) 0. xs in
    exp (num /. den)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let median = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_of_repeats = function
  | [] -> nan
  | x :: xs -> List.fold_left min x xs

let speedup ~baseline t = baseline /. t
