let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. float_of_int (List.length xs))

let weighted_geomean = function
  | [] -> nan
  | xs ->
    let num = List.fold_left (fun acc (v, w) -> acc +. (w *. log v)) 0. xs in
    let den = List.fold_left (fun acc (_, w) -> acc +. w) 0. xs in
    exp (num /. den)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let median = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_of_repeats = function
  | [] -> nan
  | x :: xs -> List.fold_left min x xs

let speedup ~baseline t = baseline /. t

(* Two-sided 95% Student-t critical values for df = 1..30; beyond that the
   normal approximation is within 1%. *)
let t_crit95_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_crit95 df =
  if df <= 0 then infinity
  else if df <= Array.length t_crit95_table then t_crit95_table.(df - 1)
  else 1.96

let ci95 = function
  | [] -> (nan, nan)
  | [ x ] -> (x, x)
  | xs ->
    let n = List.length xs in
    let m = mean xs in
    let h = t_crit95 (n - 1) *. stddev xs /. sqrt (float_of_int n) in
    (m -. h, m +. h)

let intervals_overlap (a_lo, a_hi) (b_lo, b_hi) =
  (* treat a nan bound as unknown, i.e. indistinguishable: overlap *)
  if
    Float.is_nan a_lo || Float.is_nan a_hi || Float.is_nan b_lo
    || Float.is_nan b_hi
  then true
  else a_lo <= b_hi && b_lo <= a_hi

let relative_change ~baseline t = (t -. baseline) /. baseline
