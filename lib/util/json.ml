type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no NaN/Infinity literals *)
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
  else Buffer.add_string buf "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string (* byte offset, message *)

let line_col s offset =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (offset - 1) (String.length s - 1) do
    if s.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

type parser_state = { src : string; mutable pos : int }

let fail p msg = raise (Fail (p.pos, msg))
let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail p (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail p (Printf.sprintf "expected '%c', found end of input" c)

let literal p word v =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    v
  end
  else fail p (Printf.sprintf "invalid literal (expected %S)" word)

(* encode a Unicode scalar value as UTF-8 bytes *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 p =
  let digit () =
    match peek p with
    | Some c ->
      advance p;
      (match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ ->
        p.pos <- p.pos - 1;
        fail p "invalid hex digit in \\u escape")
    | None -> fail p "unterminated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' ->
      advance p;
      (match peek p with
      | None -> fail p "unterminated escape"
      | Some c ->
        advance p;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 p in
          (* surrogate pair: combine \uD800-\uDBFF with the low half *)
          let u =
            if u >= 0xd800 && u <= 0xdbff then begin
              if
                p.pos + 1 < String.length p.src
                && p.src.[p.pos] = '\\'
                && p.src.[p.pos + 1] = 'u'
              then begin
                p.pos <- p.pos + 2;
                let lo = hex4 p in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00)
                else fail p "invalid low surrogate in \\u escape"
              end
              else fail p "unpaired high surrogate in \\u escape"
            end
            else u
          in
          add_utf8 buf u
        | c ->
          p.pos <- p.pos - 1;
          fail p (Printf.sprintf "invalid escape '\\%c'" c)));
      go ()
    | Some c when Char.code c < 0x20 -> fail p "unescaped control character in string"
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  (match peek p with Some '-' -> advance p | _ -> ());
  let rec digits () =
    match peek p with
    | Some '0' .. '9' ->
      advance p;
      digits ()
    | _ -> ()
  in
  digits ();
  (match peek p with
  | Some '.' ->
    is_float := true;
    advance p;
    digits ()
  | _ -> ());
  (match peek p with
  | Some ('e' | 'E') ->
    is_float := true;
    advance p;
    (match peek p with Some ('+' | '-') -> advance p | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None ->
      p.pos <- start;
      fail p (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out of int range: degrade to float rather than fail *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None ->
        p.pos <- start;
        fail p (Printf.sprintf "invalid number %S" text))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "expected a value, found end of input"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws p;
        (match peek p with
        | Some '"' -> ()
        | _ -> fail p "expected '\"' to start an object key");
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance p;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail p "expected ',' or '}' in object"
      in
      fields []
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items (v :: acc)
        | Some ']' ->
          advance p;
          List (List.rev (v :: acc))
        | _ -> fail p "expected ',' or ']' in array"
      in
      items []
    end
  | Some '"' -> String (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  match
    let v = parse_value p in
    skip_ws p;
    (match peek p with
    | Some c -> fail p (Printf.sprintf "trailing garbage '%c' after value" c)
    | None -> ());
    v
  with
  | v -> Ok v
  | exception Fail (offset, msg) ->
    let line, col = line_col s offset in
    Error (Printf.sprintf "line %d, column %d: %s" line col msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some nan (* the emitter writes non-finite floats as null *)
  | _ -> None

let list_opt = function List items -> Some items | _ -> None
