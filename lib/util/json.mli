(** Minimal JSON emitter for machine-readable benchmark results.

    Deliberately dependency-free: the container bakes in no JSON library
    and the harness only ever needs to {e write} JSON ([bench/main.exe
    --json]).  Non-finite floats serialise as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace), with full string escaping. *)
