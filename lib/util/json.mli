(** Minimal JSON emitter/parser for machine-readable benchmark results.

    Deliberately dependency-free: the container bakes in no JSON library.
    The harness {e writes} JSON ([bench/main.exe --json]) and the
    regression detector ({!Sb_regress}) {e reads} it back.  Non-finite
    floats serialise as [null] (JSON has no NaN); the float accessor maps
    [null] back to [nan]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace), with full string escaping. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parse of one JSON value (trailing whitespace
    allowed, trailing garbage is an error).  Errors carry the position:
    ["line L, column C: message"].  Numbers without ['.'], ['e'] or ['E']
    parse as [Int] (degrading to [Float] beyond [int] range); [\uXXXX]
    escapes, including surrogate pairs, decode to UTF-8. *)

(** {2 Accessors}

    Shape probes used by the readers; all return [None] on a shape
    mismatch rather than raising. *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on missing field or non-object). *)

val string_opt : t -> string option
val int_opt : t -> int option

val float_opt : t -> float option
(** Accepts [Float], [Int] (widened) and [Null] (as [nan], the emitter's
    encoding of non-finite floats). *)

val list_opt : t -> t list option
