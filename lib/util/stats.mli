(** Small statistics helpers used by the reporting layer. *)

val mean : float list -> float
val geomean : float list -> float

val weighted_geomean : (float * float) list -> float
(** [weighted_geomean [(value, weight); ...]] — the paper's "SPEC rating" is a
    weighted geometric mean across benchmarks. *)

val stddev : float list -> float
val median : float list -> float

val min_of_repeats : float list -> float
(** The best of repeated timings of the same kernel — the standard way to
    report a deterministic timed kernel (the repeats differ only by host
    noise, which is strictly additive).  The mean stays available for
    machine-readable output. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] is [baseline /. t]: > 1 means faster than baseline. *)
