(** Small statistics helpers used by the reporting layer. *)

val mean : float list -> float
val geomean : float list -> float

val weighted_geomean : (float * float) list -> float
(** [weighted_geomean [(value, weight); ...]] — the paper's "SPEC rating" is a
    weighted geometric mean across benchmarks. *)

val stddev : float list -> float
val median : float list -> float

val min_of_repeats : float list -> float
(** The best of repeated timings of the same kernel — the standard way to
    report a deterministic timed kernel (the repeats differ only by host
    noise, which is strictly additive).  The mean stays available for
    machine-readable output. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] is [baseline /. t]: > 1 means faster than baseline. *)

(** {2 Confidence intervals}

    Noise-aware significance for the regression detector ({!Sb_regress}):
    two timing cells are only distinguishable when their 95% confidence
    intervals over the recorded repeats do not overlap. *)

val t_crit95 : int -> float
(** Two-sided 95% Student-t critical value for the given degrees of
    freedom (table for df 1..30, normal approximation beyond). *)

val ci95 : float list -> float * float
(** t-based 95% confidence interval [(lo, hi)] of the mean over repeat
    samples.  A single sample yields the degenerate point interval
    [(x, x)] (no noise information — threshold-only decisions); the empty
    list yields [(nan, nan)]. *)

val intervals_overlap : float * float -> float * float -> bool
(** Closed-interval overlap; intervals with nan endpoints are treated as
    overlapping (unknown noise must not produce a confident verdict). *)

val relative_change : baseline:float -> float -> float
(** [(t - baseline) / baseline]: > 0 means slower (a regression when [t]
    is a time). *)
