(** Encoding-space enumeration for SBA-32 (see {!Sb_isa.Encoding}).

    One class per opcode, with concrete words exercising register fields
    and boundary immediates (14-bit sign-extension edges, shift amounts
    across the >=32 cliff, out-of-range coprocessor registers, invalid
    condition fields); unallocated opcodes form the "undef" class.  The
    translation validator ([Sb_analysis.Tv]) checks every case and asserts
    the classes tile the 64-value opcode space. *)

val set : Sb_isa.Encoding.set
