open Sb_isa.Encoding

(* Encoding-space enumeration for SBA-32: the selector is the 6-bit opcode
   in bits [31:26]; every class below lists the concrete words exercising
   its register fields and its boundary immediates.  Keep in lockstep with
   Decode.decode_word — the translation validator fails the build when the
   classes stop tiling the opcode space. *)

let enc ~op ?(rd = 0) ?(rn = 0) ?(rm = 0) ?(imm = 0) () =
  (op lsl 26) lor ((rd land 15) lsl 22)
  lor ((rn land 15) lsl 18)
  lor ((rm land 15) lsl 14)
  lor (imm land 0x3FFF)

(* imm16 forms (movw/movt/svc/mrc/mcr) use the low 16 bits verbatim *)
let enc16 ~op ?(rd = 0) ~imm16 () =
  (op lsl 26) lor ((rd land 15) lsl 22) lor (imm16 land 0xFFFF)

let enc_branch ~op ~disp = (op lsl 26) lor (disp land 0x3FF_FFFF)

let enc_bcc ~cond ~disp =
  (Opcodes.bcc lsl 26) lor ((cond land 15) lsl 22) lor (disp land 0x3F_FFFF)

let word w =
  [ w land 0xFF; (w lsr 8) land 0xFF; (w lsr 16) land 0xFF; (w lsr 24) land 0xFF ]

let mk ?skip name selectors cases = { name; selectors; cases; skip }

let reg_combos = [ (0, 1, 2); (15, 14, 13); (3, 3, 3); (1, 2, 1) ]

(* 14-bit sign-extended field: 0, +1, +5, max positive, most negative, -1 *)
let imm14s = [ 0; 1; 5; 0x1FFF; 0x2000; 0x3FFF ]

(* shift amounts at and across the >=32 cliff, incl. -1 -> 0xFF masked *)
let shift_imm14s = [ 0; 1; 31; 32; 33; 0x3FFF ]

let cregs = [ 0; Sb_isa.Cregs.asid; Sb_isa.Cregs.count; 0xFF ]

let alu_rr name op =
  mk name [ op ]
    (List.map
       (fun (rd, rn, rm) ->
         case
           ~label:(Printf.sprintf "rd=%d rn=%d rm=%d" rd rn rm)
           (word (enc ~op ~rd ~rn ~rm ())))
       reg_combos)

let alu_ri ?(imms = imm14s) name op =
  mk name [ op ]
    (List.concat_map
       (fun imm ->
         List.map
           (fun (rd, rn, _) ->
             case
               ~label:(Printf.sprintf "rd=%d rn=%d imm14=0x%x" rd rn imm)
               (word (enc ~op ~rd ~rn ~imm ())))
           [ (0, 1, 2); (15, 14, 13) ])
       imms)

let mem name op =
  mk name [ op ]
    (List.concat_map
       (fun imm ->
         List.map
           (fun (rd, rn, _) ->
             case
               ~label:(Printf.sprintf "r=%d base=%d off14=0x%x" rd rn imm)
               (word (enc ~op ~rd ~rn ~imm ())))
           [ (0, 1, 2); (15, 14, 13) ])
       imm14s)

let zero_operand name op =
  (* operand bits are don't-care; include a word with every low bit set to
     pin that down *)
  mk name [ op ]
    [
      case ~label:"clean" (word (enc ~op ()));
      case ~label:"junk operand bits" (word ((op lsl 26) lor 0x3FF_FFFF));
    ]

(* branch displacements: 0, +1, -1, max positive, most negative (as 26- or
   22-bit fields; the decoder sign-extends and scales by 4) *)
let disp26s = [ 0; 1; 0x3FF_FFFF; 0x1FF_FFFF; 0x200_0000 ]

let disp22s = [ 0; 1; 0x3F_FFFF; 0x1F_FFFF; 0x20_0000 ]

let branch name op =
  mk name [ op ]
    (List.map
       (fun disp ->
         case
           ~label:(Printf.sprintf "disp26=0x%x" disp)
           (word (enc_branch ~op ~disp)))
       disp26s)

let indirect name op =
  mk name [ op ]
    (List.map
       (fun rm -> case ~label:(Printf.sprintf "rm=%d" rm) (word (enc ~op ~rm ())))
       [ 0; 15 ])

let classes =
  let open Opcodes in
  [
    zero_operand "nop" nop;
    zero_operand "halt" halt;
    zero_operand "wfi" wfi;
    alu_rr "add" add;
    alu_ri "addi" addi;
    alu_rr "sub" sub;
    alu_ri "subi" subi;
    alu_rr "and" and_;
    alu_rr "orr" orr;
    alu_rr "xor" xor;
    alu_rr "lsl" lsl_;
    alu_ri ~imms:shift_imm14s "lsli" lsli;
    alu_rr "lsr" lsr_;
    alu_ri ~imms:shift_imm14s "lsri" lsri;
    alu_rr "asr" asr_;
    alu_ri ~imms:shift_imm14s "asri" asri;
    alu_rr "mul" mul;
    mk "movw" [ movw ]
      (List.concat_map
         (fun imm16 ->
           List.map
             (fun rd ->
               case
                 ~label:(Printf.sprintf "rd=%d imm16=0x%x" rd imm16)
                 (word (enc16 ~op:movw ~rd ~imm16 ())))
             [ 0; 15 ])
         [ 0; 5; 0xFFFF ]);
    mk "movt" [ movt ]
      (List.concat_map
         (fun imm16 ->
           List.map
             (fun rd ->
               case
                 ~label:(Printf.sprintf "rd=%d imm16=0x%x" rd imm16)
                 (word (enc16 ~op:movt ~rd ~imm16 ())))
             [ 0; 15 ])
         [ 0; 5; 0xFFFF ]);
    mk "mov" [ mov ]
      (List.map
         (fun (rd, _, rm) ->
           case ~label:(Printf.sprintf "rd=%d rm=%d" rd rm)
             (word (enc ~op:mov ~rd ~rm ())))
         reg_combos);
    mk "cmp" [ cmp ]
      (List.map
         (fun (_, rn, rm) ->
           case ~label:(Printf.sprintf "rn=%d rm=%d" rn rm)
             (word (enc ~op:cmp ~rn ~rm ())))
         reg_combos);
    alu_ri "cmpi" cmpi;
    branch "b" b;
    branch "bl" bl;
    mk "bcc" [ bcc ]
      (List.concat_map
         (fun cond ->
           List.map
             (fun disp ->
               case
                 ~label:(Printf.sprintf "cond=%d disp22=0x%x" cond disp)
                 (word (enc_bcc ~cond ~disp)))
             disp22s)
         [ 0; 1; 2; 3; 4; 5; 6 ]
      @ List.map
          (fun cond ->
            case
              ~label:(Printf.sprintf "invalid cond=%d -> undef" cond)
              (word (enc_bcc ~cond ~disp:4)))
          [ 7; 15 ]);
    indirect "br" br;
    indirect "blr" blr;
    mem "ldr" ldr;
    mem "str" str;
    mem "ldrb" ldrb;
    mem "strb" strb;
    mem "ldrt" ldrt;
    mem "strt" strt;
    mk "svc" [ svc ]
      (List.map
         (fun imm16 ->
           case
             ~label:(Printf.sprintf "imm16=0x%x" imm16)
             (word (enc16 ~op:svc ~imm16 ())))
         [ 0; 1; 0xFFFF ]);
    zero_operand "eret" eret;
    mk "mrc" [ mrc ]
      (List.concat_map
         (fun creg ->
           List.map
             (fun rd ->
               case
                 ~label:(Printf.sprintf "rd=%d creg=%d" rd creg)
                 (word (enc16 ~op:mrc ~rd ~imm16:creg ())))
             [ 0; 15 ])
         cregs);
    mk "mcr" [ mcr ]
      (List.concat_map
         (fun creg ->
           List.map
             (fun rs ->
               case
                 ~label:(Printf.sprintf "src=%d creg=%d" rs creg)
                 (word (enc16 ~op:mcr ~rd:rs ~imm16:creg ())))
             [ 0; 15 ])
         cregs);
    indirect "tlbi" tlbi;
    zero_operand "tlbiall" tlbiall;
    zero_operand "udf" udf;
    (let unallocated =
       List.filter
         (fun s -> s >= 0x27 && s <= 0x3E)
         (List.init 64 (fun i -> i))
     in
     mk "undef" unallocated
       (List.map
          (fun s ->
            case
              ~label:(Printf.sprintf "opcode=0x%02x" s)
              (word ((s lsl 26) lor 0x15_5555)))
          unallocated));
  ]

let set =
  {
    arch = Sb_isa.Arch_sig.Sba;
    selector_space = 64;
    selector_desc = "opcode bits [31:26]";
    classes;
    (* movw r1, #5: the constant seed for cross-instruction const-prop *)
    const_prefix =
      case ~label:"movw r1, #5" (word (enc16 ~op:Opcodes.movw ~rd:1 ~imm16:5 ()));
  }
