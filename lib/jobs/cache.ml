type t = { dir : string }

(* Version tag of the checkpoint store layered on this cache (keys prefixed
   [ckpt_], values of type Sb_sim.Snapshot.t).  Folded into [schema] so any
   checkpoint-format change invalidates every fingerprint along with it. *)
let checkpoint_schema = "ckpt-1"

(* bumped whenever the stored value shape changes; part of every fingerprint
   so stale cache files from older schemas can never be mis-decoded.
   3: Experiments.row gained row_samples (raw per-repeat kernel seconds)
   4: Experiments.row gained row_status/row_note (failure-as-data)
   6: checkpoint store (snapshot values under ckpt_ keys) *)
let schema = "sb-jobs-cache-6+" ^ checkpoint_schema

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let dir t = t.dir

let fingerprint v =
  Digest.to_hex (Digest.string (schema ^ Marshal.to_string v []))

let path t key = Filename.concat t.dir ("sb_" ^ key ^ ".cache")

(* Corrupt entries (truncated writes, a poisoned CI cache, key collisions)
   degrade to misses, but never silently: each is logged and counted, and
   the offending file is removed so the next store starts clean. *)
let evicted = ref 0

let evictions () = !evicted

let reset_evictions () = evicted := 0

let evict t ~key ~reason =
  incr evicted;
  let file = path t key in
  Printf.eprintf "[sb-jobs] cache: evicting corrupt entry %s (%s)\n%!" file
    reason;
  try Sys.remove file with Sys_error _ -> ()

(* Stale temp files: a worker that died (or was SIGKILLed at a deadline)
   mid-[store] leaves an orphan [*.tmp.<pid>] behind.  They are swept at
   [create] time — counted as evictions so they show up in stats — but
   only when the owning pid is gone: a live pid means a concurrent bench
   invocation is mid-rename and the file is not litter. *)
let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: exists, not ours *)

let sweep_stale_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        match String.rindex_opt name '.' with
        | Some i
          when i >= 4 && String.sub name (i - 4) 4 = ".tmp"
               && String.length name > 4
               && String.sub name 0 3 = "sb_" ->
          let stale =
            match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
            | Some pid -> not (pid_alive pid)
            | None -> true (* unparsable suffix: nobody owns it *)
          in
          if stale then begin
            incr evicted;
            let file = Filename.concat dir name in
            Printf.eprintf "[sb-jobs] cache: sweeping stale temp file %s\n%!"
              file;
            try Sys.remove file with Sys_error _ -> ()
          end
        | _ -> ())
      entries

(* Checkpoint files are long-lived (one warm boot feeds a whole grid), so
   a corrupt one is swept at create time rather than on first load: the
   structural check below (both marshal segments decode and the stored key
   matches the filename) catches truncation and bit rot up front, and the
   snapshot's own memory digest still guards the restore path. *)
let sweep_corrupt_checkpoints dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        if
          String.length name > 8
          && String.sub name 0 8 = "sb_ckpt_"
          && Filename.check_suffix name ".cache"
        then begin
          let file = Filename.concat dir name in
          let expect_key =
            String.sub name 3 (String.length name - 3 - String.length ".cache")
          in
          let ok =
            match open_in_bin file with
            | exception Sys_error _ -> true (* raced away; nothing to sweep *)
            | ic ->
              let r =
                match
                  let stored_key : string = Marshal.from_channel ic in
                  let (_ : Obj.t) = Marshal.from_channel ic in
                  stored_key
                with
                | stored_key -> String.equal stored_key expect_key
                | exception _ -> false
              in
              close_in_noerr ic;
              r
          in
          if not ok then begin
            incr evicted;
            Printf.eprintf
              "[sb-jobs] cache: sweeping corrupt checkpoint %s\n%!" file;
            try Sys.remove file with Sys_error _ -> ()
          end
        end)
      entries

let create ~dir =
  mkdir_p dir;
  sweep_stale_tmp dir;
  sweep_corrupt_checkpoints dir;
  { dir }

let load (type a) t ~key : a option =
  match open_in_bin (path t key) with
  | exception Sys_error _ -> None (* plain miss: no such entry *)
  | ic ->
    let v =
      match
        let stored_key : string = Marshal.from_channel ic in
        if String.equal stored_key key then `Hit (Marshal.from_channel ic : a)
        else `Key_mismatch
      with
      | `Hit v -> Some v
      | `Key_mismatch ->
        evict t ~key ~reason:"stored key mismatch";
        None
      | exception _ ->
        evict t ~key ~reason:"truncated or undecodable";
        None
    in
    close_in_noerr ic;
    v

(* Durability is best-effort by nature: some filesystems (and the
   directory fsync on a few) refuse the call, and a cache entry is never
   worth failing the run over — the crash-consistency invariant that
   matters is the ordering (data on disk before the rename publishes it),
   which fsync establishes wherever it is supported. *)
let fsync_quietly fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    fsync_quietly fd;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let store t ~key v =
  let file = path t key in
  (* crash-consistent publish: marshal to a private temp file, fsync the
     data, rename into place, fsync the directory.  Concurrent writers
     (pool workers of separate bench invocations) can race on the same
     cell without corrupting it, and a crash at any point leaves either
     the old entry, the new entry, or a temp file [sweep_stale_tmp] /
     [fsck] reclaims — never a half-written entry under the real name *)
  let payload = Marshal.to_string key [] ^ Marshal.to_string v [] in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match
    let len = String.length payload in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring fd payload !off (len - !off)
    done;
    fsync_quietly fd;
    Unix.close fd
  with
  | () ->
    Sys.rename tmp file;
    fsync_dir t.dir
  | exception e ->
    (* ENOSPC, ...: leave no litter behind *)
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let clear t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        if
          String.length name > 3
          && String.sub name 0 3 = "sb_"
          && Filename.check_suffix name ".cache"
        then try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
      entries
