type t = { dir : string }

(* bumped whenever the stored value shape changes; part of every fingerprint
   so stale cache files from older schemas can never be mis-decoded.
   3: Experiments.row gained row_samples (raw per-repeat kernel seconds) *)
let schema = "sb-jobs-cache-3"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

let fingerprint v =
  Digest.to_hex (Digest.string (schema ^ Marshal.to_string v []))

let path t key = Filename.concat t.dir ("sb_" ^ key ^ ".cache")

(* Corrupt entries (truncated writes, a poisoned CI cache, key collisions)
   degrade to misses, but never silently: each is logged and counted, and
   the offending file is removed so the next store starts clean. *)
let evicted = ref 0

let evictions () = !evicted

let reset_evictions () = evicted := 0

let evict t ~key ~reason =
  incr evicted;
  let file = path t key in
  Printf.eprintf "[sb-jobs] cache: evicting corrupt entry %s (%s)\n%!" file
    reason;
  try Sys.remove file with Sys_error _ -> ()

let load (type a) t ~key : a option =
  match open_in_bin (path t key) with
  | exception Sys_error _ -> None (* plain miss: no such entry *)
  | ic ->
    let v =
      match
        let stored_key : string = Marshal.from_channel ic in
        if String.equal stored_key key then `Hit (Marshal.from_channel ic : a)
        else `Key_mismatch
      with
      | `Hit v -> Some v
      | `Key_mismatch ->
        evict t ~key ~reason:"stored key mismatch";
        None
      | exception _ ->
        evict t ~key ~reason:"truncated or undecodable";
        None
    in
    close_in_noerr ic;
    v

let store t ~key v =
  let file = path t key in
  (* write-then-rename: concurrent writers (pool workers of separate bench
     invocations) can race on the same cell without corrupting it *)
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc key [];
  Marshal.to_channel oc v [];
  close_out oc;
  Sys.rename tmp file

let clear t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        if
          String.length name > 3
          && String.sub name 0 3 = "sb_"
          && Filename.check_suffix name ".cache"
        then try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
      entries
