(* Store integrity checker: the offline twin of Cache's lazy eviction.

   Cache.load already evicts a corrupt entry when it happens to be
   looked up; fsck walks a whole cache/checkpoint/baseline directory up
   front and classifies every [sb_*] file, so a damaged store is found
   before a run depends on it — and, with [repair], healed by evicting
   exactly the damaged entries (good ones are never touched). *)

type verdict =
  | Ok_entry
  | Truncated  (* marshal segments do not decode: torn or bit-rotted *)
  | Key_mismatch  (* decodes, but the stored key disagrees with the name *)
  | Stale_tmp  (* temp file whose owning pid is gone *)
  | Live_tmp  (* temp file with a live owner: in-flight, not corruption *)

let verdict_name = function
  | Ok_entry -> "ok"
  | Truncated -> "truncated"
  | Key_mismatch -> "key-mismatch"
  | Stale_tmp -> "stale-tmp"
  | Live_tmp -> "live-tmp"

type entry = { file : string; verdict : verdict; detail : string }

type report = {
  dir : string;
  entries : entry list;
  ok : int;
  truncated : int;
  key_mismatch : int;
  stale_tmp : int;
  live_tmp : int;
  repaired : int;
  unrepairable : int;
}

let clean r = r.truncated = 0 && r.key_mismatch = 0 && r.stale_tmp = 0

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true

(* "sb_<key>.cache" -> Some key *)
let key_of_name name =
  if
    String.length name > String.length "sb_.cache"
    && String.sub name 0 3 = "sb_"
    && Filename.check_suffix name ".cache"
  then Some (String.sub name 3 (String.length name - 3 - String.length ".cache"))
  else None

(* "<anything>.tmp.<pid>" left by Cache.store *)
let tmp_pid name =
  match String.rindex_opt name '.' with
  | Some i when i >= 4 && String.sub name (i - 4) 4 = ".tmp" ->
    Some (int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)))
  | _ -> None

let check_entry file expect_key =
  match open_in_bin file with
  | exception Sys_error e -> (Truncated, e)
  | ic ->
    let v =
      match
        let stored_key : string = Marshal.from_channel ic in
        let (_ : Obj.t) = Marshal.from_channel ic in
        stored_key
      with
      | stored_key ->
        if String.equal stored_key expect_key then (Ok_entry, "")
        else
          ( Key_mismatch,
            Printf.sprintf "stored key %s"
              (if String.length stored_key > 24 then
                 String.sub stored_key 0 24 ^ "..."
               else stored_key) )
      | exception _ -> (Truncated, "marshal segments do not decode")
    in
    close_in_noerr ic;
    v

let scan ?(repair = false) ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    match Sys.readdir dir with
    | exception Sys_error e -> Error e
    | names ->
      Array.sort compare names;
      let entries = ref [] in
      let repaired = ref 0 in
      let unrepairable = ref 0 in
      let remove file =
        match Sys.remove file with
        | () -> incr repaired
        | exception Sys_error _ -> incr unrepairable
      in
      Array.iter
        (fun name ->
          if String.length name > 3 && String.sub name 0 3 = "sb_" then begin
            let file = Filename.concat dir name in
            let verdict, detail =
              match tmp_pid name with
              | Some (Some pid) when pid_alive pid ->
                (Live_tmp, Printf.sprintf "writer pid %d is alive" pid)
              | Some (Some pid) ->
                (Stale_tmp, Printf.sprintf "writer pid %d is gone" pid)
              | Some None -> (Stale_tmp, "unparsable owner pid")
              | None -> (
                match key_of_name name with
                | Some key -> check_entry file key
                | None -> (Key_mismatch, "unrecognised sb_ file name"))
            in
            (match verdict with
             | (Truncated | Key_mismatch | Stale_tmp) when repair -> remove file
             | _ -> ());
            entries := { file; verdict; detail } :: !entries
          end)
        names;
      let entries = List.rev !entries in
      let count v =
        List.length (List.filter (fun e -> e.verdict = v) entries)
      in
      Ok
        { dir;
          entries;
          ok = count Ok_entry;
          truncated = count Truncated;
          key_mismatch = count Key_mismatch;
          stale_tmp = count Stale_tmp;
          live_tmp = count Live_tmp;
          repaired = !repaired;
          unrepairable = !unrepairable
        }

module Json = Sb_util.Json

let report_to_json r =
  Json.Obj
    [ ("schema", Json.String "simbench-fsck-json-1");
      ("dir", Json.String r.dir);
      ("ok", Json.Int r.ok);
      ("truncated", Json.Int r.truncated);
      ("key_mismatch", Json.Int r.key_mismatch);
      ("stale_tmp", Json.Int r.stale_tmp);
      ("live_tmp", Json.Int r.live_tmp);
      ("repaired", Json.Int r.repaired);
      ("unrepairable", Json.Int r.unrepairable);
      ("clean", Json.Bool (clean r));
      ( "entries",
        Json.List
          (List.filter_map
             (fun e ->
               if e.verdict = Ok_entry then None
               else
                 Some
                   (Json.Obj
                      [ ("file", Json.String e.file);
                        ("verdict", Json.String (verdict_name e.verdict));
                        ("detail", Json.String e.detail)
                      ]))
             r.entries) )
    ]
