(** [Unix.fork]-based worker pool for independent experiment cells, with
    deadlines, bounded retries and failure quarantine.

    Each task is an (optionally cache-keyed) thunk.  With [jobs <= 1] and
    no deadline the thunks run sequentially in-process — byte-for-byte the
    pre-pool code path, including exception propagation order.  Otherwise
    each uncached attempt runs in a forked child, which marshals its
    result (or the exception message) back over a pipe; at most [jobs]
    children are live at once, and results come back in task order
    regardless of completion order.

    Task results must be marshallable (no closures, no custom blocks): the
    harness ships plain records of names, timings and counter values.

    Failure is data, not an exception: a worker that dies without
    reporting — killed, [Unix._exit] inside the thunk, a crash in the
    runtime — yields [Failed] with the wait status; a worker that
    overruns [?deadline] is SIGKILLed and yields [Failed] with
    [fl_kind = Timed_out].  The pool never hangs and never poisons the
    cache. *)

type 'a task

val task : ?key:string -> label:string -> (unit -> 'a) -> 'a task
(** [key], when given, is the {!Cache} key for the result (derive it with
    {!Cache.fingerprint}); tasks without a key are never cached (engines
    built from closures cannot be fingerprinted robustly). *)

val label : _ task -> string

type fail_kind =
  | Crashed  (** the thunk raised, or the worker died without reporting *)
  | Timed_out  (** the worker overran the deadline and was killed *)
  | Quarantined
      (** skipped without running: the task's identity has accumulated
          {!quarantine_after} failures in this process *)

type failure = {
  fl_label : string;  (** the task's label *)
  fl_kind : fail_kind;
  fl_attempts : int;  (** attempts actually run (0 when quarantined) *)
  fl_detail : string;  (** human-readable cause *)
}

type 'a outcome =
  | Done of 'a
  | Retried of 'a * int
      (** succeeded after that many failed attempts — the value is good,
          but the flakiness is worth surfacing *)
  | Failed of failure

val failure_message : failure -> string
(** ["label: detail"], for log lines and legacy call sites. *)

type stats = {
  mutable executed : int;
      (** attempts actually run (in-process or forked); retries count *)
  mutable forked : int;  (** workers forked ([= 0] on the sequential path) *)
  mutable cache_hits : int;
  mutable failed : int;  (** tasks whose final outcome is [Failed] *)
  mutable retried : int;  (** extra attempts scheduled after a crash *)
  mutable timed_out : int;  (** workers killed at the deadline *)
  mutable quarantined : int;  (** tasks skipped by the quarantine *)
}

val stats : unit -> stats

val quarantine_after : int ref
(** Failed attempts a task identity (cache key, else label) may
    accumulate process-wide before the pool stops running it and returns
    [Failed {fl_kind = Quarantined}] instantly.  Default 3. *)

val reset_quarantine : unit -> unit
(** Forget all recorded failures (tests; or to deliberately re-run cells
    that were quarantined earlier in the process). *)

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?stats:stats ->
  ?deadline:float ->
  ?retries:int ->
  ?backoff:float ->
  'a task list ->
  'a outcome list
(** Results are positional: [List.nth (run ts) i] belongs to
    [List.nth ts i].

    [deadline] is a per-attempt wall-clock budget in seconds: an attempt
    still running after that long is SIGKILLed and reported
    [Timed_out].  Passing a deadline forces the forked path even at
    [jobs = 1], because only a child process can be killed.  [retries]
    (default 0) re-runs an attempt that {e crashed} up to that many extra
    times, sleeping [backoff * 2^(attempt-1)] seconds first (default
    backoff 0.05); timeouts are never retried — a second attempt would
    burn another whole deadline for a result the budget already
    rejected.  A success on attempt [> 1] is reported as [Retried].
    Raises [Invalid_argument] on a non-positive deadline or negative
    retries/backoff. *)
