(** [Unix.fork]-based worker pool for independent experiment cells, with
    deadlines, bounded retries, failure quarantine and cancellation.

    Each task is an (optionally cache-keyed) thunk.  With [jobs <= 1] and
    no deadline the thunks run sequentially in-process — byte-for-byte the
    pre-pool code path, including exception propagation order.  Otherwise
    each uncached attempt runs in a forked child, which marshals its
    result (or the exception message) back over a pipe; at most [jobs]
    children are live at once, and results come back in task order
    regardless of completion order.

    Task results must be marshallable (no closures, no custom blocks): the
    harness ships plain records of names, timings and counter values.

    Failure is data, not an exception: a worker that dies without
    reporting — killed, [Unix._exit] inside the thunk, a crash in the
    runtime — yields [Failed] with the wait status; a worker that
    overruns [?deadline] is SIGKILLed and yields [Failed] with
    [fl_kind = Timed_out].  The pool never hangs and never poisons the
    cache.

    Long-running callers (the [Sb_serve] daemon) that need to submit work
    incrementally and multiplex worker pipes with their own sockets use
    {!Sched} directly; {!run} is the batch wrapper over it. *)

type 'a task

val task : ?key:string -> label:string -> (unit -> 'a) -> 'a task
(** [key], when given, is the {!Cache} key for the result (derive it with
    {!Cache.fingerprint}); tasks without a key are never cached (engines
    built from closures cannot be fingerprinted robustly). *)

val label : _ task -> string

type fail_kind =
  | Crashed  (** the thunk raised, or the worker died without reporting *)
  | Timed_out  (** the worker overran the deadline and was killed *)
  | Quarantined
      (** skipped without running: the task's identity has accumulated
          {!quarantine_after} failures in this process *)
  | Cancelled
      (** abandoned while still queued: its {!token} was cancelled before
          a worker picked it up *)

type failure = {
  fl_label : string;  (** the task's label *)
  fl_kind : fail_kind;
  fl_attempts : int;  (** attempts actually run (0 when quarantined/cancelled) *)
  fl_detail : string;  (** human-readable cause *)
}

type 'a outcome =
  | Done of 'a
  | Retried of 'a * int
      (** succeeded after that many failed attempts — the value is good,
          but the flakiness is worth surfacing *)
  | Failed of failure

val failure_message : failure -> string
(** ["label: detail"], for log lines and legacy call sites. *)

(** {2 Cancellation}

    A token is a shared flag attached to one or more submitted tasks.
    Cancelling it abandons every attached task that has not started yet
    (queued, or waiting out a retry backoff) with
    [Failed {fl_kind = Cancelled}]; attempts already running in a worker
    are {e not} killed — they complete, report, and still populate the
    cache.  This is the primitive behind [simbench client --cancel] and
    the serve daemon's graceful drain: queued work disappears instantly,
    healthy workers are never SIGKILLed. *)

type token

val token : unit -> token

val cancel : token -> unit

val cancelled : token -> bool

type stats = {
  mutable executed : int;
      (** attempts actually run (in-process or forked); retries count *)
  mutable forked : int;  (** workers forked ([= 0] on the sequential path) *)
  mutable cache_hits : int;
  mutable failed : int;  (** tasks whose final outcome is [Failed] *)
  mutable retried : int;  (** extra attempts scheduled after a crash *)
  mutable timed_out : int;  (** workers killed at the deadline *)
  mutable quarantined : int;  (** tasks skipped by the quarantine *)
  mutable cancelled : int;  (** tasks abandoned by a cancelled token *)
}

val stats : unit -> stats

val quarantine_after : int ref
(** Failed attempts a task identity (cache key, else label) may
    accumulate process-wide before the pool stops running it and returns
    [Failed {fl_kind = Quarantined}] instantly.  Default 3. *)

val reset_quarantine : unit -> unit
(** Forget all recorded failures (tests; or to deliberately re-run cells
    that were quarantined earlier in the process). *)

(** Incremental scheduler over the same forked-worker machinery.

    Designed to be driven by an external [Unix.select] loop: {!fds} are
    the live worker pipe read-ends, {!timeout} is how long the loop may
    sleep before a deadline or retry wake-up is due, and {!pump} must be
    called with whatever subset of those fds became readable (fds the
    scheduler does not own are ignored, so the caller can pass its whole
    readable set).  {!submit} resolves quarantine and the cache
    synchronously — the callback can fire before [submit] returns — and
    otherwise queues the task, forking immediately if a worker slot is
    free.  Callbacks fire in completion order, not submission order. *)
module Sched : sig
  type 'a t

  val create :
    ?jobs:int ->
    ?cache:Cache.t ->
    ?stats:stats ->
    ?deadline:float ->
    ?retries:int ->
    ?backoff:float ->
    unit ->
    'a t
  (** Same parameter semantics as {!run}.  Raises [Invalid_argument] on a
      non-positive deadline or negative retries/backoff. *)

  val submit : 'a t -> ?cancel:token -> 'a task -> k:('a outcome -> unit) -> unit
  (** [k] is called exactly once with the task's outcome — possibly
      synchronously (cache hit, quarantine, already-cancelled token). *)

  val fds : _ t -> Unix.file_descr list
  (** Read-ends of the live worker pipes, for the caller's select set. *)

  val timeout : _ t -> float
  (** Seconds until the earliest internal wake-up (child deadline or retry
      backoff), or [-1.0] when there is none (sleep as long as you like). *)

  val pump : 'a t -> readable:Unix.file_descr list -> unit
  (** Process events: drain readable worker pipes, reap finished workers
      (firing their callbacks), kill deadline overruns, promote due
      retries, drop cancelled queue entries, and refill free worker slots
      from the queue. *)

  val queued : _ t -> int
  (** Tasks waiting for a worker slot (including retry backoffs). *)

  val active : _ t -> int
  (** Live forked workers. *)

  val idle : _ t -> bool
  (** No queued tasks, no waiting retries, no live workers. *)

  val drain : 'a t -> unit
  (** Run a private select loop until {!idle} — the batch mode.  Queued
      tasks whose token is cancelled mid-drain are dropped; active
      workers always complete. *)
end

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?stats:stats ->
  ?deadline:float ->
  ?retries:int ->
  ?backoff:float ->
  ?cancel:token ->
  'a task list ->
  'a outcome list
(** Results are positional: [List.nth (run ts) i] belongs to
    [List.nth ts i].

    [deadline] is a per-attempt wall-clock budget in seconds: an attempt
    still running after that long is SIGKILLed and reported
    [Timed_out].  Passing a deadline forces the forked path even at
    [jobs = 1], because only a child process can be killed.  [retries]
    (default 0) re-runs an attempt that {e crashed} up to that many extra
    times, sleeping [backoff * 2^(attempt-1)] seconds first (default
    backoff 0.05); timeouts are never retried — a second attempt would
    burn another whole deadline for a result the budget already
    rejected.  A success on attempt [> 1] is reported as [Retried].
    [cancel], when provided and cancelled (by a task thunk on the
    sequential path, or from the callback of another scheduler sharing
    the token), abandons the not-yet-started remainder as [Cancelled].
    Raises [Invalid_argument] on a non-positive deadline or negative
    retries/backoff. *)
