(** [Unix.fork]-based worker pool for independent experiment cells.

    Each task is an (optionally cache-keyed) thunk.  With [jobs <= 1] the
    thunks run sequentially in-process — byte-for-byte the pre-pool code
    path, including exception propagation order.  With [jobs > 1] each
    uncached task runs in a forked child, which marshals its result (or the
    exception message) back over a pipe; at most [jobs] children are live at
    once, and results come back in task order regardless of completion
    order.

    Task results must be marshallable (no closures, no custom blocks): the
    harness ships plain records of names, timings and counter values.

    A worker that dies without reporting — killed, [Unix._exit] inside the
    thunk, a crash in the runtime — yields [Failed] with the wait status;
    it never hangs the pool and never poisons the cache. *)

type 'a task

val task : ?key:string -> label:string -> (unit -> 'a) -> 'a task
(** [key], when given, is the {!Cache} key for the result (derive it with
    {!Cache.fingerprint}); tasks without a key are never cached (engines
    built from closures cannot be fingerprinted robustly). *)

val label : _ task -> string

type 'a outcome = Done of 'a | Failed of string

type stats = {
  mutable executed : int;  (** thunks actually run (in-process or forked) *)
  mutable forked : int;  (** workers forked ([= 0] on the sequential path) *)
  mutable cache_hits : int;
  mutable failed : int;
}

val stats : unit -> stats

val run :
  ?jobs:int -> ?cache:Cache.t -> ?stats:stats -> 'a task list -> 'a outcome list
(** Results are positional: [List.nth (run ts) i] belongs to [List.nth ts i]. *)
