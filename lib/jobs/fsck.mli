(** Store integrity checker: the offline twin of {!Cache}'s lazy
    eviction.

    Walks a cache/checkpoint/baseline directory and classifies every
    [sb_*] file: decodable entries whose stored key matches the file
    name are [Ok_entry]; torn or bit-rotted files are [Truncated];
    decodable files under the wrong name are [Key_mismatch]; [*.tmp.*]
    files are [Stale_tmp] when their owning pid is gone and [Live_tmp]
    (in-flight, never corruption) when it is alive.  With [repair],
    damaged entries are evicted — the store degrades to cache misses
    instead of poisoning a run.  Files without the [sb_] prefix are
    never touched. *)

type verdict = Ok_entry | Truncated | Key_mismatch | Stale_tmp | Live_tmp

val verdict_name : verdict -> string
(** ["ok"] / ["truncated"] / ["key-mismatch"] / ["stale-tmp"] /
    ["live-tmp"]. *)

type entry = { file : string; verdict : verdict; detail : string }

type report = {
  dir : string;
  entries : entry list;  (** every [sb_*] file, in name order *)
  ok : int;
  truncated : int;
  key_mismatch : int;
  stale_tmp : int;
  live_tmp : int;
  repaired : int;  (** damaged files removed (only with [repair]) *)
  unrepairable : int;  (** damaged files that could not be removed *)
}

val clean : report -> bool
(** No truncated, key-mismatched or stale-temp files (live temp files
    are fine). *)

val scan : ?repair:bool -> dir:string -> unit -> (report, string) result
(** Scan (and with [repair], heal) one directory.  [Error] only when the
    directory itself cannot be read. *)

val report_to_json : report -> Sb_util.Json.t
(** Machine-readable report (damaged entries listed, ok ones only
    counted), schema [simbench-fsck-json-1]. *)
