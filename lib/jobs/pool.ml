type 'a task = { key : string option; label : string; run : unit -> 'a }

let task ?key ~label run = { key; label; run }

let label t = t.label

type fail_kind = Crashed | Timed_out | Quarantined | Cancelled

type failure = {
  fl_label : string;
  fl_kind : fail_kind;
  fl_attempts : int;
  fl_detail : string;
}

type 'a outcome = Done of 'a | Retried of 'a * int | Failed of failure

let failure_message f = f.fl_label ^ ": " ^ f.fl_detail

type stats = {
  mutable executed : int;
  mutable forked : int;
  mutable cache_hits : int;
  mutable failed : int;
  mutable retried : int;
  mutable timed_out : int;
  mutable quarantined : int;
  mutable cancelled : int;
}

let stats () =
  {
    executed = 0;
    forked = 0;
    cache_hits = 0;
    failed = 0;
    retried = 0;
    timed_out = 0;
    quarantined = 0;
    cancelled = 0;
  }

(* ------------------------------------------------------------------ *)
(* Cancellation tokens: a shared flag that abandons queued-but-unstarted *)
(* work.  Cancelling never SIGKILLs a healthy worker: attempts already   *)
(* running complete normally (and still populate the cache); entries     *)
(* still waiting in the queue — or in the retry-backoff list — are       *)
(* dropped with [Failed {fl_kind = Cancelled}] the next time the         *)
(* scheduler touches them.                                               *)
(* ------------------------------------------------------------------ *)

type token = { mutable tk_cancelled : bool }

let token () = { tk_cancelled = false }

let cancel tok = tok.tk_cancelled <- true

let cancelled tok = tok.tk_cancelled

let cancelled_failure t =
  {
    fl_label = t.label;
    fl_kind = Cancelled;
    fl_attempts = 0;
    fl_detail = "cancelled before running";
  }

(* ------------------------------------------------------------------ *)
(* Quarantine registry: a process-global count of failed attempts per   *)
(* task identity.  A cell that keeps crashing (bad fingerprint inputs,  *)
(* a guest program that aborts the worker) stops being retried across   *)
(* runs in the same process: once it accumulates [quarantine_after]     *)
(* failures it is skipped instantly with [Failed {fl_kind =             *)
(* Quarantined}], so one poisoned cell cannot serialise a whole sweep   *)
(* behind deadline * retries stalls.                                    *)
(* ------------------------------------------------------------------ *)

let quarantine_after = ref 3

let quarantine_tbl : (string, int) Hashtbl.t = Hashtbl.create 16

let identity t =
  match t.key with Some k -> "key:" ^ k | None -> "label:" ^ t.label

let record_failure t =
  let id = identity t in
  let n = match Hashtbl.find_opt quarantine_tbl id with Some n -> n | None -> 0 in
  Hashtbl.replace quarantine_tbl id (n + 1)

let is_quarantined t =
  match Hashtbl.find_opt quarantine_tbl (identity t) with
  | Some n -> n >= !quarantine_after
  | None -> false

let reset_quarantine () = Hashtbl.reset quarantine_tbl

let quarantine_failure t =
  {
    fl_label = t.label;
    fl_kind = Quarantined;
    fl_attempts = 0;
    fl_detail =
      Printf.sprintf "quarantined after %d repeated failures; skipped"
        !quarantine_after;
  }

let run_task t =
  match t.run () with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

let cache_load cache t =
  match (cache, t.key) with
  | Some c, Some key -> Cache.load c ~key
  | _ -> None

let cache_store cache t v =
  match (cache, t.key) with
  | Some c, Some key -> Cache.store c ~key v
  | _ -> ()

let backoff_delay ~backoff attempt =
  backoff *. (2. ** float_of_int (attempt - 1))

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "was killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "was stopped by signal %d" n

(* ------------------------------------------------------------------ *)
(* Sequential path: -j 1 runs every thunk in-process, in order — the    *)
(* exact code path the pre-pool harness took (retries happen inline).   *)
(* ------------------------------------------------------------------ *)

let run_seq ?cancel ~cache ~stats ~retries ~backoff tasks =
  let is_cancelled () =
    match cancel with Some tok -> tok.tk_cancelled | None -> false
  in
  List.map
    (fun t ->
      if is_cancelled () then begin
        stats.cancelled <- stats.cancelled + 1;
        Failed (cancelled_failure t)
      end
      else if is_quarantined t then begin
        stats.quarantined <- stats.quarantined + 1;
        Failed (quarantine_failure t)
      end
      else
        match cache_load cache t with
        | Some v ->
          stats.cache_hits <- stats.cache_hits + 1;
          Done v
        | None ->
          let rec attempt k =
            stats.executed <- stats.executed + 1;
            match run_task t with
            | Ok v ->
              cache_store cache t v;
              if k = 1 then Done v else Retried (v, k - 1)
            | Error msg ->
              record_failure t;
              if k <= retries && not (is_cancelled ()) then begin
                stats.retried <- stats.retried + 1;
                Unix.sleepf (backoff_delay ~backoff k);
                attempt (k + 1)
              end
              else begin
                stats.failed <- stats.failed + 1;
                Failed
                  {
                    fl_label = t.label;
                    fl_kind = Crashed;
                    fl_attempts = k;
                    fl_detail = msg;
                  }
              end
          in
          attempt 1)
    tasks

(* ------------------------------------------------------------------ *)
(* Incremental scheduler: the forked-worker event machinery exposed as  *)
(* a pump-style API so a surrounding event loop (the batch [run] below, *)
(* or the [Sb_serve] daemon's socket loop) can multiplex worker pipes   *)
(* alongside its own file descriptors.  Each submitted task resolves    *)
(* through quarantine and the cache first; misses fork one worker per   *)
(* attempt, at most [jobs] live at once, and the completion callback    *)
(* fires as outcomes land (completion order, not submission order).     *)
(* ------------------------------------------------------------------ *)

module Sched = struct
  type 'a entry = {
    e_task : 'a task;
    e_cancel : token option;
    e_k : 'a outcome -> unit;
  }

  type 'a child = {
    c_entry : 'a entry;
    c_attempt : int; (* 1-based *)
    c_pid : int;
    c_fd : Unix.file_descr;
    c_buf : Buffer.t;
    c_start : float;
  }

  type 'a t = {
    s_jobs : int;
    s_cache : Cache.t option;
    s_stats : stats;
    s_deadline : float option;
    s_retries : int;
    s_backoff : float;
    s_queue : ('a entry * int) Queue.t;
    (* delayed retries: (ready_at, entry, attempt) *)
    mutable s_delayed : (float * 'a entry * int) list;
    (* children keyed by read-end fd: [Unix.select] hands fds back, and a
       Hashtbl lookup is total — no [List.find] that can raise if an fd
       number is recycled between loop iterations *)
    s_active : (Unix.file_descr, 'a child) Hashtbl.t;
    s_read_buf : Bytes.t;
  }

  let create ?(jobs = 1) ?cache ?stats:(s = stats ()) ?deadline ?(retries = 0)
      ?(backoff = 0.05) () =
    (match deadline with
    | Some d when d <= 0.0 -> invalid_arg "Sched.create: deadline must be positive"
    | _ -> ());
    if retries < 0 then invalid_arg "Sched.create: retries must be non-negative";
    if backoff < 0.0 then invalid_arg "Sched.create: backoff must be non-negative";
    {
      s_jobs = max 1 jobs;
      s_cache = cache;
      s_stats = s;
      s_deadline = deadline;
      s_retries = retries;
      s_backoff = backoff;
      s_queue = Queue.create ();
      s_delayed = [];
      s_active = Hashtbl.create 16;
      s_read_buf = Bytes.create 65536;
    }

  let entry_cancelled e =
    match e.e_cancel with Some tok -> tok.tk_cancelled | None -> false

  let deliver_cancelled st e =
    st.s_stats.cancelled <- st.s_stats.cancelled + 1;
    e.e_k (Failed (cancelled_failure e.e_task))

  let spawn st e ~attempt =
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Unix.close r;
      let result = run_task e.e_task in
      let oc = Unix.out_channel_of_descr w in
      (try
         Marshal.to_channel oc result [];
         flush oc
       with _ -> ());
      (* _exit: skip at_exit handlers and buffered output shared with the
         parent *)
      Unix._exit 0
    | pid ->
      Unix.close w;
      st.s_stats.forked <- st.s_stats.forked + 1;
      st.s_stats.executed <- st.s_stats.executed + 1;
      Hashtbl.replace st.s_active r
        {
          c_entry = e;
          c_attempt = attempt;
          c_pid = pid;
          c_fd = r;
          c_buf = Buffer.create 256;
          c_start = Unix.gettimeofday ();
        }

  let fill st =
    while
      Hashtbl.length st.s_active < st.s_jobs && not (Queue.is_empty st.s_queue)
    do
      let e, attempt = Queue.pop st.s_queue in
      if entry_cancelled e then deliver_cancelled st e
      else spawn st e ~attempt
    done

  let submit st ?cancel t ~k =
    let e = { e_task = t; e_cancel = cancel; e_k = k } in
    if entry_cancelled e then deliver_cancelled st e
    else if is_quarantined t then begin
      st.s_stats.quarantined <- st.s_stats.quarantined + 1;
      k (Failed (quarantine_failure t))
    end
    else
      match cache_load st.s_cache t with
      | Some v ->
        st.s_stats.cache_hits <- st.s_stats.cache_hits + 1;
        k (Done v)
      | None ->
        Queue.add (e, 1) st.s_queue;
        fill st

  let fail st e ~attempt ~timed_out ~detail =
    record_failure e.e_task;
    if (not timed_out) && attempt <= st.s_retries && not (entry_cancelled e)
    then begin
      (* crashes are retried with exponential backoff; timeouts are not —
         a cell that hit the deadline once would burn deadline seconds per
         extra attempt for a result the budget already rejected *)
      st.s_stats.retried <- st.s_stats.retried + 1;
      st.s_delayed <-
        ( Unix.gettimeofday () +. backoff_delay ~backoff:st.s_backoff attempt,
          e,
          attempt + 1 )
        :: st.s_delayed
    end
    else begin
      if timed_out then st.s_stats.timed_out <- st.s_stats.timed_out + 1;
      st.s_stats.failed <- st.s_stats.failed + 1;
      e.e_k
        (Failed
           {
             fl_label = e.e_task.label;
             fl_kind = (if timed_out then Timed_out else Crashed);
             fl_attempts = attempt;
             fl_detail = detail;
           })
    end

  let reap st (child : _ child) =
    let _, status =
      restart_on_intr (fun () -> Unix.waitpid [] child.c_pid)
    in
    let e = child.c_entry in
    let payload = Buffer.contents child.c_buf in
    match (Marshal.from_string payload 0 : (_, string) result) with
    | Ok v ->
      cache_store st.s_cache e.e_task v;
      e.e_k
        (if child.c_attempt = 1 then Done v else Retried (v, child.c_attempt - 1))
    | Error msg ->
      fail st e ~attempt:child.c_attempt ~timed_out:false ~detail:msg
    | exception _ ->
      (* the worker died before (or while) writing its result *)
      fail st e ~attempt:child.c_attempt ~timed_out:false
        ~detail:
          (Printf.sprintf "worker %s without reporting a result"
             (describe_status status))

  let kill_expired st =
    match st.s_deadline with
    | None -> ()
    | Some d ->
      let now = Unix.gettimeofday () in
      let expired =
        Hashtbl.fold
          (fun _ c acc -> if now -. c.c_start >= d then c :: acc else acc)
          st.s_active []
      in
      List.iter
        (fun c ->
          Hashtbl.remove st.s_active c.c_fd;
          Unix.close c.c_fd;
          (try Unix.kill c.c_pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (restart_on_intr (fun () -> Unix.waitpid [] c.c_pid));
          fail st c.c_entry ~attempt:c.c_attempt ~timed_out:true
            ~detail:(Printf.sprintf "exceeded %.1fs deadline; killed" d))
        expired

  let sweep_cancelled st =
    if
      Queue.fold (fun acc (e, _) -> acc || entry_cancelled e) false st.s_queue
    then begin
      let keep = Queue.create () in
      Queue.iter
        (fun (e, attempt) ->
          if entry_cancelled e then deliver_cancelled st e
          else Queue.add (e, attempt) keep)
        st.s_queue;
      Queue.clear st.s_queue;
      Queue.transfer keep st.s_queue
    end

  let pump st ~readable =
    (* promote retries whose backoff has elapsed *)
    let now = Unix.gettimeofday () in
    let due, still =
      List.partition (fun (at, _, _) -> at <= now) st.s_delayed
    in
    st.s_delayed <- still;
    List.iter
      (fun (_, e, attempt) ->
        if entry_cancelled e then deliver_cancelled st e
        else Queue.add (e, attempt) st.s_queue)
      due;
    sweep_cancelled st;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt st.s_active fd with
        | None -> () (* not one of ours: the caller multiplexes other fds *)
        | Some child ->
          let got =
            restart_on_intr (fun () ->
                Unix.read fd st.s_read_buf 0 (Bytes.length st.s_read_buf))
          in
          if got > 0 then Buffer.add_subbytes child.c_buf st.s_read_buf 0 got
          else begin
            (* EOF: the worker exited and the pipe is drained *)
            Hashtbl.remove st.s_active fd;
            Unix.close fd;
            reap st child
          end)
      readable;
    kill_expired st;
    fill st

  let fds st = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.s_active []

  let timeout st =
    (* one select timeout serves both child deadlines and retry wake-ups:
       sleep until the earliest of them, or forever when neither applies *)
    let wakeups =
      (match st.s_deadline with
      | None -> []
      | Some d ->
        Hashtbl.fold (fun _ c acc -> (c.c_start +. d) :: acc) st.s_active [])
      @ List.map (fun (at, _, _) -> at) st.s_delayed
    in
    match wakeups with
    | [] -> -1.0
    | l ->
      Float.max 0.0
        (List.fold_left Float.min infinity l -. Unix.gettimeofday ())

  let queued st = Queue.length st.s_queue + List.length st.s_delayed

  let active st = Hashtbl.length st.s_active

  let idle st = queued st = 0 && active st = 0

  let drain st =
    while not (idle st) do
      let readable, _, _ =
        restart_on_intr (fun () -> Unix.select (fds st) [] [] (timeout st))
      in
      pump st ~readable
    done
end

(* ------------------------------------------------------------------ *)
(* Batch entry point: the parallel path is the incremental scheduler    *)
(* driven to completion, with results re-ordered back to task order.    *)
(* ------------------------------------------------------------------ *)

let run_par ~jobs ~cache ~stats ~deadline ~retries ~backoff ~cancel tasks =
  let st = Sched.create ~jobs ?cache ~stats ?deadline ~retries ~backoff () in
  let n = List.length tasks in
  let results = Array.make n None in
  List.iteri
    (fun i t -> Sched.submit st ?cancel t ~k:(fun o -> results.(i) <- Some o))
    tasks;
  Sched.drain st;
  Array.to_list
    (Array.map
       (function
         | Some outcome -> outcome
         | None ->
           Failed
             {
               fl_label = "pool";
               fl_kind = Crashed;
               fl_attempts = 0;
               fl_detail = "result lost";
             })
       results)

let run ?(jobs = 1) ?cache ?stats:(s = stats ()) ?deadline ?(retries = 0)
    ?(backoff = 0.05) ?cancel tasks =
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Pool.run: deadline must be positive"
  | _ -> ());
  if retries < 0 then invalid_arg "Pool.run: retries must be non-negative";
  if backoff < 0.0 then invalid_arg "Pool.run: backoff must be non-negative";
  match deadline with
  | None when jobs <= 1 || List.length tasks <= 1 ->
    run_seq ?cancel ~cache ~stats:s ~retries ~backoff tasks
  | _ ->
    (* a deadline forces the forked path even at -j 1: only a child
       process can be killed when it hangs *)
    run_par ~jobs:(max 1 jobs) ~cache ~stats:s ~deadline ~retries ~backoff
      ~cancel tasks
