type 'a task = { key : string option; label : string; run : unit -> 'a }

let task ?key ~label run = { key; label; run }

let label t = t.label

type fail_kind = Crashed | Timed_out | Quarantined

type failure = {
  fl_label : string;
  fl_kind : fail_kind;
  fl_attempts : int;
  fl_detail : string;
}

type 'a outcome = Done of 'a | Retried of 'a * int | Failed of failure

let failure_message f = f.fl_label ^ ": " ^ f.fl_detail

type stats = {
  mutable executed : int;
  mutable forked : int;
  mutable cache_hits : int;
  mutable failed : int;
  mutable retried : int;
  mutable timed_out : int;
  mutable quarantined : int;
}

let stats () =
  {
    executed = 0;
    forked = 0;
    cache_hits = 0;
    failed = 0;
    retried = 0;
    timed_out = 0;
    quarantined = 0;
  }

(* ------------------------------------------------------------------ *)
(* Quarantine registry: a process-global count of failed attempts per   *)
(* task identity.  A cell that keeps crashing (bad fingerprint inputs,  *)
(* a guest program that aborts the worker) stops being retried across   *)
(* runs in the same process: once it accumulates [quarantine_after]     *)
(* failures it is skipped instantly with [Failed {fl_kind =             *)
(* Quarantined}], so one poisoned cell cannot serialise a whole sweep   *)
(* behind deadline * retries stalls.                                    *)
(* ------------------------------------------------------------------ *)

let quarantine_after = ref 3

let quarantine_tbl : (string, int) Hashtbl.t = Hashtbl.create 16

let identity t =
  match t.key with Some k -> "key:" ^ k | None -> "label:" ^ t.label

let record_failure t =
  let id = identity t in
  let n = match Hashtbl.find_opt quarantine_tbl id with Some n -> n | None -> 0 in
  Hashtbl.replace quarantine_tbl id (n + 1)

let is_quarantined t =
  match Hashtbl.find_opt quarantine_tbl (identity t) with
  | Some n -> n >= !quarantine_after
  | None -> false

let reset_quarantine () = Hashtbl.reset quarantine_tbl

let quarantine_failure t =
  {
    fl_label = t.label;
    fl_kind = Quarantined;
    fl_attempts = 0;
    fl_detail =
      Printf.sprintf "quarantined after %d repeated failures; skipped"
        !quarantine_after;
  }

let run_task t =
  match t.run () with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

let cache_load cache t =
  match (cache, t.key) with
  | Some c, Some key -> Cache.load c ~key
  | _ -> None

let cache_store cache t v =
  match (cache, t.key) with
  | Some c, Some key -> Cache.store c ~key v
  | _ -> ()

let backoff_delay ~backoff attempt =
  backoff *. (2. ** float_of_int (attempt - 1))

(* ------------------------------------------------------------------ *)
(* Sequential path: -j 1 runs every thunk in-process, in order — the    *)
(* exact code path the pre-pool harness took (retries happen inline).   *)
(* ------------------------------------------------------------------ *)

let run_seq ~cache ~stats ~retries ~backoff tasks =
  List.map
    (fun t ->
      if is_quarantined t then begin
        stats.quarantined <- stats.quarantined + 1;
        Failed (quarantine_failure t)
      end
      else
        match cache_load cache t with
        | Some v ->
          stats.cache_hits <- stats.cache_hits + 1;
          Done v
        | None ->
          let rec attempt k =
            stats.executed <- stats.executed + 1;
            match run_task t with
            | Ok v ->
              cache_store cache t v;
              if k = 1 then Done v else Retried (v, k - 1)
            | Error msg ->
              record_failure t;
              if k <= retries then begin
                stats.retried <- stats.retried + 1;
                Unix.sleepf (backoff_delay ~backoff k);
                attempt (k + 1)
              end
              else begin
                stats.failed <- stats.failed + 1;
                Failed
                  {
                    fl_label = t.label;
                    fl_kind = Crashed;
                    fl_attempts = k;
                    fl_detail = msg;
                  }
              end
          in
          attempt 1)
    tasks

(* ------------------------------------------------------------------ *)
(* Parallel path: fork one worker per attempt, at most [jobs] live at   *)
(* once; each worker marshals an [('a, string) result] back over a      *)
(* pipe and exits.  The event loop multiplexes pipe reads, per-child    *)
(* wall-clock deadlines (stragglers are SIGKILLed) and delayed retry    *)
(* wake-ups through one [Unix.select] timeout.                          *)
(* ------------------------------------------------------------------ *)

type 'a child = {
  c_idx : int;
  c_task : 'a task;
  c_attempt : int; (* 1-based *)
  c_pid : int;
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  c_start : float;
}

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "was killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "was stopped by signal %d" n

let spawn ~stats idx t ~attempt =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let result = run_task t in
    let oc = Unix.out_channel_of_descr w in
    (try
       Marshal.to_channel oc result [];
       flush oc
     with _ -> ());
    (* _exit: skip at_exit handlers and buffered output shared with the
       parent *)
    Unix._exit 0
  | pid ->
    Unix.close w;
    stats.forked <- stats.forked + 1;
    stats.executed <- stats.executed + 1;
    {
      c_idx = idx;
      c_task = t;
      c_attempt = attempt;
      c_pid = pid;
      c_fd = r;
      c_buf = Buffer.create 256;
      c_start = Unix.gettimeofday ();
    }

let run_par ~jobs ~cache ~stats ~deadline ~retries ~backoff tasks =
  let n = List.length tasks in
  let results = Array.make n None in
  let queue = Queue.create () in
  (* delayed retries: (ready_at, idx, task, attempt) *)
  let delayed = ref [] in
  (* quarantine and cache hits resolve up front; only misses cost a fork *)
  List.iteri
    (fun idx t ->
      if is_quarantined t then begin
        stats.quarantined <- stats.quarantined + 1;
        results.(idx) <- Some (Failed (quarantine_failure t))
      end
      else
        match cache_load cache t with
        | Some v ->
          stats.cache_hits <- stats.cache_hits + 1;
          results.(idx) <- Some (Done v)
        | None -> Queue.add (idx, t, 1) queue)
    tasks;
  (* children keyed by read-end fd: [Unix.select] hands fds back, and a
     Hashtbl lookup is total — no [List.find] that can raise if an fd
     number is recycled between loop iterations *)
  let active : (Unix.file_descr, _ child) Hashtbl.t = Hashtbl.create 16 in
  let read_buf = Bytes.create 65536 in
  let finish idx outcome = results.(idx) <- Some outcome in
  let fail ~idx ~task ~attempt ~timed_out ~detail =
    record_failure task;
    if (not timed_out) && attempt <= retries then begin
      (* crashes are retried with exponential backoff; timeouts are not —
         a cell that hit the deadline once would burn deadline seconds per
         extra attempt for a result the budget already rejected *)
      stats.retried <- stats.retried + 1;
      delayed :=
        ( Unix.gettimeofday () +. backoff_delay ~backoff attempt,
          idx,
          task,
          attempt + 1 )
        :: !delayed
    end
    else begin
      if timed_out then stats.timed_out <- stats.timed_out + 1;
      stats.failed <- stats.failed + 1;
      finish idx
        (Failed
           {
             fl_label = task.label;
             fl_kind = (if timed_out then Timed_out else Crashed);
             fl_attempts = attempt;
             fl_detail = detail;
           })
    end
  in
  let reap child =
    let _, status =
      restart_on_intr (fun () -> Unix.waitpid [] child.c_pid)
    in
    let payload = Buffer.contents child.c_buf in
    match (Marshal.from_string payload 0 : (_, string) result) with
    | Ok v ->
      cache_store cache child.c_task v;
      finish child.c_idx
        (if child.c_attempt = 1 then Done v else Retried (v, child.c_attempt - 1))
    | Error msg ->
      fail ~idx:child.c_idx ~task:child.c_task ~attempt:child.c_attempt
        ~timed_out:false ~detail:msg
    | exception _ ->
      (* the worker died before (or while) writing its result *)
      fail ~idx:child.c_idx ~task:child.c_task ~attempt:child.c_attempt
        ~timed_out:false
        ~detail:
          (Printf.sprintf "worker %s without reporting a result"
             (describe_status status))
  in
  let kill_expired d =
    let now = Unix.gettimeofday () in
    let expired =
      Hashtbl.fold
        (fun _ c acc -> if now -. c.c_start >= d then c :: acc else acc)
        active []
    in
    List.iter
      (fun c ->
        Hashtbl.remove active c.c_fd;
        Unix.close c.c_fd;
        (try Unix.kill c.c_pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (restart_on_intr (fun () -> Unix.waitpid [] c.c_pid));
        fail ~idx:c.c_idx ~task:c.c_task ~attempt:c.c_attempt ~timed_out:true
          ~detail:(Printf.sprintf "exceeded %.1fs deadline; killed" d))
      expired
  in
  while
    (not (Queue.is_empty queue)) || !delayed <> [] || Hashtbl.length active > 0
  do
    (* promote retries whose backoff has elapsed *)
    let now = Unix.gettimeofday () in
    let due, still =
      List.partition (fun (at, _, _, _) -> at <= now) !delayed
    in
    delayed := still;
    List.iter (fun (_, idx, t, attempt) -> Queue.add (idx, t, attempt) queue) due;
    while Hashtbl.length active < jobs && not (Queue.is_empty queue) do
      let idx, t, attempt = Queue.pop queue in
      let c = spawn ~stats idx t ~attempt in
      Hashtbl.replace active c.c_fd c
    done;
    (* one select timeout serves both child deadlines and retry wake-ups:
       sleep until the earliest of them, or forever when neither applies *)
    let timeout =
      let wakeups =
        (match deadline with
        | None -> []
        | Some d ->
          Hashtbl.fold (fun _ c acc -> (c.c_start +. d) :: acc) active [])
        @ List.map (fun (at, _, _, _) -> at) !delayed
      in
      match wakeups with
      | [] -> -1.0
      | l ->
        Float.max 0.0 (List.fold_left Float.min infinity l -. Unix.gettimeofday ())
    in
    let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) active [] in
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select fds [] [] timeout)
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt active fd with
        | None -> ()
        | Some child ->
          let got =
            restart_on_intr (fun () ->
                Unix.read fd read_buf 0 (Bytes.length read_buf))
          in
          if got > 0 then Buffer.add_subbytes child.c_buf read_buf 0 got
          else begin
            (* EOF: the worker exited and the pipe is drained *)
            Hashtbl.remove active fd;
            Unix.close fd;
            reap child
          end)
      readable;
    match deadline with None -> () | Some d -> kill_expired d
  done;
  Array.to_list
    (Array.map
       (function
         | Some outcome -> outcome
         | None ->
           Failed
             {
               fl_label = "pool";
               fl_kind = Crashed;
               fl_attempts = 0;
               fl_detail = "result lost";
             })
       results)

let run ?(jobs = 1) ?cache ?stats:(s = stats ()) ?deadline ?(retries = 0)
    ?(backoff = 0.05) tasks =
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Pool.run: deadline must be positive"
  | _ -> ());
  if retries < 0 then invalid_arg "Pool.run: retries must be non-negative";
  if backoff < 0.0 then invalid_arg "Pool.run: backoff must be non-negative";
  match deadline with
  | None when jobs <= 1 || List.length tasks <= 1 ->
    run_seq ~cache ~stats:s ~retries ~backoff tasks
  | _ ->
    (* a deadline forces the forked path even at -j 1: only a child
       process can be killed when it hangs *)
    run_par ~jobs:(max 1 jobs) ~cache ~stats:s ~deadline ~retries ~backoff
      tasks
