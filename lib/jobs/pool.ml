type 'a task = { key : string option; label : string; run : unit -> 'a }

let task ?key ~label run = { key; label; run }

let label t = t.label

type 'a outcome = Done of 'a | Failed of string

type stats = {
  mutable executed : int;
  mutable forked : int;
  mutable cache_hits : int;
  mutable failed : int;
}

let stats () = { executed = 0; forked = 0; cache_hits = 0; failed = 0 }

let run_task t =
  match t.run () with
  | v -> Ok v
  | exception e -> Error (Printexc.to_string e)

let cache_load cache t =
  match (cache, t.key) with
  | Some c, Some key -> Cache.load c ~key
  | _ -> None

let cache_store cache t v =
  match (cache, t.key) with
  | Some c, Some key -> Cache.store c ~key v
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Sequential path: -j 1 runs every thunk in-process, in order — the    *)
(* exact code path the pre-pool harness took.                           *)
(* ------------------------------------------------------------------ *)

let run_seq ~cache ~stats tasks =
  List.map
    (fun t ->
      match cache_load cache t with
      | Some v ->
        stats.cache_hits <- stats.cache_hits + 1;
        Done v
      | None -> (
        stats.executed <- stats.executed + 1;
        match run_task t with
        | Ok v ->
          cache_store cache t v;
          Done v
        | Error msg ->
          stats.failed <- stats.failed + 1;
          Failed (t.label ^ ": " ^ msg)))
    tasks

(* ------------------------------------------------------------------ *)
(* Parallel path: fork one worker per cell, at most [jobs] live at      *)
(* once; each worker marshals an [('a, string) result] back over a      *)
(* pipe and exits.                                                      *)
(* ------------------------------------------------------------------ *)

type child = {
  c_idx : int;
  c_key : string option;
  c_label : string;
  c_pid : int;
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
}

let rec restart_on_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_intr f

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "was killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "was stopped by signal %d" n

let spawn ~stats idx t =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let result = run_task t in
    let oc = Unix.out_channel_of_descr w in
    (try
       Marshal.to_channel oc result [];
       flush oc
     with _ -> ());
    (* _exit: skip at_exit handlers and buffered output shared with the
       parent *)
    Unix._exit 0
  | pid ->
    Unix.close w;
    stats.forked <- stats.forked + 1;
    stats.executed <- stats.executed + 1;
    {
      c_idx = idx;
      c_key = t.key;
      c_label = t.label;
      c_pid = pid;
      c_fd = r;
      c_buf = Buffer.create 256;
    }

let reap ~cache ~stats child =
  let _, status = restart_on_intr (fun () -> Unix.waitpid [] child.c_pid) in
  let payload = Buffer.contents child.c_buf in
  match (Marshal.from_string payload 0 : (_, string) result) with
  | Ok v ->
    (match (cache, child.c_key) with
    | Some c, Some key -> Cache.store c ~key v
    | _ -> ());
    Done v
  | Error msg ->
    stats.failed <- stats.failed + 1;
    Failed (child.c_label ^ ": " ^ msg)
  | exception _ ->
    (* the worker died before (or while) writing its result *)
    stats.failed <- stats.failed + 1;
    Failed
      (Printf.sprintf "%s: worker %s without reporting a result" child.c_label
         (describe_status status))

let run_par ~jobs ~cache ~stats tasks =
  let n = List.length tasks in
  let results = Array.make n None in
  let queue = Queue.create () in
  (* resolve cache hits up front; only misses cost a fork *)
  List.iteri
    (fun idx t ->
      match cache_load cache t with
      | Some v ->
        stats.cache_hits <- stats.cache_hits + 1;
        results.(idx) <- Some (Done v)
      | None -> Queue.add (idx, t) queue)
    tasks;
  let active = ref [] in
  let read_buf = Bytes.create 65536 in
  while (not (Queue.is_empty queue)) || !active <> [] do
    while List.length !active < jobs && not (Queue.is_empty queue) do
      let idx, t = Queue.pop queue in
      active := spawn ~stats idx t :: !active
    done;
    let fds = List.map (fun c -> c.c_fd) !active in
    let readable, _, _ =
      restart_on_intr (fun () -> Unix.select fds [] [] (-1.0))
    in
    List.iter
      (fun fd ->
        let child = List.find (fun c -> c.c_fd = fd) !active in
        let got =
          restart_on_intr (fun () ->
              Unix.read fd read_buf 0 (Bytes.length read_buf))
        in
        if got > 0 then Buffer.add_subbytes child.c_buf read_buf 0 got
        else begin
          (* EOF: the worker exited and the pipe is drained *)
          Unix.close fd;
          active := List.filter (fun c -> c.c_pid <> child.c_pid) !active;
          results.(child.c_idx) <- Some (reap ~cache ~stats child)
        end)
      readable
  done;
  Array.to_list
    (Array.map
       (function
         | Some outcome -> outcome
         | None -> Failed "pool: result lost")
       results)

let run ?(jobs = 1) ?cache ?stats:(s = stats ()) tasks =
  if jobs <= 1 || List.length tasks <= 1 then run_seq ~cache ~stats:s tasks
  else run_par ~jobs ~cache ~stats:s tasks
