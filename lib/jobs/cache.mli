(** Persistent on-disk result cache for experiment cells.

    Values are stored with [Marshal] under a caller-supplied key; the key is
    expected to be a {!fingerprint} of everything that determines the result
    (engine knobs, guest architecture, workload kind, iteration counts,
    scale), so a change to any knob produces a different key and the stale
    cell is simply never looked up again.

    The load path is type-unsafe in the way [Marshal] always is: a key must
    never be reused for values of a different type.  Deriving keys with
    {!fingerprint} (which folds in a schema version) keeps that property. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) if needed, and sweeps stale [*.tmp.<pid>]
    files left by writers that died mid-{!store} (only when the owning
    pid is gone — a live pid is a concurrent writer, not litter), plus any
    structurally corrupt checkpoint files ([sb_ckpt_*.cache] whose marshal
    segments no longer decode or whose stored key disagrees with the
    filename).  Swept files count as {!evictions}. *)

val checkpoint_schema : string
(** Version tag of the checkpoint store layered on this cache; folded into
    the cache schema (and thus every {!fingerprint}). *)

val dir : t -> string

val fingerprint : 'a -> string
(** Hex digest of the marshalled value (plus the cache schema version).
    The value must be marshallable without closures: plain records, tuples,
    variants, strings and numbers. *)

val load : t -> key:string -> 'a option
(** [None] on missing, truncated, corrupt or key-mismatched files.  A
    missing file is a plain (silent) miss; a corrupt or key-mismatched
    file is {e evicted}: a one-line warning naming the offending path goes
    to stderr, the file is removed, and {!evictions} is incremented — a
    poisoned CI cache shows up in the logs instead of silently re-running
    every cell. *)

val evict : t -> key:string -> reason:string -> unit
(** Remove one entry's file, warn on stderr and count an eviction — for
    callers (the checkpoint store) whose payloads carry their own
    integrity checks beyond what {!load} verifies. *)

val evictions : unit -> int
(** Corrupt-entry evictions and stale-temp sweeps since start (or
    {!reset_evictions}). *)

val reset_evictions : unit -> unit

val store : t -> key:string -> 'a -> unit
(** Atomic and crash-consistent: the value is written to a private temp
    file, fsynced, renamed into place, and the directory entry is
    fsynced — a crash at any point leaves either the old entry, the new
    entry, or a reclaimable temp file, never a torn entry under the real
    name.  (fsync is best-effort: filesystems that refuse it are
    tolerated.)  If the write itself fails the temp file is removed
    before the exception propagates. *)

val clear : t -> unit
(** Remove every cache file in the directory. *)

val mkdir_p : string -> unit
(** Exposed for callers that need an output directory with the same
    semantics ([--json] output, tests). *)
