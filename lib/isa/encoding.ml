(* Encoding-space enumeration, as provided by each architecture support
   package and consumed by the translation validator (Sb_analysis.Tv).

   A [set] partitions the ISA's opcode-selector space into classes; every
   class carries concrete byte encodings exercising its register fields and
   its representative/boundary immediates.  The validator checks that the
   classes tile the selector space exactly (no gaps, no overlaps), so an
   opcode added to a decoder without an enumeration entry is a build-time
   coverage failure, not a silently unchecked instruction. *)

type case = {
  label : string;  (** human-readable operand description, e.g. "rd=15 imm=-1" *)
  bytes : int list;  (** the encoding, in fetch order (byte at addr first) *)
}

type cls = {
  name : string;  (** opcode-class name, e.g. "addi" or "undef" *)
  selectors : int list;  (** selector values this class claims *)
  cases : case list;
  skip : string option;
      (** [Some reason] marks the class as enumerated but deliberately not
          symbolically checked; it still counts toward selector coverage. *)
}

type set = {
  arch : Arch_sig.arch_id;
  selector_space : int;  (** number of selector values, e.g. 64 or 256 *)
  selector_desc : string;  (** where the selector lives, for reports *)
  classes : cls list;
  const_prefix : case;
      (** a one-instruction encoding that sets a known register to a known
          constant; the validator prepends it to every case so
          cross-instruction constant propagation is also exercised *)
}

let case ~label bytes = { label; bytes }

(* selector values claimed by no class *)
let gaps set =
  let claimed = Array.make set.selector_space 0 in
  List.iter
    (fun c -> List.iter (fun s -> claimed.(s) <- claimed.(s) + 1) c.selectors)
    set.classes;
  let missing = ref [] and dup = ref [] in
  for s = set.selector_space - 1 downto 0 do
    if claimed.(s) = 0 then missing := s :: !missing
    else if claimed.(s) > 1 then dup := s :: !dup
  done;
  (!missing, !dup)
