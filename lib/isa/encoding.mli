(** Encoding-space enumeration hooks for the translation validator.

    Each architecture support package exposes a {!set} describing every
    decodable encoding class with concrete boundary-operand encodings;
    [Sb_analysis.Tv] symbolically checks each case against the DBT's
    emitted IR and asserts the classes tile the selector space. *)

type case = {
  label : string;  (** human-readable operand description *)
  bytes : int list;  (** the encoding, in fetch order *)
}

type cls = {
  name : string;
  selectors : int list;  (** selector values this class claims *)
  cases : case list;
  skip : string option;
      (** [Some reason]: enumerated but deliberately unchecked *)
}

type set = {
  arch : Arch_sig.arch_id;
  selector_space : int;
  selector_desc : string;
  classes : cls list;
  const_prefix : case;
      (** one instruction setting a known register to a known constant,
          prepended to each case to exercise cross-insn constant folding *)
}

val case : label:string -> int list -> case

val gaps : set -> int list * int list
(** [(missing, duplicated)] selector values — both empty iff the classes
    partition the selector space exactly. *)
