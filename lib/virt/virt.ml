open Sb_isa
open Sb_sim

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

(* Flat "hardware" translation cache: one packed slot per virtual page of the
   whole 32-bit space.  Layout:
   [gen | asid:8 | ppn:20 | ap:2 | xn:1 | valid:1] — a tagged hardware TLB,
   so address-space switches need no flush. *)
let vpn_space = 1 lsl 20

module Config = struct
  type t = { vm_exit_rounds : int; name_suffix : string }

  let virt = { vm_exit_rounds = 96; name_suffix = "virt" }
  let native = { vm_exit_rounds = 0; name_suffix = "native" }
end

module Make_configured
    (A : Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) =
struct
  let cfg = C.config
  let is_native = cfg.Config.vm_exit_rounds = 0

  let name = Printf.sprintf "%s-%s" cfg.Config.name_suffix A.name

  let features =
    if is_native then
      [
        ("Execution Model", "Direct");
        ("Memory Access", "Direct");
        ("Code Generation", "None");
        ("Control Flow", "Direct");
        ("Interrupts", "Direct");
        ("Synchronous Exceptions", "Direct");
        ("Undefined Instruction", "Direct");
      ]
    else
      [
        ("Execution Model", "Direct");
        ("Memory Access", "Direct (HW TLB)");
        ("Code Generation", "None");
        ("Control Flow", "Direct");
        ("Interrupts", "Via Emulation Layer");
        ("Synchronous Exceptions", "Direct");
        ("Undefined Instruction", "Hypercall");
      ]

  exception Guest_fault of {
    vector : Exn.vector;
    cause : int;
    far : int option;
    return_addr : int;
  }

  exception Stop of Run_result.stop_reason

  type ctx = {
    machine : Machine.t;
    cpu : Cpu.t;
    bus : Sb_mem.Bus.t;
    perf : Perf.t;
    host_tlb : int array;
    mutable tlb_gen : int;
    decode_cache : (int, Uop.decoded option array) Hashtbl.t;
    code_pages : Bytes.t;
    (* current-page fetch shortcut: hardware streams fetches within a page *)
    mutable cur_fetch_page : int;
    mutable cur_fetch_arr : Uop.decoded option array;
    shadow_regs : int array;
    shadow_cop : int array;
    mutable exit_token : int;
    mutable timer_backlog : int;
  }

  let empty_arr : Uop.decoded option array = [||]

  let make_ctx machine perf =
    let ram_pages = (Sb_mem.Bus.ram_size machine.Machine.bus + page_mask) / page_size in
    {
      machine;
      cpu = machine.Machine.cpu;
      bus = machine.Machine.bus;
      perf;
      host_tlb = Array.make vpn_space 0;
      tlb_gen = 1;
      decode_cache = Hashtbl.create 64;
      code_pages = Bytes.make ((ram_pages + 7) / 8) '\000';
      cur_fetch_page = -1;
      cur_fetch_arr = empty_arr;
      shadow_regs = Array.make 16 0;
      shadow_cop = Array.make Cregs.count 0;
      exit_token = 0;
      timer_backlog = 0;
    }

  (* ------------- vm exits ---------------------------------------------- *)

  let vm_exit ctx reason =
    if not is_native then begin
      Perf.incr ctx.perf Perf.Vm_exits;
      let cpu = ctx.cpu in
      for round = 1 to cfg.Config.vm_exit_rounds do
        (* world switch out: save vCPU state *)
        Array.blit cpu.Cpu.regs 0 ctx.shadow_regs 0 16;
        Array.blit cpu.Cpu.cop 0 ctx.shadow_cop 0 Cregs.count;
        (* emulation-layer dispatch *)
        ctx.exit_token <-
          (ctx.exit_token + ctx.shadow_regs.((reason + round) land 15)
          + ctx.shadow_cop.((reason + round) mod Cregs.count))
          land max_int;
        (* world switch in: restore *)
        Array.blit ctx.shadow_regs 0 cpu.Cpu.regs 0 16;
        Array.blit ctx.shadow_cop 0 cpu.Cpu.cop 0 Cregs.count
      done
    end

  (* ------------- faults ------------------------------------------------ *)

  let data_fault ~iaddr ~kind ~va fault =
    let cause = Exn.Cause.of_fault ~kind fault in
    match kind with
    | Sb_mmu.Access.Execute ->
      raise
        (Guest_fault
           { vector = Exn.Prefetch_abort; cause; far = Some va; return_addr = iaddr })
    | Sb_mmu.Access.Read | Sb_mmu.Access.Write ->
      raise
        (Guest_fault
           { vector = Exn.Data_abort; cause; far = Some va; return_addr = iaddr })

  let bus_fault ~iaddr ~kind ~va =
    let vector =
      match kind with
      | Sb_mmu.Access.Execute -> Exn.Prefetch_abort
      | Sb_mmu.Access.Read | Sb_mmu.Access.Write -> Exn.Data_abort
    in
    raise
      (Guest_fault
         { vector; cause = Exn.Cause.bus_error; far = Some va; return_addr = iaddr })

  let walker_read32 ctx pa =
    try Sb_mem.Bus.read32 ctx.bus pa with Sb_mem.Bus.Fault _ -> 0

  (* ------------- hardware translation cache ----------------------------- *)

  let pack ctx ~ppn ~ap ~xn ~asid =
    (ctx.tlb_gen lsl 32)
    lor ((asid land 0xFF) lsl 24)
    lor (ppn lsl 4)
    lor (ap lsl 2)
    lor (Bool.to_int xn lsl 1)
    lor 1

  (* index mixes the ASID; for a fixed ASID the mapping is injective in the
     vpn, so matching the stored ASID tag is sufficient to validate a hit *)
  let slot_index ~vpn ~asid = (vpn lxor ((asid land 0xFF) * 0x9E37)) land (vpn_space - 1)

  let translate ctx ~va ~kind ~priv ~iaddr =
    if not (Cpu.mmu_enabled ctx.cpu) then va
    else begin
      let vpn = va lsr page_shift in
      let asid = ctx.cpu.Cpu.cop.(Cregs.asid) in
      let slot = ctx.host_tlb.(slot_index ~vpn ~asid) in
      if
        slot land 1 = 1
        && slot lsr 32 = ctx.tlb_gen
        && (slot lsr 24) land 0xFF = asid land 0xFF
      then begin
        let ap = (slot lsr 2) land 3 in
        let xn = slot land 2 <> 0 in
        if Sb_mmu.Access.Ap.permits ~ap ~xn kind priv then
          (((slot lsr 4) land 0xFFFFF) lsl page_shift) lor (va land page_mask)
        else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission
      end
      else begin
        (* hardware walk: free of simulator bookkeeping beyond the loads *)
        Perf.incr ctx.perf Perf.Mmu_walks;
        let ttbr = ctx.cpu.Cpu.cop.(Cregs.ttbr) in
        match Sb_mmu.Walker.walk ~read32:(walker_read32 ctx) ~ttbr ~va with
        | Error fault -> data_fault ~iaddr ~kind ~va fault
        | Ok m ->
          Perf.add ctx.perf Perf.Walk_levels m.Sb_mmu.Walker.levels;
          let ppn = m.Sb_mmu.Walker.pa_page lsr page_shift in
          ctx.host_tlb.(slot_index ~vpn ~asid) <-
            pack ctx ~ppn ~ap:m.Sb_mmu.Walker.ap ~xn:m.Sb_mmu.Walker.xn ~asid;
          if Sb_mmu.Access.Ap.permits ~ap:m.Sb_mmu.Walker.ap ~xn:m.Sb_mmu.Walker.xn
               kind priv
          then m.Sb_mmu.Walker.pa_page lor (va land page_mask)
          else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission
      end
    end

  let flush_translation ctx =
    ctx.tlb_gen <- ctx.tlb_gen + 1;
    ctx.cur_fetch_page <- -1

  (* ------------- memory ------------------------------------------------- *)

  let read_phys ctx ~iaddr ~va width pa =
    if Sb_mem.Bus.is_ram ctx.bus pa then
      let ram = Sb_mem.Bus.ram ctx.bus in
      match width with
      | Uop.W8 -> Sb_mem.Phys_mem.read8 ram pa
      | Uop.W16 -> Sb_mem.Phys_mem.read16 ram pa
      | Uop.W32 -> Sb_mem.Phys_mem.read32 ram pa
    else begin
      (* device access: trapped and emulated under virtualization *)
      vm_exit ctx 1;
      Perf.incr ctx.perf Perf.Io_reads;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.read8 ctx.bus pa
        | Uop.W16 -> Sb_mem.Bus.read16 ctx.bus pa
        | Uop.W32 -> Sb_mem.Bus.read32 ctx.bus pa
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Read ~va
    end

  let code_bit_get ctx ppage =
    Char.code (Bytes.get ctx.code_pages (ppage lsr 3)) land (1 lsl (ppage land 7)) <> 0

  let code_bit_set ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) lor (1 lsl (ppage land 7))))

  let code_bit_clear ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) land lnot (1 lsl (ppage land 7))))

  let smc_check ctx pa =
    let ppage = pa lsr page_shift in
    if code_bit_get ctx ppage then begin
      Hashtbl.remove ctx.decode_cache ppage;
      code_bit_clear ctx ppage;
      if ctx.cur_fetch_page = ppage then begin
        ctx.cur_fetch_page <- -1;
        ctx.cur_fetch_arr <- empty_arr
      end;
      Perf.incr ctx.perf Perf.Smc_invalidations
    end

  let write_phys ctx ~iaddr ~va width pa v =
    if Sb_mem.Bus.is_ram ctx.bus pa then begin
      let ram = Sb_mem.Bus.ram ctx.bus in
      (match width with
      | Uop.W8 -> Sb_mem.Phys_mem.write8 ram pa v
      | Uop.W16 -> Sb_mem.Phys_mem.write16 ram pa v
      | Uop.W32 -> Sb_mem.Phys_mem.write32 ram pa v);
      smc_check ctx pa
    end
    else begin
      vm_exit ctx 2;
      Perf.incr ctx.perf Perf.Io_writes;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.write8 ctx.bus pa v
        | Uop.W16 -> Sb_mem.Bus.write16 ctx.bus pa v
        | Uop.W32 -> Sb_mem.Bus.write32 ctx.bus pa v
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Write ~va
    end

  (* ------------- fetch --------------------------------------------------- *)

  let fetch_byte ctx ~iaddr a =
    let pa = translate ctx ~va:a ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr in
    if Sb_mem.Bus.is_ram ctx.bus pa then
      Sb_mem.Phys_mem.read8 (Sb_mem.Bus.ram ctx.bus) pa
    else bus_fault ~iaddr ~kind:Sb_mmu.Access.Execute ~va:a

  let decode_at ctx va =
    Perf.incr ctx.perf Perf.Decodes;
    A.decode ~fetch8:(fetch_byte ctx ~iaddr:va) ~addr:va

  let fetch_decode ctx va =
    let pa = translate ctx ~va ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr:va in
    if not (Sb_mem.Bus.is_ram ctx.bus pa) then
      bus_fault ~iaddr:va ~kind:Sb_mmu.Access.Execute ~va;
    let ppage = pa lsr page_shift in
    let arr =
      if ctx.cur_fetch_page = ppage then ctx.cur_fetch_arr
      else begin
        let arr =
          match Hashtbl.find_opt ctx.decode_cache ppage with
          | Some arr -> arr
          | None ->
            let arr = Array.make page_size None in
            Hashtbl.add ctx.decode_cache ppage arr;
            code_bit_set ctx ppage;
            arr
        in
        ctx.cur_fetch_page <- ppage;
        ctx.cur_fetch_arr <- arr;
        arr
      end
    in
    match Array.unsafe_get arr (pa land page_mask) with
    | Some d when d.Uop.addr = va -> d
    | _ ->
      let d = decode_at ctx va in
      (* never cache an instruction that straddles a page: its tail bytes
         live on a page whose invalidation would not reach this entry *)
      if (va + d.Uop.length - 1) lsr page_shift <> va lsr page_shift then d
      else begin
        arr.(pa land page_mask) <- Some d;
        code_bit_set ctx ppage;
        d
      end

  (* ------------- execution ---------------------------------------------- *)

  let operand ctx = function
    | Uop.Reg r -> ctx.cpu.Cpu.regs.(r)
    | Uop.Imm v -> v land 0xFFFF_FFFF

  let undef ~iaddr =
    raise
      (Guest_fault
         { vector = Exn.Undefined; cause = Exn.Cause.undefined; far = None; return_addr = iaddr })

  let exec_uop ctx (d : Uop.decoded) uop =
    let cpu = ctx.cpu in
    match uop with
    | Uop.Nop -> ()
    | Uop.Alu { op; rd; rn; rm; set_flags } ->
      let a = operand ctx rn in
      let b = operand ctx rm in
      if set_flags then begin
        let result, n, z, c, v = Alu_eval.eval_flags op a b in
        cpu.Cpu.flag_n <- n;
        cpu.Cpu.flag_z <- z;
        cpu.Cpu.flag_c <- c;
        cpu.Cpu.flag_v <- v;
        match rd with Some rd -> cpu.Cpu.regs.(rd) <- result | None -> ()
      end
      else begin
        match rd with
        | Some rd -> cpu.Cpu.regs.(rd) <- Alu_eval.eval op a b
        | None -> ignore (Alu_eval.eval op a b)
      end
    | Uop.Load { width; rd; base; offset; user } ->
      Perf.incr ctx.perf Perf.Loads;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ~va ~kind:Sb_mmu.Access.Read ~priv ~iaddr:d.Uop.addr in
      cpu.Cpu.regs.(rd) <- read_phys ctx ~iaddr:d.Uop.addr ~va width pa
    | Uop.Store { width; rs; base; offset; user } ->
      Perf.incr ctx.perf Perf.Stores;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ~va ~kind:Sb_mmu.Access.Write ~priv ~iaddr:d.Uop.addr in
      write_phys ctx ~iaddr:d.Uop.addr ~va width pa cpu.Cpu.regs.(rs)
    | Uop.Branch { cond; target; link } ->
      (match target with
      | Uop.Direct _ -> Perf.incr ctx.perf Perf.Branch_direct
      | Uop.Indirect _ -> Perf.incr ctx.perf Perf.Branch_indirect);
      let taken =
        Uop.eval_cond cond ~n:cpu.Cpu.flag_n ~z:cpu.Cpu.flag_z ~c:cpu.Cpu.flag_c
          ~v:cpu.Cpu.flag_v
      in
      if taken then begin
        Perf.incr ctx.perf Perf.Branch_taken;
        let return_addr = d.Uop.addr + d.Uop.length in
        (match link with
        | Some l -> cpu.Cpu.regs.(l) <- return_addr land 0xFFFF_FFFF
        | None -> ());
        match target with
        | Uop.Direct t -> cpu.Cpu.pc <- t
        | Uop.Indirect r -> cpu.Cpu.pc <- cpu.Cpu.regs.(r)
      end
    | Uop.Svc _ ->
      raise
        (Guest_fault
           {
             vector = Exn.Syscall;
             cause = Exn.Cause.syscall;
             far = None;
             return_addr = d.Uop.addr + d.Uop.length;
           })
    | Uop.Undef ->
      (* undefined instructions trap to the hypervisor before being
         reflected back into the guest *)
      vm_exit ctx 3;
      undef ~iaddr:d.Uop.addr
    | Uop.Eret -> Exn.eret cpu
    | Uop.Cop_read { rd; creg } -> (
      match Cop.read cpu ~creg with
      | Ok v ->
        Perf.incr ctx.perf Perf.Cop_reads;
        cpu.Cpu.regs.(rd) <- v
      | Error `Undefined ->
        vm_exit ctx 3;
        undef ~iaddr:d.Uop.addr)
    | Uop.Cop_write { creg; src } -> (
      match Cop.write cpu ~creg ~value:(operand ctx src) with
      | Ok Cop.No_effect -> Perf.incr ctx.perf Perf.Cop_writes
      | Ok Cop.Translation_changed ->
        Perf.incr ctx.perf Perf.Cop_writes;
        flush_translation ctx
      | Ok Cop.Asid_changed ->
        (* tagged hardware TLB: no flush on address-space switch *)
        Perf.incr ctx.perf Perf.Cop_writes
      | Error `Undefined ->
        vm_exit ctx 3;
        undef ~iaddr:d.Uop.addr)
    | Uop.Tlb_inv_page r ->
      Perf.incr ctx.perf Perf.Tlb_inv_page_ops;
      let vpn = cpu.Cpu.regs.(r) lsr page_shift in
      ctx.host_tlb.(slot_index ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid)) <- 0
    | Uop.Tlb_inv_all ->
      Perf.incr ctx.perf Perf.Tlb_flush_ops;
      flush_translation ctx
    | Uop.Wfi -> (
      vm_exit ctx 4;
      match Runner.wait_for_interrupt ctx.machine ~perf:ctx.perf with
      | `Wake -> ()
      | `Deadlock -> raise (Stop Run_result.Wfi_deadlock))
    | Uop.Halt -> raise (Stop Run_result.Halted)

  let exec_insn ctx (d : Uop.decoded) =
    ctx.cpu.Cpu.pc <- (d.Uop.addr + d.Uop.length) land 0xFFFF_FFFF;
    List.iter (exec_uop ctx d) d.Uop.uops;
    Perf.incr ctx.perf Perf.Insns;
    Perf.add ctx.perf Perf.Uops (List.length d.Uop.uops)

  let deliver ctx (vector, cause, far, return_addr) =
    Perf.incr ctx.perf Perf.Exceptions_total;
    (match vector with
    | Exn.Data_abort -> Perf.incr ctx.perf Perf.Data_abort
    | Exn.Prefetch_abort -> Perf.incr ctx.perf Perf.Prefetch_abort
    | Exn.Undefined -> Perf.incr ctx.perf Perf.Undef_insn
    | Exn.Syscall -> Perf.incr ctx.perf Perf.Svc_taken
    | Exn.Irq -> Perf.incr ctx.perf Perf.Irq_taken
    | Exn.Reset -> ());
    Exn.enter ctx.cpu vector ~return_addr ?far ~cause ()

  let flush_timer ctx =
    if ctx.timer_backlog > 0 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  (* Leaving at a switch point: flush batched timer ticks so the snapshot
     sees the timer state a cold run would at this instruction. *)
  let switch_stop ctx =
    flush_timer ctx;
    raise (Stop Run_result.Switch_point)

  (* Phase boundary: flush batched device time so timer state is a pure
     function of retired instructions at every phase edge (see interp). *)
  let phase_sync ctx benchdev =
    flush_timer ctx;
    Sb_mem.Benchdev.clear_sync benchdev;
    if Sb_mem.Benchdev.stop_pending benchdev then switch_stop ctx

  let execute ctx ~max_insns =
    let steps = ref 0 in
    let benchdev = ctx.machine.Machine.benchdev in
    try
      while !steps < max_insns do
        if Sb_mem.Benchdev.sync_pending benchdev then phase_sync ctx benchdev;
        if Machine.irq_pending ctx.machine then begin
          (* interrupt injection goes through the virtualization layer *)
          vm_exit ctx 5;
          deliver ctx (Exn.Irq, Exn.Cause.irq, None, ctx.cpu.Cpu.pc)
        end
        else begin
          (try exec_insn ctx (fetch_decode ctx ctx.cpu.Cpu.pc)
           with Guest_fault { vector; cause; far; return_addr } ->
             deliver ctx (vector, cause, far, return_addr));
          incr steps;
          ctx.timer_backlog <- ctx.timer_backlog + 1;
          if ctx.timer_backlog >= 64 then begin
            Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
            ctx.timer_backlog <- 0
          end
        end
      done;
      Run_result.Insn_limit
    with Stop reason -> reason

  (* Any run exit flushes the batched ticks, so snapshots taken between
     runs carry complete device time (see interp). *)
  let execute ctx ~max_insns =
    let stop = execute ctx ~max_insns in
    flush_timer ctx;
    stop

  (* Keep the last run's host TLB and decode cache when the machine is
     unchanged ([(machine, state_gen)] match): stepping under a debugger
     stays warm, while external state changes force a rebuild. *)
  let session : (Machine.t * int * ctx) option ref = ref None

  let ctx_for machine =
    match !session with
    | Some (m, gen, ctx)
      when m == machine && gen = machine.Machine.state_gen ->
      (* the ctx owns its counter array; a new run starts it from zero *)
      Perf.reset ctx.perf;
      ctx
    | _ ->
      let ctx = make_ctx machine (Perf.create ()) in
      session := Some (machine, machine.Machine.state_gen, ctx);
      ctx

  let run ?max_insns machine =
    let max_insns =
      match max_insns with Some n -> n | None -> !Runner.insn_budget
    in
    let ctx = ctx_for machine in
    Runner.wrap ~name ~machine ~perf:ctx.perf
      ~execute:(fun () -> execute ctx ~max_insns)
end

module Make_virt (A : Arch_sig.ARCH) =
  Make_configured
    (A)
    (struct
      let config = Config.virt
    end)

module Make_native (A : Arch_sig.ARCH) =
  Make_configured
    (A)
    (struct
      let config = Config.native
    end)
