type counter =
  | Insns
  | Uops
  | Branch_direct
  | Branch_indirect
  | Branch_taken
  | Branch_cross_direct
  | Branch_cross_indirect
  | Loads
  | Stores
  | User_accesses
  | Data_abort
  | Prefetch_abort
  | Undef_insn
  | Svc_taken
  | Irq_taken
  | Io_reads
  | Io_writes
  | Cop_reads
  | Cop_writes
  | Tlb_hit
  | Tlb_miss
  | Tlb_inv_page_ops
  | Tlb_flush_ops
  | Mmu_walks
  | Walk_levels
  | Blocks_translated
  | Block_lookups
  | Chain_follows
  | Smc_invalidations
  | Decodes
  | Opt_passes_run
  | Vm_exits
  | Wfi_waits
  | Exceptions_total
  | Front_cache_hits
  | Traces_formed
  | Trace_dispatches
  | Trace_side_exits
  | Trace_invalidations
  | Tlb_fast_hits
  | Spills
  | Opstream_bytes
[@@deriving enum, show { with_path = false }]

let all =
  List.init (max_counter + 1) (fun i ->
      match counter_of_enum i with
      | Some c -> c
      | None -> assert false)

let to_string = show_counter

type t = int array

let size = max_counter + 1

let create () = Array.make size 0
let copy = Array.copy
let reset t = Array.fill t 0 size 0

let get t c = t.(counter_to_enum c)
let incr t c = t.(counter_to_enum c) <- t.(counter_to_enum c) + 1
let add t c n = t.(counter_to_enum c) <- t.(counter_to_enum c) + n

let diff ~after ~before = Array.init size (fun i -> after.(i) - before.(i))

let to_alist t =
  List.filter_map
    (fun c ->
      let v = get t c in
      if v = 0 then None else Some (c, v))
    all

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (c, v) -> Format.fprintf ppf "%s=%d" (to_string c) v)
    ppf (to_alist t)
