(** Serializable unified architectural-state snapshot.

    One canonical state type every engine can save and restore: CPU
    registers/flags/PC, coprocessor (MMU) registers, sparse digest-tagged
    physical memory, and the platform device set including the benchmark
    device's phase.  Engine-private caches (decode caches, DBT block caches
    and traces, micro-TLBs, software TLBs) are deliberately absent — they
    are derived state, rebuilt lazily by whichever engine resumes the
    snapshot ({!Machine.touch} invalidation makes that safe).

    The snapshot type is a plain immutable structure with no closures, so
    [Marshal] round-trips it; {!Sb_jobs.Cache} stores it on disk as the
    checkpoint format. *)

val schema_version : int
(** Bump when the snapshot layout changes; folded into checkpoint cache
    keys so stale checkpoint files miss instead of mis-restoring. *)

val page_size : int

type cpu_state = {
  s_regs : int array;
  s_pc : int;
  s_kernel_mode : bool;
  s_irq_enabled : bool;
  s_flag_n : bool;
  s_flag_z : bool;
  s_flag_c : bool;
  s_flag_v : bool;
  s_cop : int array;
}

type device_state = {
  s_uart : Sb_mem.Uart.state;
  s_intc : Sb_mem.Intc.state;
  s_timer : Sb_mem.Timer.state;
  s_devid : Sb_mem.Devid.state;
  s_bench : Sb_mem.Benchdev.state;
  s_dev_accesses : int;
      (** Bus device-access ordinal — architectural for {!Sb_fault}'s
          deterministic injection, so resumed runs fault the same Nth
          access a cold run would. *)
}

type t = {
  s_schema : int;
  s_ram_size : int;
  s_cpu : cpu_state;
  s_pages : (int * string) list;
      (** Non-zero 4 KiB pages as [(page index, raw bytes)]; zero pages
          are implied by [s_ram_size]. *)
  s_mem_digest : string;  (** digest over [s_ram_size] and [s_pages] *)
  s_devices : device_state;
  s_insns : int;  (** instructions retired before the snapshot *)
  s_insns_into_kernel : int;
      (** of those, how many ran after the kernel-start phase write — a
          resumed run adds this to its measured kernel count so
          checkpointed [kernel_insns] equal a cold run's *)
}

exception Corrupt of string
(** Raised by {!restore} when the snapshot fails validation (schema or
    RAM-size mismatch, out-of-range or short pages, memory-digest
    mismatch). *)

val save : ?insns:int -> ?insns_into_kernel:int -> Machine.t -> t
(** Capture the machine's complete architectural state.  The machine is
    not modified.  [insns]/[insns_into_kernel] record the producing run's
    progress (see {!t}). *)

val validate : t -> unit
(** Raises {!Corrupt} if the snapshot is internally inconsistent (bad
    schema, out-of-range or short pages, memory-digest mismatch). *)

val restore : ?validated:bool -> t -> Machine.t -> unit
(** Overwrite the machine's architectural state with the snapshot's and
    bump {!Machine.val-touch} so engines rebuild cached translation state.
    The machine must have the same RAM size.  Raises {!Corrupt} on
    validation failure; the machine is untouched in that case.

    [validated] (default [false]) skips the {!validate} pass — for callers
    like the checkpoint store that validate a snapshot once at load and
    then restore it many times; re-hashing every page per restore would
    cost more than the setup simulation the restore replaces. *)

val insns : t -> int
val insns_into_kernel : t -> int

val digest : t -> string
(** Identity digest of the full snapshot: equal machine states produce
    equal digests.  Used by the verify snapshot-diff and the checkpoint
    smoke test. *)

val pp_summary : Format.formatter -> t -> unit
