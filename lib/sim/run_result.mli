(** The outcome of one engine run. *)

type stop_reason =
  | Halted            (** guest executed HALT *)
  | Insn_limit        (** [max_insns] reached *)
  | Wfi_deadlock      (** WFI with no interrupt source able to fire *)
  | Switch_point      (** stopped at an armed benchdev phase switch point;
                          the machine is resumable (snapshot/engine switch) *)

type t = {
  engine : string;
  stop : stop_reason;
  wall_seconds : float;          (** whole run, including setup/cleanup *)
  kernel_seconds : float option; (** timed kernel phase, when signalled *)
  perf : Perf.t;                 (** whole-run counters *)
  kernel_perf : Perf.t option;   (** counters for the kernel phase only *)
  exit_code : int;
  uart_output : string;
  tested_ops : int;              (** guest-reported OPCOUNT total *)
  insns_into_kernel : int option;
      (** When the run ended with the benchmark still in its kernel phase
          (e.g. at a switch point just past the kernel-start write): the
          number of instructions retired since kernel start.  A resumed run
          adds this to its own kernel count so checkpointed [kernel_insns]
          match a cold run exactly. *)
}

val insns : t -> int
val kernel_insns : t -> int option

val pp_stop : Format.formatter -> stop_reason -> unit
val pp_summary : Format.formatter -> t -> unit
