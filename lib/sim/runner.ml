let default_max_insns = 2_000_000_000

(* Process-wide instruction-budget watchdog: engines resolve their
   [?max_insns] default through this, so the harness can bound every cell
   of a run without threading an argument through each figure driver.
   Forked pool workers inherit the parent's setting. *)
let insn_budget = ref default_max_insns

let set_insn_budget n =
  if n <= 0 then invalid_arg "Runner.set_insn_budget: budget must be positive";
  insn_budget := n

let now () = Unix.gettimeofday ()

let wrap ~name ~machine ~perf ~execute =
  let kernel_start = ref None in
  let kernel_perf = ref None in
  let benchdev = machine.Machine.benchdev in
  (* A run resumed from a snapshot taken mid-kernel starts with the phase
     already Kernel and no timestamp: open the kernel window at run start so
     both the perf diff and kernel_seconds cover exactly this run's share. *)
  if Sb_mem.Benchdev.phase benchdev = Sb_mem.Benchdev.Kernel then begin
    kernel_start := Some (Perf.copy perf);
    Sb_mem.Benchdev.mark_kernel_start benchdev
  end;
  Sb_mem.Benchdev.set_on_phase benchdev (fun phase ->
      match phase with
      | Sb_mem.Benchdev.Kernel -> kernel_start := Some (Perf.copy perf)
      | Sb_mem.Benchdev.Cleanup -> (
        match !kernel_start with
        | Some before -> kernel_perf := Some (Perf.diff ~after:perf ~before)
        | None -> ())
      | Sb_mem.Benchdev.Setup -> ());
  let t0 = now () in
  let stop = execute () in
  let wall_seconds = now () -. t0 in
  Sb_mem.Benchdev.set_on_phase benchdev ignore;
  let insns_into_kernel =
    if Sb_mem.Benchdev.phase benchdev = Sb_mem.Benchdev.Kernel then
      Option.map
        (fun before -> Perf.get perf Perf.Insns - Perf.get before Perf.Insns)
        !kernel_start
    else None
  in
  {
    Run_result.engine = name;
    stop;
    wall_seconds;
    kernel_seconds = Sb_mem.Benchdev.kernel_seconds benchdev;
    (* engines keep (and reset) their live counter array across runs on
       the same machine, so the result gets its own copy — results held
       across runs must not see later runs' counts *)
    perf = Perf.copy perf;
    kernel_perf = !kernel_perf;
    exit_code =
      (match Sb_mem.Benchdev.exit_code benchdev with
      | Some code -> code
      | None -> 0);
    uart_output = Sb_mem.Uart.contents machine.Machine.uart;
    tested_ops = Sb_mem.Benchdev.op_count benchdev;
    insns_into_kernel;
  }

let wait_for_interrupt machine ~perf =
  Perf.incr perf Perf.Wfi_waits;
  let intc = machine.Machine.intc in
  let timer = machine.Machine.timer in
  let budget = ref 10_000_000 in
  let rec loop () =
    if Sb_mem.Intc.pending intc land Sb_mem.Intc.enabled intc <> 0 then `Wake
    else if !budget <= 0 then `Deadlock
    else begin
      Sb_mem.Timer.advance timer 1024;
      budget := !budget - 1024;
      loop ()
    end
  in
  loop ()
