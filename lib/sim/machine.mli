(** A complete guest machine: CPU, RAM, bus, and the SBP reference platform
    device set.  Engines execute against this; the harness owns it. *)

(** Fixed device window bases of the "sbp-ref" platform.  Platform support
    packages may relocate devices by building a custom machine; these are the
    defaults. *)
module Map : sig
  val uart_base : int
  val timer_base : int
  val intc_base : int
  val devid_base : int
  val bench_base : int
  val window_size : int
end

type t = {
  bus : Sb_mem.Bus.t;
  cpu : Cpu.t;
  uart : Sb_mem.Uart.t;
  intc : Sb_mem.Intc.t;
  timer : Sb_mem.Timer.t;
  devid : Sb_mem.Devid.t;
  benchdev : Sb_mem.Benchdev.t;
  ram_size : int;
  mutable state_gen : int;
      (** Bumped whenever machine state changes behind the engines' backs
          ({!load_program}, {!reset}, snapshot restore, or an explicit
          {!touch}).  Engines key cached translation state on
          [(machine, state_gen)] so stale caches are rebuilt lazily. *)
}

val create : ?ram_size:int -> ?now:(unit -> float) -> unit -> t
(** Default RAM size is 32 MiB.  [now] is the wall clock used to timestamp
    benchmark phases (defaults to the OS monotonic-ish clock the harness
    injects; tests can pass a fake). *)

val load_program : t -> Sb_asm.Program.t -> unit
(** Copy the image into physical RAM at its base and point the CPU entry at
    the program entry (physical = virtual at reset, MMU disabled). *)

val reset : t -> unit
(** Reset CPU and device state, leaving RAM contents intact. *)

val irq_pending : t -> bool
(** True when the interrupt controller asserts and the CPU has IRQs
    enabled. *)

val touch : t -> unit
(** Invalidate engine-cached state derived from this machine (bump
    {!field-state_gen}).  Call after mutating RAM or CPU state directly,
    outside an engine run. *)
