(** Shared engine plumbing: wall-clock measurement, kernel-phase perf
    snapshots, WFI waiting, result assembly.  Engines implement only their
    execution loop and delegate the rest here. *)

val default_max_insns : int

val insn_budget : int ref
(** Process-wide watchdog budget: the value engines use when [?max_insns]
    is not passed explicitly.  Defaults to {!default_max_insns}.  The
    bench harness lowers it ([bench --insn-budget N]) so a runaway cell —
    an engine bug that turns a bounded kernel into an unbounded spin —
    stops with [Insn_limit] (surfacing as a failed cell) instead of
    burning hours.  Forked pool workers inherit the parent's setting. *)

val set_insn_budget : int -> unit
(** Set {!insn_budget}; raises [Invalid_argument] on a non-positive
    budget. *)

val wrap :
  name:string ->
  machine:Machine.t ->
  perf:Perf.t ->
  execute:(unit -> Run_result.stop_reason) ->
  Run_result.t
(** Runs [execute] with phase-snapshot callbacks installed on the machine's
    bench device, and assembles the {!Run_result.t}. *)

val wait_for_interrupt : Machine.t -> perf:Perf.t -> [ `Wake | `Deadlock ]
(** Architectural WFI: advance the timer until the interrupt controller has
    an enabled line pending (wake even if the CPU masks IRQs, as real WFI
    does).  Returns [`Deadlock] when no interrupt source can ever fire. *)
