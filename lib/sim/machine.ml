module Map = struct
  let uart_base = 0xF000_0000
  let timer_base = 0xF001_0000
  let intc_base = 0xF002_0000
  let devid_base = 0xF003_0000
  let bench_base = 0xF004_0000
  let window_size = 0x1000
end

type t = {
  bus : Sb_mem.Bus.t;
  cpu : Cpu.t;
  uart : Sb_mem.Uart.t;
  intc : Sb_mem.Intc.t;
  timer : Sb_mem.Timer.t;
  devid : Sb_mem.Devid.t;
  benchdev : Sb_mem.Benchdev.t;
  ram_size : int;
  mutable state_gen : int;
}

let default_ram_size = 32 * 1024 * 1024

let create ?(ram_size = default_ram_size) ?now () =
  let ram = Sb_mem.Phys_mem.create ~size:ram_size in
  let uart = Sb_mem.Uart.create () in
  let intc = Sb_mem.Intc.create () in
  let timer =
    Sb_mem.Timer.create ~on_fire:(fun () ->
        Sb_mem.Intc.raise_line intc Sb_mem.Intc.timer_line)
  in
  let devid = Sb_mem.Devid.create () in
  let benchdev =
    match now with
    | Some now -> Sb_mem.Benchdev.create ~now ()
    | None -> Sb_mem.Benchdev.create ()
  in
  let bus =
    Sb_mem.Bus.create ~ram
      [
        (Map.uart_base, Map.window_size, Sb_mem.Uart.device uart);
        (Map.timer_base, Map.window_size, Sb_mem.Timer.device timer);
        (Map.intc_base, Map.window_size, Sb_mem.Intc.device intc);
        (Map.devid_base, Map.window_size, Sb_mem.Devid.device devid);
        (Map.bench_base, Map.window_size, Sb_mem.Benchdev.device benchdev);
      ]
  in
  {
    bus;
    cpu = Cpu.create ();
    uart;
    intc;
    timer;
    devid;
    benchdev;
    ram_size;
    state_gen = 0;
  }

let touch t = t.state_gen <- t.state_gen + 1

let load_program t (program : Sb_asm.Program.t) =
  Sb_mem.Phys_mem.load (Sb_mem.Bus.ram t.bus) ~addr:program.base program.image;
  t.cpu.Cpu.pc <- program.entry;
  touch t

let reset t =
  Cpu.reset t.cpu;
  Sb_mem.Uart.reset t.uart;
  Sb_mem.Intc.reset t.intc;
  Sb_mem.Timer.reset t.timer;
  Sb_mem.Devid.reset t.devid;
  Sb_mem.Benchdev.reset t.benchdev;
  touch t

let irq_pending t = t.cpu.Cpu.irq_enabled && Sb_mem.Intc.asserted t.intc
