(** Guest debugger: single-stepping, breakpoints and state inspection on top
    of any engine.

    Stepping drives the engine one instruction at a time
    ([run ~max_insns:1]).  Engines keep their translation caches across
    steps (they are keyed on the machine's state generation and only
    rebuilt when the machine changes behind the engine's back), so
    stepping is cheap while staying architecturally exact on every engine.
    Disassembly reads guest memory physically, which matches the
    identity-mapped layout the SimBench runtime sets up. *)

type t

type stop =
  | Stepped          (** executed the requested instructions *)
  | Breakpoint of int
  | Halted
  | Deadlocked

val create :
  engine:Engine.t -> arch:(module Sb_isa.Arch_sig.ARCH) -> Machine.t -> t

val add_breakpoint : t -> int -> unit
val remove_breakpoint : t -> int -> unit
val breakpoints : t -> int list

val step : ?n:int -> t -> stop
(** Execute up to [n] (default 1) instructions, stopping early at a
    breakpoint or halt. *)

val continue_ : ?max_insns:int -> t -> stop
(** Run until a breakpoint, halt, or the safety limit (default 1M). *)

val pc : t -> int
val instructions_retired : t -> int

val disassemble_here : ?count:int -> t -> string
(** Disassembly starting at the current PC (default 8 instructions). *)

val dump_registers : t -> string

val snapshot : t -> Snapshot.t
(** Capture the debuggee's architectural state (the retired-instruction
    count rides along in the snapshot). *)

val restore : t -> Snapshot.t -> unit
(** Rewind/fast-forward the debuggee to a previously captured snapshot.
    Engine caches are invalidated via the machine's state generation and
    rebuilt lazily on the next step.  Raises {!Snapshot.Corrupt} if the
    snapshot fails validation. *)
