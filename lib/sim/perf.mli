(** Performance counters maintained by every engine.

    These counters are the instrumentation behind the paper's "operation
    density" metric (Figure 3): the harness snapshots them at kernel-phase
    boundaries and divides tested-operation counts by retired instructions. *)

type counter =
  | Insns              (** instructions retired *)
  | Uops               (** micro-ops executed *)
  | Branch_direct
  | Branch_indirect
  | Branch_taken
  | Branch_cross_direct
      (** taken direct branches whose target lies on another page
          (maintained by the fast interpreter only; used for the operation
          density analysis) *)
  | Branch_cross_indirect
  | Loads
  | Stores
  | User_accesses      (** non-privileged (LDRT/STRT) accesses *)
  | Data_abort
  | Prefetch_abort
  | Undef_insn
  | Svc_taken
  | Irq_taken
  | Io_reads
  | Io_writes
  | Cop_reads
  | Cop_writes
  | Tlb_hit
  | Tlb_miss
  | Tlb_inv_page_ops
  | Tlb_flush_ops
  | Mmu_walks
  | Walk_levels        (** page-table loads performed by walks *)
  | Blocks_translated
  | Block_lookups
  | Chain_follows
  | Smc_invalidations
  | Decodes
  | Opt_passes_run
  | Vm_exits
  | Wfi_waits
  | Exceptions_total
  | Front_cache_hits
      (** dispatch-front-cache hits: the DBT's direct-mapped virtual-PC
          block cache (tb_jmp_cache analog) and the interpreter's
          predecoded-page fetch cache *)
  | Traces_formed      (** hot-trace superblocks stitched by the DBT *)
  | Trace_dispatches   (** executions entered through a trace *)
  | Trace_side_exits
      (** trace executions that left before the final segment (conditional
          seam went the other way, or the trace was invalidated mid-run) *)
  | Trace_invalidations
      (** traces discarded by SMC writes, TLB maintenance or translation
          changes *)
  | Tlb_fast_hits
      (** guest memory accesses and code fetches served entirely by the
          threaded backend's (va -> host offset) micro-TLB fast path *)
  | Spills
      (** cached-register spill events in the threaded backend (side exits,
          segment seams, pre-fault synchronisation) *)
  | Opstream_bytes
      (** bytes of token-threaded opstream emitted (translation-unit code
          size; the closure backend reports nothing here) *)

val all : counter list
val to_string : counter -> string

type t

val create : unit -> t
val copy : t -> t
val reset : t -> unit

val get : t -> counter -> int
val incr : t -> counter -> unit
val add : t -> counter -> int -> unit

val diff : after:t -> before:t -> t
(** Per-counter subtraction: the counters accumulated between two snapshots. *)

val to_alist : t -> (counter * int) list
(** Non-zero counters only, in declaration order. *)

val pp : Format.formatter -> t -> unit
