(* Unified architectural-state snapshot.

   Everything an engine needs to resume a guest lives in [Machine.t]: the
   CPU register file, physical RAM, and the platform devices.  Engine
   internals (decode caches, block caches, traces, micro-TLBs, software
   TLBs) are *derived* state — every engine rebuilds them from the machine
   on demand — so a snapshot that captures the machine alone is complete
   and engine-portable: save under interp, restore under detailed.

   Memory is stored sparsely (zero pages omitted) and the sparse image is
   digest-tagged; [restore] refuses a snapshot whose pages no longer match
   the digest, which is what turns a corrupt checkpoint file into a clean
   load error instead of a wrong simulation. *)

let schema_version = 1
let page_size = 4096

type cpu_state = {
  s_regs : int array;
  s_pc : int;
  s_kernel_mode : bool;
  s_irq_enabled : bool;
  s_flag_n : bool;
  s_flag_z : bool;
  s_flag_c : bool;
  s_flag_v : bool;
  s_cop : int array;
}

type device_state = {
  s_uart : Sb_mem.Uart.state;
  s_intc : Sb_mem.Intc.state;
  s_timer : Sb_mem.Timer.state;
  s_devid : Sb_mem.Devid.state;
  s_bench : Sb_mem.Benchdev.state;
  s_dev_accesses : int;
}

type t = {
  s_schema : int;
  s_ram_size : int;
  s_cpu : cpu_state;
  s_pages : (int * string) list;
  s_mem_digest : string;
  s_devices : device_state;
  s_insns : int;
  s_insns_into_kernel : int;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let digest_pages ~ram_size pages =
  let buf = Buffer.create (List.length pages * 24 + 32) in
  Buffer.add_string buf (string_of_int ram_size);
  List.iter
    (fun (idx, data) ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int idx);
      Buffer.add_string buf (Digest.string data))
    pages;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let page_is_zero bytes =
  let n = Bytes.length bytes in
  let rec loop i =
    i >= n || (Bytes.unsafe_get bytes i = '\000' && loop (i + 1))
  in
  loop 0

let save ?(insns = 0) ?(insns_into_kernel = 0) (m : Machine.t) =
  let cpu = m.Machine.cpu in
  let s_cpu =
    {
      s_regs = Array.copy cpu.Cpu.regs;
      s_pc = cpu.Cpu.pc;
      s_kernel_mode = cpu.Cpu.mode = Sb_mmu.Access.Kernel;
      s_irq_enabled = cpu.Cpu.irq_enabled;
      s_flag_n = cpu.Cpu.flag_n;
      s_flag_z = cpu.Cpu.flag_z;
      s_flag_c = cpu.Cpu.flag_c;
      s_flag_v = cpu.Cpu.flag_v;
      s_cop = Array.copy cpu.Cpu.cop;
    }
  in
  let ram = Sb_mem.Bus.ram m.Machine.bus in
  let npages = (m.Machine.ram_size + page_size - 1) / page_size in
  let pages = ref [] in
  for idx = npages - 1 downto 0 do
    let addr = idx * page_size in
    let len = min page_size (m.Machine.ram_size - addr) in
    let bytes = Sb_mem.Phys_mem.blit_out ram ~addr ~len in
    if not (page_is_zero bytes) then
      pages := (idx, Bytes.to_string bytes) :: !pages
  done;
  let pages = !pages in
  let s_devices =
    {
      s_uart = Sb_mem.Uart.state m.Machine.uart;
      s_intc = Sb_mem.Intc.state m.Machine.intc;
      s_timer = Sb_mem.Timer.state m.Machine.timer;
      s_devid = Sb_mem.Devid.state m.Machine.devid;
      s_bench = Sb_mem.Benchdev.state m.Machine.benchdev;
      s_dev_accesses = Sb_mem.Bus.device_accesses m.Machine.bus;
    }
  in
  {
    s_schema = schema_version;
    s_ram_size = m.Machine.ram_size;
    s_cpu;
    s_pages = pages;
    s_mem_digest = digest_pages ~ram_size:m.Machine.ram_size pages;
    s_devices;
    s_insns = insns;
    s_insns_into_kernel = insns_into_kernel;
  }

let validate t =
  if t.s_schema <> schema_version then
    corrupt "snapshot schema %d, expected %d" t.s_schema schema_version;
  if Array.length t.s_cpu.s_regs <> 16 then
    corrupt "snapshot register file has %d entries"
      (Array.length t.s_cpu.s_regs);
  let npages = (t.s_ram_size + page_size - 1) / page_size in
  List.iter
    (fun (idx, data) ->
      if idx < 0 || idx >= npages then
        corrupt "snapshot page %d outside RAM of %d bytes" idx t.s_ram_size;
      let expect = min page_size (t.s_ram_size - (idx * page_size)) in
      if String.length data <> expect then
        corrupt "snapshot page %d has %d bytes, expected %d" idx
          (String.length data) expect)
    t.s_pages;
  let digest = digest_pages ~ram_size:t.s_ram_size t.s_pages in
  if not (String.equal digest t.s_mem_digest) then
    corrupt "memory digest mismatch: snapshot says %s, pages hash to %s"
      t.s_mem_digest digest

let restore ?(validated = false) t (m : Machine.t) =
  if m.Machine.ram_size <> t.s_ram_size then
    corrupt "snapshot RAM is %d bytes, machine has %d" t.s_ram_size
      m.Machine.ram_size;
  (* [validated] skips re-hashing every page: the checkpoint store
     validates a snapshot once when it enters the process and then reuses
     it for many restores — per-restore validation would dominate the
     warm path it exists to accelerate *)
  if not validated then validate t;
  let cpu = m.Machine.cpu in
  Array.blit t.s_cpu.s_regs 0 cpu.Cpu.regs 0 (Array.length cpu.Cpu.regs);
  cpu.Cpu.pc <- t.s_cpu.s_pc;
  cpu.Cpu.mode <-
    (if t.s_cpu.s_kernel_mode then Sb_mmu.Access.Kernel
     else Sb_mmu.Access.User);
  cpu.Cpu.irq_enabled <- t.s_cpu.s_irq_enabled;
  cpu.Cpu.flag_n <- t.s_cpu.s_flag_n;
  cpu.Cpu.flag_z <- t.s_cpu.s_flag_z;
  cpu.Cpu.flag_c <- t.s_cpu.s_flag_c;
  cpu.Cpu.flag_v <- t.s_cpu.s_flag_v;
  Array.blit t.s_cpu.s_cop 0 cpu.Cpu.cop 0
    (min (Array.length t.s_cpu.s_cop) (Array.length cpu.Cpu.cop));
  let ram = Sb_mem.Bus.ram m.Machine.bus in
  Sb_mem.Phys_mem.clear ram;
  List.iter
    (fun (idx, data) ->
      Sb_mem.Phys_mem.load ram ~addr:(idx * page_size)
        (Bytes.of_string data))
    t.s_pages;
  Sb_mem.Uart.restore m.Machine.uart t.s_devices.s_uart;
  Sb_mem.Intc.restore m.Machine.intc t.s_devices.s_intc;
  Sb_mem.Timer.restore m.Machine.timer t.s_devices.s_timer;
  Sb_mem.Devid.restore m.Machine.devid t.s_devices.s_devid;
  Sb_mem.Benchdev.restore m.Machine.benchdev t.s_devices.s_bench;
  Sb_mem.Bus.set_device_accesses m.Machine.bus t.s_devices.s_dev_accesses;
  Machine.touch m

let insns t = t.s_insns
let insns_into_kernel t = t.s_insns_into_kernel

(* Identity digest over the full snapshot value.  Marshal of a snapshot is
   deterministic (immutable structural data, no sharing surprises at these
   sizes), so equal machine states hash equal — the basis of the verify
   snapshot-diff. *)
let digest t = Digest.to_hex (Digest.string (Marshal.to_string t []))

let pp_summary ppf t =
  Format.fprintf ppf
    "snapshot v%d: pc=%a, %d/%d pages resident, %d insns (%d into kernel), mem %s"
    t.s_schema Sb_util.U32.pp t.s_cpu.s_pc
    (List.length t.s_pages)
    ((t.s_ram_size + page_size - 1) / page_size)
    t.s_insns t.s_insns_into_kernel
    (String.sub t.s_mem_digest 0 8)
