type stop_reason = Halted | Insn_limit | Wfi_deadlock | Switch_point

type t = {
  engine : string;
  stop : stop_reason;
  wall_seconds : float;
  kernel_seconds : float option;
  perf : Perf.t;
  kernel_perf : Perf.t option;
  exit_code : int;
  uart_output : string;
  tested_ops : int;
  insns_into_kernel : int option;
}

let insns t = Perf.get t.perf Perf.Insns

let kernel_insns t =
  Option.map (fun p -> Perf.get p Perf.Insns) t.kernel_perf

let pp_stop ppf reason =
  Format.pp_print_string ppf
    (match reason with
    | Halted -> "halted"
    | Insn_limit -> "insn-limit"
    | Wfi_deadlock -> "wfi-deadlock"
    | Switch_point -> "switch-point")

let pp_summary ppf t =
  Format.fprintf ppf "[%s] %a in %.3fs (%d insns%s, exit %d)" t.engine pp_stop
    t.stop t.wall_seconds (insns t)
    (match t.kernel_seconds with
    | Some s -> Printf.sprintf ", kernel %.3fs" s
    | None -> "")
    t.exit_code
