type t = {
  machine : Machine.t;
  engine : Engine.t;
  arch : (module Sb_isa.Arch_sig.ARCH);
  mutable breakpoints : int list;
  mutable retired : int;
}

type stop = Stepped | Breakpoint of int | Halted | Deadlocked

let create ~engine ~arch machine =
  { machine; engine; arch; breakpoints = []; retired = 0 }

let add_breakpoint t addr =
  if not (List.mem addr t.breakpoints) then t.breakpoints <- addr :: t.breakpoints

let remove_breakpoint t addr =
  t.breakpoints <- List.filter (fun a -> a <> addr) t.breakpoints

let breakpoints t = t.breakpoints

let pc t = t.machine.Machine.cpu.Cpu.pc
let instructions_retired t = t.retired

let step_once t =
  let result = Engine.run t.engine ~max_insns:1 t.machine in
  t.retired <- t.retired + Run_result.insns result;
  match result.Run_result.stop with
  | Run_result.Halted -> Some Halted
  | Run_result.Wfi_deadlock -> Some Deadlocked
  | Run_result.Insn_limit | Run_result.Switch_point ->
    if List.mem (pc t) t.breakpoints then Some (Breakpoint (pc t)) else None

let rec run_steps t n =
  if n <= 0 then Stepped
  else
    match step_once t with
    | Some stop -> stop
    | None -> run_steps t (n - 1)

let step ?(n = 1) t = run_steps t n

let continue_ ?(max_insns = 1_000_000) t = run_steps t max_insns

let disassemble_here ?(count = 8) t =
  let bus = t.machine.Machine.bus in
  let read8 a = try Sb_mem.Bus.read8 bus a with Sb_mem.Bus.Fault _ -> 0 in
  let (module A : Sb_isa.Arch_sig.ARCH) = t.arch in
  let len = count * A.max_insn_bytes in
  let lines =
    Sb_isa.Disasm.decode_range ~arch:t.arch ~read8 ~base:(pc t) ~len
  in
  let truncated = List.filteri (fun i _ -> i < count) lines in
  String.concat "\n"
    (List.map (fun l -> Format.asprintf "%a" Sb_isa.Disasm.pp_line l) truncated)

let dump_registers t = Format.asprintf "%a" Cpu.pp t.machine.Machine.cpu

let snapshot t = Snapshot.save ~insns:t.retired t.machine

let restore t snap =
  Snapshot.restore snap t.machine;
  t.retired <- Snapshot.insns snap
