open Pasm

let page_size = 4096
let section_size = 1 lsl Sb_mmu.Pte.section_shift

(* Bench-device register offsets. *)
let phase_off = 0x0
let exit_off = 0x4
let iters_off = 0xC

(* Store a constant to a device register; clobbers v0 and v3. *)
let dev_store ~base ~off value =
  [ Li (v0, base); Li (v3, value); Store (W32, v3, v0, off) ]

(* Write one host-computed page-table word; clobbers v0 and v3. *)
let poke ~addr value = [ Li (v0, addr); Li (v3, value); Store (W32, v3, v0, 0) ]

let build_page_tables (p : Platform.t) =
  let l1 = p.Platform.page_table_base in
  let l1_slot va = l1 + (Sb_mmu.Pte.l1_index va * 4) in
  (* identity sections covering RAM, kernel-only, executable *)
  let ram_sections = (p.Platform.ram_size + section_size - 1) / section_size in
  let ram_entries =
    List.concat
      (List.init ram_sections (fun i ->
           let pa = i * section_size in
           poke ~addr:(l1_slot pa)
             (Sb_mmu.Pte.encode_section ~pa_base:pa ~ap:Sb_mmu.Access.Ap.kernel_only
                ~xn:false)))
  in
  (* one section mapping the device windows, kernel-only, never executable *)
  let device_entry =
    poke
      ~addr:(l1_slot p.Platform.device_section_va)
      (Sb_mmu.Pte.encode_section ~pa_base:p.Platform.device_section_va
         ~ap:Sb_mmu.Access.Ap.kernel_only ~xn:true)
  in
  (* the cold region: page-mapped VA span aliasing the scratch pages, built
     by a guest loop over the L2 tables *)
  let l2 = p.Platform.l2_table_base in
  let pages = p.Platform.cold_region_pages in
  let l2_tables = (pages + 1023) / 1024 in
  let l1_entries_for_cold =
    List.concat
      (List.init l2_tables (fun i ->
           poke
             ~addr:(l1_slot (p.Platform.cold_region_va + (i * section_size)))
             (Sb_mmu.Pte.encode_table ~l2_base:(l2 + (i * page_size)))))
  in
  let first_pa = p.Platform.scratch_base in
  let first_entry =
    Sb_mmu.Pte.encode_page ~pa_base:first_pa ~ap:Sb_mmu.Access.Ap.kernel_only ~xn:true
  in
  let wrap = p.Platform.scratch_pages in
  let cold_fill =
    (* v0 slot pointer, v1 entry value, v2 remaining, v3 wrap counter *)
    [
      Li (v0, l2);
      Li (v1, first_entry);
      Li (v2, pages);
      Li (v3, wrap);
      L "rt_cold_fill";
      Store (W32, v1, v0, 0);
      Alu (Sb_isa.Uop.Add, v0, v0, I 4);
      Alu (Sb_isa.Uop.Add, v1, v1, I page_size);
      Alu (Sb_isa.Uop.Sub, v3, v3, I 1);
      Cmp (v3, I 0);
      Br (Sb_isa.Uop.Ne, "rt_cold_no_wrap");
      Alu (Sb_isa.Uop.Sub, v1, v1, I (wrap * page_size));
      Li (v3, wrap);
      L "rt_cold_no_wrap";
      Alu (Sb_isa.Uop.Sub, v2, v2, I 1);
      Cmp (v2, I 0);
      Br (Sb_isa.Uop.Ne, "rt_cold_fill");
    ]
  in
  (* the user page: its own L2 table, one user-RW entry *)
  let user_l2 = l2 + (l2_tables * page_size) in
  let user_entries =
    poke
      ~addr:(l1_slot p.Platform.user_page_va)
      (Sb_mmu.Pte.encode_table ~l2_base:user_l2)
    @ poke
        ~addr:(user_l2 + (Sb_mmu.Pte.l2_index p.Platform.user_page_va * 4))
        (Sb_mmu.Pte.encode_page ~pa_base:p.Platform.scratch_base
           ~ap:Sb_mmu.Access.Ap.user_full ~xn:true)
  in
  ram_entries @ device_entry @ l1_entries_for_cold @ cold_fill @ user_entries

let enable_irqs =
  [
    Li (v3, 3);
    (* kernel mode, IRQs enabled *)
    Cop_write (Sb_isa.Cregs.spsr, v3);
    La (v3, "rt_irqs_on");
    Cop_write (Sb_isa.Cregs.elr, v3);
    Eret;
    L "rt_irqs_on";
  ]

let wrap_irq_handler body =
  [
    Cop_write (Sb_isa.Cregs.tpidr0, v0);
    Cop_write (Sb_isa.Cregs.tpidr1, v3);
  ]
  @ body
  @ [
      Cop_read (v0, Sb_isa.Cregs.tpidr0);
      Cop_read (v3, Sb_isa.Cregs.tpidr1);
      Eret;
    ]

let vector_order =
  [
    Sb_sim.Exn.Reset;
    Sb_sim.Exn.Undefined;
    Sb_sim.Exn.Syscall;
    Sb_sim.Exn.Prefetch_abort;
    Sb_sim.Exn.Data_abort;
    Sb_sim.Exn.Irq;
  ]

let handler_label vector = "rt_h_" ^ Sb_sim.Exn.vector_name vector

(* Each vector slot carries its own label: slots past the first are entered
   by hardware vectoring (VBAR + offset), not by any static branch, so the
   labels give static analyses a root for every slot. *)
let vector_slot_label vector = "rt_vec_" ^ Sb_sim.Exn.vector_name vector
let vector_slot_labels = List.map vector_slot_label vector_order

let ops ~support ~platform ~bench =
  let p = platform in
  let body = bench.Bench.body ~support ~platform in
  let bench_base = p.Platform.bench_base in
  let handlers =
    List.concat_map
      (fun vector ->
        let code =
          match List.assoc_opt vector body.Bench.handlers with
          | Some code -> code
          | None -> (
            match vector with
            | Sb_sim.Exn.Reset -> [ Jmp "_start" ]
            | _ -> [ Jmp "rt_fail" ])
        in
        (L (handler_label vector) :: code))
      vector_order
  in
  let vectors =
    [ Align 8; L "rt_vectors" ]
    @ List.concat_map
        (fun vector ->
          [ L (vector_slot_label vector); Jmp (handler_label vector); Align 8 ])
        vector_order
  in
  [ L "_start" ]
    (* vectors first so that faults during setup already report cleanly *)
    @ [ La (v0, "rt_vectors"); Cop_write (Sb_isa.Cregs.vbar, v0) ]
    @ [ Li (sp, p.Platform.stack_top) ]
    @ build_page_tables p
    @ [ Li (v0, p.Platform.page_table_base); Cop_write (Sb_isa.Cregs.ttbr, v0) ]
    @ [ Li (v0, 1); Cop_write (Sb_isa.Cregs.sctlr, v0) ]
    @ body.Bench.setup
    @ (if body.Bench.needs_irqs then enable_irqs else [])
    (* fetch the harness-provided iteration count into v4 *)
    @ [ Li (v0, bench_base); Load (W32, v4, v0, iters_off) ]
    @ dev_store ~base:bench_base ~off:phase_off 1
    @ [ L "rt_kloop" ]
    @ body.Bench.kernel
    @ [
        Alu (Sb_isa.Uop.Sub, v4, v4, I 1);
        Cmp (v4, I 0);
        Br (Sb_isa.Uop.Ne, "rt_kloop");
      ]
    @ dev_store ~base:bench_base ~off:phase_off 2
    @ body.Bench.cleanup
    @ dev_store ~base:bench_base ~off:exit_off 0
    @ [ Halt ]
    @ [ L "rt_fail" ]
    @ dev_store ~base:bench_base ~off:exit_off 0xDEAD
    @ [ Halt ]
  @ body.Bench.functions
  @ handlers
  @ vectors

let program ~support ~platform ~bench =
  let (module S : Support.SUPPORT) = support in
  S.assemble ~base:platform.Platform.code_base ~entry:"_start"
    (ops ~support ~platform ~bench)
