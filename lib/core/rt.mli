(** The SimBench bare-metal runtime ("crt0").

    Builds the complete guest program around a benchmark body: exception
    vectors and default handlers, guest-built page tables (identity sections
    for RAM and devices, a large page-mapped region for the memory
    benchmarks, and a user-accessible page), MMU enablement, the
    iteration-count fetch from the bench device, and the three-phase
    structure with phase signalling.  Mirrors the paper's architecture
    support package responsibilities: "bringing the machine out of reset,
    managing the MMU and caches". *)

val program :
  support:Support.t -> platform:Platform.t -> bench:Bench.t -> Sb_asm.Program.t
(** Assemble the full bootable image for one benchmark. *)

val ops :
  support:Support.t -> platform:Platform.t -> bench:Bench.t -> Pasm.op list
(** The full portable-assembly program [program] assembles: runtime plus
    benchmark body.  Exposed so static analyses ({!Sb_analysis}) can inspect
    the exact program that will run. *)

val vector_slot_labels : string list
(** Labels on the exception-vector slots.  Slots are entered by hardware
    vectoring rather than by any static branch, so analyses must treat these
    as extra control-flow roots. *)

val build_page_tables : Platform.t -> Pasm.op list
(** The guest code that constructs the page tables (exposed for tests). *)

val enable_irqs : Pasm.op list
(** ERET trampoline that switches CPU IRQs on while staying in kernel
    mode. *)

val wrap_irq_handler : Pasm.op list -> Pasm.op list
(** Bank [v0] and [v3] into the TPIDR scratch registers around an IRQ
    handler body and append the exception return.  Interrupt handlers must
    use this (or preserve every register themselves): asynchronous
    interrupts can arrive while any register is live. *)
