open Pasm

let add r a b = Alu (Sb_isa.Uop.Add, r, a, b)
let sub r a b = Alu (Sb_isa.Uop.Sub, r, a, b)
let xor r a b = Alu (Sb_isa.Uop.Xor, r, a, b)

let chain_length = 16

(* ------------------------------------------------------------------ *)
(* Code generation                                                      *)
(* ------------------------------------------------------------------ *)

(* A chain of tiny tail-calling functions plus, when some benchmark actually
   loads from it, an address table.  Shared by the Small Blocks benchmark and,
   with page-aligned placement, by the control-flow benchmarks. *)
let chain ?(force_table = false) ~prefix ~own_pages ~indirect () =
  let fn i = Printf.sprintf "%s_fn%d" prefix i in
  let table = prefix ^ "_table" in
  let functions =
    (if own_pages then [] else [ Align 4096 ])
    @ List.concat
        (List.init chain_length (fun i ->
             let placement = if own_pages then [ Align 4096 ] else [] in
             let body =
               if i = chain_length - 1 then
                 if indirect then [ add v1 v1 (I 1); Ret ]
                 else [ add v1 v1 (I 1); Ret ]
               else if indirect then
                 [
                   add v1 v1 (I 1);
                   La (v2, table);
                   Load (W32, v2, v2, 4 * (i + 1));
                   Jmp_reg v2;
                 ]
               else [ add v1 v1 (I 1); Jmp (fn (i + 1)) ]
             in
             placement @ [ L (fn i) ] @ body))
    @
    if indirect || force_table then
      [ Align 4; L table ] @ List.init chain_length (fun i -> Word_sym (fn i))
    else []
  in
  (functions, fn 0, table)

let small_blocks =
  let body ~support:_ ~platform:_ =
    let functions, fn0, table =
      chain ~force_table:true ~prefix:"sb" ~own_pages:false ~indirect:false ()
    in
    {
      Bench.empty_body with
      Bench.kernel =
        [
          (* rewrite the first word of every function to force the simulator
             to regenerate code (also exercises self-modifying-code
             handling), then run the chain *)
          La (v0, table);
          Li (v2, chain_length);
          L "sb_rw";
          Load (W32, v1, v0, 0);
          Load (W32, v3, v1, 0);
          Store (W32, v3, v1, 0);
          add v0 v0 (I 4);
          sub v2 v2 (I 1);
          Cmp (v2, I 0);
          Br (Sb_isa.Uop.Ne, "sb_rw");
          Li (v1, 0);
          Call fn0;
        ];
      functions;
    }
  in
  {
    Bench.name = "Small Blocks";
    category = Category.Code_generation;
    description =
      "many short tail-calling functions; every function's first word is \
       rewritten each iteration to invalidate cached translations";
    default_iters = 100_000;
    ops_per_iter = chain_length;
    platform_specific = false;
    body;
  }

let large_block_insns = 192

let large_blocks =
  let body ~support:_ ~platform:(p : Platform.t) =
    let scratch = p.Platform.scratch_base in
    let ops =
      List.concat
        (List.init (large_block_insns / 2) (fun _ ->
             [ add v1 v1 (R v2); xor v2 v2 (R v1) ]))
    in
    {
      Bench.empty_body with
      Bench.setup = [];
      kernel =
        [
          (* invalidate the block, reload the inputs from volatile cells,
             execute the block, store the results back *)
          La (v0, "lb_block");
          Load (W32, v1, v0, 0);
          Store (W32, v1, v0, 0);
          Li (v0, scratch);
          Load (W32, v1, v0, 0);
          Load (W32, v2, v0, 4);
          Call "lb_block";
          Li (v0, scratch);
          Store (W32, v1, v0, 8);
          Store (W32, v2, v0, 12);
        ];
      functions = [ Align 4096; L "lb_block" ] @ ops @ [ Ret ];
    }
  in
  {
    Bench.name = "Large Blocks";
    category = Category.Code_generation;
    description =
      "one very large basic block whose first word is rewritten before \
       every execution; inputs come from volatile memory cells";
    default_iters = 500_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

(* ------------------------------------------------------------------ *)
(* Control flow                                                         *)
(* ------------------------------------------------------------------ *)

let control_flow ~name ~prefix ~own_pages ~indirect ~default_iters ~description =
  let body ~support:_ ~platform:_ =
    let functions, fn0, table = chain ~prefix ~own_pages ~indirect () in
    let kernel =
      if indirect then
        [ La (v0, table); Load (W32, v0, v0, 0); Li (v1, 0); Call_reg v0 ]
      else [ Li (v1, 0); Call fn0 ]
    in
    { Bench.empty_body with Bench.kernel; functions }
  in
  {
    Bench.name;
    category = Category.Control_flow;
    description;
    default_iters;
    ops_per_iter = chain_length;
    platform_specific = false;
    body;
  }

let inter_page_direct =
  control_flow ~name:"Inter-Page Direct" ~prefix:"ipd" ~own_pages:true
    ~indirect:false ~default_iters:100_000_000
    ~description:"short functions on separate pages, direct tail calls"

let inter_page_indirect =
  control_flow ~name:"Inter-Page Indirect" ~prefix:"ipi" ~own_pages:true
    ~indirect:true ~default_iters:250_000
    ~description:
      "short functions on separate pages, called through hard-to-predict \
       function pointers"

let intra_page_direct =
  control_flow ~name:"Intra-Page Direct" ~prefix:"apd" ~own_pages:false
    ~indirect:false ~default_iters:500_000_000
    ~description:"short functions within one page, direct tail calls"

let intra_page_indirect =
  control_flow ~name:"Intra-Page Indirect" ~prefix:"api" ~own_pages:false
    ~indirect:true ~default_iters:200_000
    ~description:"short functions within one page, indirect tail calls"

(* ------------------------------------------------------------------ *)
(* Exception handling                                                   *)
(* ------------------------------------------------------------------ *)

let skip_faulting_insn ~bytes =
  [
    Cop_read (v3, Sb_isa.Cregs.elr);
    add v3 v3 (I bytes);
    Cop_write (Sb_isa.Cregs.elr, v3);
    Eret;
  ]

let data_access_fault =
  let body ~support ~platform:(p : Platform.t) =
    let (module S : Support.SUPPORT) = support in
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.fault_va) ];
      kernel = [ Load (W32, v2, v1, 0) ];
      handlers =
        [ (Sb_sim.Exn.Data_abort, skip_faulting_insn ~bytes:S.load_skip_bytes) ];
    }
  in
  {
    Bench.name = "Data Access Fault";
    category = Category.Exception_handling;
    description =
      "read an unmapped address; the abort handler returns past the load";
    default_iters = 25_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let instruction_access_fault =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.fault_va) ];
      kernel = [ Call_reg v1 ];
      handlers =
        [
          (* "stack unwinding": resume at the call's return address *)
          (Sb_sim.Exn.Prefetch_abort, [ Cop_write_lr Sb_isa.Cregs.elr; Eret ]);
        ];
    }
  in
  {
    Bench.name = "Instruction Access Fault";
    category = Category.Exception_handling;
    description =
      "call into an unmapped page; the handler unwinds to the caller";
    default_iters = 25_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let undefined_instruction =
  let body ~support ~platform:_ =
    let (module S : Support.SUPPORT) = support in
    {
      Bench.empty_body with
      Bench.kernel = [ Undef ];
      handlers =
        [ (Sb_sim.Exn.Undefined, skip_faulting_insn ~bytes:S.undef_skip_bytes) ];
    }
  in
  {
    Bench.name = "Undefined Instruction";
    category = Category.Exception_handling;
    description = "execute the architecturally undefined instruction";
    default_iters = 50_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let system_call =
  let body ~support:_ ~platform:_ =
    {
      Bench.empty_body with
      Bench.kernel = [ Syscall ];
      handlers = [ (Sb_sim.Exn.Syscall, [ Eret ]) ];
    }
  in
  {
    Bench.name = "System Call";
    category = Category.Exception_handling;
    description = "execute a system-call instruction; the handler returns";
    default_iters = 50_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let external_software_interrupt =
  let body ~support:_ ~platform:(p : Platform.t) =
    let intc = p.Platform.intc_base in
    let mask = p.Platform.softint_mask in
    let flag = p.Platform.scratch_base + 64 in
    {
      Bench.empty_body with
      Bench.setup =
        [
          Li (v1, intc);
          Li (v0, mask);
          Store (W32, v0, v1, 0x4);  (* ENABLE the softint line *)
          Li (v2, flag);
        ];
      kernel =
        [
          Li (v0, mask);
          Store (W32, v0, v1, 0x8);  (* SOFTINT_SET: raise the line *)
          L "eswi_wait";
          Load (W32, v0, v2, 0);
          Cmp (v0, I 1);
          Br (Sb_isa.Uop.Ne, "eswi_wait");
          Li (v0, 0);
          Store (W32, v0, v2, 0);
        ];
      handlers =
        [
          ( Sb_sim.Exn.Irq,
            Rt.wrap_irq_handler
              [
                Li (v3, intc);
                Li (v0, mask);
                Store (W32, v0, v3, 0xC);  (* ACK *)
                Li (v3, flag);
                Li (v0, 1);
                Store (W32, v0, v3, 0);
              ] );
        ];
      needs_irqs = true;
    }
  in
  {
    Bench.name = "External Software Interrupt";
    category = Category.Exception_handling;
    description =
      "raise a software-generated interrupt at the interrupt controller and \
       wait for the IRQ handler";
    default_iters = 20_000_000;
    ops_per_iter = 1;
    platform_specific = true;
    body;
  }

(* ------------------------------------------------------------------ *)
(* I/O                                                                  *)
(* ------------------------------------------------------------------ *)

let memory_mapped_device =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.devid_base) ];
      kernel =
        [
          Load (W32, v0, v1, 0);
          Load (W32, v0, v1, 0);
          Load (W32, v0, v1, 0);
          Load (W32, v0, v1, 0);
        ];
    }
  in
  {
    Bench.name = "Memory Mapped Device";
    category = Category.Io;
    description =
      "repeatedly read the side-effect-free device identification register";
    default_iters = 400_000_000;
    ops_per_iter = 4;
    platform_specific = true;
    body;
  }

let coprocessor_access =
  let body ~support:_ ~platform:_ =
    {
      Bench.empty_body with
      Bench.kernel =
        [ Cop_safe_read v0; Cop_safe_read v0; Cop_safe_read v0; Cop_safe_read v0 ];
    }
  in
  {
    Bench.name = "Coprocessor Access";
    category = Category.Io;
    description =
      "repeatedly perform the architecture's safe coprocessor access";
    default_iters = 250_000_000;
    ops_per_iter = 4;
    platform_specific = false;
    body;
  }

(* ------------------------------------------------------------------ *)
(* Memory system                                                        *)
(* ------------------------------------------------------------------ *)

let cold_memory_access =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.cold_region_va) ];
      kernel =
        [
          Mov (v0, v1);
          Li (v2, p.Platform.cold_region_pages);
          L "cold_loop";
          Load (W32, v3, v0, 0);
          add v0 v0 (I 4096);
          sub v2 v2 (I 1);
          Cmp (v2, I 0);
          Br (Sb_isa.Uop.Ne, "cold_loop");
        ];
    }
  in
  {
    Bench.name = "Cold Memory Access";
    category = Category.Memory_system;
    description =
      "one read at the top of each page of a large region: every access \
       misses the TLB";
    default_iters = 24_414;  (* 50M accesses / 2048 pages per iteration *)
    ops_per_iter = Platform.sbp_ref.Platform.cold_region_pages;
    platform_specific = false;
    body;
  }

let hot_memory_access =
  let body ~support:_ ~platform:(p : Platform.t) =
    let pair = [ Load (W32, v0, v1, 0); Store (W32, v0, v1, 0) ] in
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.scratch_base) ];
      kernel = List.concat (List.init 16 (fun _ -> pair));
    }
  in
  {
    Bench.name = "Hot Memory Access";
    category = Category.Memory_system;
    description = "manually unrolled load/store pairs to one hot page";
    default_iters = 31_250_000;  (* 500M accesses at 16 pairs per iteration *)
    ops_per_iter = 32;
    platform_specific = false;
    body;
  }

let nonprivileged_access =
  let body ~support ~platform:(p : Platform.t) =
    let (module S : Support.SUPPORT) = support in
    let target = if S.nonpriv_supported then p.Platform.user_page_va else 0 in
    let pair = [ Load_user (v0, v1, 0); Store_user (v0, v1, 0) ] in
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, target) ];
      kernel = List.concat (List.init 8 (fun _ -> pair));
    }
  in
  {
    Bench.name = "Nonprivileged Access";
    category = Category.Memory_system;
    description =
      "hot accesses through the non-privileged load/store instructions (a \
       no-op on architectures without them)";
    default_iters = 37_500_000;  (* 300M accesses at 8 pairs per iteration *)
    ops_per_iter = 16;
    platform_specific = false;
    body;
  }

let tlb_eviction =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.cold_region_va) ];
      kernel = [ Load (W32, v0, v1, 0); Tlb_inv_page v1 ];
    }
  in
  {
    Bench.name = "TLB Eviction";
    category = Category.Memory_system;
    description = "access a page and evict its TLB entry every iteration";
    default_iters = 4_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let tlb_flush =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.cold_region_va) ];
      kernel = [ Load (W32, v0, v1, 0); Tlb_inv_all ];
    }
  in
  {
    Bench.name = "TLB Flush";
    category = Category.Memory_system;
    description = "access a page and flush the entire TLB every iteration";
    default_iters = 4_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let all =
  [
    small_blocks;
    large_blocks;
    inter_page_direct;
    inter_page_indirect;
    intra_page_direct;
    intra_page_indirect;
    data_access_fault;
    instruction_access_fault;
    undefined_instruction;
    system_call;
    external_software_interrupt;
    memory_mapped_device;
    coprocessor_access;
    cold_memory_access;
    hot_memory_access;
    nonprivileged_access;
    tlb_eviction;
    tlb_flush;
  ]

let names = List.map (fun b -> b.Bench.name) all

let find name =
  List.find_opt
    (fun b -> String.lowercase_ascii b.Bench.name = String.lowercase_ascii name)
    all

let by_category category = List.filter (fun b -> b.Bench.category = category) all
