type arch = Sb_isa.Arch_sig.arch_id

module Interp_sba = Sb_interp.Interp.Make (Sb_arch_sba.Arch)
module Interp_vlx = Sb_interp.Interp.Make (Sb_arch_vlx.Arch)
module Dbt_sba = Sb_dbt.Dbt.Make (Sb_arch_sba.Arch)
module Dbt_vlx = Sb_dbt.Dbt.Make (Sb_arch_vlx.Arch)
module Detailed_sba = Sb_detailed.Detailed.Make (Sb_arch_sba.Arch)
module Detailed_vlx = Sb_detailed.Detailed.Make (Sb_arch_vlx.Arch)
module Virt_sba = Sb_virt.Virt.Make_virt (Sb_arch_sba.Arch)
module Virt_vlx = Sb_virt.Virt.Make_virt (Sb_arch_vlx.Arch)
module Native_sba = Sb_virt.Virt.Make_native (Sb_arch_sba.Arch)
module Native_vlx = Sb_virt.Virt.Make_native (Sb_arch_vlx.Arch)

let pick arch ~sba ~vlx =
  match arch with Sb_isa.Arch_sig.Sba -> sba | Sb_isa.Arch_sig.Vlx -> vlx

let interp arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Interp_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Interp_vlx)

let dbt arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Dbt_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Dbt_vlx)

let detailed arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Detailed_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Detailed_vlx)

let virt arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Virt_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Virt_vlx)

let native arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Native_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Native_vlx)

let dbt_configured arch config : Sb_sim.Engine.t =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    (module Sb_dbt.Dbt.Make_configured
              (Sb_arch_sba.Arch)
              (struct
                let config = config
              end))
  | Sb_isa.Arch_sig.Vlx ->
    (module Sb_dbt.Dbt.Make_configured
              (Sb_arch_vlx.Arch)
              (struct
                let config = config
              end))

let dbt_version arch name =
  match Sb_dbt.Version.find name with
  | Some config -> dbt_configured arch config
  | None -> raise Not_found

let interp_configured arch config : Sb_sim.Engine.t =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    (module Sb_interp.Interp.Make_configured
              (Sb_arch_sba.Arch)
              (struct
                let config = config
              end))
  | Sb_isa.Arch_sig.Vlx ->
    (module Sb_interp.Interp.Make_configured
              (Sb_arch_vlx.Arch)
              (struct
                let config = config
              end))

(* Engine naming shared by the CLI and the serve protocol: the paper-role
   aliases (gem5 = detailed, kvm = virt, hw = native) and dbt@VERSION
   release names all resolve here, so every front end accepts the same
   spellings and rejects unknown ones with the same message. *)
let of_string arch s =
  match String.split_on_char '@' s with
  | [ "interp" ] -> Ok (interp arch)
  | [ "dbt" ] -> Ok (dbt arch)
  | [ "detailed" ] | [ "gem5" ] -> Ok (detailed arch)
  | [ "virt" ] | [ "kvm" ] -> Ok (virt arch)
  | [ "native" ] | [ "hw" ] -> Ok (native arch)
  | [ "dbt"; "" ] ->
    Error
      (Printf.sprintf "missing DBT version after \"dbt@\"; valid versions: %s"
         (String.concat ", " Sb_dbt.Version.names))
  | [ "dbt"; version ] -> (
    match Sb_dbt.Version.find version with
    | Some config -> Ok (dbt_configured arch config)
    | None ->
      Error
        (Printf.sprintf "unknown DBT version %S; valid versions: %s" version
           (String.concat ", " Sb_dbt.Version.names)))
  | _ -> Error (Printf.sprintf "unknown engine %S" s)

let canonical_name s =
  match String.split_on_char '@' s with
  | [ "gem5" ] -> "detailed"
  | [ "kvm" ] -> "virt"
  | [ "hw" ] -> "native"
  | [ "dbt"; version ] -> (
    (* release aliases (v2.5.0-rc1/-rc2 sharing v2.5.0-rc0's config)
       canonicalise to the first name registered for the configuration,
       so content-addressed result keys deduplicate across aliases *)
    match Sb_dbt.Version.find version with
    | None -> s
    | Some config -> (
      match List.find_opt (fun (_, c) -> c = config) Sb_dbt.Version.all with
      | Some (name, _) -> "dbt@" ^ name
      | None -> s))
  | _ -> s

let paper_set arch =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    [
      ("QEMU-DBT", dbt arch);
      ("SimIt-ARM", interp arch);
      ("Gem5", detailed arch);
      ("QEMU-KVM", virt arch);
      ("Hardware", native arch);
    ]
  | Sb_isa.Arch_sig.Vlx ->
    (* the paper's x86 table has no SimIt or Gem5 columns *)
    [ ("QEMU-DBT", dbt arch); ("QEMU-KVM", virt arch); ("Hardware", native arch) ]

let all_arches = [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

let support arch : Support.t =
  pick arch ~sba:(module Sba_support : Support.SUPPORT) ~vlx:(module Vlx_support)
