(* Checkpointed fast-forward: run a benchmark's setup phase once on a cheap
   engine, snapshot the machine at the switch point, and let every
   subsequent run — any engine, any repeat — resume from the snapshot.
   The on-disk store is Sb_jobs.Cache with keys prefixed "ckpt_", so the
   checkpoint files live beside the result cache, inherit its atomic
   write-then-rename discipline, and are swept for corruption at create
   time. *)

type point = Kernel_phase | At_insns of int

let point_to_string = function
  | Kernel_phase -> "phase:kernel"
  | At_insns n -> Printf.sprintf "insn:%d" n

let parse_point s =
  match String.lowercase_ascii (String.trim s) with
  | "kernel" | "phase:kernel" -> Ok Kernel_phase
  | t -> (
    let num = function
      | n when int_of_string_opt n <> None && int_of_string n > 0 ->
        Ok (At_insns (int_of_string n))
      | n -> Error (Printf.sprintf "invalid switch point %S" n)
    in
    match String.index_opt t ':' with
    | Some i when String.sub t 0 i = "insn" ->
      num (String.sub t (i + 1) (String.length t - i - 1))
    | Some _ -> Error (Printf.sprintf "invalid switch point %S" s)
    | None -> num t)

(* [loaded] is the in-process side of the store: a snapshot is unmarshalled
   and digest-validated once per process, then every later run of the grid
   restores the same immutable value — repeats and engine columns pay the
   disk read and the page hashing exactly once. *)
type store = {
  cache : Sb_jobs.Cache.t;
  loaded : (string, Sb_sim.Snapshot.t) Hashtbl.t;
}

let open_store ~dir =
  { cache = Sb_jobs.Cache.create ~dir; loaded = Hashtbl.create 8 }

let of_cache cache = { cache; loaded = Hashtbl.create 8 }
let cache t = t.cache

(* The key digests everything that determines the machine state at the
   switch point: guest ISA, benchmark, iteration count, the exact program
   image (so runtime or codegen changes invalidate old checkpoints), RAM
   size, the setup engine, the switch point itself, and the snapshot
   schema.  Engine of the *timed* run is deliberately absent — that is the
   whole point: one warm boot feeds the entire engine grid. *)
let key ~arch ~bench ~iters ~ram_size ~setup_engine ~point
    (program : Sb_asm.Program.t) =
  "ckpt_"
  ^ Sb_jobs.Cache.fingerprint
      ( "checkpoint",
        Sb_sim.Snapshot.schema_version,
        arch,
        bench,
        iters,
        ram_size,
        setup_engine,
        point_to_string point,
        (program.Sb_asm.Program.base, program.Sb_asm.Program.entry),
        Digest.bytes program.Sb_asm.Program.image )

(* Disk hits are validated here, once: a snapshot whose pages fail their
   digest is evicted like any other corrupt cache entry and reported as a
   miss.  Memo hits were validated when they entered [loaded], so restores
   of them can skip re-validation ([Snapshot.restore ~validated:true]). *)
let load t ~key : Sb_sim.Snapshot.t option =
  match Hashtbl.find_opt t.loaded key with
  | Some _ as hit -> hit
  | None -> (
    match Sb_jobs.Cache.load t.cache ~key with
    | None -> None
    | Some snap -> (
      match Sb_sim.Snapshot.validate snap with
      | () ->
        Hashtbl.replace t.loaded key snap;
        Some snap
      | exception Sb_sim.Snapshot.Corrupt reason ->
        Sb_jobs.Cache.evict t.cache ~key ~reason;
        None))

(* deliberately no [loaded] insert: the write is what persists the
   checkpoint, and the one later read-back both proves the file round-trips
   and populates the memo — a truncated or tampered file is then caught by
   the next load instead of being masked by a memo hit *)
let save t ~key (snap : Sb_sim.Snapshot.t) = Sb_jobs.Cache.store t.cache ~key snap

exception Fast_forward_failed of string

let ff_fail fmt = Printf.ksprintf (fun s -> raise (Fast_forward_failed s)) fmt

(* Execute [machine] under [setup_engine] up to the switch point and return
   the snapshot taken there.  Phase points stop via the benchdev stop flag
   (exact on per-insn engines, block-granular on the DBT — the overshoot
   into the kernel rides along in the snapshot and is credited back by the
   resumed run); instruction points reuse the engine's [max_insns] stop. *)
let run_to_point ~setup_engine ~point machine =
  let benchdev = machine.Sb_sim.Machine.benchdev in
  let result =
    match point with
    | Kernel_phase ->
      Sb_mem.Benchdev.set_stop_phase benchdev (Some Sb_mem.Benchdev.Kernel);
      Fun.protect
        ~finally:(fun () -> Sb_mem.Benchdev.set_stop_phase benchdev None)
        (fun () -> Sb_sim.Engine.run setup_engine machine)
    | At_insns n -> Sb_sim.Engine.run setup_engine ~max_insns:n machine
  in
  (match (point, result.Sb_sim.Run_result.stop) with
  | Kernel_phase, Sb_sim.Run_result.Switch_point -> ()
  | At_insns _, Sb_sim.Run_result.Insn_limit -> ()
  | _, stop ->
    ff_fail "setup run under %s stopped with %s before reaching %s"
      result.Sb_sim.Run_result.engine
      (Format.asprintf "%a" Sb_sim.Run_result.pp_stop stop)
      (point_to_string point));
  Sb_sim.Snapshot.save
    ~insns:(Sb_sim.Run_result.insns result)
    ~insns_into_kernel:
      (Option.value ~default:0 result.Sb_sim.Run_result.insns_into_kernel)
    machine

(* Fetch-or-compute: the uniform entry point the harness uses.  Both the
   hit and miss paths end with [Snapshot.restore] into [machine], so a
   checkpointed run always exercises the restore path and the timed run
   starts from identical state either way. *)
let fast_forward ?store ~setup_engine ~point ~key machine =
  let snap =
    match Option.bind store (fun s -> load s ~key) with
    | Some snap -> snap
    | None ->
      let snap = run_to_point ~setup_engine ~point machine in
      Option.iter (fun s -> save s ~key snap) store;
      snap
  in
  (* hit path: validated by [load]; miss path: just captured from this very
     machine, so its pages hash by construction *)
  Sb_sim.Snapshot.restore ~validated:true snap machine;
  snap
