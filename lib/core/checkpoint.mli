(** Checkpointed fast-forward for the benchmark grid.

    Runs a benchmark's setup phase once under a cheap engine, snapshots the
    machine at the switch point ({!Sb_sim.Snapshot}), and shares that warm
    boot — on disk via {!Sb_jobs.Cache} — across every engine column and
    repeat of the grid.  The gem5 [switch_cpus] idiom: fast-forward on a
    cheap CPU, switch to the expensive one at the region of interest. *)

type point =
  | Kernel_phase  (** switch when the guest signals kernel start *)
  | At_insns of int  (** switch after executing this many instructions *)

val point_to_string : point -> string

val parse_point : string -> (point, string) result
(** Accepts ["kernel"], ["phase:kernel"], ["insn:<n>"], or a bare positive
    instruction count. *)

type store

val open_store : dir:string -> store
(** Opens (creating if needed) a checkpoint store backed by
    {!Sb_jobs.Cache.create} in [dir] — checkpoint files share the result
    cache's directory layout, atomicity, and create-time corruption
    sweep. *)

val of_cache : Sb_jobs.Cache.t -> store
(** Reuse an existing cache (e.g. the experiment result cache) as the
    checkpoint store; keys never collide because checkpoint keys carry the
    [ckpt_] prefix. *)

val cache : store -> Sb_jobs.Cache.t

val key :
  arch:string ->
  bench:string ->
  iters:int ->
  ram_size:int ->
  setup_engine:string ->
  point:point ->
  Sb_asm.Program.t ->
  string
(** Digest of everything that determines machine state at the switch point
    (ISA, benchmark, iteration count, exact program image, RAM size, setup
    engine, switch point, snapshot schema).  The timed engine is absent by
    design: one warm boot feeds the whole engine grid. *)

val load : store -> key:string -> Sb_sim.Snapshot.t option
(** [None] on miss or on a corrupt file: unmarshalling failures are
    evicted by the cache layer, and a snapshot that unmarshals but fails
    its own page-digest check ({!Sb_sim.Snapshot.validate}) is evicted
    here.  A snapshot is read and validated once per process; later loads
    of the same key return the memoized (immutable) value, which restores
    may then apply without re-validating. *)

val save : store -> key:string -> Sb_sim.Snapshot.t -> unit

exception Fast_forward_failed of string
(** The setup run halted, deadlocked, or hit its budget before reaching
    the requested switch point. *)

val run_to_point :
  setup_engine:Sb_sim.Engine.t ->
  point:point ->
  Sb_sim.Machine.t ->
  Sb_sim.Snapshot.t
(** Execute the (loaded, ready-to-run) machine under [setup_engine] to the
    switch point and snapshot it there.  Phase points stop exactly at the
    phase-write instruction on per-insn engines and at the enclosing block
    boundary on the DBT; any overshoot into the kernel is recorded in the
    snapshot and credited back by resumed runs. *)

val fast_forward :
  ?store:store ->
  setup_engine:Sb_sim.Engine.t ->
  point:point ->
  key:string ->
  Sb_sim.Machine.t ->
  Sb_sim.Snapshot.t
(** Fetch-or-compute a checkpoint for [key], then restore it into
    [machine].  Both hit and miss paths end in {!Sb_sim.Snapshot.restore},
    so a checkpointed run always starts the timed engine from identical,
    restore-validated state. *)
