(** Engine registry: every execution engine instantiated for both guest
    ISAs, plus DBT engines configured for arbitrary version configurations.

    Paper-role naming: [dbt] plays QEMU-DBT, [interp] plays SimIt-ARM,
    [detailed] plays Gem5, [virt] plays QEMU-KVM, [native] plays the
    hardware baseline. *)

type arch = Sb_isa.Arch_sig.arch_id

val interp : arch -> Sb_sim.Engine.t
val dbt : arch -> Sb_sim.Engine.t
val detailed : arch -> Sb_sim.Engine.t
val virt : arch -> Sb_sim.Engine.t
val native : arch -> Sb_sim.Engine.t

val dbt_configured : arch -> Sb_dbt.Config.t -> Sb_sim.Engine.t
(** A DBT engine with an explicit configuration (used by the version sweep
    and the ablation benches). *)

val dbt_version : arch -> string -> Sb_sim.Engine.t
(** By {!Sb_dbt.Version} release name; raises [Not_found] on an unknown
    name. *)

val interp_configured : arch -> Sb_interp.Interp.Config.t -> Sb_sim.Engine.t

val of_string : arch -> string -> (Sb_sim.Engine.t, string) result
(** Parse an engine spelling: [interp], [dbt], [detailed]/[gem5],
    [virt]/[kvm], [native]/[hw], or [dbt\@VERSION] by {!Sb_dbt.Version}
    release name.  The shared parser behind the CLI's [--engine] and the
    serve protocol's ["engine"] field; errors list the valid versions. *)

val canonical_name : string -> string
(** Canonical form of an engine spelling accepted by {!of_string}:
    paper-role aliases map to their engine ([gem5] -> [detailed]), and
    [dbt\@ALIAS] release aliases map to the first registered name of the
    same configuration — so equal canonical names mean equal engines, the
    property content-addressed result keys need.  Unknown spellings are
    returned unchanged ({!of_string} is the validator). *)

val paper_set : arch -> (string * Sb_sim.Engine.t) list
(** The Figure 7 column set, labelled with the paper's platform names. *)

val all_arches : arch list

val support : arch -> Support.t
(** The matching architecture support package. *)
