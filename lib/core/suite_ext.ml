open Pasm

let add r a b = Alu (Sb_isa.Uop.Add, r, a, b)
let xor r a b = Alu (Sb_isa.Uop.Xor, r, a, b)

let nested_exception =
  let body ~support ~platform:(p : Platform.t) =
    let (module S : Support.SUPPORT) = support in
    let save = p.Platform.scratch_base + 0xE00 in
    {
      Bench.empty_body with
      Bench.kernel = [ Syscall ];
      handlers =
        [
          ( Sb_sim.Exn.Syscall,
            [
              (* bank the outer exception state: the inner abort will
                 overwrite ELR/SPSR/ESR *)
              Cop_read (v3, Sb_isa.Cregs.elr);
              Li (v0, save);
              Store (W32, v3, v0, 0);
              Cop_read (v3, Sb_isa.Cregs.spsr);
              Store (W32, v3, v0, 4);
              (* the nested fault *)
              Li (v3, p.Platform.fault_va);
              Load (W32, v3, v3, 0);
              (* restore and return *)
              Li (v0, save);
              Load (W32, v3, v0, 0);
              Cop_write (Sb_isa.Cregs.elr, v3);
              Load (W32, v3, v0, 4);
              Cop_write (Sb_isa.Cregs.spsr, v3);
              Eret;
            ] );
          ( Sb_sim.Exn.Data_abort,
            [
              Cop_read (v3, Sb_isa.Cregs.elr);
              add v3 v3 (I S.load_skip_bytes);
              Cop_write (Sb_isa.Cregs.elr, v3);
              Eret;
            ] );
        ];
    }
  in
  {
    Bench.name = "Nested Exception";
    category = Category.Exception_handling;
    description =
      "a system call whose handler takes and recovers from a data abort: \
       exercises nested exception entry/exit and state banking";
    default_iters = 10_000_000;
    ops_per_iter = 2;
    platform_specific = false;
    body;
  }

(* The user page has its own single-entry L2 table (see Rt); this benchmark
   rewrites that entry, alternating the page between two scratch frames. *)
let page_table_modification =
  let body ~support:_ ~platform:(p : Platform.t) =
    let l2_tables = (p.Platform.cold_region_pages + 1023) / 1024 in
    let user_l2 = p.Platform.l2_table_base + (l2_tables * 4096) in
    let slot = user_l2 + (Sb_mmu.Pte.l2_index p.Platform.user_page_va * 4) in
    let entry frame =
      Sb_mmu.Pte.encode_page
        ~pa_base:(p.Platform.scratch_base + (frame * 4096))
        ~ap:Sb_mmu.Access.Ap.user_full ~xn:true
    in
    let toggle = entry 0 lxor entry 1 in
    {
      Bench.empty_body with
      Bench.setup =
        [
          (* distinct markers in the two frames (physical, identity-mapped) *)
          Li (v0, p.Platform.scratch_base);
          Li (v3, 0xAAAA);
          Store (W32, v3, v0, 0);
          Li (v0, p.Platform.scratch_base + 4096);
          Li (v3, 0xBBBB);
          Store (W32, v3, v0, 0);
          Li (v1, slot);
          Li (v2, entry 1);  (* first iteration remaps to frame 1 *)
        ];
      kernel =
        [
          Store (W32, v2, v1, 0);  (* rewrite the PTE *)
          Li (v0, p.Platform.user_page_va);
          Tlb_inv_page v0;         (* shoot down the stale translation *)
          Load (W32, v3, v0, 0);   (* must observe the new frame *)
          (* publish the observed marker where the harness can check it
             (frame 2 of the scratch arena, untouched by the remapping) *)
          Li (v0, p.Platform.scratch_base + (2 * 4096));
          Store (W32, v3, v0, 0);
          xor v2 v2 (I toggle);
        ];
    }
  in
  {
    Bench.name = "Page Table Modification";
    category = Category.Memory_system;
    description =
      "rewrite a PTE, invalidate its TLB entry and touch the page: the \
       remap path behind copy-on-write and page migration";
    default_iters = 4_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let exception_return =
  let body ~support:_ ~platform:_ =
    let hop i = Printf.sprintf "ert_hop%d" i in
    let trampolines =
      List.concat
        (List.init 4 (fun i ->
             [ La (v3, hop i); Cop_write (Sb_isa.Cregs.elr, v3); Eret; L (hop i) ]))
    in
    {
      Bench.empty_body with
      Bench.kernel = [ Syscall ];
      handlers =
        [
          ( Sb_sim.Exn.Syscall,
            [ Cop_read (v0, Sb_isa.Cregs.elr) ]
            @ trampolines
            @ [ Cop_write (Sb_isa.Cregs.elr, v0); Eret ] );
        ];
    }
  in
  {
    Bench.name = "Exception Return";
    category = Category.Exception_handling;
    description =
      "chains of ERET trampolines inside one handler: isolates the \
       exception-return path from exception entry";
    default_iters = 50_000_000;
    ops_per_iter = 5;
    platform_specific = false;
    body;
  }

(* Alternate between two address-space identifiers and touch a small page
   set under each.  On ASID-tagged implementations both spaces stay cached;
   untagged implementations flush on every switch and walk every access. *)
let context_switch =
  let body ~support:_ ~platform:(p : Platform.t) =
    {
      Bench.empty_body with
      Bench.setup = [ Li (v1, p.Platform.cold_region_va); Li (v2, 1) ];
      kernel =
        [
          xor v2 v2 (I 3);  (* toggle between ASID 1 and ASID 2 *)
          Cop_write (Sb_isa.Cregs.asid, v2);
          Mov (v0, v1);
          (* lr carries the loop count (no calls in this kernel); v3 is the
             load destination so no value is live in the handler-scratch
             register across the faulting load *)
          Li (lr, 8);
          L "cs_touch";
          Load (W32, v3, v0, 0);
          add v0 v0 (I 4096);
          Alu (Sb_isa.Uop.Sub, lr, lr, I 1);
          Cmp (lr, I 0);
          Br (Sb_isa.Uop.Ne, "cs_touch");
        ];
      cleanup =
        [ Li (v3, 0); Cop_write (Sb_isa.Cregs.asid, v3) ];
    }
  in
  {
    Bench.name = "Context Switch";
    category = Category.Memory_system;
    description =
      "alternate address-space identifiers while touching a working set:        ASID-tagged TLBs keep both spaces warm, untagged ones flush per        switch (the ASID/PCID support the paper defers to future work)";
    default_iters = 4_000_000;
    ops_per_iter = 1;
    platform_specific = false;
    body;
  }

let all =
  [ nested_exception; page_table_modification; exception_return; context_switch ]

let find name =
  List.find_opt
    (fun b -> String.lowercase_ascii b.Bench.name = String.lowercase_ascii name)
    all
