type outcome = {
  bench_name : string;
  engine_name : string;
  arch_name : string;
  iters : int;
  scale : int;
  result : Sb_sim.Run_result.t;
  kernel_seconds : float;
  kernel_insns : int;
  tested_ops : int;
}

exception Benchmark_failed of string

let default_scale = 20_000

let fail fmt = Printf.ksprintf (fun s -> raise (Benchmark_failed s)) fmt

(* One reusable machine per RAM size, handed out only to runs that are
   about to restore a checkpoint into it — restore overwrites all mutable
   machine state, so reuse is invisible except in the time not spent
   allocating and zeroing RAM.  Cold runs and fast-forward misses always
   build fresh machines. *)
let machine_pool : (int, Sb_sim.Machine.t) Hashtbl.t = Hashtbl.create 4

let pooled_machine (platform : Platform.t) =
  match Hashtbl.find_opt machine_pool platform.Platform.ram_size with
  | Some m -> m
  | None ->
    let m = Platform.machine platform ~now:Unix.gettimeofday () in
    Hashtbl.add machine_pool platform.Platform.ram_size m;
    m

let run ?(platform = Platform.sbp_ref) ?(scale = default_scale) ?iters
    ?switch_at ?setup_engine ?checkpoints ~support ~engine bench =
  let (module S : Support.SUPPORT) = support in
  let iters =
    match iters with
    | Some n -> max 1 n
    | None -> max 10 (bench.Bench.default_iters / scale)
  in
  let program = Rt.program ~support ~platform ~bench in
  let fresh_machine () =
    let machine = Platform.machine platform ~now:Unix.gettimeofday () in
    Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev iters;
    Sb_sim.Machine.load_program machine program;
    machine
  in
  (* Checkpointed fast-forward: bring a machine to the switch point — from
     the store when warm, by running the setup engine when cold — then
     hand it to the timed engine.  The snapshot records how far past
     kernel start the switch landed; that overshoot is credited back below
     so kernel_insns match a cold run exactly.

     Warm runs restore into a pooled machine instead of building a fresh
     one: [Snapshot.restore] rewrites every byte of mutable machine state
     (RAM, CPU, coprocessor, devices) and bumps the state generation so
     engine caches rebuild, which makes a reused machine
     indistinguishable from a fresh build — and skips zeroing tens of
     megabytes of RAM per grid cell. *)
  let machine, kernel_insns_carried =
    match switch_at with
    | None -> (fresh_machine (), 0)
    | Some point ->
      let setup_engine =
        match setup_engine with
        | Some e -> e
        | None -> (
          (* The default setup engine must share the timed engine's
             retirement granularity, or kernel accounting diverges: the
             per-insn engines copy perf exactly at the phase write, so
             they all share one interp-produced checkpoint; the DBT
             retires counters at block boundaries, so it fast-forwards
             under itself — the block-attribution fuzz at each phase edge
             then appears identically in cold and checkpointed runs and
             cancels out of kernel_insns. *)
          let (module E : Sb_sim.Engine.ENGINE) = engine in
          if String.length E.name >= 4 && String.sub E.name 0 4 = "dbt-" then
            engine
          else Engines.interp S.arch_id)
      in
      let key =
        let (module Setup : Sb_sim.Engine.ENGINE) = setup_engine in
        Checkpoint.key ~arch:S.name ~bench:bench.Bench.name ~iters
          ~ram_size:platform.Platform.ram_size ~setup_engine:Setup.name
          ~point program
      in
      let hit =
        Option.bind checkpoints (fun store -> Checkpoint.load store ~key)
      in
      let machine =
        match hit with
        | Some _ -> pooled_machine platform
        | None -> fresh_machine ()
      in
      let snap =
        match hit with
        | Some snap ->
          (* validated when it entered the store's memo *)
          Sb_sim.Snapshot.restore ~validated:true snap machine;
          snap
        | None -> (
          try
            let snap = Checkpoint.run_to_point ~setup_engine ~point machine in
            Option.iter
              (fun store -> Checkpoint.save store ~key snap)
              checkpoints;
            Sb_sim.Snapshot.restore ~validated:true snap machine;
            snap
          with
          | Checkpoint.Fast_forward_failed msg ->
            fail "%s on %s: %s" bench.Bench.name S.name msg
          | Sb_sim.Snapshot.Corrupt msg ->
            fail "%s on %s: corrupt checkpoint: %s" bench.Bench.name S.name msg)
      in
      (machine, Sb_sim.Snapshot.insns_into_kernel snap)
  in
  let result = Sb_sim.Engine.run engine machine in
  let engine_name = result.Sb_sim.Run_result.engine in
  (match result.Sb_sim.Run_result.stop with
  | Sb_sim.Run_result.Halted -> ()
  | stop ->
    fail "%s on %s stopped early (%s)" bench.Bench.name engine_name
      (Format.asprintf "%a" Sb_sim.Run_result.pp_stop stop));
  if result.Sb_sim.Run_result.exit_code <> 0 then
    fail "%s on %s: guest reported exit code 0x%x" bench.Bench.name engine_name
      result.Sb_sim.Run_result.exit_code;
  let kernel_seconds =
    match result.Sb_sim.Run_result.kernel_seconds with
    | Some s -> s
    | None -> fail "%s on %s: kernel phase never signalled" bench.Bench.name engine_name
  in
  let kernel_insns =
    match Sb_sim.Run_result.kernel_insns result with
    | Some n -> n + kernel_insns_carried
    | None -> fail "%s on %s: no kernel perf snapshot" bench.Bench.name engine_name
  in
  {
    bench_name = bench.Bench.name;
    engine_name;
    arch_name = S.name;
    iters;
    scale;
    result;
    kernel_seconds;
    kernel_insns;
    tested_ops = iters * bench.Bench.ops_per_iter;
  }

let density outcome =
  if outcome.kernel_insns = 0 then nan
  else float_of_int outcome.tested_ops /. float_of_int outcome.kernel_insns

let run_suite ?platform ?scale ?switch_at ?setup_engine ?checkpoints ~support
    ~engine () =
  List.map
    (fun bench ->
      run ?platform ?scale ?switch_at ?setup_engine ?checkpoints ~support
        ~engine bench)
    Suite.all
