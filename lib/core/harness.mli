(** SimBench harness: runs one benchmark on one engine and reports the
    paper's measurement triple — kernel run time, iteration count, and the
    counters behind the operation-density metric.

    Iteration counts default to Figure 3's values divided by [scale]
    (simulators-in-a-simulator run slower than real hardware); both the
    scaled count and the scale are recorded so results are reported
    "with run time and iteration counts", as the paper requires. *)

type outcome = {
  bench_name : string;
  engine_name : string;
  arch_name : string;
  iters : int;
  scale : int;
  result : Sb_sim.Run_result.t;
  kernel_seconds : float;
  kernel_insns : int;
  tested_ops : int;
}

exception Benchmark_failed of string
(** The guest reported failure (non-zero exit), did not halt, or never
    signalled its kernel phase. *)

val default_scale : int
(** 20000: Figure 3 iteration counts divided by this keep a full-suite,
    all-engine sweep within interactive time. *)

val run :
  ?platform:Platform.t ->
  ?scale:int ->
  ?iters:int ->
  ?switch_at:Checkpoint.point ->
  ?setup_engine:Sb_sim.Engine.t ->
  ?checkpoints:Checkpoint.store ->
  support:Support.t ->
  engine:Sb_sim.Engine.t ->
  Bench.t ->
  outcome
(** [iters] overrides the scaled default entirely.

    [switch_at] enables checkpointed fast-forward: the run executes up to
    the switch point under [setup_engine] — or restores a matching
    snapshot from [checkpoints] — and only then runs the timed kernel
    under [engine].  The default setup engine matches the timed engine's
    retirement granularity: per-insn engines (interp, detailed, virt,
    native) all share one interpreter-produced checkpoint, while the DBT
    fast-forwards under itself so its block-aligned perf attribution at
    phase edges cancels out of the count.  [kernel_insns] credits back any
    instructions the setup run overshot into the kernel, so checkpointed
    and cold runs report identical counts.  [kernel_seconds] and the
    kernel perf counters cover the timed engine's share only. *)

val density : outcome -> float
(** Tested operations per kernel instruction (the Figure 3 metric). *)

val run_suite :
  ?platform:Platform.t ->
  ?scale:int ->
  ?switch_at:Checkpoint.point ->
  ?setup_engine:Sb_sim.Engine.t ->
  ?checkpoints:Checkpoint.store ->
  support:Support.t ->
  engine:Sb_sim.Engine.t ->
  unit ->
  outcome list
(** All 18 benchmarks in Figure 3 order. *)
