(** Ablation studies for the design choices DESIGN.md calls out.

    Each study sweeps one implementation mechanism and reports the SimBench
    benchmarks that mechanism is supposed to dominate — the suite validating
    the simulators, exactly as the paper uses it.

    With [?opts] (see {!Experiments.run_opts}) the variant columns of each
    study run as parallel {!Sb_jobs.Pool} tasks.  The engine variants are
    built from closures, so ablation cells are never disk-cached — only
    forked. *)

type config = { scale : int; repeats : int }

val default_config : config
val quick_config : config

val chaining : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** DBT block chaining on/off against the control-flow benchmarks. *)

val page_cache : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Page-cache geometry (L1 size, L2 presence, lazy flush) against the
    memory-system benchmarks. *)

val optimiser : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Optimiser pass budget vs translation-heavy and compute-heavy
    benchmarks: the code-quality/translation-cost trade-off. *)

val traces : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Hot-trace superblock formation on/off and knob sweep (threshold,
    maximum trace length) against the control-flow and self-modifying-code
    benchmarks; see docs/traces.md. *)

val threaded : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Token-threaded code generation vs the closure backend, with and without
    the trace-scope register cache, against the compute-dense and
    self-modifying benchmarks; see docs/threaded.md. *)

val vm_exit : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Virtualization exit cost sweep against the trap-heavy benchmarks (the
    KVM signature). *)

val predecode : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
(** Interpreter pre-decoding on/off. *)

val all : ?config:config -> ?opts:Experiments.run_opts -> unit -> string
