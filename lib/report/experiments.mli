(** Experiment drivers: one entry point per table/figure of the paper's
    evaluation (see DESIGN.md section 6 for the index).

    Each driver runs the required sweep and renders a plain-text table (for
    the paper's tables) or a labelled series table (for its line graphs).
    Results are memoized per (engine-configuration, architecture, scale), so
    Figures 2, 6 and 8 — which share the QEMU-version sweep — do not re-run
    each other's measurements within a process.

    Independent sweep cells can additionally be farmed out to a
    {!Sb_jobs.Pool} of forked workers ([opts.jobs]) and backed by a
    persistent on-disk {!Sb_jobs.Cache} ([opts.cache_dir]); with the default
    {!sequential} options every measurement runs in-process, in the same
    order as before the pool existed. *)

type config = {
  scale : int;          (** Figure 3 iteration counts are divided by this *)
  workload_iters : int; (** kernel passes per workload run *)
  repeats : int;        (** timing repeats; the minimum is reported *)
  spec_density_iters : int;
  switch_at : Simbench.Checkpoint.point option;
      (** checkpointed fast-forward for every grid cell: run (or restore)
          setup up to this point and start the timed engine there — the
          gem5 [switch_cpus] idiom; see {!Simbench.Harness.run}.  When
          [opts.cache_dir] is set the checkpoints live in the same
          directory as the result cache, so one warm boot is shared by
          every engine column, repeat and later process.  [None] (the
          default) is a cold run; cold and fast-forwarded cells have
          distinct memo keys and cache fingerprints. *)
}

val default_config : config

val quick_config : config
(** Cheap settings for tests and smoke runs. *)

type run_opts = {
  jobs : int;  (** worker processes; 1 = in-process sequential *)
  cache_dir : string option;
      (** persistent result cache; cells are keyed by a digest of (engine
          knobs, arch, workload kind, iteration counts, scale) *)
  deadline : float option;
      (** per-cell wall-clock budget in seconds; overrunning workers are
          killed and the cell reported with status ["timeout"].  Forces
          the forked pool path even at [jobs = 1]. *)
  retries : int;
      (** extra attempts for cells whose worker {e crashed} (never for
          timeouts); a late success is reported as ["retried <n>"] *)
}

val sequential : run_opts
(** [{ jobs = 1; cache_dir = None; deadline = None; retries = 0 }] —
    single-process behaviour, failures after zero retries. *)

(** One measured (benchmark, engine, arch) cell: the paper's measurement
    triple plus the repeat statistics, in marshallable form. *)
type row = {
  row_cell : string;
  row_engine : string;
  row_arch : string;
  row_iters : int;
  row_repeats : int;
  row_seconds : float;  (** minimum across repeats (reported time) *)
  row_mean_seconds : float;  (** kept for machine-readable output *)
  row_samples : float list;
      (** raw per-repeat kernel seconds in run order — what the regression
          detector's noise-aware significance test ({!Sb_regress}) needs;
          the min/mean above are derived from it *)
  row_kernel_insns : int;
  row_perf : (string * int) list;
      (** non-zero kernel-phase architectural and engine counters
          ({!Sb_sim.Perf.to_string} names, declaration order) — this is
          where the DBT's [Traces_formed] / [Trace_dispatches] /
          [Trace_side_exits] / [Trace_invalidations] surface in [--json]
          output *)
  row_status : string;
      (** ["ok"]; ["retried <n>"] (succeeded after n crashed attempts);
          or a terminal failure — ["failed"], ["timeout"],
          ["quarantined"] — in which case the timing fields are
          [nan]/zero placeholders and [row_note] says why.  Downstream,
          {!Sb_regress} skips non-ok cells with a note instead of
          comparing them. *)
  row_note : string;  (** failure detail; empty when ok *)
}

val reset_memo : unit -> unit
(** Drop the in-process memo (tests use this to force re-measurement). *)

val reset_records : unit -> unit

val recorded : unit -> row list
(** Every cell touched since the last {!reset_records}, sorted — the
    payload of [bench/main.exe --json]. *)

type cell_kind = [ `Suite | `Workloads of int ]

val cell_fingerprint :
  config:config ->
  arch:Sb_isa.Arch_sig.arch_id ->
  kind:cell_kind ->
  Sb_dbt.Config.t ->
  string
(** The on-disk cache key of a version-sweep cell; changes whenever any
    knob of the configuration, the arch, the kind, the iteration counts or
    the scale changes. *)

val prefetch :
  ?opts:run_opts ->
  config:config ->
  (Sb_isa.Arch_sig.arch_id * cell_kind * Sb_dbt.Config.t) list ->
  unit
(** Measure (or cache-load) any not-yet-memoized cells, [opts.jobs] at a
    time.  A cell whose worker fails, times out or is quarantined does
    {e not} abort the run: it is memoized as placeholder rows with the
    corresponding non-ok {!row.row_status} (one per benchmark of the
    cell), a warning goes to stderr, and rendering continues with gaps. *)

val cell_rows :
  ?opts:run_opts ->
  config:config ->
  arch:Sb_isa.Arch_sig.arch_id ->
  kind:cell_kind ->
  Sb_dbt.Config.t ->
  row list

val fig2 : ?config:config -> ?opts:run_opts -> unit -> string
(** sjeng vs mcf vs overall SPEC rating across QEMU versions. *)

val fig3 : ?config:config -> unit -> string
(** The benchmark table: iterations and operation densities. *)

val fig4 : unit -> string
(** Implementation-technique matrix of the evaluated platforms. *)

val fig5 : unit -> string
(** Host environment description. *)

val fig6 : ?config:config -> ?opts:run_opts -> unit -> string
(** Per-category SimBench speedups across QEMU versions, both guests. *)

val fig7 : ?config:config -> ?opts:run_opts -> unit -> string
(** Full suite runtimes on every platform, both guests. *)

val fig8 : ?config:config -> ?opts:run_opts -> unit -> string
(** Geomean SPEC vs geomean SimBench speedup across QEMU versions. *)

val extensions : ?config:config -> ?opts:run_opts -> unit -> string
(** The extension benchmarks (future work implemented) across the five
    platforms. *)

val all : ?config:config -> ?opts:run_opts -> unit -> string
(** Every experiment, in figure order, with headers; prefetches the whole
    version sweep in one pool pass first. *)

val synthetic_faults : ?opts:run_opts -> unit -> string
(** Harness self-check: drive one healthy, one crashing and one hanging
    synthetic cell through the pool (deadline defaults to 10s when
    [opts.deadline] is unset; at least two workers) and render their
    per-cell statuses.  The rows are {!recorded}, so [--json] output
    carries statuses ["ok"], ["failed"] and ["timeout"] — what the CI
    chaos smoke job asserts on.  Never raises. *)

(** Raw data access for tests and ablations. *)

val suite_times_for_version :
  ?opts:run_opts ->
  arch:Sb_isa.Arch_sig.arch_id ->
  config:config ->
  Sb_dbt.Config.t ->
  (string * float) list
(** Kernel seconds per benchmark for one DBT configuration (memoized). *)

val workload_times_for_version :
  ?opts:run_opts ->
  arch:Sb_isa.Arch_sig.arch_id ->
  config:config ->
  Sb_dbt.Config.t ->
  (string * float) list
