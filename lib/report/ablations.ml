module Tablefmt = Sb_util.Tablefmt
module Stats = Sb_util.Stats
module Pool = Sb_jobs.Pool

type config = { scale : int; repeats : int }

let default_config = { scale = 2_000; repeats = 3 }
let quick_config = { scale = 100_000; repeats = 1 }

let arch = Sb_isa.Arch_sig.Sba

let time ?iters ~config ~engine bench =
  let support = Simbench.Engines.support arch in
  (* floor the iteration count: several benchmarks have small Figure 3
     defaults and a handful of iterations is all noise *)
  let iters =
    match iters with
    | Some n -> n
    | None -> max 1_000 (bench.Simbench.Bench.default_iters / config.scale)
  in
  let rec go acc n =
    if n = 0 then acc
    else
      go
        ((Simbench.Harness.run ~iters ~support ~engine bench)
           .Simbench.Harness.kernel_seconds
        :: acc)
        (n - 1)
  in
  Stats.min_of_repeats (go [] (max 1 config.repeats))

(* One table: rows = benchmarks, columns = engine variants.  Each variant
   column is one pool task; the engine variants are closures, so the
   columns run in forked workers but are never disk-cached. *)
let sweep ?iters ?(opts = Experiments.sequential) ~config ~title ~benches
    ~variants () =
  let tasks =
    List.map
      (fun (label, engine) ->
        Pool.task ~label (fun () ->
            List.map
              (fun b -> (b.Simbench.Bench.name, time ?iters ~config ~engine b))
              benches))
      variants
  in
  let results =
    Pool.run ~jobs:opts.Experiments.jobs ?deadline:opts.Experiments.deadline
      ~retries:opts.Experiments.retries tasks
  in
  let columns =
    List.map2
      (fun (label, _) outcome ->
        let times =
          match outcome with
          | Pool.Done times | Pool.Retried (times, _) -> times
          | Pool.Failed f ->
            (* degrade the column to gaps instead of sinking the table *)
            Printf.eprintf "[sb-report] ablation %s\n%!"
              (Pool.failure_message f);
            []
        in
        let tbl = Hashtbl.create 16 in
        List.iter (fun (name, t) -> Hashtbl.replace tbl name t) times;
        (label, tbl))
      variants results
  in
  let rows =
    List.map
      (fun b ->
        b.Simbench.Bench.name
        :: List.map
             (fun (_, tbl) ->
               match Hashtbl.find_opt tbl b.Simbench.Bench.name with
               | Some t -> Printf.sprintf "%.4f" t
               | None -> "-")
             columns)
      benches
  in
  title ^ "\n\n"
  ^ Tablefmt.render ~header:("Benchmark (kernel s)" :: List.map fst columns) rows

let dbt_with f = Simbench.Engines.dbt_configured arch (f Sb_dbt.Config.default)

let chaining ?(config = default_config) ?opts () =
  sweep ?opts ~config
    ~title:
      "Ablation: DBT block chaining.  Chaining pays on direct control flow\n\
       (no block-cache lookup on the hot path); indirect branches cannot\n\
       chain and are unaffected."
    ~benches:
      [
        Simbench.Suite.intra_page_direct;
        Simbench.Suite.intra_page_indirect;
        Simbench.Suite.inter_page_direct;
        Simbench.Suite.inter_page_indirect;
      ]
    ~variants:
      [
        ("chain", dbt_with (fun c -> { c with Sb_dbt.Config.chain_direct = true }));
        ("no-chain", dbt_with (fun c -> { c with Sb_dbt.Config.chain_direct = false }));
        ( "chain+cross-page",
          dbt_with (fun c ->
              { c with Sb_dbt.Config.chain_direct = true; chain_across_pages = true }) );
      ]
    ()

let page_cache ?(config = default_config) ?opts () =
  let geometry l1 l2 lazy_ =
    dbt_with (fun c ->
        {
          c with
          Sb_dbt.Config.tlb_entries = l1;
          tlb_l2_entries = l2;
          lazy_tlb_flush = lazy_;
        })
  in
  sweep ?opts ~config
    ~title:
      "Ablation: page-cache geometry.  Cold accesses miss regardless (the\n\
       region exceeds every configuration); the victim level rescues\n\
       conflict misses; lazy flushing turns TLB Flush from O(entries) into\n\
       O(1)."
    ~benches:
      [
        Simbench.Suite.hot_memory_access;
        Simbench.Suite.cold_memory_access;
        Simbench.Suite.tlb_eviction;
        Simbench.Suite.tlb_flush;
      ]
    ~variants:
      [
        ("64/none/eager", geometry 64 0 false);
        ("256/1k/eager", geometry 256 1024 false);
        ("256/1k/lazy", geometry 256 1024 true);
        ("1k/4k/lazy", geometry 1024 4096 true);
      ]
    ()

let optimiser ?(config = default_config) ?opts () =
  let passes n = dbt_with (fun c -> { c with Sb_dbt.Config.opt_passes = n }) in
  sweep ?opts ~config
    ~title:
      "Ablation: optimiser pass budget.  More passes cost translation time\n\
       (visible on the self-modifying Code Generation benchmarks, which\n\
       retranslate every iteration) and buy better emitted code (visible\n\
       where blocks are reused)."
    ~benches:
      [
        Simbench.Suite.small_blocks;
        Simbench.Suite.large_blocks;
        Simbench.Suite.intra_page_direct;
        Simbench.Suite.hot_memory_access;
      ]
    ~variants:
      [ ("O0", passes 0); ("O1", passes 1); ("O2", passes 2); ("O4", passes 4) ]
    ()

let vm_exit ?(config = default_config) ?opts () =
  let virt rounds =
    match arch with
    | Sb_isa.Arch_sig.Sba ->
      (module Sb_virt.Virt.Make_configured
                (Sb_arch_sba.Arch)
                (struct
                  let config =
                    { Sb_virt.Virt.Config.vm_exit_rounds = rounds;
                      name_suffix = Printf.sprintf "virt%d" rounds }
                end) : Sb_sim.Engine.ENGINE)
    | Sb_isa.Arch_sig.Vlx -> assert false
  in
  sweep ?opts ~iters:2_000 ~config
    ~title:
      "Ablation: virtualization world-switch cost.  Only the trap-and-\n\
       emulate operations scale with the exit cost; guest-speed operations\n\
       (syscalls, hot memory) are flat — the KVM signature of Figure 7."
    ~benches:
      [
        Simbench.Suite.memory_mapped_device;
        Simbench.Suite.undefined_instruction;
        Simbench.Suite.external_software_interrupt;
        Simbench.Suite.system_call;
        Simbench.Suite.hot_memory_access;
      ]
    ~variants:
      [
        ("native (0)", (virt 0 :> Sb_sim.Engine.t));
        ("exit=32", (virt 32 :> Sb_sim.Engine.t));
        ("exit=96", (virt 96 :> Sb_sim.Engine.t));
        ("exit=256", (virt 256 :> Sb_sim.Engine.t));
      ]
    ()

let predecode ?(config = default_config) ?opts () =
  let interp predecode =
    Simbench.Engines.interp_configured arch
      { Sb_interp.Interp.Config.default with Sb_interp.Interp.Config.predecode }
  in
  sweep ?opts ~config
    ~title:
      "Ablation: interpreter pre-decoding.  The decode cache pays off\n\
       everywhere except under self-modifying code, where it must be\n\
       invalidated and rebuilt."
    ~benches:
      [
        Simbench.Suite.small_blocks;
        Simbench.Suite.intra_page_direct;
        Simbench.Suite.hot_memory_access;
      ]
    ~variants:[ ("predecode", interp true); ("decode-always", interp false) ]
    ()

let traces ?(config = default_config) ?opts () =
  let trace threshold blocks =
    dbt_with (fun c ->
        { c with Sb_dbt.Config.trace_threshold = threshold; max_trace_blocks = blocks })
  in
  sweep ?opts ~config
    ~title:
      "Ablation: hot-trace superblocks.  Traces pay on direct control flow\n\
       (one dispatch covers the whole loop body, optimised across seams);\n\
       indirect branches never chain, so no trace forms and the column is\n\
       flat.  Self-modifying code bounds the invalidation overhead: every\n\
       rewrite tears the trace down and re-forms it."
    ~benches:
      [
        Simbench.Suite.intra_page_direct;
        Simbench.Suite.inter_page_direct;
        Simbench.Suite.intra_page_indirect;
        Simbench.Suite.small_blocks;
      ]
    ~variants:
      [
        ("no-traces", trace 0 8);
        ("thr=16 (default)", trace 16 8);
        ("thr=4", trace 4 8);
        ("thr=16/max=4", trace 16 4);
      ]
    ()

let threaded ?(config = default_config) ?opts () =
  let backend threaded reg_cache =
    dbt_with (fun c -> { c with Sb_dbt.Config.threaded; reg_cache })
  in
  sweep ?opts ~config
    ~title:
      "Ablation: token-threaded code generation (docs/threaded.md).  The\n\
       flat opstream and micro-TLB fast paths pay on compute-dense kernels\n\
       (no per-uop closure dispatch, no bus call per access); the middle\n\
       column isolates the trace-scope register cache from the threading\n\
       itself.  Self-modifying code bounds the retranslation cost of the\n\
       denser encoding."
    ~benches:
      [
        Simbench.Suite.intra_page_direct;
        Simbench.Suite.inter_page_direct;
        Simbench.Suite.hot_memory_access;
        Simbench.Suite.small_blocks;
      ]
    ~variants:
      [
        ("closure", backend false false);
        ("threaded/no-regcache", backend true false);
        ("threaded (default)", backend true true);
      ]
    ()

let all ?(config = default_config) ?opts () =
  String.concat "\n\n"
    [
      chaining ~config ?opts ();
      page_cache ~config ?opts ();
      optimiser ~config ?opts ();
      traces ~config ?opts ();
      threaded ~config ?opts ();
      vm_exit ~config ?opts ();
      predecode ~config ?opts ();
    ]
