module Tablefmt = Sb_util.Tablefmt
module Stats = Sb_util.Stats
module Pool = Sb_jobs.Pool
module Cache = Sb_jobs.Cache

type config = {
  scale : int;
  workload_iters : int;
  repeats : int;
  spec_density_iters : int;
  switch_at : Simbench.Checkpoint.point option;
}

let default_config =
  {
    scale = 2_000;
    workload_iters = 60;
    repeats = 2;
    spec_density_iters = 10;
    switch_at = None;
  }

let quick_config =
  {
    scale = 100_000;
    workload_iters = 5;
    repeats = 1;
    spec_density_iters = 6;
    switch_at = None;
  }

let switch_name = function
  | None -> "cold"
  | Some p -> Simbench.Checkpoint.point_to_string p

type run_opts = {
  jobs : int;
  cache_dir : string option;
  deadline : float option;
  retries : int;
}

let sequential = { jobs = 1; cache_dir = None; deadline = None; retries = 0 }

let arch_label = function
  | Sb_isa.Arch_sig.Sba -> "ARM Guest (SBA-32)"
  | Sb_isa.Arch_sig.Vlx -> "x86 Guest (VLX-32)"

let arch_name = function
  | Sb_isa.Arch_sig.Sba -> "sba"
  | Sb_isa.Arch_sig.Vlx -> "vlx"

(* ------------------------------------------------------------------ *)
(* Measurement cells                                                    *)
(* ------------------------------------------------------------------ *)

type row = {
  row_cell : string;  (** benchmark or workload name *)
  row_engine : string;
  row_arch : string;
  row_iters : int;
  row_repeats : int;
  row_seconds : float;  (** minimum across repeats *)
  row_mean_seconds : float;
  row_samples : float list;  (** raw per-repeat kernel seconds, run order *)
  row_kernel_insns : int;
  row_perf : (string * int) list;
  row_status : string;
      (** ["ok"], ["retried <n>"], ["failed"], ["timeout"], ["quarantined"] *)
  row_note : string;  (** failure detail; empty when ok *)
}

type cell_kind = [ `Suite | `Workloads of int ]

type key = {
  k_arch : Sb_isa.Arch_sig.arch_id;
  k_dbt : Sb_dbt.Config.t;
  k_scale : int;
  k_repeats : int;
  k_kind : cell_kind;
  k_switch : string;  (** {!switch_name}: cold and fast-forwarded cells
                          are distinct measurements *)
}

let memo : (key, row list) Hashtbl.t = Hashtbl.create 64

(* the projected (name, seconds) lists are memoized too, so repeat calls
   return the physically same list (tests rely on [==] to prove no
   re-measurement happened) *)
let times_memo : (key, (string * float) list) Hashtbl.t = Hashtbl.create 64

let reset_memo () =
  Hashtbl.reset memo;
  Hashtbl.reset times_memo

(* every measured cell of the current process, for --json output; keyed to
   dedup re-reads of memoized cells *)
let records : (string, row) Hashtbl.t = Hashtbl.create 256

let reset_records () = Hashtbl.reset records

let record rows =
  List.iter
    (fun r ->
      let k = String.concat "|" [ r.row_engine; r.row_arch; r.row_cell ] in
      if not (Hashtbl.mem records k) then Hashtbl.add records k r)
    rows

let recorded () =
  List.sort compare (Hashtbl.fold (fun _ r acc -> r :: acc) records [])

let times_of_repeats ~repeats f =
  let rec go acc n = if n = 0 then List.rev acc else go (f () :: acc) (n - 1) in
  go [] (max 1 repeats)

let row_of ~label ~arch ~repeats ~cell run1 =
  let first = ref None in
  let times =
    times_of_repeats ~repeats (fun () ->
        let o = run1 () in
        if !first = None then first := Some o;
        o.Simbench.Harness.kernel_seconds)
  in
  let o = Option.get !first in
  {
    row_cell = cell;
    row_engine = label;
    row_arch = arch_name arch;
    row_iters = o.Simbench.Harness.iters;
    row_repeats = max 1 repeats;
    row_seconds = Stats.min_of_repeats times;
    row_mean_seconds = Stats.mean times;
    row_samples = times;
    row_kernel_insns = o.Simbench.Harness.kernel_insns;
    row_perf =
      (match o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf with
      | None -> []
      | Some p ->
        List.map
          (fun (c, n) -> (Sb_sim.Perf.to_string c, n))
          (Sb_sim.Perf.to_alist p));
    row_status = "ok";
    row_note = "";
  }

(* ------------------------------------------------------------------ *)
(* Failure as data: a cell the pool could not produce becomes rows with  *)
(* a non-ok status instead of an exception that sinks the whole run.     *)
(* ------------------------------------------------------------------ *)

let status_of_failure (f : Pool.failure) =
  match f.Pool.fl_kind with
  | Pool.Crashed -> "failed"
  | Pool.Timed_out -> "timeout"
  | Pool.Quarantined -> "quarantined"
  | Pool.Cancelled -> "cancelled"

let failure_row ~arch ~label ~cell (f : Pool.failure) =
  {
    row_cell = cell;
    row_engine = label;
    row_arch = arch_name arch;
    row_iters = 0;
    row_repeats = 0;
    row_seconds = nan;
    row_mean_seconds = nan;
    row_samples = [];
    row_kernel_insns = 0;
    row_perf = [];
    row_status = status_of_failure f;
    row_note = f.Pool.fl_detail;
  }

let mark_retried n rows =
  List.map (fun r -> { r with row_status = Printf.sprintf "retried %d" n }) rows

let version_label dbt_config =
  match List.find_opt (fun (_, c) -> c = dbt_config) Sb_dbt.Version.all with
  | Some (name, _) -> "dbt:" ^ name
  | None -> "dbt:custom"

(* Checkpoint store for fast-forwarded cells: shares the result cache's
   directory, so one --cache DIR gets both row caching and warm boots.
   Opened inside the worker (workers share it through the filesystem, the
   cache layer's atomic writes make that safe), and only when a switch
   point is set — a cold grid never touches checkpoint machinery. *)
let checkpoint_store ~config ~ckpt_dir =
  match (config.switch_at, ckpt_dir) with
  | Some _, Some dir -> Some (Simbench.Checkpoint.open_store ~dir)
  | _ -> None

(* runs inside a pool worker: must touch no shared mutable state *)
let compute_cell ~config ~ckpt_dir ~arch ~kind dbt_config =
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.dbt_configured arch dbt_config in
  let label = version_label dbt_config in
  let checkpoints = checkpoint_store ~config ~ckpt_dir in
  match kind with
  | `Suite ->
    List.map
      (fun bench ->
        row_of ~label ~arch ~repeats:config.repeats
          ~cell:bench.Simbench.Bench.name (fun () ->
            Simbench.Harness.run ~scale:config.scale ?switch_at:config.switch_at
              ?checkpoints ~support ~engine bench))
      Simbench.Suite.all
  | `Workloads iters ->
    List.map
      (fun w ->
        row_of ~label ~arch ~repeats:config.repeats
          ~cell:w.Sb_workloads.Workloads.name (fun () ->
            Sb_workloads.Workloads.run ~iters ?switch_at:config.switch_at
              ?checkpoints ~support ~engine w))
      Sb_workloads.Workloads.all

let key_of ~config ~arch ~kind dbt_config =
  {
    k_arch = arch;
    k_dbt = dbt_config;
    k_scale = config.scale;
    k_repeats = config.repeats;
    k_kind = kind;
    k_switch = switch_name config.switch_at;
  }

let cell_fingerprint ~config ~arch ~kind dbt_config =
  Cache.fingerprint
    ( "simbench-cell",
      arch,
      dbt_config,
      kind,
      config.scale,
      config.repeats,
      switch_name config.switch_at )

let cache_of opts = Option.map (fun dir -> Cache.create ~dir) opts.cache_dir

let kind_name = function `Suite -> "suite" | `Workloads _ -> "workloads"

let run_pool ~opts tasks =
  Pool.run ~jobs:opts.jobs ?cache:(cache_of opts) ?deadline:opts.deadline
    ~retries:opts.retries tasks

let kind_cells = function
  | `Suite -> List.map (fun b -> b.Simbench.Bench.name) Simbench.Suite.all
  | `Workloads _ ->
    List.map
      (fun w -> w.Sb_workloads.Workloads.name)
      Sb_workloads.Workloads.all

(* Compute any not-yet-memoized cells, farming them out to the pool.  One
   cell = one (dbt-version config, arch, suite-or-workloads) sweep; cells
   are the parallel unit because they are fully independent and their
   results are small marshallable rows. *)
let prefetch ?(opts = sequential) ~config cells =
  let seen = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun (arch, kind, dbt) ->
        let k = key_of ~config ~arch ~kind dbt in
        if Hashtbl.mem memo k || Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      cells
  in
  if todo <> [] then begin
    let tasks =
      List.map
        (fun (arch, kind, dbt) ->
          Pool.task
            ~key:(cell_fingerprint ~config ~arch ~kind dbt)
            ~label:
              (Printf.sprintf "%s/%s/%s" (version_label dbt) (arch_name arch)
                 (kind_name kind))
            (fun () ->
              compute_cell ~config ~ckpt_dir:opts.cache_dir ~arch ~kind dbt))
        todo
    in
    let results = run_pool ~opts tasks in
    List.iter2
      (fun (arch, kind, dbt) outcome ->
        let rows =
          match outcome with
          | Pool.Done rows -> rows
          | Pool.Retried (rows, n) -> mark_retried n rows
          | Pool.Failed f ->
            (* the cell is gone (crash/timeout/quarantine) but the run is
               not: every bench of the cell becomes a non-ok placeholder
               row, so figures render with gaps and --json records what
               happened instead of the whole experiment aborting *)
            Printf.eprintf "[sb-report] cell %s\n%!" (Pool.failure_message f);
            List.map
              (fun cell -> failure_row ~arch ~label:(version_label dbt) ~cell f)
              (kind_cells kind)
        in
        Hashtbl.replace memo (key_of ~config ~arch ~kind dbt) rows)
      todo results
  end

let cell_rows ?opts ~config ~arch ~kind dbt_config =
  let k = key_of ~config ~arch ~kind dbt_config in
  let rows =
    match Hashtbl.find_opt memo k with
    | Some rows -> rows
    | None ->
      prefetch ?opts ~config [ (arch, kind, dbt_config) ];
      Hashtbl.find memo k
  in
  record rows;
  rows

let times_for ?opts ~arch ~config ~kind dbt_config =
  let k = key_of ~config ~arch ~kind dbt_config in
  match Hashtbl.find_opt times_memo k with
  | Some times ->
    record (Hashtbl.find memo k);
    times
  | None ->
    let times =
      List.map
        (fun r -> (r.row_cell, r.row_seconds))
        (cell_rows ?opts ~config ~arch ~kind dbt_config)
    in
    Hashtbl.replace times_memo k times;
    times

let suite_times_for_version ?opts ~arch ~config dbt_config =
  times_for ?opts ~arch ~config ~kind:`Suite dbt_config

let workload_times_for_version ?opts ~arch ~config dbt_config =
  times_for ?opts ~arch ~config
    ~kind:(`Workloads config.workload_iters)
    dbt_config

(* name -> seconds lookup table: the O(n^2) List.assoc aggregation the
   figures used to do is now one table build + O(1) probes *)
let times_tbl rows =
  let t = Hashtbl.create (List.length rows * 2) in
  List.iter (fun r -> Hashtbl.replace t r.row_cell r.row_seconds) rows;
  t

let tfind tbl name = try Hashtbl.find tbl name with Not_found -> nan

(* The twenty release names map onto a handful of distinct configurations;
   measure each configuration once. *)
let version_names = Sb_dbt.Version.names

let config_of_version name =
  match Sb_dbt.Version.find name with
  | Some c -> c
  | None -> invalid_arg ("unknown version " ^ name)

let baseline_dbt = config_of_version Sb_dbt.Version.baseline_name

let version_cells ~arch ~kind () =
  (arch, kind, baseline_dbt)
  :: List.map (fun v -> (arch, kind, config_of_version v)) version_names

(* ------------------------------------------------------------------ *)
(* Paper-engine columns (Figures 7 and the extension table)             *)
(* ------------------------------------------------------------------ *)

(* runs inside a pool worker, like [compute_cell].  With a switch point
   set, the first bench run of the grid fast-forwards setup once and every
   later (engine, repeat) cell of the same bench restores that checkpoint:
   the store key excludes the timed engine (per-insn engines share one
   interpreter-produced boot; the block-granular DBT keeps its own, see
   {!Simbench.Harness.run}). *)
let compute_column ~config ~ckpt_dir ~arch ~benches (label, engine) =
  let support = Simbench.Engines.support arch in
  let checkpoints = checkpoint_store ~config ~ckpt_dir in
  List.map
    (fun bench ->
      row_of ~label ~arch ~repeats:config.repeats ~cell:bench.Simbench.Bench.name
        (fun () ->
          Simbench.Harness.run ~scale:config.scale ?switch_at:config.switch_at
            ?checkpoints ~support ~engine bench))
    benches

let column_fingerprint ~config ~arch ~tag (label, engine) =
  Cache.fingerprint
    ( "simbench-column",
      tag,
      label,
      Sb_sim.Engine.features engine,
      arch,
      config.scale,
      config.repeats,
      switch_name config.switch_at )

let engine_columns ~opts ~config ~arch ~tag ~benches engines =
  let tasks =
    List.map
      (fun (label, engine) ->
        Pool.task
          ~key:(column_fingerprint ~config ~arch ~tag (label, engine))
          ~label:(Printf.sprintf "%s/%s/%s" tag label (arch_name arch))
          (fun () ->
            compute_column ~config ~ckpt_dir:opts.cache_dir ~arch ~benches
              (label, engine)))
      engines
  in
  let results = run_pool ~opts tasks in
  List.map2
    (fun (label, _) outcome ->
      let rows =
        match outcome with
        | Pool.Done rows -> rows
        | Pool.Retried (rows, n) -> mark_retried n rows
        | Pool.Failed f ->
          Printf.eprintf "[sb-report] column %s\n%!" (Pool.failure_message f);
          List.map
            (fun b -> failure_row ~arch ~label ~cell:b.Simbench.Bench.name f)
            benches
      in
      record rows;
      (label, times_tbl rows))
    engines results

(* ------------------------------------------------------------------ *)
(* Figure 2                                                             *)
(* ------------------------------------------------------------------ *)

let fig2 ?(config = default_config) ?(opts = sequential) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let kind = `Workloads config.workload_iters in
  prefetch ~opts ~config (version_cells ~arch ~kind ());
  let base = times_tbl (cell_rows ~config ~arch ~kind baseline_dbt) in
  let per_version =
    List.map
      (fun v ->
        let tbl =
          times_tbl (cell_rows ~config ~arch ~kind (config_of_version v))
        in
        let speedups = Hashtbl.create 16 in
        Hashtbl.iter
          (fun name t ->
            Hashtbl.replace speedups name
              (Stats.speedup ~baseline:(tfind base name) t))
          tbl;
        (v, speedups))
      version_names
  in
  let series_of name = List.map (fun (_, s) -> tfind s name) per_version in
  let overall =
    List.map
      (fun (_, speedups) ->
        Stats.weighted_geomean
          (List.map
             (fun w ->
               ( tfind speedups w.Sb_workloads.Workloads.name,
                 w.Sb_workloads.Workloads.weight ))
             Sb_workloads.Workloads.all))
      per_version
  in
  "Figure 2: relative performance of sjeng and mcf and the overall SPEC\n\
   rating (weighted geometric mean) across QEMU-DBT versions (v1.7.0 = 1.0)\n\n"
  ^ Tablefmt.render_series ~x_label:"version" ~x_values:version_names
      [
        ("sjeng", series_of "sjeng");
        ("SPEC (overall)", overall);
        ("mcf", series_of "mcf");
      ]

(* ------------------------------------------------------------------ *)
(* Figure 3                                                             *)
(* ------------------------------------------------------------------ *)

let fig3 ?(config = default_config) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.interp arch in
  let spec = Spec_density.measure ~arch ~iters:config.spec_density_iters () in
  let rows =
    List.map
      (fun bench ->
        let outcome = Simbench.Harness.run ~scale:config.scale ~support ~engine bench in
        [
          bench.Simbench.Bench.name
          ^ (if bench.Simbench.Bench.platform_specific then " +" else "");
          Simbench.Category.name bench.Simbench.Bench.category;
          string_of_int bench.Simbench.Bench.default_iters;
          Tablefmt.sci_cell (Simbench.Harness.density outcome);
          Tablefmt.sci_cell
            (Spec_density.density spec ~bench_name:bench.Simbench.Bench.name);
        ])
      Simbench.Suite.all
  in
  "Figure 3: the SimBench suite with default iteration counts and measured\n\
   operation densities (tested operations per kernel instruction), for the\n\
   suite itself and across the SPEC-analog workloads.  '+' marks benchmarks\n\
   with significant platform-specific portions.\n\n"
  ^ Tablefmt.render
      ~header:[ "Benchmark"; "Category"; "Iterations"; "SimBench"; "SPEC" ]
      rows

(* ------------------------------------------------------------------ *)
(* Figure 4                                                             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  let engines = Simbench.Engines.paper_set Sb_isa.Arch_sig.Sba in
  let feature_keys =
    [
      "Execution Model";
      "Memory Access";
      "Code Generation";
      "Control Flow";
      "Interrupts";
      "Synchronous Exceptions";
      "Undefined Instruction";
    ]
  in
  let rows =
    List.map
      (fun key ->
        key
        :: List.map
             (fun (_, engine) ->
               match List.assoc_opt key (Sb_sim.Engine.features engine) with
               | Some v -> v
               | None -> "-")
             engines)
      feature_keys
  in
  let align =
    Tablefmt.Left :: List.map (fun _ -> Tablefmt.Left) engines
  in
  "Figure 4: implementation techniques of the evaluated platforms.\n\n"
  ^ Tablefmt.render ~align ~header:("Feature" :: List.map fst engines) rows

(* ------------------------------------------------------------------ *)
(* Figure 5                                                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  let rows =
    [
      [ "Host"; Printf.sprintf "OCaml %s (%s)" Sys.ocaml_version Sys.os_type ];
      [ "Word size"; string_of_int Sys.word_size ];
      [ "Guest ISAs"; "SBA-32 (ARM analog), VLX-32 (x86 analog)" ];
      [ "Guest RAM"; "32 MiB" ];
      [
        "Platforms";
        "dbt / interp / detailed / virt / native (QEMU-DBT / SimIt-ARM / \
         Gem5 / QEMU-KVM / hardware analogs)";
      ];
    ]
  in
  let align = [ Tablefmt.Left; Tablefmt.Left ] in
  "Figure 5: experimental environment (the paper's hardware table; here the\n\
   'hardware' is the simulator substrate itself, see DESIGN.md).\n\n"
  ^ Tablefmt.render ~align ~header:[ "Property"; "Value" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 6                                                             *)
(* ------------------------------------------------------------------ *)

let fig6_arch ~config arch =
  let base = times_tbl (cell_rows ~config ~arch ~kind:`Suite baseline_dbt) in
  let per_version =
    List.map
      (fun v ->
        times_tbl (cell_rows ~config ~arch ~kind:`Suite (config_of_version v)))
      version_names
  in
  let speedup_series bench_name =
    List.map
      (fun tbl ->
        Stats.speedup ~baseline:(tfind base bench_name) (tfind tbl bench_name))
      per_version
  in
  let category_block category =
    let benches = Simbench.Suite.by_category category in
    let series =
      List.map
        (fun b -> (b.Simbench.Bench.name, speedup_series b.Simbench.Bench.name))
        benches
    in
    Printf.sprintf "%s — %s\n\n%s\n" (arch_label arch)
      (Simbench.Category.name category)
      (Tablefmt.render_series ~x_label:"version" ~x_values:version_names series)
  in
  String.concat "\n" (List.map category_block Simbench.Category.all)

let fig6 ?(config = default_config) ?(opts = sequential) () =
  prefetch ~opts ~config
    (version_cells ~arch:Sb_isa.Arch_sig.Sba ~kind:`Suite ()
    @ version_cells ~arch:Sb_isa.Arch_sig.Vlx ~kind:`Suite ());
  "Figure 6: SimBench speedups per category across QEMU-DBT versions\n\
   (v1.7.0 = 1.0; larger is faster).\n\n"
  ^ fig6_arch ~config Sb_isa.Arch_sig.Sba
  ^ "\n"
  ^ fig6_arch ~config Sb_isa.Arch_sig.Vlx

(* ------------------------------------------------------------------ *)
(* Figure 7                                                             *)
(* ------------------------------------------------------------------ *)

let fig7_arch ~config ~opts arch =
  let engines = Simbench.Engines.paper_set arch in
  let columns =
    engine_columns ~opts ~config ~arch ~tag:"fig7" ~benches:Simbench.Suite.all
      engines
  in
  let rows =
    List.map
      (fun bench ->
        let name = bench.Simbench.Bench.name in
        let iters =
          max 10 (bench.Simbench.Bench.default_iters / config.scale)
        in
        (name :: string_of_int iters
        :: List.map
             (fun (_, tbl) -> Printf.sprintf "%.4f" (tfind tbl name))
             columns))
      Simbench.Suite.all
  in
  Printf.sprintf "%s (kernel seconds; iterations = Figure 3 counts / %d)\n\n%s"
    (arch_label arch) config.scale
    (Tablefmt.render
       ~header:(("Benchmark" :: "Iters" :: List.map fst columns))
       rows)

let fig7 ?(config = default_config) ?(opts = sequential) () =
  "Figure 7: SimBench runtimes on every platform.\n\n"
  ^ fig7_arch ~config ~opts Sb_isa.Arch_sig.Sba
  ^ "\n\n"
  ^ fig7_arch ~config ~opts Sb_isa.Arch_sig.Vlx

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let fig8 ?(config = default_config) ?(opts = sequential) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let wl = `Workloads config.workload_iters in
  prefetch ~opts ~config
    (version_cells ~arch ~kind:`Suite () @ version_cells ~arch ~kind:wl ());
  let base_suite = times_tbl (cell_rows ~config ~arch ~kind:`Suite baseline_dbt) in
  let base_workloads = times_tbl (cell_rows ~config ~arch ~kind:wl baseline_dbt) in
  let geo ~kind ~base version =
    let rows = cell_rows ~config ~arch ~kind (config_of_version version) in
    Stats.geomean
      (List.map
         (fun r ->
           Stats.speedup ~baseline:(tfind base r.row_cell) r.row_seconds)
         rows)
  in
  "Figure 8: geometric-mean speedup of the SPEC-analog workloads and of\n\
   SimBench across QEMU-DBT versions (v1.7.0 = 1.0).\n\n"
  ^ Tablefmt.render_series ~x_label:"version" ~x_values:version_names
      [
        ("SPEC", List.map (geo ~kind:wl ~base:base_workloads) version_names);
        ("SimBench", List.map (geo ~kind:`Suite ~base:base_suite) version_names);
      ]

let extensions ?(config = default_config) ?(opts = sequential) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let engines = Simbench.Engines.paper_set arch in
  let columns =
    engine_columns ~opts ~config ~arch ~tag:"ext"
      ~benches:Simbench.Suite_ext.all engines
  in
  let rows =
    List.map
      (fun bench ->
        bench.Simbench.Bench.name
        :: List.map
             (fun (_, tbl) ->
               Printf.sprintf "%.4f" (tfind tbl bench.Simbench.Bench.name))
             columns)
      Simbench.Suite_ext.all
  in
  "Extension benchmarks (the paper's future work): kernel seconds.\n\n"
  ^ Tablefmt.render
      ~header:("Benchmark" :: List.map fst engines)
      rows

(* ------------------------------------------------------------------ *)
(* Synthetic fault cells                                                 *)
(* ------------------------------------------------------------------ *)

(* A deliberately healthy / crashing / hanging trio driven through the
   pool: proves end-to-end that a bench run with poisoned cells completes
   under the deadline, exits cleanly, and reports the failures as per-cell
   status data.  The CI chaos smoke job runs this with --deadline and
   greps the JSON for the "failed" and "timeout" statuses. *)
let synthetic_faults ?(opts = sequential) () =
  let deadline = match opts.deadline with Some d -> d | None -> 10.0 in
  (* at least two workers so the healthy cell finishes while the hung one
     is still burning its deadline *)
  let jobs = max 2 opts.jobs in
  let tasks =
    [
      ( "ok",
        Pool.task ~label:"synthetic/ok" (fun () ->
            let t0 = Unix.gettimeofday () in
            let rec spin n acc =
              if n = 0 then acc else spin (n - 1) (acc lxor n)
            in
            ignore (spin 5_000_000 0);
            Unix.gettimeofday () -. t0) );
      ( "crash",
        Pool.task ~label:"synthetic/crash" (fun () ->
            failwith "injected crash (synthetic-faults)") );
      ( "hang",
        Pool.task ~label:"synthetic/hang" (fun () ->
            Unix.sleepf 600.0;
            nan) );
    ]
  in
  let stats = Pool.stats () in
  let outcomes =
    Pool.run ~jobs ~stats ~deadline ~retries:opts.retries (List.map snd tasks)
  in
  let base cell =
    {
      row_cell = cell;
      row_engine = "synthetic";
      row_arch = "host";
      row_iters = 1;
      row_repeats = 1;
      row_seconds = nan;
      row_mean_seconds = nan;
      row_samples = [];
      row_kernel_insns = 0;
      row_perf = [];
      row_status = "ok";
      row_note = "";
    }
  in
  let rows =
    List.map2
      (fun (cell, _) outcome ->
        match outcome with
        | Pool.Done v ->
          { (base cell) with
            row_seconds = v;
            row_mean_seconds = v;
            row_samples = [ v ] }
        | Pool.Retried (v, n) ->
          { (base cell) with
            row_seconds = v;
            row_mean_seconds = v;
            row_samples = [ v ];
            row_status = Printf.sprintf "retried %d" n }
        | Pool.Failed f ->
          { (base cell) with
            row_iters = 0;
            row_repeats = 0;
            row_status = status_of_failure f;
            row_note = f.Pool.fl_detail })
      tasks outcomes
  in
  record rows;
  let table =
    Tablefmt.render
      ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ]
      ~header:[ "Cell"; "Status"; "Seconds"; "Note" ]
      (List.map
         (fun r ->
           [
             r.row_cell;
             r.row_status;
             (if Float.is_nan r.row_seconds then "-"
              else Printf.sprintf "%.4f" r.row_seconds);
             r.row_note;
           ])
         rows)
  in
  Printf.sprintf
    "Synthetic fault harness check (deadline %.1fs, %d jobs):\n\n\
     %s\n\
     pool: %d executed, %d failed, %d timed out, %d retried, %d quarantined\n"
    deadline jobs table stats.Pool.executed stats.Pool.failed
    stats.Pool.timed_out stats.Pool.retried stats.Pool.quarantined

let all ?(config = default_config) ?(opts = sequential) () =
  (* one prefetch of the union before rendering: with -j N the whole
     version sweep (both kinds, both guests) fills the pool at once *)
  prefetch ~opts ~config
    (version_cells ~arch:Sb_isa.Arch_sig.Sba ~kind:`Suite ()
    @ version_cells ~arch:Sb_isa.Arch_sig.Vlx ~kind:`Suite ()
    @ version_cells ~arch:Sb_isa.Arch_sig.Sba
        ~kind:(`Workloads config.workload_iters) ());
  String.concat "\n\n"
    [
      fig2 ~config ~opts ();
      fig3 ~config ();
      fig4 ();
      fig5 ();
      fig6 ~config ~opts ();
      fig7 ~config ~opts ();
      fig8 ~config ~opts ();
      extensions ~config ~opts ();
    ]
