module SI = Sb_arch_sba.Insn
module VI = Sb_arch_vlx.Insn
module Uop = Sb_isa.Uop
open Sb_asm.Assembler

type outcome = {
  engine : string;
  regs : int list;
  flags : bool * bool * bool * bool;
  memory_digest : string;
  counters : (string * int) list;
  snapshots : (int * string) list;
  halted : bool;
}

type divergence = {
  seed : int option;
  reference_engine : string;
  diverging_engine : string;
  detail : string;
}

let architectural_counters =
  [
    Sb_sim.Perf.Insns;
    Sb_sim.Perf.Loads;
    Sb_sim.Perf.Stores;
    Sb_sim.Perf.Branch_direct;
    Sb_sim.Perf.Branch_indirect;
    Sb_sim.Perf.Branch_taken;
    Sb_sim.Perf.Svc_taken;
    Sb_sim.Perf.Undef_insn;
    Sb_sim.Perf.Data_abort;
    Sb_sim.Perf.Prefetch_abort;
    Sb_sim.Perf.Irq_taken;
    Sb_sim.Perf.Exceptions_total;
  ]

(* cheap rolling digest; we only need equality, not cryptography *)
let digest_bytes bytes =
  let h = ref 0x3BF29CE484222325 in
  Bytes.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001B3 land max_int)
    bytes;
  Printf.sprintf "%016x" !h

let default_mem_window =
  (Simbench.Platform.sbp_ref.Simbench.Platform.scratch_base, 16 * 4096)

let run_outcome ~engine ?(mem_window = default_mem_window) ?(max_insns = 10_000_000)
    ?(checkpoints = []) ?prepare program =
  let machine = Sb_sim.Machine.create () in
  Sb_sim.Machine.load_program machine program;
  (* arm deterministic machine-level faults (Sb_fault) after the image is
     loaded, before the engine runs *)
  (match prepare with Some f -> f machine | None -> ());
  (* With checkpoints the program runs in segments, and a full-machine
     snapshot digest is taken at each boundary (recorded against the
     actual retired-instruction count, which block-granular engines may
     overshoot).  Architectural counters are summed over the segments, so
     they equal the single-run values regardless of segmentation. *)
  let checkpoints =
    List.sort_uniq compare
      (List.filter (fun n -> n > 0 && n < max_insns) checkpoints)
  in
  let retired = ref 0 in
  let segments = ref [] in
  let halted = ref false in
  let run budget =
    let r = Sb_sim.Engine.run engine ~max_insns:budget machine in
    retired := !retired + Sb_sim.Run_result.insns r;
    segments := r :: !segments;
    if r.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted then halted := true
  in
  let snapshots =
    List.filter_map
      (fun target ->
        if !halted || target <= !retired then None
        else begin
          run (target - !retired);
          if !halted then None
          else
            Some (!retired, Sb_sim.Snapshot.digest (Sb_sim.Snapshot.save machine))
        end)
      checkpoints
  in
  if not !halted then run (max_insns - !retired);
  let addr, len = mem_window in
  let window = Sb_mem.Phys_mem.blit_out (Sb_mem.Bus.ram machine.Sb_sim.Machine.bus) ~addr ~len in
  {
    (* name the wrapper, not whatever engine it delegates to internally *)
    engine = Sb_sim.Engine.name engine;
    regs = Array.to_list machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs;
    flags =
      ( machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.flag_n,
        machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.flag_z,
        machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.flag_c,
        machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.flag_v );
    memory_digest = digest_bytes window;
    counters =
      List.map
        (fun c ->
          ( Sb_sim.Perf.to_string c,
            List.fold_left
              (fun acc r ->
                acc + Sb_sim.Perf.get r.Sb_sim.Run_result.perf c)
              0 !segments ))
        architectural_counters;
    snapshots;
    halted = !halted;
  }

let first_difference ~nregs a b =
  let take n l = List.filteri (fun i _ -> i < n) l in
  if take nregs a.regs <> take nregs b.regs then
    Some
      (Printf.sprintf "registers differ: [%s] vs [%s]"
         (String.concat ";" (List.map string_of_int (take nregs a.regs)))
         (String.concat ";" (List.map string_of_int (take nregs b.regs))))
  else if a.flags <> b.flags then Some "status flags differ"
  else if a.memory_digest <> b.memory_digest then Some "memory window differs"
  else if a.halted <> b.halted then Some "stop reasons differ"
  else
    (* snapshot-diff: full-machine digests at matching retirement counts.
       Engines that overshoot a checkpoint (block-granular DBT) record it
       at a different count and are simply not joined there — the final
       state above still covers them. *)
    match
      List.find_map
        (fun (n, da) ->
          match List.assoc_opt n b.snapshots with
          | Some db when db <> da ->
            Some
              (Printf.sprintf "machine state diverges at checkpoint insn %d"
                 n)
          | _ -> None)
        a.snapshots
    with
    | Some d -> Some d
    | None ->
    List.fold_left2
      (fun acc (name, va) (_, vb) ->
        match acc with
        | Some _ -> acc
        | None ->
          if va <> vb then
            Some (Printf.sprintf "counter %s: %d vs %d" name va vb)
          else None)
      None a.counters b.counters

let compare_engines ~engines ?mem_window ?max_insns ?checkpoints
    ?(nregs = 16) ?prepare program =
  match engines with
  | [] -> invalid_arg "Verify.compare_engines: no engines"
  | first :: rest ->
    let reference =
      run_outcome ~engine:first ?mem_window ?max_insns ?checkpoints ?prepare
        program
    in
    let rec check = function
      | [] -> Ok reference
      | engine :: tail -> (
        let o =
          run_outcome ~engine ?mem_window ?max_insns ?checkpoints ?prepare
            program
        in
        match first_difference ~nregs reference o with
        | None -> check tail
        | Some detail ->
          Error
            {
              seed = None;
              reference_engine = reference.engine;
              diverging_engine = o.engine;
              detail;
            })
    in
    check rest

(* ------------------------------------------------------------------ *)
(* Random program generation                                           *)
(* ------------------------------------------------------------------ *)

let scratch = fst default_mem_window
let devid_base = Sb_sim.Machine.Map.devid_base

(* [gen n f] — n draws of [f], in order (unlike [List.init], whose
   evaluation order is unspecified; chunk generators consume the rng). *)
let gen n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f () :: acc) in
  go 0 []

(* Weave [extras] evenly through [chunks] so chaos traffic (Sb_fault's
   MMIO targets and invalidation storms) lands between ordinary work
   rather than bunched in a tail. *)
let interleave chunks extras =
  match extras with
  | [] -> List.concat chunks
  | _ ->
    let n = List.length chunks in
    let k = List.length extras in
    let step = max 1 (n / (k + 1)) in
    let out = ref [] in
    let remaining = ref extras in
    let take_extra () =
      match !remaining with
      | [] -> ()
      | e :: tl ->
        remaining := tl;
        out := e :: !out
    in
    List.iteri
      (fun i c ->
        out := c :: !out;
        if (i + 1) mod step = 0 then take_extra ())
      chunks;
    List.iter (fun e -> out := e :: !out) !remaining;
    List.concat (List.rev !out)

let random_sba_program ?(mmio_chunks = 0) ?(storm_chunks = 0) seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let n_chunks = 20 + Sb_util.Xorshift.int rng 60 in
  let chunks = ref [] in
  let add items = chunks := items :: !chunks in
  let insns l = List.map (fun i -> Insn i) l in
  let alu_ops =
    [|
      (fun a b c -> SI.Add (a, b, SI.Rm c));
      (fun a b c -> SI.Sub (a, b, SI.Rm c));
      (fun a b c -> SI.And_ (a, b, c));
      (fun a b c -> SI.Orr (a, b, c));
      (fun a b c -> SI.Xor (a, b, c));
      (fun a b c -> SI.Mul (a, b, c));
      (fun a b c -> SI.Lsl (a, b, SI.Rm c));
      (fun a b c -> SI.Lsr (a, b, SI.Rm c));
    |]
  in
  let conds = [| Uop.Eq; Uop.Ne; Uop.Lt; Uop.Ge; Uop.Ltu; Uop.Geu |] in
  let reg () = Sb_util.Xorshift.int rng 10 in
  for i = 0 to n_chunks - 1 do
    match Sb_util.Xorshift.int rng 11 with
    | 0 | 1 | 2 | 3 ->
      let f = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      add (insns [ f (reg ()) (reg ()) (reg ()) ])
    | 4 ->
      add (insns [ SI.Add (reg (), reg (), SI.Imm (Sb_util.Xorshift.int rng 4096 - 2048)) ])
    | 5 ->
      let skip = Printf.sprintf "vskip%d" i in
      let cond = conds.(Sb_util.Xorshift.int rng (Array.length conds)) in
      add
        (insns [ SI.Cmp (reg (), SI.Rm (reg ())); SI.Bcc (cond, skip) ]
        @ insns [ SI.Xor (reg (), reg (), reg ()) ]
        @ [ Label skip ])
    | 6 -> add (insns [ SI.Str (reg (), 12, Sb_util.Xorshift.int rng 500 * 4) ])
    | 7 -> add (insns [ SI.Ldr (reg (), 12, Sb_util.Xorshift.int rng 500 * 4) ])
    | 8 -> add (insns [ SI.Svc (i land 0xFF) ])
    | 9 -> add (insns [ SI.Strb (reg (), 12, (Sb_util.Xorshift.int rng 500 * 4) + (i land 3)) ])
    | _ ->
      (* bounded two-block loop with a fixed trip count: gives the
         trace-enabled DBT engines hot back-edges to stitch, so the sweep
         (and --validate-passes) exercises cross-block superblock IR *)
      let top = Printf.sprintf "vtop%d" i in
      let mid = Printf.sprintf "vmid%d" i in
      let f = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      let g = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      let iters = 6 + Sb_util.Xorshift.int rng 10 in
      add
        (insns [ SI.Movw (13, iters) ]
        @ [ Label top ]
        @ insns [ f (reg ()) (reg ()) (reg ()); SI.B mid ]
        @ [ Label mid ]
        @ insns
            [
              g (reg ()) (reg ()) (reg ());
              SI.Sub (13, 13, SI.Imm 1);
              SI.Cmp (13, SI.Imm 0);
              SI.Bcc (Uop.Ne, top);
            ])
  done;
  (* Chaos chunks are drawn strictly after the main body, so a (seed,
     mmio_chunks = 0, storm_chunks = 0) program is byte-identical to the
     pre-chaos generator output.  MMIO traffic targets the devid window —
     fully deterministic reads, plus a writable scratch register — via
     r10; faulted accesses vector to skip_handler like any data abort. *)
  let mmio_chunk () =
    if Sb_util.Xorshift.bool rng then
      insns [ SI.Ldr (reg (), 10, Sb_util.Xorshift.int rng 4 * 4) ]
    else insns [ SI.Str (reg (), 10, 4) ]
  in
  let storm_chunk () =
    if Sb_util.Xorshift.bool rng then insns [ SI.Tlbiall ]
    else insns [ SI.Tlbi (reg ()) ]
  in
  let chaos = gen mmio_chunks mmio_chunk @ gen storm_chunks storm_chunk in
  let init =
    List.concat
      (List.map (fun r -> SI.li r (Sb_util.Xorshift.u32 rng)) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
  in
  let slot target = [ Insn (SI.B target); Insn SI.Nop ] in
  SI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ insns (SI.la 0 "vectors" @ [ SI.Mcr (Sb_isa.Cregs.vbar, 0) ])
    @ insns init
    @ insns (SI.li 12 scratch)
    @ (if mmio_chunks > 0 then insns (SI.li 10 devid_base) else [])
    @ interleave (List.rev !chunks) chaos
    @ insns [ SI.Halt ]
    (* the system-call return address is already the next instruction *)
    @ [ Label "svc_handler" ]
    @ insns [ SI.Add (11, 11, SI.Imm 1); SI.Eret ]
    (* undefined instructions and data aborts skip the faulting insn *)
    @ [ Label "skip_handler" ]
    @ insns
        [
          SI.Add (11, 11, SI.Imm 1);
          SI.Mrc (0, Sb_isa.Cregs.elr);
          SI.Add (0, 0, SI.Imm 4);
          SI.Mcr (Sb_isa.Cregs.elr, 0);
          SI.Eret;
        ]
    @ (Label "vectors" :: slot "start")
    @ slot "skip_handler" @ slot "svc_handler" @ slot "start" @ slot "skip_handler"
    @ slot "start")

let random_vlx_program ?(mmio_chunks = 0) ?(storm_chunks = 0) seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let n = 20 + Sb_util.Xorshift.int rng 60 in
  let chunks = ref [] in
  let add items = chunks := items :: !chunks in
  let insns l = List.map (fun i -> Insn i) l in
  let reg () = Sb_util.Xorshift.int rng 4 in
  let ops = [| Uop.Add; Uop.Sub; Uop.And_; Uop.Orr; Uop.Xor; Uop.Mul; Uop.Lsl; Uop.Lsr |] in
  for i = 0 to n - 1 do
    match Sb_util.Xorshift.int rng 8 with
    | 0 | 1 | 2 ->
      let op = ops.(Sb_util.Xorshift.int rng (Array.length ops)) in
      add (insns [ VI.Alu_rr (op, reg (), reg (), reg ()) ])
    | 3 ->
      let op = ops.(Sb_util.Xorshift.int rng (Array.length ops)) in
      add (insns [ VI.Alu_ri (op, reg (), reg (), Sb_util.Xorshift.int rng 100000) ])
    | 4 ->
      let skip = Printf.sprintf "wskip%d" i in
      add
        (insns [ VI.Cmp_rr (reg (), reg ()); VI.Jcc (Uop.Ne, skip) ]
        @ insns [ VI.Alu_ri (Uop.Xor, reg (), reg (), 0xFF) ]
        @ [ Label skip ])
    | 5 -> add (insns [ VI.Store (reg (), 4, Sb_util.Xorshift.int rng 500 * 4) ])
    | 6 -> add (insns [ VI.Load (reg (), 4, Sb_util.Xorshift.int rng 500 * 4) ])
    | _ -> add (insns [ VI.Svc (i land 0xFF) ])
  done;
  (* Drawn after the main body: chaos-free output is byte-identical to the
     pre-chaos generator.  MMIO runs through r5 (devid window).  The base
     generator routes data aborts back to "start" — an infinite loop under
     bus-error injection — so chaos programs get a dedicated skip handler
     (VLX Load/Store encode at a fixed 4 bytes) wired into the
     Data_abort vector slot instead. *)
  let mmio_chunk () =
    if Sb_util.Xorshift.bool rng then
      insns [ VI.Load (reg (), 5, Sb_util.Xorshift.int rng 4 * 4) ]
    else insns [ VI.Store (reg (), 5, 4) ]
  in
  let storm_chunk () =
    if Sb_util.Xorshift.bool rng then insns [ VI.Tlbiall ]
    else insns [ VI.Tlbi (reg ()) ]
  in
  let chaos = gen mmio_chunks mmio_chunk @ gen storm_chunks storm_chunk in
  let slot target = [ Insn (VI.Jmp target); Insn VI.Nop; Insn VI.Nop; Insn VI.Nop ] in
  VI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ insns [ VI.Movi_sym (0, "vectors"); VI.Cpw (Sb_isa.Cregs.vbar, 0) ]
    @ insns
        (List.concat
           (List.map (fun r -> [ VI.Movi (r, Sb_util.Xorshift.u32 rng) ]) [ 0; 1; 2; 3 ]))
    @ insns [ VI.Movi (4, scratch) ]
    @ (if mmio_chunks > 0 then insns [ VI.Movi (5, devid_base) ] else [])
    @ interleave (List.rev !chunks) chaos
    @ insns [ VI.Halt ]
    @ [ Label "handler" ]
    @ insns [ VI.Alu_ri (Uop.Add, 7, 7, 1); VI.Eret ]
    @ (if mmio_chunks > 0 then
         Label "skip4_handler"
         :: insns
              [
                VI.Alu_ri (Uop.Add, 7, 7, 1);
                VI.Cpr (6, Sb_isa.Cregs.elr);
                VI.Alu_ri (Uop.Add, 6, 6, 4);
                VI.Cpw (Sb_isa.Cregs.elr, 6);
                VI.Eret;
              ]
       else [])
    @ (Label "vectors" :: slot "start")
    @ slot "handler" @ slot "handler" @ slot "start"
    @ slot (if mmio_chunks > 0 then "skip4_handler" else "start")
    @ slot "start")

let random_program ?mmio_chunks ?storm_chunks ~arch ~seed () =
  match arch with
  | Sb_isa.Arch_sig.Sba -> random_sba_program ?mmio_chunks ?storm_chunks seed
  | Sb_isa.Arch_sig.Vlx -> random_vlx_program ?mmio_chunks ?storm_chunks seed

let default_engines arch =
  [
    Simbench.Engines.interp arch;
    Simbench.Engines.dbt arch;
    (* aggressive hot-trace formation (threshold 2): the random programs'
       bounded loops run hot enough to stitch superblocks, so divergence
       checking covers trace dispatch and --validate-passes sees the
       cross-block stitched IR, not just single-block IR *)
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.trace_threshold = 2 };
    (* the closure (pre-threaded) emission backend: every sweep pits the
       token-threaded opstream against both the interpreter and the
       closure emitter it replaced *)
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.threaded = false };
    Simbench.Engines.detailed arch;
    Simbench.Engines.virt arch;
    Simbench.Engines.native arch;
  ]

let nregs_of arch =
  match arch with Sb_isa.Arch_sig.Sba -> 14 | Sb_isa.Arch_sig.Vlx -> 8

let random_sweep ~arch ~engines ~seeds ?validate_passes () =
  (* When a pass validator is supplied, install it on the DBT hook for the
     duration of the sweep: every block any DBT engine translates gets its
     optimiser passes statically checked, and violations are reported
     alongside the dynamic divergences. *)
  let static = ref [] in
  let seen = Hashtbl.create 16 in
  let current_seed = ref 0 in
  let saved = !Sb_dbt.Dbt.pass_validator in
  (match validate_passes with
  | None -> ()
  | Some checker ->
    Sb_dbt.Dbt.pass_validator :=
      Some
        (fun ~version ~pass ~before ~after ->
          match checker ~version ~pass ~before ~after with
          | None -> ()
          | Some detail ->
            if not (Hashtbl.mem seen (pass, detail)) then begin
              Hashtbl.add seen (pass, detail) ();
              static :=
                {
                  seed = Some !current_seed;
                  reference_engine = "static-ir-check";
                  diverging_engine = "dbt:" ^ pass;
                  detail;
                }
                :: !static
            end));
  Fun.protect
    ~finally:(fun () -> Sb_dbt.Dbt.pass_validator := saved)
    (fun () ->
      let rec go seed acc =
        if seed >= seeds then List.rev acc
        else begin
          current_seed := seed;
          let program = random_program ~arch ~seed:(seed + 1) () in
          match compare_engines ~engines ~nregs:(nregs_of arch) program with
          | Ok _ -> go (seed + 1) acc
          | Error d -> go (seed + 1) ({ d with seed = Some seed } :: acc)
        end
      in
      let dynamic = go 0 [] in
      dynamic @ List.rev !static)
