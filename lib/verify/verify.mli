(** Cross-engine differential verification.

    Runs the same guest program on a set of engines and compares the
    architectural outcome: register file, status flags, a window of guest
    memory, and the architectural event counters (instructions, branches,
    memory operations, exceptions).  Engine-internal metrics (TLB hits,
    translated blocks) are deliberately excluded — engines differ there by
    design.

    This is the library behind the test suite's equivalence properties,
    exposed so downstream users can fuzz their own engine modifications:

    {[
      let report =
        Sb_verify.Verify.random_sweep ~arch:Sb_isa.Arch_sig.Sba
          ~engines:(Sb_verify.Verify.default_engines Sb_isa.Arch_sig.Sba)
          ~seeds:100 ()
    ]} *)

type outcome = {
  engine : string;
  regs : int list;
  flags : bool * bool * bool * bool;
  memory_digest : string;  (** digest of the scratch window *)
  counters : (string * int) list;
  snapshots : (int * string) list;
      (** full-machine {!Sb_sim.Snapshot} digests taken at the requested
          checkpoints, keyed by the actual retired-instruction count at
          the stop (block-granular engines may overshoot the target) *)
  halted : bool;
}

type divergence = {
  seed : int option;
  reference_engine : string;
  diverging_engine : string;
  detail : string;  (** first differing component, rendered *)
}

val run_outcome :
  engine:Sb_sim.Engine.t ->
  ?mem_window:int * int ->
  ?max_insns:int ->
  ?checkpoints:int list ->
  ?prepare:(Sb_sim.Machine.t -> unit) ->
  Sb_asm.Program.t ->
  outcome
(** Run a program on a fresh machine; [mem_window] is [(addr, len)] of the
    memory region to digest (defaults to the scratch arena).  [prepare]
    runs after the image is loaded and before the engine starts — the hook
    {!Sb_fault.Fault.arm} uses to install deterministic faults.

    [checkpoints] (absolute retired-instruction counts) make the run
    segmented: at each count the engine stops, a full-machine snapshot
    digest is recorded, and the run resumes — the architectural counters
    reported are summed over segments, so they match an unsegmented run. *)

val compare_engines :
  engines:Sb_sim.Engine.t list ->
  ?mem_window:int * int ->
  ?max_insns:int ->
  ?checkpoints:int list ->
  ?nregs:int ->
  ?prepare:(Sb_sim.Machine.t -> unit) ->
  Sb_asm.Program.t ->
  (outcome, divergence) result
(** [Ok] with the (shared) outcome when every engine agrees with the first;
    the first divergence otherwise.  [prepare] is applied to each engine's
    fresh machine, so deterministic fault plans perturb every engine
    identically.

    With [checkpoints], engines are additionally snapshot-diffed
    mid-flight: full-machine state (registers, memory pages, MMU, devices)
    must agree at every checkpoint two engines reach at the same retired
    count.  Per-insn engines stop exactly on target, so any divergence is
    pinned to the first checkpoint after it happens; the block-granular
    DBT overshoots to its next block boundary and is only joined where
    counts coincide (its final state is still fully compared). *)

val random_program :
  ?mmio_chunks:int ->
  ?storm_chunks:int ->
  arch:Sb_isa.Arch_sig.arch_id ->
  seed:int ->
  unit ->
  Sb_asm.Program.t
(** A randomized but always-terminating guest program exercising ALU,
    branches, memory, system calls and exception handlers.
    [mmio_chunks] additionally weaves in device-window loads/stores
    (deterministic devid registers) — the traffic {!Sb_fault} injects bus
    errors into — and wires the data-abort vector to a skip-the-insn
    handler on both architectures.  [storm_chunks] weaves in TLB
    invalidation storms ([Tlbi]/[Tlbiall]).  With both at 0 (the default)
    the output is byte-identical to the pre-chaos generator for the same
    seed. *)

val nregs_of : Sb_isa.Arch_sig.arch_id -> int
(** Architecturally-compared register count for {!compare_engines}'s
    [?nregs] (excludes scratch registers engines may clobber). *)

val random_sweep :
  arch:Sb_isa.Arch_sig.arch_id ->
  engines:Sb_sim.Engine.t list ->
  seeds:int ->
  ?validate_passes:
    (version:string option ->
    pass:string ->
    before:Sb_dbt.Ir.t ->
    after:Sb_dbt.Ir.t ->
    string option) ->
  unit ->
  divergence list
(** Run [seeds] random programs; empty list means all engines agreed on all
    of them.  [validate_passes] additionally installs a static checker on
    {!Sb_dbt.Dbt.pass_validator} for the duration of the sweep: it sees
    every optimiser pass of every block any DBT engine translates —
    [version] is the release name of the translating configuration
    ({!Sb_dbt.Version.name_of}), so reports from a version sweep are
    attributable — and any returned message is reported as a divergence
    with [reference_engine = "static-ir-check"] and
    [diverging_engine = "dbt:<pass>"] (deduplicated per distinct message).
    Pair it with {!Sb_analysis.Ir_check.check} — see [simbench verify
    --validate-passes]. *)

val default_engines : Sb_isa.Arch_sig.arch_id -> Sb_sim.Engine.t list
(** interp, dbt (threaded), dbt with aggressive hot-trace formation, dbt
    with the closure emission backend, detailed, virt, native.  The
    trace-aggressive DBT makes the sweep cover superblock dispatch and
    gives [validate_passes] stitched cross-block IR to check; the closure
    backend pits the token-threaded opstream against the emitter it
    replaced on every sweep, chaos plans included. *)
