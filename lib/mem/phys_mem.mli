(** Guest physical memory: a flat little-endian byte array.

    All addresses are physical byte addresses starting at 0.  Accesses out of
    range raise [Out_of_range]; the bus maps only valid RAM addresses here,
    so in a correctly configured machine this exception indicates a simulator
    bug rather than a guest fault.

    Power-of-two sizes get a single-compare bounds test (one [land] against
    the high-bit mask covers negative addresses and overruns at once); other
    sizes fall back to the two-compare form. *)

type t

exception Out_of_range of int

val create : size:int -> t
(** Fresh zero-filled memory of [size] bytes. *)

val size : t -> int

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int

val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

(** Unchecked accessors: no bounds test at all.  The caller must have
    proved the whole window [addr, addr + width) resident — the DBT's
    micro-TLB fast path does this once per page fill (see
    {!Sb_mmu.Mtlb}) and then reads/writes flat memory per access. *)

val unsafe_read8 : t -> int -> int
val unsafe_read16 : t -> int -> int
val unsafe_read32 : t -> int -> int

val unsafe_write8 : t -> int -> int -> unit
val unsafe_write16 : t -> int -> int -> unit
val unsafe_write32 : t -> int -> int -> unit

val load : t -> addr:int -> Bytes.t -> unit
(** Copy an image into memory at [addr]. *)

val blit_out : t -> addr:int -> len:int -> Bytes.t
(** Copy [len] bytes starting at [addr] out of memory. *)

val clear : t -> unit
