type t = {
  mutable scratch : int;
  mutable led : int;
  mutable led_writes : int;
  mutable accesses : int;
}

let id_value = 0x53426E63 (* "SBnc" *)

let create () = { scratch = 0; led = 0; led_writes = 0; accesses = 0 }

let access_count t = t.accesses
let led_writes t = t.led_writes

let reset t =
  t.scratch <- 0;
  t.led <- 0;
  t.led_writes <- 0;
  t.accesses <- 0

type state = {
  s_scratch : int;
  s_led : int;
  s_led_writes : int;
  s_accesses : int;
}

let state t =
  {
    s_scratch = t.scratch;
    s_led = t.led;
    s_led_writes = t.led_writes;
    s_accesses = t.accesses;
  }

let restore t s =
  t.scratch <- s.s_scratch;
  t.led <- s.s_led;
  t.led_writes <- s.s_led_writes;
  t.accesses <- s.s_accesses

let device t =
  let read32 offset =
    t.accesses <- t.accesses + 1;
    match offset with
    | 0x0 -> id_value
    | 0x4 -> t.scratch
    | 0x8 -> t.led
    | 0xC -> t.accesses
    | _ -> 0
  in
  let write32 offset v =
    t.accesses <- t.accesses + 1;
    match offset with
    | 0x4 -> t.scratch <- v
    | 0x8 ->
      t.led <- v;
      t.led_writes <- t.led_writes + 1
    | _ -> ()
  in
  { Device.name = "devid"; read32; write32 }
