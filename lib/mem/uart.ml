type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 256 }

let contents t = Buffer.contents t.buf
let tx_count t = Buffer.length t.buf
let reset t = Buffer.clear t.buf

type state = string

let state t = Buffer.contents t.buf

let restore t s =
  Buffer.clear t.buf;
  Buffer.add_string t.buf s

let device t =
  let read32 = function
    | 0x4 -> 1 (* always ready *)
    | 0x8 -> Buffer.length t.buf
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x0 -> Buffer.add_char t.buf (Char.chr (v land 0xFF))
    | _ -> ()
  in
  { Device.name = "uart"; read32; write32 }
