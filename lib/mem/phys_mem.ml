type t = { data : Bytes.t; size : int; hi_mask : int }

exception Out_of_range of int

let create ~size =
  (* power-of-two sizes (every shipped machine) get a single-compare bounds
     test: any address bit at or above the size bit — including the sign
     bit of a negative address — lands in [hi_mask] *)
  let hi_mask =
    if size > 0 && size land (size - 1) = 0 then lnot (size - 1) else 0
  in
  { data = Bytes.make size '\000'; size; hi_mask }

let size t = t.size

let check t addr width =
  if t.hi_mask <> 0 then begin
    if (addr lor (addr + width - 1)) land t.hi_mask <> 0 then
      (* [addr + width - 1] underflows for width 0; an empty access in
         range ([0, size]) is still fine, matching the two-compare form *)
      if not (width = 0 && addr >= 0 && addr <= t.size) then
        raise (Out_of_range addr)
  end
  else if addr < 0 || addr + width > t.size then raise (Out_of_range addr)

(* Unchecked accessors for callers that have already validated the window
   [addr, addr + width) — the DBT's micro-TLB fast path proves a whole page
   resident at fill time and then skips [check] per access. *)

let unsafe_read8 t addr = Char.code (Bytes.unsafe_get t.data addr)

let unsafe_read16 t addr =
  let b = t.data in
  Char.code (Bytes.unsafe_get b addr)
  lor (Char.code (Bytes.unsafe_get b (addr + 1)) lsl 8)

let unsafe_read32 t addr =
  let b = t.data in
  Char.code (Bytes.unsafe_get b addr)
  lor (Char.code (Bytes.unsafe_get b (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (addr + 3)) lsl 24)

let unsafe_write8 t addr v =
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let unsafe_write16 t addr v =
  let b = t.data in
  Bytes.unsafe_set b addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let unsafe_write32 t addr v =
  let b = t.data in
  Bytes.unsafe_set b addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let read8 t addr =
  check t addr 1;
  unsafe_read8 t addr

(* recompose from unchecked byte reads, like [read32]: [Bytes.get_uint16_le]
   goes through the generic safe accessor and its bounds re-check *)
let read16 t addr =
  check t addr 2;
  unsafe_read16 t addr

(* recompose from unchecked byte reads: [Bytes.get_int32_le] allocates a
   boxed [Int32] on every call, and this is the hottest path in the whole
   simulator (every guest load/store and every code fetch lands here) *)
let read32 t addr =
  check t addr 4;
  unsafe_read32 t addr

let write8 t addr v =
  check t addr 1;
  unsafe_write8 t addr v

let write16 t addr v =
  check t addr 2;
  unsafe_write16 t addr v

let write32 t addr v =
  check t addr 4;
  unsafe_write32 t addr v

let load t ~addr image =
  check t addr (Bytes.length image);
  Bytes.blit image 0 t.data addr (Bytes.length image)

let blit_out t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let clear t = Bytes.fill t.data 0 t.size '\000'
