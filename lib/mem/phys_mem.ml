type t = { data : Bytes.t; size : int }

exception Out_of_range of int

let create ~size = { data = Bytes.make size '\000'; size }

let size t = t.size

let check t addr width =
  if addr < 0 || addr + width > t.size then raise (Out_of_range addr)

let read8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let read16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

(* recompose from unchecked byte reads: [Bytes.get_int32_le] allocates a
   boxed [Int32] on every call, and this is the hottest path in the whole
   simulator (every guest load/store and every code fetch lands here) *)
let read32 t addr =
  check t addr 4;
  let b = t.data in
  Char.code (Bytes.unsafe_get b addr)
  lor (Char.code (Bytes.unsafe_get b (addr + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (addr + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (addr + 3)) lsl 24)

let write8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let write16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let write32 t addr v =
  check t addr 4;
  let b = t.data in
  Bytes.unsafe_set b addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let load t ~addr image =
  check t addr (Bytes.length image);
  Bytes.blit image 0 t.data addr (Bytes.length image)

let blit_out t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let clear t = Bytes.fill t.data 0 t.size '\000'
