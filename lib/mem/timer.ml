type t = {
  on_fire : unit -> unit;
  mutable count : int;
  mutable compare : int;
  mutable irq_enabled : bool;
  mutable armed : bool;
}

let create ~on_fire =
  { on_fire; count = 0; compare = 0; irq_enabled = false; armed = false }

let advance t n =
  t.count <- t.count + n;
  if t.armed && t.irq_enabled && t.count >= t.compare then begin
    t.armed <- false;
    t.on_fire ()
  end

let count t = t.count

let reset t =
  t.count <- 0;
  t.compare <- 0;
  t.irq_enabled <- false;
  t.armed <- false

type state = {
  s_count : int;
  s_compare : int;
  s_irq_enabled : bool;
  s_armed : bool;
}

let state t =
  {
    s_count = t.count;
    s_compare = t.compare;
    s_irq_enabled = t.irq_enabled;
    s_armed = t.armed;
  }

let restore t s =
  t.count <- s.s_count;
  t.compare <- s.s_compare;
  t.irq_enabled <- s.s_irq_enabled;
  t.armed <- s.s_armed

let device t =
  let read32 = function
    | 0x0 -> t.count land 0xFFFF_FFFF
    | 0x4 -> t.compare
    | 0x8 -> if t.irq_enabled then 1 else 0
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x0 -> t.count <- v
    | 0x4 ->
      t.compare <- v;
      t.armed <- true
    | 0x8 -> t.irq_enabled <- v land 1 = 1
    | _ -> ()
  in
  { Device.name = "timer"; read32; write32 }
