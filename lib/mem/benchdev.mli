(** Harness/semihosting device.

    SimBench benchmarks run in three phases; only the kernel phase is timed.
    The guest signals phase transitions by writing the PHASE register, and
    this device timestamps the writes with a host clock supplied by the
    harness.  It also carries the iteration count into the guest and an exit
    code out of it.

    Register map (byte offsets):
    - [0x0] PHASE: write 1 = kernel start, 2 = kernel end; read back.
    - [0x4] EXIT: write records the exit code and requests halt.
    - [0x8] OPCOUNT: write adds the value to the tested-operation counter.
    - [0xC] ITERS: read returns the harness-provided iteration count.
    - [0x10] ARG0, [0x14] ARG1: extra harness-provided parameters. *)

type t

type phase = Setup | Kernel | Cleanup

val create : ?now:(unit -> float) -> unit -> t
(** [now] defaults to [Sys.time]-independent monotonic-ish wall clock
    injected by the harness; tests can supply a fake clock. *)

val device : t -> Device.t

val set_iters : t -> int -> unit

val set_on_phase : t -> (phase -> unit) -> unit
(** Install a callback fired on every PHASE write, after the timestamp is
    recorded.  Engines use it to snapshot perf counters at kernel-phase
    boundaries without polling. *)

val set_arg : t -> int -> int -> unit
(** [set_arg t i v] with [i] in 0..1. *)

val phase : t -> phase
val kernel_seconds : t -> float option
(** Wall-clock duration between the kernel-start and kernel-end writes. *)

val kernel_started_at : t -> float option
val op_count : t -> int
val exit_code : t -> int option
val exited : t -> bool
val reset : t -> unit

val set_stop_phase : t -> phase option -> unit
(** Arm (or disarm, with [None]) a switch point: the next PHASE write that
    lands the device in the given phase sets {!stop_pending}.  Engines poll
    the flag at their dispatch safe points and stop with
    [Run_result.Switch_point], leaving the machine resumable.  Arming
    clears any pending stop. *)

val stop_pending : t -> bool

val sync_pending : t -> bool
(** Set by every PHASE write: the running engine should flush batched
    device time (e.g. its timer tick backlog) at the next safe point and
    then {!clear_sync}.  Aligning device time to phase boundaries makes a
    run resumed from a phase snapshot tick-identical to a cold run. *)

val clear_sync : t -> unit

val mark_kernel_start : t -> unit
(** Record "now" as the kernel-start timestamp if none is recorded — used
    by the runner when a run begins from a snapshot taken mid-kernel, so
    [kernel_seconds] measures only this run's clock. *)

type state = {
  s_phase : phase;
  s_iters : int;
  s_args : int array;
  s_ops : int;
  s_exit_code : int option;
}
(** Serializable architectural state.  Host timestamps are deliberately
    excluded: a restored run times its own kernel phase. *)

val state : t -> state
val restore : t -> state -> unit
