type phase = Setup | Kernel | Cleanup

type t = {
  now : unit -> float;
  mutable phase : phase;
  mutable kernel_start : float option;
  mutable kernel_end : float option;
  mutable iters : int;
  mutable args : int array;
  mutable ops : int;
  mutable exit_code : int option;
  mutable on_phase : phase -> unit;
  mutable stop_phase : phase option;
  mutable stop_pending : bool;
  mutable sync_pending : bool;
}

let create ?(now = fun () -> Sys.time ()) () =
  {
    now;
    phase = Setup;
    kernel_start = None;
    kernel_end = None;
    iters = 0;
    args = [| 0; 0 |];
    ops = 0;
    exit_code = None;
    on_phase = ignore;
    stop_phase = None;
    stop_pending = false;
    sync_pending = false;
  }

let set_iters t n = t.iters <- n
let set_on_phase t f = t.on_phase <- f
let set_arg t i v = t.args.(i) <- v

let phase t = t.phase
let kernel_started_at t = t.kernel_start
let op_count t = t.ops
let exit_code t = t.exit_code
let exited t = t.exit_code <> None

let kernel_seconds t =
  match (t.kernel_start, t.kernel_end) with
  | Some a, Some b -> Some (b -. a)
  | _ -> None

let set_stop_phase t p =
  t.stop_phase <- p;
  t.stop_pending <- false

let stop_pending t = t.stop_pending
let sync_pending t = t.sync_pending
let clear_sync t = t.sync_pending <- false

let mark_kernel_start t =
  if t.kernel_start = None then t.kernel_start <- Some (t.now ())

let reset t =
  t.phase <- Setup;
  t.kernel_start <- None;
  t.kernel_end <- None;
  t.ops <- 0;
  t.exit_code <- None;
  t.stop_phase <- None;
  t.stop_pending <- false;
  t.sync_pending <- false

type state = {
  s_phase : phase;
  s_iters : int;
  s_args : int array;
  s_ops : int;
  s_exit_code : int option;
}

(* Host timestamps (kernel_start/kernel_end) are measurement artifacts of
   the run that produced the snapshot, not guest state; they are excluded
   so the restoring run times its own kernel phase. *)
let state t =
  {
    s_phase = t.phase;
    s_iters = t.iters;
    s_args = Array.copy t.args;
    s_ops = t.ops;
    s_exit_code = t.exit_code;
  }

let restore t s =
  t.phase <- s.s_phase;
  t.kernel_start <- None;
  t.kernel_end <- None;
  t.iters <- s.s_iters;
  t.args <- Array.copy s.s_args;
  t.ops <- s.s_ops;
  t.exit_code <- s.s_exit_code;
  t.stop_phase <- None;
  t.stop_pending <- false;
  t.sync_pending <- false

let phase_code = function Setup -> 0 | Kernel -> 1 | Cleanup -> 2

let device t =
  let read32 = function
    | 0x0 -> phase_code t.phase
    | 0xC -> t.iters
    | 0x10 -> t.args.(0)
    | 0x14 -> t.args.(1)
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x0 ->
      (match v with
      | 1 ->
        t.phase <- Kernel;
        t.kernel_start <- Some (t.now ())
      | 2 ->
        t.phase <- Cleanup;
        t.kernel_end <- Some (t.now ())
      | _ -> t.phase <- Setup);
      t.on_phase t.phase;
      (* Every phase boundary asks the running engine to sync batched
         device time (timer tick backlog) at its next safe point, so
         phase-relative timer state is identical whether a run crossed
         the boundary itself or resumed from a snapshot taken there. *)
      t.sync_pending <- true;
      (match t.stop_phase with
      | Some p when p = t.phase -> t.stop_pending <- true
      | _ -> ())
    | 0x4 -> t.exit_code <- Some v
    | 0x8 -> t.ops <- t.ops + v
    | _ -> ()
  in
  { Device.name = "bench"; read32; write32 }
