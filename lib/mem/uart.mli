(** Serial port.  Register map (byte offsets):
    - [0x0] DATA: write transmits the low byte; read returns 0.
    - [0x4] STATUS: bit 0 = transmit ready (always set).
    - [0x8] TXCOUNT: total bytes transmitted (read-only). *)

type t

val create : unit -> t
val device : t -> Device.t

val contents : t -> string
(** Everything the guest has written so far. *)

val tx_count : t -> int
val reset : t -> unit

type state = string
(** Serializable architectural state: the transmitted bytes. *)

val state : t -> state
val restore : t -> state -> unit
