(** System bus: routes physical accesses to RAM or device windows.

    RAM occupies [0, ram_size); device windows live above it.  Accesses that
    hit neither raise [Fault], which engines convert into the architectural
    data/prefetch abort. *)

type t

exception Fault of int
(** Physical address that hit no mapping. *)

val create : ram:Phys_mem.t -> (int * int * Device.t) list -> t
(** [create ~ram windows] where each window is [(base, size, device)].
    Window bases and sizes must be 4-byte aligned and must not overlap RAM
    or each other; violations raise [Invalid_argument]. *)

val ram : t -> Phys_mem.t
val ram_size : t -> int

val is_ram : t -> int -> bool
(** True when the address lies in RAM (the fast path engines may inline). *)

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int
val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

val device_accesses : t -> int
(** Total accesses routed to device windows since creation. *)

val set_device_accesses : t -> int -> unit
(** Overwrite the device-access ordinal counter.  Used by snapshot restore
    so a resumed run consults a fault injector with the same ordinals a
    cold run would — the counter is architectural state for {!Sb_fault}'s
    deterministic injection. *)

val set_fault_injector :
  t -> (nth:int -> rw:[ `Read | `Write ] -> addr:int -> bool) option -> unit
(** Install (or clear) a deterministic bus-error injector consulted on
    every device-window access {e before} the device sees it.  [nth] is
    the 0-based device-access ordinal ({!device_accesses} at the time of
    the access); returning [true] makes the access raise {!Fault} instead
    of reaching the device.  Because the MMIO access sequence is
    architectural, ordinal-keyed injection reproduces bit-identically
    across engines — the mechanism behind {!Sb_fault}'s differential
    chaos testing.  RAM accesses are never intercepted. *)
