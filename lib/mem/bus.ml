type window = { base : int; size : int; dev : Device.t }

type t = {
  ram : Phys_mem.t;
  ram_size : int;
  windows : window array;
  mutable dev_accesses : int;
  mutable fault_injector :
    (nth:int -> rw:[ `Read | `Write ] -> addr:int -> bool) option;
}

exception Fault of int

let overlaps a_base a_size b_base b_size =
  a_base < b_base + b_size && b_base < a_base + a_size

let create ~ram windows =
  let ram_size = Phys_mem.size ram in
  let check (base, size, dev) =
    if base land 3 <> 0 || size land 3 <> 0 || size <= 0 then
      invalid_arg
        (Printf.sprintf "Bus.create: window %s is not word-aligned" dev.Device.name);
    if overlaps base size 0 ram_size then
      invalid_arg
        (Printf.sprintf "Bus.create: window %s overlaps RAM" dev.Device.name)
  in
  List.iter check windows;
  let rec check_pairs = function
    | [] -> ()
    | (base, size, dev) :: rest ->
      List.iter
        (fun (base', size', dev') ->
          if overlaps base size base' size' then
            invalid_arg
              (Printf.sprintf "Bus.create: windows %s and %s overlap"
                 dev.Device.name dev'.Device.name))
        rest;
      check_pairs rest
  in
  check_pairs windows;
  let windows =
    Array.of_list (List.map (fun (base, size, dev) -> { base; size; dev }) windows)
  in
  { ram; ram_size; windows; dev_accesses = 0; fault_injector = None }

let ram t = t.ram
let ram_size t = t.ram_size
let is_ram t addr = addr >= 0 && addr < t.ram_size

let find_window t addr =
  let n = Array.length t.windows in
  let rec loop i =
    if i >= n then raise (Fault addr)
    else
      let w = t.windows.(i) in
      if addr >= w.base && addr < w.base + w.size then w else loop (i + 1)
  in
  loop 0

(* Deterministic fault injection (Sb_fault): the hook sees the 0-based
   ordinal of each device access.  The MMIO access sequence is
   architectural — every engine issues the same accesses in the same
   order — so faulting "the Nth access" reproduces identically across
   interp/DBT/detailed/virt.  The ordinal is consumed (and the device
   untouched) when the hook fires, exactly as if the bus decode failed. *)
let consult_injector t ~rw ~addr =
  let nth = t.dev_accesses in
  t.dev_accesses <- nth + 1;
  match t.fault_injector with
  | Some f when f ~nth ~rw ~addr -> raise (Fault addr)
  | _ -> ()

let dev_read32 t addr =
  let w = find_window t addr in
  consult_injector t ~rw:`Read ~addr;
  w.dev.Device.read32 ((addr - w.base) land lnot 3) land 0xFFFF_FFFF

let dev_write32 t addr v =
  let w = find_window t addr in
  consult_injector t ~rw:`Write ~addr;
  w.dev.Device.write32 ((addr - w.base) land lnot 3) (v land 0xFFFF_FFFF)

let read32 t addr =
  if addr >= 0 && addr < t.ram_size then Phys_mem.read32 t.ram addr
  else dev_read32 t addr

let read16 t addr =
  if addr >= 0 && addr < t.ram_size then Phys_mem.read16 t.ram addr
  else (dev_read32 t addr lsr (8 * (addr land 2))) land 0xFFFF

let read8 t addr =
  if addr >= 0 && addr < t.ram_size then Phys_mem.read8 t.ram addr
  else (dev_read32 t addr lsr (8 * (addr land 3))) land 0xFF

let write32 t addr v =
  if addr >= 0 && addr < t.ram_size then Phys_mem.write32 t.ram addr v
  else dev_write32 t addr v

let write16 t addr v =
  if addr >= 0 && addr < t.ram_size then Phys_mem.write16 t.ram addr v
  else
    (* read-modify-write of the containing register *)
    let shift = 8 * (addr land 2) in
    let old = dev_read32 t addr in
    let merged = old land lnot (0xFFFF lsl shift) lor ((v land 0xFFFF) lsl shift) in
    dev_write32 t addr merged

let write8 t addr v =
  if addr >= 0 && addr < t.ram_size then Phys_mem.write8 t.ram addr v
  else
    let shift = 8 * (addr land 3) in
    let old = dev_read32 t addr in
    let merged = old land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift) in
    dev_write32 t addr merged

let device_accesses t = t.dev_accesses
let set_device_accesses t n = t.dev_accesses <- n

let set_fault_injector t f = t.fault_injector <- f
