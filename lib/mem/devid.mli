(** The "safe device" used by the Memory Mapped Device benchmark: a register
    block whose ID register can be read with no side effects and negligible
    evaluation cost, exactly what the paper prescribes for measuring the base
    cost of an I/O access.

    Register map (byte offsets):
    - [0x0] ID: constant device identifier (read-only).
    - [0x4] SCRATCH: read/write scratch word.
    - [0x8] LED: read/write; writes count as LED toggles.
    - [0xC] ACCESS_COUNT: total accesses to this block (read-only). *)

type t

val id_value : int

val create : unit -> t
val device : t -> Device.t

val access_count : t -> int
val led_writes : t -> int
val reset : t -> unit

type state = {
  s_scratch : int;
  s_led : int;
  s_led_writes : int;
  s_accesses : int;
}
(** Serializable architectural state. *)

val state : t -> state
val restore : t -> state -> unit
