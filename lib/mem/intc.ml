type t = {
  mutable pending : int;
  mutable enable : int;
  mutable acks : int;
}

let softint_line = 0
let timer_line = 1

let create () = { pending = 0; enable = 0; acks = 0 }

let raise_line t line = t.pending <- t.pending lor (1 lsl line)

let asserted t = t.pending land t.enable <> 0

let pending t = t.pending
let enabled t = t.enable
let irq_delivered t = t.acks

let reset t =
  t.pending <- 0;
  t.enable <- 0;
  t.acks <- 0

type state = { s_pending : int; s_enable : int; s_acks : int }

let state t = { s_pending = t.pending; s_enable = t.enable; s_acks = t.acks }

let restore t s =
  t.pending <- s.s_pending;
  t.enable <- s.s_enable;
  t.acks <- s.s_acks

let device t =
  let read32 = function
    | 0x0 -> t.pending
    | 0x4 -> t.enable
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x4 -> t.enable <- v land 0xFFFF_FFFF
    | 0x8 -> t.pending <- t.pending lor v
    | 0xC ->
      t.pending <- t.pending land lnot v;
      t.acks <- t.acks + 1
    | _ -> ()
  in
  { Device.name = "intc"; read32; write32 }
