(** Interrupt controller with software-generated interrupts.

    32 interrupt lines.  Line 0 is reserved for software-generated interrupts
    (the External Software Interrupt benchmark), line 1 for the timer.

    Register map (byte offsets):
    - [0x0] PENDING: bitmask of pending lines (read-only).
    - [0x4] ENABLE: bitmask of enabled lines (read/write).
    - [0x8] SOFTINT_SET: write a bitmask to raise those lines.
    - [0xC] ACK: write a bitmask to clear those pending lines. *)

type t

val softint_line : int
val timer_line : int

val create : unit -> t
val device : t -> Device.t

val raise_line : t -> int -> unit
(** Hardware-side interrupt injection (used by e.g. the timer). *)

val asserted : t -> bool
(** True when any enabled line is pending: the CPU IRQ input. *)

val pending : t -> int
val enabled : t -> int

val irq_delivered : t -> int
(** Count of ACK writes — used as the delivered-interrupt perf counter. *)

val reset : t -> unit

type state = { s_pending : int; s_enable : int; s_acks : int }
(** Serializable architectural state. *)

val state : t -> state
val restore : t -> state -> unit
