(** Count-up timer driven by retired instructions.

    The machine advances the timer as instructions retire; when the count
    passes COMPARE with interrupts enabled in CTRL, the timer raises its
    interrupt-controller line once (re-armed by writing COMPARE again).

    Register map (byte offsets):
    - [0x0] COUNT: current count (read; write resets to the written value).
    - [0x4] COMPARE: match value (write re-arms).
    - [0x8] CTRL: bit 0 enables interrupt generation. *)

type t

val create : on_fire:(unit -> unit) -> t
val device : t -> Device.t

val advance : t -> int -> unit
(** Add retired-instruction ticks; may fire the interrupt callback. *)

val count : t -> int
val reset : t -> unit

type state = {
  s_count : int;
  s_compare : int;
  s_irq_enabled : bool;
  s_armed : bool;
}
(** Serializable architectural state.  The [on_fire] wiring is part of the
    machine, not the state, so restore targets an already-wired timer. *)

val state : t -> state
val restore : t -> state -> unit
