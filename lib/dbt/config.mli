(** DBT engine tuning knobs.

    Each knob corresponds to an implementation mechanism that really changed
    across the QEMU releases the paper sweeps (Figures 2, 6, 8).  The
    {!Version} module maps release names to configurations; benches can also
    sweep individual knobs for the ablation studies listed in DESIGN.md. *)

type t = {
  opt_passes : int;
      (** how many optimiser passes run over the block IR (0..4); more passes
          cost translation time and improve emitted code *)
  emission_work : int;
      (** per-micro-op host-code emission cost units: models the dominant
          cost of real DBT code generation (instruction selection, register
          assignment, machine-code encoding into the code buffer) *)
  max_block_insns : int;  (** basic-block length cap *)
  chain_direct : bool;  (** chain blocks across direct branches *)
  chain_across_pages : bool;
  chain_verify_work : int;
      (** extra consistency checks performed on every chain follow (later
          QEMU versions added safety checks on the hot dispatch path) *)
  mem_helper_layers : int;
      (** extra call indirection wrapped around every memory helper *)
  walk_extra_work : int;
      (** per-walk page-table-format disambiguation work: the paper notes
          QEMU's support for many architecture variants "mak\[es\] page table
          lookups quite complex" compared to SimIt-ARM's single-version MMU *)
  exception_sync_work : int;
      (** CPU-state synchronisation passes performed on every exception and
          interrupt entry *)
  data_fault_fast_path : bool;
      (** skip the sync work for data aborts (the v2.5.0-rc0 improvement) *)
  tlb_entries : int;  (** first-level page-cache entries (power of two) *)
  tlb_l2_entries : int;  (** second-level page cache; 0 disables it *)
  lazy_tlb_flush : bool;
      (** flush the page cache by bumping a generation instead of clearing *)
  front_cache : bool;
      (** direct-mapped virtual-PC block lookup cache in front of the block
          hash table (QEMU's [tb_jmp_cache]); entries are tagged with the
          chain generation, so the chain/SMC invalidation machinery covers
          it.  On in every shipped version; off only for ablation. *)
  trace_threshold : int;
      (** executions of a block before it becomes a hot-trace superblock
          head (HQEMU-style region formation); 0 disables trace formation.
          Traces stitch direct-chain successors into one closure array
          executed without per-block chain-verify work or re-dispatch; see
          docs/traces.md. *)
  max_trace_blocks : int;
      (** upper bound on blocks stitched into one trace (>= 2 for traces to
          form at all) *)
  threaded : bool;
      (** lower blocks and traces to a token-threaded opstream (flat
          [int array] executed by a tail-dispatched loop) instead of a
          closure array, with micro-TLB flat-memory fast paths for guest
          loads/stores and code fetch; see docs/threaded.md *)
  reg_cache : bool;
      (** cache the two hottest guest registers of a translation unit in
          dispatch-loop locals, spilled only at side exits, seams, and
          before any operation that can fault (trace-scope register
          allocation); only meaningful when [threaded] is on *)
}

val default : t
(** The contemporary configuration (matches the newest version entry). *)

val baseline : t
(** The v1.7.0-era configuration. *)
