(** Dynamic binary translation engine (the QEMU analog).

    Figure 4 row: block-based code generation, multi-level page cache,
    block-cache + block-chaining control flow, interrupts at block
    boundaries, synchronous exceptions as side exits, undefined instructions
    translated to side exits.

    Guest basic blocks are decoded into IR, optimised
    ({!Ir}), and emitted as arrays of closures over the machine state — the
    OCaml analog of TCG emission.  Blocks are cached by physical address and
    translation regime, chained across direct branches, and invalidated by
    physical page when the guest writes to translated code. *)

val pass_validator : Ir.pass_validator option ref
(** Opt-in static pass validation.  While set, every optimiser pass of every
    block translation is bracketed by an IR snapshot and the validator call
    ({!Ir.run}).  [Sb_verify.Verify.random_sweep ~validate_passes] installs
    {!Sb_analysis.Ir_check} here for the duration of a sweep. *)

module Make_configured
    (A : Sb_isa.Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) : Sb_sim.Engine.ENGINE

module Make (A : Sb_isa.Arch_sig.ARCH) : Sb_sim.Engine.ENGINE
(** [Make] uses {!Config.default}. *)
