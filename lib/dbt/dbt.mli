(** Dynamic binary translation engine (the QEMU analog).

    Figure 4 row: block-based code generation, multi-level page cache,
    block-cache + block-chaining control flow, interrupts at block
    boundaries, synchronous exceptions as side exits, undefined instructions
    translated to side exits.

    Guest basic blocks are decoded into IR, optimised
    ({!Ir}), and emitted as arrays of closures over the machine state — the
    OCaml analog of TCG emission.  Blocks are cached by physical address and
    translation regime, chained across direct branches, and invalidated by
    physical page when the guest writes to translated code. *)

type versioned_validator =
  version:string option -> pass:string -> before:Ir.t -> after:Ir.t -> unit
(** {!Ir.pass_validator} plus the release name of the DBT configuration
    that ran the pass ({!Version.name_of}; [None] for configurations that
    are not a registered release), so reports from a version sweep are
    attributable. *)

val pass_validator : versioned_validator option ref
(** Opt-in static pass validation.  While set, every optimiser pass of every
    block translation is bracketed by an IR snapshot and the validator call
    ({!Ir.run}).  [Sb_verify.Verify.random_sweep ~validate_passes] installs
    {!Sb_analysis.Ir_check} here for the duration of a sweep. *)

module Make_configured
    (A : Sb_isa.Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) : Sb_sim.Engine.ENGINE

module Make (A : Sb_isa.Arch_sig.ARCH) : Sb_sim.Engine.ENGINE
(** [Make] uses {!Config.default}. *)
