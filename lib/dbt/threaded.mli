(** Token-threaded code generation and execution.

    [compile] lowers a translation unit's optimised IR (one basic block, or
    one segment of a stitched trace) into a flat [int array] opstream —
    opcode word + operand words per micro-op, END-terminated — and [exec]
    runs it with a tail-dispatched loop: one array read and one jump-table
    branch per token, no per-uop closure allocation.

    The two hottest guest registers of the unit (static reference count,
    {!choose_slots}) are carried in the dispatch loop's parameters instead
    of the register file ("trace-scope register allocation"); they are
    spilled back only at END (segment seams / side exits) and immediately
    before any host callback that can fault.  Guest loads and stores probe a
    direct-mapped (va -> host offset) micro-TLB ({!Sb_mmu.Mtlb}) and on a
    hit access {!Sb_mem.Phys_mem} directly; everything else — page walks,
    permission faults, MMIO, page-crossing accesses — goes through the
    [host] callbacks into the engine's existing slow paths.

    docs/threaded.md documents the opstream format and the spill rules;
    [model] decodes a compiled program back into micro-op lists so the
    translation validator can prove the lowering against the reference
    semantics. *)

type program = {
  code : int array;  (** the opstream; END-terminated *)
  ra : int;  (** guest register cached in slot A, or -1 *)
  rb : int;  (** guest register cached in slot B, or -1 (only if [ra >= 0]) *)
  p_insns : int;  (** guest instructions covered *)
  p_uops : int;  (** IR micro-ops lowered, including zero-token ones *)
  meta : (int * int * int) array;
      (** per instruction: opstream offset, virtual address, length *)
}

(** Callbacks into the owning engine for everything the opstream cannot do
    inline.  Callbacks that can raise are invoked only after cached
    registers have been spilled, so fault delivery observes architectural
    register state. *)
type host = {
  h_cpu : Sb_sim.Cpu.t;
  h_perf : Sb_sim.Perf.t;
  h_ram : Sb_mem.Phys_mem.t;
  h_ram_limit : int;  (** bytes of flat RAM mapped at physical address 0 *)
  h_code_pages : Bytes.t;
      (** physical code-page bitmap: stores that hit a marked page divert to
          [h_store_smc] after writing *)
  h_dtlb_r : Sb_mmu.Mtlb.t;
  h_dtlb_w : Sb_mmu.Mtlb.t;
  h_load_slow :
    mmu:bool ->
    width:Sb_isa.Uop.width ->
    user:bool ->
    va:int ->
    iva:int ->
    iidx:int ->
    int;
  h_store_slow :
    mmu:bool ->
    width:Sb_isa.Uop.width ->
    user:bool ->
    va:int ->
    v:int ->
    iva:int ->
    resume_va:int ->
    iidx:int ->
    unit;
  h_store_smc : ppage:int -> resume_va:int -> iidx:int -> unit;
  h_svc : ret:int -> iidx:int -> unit;
  h_undef : iva:int -> iidx:int -> unit;
  h_cop_write : creg:int -> value:int -> iva:int -> iidx:int -> unit;
  h_tlb_inv_page : va:int -> unit;
  h_tlb_inv_all : unit -> unit;
  h_wfi : iidx:int -> unit;
  h_halt : iidx:int -> unit;
}

val choose_slots : ?spill_points:int -> Ir.insn array -> int * int
(** The two most-referenced guest registers of the unit (each needs two or
    more static references to earn a slot), as [(ra, rb)] with [-1] for an
    unfilled slot.  For traces, call this once over the concatenated IR of
    every segment and pass the result to each segment's [compile] so the
    same registers stay cached across seams.  [spill_points] (default 1)
    is the number of spill/reload boundaries the unit executes — the
    segment count for a trace; units averaging too few uops per boundary
    come back uncached [(-1, -1)], since seam traffic would exceed the
    trampoline savings. *)

val compile :
  ?slots:int * int ->
  ?elide_uncond_seam:bool ->
  reg_cache:bool ->
  mmu:bool ->
  Ir.insn array ->
  program
(** Lower optimised IR to an opstream.  [slots] overrides slot selection
    (trace segments); otherwise [reg_cache] decides whether {!choose_slots}
    runs.  [mmu] selects physical (flat-RAM bounds check) or virtual
    (micro-TLB probe) memory fast paths — a program is only valid for the
    translation regime it was compiled for, mirroring the engine's keying of
    blocks by [mmu_on].  [elide_uncond_seam] drops the pc write of a
    trailing unconditional direct branch (trace seam into the next
    segment). *)

val prepare : host -> program -> unit -> unit
(** Bind an opstream to a host once, returning a runner that dispatches
    it from the top.  All environment setup (field loads, the dispatch
    closures) happens at [prepare] time, so each call of the runner costs
    one indirect call — translation caches the runner per block. *)

val exec : host -> program -> unit
(** [prepare] + run once.  Run an opstream to completion (its END token).  Guest faults, SMC
    restarts and stops propagate as the owning engine's exceptions out of
    the host callbacks. *)

val model : mmu:bool -> program -> (int * int * Sb_isa.Uop.t list) list
(** Decode a compiled program back to [(va, len, uops)] per instruction —
    the exact micro-op semantics the opstream implements, for translation
    validation.  Redundant inline operands (instruction VA, resume VA,
    return address, retirement index) are checked against [meta]; a
    mismatch appends a poison {!Sb_isa.Uop.Undef} to that instruction so a
    broken emitter shows up as a semantic divergence. *)
