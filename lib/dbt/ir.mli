(** Block IR and the translation-time optimiser.

    A block is decoded into an array of per-instruction micro-op lists; the
    optimiser rewrites micro-ops in place.  Every pass is {e architecturally
    transparent}: the final register file, flags and memory effects are
    identical with and without optimisation (the cross-engine equivalence
    property tests enforce this), only the work done by the emitted code
    changes. *)

type insn = {
  va : int;
  len : int;
  mutable uops : Sb_isa.Uop.t list;
}

type t = insn array

val of_decoded : Sb_isa.Uop.decoded list -> t
(** Decoded instructions in program order. *)

val pass_names : string list
(** The optimiser pipeline in order; [run ~passes:n] runs the first [n]. *)

type pass_validator = pass:string -> before:t -> after:t -> unit
(** Called after each optimiser pass with a snapshot of the IR taken just
    before the pass ran and the rewritten IR.  {!Sb_analysis.Ir_check}
    provides an implementation that statically proves architectural
    transparency; the hook itself stays dependency-free so the DBT engine
    does not depend on the analysis library. *)

val copy : t -> t
(** Snapshot an IR: fresh instruction records sharing the (immutable)
    micro-op lists, so in-place passes on the original leave it intact. *)

val run : ?validate:pass_validator -> passes:int -> t -> int
(** Runs up to [passes] passes (clamped to the pipeline length); returns the
    number actually run.  When [validate] is given, each pass is bracketed
    by an IR snapshot and the validator call — translation gets slower, so
    this is strictly an opt-in verification mode. *)

(** Individual passes, exposed for unit tests. *)

val const_prop : t -> unit
(** Forward constant propagation and folding over the register file within
    the block (folds MOVW/MOVT pairs, immediate ALU chains, and literal
    address computations). *)

val nop_elim : t -> unit
(** Remove [Nop] micro-ops (the instruction slot remains, so retired-
    instruction counting is unchanged). *)

val peephole : t -> unit
(** Strength-reduce identities: [add rd, rn, #0] becomes a register move,
    moves to self are dropped, multiplies by 0/1 simplify — only where flags
    are not written. *)
