open Sb_isa

(* The DBT's per-instruction translation pipeline, reachable without a
   running guest: decode -> Ir.of_decoded -> optimiser passes -> emission.
   Dbt.Make_configured's emit_uop produces closures over live machine
   state, which a static checker cannot execute; [model_uop] is its
   semantic model — the micro-op sequence each emitted closure is
   equivalent to.  The translation validator (Sb_analysis.Tv) symbolically
   executes this model against the decoder's reference semantics, so the
   specialisation table in Dbt.emit_alu / Dbt.emit_uop and the model below
   must be kept in lockstep; a divergence between the model and the
   architecture is exactly what Tv exists to report. *)


(* Test hook: a deliberately broken emitter.  Applied to every uop before
   modelling, it simulates a mis-emitted instruction so the validator's
   mutation tests can prove a real emitter bug would be caught.  Never set
   outside tests. *)
let mutation : (Uop.t -> Uop.t) option ref = ref None

let set_mutation f = mutation := f

(* Same idea for the threaded backend: applied to every IR micro-op just
   before [Threaded.compile], it simulates the token lowering emitting the
   wrong opstream while the closure emitter stays correct — so the
   validator's attribution of a divergence to the threaded component can be
   proven.  Never set outside tests. *)
let threaded_mutation : (Uop.t -> Uop.t) option ref = ref None

let set_threaded_mutation f = threaded_mutation := f

let ir_of_decoded ~config ?validate decodeds =
  let ir = Ir.of_decoded decodeds in
  let passes_run = Ir.run ?validate ~passes:config.Config.opt_passes ir in
  (ir, passes_run)

(* The threaded backend's semantic model: lower the optimised IR to an
   opstream with [Threaded.compile] and decode it straight back with
   [Threaded.model].  Unlike [model_uop] (a hand-written description of
   what each closure does), this round-trips the *actual* token encoder, so
   a wrong opcode, a misplaced operand word or a bad redundant-operand
   check shows up as a semantic divergence — attributed by the validator to
   the threaded component of the offending version. *)
let model_threaded ~config ~mmu decodeds =
  let ir, _ = ir_of_decoded ~config decodeds in
  let ir =
    match !threaded_mutation with
    | None -> ir
    | Some f ->
      Array.map
        (fun (insn : Ir.insn) ->
          { insn with Ir.uops = List.map f insn.Ir.uops })
        ir
  in
  let p = Threaded.compile ~reg_cache:config.Config.reg_cache ~mmu ir in
  Threaded.model ~mmu p

let model_uop uop =
  let uop = match !mutation with None -> uop | Some f -> f uop in
  match uop with
  | Uop.Alu { op; rd = Some rd; rn; rm; set_flags = false } -> (
    (* emit_alu's specialised non-flag forms.  The shift arms pre-compute
       the architectural amount ([land 0xFF], >=32 folds to zero, Asr
       saturates at 31); the remaining specialisations (const move,
       register move, add/sub/logic with pre-masked immediates) are
       value-identical to the generic Alu_eval path and need no rewrite
       here — Sym's folding proves them equal. *)
    match (op, rm) with
    | (Uop.Lsl | Uop.Lsr), Uop.Imm v when v land 0xFF >= 32 ->
      [
        Uop.Alu
          {
            op = Uop.Orr;
            rd = Some rd;
            rn = Uop.Imm 0;
            rm = Uop.Imm 0;
            set_flags = false;
          };
      ]
    | (Uop.Lsl | Uop.Lsr), Uop.Imm v ->
      [ Uop.Alu { op; rd = Some rd; rn; rm = Uop.Imm (v land 0xFF); set_flags = false } ]
    | Uop.Asr, Uop.Imm v ->
      [
        Uop.Alu
          {
            op;
            rd = Some rd;
            rn;
            rm = Uop.Imm (min 31 (v land 0xFF));
            set_flags = false;
          };
      ]
    | _ -> [ uop ])
  | Uop.Alu { rd = None; set_flags = false; _ } ->
    (* no destination, no flags: emit_alu emits nothing *)
    []
  | Uop.Cop_read { creg; _ } when creg < 0 || creg >= Cregs.count ->
    (* emit_uop rejects out-of-range coprocessor registers at emission
       time; the closure raises the undefined exception *)
    [ Uop.Undef ]
  | Uop.Cop_write { creg; _ } when creg < 0 || creg >= Cregs.count ->
    [ Uop.Undef ]
  | uop -> [ uop ]
