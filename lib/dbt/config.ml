type t = {
  opt_passes : int;
  emission_work : int;
  max_block_insns : int;
  chain_direct : bool;
  chain_across_pages : bool;
  chain_verify_work : int;
  mem_helper_layers : int;
  walk_extra_work : int;
  exception_sync_work : int;
  data_fault_fast_path : bool;
  tlb_entries : int;
  tlb_l2_entries : int;
  lazy_tlb_flush : bool;
  front_cache : bool;
  trace_threshold : int;
  max_trace_blocks : int;
  threaded : bool;
  reg_cache : bool;
}

let baseline =
  {
    opt_passes = 0;
    emission_work = 320;
    max_block_insns = 32;
    chain_direct = true;
    chain_across_pages = false;
    chain_verify_work = 0;
    mem_helper_layers = 0;
    walk_extra_work = 6;
    exception_sync_work = 2;
    data_fault_fast_path = false;
    tlb_entries = 256;
    tlb_l2_entries = 1024;
    lazy_tlb_flush = false;
    front_cache = true;
    trace_threshold = 0;
    max_trace_blocks = 8;
    threaded = false;
    reg_cache = false;
  }

let default =
  {
    baseline with
    opt_passes = 3;
    lazy_tlb_flush = true;
    chain_verify_work = 6;
    mem_helper_layers = 3;
    walk_extra_work = 24;
    exception_sync_work = 7;
    data_fault_fast_path = true;
    trace_threshold = 16;
    max_trace_blocks = 8;
    threaded = true;
    reg_cache = true;
  }
