open Sb_isa
open Sb_sim

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1
let u32_mask = 0xFFFF_FFFF

(* direct-mapped block-lookup front cache (QEMU's tb_jmp_cache analog) *)
let jmp_cache_bits = 10
let jmp_cache_size = 1 lsl jmp_cache_bits
let jmp_cache_mask = jmp_cache_size - 1
let jmp_hash va = (va lxor (va lsr jmp_cache_bits)) land jmp_cache_mask

(* Global opt-in hook: when set, every optimiser pass of every block
   translation (across all instantiated engines) is checked.  A ref rather
   than a Config.t knob so that installing a validator does not disturb the
   version-sweep configuration records.  The engine labels each check with
   the release name of its configuration (via Version.name_of) so a sweep
   over many DBT versions produces attributable reports. *)
type versioned_validator =
  version:string option -> pass:string -> before:Ir.t -> after:Ir.t -> unit

let pass_validator : versioned_validator option ref = ref None

module Make_configured
    (A : Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) =
struct
  let cfg = C.config

  (* release attribution for pass-validator reports; lazy because the
     reverse lookup walks the release table once per engine instance *)
  let version_name = lazy (Version.name_of cfg)

  let block_validator () =
    Option.map
      (fun f -> f ~version:(Lazy.force version_name))
      !pass_validator

  (* trace formation walks direct-chain links, so it needs chaining on and
     room for at least two constituent blocks *)
  let tracing =
    cfg.Config.trace_threshold > 0
    && cfg.Config.max_trace_blocks >= 2
    && cfg.Config.chain_direct

  let name = Printf.sprintf "dbt-%s" A.name

  let features =
    [
      ("Execution Model", "DBT");
      ( "Memory Access",
        if cfg.Config.tlb_l2_entries > 0 then "Multi-level Page Cache"
        else "Single Level Page Cache" );
      ( "Code Generation",
        if cfg.Config.threaded then "Threaded Code" else "Block-based" );
      ( "Control Flow",
        if tracing then "Block Cache + Chaining + Hot Traces"
        else if cfg.Config.chain_direct then "Block Cache + Chaining"
        else "Block Cache" );
      ("Interrupts", "Block Boundaries");
      ("Synchronous Exceptions", "Side Exit");
      ("Undefined Instruction", "Translated");
    ]

  exception Guest_fault of {
    vector : Exn.vector;
    cause : int;
    far : int option;
    return_addr : int;
    retired : int;  (* instructions of the current block fully retired *)
  }

  exception Smc_restart of { resume_va : int; retired : int }

  exception Stop of Run_result.stop_reason

  exception Stop_in_block of { reason : Run_result.stop_reason; retired : int }

  (* Two code representations share the dispatch machinery: the closure
     backend emits one host closure per micro-op; the threaded backend
     lowers the whole unit to a flat token opstream (see threaded.ml /
     docs/threaded.md) selected by [Config.threaded]. *)
  type blk_code =
    | Ops of (unit -> unit) array
    | Prog of Threaded.program * (unit -> unit)
        (* opstream plus its host-bound runner (Threaded.prepare), built
           at translation time so dispatch pays no setup *)

  type block = {
    key : int;
    va : int;
    end_va : int;
    mmu_on : bool;
    code : blk_code;
    insns : int;
    uops_total : int;
    page : int;  (* physical page of the first byte *)
    page2 : int;  (* physical page of the last byte, or -1 *)
    chain_out : bool;
    mutable valid : bool;
    mutable chain_a : (block * int) option;  (* target, chain generation *)
    mutable chain_b : (block * int) option;
    mutable hot : int;
        (* dispatches since this block last became a trace-formation
           candidate; crossing [trace_threshold] triggers stitching *)
    mutable trace : trace option;  (* hot-trace superblock headed here *)
  }

  (* A trace is a superblock: several blocks stitched across direct-branch
     seams into segments executed back-to-back with no chain-verify work
     and no per-block re-dispatch.  [t_gen] and [t_pages] tie it into the
     existing invalidation machinery: a generation bump (translation change,
     TLB maintenance) or an SMC write to any constituent page kills it. *)
  and trace = {
    t_entry : block;
    t_gen : int;  (* chain generation at formation *)
    t_pages : int list;  (* physical pages of every constituent block *)
    t_blocks : block array;
    t_segs : seg array;
    mutable t_valid : bool;
  }

  and seg = {
    s_va : int;
    s_end_va : int;
    s_page : int;
    s_page2 : int;
    s_insns : int;
    s_uops : int;
    s_uncond : bool;
        (* the seam into the next segment is an unconditional direct branch
           whose pc write was elided at emission; the runtime pc check is
           skipped (and pc must be restored if the trace side-exits here) *)
    s_code : blk_code;
  }

  type ctx = {
    machine : Machine.t;
    cpu : Cpu.t;
    bus : Sb_mem.Bus.t;
    perf : Perf.t;
    pcache : Page_cache.t;
    cache : (int, block) Hashtbl.t;
    jmp_blocks : block option array;
        (* front cache ahead of [cache], indexed by a hash of the virtual
           PC; an entry is live only while its generation matches
           [chain_gen] and the block is still valid, so the same machinery
           that invalidates chains (translation changes, SMC) covers it *)
    jmp_gens : int array;
    by_page : (int, block list ref) Hashtbl.t;
    traces_by_page : (int, trace list ref) Hashtbl.t;
    code_pages : Bytes.t;
    shadow_regs : int array;
    shadow_cop : int array;
    dtlb_r : Sb_mmu.Mtlb.t;
        (* (va -> host page offset) micro-TLBs backing the threaded
           backend's flat-memory fast paths; filled by the slow paths below,
           shot down with the page cache (TLB maintenance, translation
           changes).  Unused by the closure backend. *)
    dtlb_w : Sb_mmu.Mtlb.t;
    itlb : Sb_mmu.Mtlb.t;
    mutable thost : Threaded.host option;  (* built lazily on first Prog *)
    mutable sync_token : int;
    mutable cur_page : int;
    mutable cur_page2 : int;
    mutable timer_backlog : int;
    mutable chain_gen : int;
        (* bumped on any event that may change va->pa mappings (TTBR/SCTLR
           writes, TLB maintenance); stale chains are ignored, exactly like
           QEMU flushing its tb_jmp_cache on tlb_flush *)
  }

  let make_ctx machine perf =
    let ram_pages = (Sb_mem.Bus.ram_size machine.Machine.bus + page_mask) / page_size in
    {
      machine;
      cpu = machine.Machine.cpu;
      bus = machine.Machine.bus;
      perf;
      pcache =
        Page_cache.create ~l1_entries:cfg.Config.tlb_entries
          ~l2_entries:cfg.Config.tlb_l2_entries ~lazy_flush:cfg.Config.lazy_tlb_flush;
      cache = Hashtbl.create 1024;
      jmp_blocks = Array.make jmp_cache_size None;
      jmp_gens = Array.make jmp_cache_size (-1);
      by_page = Hashtbl.create 64;
      traces_by_page = Hashtbl.create 16;
      code_pages = Bytes.make ((ram_pages + 7) / 8) '\000';
      shadow_regs = Array.make 16 0;
      shadow_cop = Array.make Cregs.count 0;
      dtlb_r = Sb_mmu.Mtlb.create ~entries:256;
      dtlb_w = Sb_mmu.Mtlb.create ~entries:256;
      itlb = Sb_mmu.Mtlb.create ~entries:256;
      thost = None;
      sync_token = 0;
      cur_page = -1;
      cur_page2 = -1;
      timer_backlog = 0;
      chain_gen = 0;
    }

  (* ---------------- state sync (exception entry cost model) ------------- *)

  let sync_state ctx =
    for _ = 1 to cfg.Config.exception_sync_work do
      Array.blit ctx.cpu.Cpu.regs 0 ctx.shadow_regs 0 16;
      Array.blit ctx.cpu.Cpu.cop 0 ctx.shadow_cop 0 Cregs.count;
      ctx.sync_token <- (ctx.sync_token + ctx.shadow_regs.(0) + ctx.shadow_cop.(0)) land max_int
    done

  let chain_verify ctx (blk : block) =
    for _ = 1 to cfg.Config.chain_verify_work do
      ctx.sync_token <-
        (ctx.sync_token + blk.key + Bool.to_int blk.valid) land max_int
    done

  (* ---------------- faults -------------------------------------------- *)

  let data_fault ~iaddr ~retired ~kind ~va fault =
    let cause = Exn.Cause.of_fault ~kind fault in
    match kind with
    | Sb_mmu.Access.Execute ->
      raise
        (Guest_fault
           { vector = Exn.Prefetch_abort; cause; far = Some va; return_addr = iaddr; retired })
    | Sb_mmu.Access.Read | Sb_mmu.Access.Write ->
      raise
        (Guest_fault
           { vector = Exn.Data_abort; cause; far = Some va; return_addr = iaddr; retired })

  let bus_fault ~iaddr ~retired ~kind ~va =
    let vector =
      match kind with
      | Sb_mmu.Access.Execute -> Exn.Prefetch_abort
      | Sb_mmu.Access.Read | Sb_mmu.Access.Write -> Exn.Data_abort
    in
    raise
      (Guest_fault
         {
           vector;
           cause = Exn.Cause.bus_error;
           far = Some va;
           return_addr = iaddr;
           retired;
         })

  let walker_read32 ctx pa =
    try Sb_mem.Bus.read32 ctx.bus pa with Sb_mem.Bus.Fault _ -> 0

  (* Slow path: L2 probe, then a table walk filling the cache. *)
  let translate_slow ctx ~va ~kind ~priv ~iaddr ~retired =
    let vpn = va lsr page_shift in
    let asid = ctx.cpu.Cpu.cop.(Cregs.asid) in
    let entry =
      match Page_cache.lookup_l2 ctx.pcache ~vpn ~asid with
      | Some e ->
        Perf.incr ctx.perf Perf.Tlb_hit;
        e
      | None -> (
        Perf.incr ctx.perf Perf.Tlb_miss;
        Perf.incr ctx.perf Perf.Mmu_walks;
        (* page-table-format disambiguation: QEMU-style multi-variant MMU *)
        for step = 1 to cfg.Config.walk_extra_work * 4 do
          ctx.sync_token <-
            (ctx.sync_token + ((va lsr (step land 31)) lxor step)) land max_int
        done;
        let ttbr = ctx.cpu.Cpu.cop.(Cregs.ttbr) in
        match Sb_mmu.Walker.walk ~read32:(walker_read32 ctx) ~ttbr ~va with
        | Error fault -> data_fault ~iaddr ~retired ~kind ~va fault
        | Ok m ->
          Perf.add ctx.perf Perf.Walk_levels m.Sb_mmu.Walker.levels;
          let e =
            {
              Page_cache.vpn;
              ppn = m.Sb_mmu.Walker.pa_page lsr page_shift;
              ap = m.Sb_mmu.Walker.ap;
              xn = m.Sb_mmu.Walker.xn;
              asid;
            }
          in
          Page_cache.insert ctx.pcache e;
          e)
    in
    if Sb_mmu.Access.Ap.permits ~ap:entry.Page_cache.ap ~xn:entry.Page_cache.xn kind priv
    then (entry.Page_cache.ppn lsl page_shift) lor (va land page_mask)
    else data_fault ~iaddr ~retired ~kind ~va Sb_mmu.Access.Permission

  let translate ctx ~va ~kind ~priv ~iaddr ~retired =
    if not (Cpu.mmu_enabled ctx.cpu) then va
    else
      let vpn = va lsr page_shift in
      match Page_cache.lookup_l1 ctx.pcache ~vpn ~asid:ctx.cpu.Cpu.cop.(Cregs.asid) with
      | Some e ->
        Perf.incr ctx.perf Perf.Tlb_hit;
        if Sb_mmu.Access.Ap.permits ~ap:e.Page_cache.ap ~xn:e.Page_cache.xn kind priv
        then (e.Page_cache.ppn lsl page_shift) lor (va land page_mask)
        else data_fault ~iaddr ~retired ~kind ~va Sb_mmu.Access.Permission
      | None -> translate_slow ctx ~va ~kind ~priv ~iaddr ~retired

  (* ---------------- code-page bitmap and block invalidation ------------ *)

  let code_bit_get ctx ppage =
    Char.code (Bytes.get ctx.code_pages (ppage lsr 3)) land (1 lsl (ppage land 7)) <> 0

  let code_bit_set ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) lor (1 lsl (ppage land 7))))

  let code_bit_clear ctx ppage =
    let i = ppage lsr 3 in
    Bytes.set ctx.code_pages i
      (Char.chr (Char.code (Bytes.get ctx.code_pages i) land lnot (1 lsl (ppage land 7))))

  let invalidate_trace ctx (tr : trace) =
    if tr.t_valid then begin
      tr.t_valid <- false;
      Perf.incr ctx.perf Perf.Trace_invalidations;
      (* detach from the entry block (unless a newer trace replaced this
         one) and let every constituent re-profile from scratch *)
      (match tr.t_entry.trace with
      | Some cur when cur == tr -> tr.t_entry.trace <- None
      | _ -> ());
      Array.iter (fun b -> b.hot <- 0) tr.t_blocks
    end

  let invalidate_page ctx ppage =
    (match Hashtbl.find_opt ctx.by_page ppage with
    | Some blocks ->
      List.iter
        (fun blk ->
          blk.valid <- false;
          blk.chain_a <- None;
          blk.chain_b <- None;
          Hashtbl.remove ctx.cache blk.key)
        !blocks;
      Hashtbl.remove ctx.by_page ppage
    | None -> ());
    (match Hashtbl.find_opt ctx.traces_by_page ppage with
    | Some traces ->
      List.iter (invalidate_trace ctx) !traces;
      Hashtbl.remove ctx.traces_by_page ppage
    | None -> ());
    code_bit_clear ctx ppage;
    Perf.incr ctx.perf Perf.Smc_invalidations

  (* ---------------- physical access helpers --------------------------- *)

  let read_phys ctx ~iaddr ~retired ~va width pa =
    if Sb_mem.Bus.is_ram ctx.bus pa then
      let ram = Sb_mem.Bus.ram ctx.bus in
      match width with
      | Uop.W8 -> Sb_mem.Phys_mem.read8 ram pa
      | Uop.W16 -> Sb_mem.Phys_mem.read16 ram pa
      | Uop.W32 -> Sb_mem.Phys_mem.read32 ram pa
    else begin
      Perf.incr ctx.perf Perf.Io_reads;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.read8 ctx.bus pa
        | Uop.W16 -> Sb_mem.Bus.read16 ctx.bus pa
        | Uop.W32 -> Sb_mem.Bus.read32 ctx.bus pa
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~retired ~kind:Sb_mmu.Access.Read ~va
    end

  let write_phys ctx ~iaddr ~retired ~resume_va ~va width pa v =
    if Sb_mem.Bus.is_ram ctx.bus pa then begin
      let ram = Sb_mem.Bus.ram ctx.bus in
      (match width with
      | Uop.W8 -> Sb_mem.Phys_mem.write8 ram pa v
      | Uop.W16 -> Sb_mem.Phys_mem.write16 ram pa v
      | Uop.W32 -> Sb_mem.Phys_mem.write32 ram pa v);
      let ppage = pa lsr page_shift in
      if code_bit_get ctx ppage then begin
        invalidate_page ctx ppage;
        (* if we clobbered the running block's own pages, stop executing its
           stale tail and restart dispatch after this store *)
        if ppage = ctx.cur_page || ppage = ctx.cur_page2 then
          raise (Smc_restart { resume_va; retired = retired + 1 })
      end
    end
    else begin
      Perf.incr ctx.perf Perf.Io_writes;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.write8 ctx.bus pa v
        | Uop.W16 -> Sb_mem.Bus.write16 ctx.bus pa v
        | Uop.W32 -> Sb_mem.Bus.write32 ctx.bus pa v
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~retired ~kind:Sb_mmu.Access.Write ~va
    end

  (* ---------------- emission ------------------------------------------ *)

  let rec wrap_layers n f = if n <= 0 then f else wrap_layers (n - 1) (fun () -> f ())

  let undef_fault ~iva ~iidx () =
    raise
      (Guest_fault
         {
           vector = Exn.Undefined;
           cause = Exn.Cause.undefined;
           far = None;
           return_addr = iva;
           retired = iidx;
         })

  let emit_alu ctx ~set_flags ~op ~rd ~rn ~rm =
    let cpu = ctx.cpu in
    let regs = cpu.Cpu.regs in
    if set_flags then begin
      let read_rn = match rn with Uop.Reg r -> (fun () -> regs.(r)) | Uop.Imm v -> (fun () -> v land u32_mask) in
      let read_rm = match rm with Uop.Reg r -> (fun () -> regs.(r)) | Uop.Imm v -> (fun () -> v land u32_mask) in
      match rd with
      | Some rd ->
        fun () ->
          let result, n, z, c, v = Alu_eval.eval_flags op (read_rn ()) (read_rm ()) in
          cpu.Cpu.flag_n <- n;
          cpu.Cpu.flag_z <- z;
          cpu.Cpu.flag_c <- c;
          cpu.Cpu.flag_v <- v;
          regs.(rd) <- result
      | None ->
        fun () ->
          let _, n, z, c, v = Alu_eval.eval_flags op (read_rn ()) (read_rm ()) in
          cpu.Cpu.flag_n <- n;
          cpu.Cpu.flag_z <- z;
          cpu.Cpu.flag_c <- c;
          cpu.Cpu.flag_v <- v
    end
    else
      match rd with
      | None -> fun () -> ()
      | Some rd -> (
        (* specialised forms: this is where translated code beats the
           interpreter's fully-generic dispatch *)
        match (op, rn, rm) with
        | Uop.Orr, Uop.Imm 0, Uop.Imm v | Uop.Orr, Uop.Imm v, Uop.Imm 0 ->
          let v = v land u32_mask in
          fun () -> regs.(rd) <- v
        | Uop.Orr, Uop.Reg r, Uop.Imm 0 -> fun () -> regs.(rd) <- regs.(r)
        | Uop.Add, Uop.Reg r, Uop.Imm v ->
          fun () -> regs.(rd) <- (regs.(r) + v) land u32_mask
        | Uop.Sub, Uop.Reg r, Uop.Imm v ->
          fun () -> regs.(rd) <- (regs.(r) - v) land u32_mask
        | Uop.Add, Uop.Reg a, Uop.Reg b ->
          fun () -> regs.(rd) <- (regs.(a) + regs.(b)) land u32_mask
        | Uop.Sub, Uop.Reg a, Uop.Reg b ->
          fun () -> regs.(rd) <- (regs.(a) - regs.(b)) land u32_mask
        | Uop.And_, Uop.Reg a, Uop.Reg b -> fun () -> regs.(rd) <- regs.(a) land regs.(b)
        | Uop.And_, Uop.Reg a, Uop.Imm v -> fun () -> regs.(rd) <- regs.(a) land v
        | Uop.Orr, Uop.Reg a, Uop.Reg b -> fun () -> regs.(rd) <- regs.(a) lor regs.(b)
        | Uop.Orr, Uop.Reg a, Uop.Imm v ->
          let v = v land u32_mask in
          fun () -> regs.(rd) <- regs.(a) lor v
        | Uop.Xor, Uop.Reg a, Uop.Reg b -> fun () -> regs.(rd) <- regs.(a) lxor regs.(b)
        | Uop.Xor, Uop.Reg a, Uop.Imm v ->
          let v = v land u32_mask in
          fun () -> regs.(rd) <- regs.(a) lxor v
        | Uop.Mul, Uop.Reg a, Uop.Reg b ->
          fun () -> regs.(rd) <- (regs.(a) * regs.(b)) land u32_mask
        | Uop.Mul, Uop.Reg a, Uop.Imm v ->
          let v = v land u32_mask in
          fun () -> regs.(rd) <- (regs.(a) * v) land u32_mask
        | Uop.Lsl, Uop.Reg a, Uop.Imm v ->
          let v = v land 0xFF in
          if v >= 32 then fun () -> regs.(rd) <- 0
          else fun () -> regs.(rd) <- (regs.(a) lsl v) land u32_mask
        | Uop.Lsr, Uop.Reg a, Uop.Imm v ->
          let v = v land 0xFF in
          if v >= 32 then fun () -> regs.(rd) <- 0
          else fun () -> regs.(rd) <- regs.(a) lsr v
        | Uop.Asr, Uop.Reg a, Uop.Imm v ->
          let v = min 31 (v land 0xFF) in
          fun () -> regs.(rd) <- Sb_util.U32.of_int (Sb_util.U32.to_signed regs.(a) asr v)
        | Uop.Lsl, Uop.Reg a, Uop.Reg b ->
          fun () -> regs.(rd) <- Sb_util.U32.shift_left regs.(a) (regs.(b) land 0xFF)
        | Uop.Lsr, Uop.Reg a, Uop.Reg b ->
          fun () -> regs.(rd) <- Sb_util.U32.shift_right_logical regs.(a) (regs.(b) land 0xFF)
        | _ ->
          let read_rn = match rn with Uop.Reg r -> (fun () -> regs.(r)) | Uop.Imm v -> (fun () -> v land u32_mask) in
          let read_rm = match rm with Uop.Reg r -> (fun () -> regs.(r)) | Uop.Imm v -> (fun () -> v land u32_mask) in
          fun () -> regs.(rd) <- Alu_eval.eval op (read_rn ()) (read_rm ()))

  let emit_load ctx ~mmu_on ~iva ~iidx ~width ~rd ~base ~offset ~user =
    let cpu = ctx.cpu in
    let regs = cpu.Cpu.regs in
    let perf = ctx.perf in
    let read_base =
      match base with
      | Uop.Reg r -> fun () -> regs.(r)
      | Uop.Imm v -> fun () -> v land u32_mask
    in
    let body =
      if not mmu_on then (fun () ->
        Perf.incr perf Perf.Loads;
        if user then Perf.incr perf Perf.User_accesses;
        let va = (read_base () + offset) land u32_mask in
        regs.(rd) <- read_phys ctx ~iaddr:iva ~retired:iidx ~va width va)
      else fun () ->
        Perf.incr perf Perf.Loads;
        if user then Perf.incr perf Perf.User_accesses;
        let va = (read_base () + offset) land u32_mask in
        let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
        let vpn = va lsr page_shift in
        let pa =
          match
            Page_cache.lookup_l1 ctx.pcache ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid)
          with
          | Some e
            when Sb_mmu.Access.Ap.permits ~ap:e.Page_cache.ap ~xn:e.Page_cache.xn
                   Sb_mmu.Access.Read priv ->
            Perf.incr perf Perf.Tlb_hit;
            (e.Page_cache.ppn lsl page_shift) lor (va land page_mask)
          | _ ->
            translate_slow ctx ~va ~kind:Sb_mmu.Access.Read ~priv ~iaddr:iva
              ~retired:iidx
        in
        regs.(rd) <- read_phys ctx ~iaddr:iva ~retired:iidx ~va width pa
    in
    wrap_layers cfg.Config.mem_helper_layers body

  let emit_store ctx ~mmu_on ~iva ~ilen ~iidx ~width ~rs ~base ~offset ~user =
    let cpu = ctx.cpu in
    let regs = cpu.Cpu.regs in
    let perf = ctx.perf in
    let resume_va = iva + ilen in
    let read_base =
      match base with
      | Uop.Reg r -> fun () -> regs.(r)
      | Uop.Imm v -> fun () -> v land u32_mask
    in
    let body =
      if not mmu_on then (fun () ->
        Perf.incr perf Perf.Stores;
        if user then Perf.incr perf Perf.User_accesses;
        let va = (read_base () + offset) land u32_mask in
        write_phys ctx ~iaddr:iva ~retired:iidx ~resume_va ~va width va regs.(rs))
      else fun () ->
        Perf.incr perf Perf.Stores;
        if user then Perf.incr perf Perf.User_accesses;
        let va = (read_base () + offset) land u32_mask in
        let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
        let vpn = va lsr page_shift in
        let pa =
          match
            Page_cache.lookup_l1 ctx.pcache ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid)
          with
          | Some e
            when Sb_mmu.Access.Ap.permits ~ap:e.Page_cache.ap ~xn:e.Page_cache.xn
                   Sb_mmu.Access.Write priv ->
            Perf.incr perf Perf.Tlb_hit;
            (e.Page_cache.ppn lsl page_shift) lor (va land page_mask)
          | _ ->
            translate_slow ctx ~va ~kind:Sb_mmu.Access.Write ~priv ~iaddr:iva
              ~retired:iidx
        in
        write_phys ctx ~iaddr:iva ~retired:iidx ~resume_va ~va width pa regs.(rs)
    in
    wrap_layers cfg.Config.mem_helper_layers body

  let emit_branch ctx ~iva ~ilen ~cond ~target ~link =
    let cpu = ctx.cpu in
    let regs = cpu.Cpu.regs in
    let perf = ctx.perf in
    let ret = (iva + ilen) land u32_mask in
    let do_link =
      match link with
      | Some l -> fun () -> regs.(l) <- ret
      | None -> fun () -> ()
    in
    let counter =
      match target with
      | Uop.Direct _ -> Perf.Branch_direct
      | Uop.Indirect _ -> Perf.Branch_indirect
    in
    let set_pc =
      match target with
      | Uop.Direct t -> fun () -> cpu.Cpu.pc <- t
      | Uop.Indirect r -> fun () -> cpu.Cpu.pc <- regs.(r)
    in
    match cond with
    | Uop.Always ->
      fun () ->
        Perf.incr perf counter;
        Perf.incr perf Perf.Branch_taken;
        do_link ();
        set_pc ()
    | _ ->
      let test =
        match cond with
        | Uop.Always -> fun () -> true
        | Uop.Eq -> fun () -> cpu.Cpu.flag_z
        | Uop.Ne -> fun () -> not cpu.Cpu.flag_z
        | Uop.Lt -> fun () -> cpu.Cpu.flag_n <> cpu.Cpu.flag_v
        | Uop.Ge -> fun () -> cpu.Cpu.flag_n = cpu.Cpu.flag_v
        | Uop.Ltu -> fun () -> not cpu.Cpu.flag_c
        | Uop.Geu -> fun () -> cpu.Cpu.flag_c
      in
      fun () ->
        Perf.incr perf counter;
        if test () then begin
          Perf.incr perf Perf.Branch_taken;
          do_link ();
          set_pc ()
        end

  let emit_uop ctx ~mmu_on ~iva ~ilen ~iidx uop =
    let cpu = ctx.cpu in
    let regs = cpu.Cpu.regs in
    let perf = ctx.perf in
    match uop with
    | Uop.Nop -> fun () -> ()
    | Uop.Alu { op; rd; rn; rm; set_flags } -> emit_alu ctx ~set_flags ~op ~rd ~rn ~rm
    | Uop.Load { width; rd; base; offset; user } ->
      emit_load ctx ~mmu_on ~iva ~iidx ~width ~rd ~base ~offset ~user
    | Uop.Store { width; rs; base; offset; user } ->
      emit_store ctx ~mmu_on ~iva ~ilen ~iidx ~width ~rs ~base ~offset ~user
    | Uop.Branch { cond; target; link } -> emit_branch ctx ~iva ~ilen ~cond ~target ~link
    | Uop.Svc _ ->
      fun () ->
        raise
          (Guest_fault
             {
               vector = Exn.Syscall;
               cause = Exn.Cause.syscall;
               far = None;
               return_addr = (iva + ilen) land u32_mask;
               retired = iidx;
             })
    | Uop.Undef -> undef_fault ~iva ~iidx
    | Uop.Eret -> fun () -> Exn.eret cpu
    | Uop.Cop_read { rd; creg } ->
      if creg < 0 || creg >= Cregs.count then undef_fault ~iva ~iidx
      else fun () ->
        Perf.incr perf Perf.Cop_reads;
        regs.(rd) <- cpu.Cpu.cop.(creg)
    | Uop.Cop_write { creg; src } ->
      if creg < 0 || creg >= Cregs.count then undef_fault ~iva ~iidx
      else
        let read_src =
          match src with
          | Uop.Reg r -> fun () -> regs.(r)
          | Uop.Imm v -> fun () -> v land u32_mask
        in
        fun () ->
          Perf.incr perf Perf.Cop_writes;
          (match Cop.write cpu ~creg ~value:(read_src ()) with
          | Ok Cop.No_effect -> ()
          | Ok Cop.Asid_changed ->
            (* tagged page cache: entries of other address spaces persist;
               chains stay valid because blocks are keyed physically *)
            ()
          | Ok Cop.Translation_changed ->
            Page_cache.flush ctx.pcache;
            ctx.chain_gen <- ctx.chain_gen + 1
          | Error `Undefined -> undef_fault ~iva ~iidx ())
    | Uop.Tlb_inv_page r ->
      fun () ->
        Perf.incr perf Perf.Tlb_inv_page_ops;
        Page_cache.invalidate_page ctx.pcache
          ~vpn:(regs.(r) lsr page_shift)
          ~asid:cpu.Cpu.cop.(Cregs.asid);
        ctx.chain_gen <- ctx.chain_gen + 1
    | Uop.Tlb_inv_all ->
      fun () ->
        Perf.incr perf Perf.Tlb_flush_ops;
        Page_cache.flush ctx.pcache;
        ctx.chain_gen <- ctx.chain_gen + 1
    | Uop.Wfi ->
      fun () -> (
        match Runner.wait_for_interrupt ctx.machine ~perf with
        | `Wake -> ()
        | `Deadlock ->
          raise (Stop_in_block { reason = Run_result.Wfi_deadlock; retired = iidx }))
    | Uop.Halt ->
      fun () -> raise (Stop_in_block { reason = Run_result.Halted; retired = iidx })

  (* ---------------- threaded-backend host ------------------------------ *)

  let priv_code = function Sb_mmu.Access.Kernel -> 1 | Sb_mmu.Access.User -> 0

  (* Fill a micro-TLB entry after a successful walk + permission check,
     provided the whole guest page is backed by flat RAM (RAM occupies
     [0, ram_size), so host offset = physical address).  [priv] is the
     privilege the permission check actually used; it tags the entry, so a
     mode change can never satisfy a probe the check didn't cover. *)
  let mtlb_fill ctx mtlb ~va ~pa ~priv =
    let page_base = pa land lnot page_mask in
    if page_base + page_size <= Sb_mem.Bus.ram_size ctx.bus then
      Sb_mmu.Mtlb.fill mtlb ~vpn:(va lsr page_shift)
        ~asid:ctx.cpu.Cpu.cop.(Cregs.asid)
        ~priv:(priv_code priv) ~base:page_base

  let mtlb_flush_all ctx =
    Sb_mmu.Mtlb.flush ctx.dtlb_r;
    Sb_mmu.Mtlb.flush ctx.dtlb_w;
    Sb_mmu.Mtlb.flush ctx.itlb

  (* The callbacks behind Threaded.exec: the architectural slow paths of
     the closure backend, re-entered from opstream tokens.  Loads/stores
     land here on a micro-TLB miss (or MMIO / page-crossing / user-mode
     access) and refill the micro-TLB on a successful RAM translation. *)
  let make_host ctx =
    let cpu = ctx.cpu in
    let h_load_slow ~mmu ~width ~user ~va ~iva ~iidx =
      if not mmu then read_phys ctx ~iaddr:iva ~retired:iidx ~va width va
      else begin
        let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
        let vpn = va lsr page_shift in
        let pa =
          match
            Page_cache.lookup_l1 ctx.pcache ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid)
          with
          | Some e
            when Sb_mmu.Access.Ap.permits ~ap:e.Page_cache.ap ~xn:e.Page_cache.xn
                   Sb_mmu.Access.Read priv ->
            Perf.incr ctx.perf Perf.Tlb_hit;
            (e.Page_cache.ppn lsl page_shift) lor (va land page_mask)
          | _ ->
            translate_slow ctx ~va ~kind:Sb_mmu.Access.Read ~priv ~iaddr:iva
              ~retired:iidx
        in
        mtlb_fill ctx ctx.dtlb_r ~va ~pa ~priv;
        read_phys ctx ~iaddr:iva ~retired:iidx ~va width pa
      end
    in
    let h_store_slow ~mmu ~width ~user ~va ~v ~iva ~resume_va ~iidx =
      if not mmu then
        write_phys ctx ~iaddr:iva ~retired:iidx ~resume_va ~va width va v
      else begin
        let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
        let vpn = va lsr page_shift in
        let pa =
          match
            Page_cache.lookup_l1 ctx.pcache ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid)
          with
          | Some e
            when Sb_mmu.Access.Ap.permits ~ap:e.Page_cache.ap ~xn:e.Page_cache.xn
                   Sb_mmu.Access.Write priv ->
            Perf.incr ctx.perf Perf.Tlb_hit;
            (e.Page_cache.ppn lsl page_shift) lor (va land page_mask)
          | _ ->
            translate_slow ctx ~va ~kind:Sb_mmu.Access.Write ~priv ~iaddr:iva
              ~retired:iidx
        in
        mtlb_fill ctx ctx.dtlb_w ~va ~pa ~priv;
        write_phys ctx ~iaddr:iva ~retired:iidx ~resume_va ~va width pa v
      end
    in
    let h_store_smc ~ppage ~resume_va ~iidx =
      invalidate_page ctx ppage;
      if ppage = ctx.cur_page || ppage = ctx.cur_page2 then
        raise (Smc_restart { resume_va; retired = iidx + 1 })
    in
    let h_svc ~ret ~iidx =
      raise
        (Guest_fault
           {
             vector = Exn.Syscall;
             cause = Exn.Cause.syscall;
             far = None;
             return_addr = ret;
             retired = iidx;
           })
    in
    let h_undef ~iva ~iidx = undef_fault ~iva ~iidx () in
    let h_cop_write ~creg ~value ~iva ~iidx =
      Perf.incr ctx.perf Perf.Cop_writes;
      match Cop.write cpu ~creg ~value with
      | Ok Cop.No_effect -> ()
      | Ok Cop.Asid_changed ->
        (* micro-TLB entries are asid-tagged, like the page cache *)
        ()
      | Ok Cop.Translation_changed ->
        Page_cache.flush ctx.pcache;
        ctx.chain_gen <- ctx.chain_gen + 1;
        mtlb_flush_all ctx
      | Error `Undefined -> undef_fault ~iva ~iidx ()
    in
    let h_tlb_inv_page ~va =
      Perf.incr ctx.perf Perf.Tlb_inv_page_ops;
      let vpn = va lsr page_shift in
      Page_cache.invalidate_page ctx.pcache ~vpn ~asid:cpu.Cpu.cop.(Cregs.asid);
      ctx.chain_gen <- ctx.chain_gen + 1;
      Sb_mmu.Mtlb.invalidate_page ctx.dtlb_r ~vpn;
      Sb_mmu.Mtlb.invalidate_page ctx.dtlb_w ~vpn;
      Sb_mmu.Mtlb.invalidate_page ctx.itlb ~vpn
    in
    let h_tlb_inv_all () =
      Perf.incr ctx.perf Perf.Tlb_flush_ops;
      Page_cache.flush ctx.pcache;
      ctx.chain_gen <- ctx.chain_gen + 1;
      mtlb_flush_all ctx
    in
    let h_wfi ~iidx =
      match Runner.wait_for_interrupt ctx.machine ~perf:ctx.perf with
      | `Wake -> ()
      | `Deadlock ->
        raise (Stop_in_block { reason = Run_result.Wfi_deadlock; retired = iidx })
    in
    let h_halt ~iidx =
      raise (Stop_in_block { reason = Run_result.Halted; retired = iidx })
    in
    {
      Threaded.h_cpu = cpu;
      h_perf = ctx.perf;
      h_ram = Sb_mem.Bus.ram ctx.bus;
      h_ram_limit = Sb_mem.Bus.ram_size ctx.bus;
      h_code_pages = ctx.code_pages;
      h_dtlb_r = ctx.dtlb_r;
      h_dtlb_w = ctx.dtlb_w;
      h_load_slow;
      h_store_slow;
      h_store_smc;
      h_svc;
      h_undef;
      h_cop_write;
      h_tlb_inv_page;
      h_tlb_inv_all;
      h_wfi;
      h_halt;
    }

  let host_of ctx =
    match ctx.thost with
    | Some h -> h
    | None ->
      let h = make_host ctx in
      ctx.thost <- Some h;
      h

  let exec_code _ctx = function
    | Ops ops ->
      for i = 0 to Array.length ops - 1 do
        (Array.unsafe_get ops i) ()
      done
    | Prog (_, run) -> run ()

  (* ---------------- translation --------------------------------------- *)

  let trans_fetch8 ctx ~iaddr a =
    let fast =
      (* threaded backend: code fetch probes its own micro-TLB before the
         page cache, mirroring the data-side fast path *)
      if cfg.Config.threaded && Cpu.mmu_enabled ctx.cpu then
        Sb_mmu.Mtlb.probe ctx.itlb ~vpn:(a lsr page_shift)
          ~asid:ctx.cpu.Cpu.cop.(Cregs.asid)
          ~priv:(priv_code ctx.cpu.Cpu.mode)
      else -1
    in
    if fast >= 0 then begin
      Perf.incr ctx.perf Perf.Tlb_fast_hits;
      Sb_mem.Phys_mem.unsafe_read8 (Sb_mem.Bus.ram ctx.bus)
        (fast lor (a land page_mask))
    end
    else
      let pa =
        translate ctx ~va:a ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode
          ~iaddr ~retired:0
      in
      if Sb_mem.Bus.is_ram ctx.bus pa then begin
        if cfg.Config.threaded && Cpu.mmu_enabled ctx.cpu then
          mtlb_fill ctx ctx.itlb ~va:a ~pa ~priv:ctx.cpu.Cpu.mode;
        Sb_mem.Phys_mem.read8 (Sb_mem.Bus.ram ctx.bus) pa
      end
      else bus_fault ~iaddr ~retired:0 ~kind:Sb_mmu.Access.Execute ~va:a

  let ends_in_direct_or_fallthrough (decodeds : Uop.decoded list) =
    (* decodeds is in reverse order (head = last decoded) *)
    match decodeds with
    | [] -> false
    | last :: _ -> (
      match List.rev last.Uop.uops with
      | Uop.Branch { target = Uop.Direct _; _ } :: _ -> true
      | Uop.Branch { target = Uop.Indirect _; _ } :: _ -> false
      | (Uop.Svc _ | Uop.Undef | Uop.Eret | Uop.Wfi | Uop.Halt) :: _ -> false
      | _ -> true (* length cap, page end, or translation-affecting op *))

  (* decode one block's worth of instructions starting at [va]; result is in
     reverse order (head = last decoded).  Shared between block translation
     and trace stitching, which re-decodes constituent blocks. *)
  let decode_block_rev ctx va =
    let start_page_va = va lsr page_shift in
    let rec decode_loop acc cur count =
      if count >= cfg.Config.max_block_insns then acc
      else if count > 0 && cur lsr page_shift <> start_page_va then acc
      else begin
        let d = A.decode ~fetch8:(trans_fetch8 ctx ~iaddr:cur) ~addr:cur in
        Perf.incr ctx.perf Perf.Decodes;
        let acc = d :: acc in
        if d.Uop.terminates_block then acc
        else decode_loop acc (cur + d.Uop.length) (count + 1)
      end
    in
    decode_loop [] va 0

  let translate_block ctx va =
    Perf.incr ctx.perf Perf.Blocks_translated;
    (* fixed per-block cost: TB allocation, prologue/epilogue emission,
       direct-jump stub patching *)
    for unit = 1 to cfg.Config.emission_work * 6 do
      ctx.sync_token <- (ctx.sync_token + (va lxor (unit * 0x5851))) land max_int
    done;
    let mmu_on = Cpu.mmu_enabled ctx.cpu in
    let rev_decodeds = decode_block_rev ctx va in
    let chain_out = ends_in_direct_or_fallthrough rev_decodeds in
    let decodeds = List.rev rev_decodeds in
    let ir = Ir.of_decoded decodeds in
    let passes_run =
      Ir.run ?validate:(block_validator ()) ~passes:cfg.Config.opt_passes ir
    in
    Perf.add ctx.perf Perf.Opt_passes_run passes_run;
    let end_va =
      match rev_decodeds with
      | last :: _ -> (last.Uop.addr + last.Uop.length) land u32_mask
      | [] -> va
    in
    (* emit *)
    let uops_total = ref 0 in
    let code =
      if cfg.Config.threaded then begin
        (* token lowering pays the same per-uop host-emission cost as the
           closure backend — the win is on the execution side *)
        Array.iter
          (fun (insn : Ir.insn) ->
            List.iter
              (fun _uop ->
                incr uops_total;
                for unit = 1 to cfg.Config.emission_work do
                  ctx.sync_token <-
                    (ctx.sync_token + (insn.Ir.va lxor (unit * 0x9E37)))
                    land max_int
                done)
              insn.Ir.uops)
          ir;
        let p =
          Threaded.compile ~reg_cache:cfg.Config.reg_cache ~mmu:mmu_on ir
        in
        Perf.add ctx.perf Perf.Opstream_bytes (8 * Array.length p.Threaded.code);
        Prog (p, Threaded.prepare (host_of ctx) p)
      end
      else begin
        let ops = ref [] in
        Array.iteri
          (fun iidx (insn : Ir.insn) ->
            List.iter
              (fun uop ->
                incr uops_total;
                (* host machine-code emission: select, encode and write the
                   "code bytes" for this micro-op into the code buffer *)
                for unit = 1 to cfg.Config.emission_work do
                  ctx.sync_token <-
                    (ctx.sync_token + (insn.Ir.va lxor (unit * 0x9E37)))
                    land max_int
                done;
                ops :=
                  emit_uop ctx ~mmu_on ~iva:insn.Ir.va ~ilen:insn.Ir.len ~iidx
                    uop
                  :: !ops)
              insn.Ir.uops)
          ir;
        Ops (Array.of_list (List.rev !ops))
      end
    in
    (* physical placement for invalidation *)
    let start_pa =
      translate ctx ~va ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr:va
        ~retired:0
    in
    let last_byte_va = end_va - 1 in
    let end_pa =
      if last_byte_va lsr page_shift = va lsr page_shift then
        (start_pa land lnot page_mask) lor (last_byte_va land page_mask)
      else
        translate ctx ~va:last_byte_va ~kind:Sb_mmu.Access.Execute
          ~priv:ctx.cpu.Cpu.mode ~iaddr:va ~retired:0
    in
    let page = start_pa lsr page_shift in
    let page2 =
      let p2 = end_pa lsr page_shift in
      if p2 = page then -1 else p2
    in
    let key = (start_pa lsl 1) lor Bool.to_int mmu_on in
    let blk =
      {
        key;
        va;
        end_va;
        mmu_on;
        code;
        insns = Array.length ir;
        uops_total = !uops_total;
        page;
        page2;
        chain_out;
        valid = true;
        chain_a = None;
        chain_b = None;
        hot = 0;
        trace = None;
      }
    in
    let register ppage =
      if Sb_mem.Bus.is_ram ctx.bus (ppage lsl page_shift) then begin
        (match Hashtbl.find_opt ctx.by_page ppage with
        | Some blocks -> blocks := blk :: !blocks
        | None -> Hashtbl.add ctx.by_page ppage (ref [ blk ]));
        code_bit_set ctx ppage
      end
    in
    register page;
    if page2 >= 0 then register page2;
    Hashtbl.replace ctx.cache key blk;
    blk

  let lookup_translate_slow ctx va mmu_on =
    let pa =
      translate ctx ~va ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr:va
        ~retired:0
    in
    if not (Sb_mem.Bus.is_ram ctx.bus pa) then
      bus_fault ~iaddr:va ~retired:0 ~kind:Sb_mmu.Access.Execute ~va;
    let key = (pa lsl 1) lor Bool.to_int mmu_on in
    match Hashtbl.find_opt ctx.cache key with
    | Some blk when blk.valid && blk.va = va -> blk
    | Some _ ->
      Hashtbl.remove ctx.cache key;
      translate_block ctx va
    | None -> translate_block ctx va

  (* Fast path: one array probe on the virtual PC skips both the address
     translation and the block-hash lookup.  Tag rules mirror
     [chain_candidate]: same generation, still valid, same VA and
     translation regime. *)
  let lookup_translate ctx va =
    Perf.incr ctx.perf Perf.Block_lookups;
    let mmu_on = Cpu.mmu_enabled ctx.cpu in
    if not cfg.Config.front_cache then lookup_translate_slow ctx va mmu_on
    else begin
      let h = jmp_hash va in
      match Array.unsafe_get ctx.jmp_blocks h with
      | Some b
        when Array.unsafe_get ctx.jmp_gens h = ctx.chain_gen
             && b.valid && b.va = va && b.mmu_on = mmu_on ->
        Perf.incr ctx.perf Perf.Front_cache_hits;
        b
      | _ ->
        let b = lookup_translate_slow ctx va mmu_on in
        Array.unsafe_set ctx.jmp_blocks h (Some b);
        Array.unsafe_set ctx.jmp_gens h ctx.chain_gen;
        b
    end

  (* ---------------- dispatch loop -------------------------------------- *)

  let chain_candidate ctx (lb : block) pc mmu_on =
    let matches = function
      | Some (b, gen) when gen = ctx.chain_gen && b.valid && b.va = pc && b.mmu_on = mmu_on ->
        Some b
      | _ -> None
    in
    match matches lb.chain_a with
    | Some _ as hit -> hit
    | None -> matches lb.chain_b

  let chain_install ctx (lb : block) (b : block) =
    let same_page = lb.va lsr page_shift = b.va lsr page_shift in
    if lb.chain_out && (same_page || cfg.Config.chain_across_pages) then begin
      lb.chain_b <- lb.chain_a;
      lb.chain_a <- Some (b, ctx.chain_gen)
    end

  (* ---------------- hot-trace superblocks ------------------------------- *)

  (* How the final instruction of a constituent block hands over to the next
     stitched segment; decides seam compilation and whether stitching may
     continue at all. *)
  type seam =
    | Seam_uncond of int  (* unconditional direct branch to this target *)
    | Seam_cond of int  (* conditional direct: taken target (fallthrough is end_va) *)
    | Seam_fallthrough  (* block ended on the length cap or the page edge *)
    | Seam_stop
        (* indirect branch, exception-raising op, or a translation-affecting
           op (Cop_write / TLB invalidation): never stitch through these — a
           mid-trace generation bump would invalidate the very trace that is
           running *)

  let seam_of (rev_decodeds : Uop.decoded list) =
    match rev_decodeds with
    | [] -> Seam_stop
    | last :: _ ->
      let affects_translation = function
        | Uop.Cop_write _ | Uop.Tlb_inv_page _ | Uop.Tlb_inv_all -> true
        | _ -> false
      in
      if List.exists affects_translation last.Uop.uops then Seam_stop
      else (
        match List.rev last.Uop.uops with
        | Uop.Branch { cond = Uop.Always; target = Uop.Direct t; _ } :: _ ->
          Seam_uncond t
        | Uop.Branch { target = Uop.Direct t; _ } :: _ -> Seam_cond t
        | Uop.Branch _ :: _
        | (Uop.Svc _ | Uop.Undef | Uop.Eret | Uop.Wfi | Uop.Halt) :: _ -> Seam_stop
        | _ -> Seam_fallthrough)

  (* The predicted path out of [b0]: follow [chain_a] links under exactly
     the rules dispatch itself uses (current generation, still valid, same
     translation regime; cross-page links only exist if the configuration
     allowed installing them).  Stops at loops back into the trace. *)
  let collect_trace_blocks ctx (b0 : block) =
    let rec go acc b n =
      if n >= cfg.Config.max_trace_blocks then List.rev acc
      else
        match b.chain_a with
        | Some (nxt, gen)
          when gen = ctx.chain_gen && nxt.valid
               && nxt.mmu_on = b0.mmu_on
               && not (List.memq nxt acc) ->
          go (nxt :: acc) nxt (n + 1)
        | _ -> List.rev acc
    in
    go [ b0 ] b0 1

  (* Stitch [b0] and its chain successors into one superblock: re-decode the
     constituents, run the optimiser pipeline across the concatenated IR
     (constants and peephole identities now flow through direct-branch
     seams), and emit one closure array per segment.  Unconditional seam
     branches lose their pc write — the branch counters stay, so the
     architectural branch counts are identical to block-by-block execution;
     conditional seams keep the full branch and the runtime compares pc
     against the next segment's entry, side-exiting on mismatch. *)
  let form_trace ctx (b0 : block) =
    match
      let blocks = collect_trace_blocks ctx b0 in
      (* decode and classify; keep the longest stitchable prefix *)
      let rec take acc = function
        | [] -> List.rev acc
        | (b : block) :: rest ->
          let rev = decode_block_rev ctx b.va in
          if List.length rev <> b.insns then List.rev acc
          else
            let seam = seam_of rev in
            let entry = (b, List.rev rev, seam) in
            let continues =
              match rest with
              | [] -> false
              | nxt :: _ -> (
                match seam with
                | Seam_uncond t -> nxt.va = t
                | Seam_cond t -> nxt.va = t || nxt.va = b.end_va
                | Seam_fallthrough -> nxt.va = b.end_va
                | Seam_stop -> false)
            in
            if continues then take (entry :: acc) rest else List.rev (entry :: acc)
      in
      (match blocks with
      | [] | [ _ ] -> None
      | _ -> (
        match take [] blocks with
        | [] | [ _ ] -> None
        | parts -> Some parts))
    with
    | exception Guest_fault _ ->
      (* re-decode faulted (racing translation change); just don't form *)
      None
    | None -> None
    | Some parts ->
      Perf.incr ctx.perf Perf.Traces_formed;
      (* fixed stitching cost: trace buffer allocation, entry stub, seam
         patching — same order as a block prologue *)
      for unit = 1 to cfg.Config.emission_work * 6 do
        ctx.sync_token <- (ctx.sync_token + (b0.va lxor (unit * 0x2545))) land max_int
      done;
      let ir = Ir.of_decoded (List.concat_map (fun (_, ds, _) -> ds) parts) in
      let passes_run =
        Ir.run ?validate:(block_validator ()) ~passes:cfg.Config.opt_passes ir
      in
      Perf.add ctx.perf Perf.Opt_passes_run passes_run;
      (* slice the optimised IR back into per-block segments: passes never
         change instruction counts, so slice boundaries are exact and
         per-segment retirement stays truthful *)
      let n_parts = List.length parts in
      (* trace-scope register allocation: the slot pair is chosen once over
         the whole stitched IR and shared by every segment, so the cached
         registers survive the seams and spill only at segment boundaries *)
      let slots =
        if cfg.Config.threaded then
          Some
            (if cfg.Config.reg_cache then
               Threaded.choose_slots ~spill_points:n_parts ir
             else (-1, -1))
        else None
      in
      let off = ref 0 in
      let segs =
        List.mapi
          (fun pi ((b : block), ds, seam) ->
            let n = List.length ds in
            let elide_uncond =
              pi < n_parts - 1
              && match seam with Seam_uncond _ -> true | _ -> false
            in
            let uops = ref 0 in
            let s_code =
              if cfg.Config.threaded then begin
                for i = 0 to n - 1 do
                  let insn = ir.(!off + i) in
                  List.iter
                    (fun _uop ->
                      incr uops;
                      for unit = 1 to cfg.Config.emission_work do
                        ctx.sync_token <-
                          (ctx.sync_token + (insn.Ir.va lxor (unit * 0x9E37)))
                          land max_int
                      done)
                    insn.Ir.uops
                done;
                let p =
                  Threaded.compile ?slots ~elide_uncond_seam:elide_uncond
                    ~reg_cache:cfg.Config.reg_cache ~mmu:b.mmu_on
                    (Array.sub ir !off n)
                in
                Perf.add ctx.perf Perf.Opstream_bytes
                  (8 * Array.length p.Threaded.code);
                Prog (p, Threaded.prepare (host_of ctx) p)
              end
              else begin
                let ops = ref [] in
                for i = 0 to n - 1 do
                  let insn = ir.(!off + i) in
                  let last_insn = i = n - 1 in
                  List.iter
                    (fun uop ->
                      incr uops;
                      for unit = 1 to cfg.Config.emission_work do
                        ctx.sync_token <-
                          (ctx.sync_token + (insn.Ir.va lxor (unit * 0x9E37)))
                          land max_int
                      done;
                      let closure =
                        match uop with
                        | Uop.Branch
                            { cond = Uop.Always; target = Uop.Direct _; link }
                          when elide_uncond && last_insn ->
                          (* seam branch into the next segment: keep the
                             architectural effects (counters, link write),
                             drop the pc write the stitching makes
                             redundant *)
                          let regs = ctx.cpu.Cpu.regs in
                          let perf = ctx.perf in
                          let ret = (insn.Ir.va + insn.Ir.len) land u32_mask in
                          (match link with
                          | Some l ->
                            fun () ->
                              Perf.incr perf Perf.Branch_direct;
                              Perf.incr perf Perf.Branch_taken;
                              regs.(l) <- ret
                          | None ->
                            fun () ->
                              Perf.incr perf Perf.Branch_direct;
                              Perf.incr perf Perf.Branch_taken)
                        | _ ->
                          emit_uop ctx ~mmu_on:b.mmu_on ~iva:insn.Ir.va
                            ~ilen:insn.Ir.len ~iidx:i uop
                      in
                      ops := closure :: !ops)
                    insn.Ir.uops
                done;
                Ops (Array.of_list (List.rev !ops))
              end
            in
            off := !off + n;
            {
              s_va = b.va;
              s_end_va = b.end_va;
              s_page = b.page;
              s_page2 = b.page2;
              s_insns = n;
              s_uops = !uops;
              s_uncond = elide_uncond;
              s_code;
            })
          parts
      in
      let pages =
        List.sort_uniq compare
          (List.concat_map
             (fun ((b : block), _, _) ->
               if b.page2 >= 0 then [ b.page; b.page2 ] else [ b.page ])
             parts)
      in
      let tr =
        {
          t_entry = b0;
          t_gen = ctx.chain_gen;
          t_pages = pages;
          t_blocks = Array.of_list (List.map (fun (b, _, _) -> b) parts);
          t_segs = Array.of_list segs;
          t_valid = true;
        }
      in
      List.iter
        (fun ppage ->
          match Hashtbl.find_opt ctx.traces_by_page ppage with
          | Some l -> l := tr :: !l
          | None -> Hashtbl.add ctx.traces_by_page ppage (ref [ tr ]))
        pages;
      (* the interior blocks stop being dispatched individually once this
         trace is live; reset their counters so they don't immediately form
         rotated duplicates of the same loop *)
      Array.iteri (fun i (b : block) -> if i > 0 then b.hot <- 0) tr.t_blocks;
      Some tr

  (* A trace is dispatched only while its generation matches; a stale or
     invalidated trace is detached here so the block can re-profile. *)
  let live_trace ctx (blk : block) =
    match blk.trace with
    | None -> None
    | Some tr when tr.t_valid && tr.t_gen = ctx.chain_gen -> Some tr
    | Some tr ->
      invalidate_trace ctx tr;
      blk.trace <- None;
      blk.hot <- 0;
      None

  let deliver ctx ~vector ~cause ~far ~return_addr =
    Perf.incr ctx.perf Perf.Exceptions_total;
    (match vector with
    | Exn.Data_abort ->
      Perf.incr ctx.perf Perf.Data_abort;
      (* without the fast path, a data abort reconstructs the full CPU state
         from the translated-code context (the expensive pre-v2.5.0-rc0
         recovery the paper's off-scale Data-Fault improvement removed) *)
      if not cfg.Config.data_fault_fast_path then
        for _ = 1 to 8 do
          sync_state ctx
        done
    | Exn.Prefetch_abort ->
      Perf.incr ctx.perf Perf.Prefetch_abort;
      sync_state ctx
    | Exn.Undefined ->
      Perf.incr ctx.perf Perf.Undef_insn;
      sync_state ctx
    | Exn.Syscall ->
      Perf.incr ctx.perf Perf.Svc_taken;
      sync_state ctx
    | Exn.Irq ->
      Perf.incr ctx.perf Perf.Irq_taken;
      sync_state ctx
    | Exn.Reset -> ());
    Exn.enter ctx.cpu vector ~return_addr ?far ~cause ()

  let retire ctx n =
    Perf.add ctx.perf Perf.Insns n;
    ctx.timer_backlog <- ctx.timer_backlog + n;
    if ctx.timer_backlog >= 64 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  (* Run a trace: segments execute back-to-back without chain-verify work or
     block re-dispatch.  Retirement is per segment, so fault accounting (and
     the operation-density metric) is exactly what block-by-block execution
     would report.  Every seam check fires only at an architecturally clean
     boundary — pc is correct (or restored, for elided seams) whenever the
     trace can exit.  Returns the block of the last completed segment so
     normal chain dispatch resumes from it. *)
  let run_trace ctx (tr : trace) =
    Perf.incr ctx.perf Perf.Trace_dispatches;
    let cpu = ctx.cpu in
    let segs = tr.t_segs in
    let n = Array.length segs in
    let rec go s =
      let seg = Array.unsafe_get segs s in
      ctx.cur_page <- seg.s_page;
      ctx.cur_page2 <- seg.s_page2;
      cpu.Cpu.pc <- seg.s_end_va;
      exec_code ctx seg.s_code;
      retire ctx seg.s_insns;
      Perf.add ctx.perf Perf.Uops seg.s_uops;
      if s + 1 >= n then s
      else begin
        (* a store inside this segment may have invalidated a later
           constituent's page, and (in principle) an op may have bumped the
           generation: both force an exit before stale code can run *)
        let live = tr.t_valid && ctx.chain_gen = tr.t_gen in
        let nxt = Array.unsafe_get segs (s + 1) in
        if seg.s_uncond then
          if live then go (s + 1)
          else begin
            (* the elided seam branch never wrote pc; restore the
               architectural target before falling back to dispatch *)
            cpu.Cpu.pc <- nxt.s_va;
            Perf.incr ctx.perf Perf.Trace_side_exits;
            s
          end
        else if live && cpu.Cpu.pc = nxt.s_va then go (s + 1)
        else begin
          Perf.incr ctx.perf Perf.Trace_side_exits;
          s
        end
      end
    in
    Array.unsafe_get tr.t_blocks (go 0)

  (* Leaving at a switch point.  The DBT honours switch requests at
     block/trace boundaries (the same granularity as interrupt delivery),
     so the stop lands a few instructions past the phase write — the
     runner reports the overshoot as [insns_into_kernel] and the resumed
     run credits it back.  Batched timer ticks are flushed so the snapshot
     sees the timer state a cold run would at this instruction. *)
  let flush_timer ctx =
    if ctx.timer_backlog > 0 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  let switch_stop ctx =
    flush_timer ctx;
    raise (Stop Run_result.Switch_point)

  (* Phase boundary: flush batched device time at the next dispatch check
     (block granularity, like interrupt delivery) so timer state realigns
     to the retired-instruction count at every phase edge. *)
  let phase_sync ctx benchdev =
    flush_timer ctx;
    Sb_mem.Benchdev.clear_sync benchdev;
    if Sb_mem.Benchdev.stop_pending benchdev then switch_stop ctx

  let execute ctx ~max_insns =
    let cpu = ctx.cpu in
    let last : block option ref = ref None in
    let benchdev = ctx.machine.Machine.benchdev in
    try
      while Perf.get ctx.perf Perf.Insns < max_insns do
        if Sb_mem.Benchdev.sync_pending benchdev then phase_sync ctx benchdev;
        if Machine.irq_pending ctx.machine then begin
          sync_state ctx;
          deliver ctx ~vector:Exn.Irq ~cause:Exn.Cause.irq ~far:None
            ~return_addr:cpu.Cpu.pc;
          last := None
        end
        else begin
          try
            let pc = cpu.Cpu.pc in
            let blk =
              match !last with
              | Some lb when cfg.Config.chain_direct && lb.chain_out -> (
                match chain_candidate ctx lb pc (Cpu.mmu_enabled cpu) with
                | Some b ->
                  Perf.incr ctx.perf Perf.Chain_follows;
                  chain_verify ctx b;
                  b
                | None ->
                  let b = lookup_translate ctx pc in
                  chain_install ctx lb b;
                  b)
              | _ -> lookup_translate ctx pc
            in
            (match if tracing then live_trace ctx blk else None with
            | Some tr -> last := Some (run_trace ctx tr)
            | None ->
              (if tracing && blk.chain_out then
                 match blk.trace with
                 | Some _ -> ()
                 | None ->
                   blk.hot <- blk.hot + 1;
                   if blk.hot >= cfg.Config.trace_threshold then begin
                     blk.hot <- 0;
                     blk.trace <- form_trace ctx blk
                   end);
              ctx.cur_page <- blk.page;
              ctx.cur_page2 <- blk.page2;
              cpu.Cpu.pc <- blk.end_va;
              exec_code ctx blk.code;
              retire ctx blk.insns;
              Perf.add ctx.perf Perf.Uops blk.uops_total;
              last := Some blk)
          with
          | Guest_fault { vector; cause; far; return_addr; retired } ->
            retire ctx retired;
            deliver ctx ~vector ~cause ~far ~return_addr;
            last := None
          | Smc_restart { resume_va; retired } ->
            retire ctx retired;
            cpu.Cpu.pc <- resume_va;
            last := None
          | Stop_in_block { reason; retired } ->
            retire ctx retired;
            raise (Stop reason)
        end
      done;
      Run_result.Insn_limit
    with Stop reason -> reason

  (* Any run exit flushes the batched ticks, so snapshots taken between
     runs carry complete device time (see interp). *)
  let execute ctx ~max_insns =
    let stop = execute ctx ~max_insns in
    flush_timer ctx;
    stop

  (* Keep the last run's translations (block cache, traces, micro-TLBs)
     when the machine is unchanged ([(machine, state_gen)] match): a
     debugger stepping the same machine stays warm instead of
     re-translating per instruction, while external state changes
     (load_program, reset, snapshot restore) force a rebuild. *)
  let session : (Machine.t * int * ctx) option ref = ref None

  let ctx_for machine =
    match !session with
    | Some (m, gen, ctx)
      when m == machine && gen = machine.Machine.state_gen ->
      (* the ctx owns its counter array — compiled blocks and the threaded
         host capture it — so a new run starts it from zero in place *)
      Perf.reset ctx.perf;
      ctx
    | _ ->
      let ctx = make_ctx machine (Perf.create ()) in
      session := Some (machine, machine.Machine.state_gen, ctx);
      ctx

  let run ?max_insns machine =
    let max_insns =
      match max_insns with Some n -> n | None -> !Runner.insn_budget
    in
    let ctx = ctx_for machine in
    Runner.wrap ~name ~machine ~perf:ctx.perf
      ~execute:(fun () -> execute ctx ~max_insns)
end

module Make (A : Arch_sig.ARCH) =
  Make_configured
    (A)
    (struct
      let config = Config.default
    end)
