open Sb_isa
open Sb_sim

(* Token-threaded backend: [compile] lowers a block's (or trace segment's)
   optimised IR into a flat [int array] opstream — an opcode word followed by
   its operand words, terminated by END — executed by [exec]'s
   tail-dispatched loop.  No per-uop closure is allocated and no pointer is
   chased per retired micro-op: dispatch is one array read and one jump-table
   branch (OCaml compiles a dense integer match into a jump table).

   Register caching: the two hottest guest registers of the translation unit
   (by static reference count — trace-wide when the caller stitched
   segments, see [choose_slots]) travel as parameters [a]/[b] of the
   dispatch loop instead of going through the register file.  Operand
   "locations" 0..15 name guest registers, 16 names slot A, 17 slot B; the
   compiler rewrites every reference to a cached register to its slot, so
   the register file is written only at [spill] points: END (segment seam /
   side exit) and immediately before any host call that can raise (memory
   faults, SVC, undefined, translation-affecting ops) — exception delivery
   must observe architectural register state.

   Memory fast path: loads and stores probe a direct-mapped
   (va -> host offset) micro-TLB ({!Sb_mmu.Mtlb}, filled by the engine's
   slow path after a successful walk + permission check over a page wholly
   resident in flat RAM) and on a hit read/write {!Sb_mem.Phys_mem} through
   its unchecked accessors.  [Sb_mem.Bus] dispatch, page walks, permission
   faults, MMIO and page-crossing accesses all live behind the [host]
   callbacks.

   Parity contract: every opcode's observable behaviour (register values,
   flags, pc, architectural perf counters, fault identity and ordering)
   matches the closure emitter in [Dbt] uop for uop; [model] decodes an
   opstream back to the micro-op sequence it implements so the translation
   validator can prove it against the reference semantics. *)

let u32_mask = 0xFFFF_FFFF
let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type program = {
  code : int array;
  ra : int;  (* guest register cached in slot A, or -1 *)
  rb : int;  (* guest register cached in slot B, or -1 (requires ra >= 0) *)
  p_insns : int;
  p_uops : int;  (* every IR uop, including ones that lower to no tokens *)
  meta : (int * int * int) array;  (* per insn: code offset, va, length *)
}

(* Host interface: everything the opstream cannot do inline.  All closures
   are over the owning engine's context; any callback that can raise is
   reached only after a [spill]. *)
type host = {
  h_cpu : Cpu.t;
  h_perf : Perf.t;
  h_ram : Sb_mem.Phys_mem.t;
  h_ram_limit : int;  (* bytes of flat RAM mapped at physical 0 *)
  h_code_pages : Bytes.t;  (* physical code-page bitmap, for SMC on stores *)
  h_dtlb_r : Sb_mmu.Mtlb.t;
  h_dtlb_w : Sb_mmu.Mtlb.t;
  h_load_slow :
    mmu:bool ->
    width:Uop.width ->
    user:bool ->
    va:int ->
    iva:int ->
    iidx:int ->
    int;
  h_store_slow :
    mmu:bool ->
    width:Uop.width ->
    user:bool ->
    va:int ->
    v:int ->
    iva:int ->
    resume_va:int ->
    iidx:int ->
    unit;
  h_store_smc : ppage:int -> resume_va:int -> iidx:int -> unit;
  h_svc : ret:int -> iidx:int -> unit;
  h_undef : iva:int -> iidx:int -> unit;
  h_cop_write : creg:int -> value:int -> iva:int -> iidx:int -> unit;
  h_tlb_inv_page : va:int -> unit;
  h_tlb_inv_all : unit -> unit;
  h_wfi : iidx:int -> unit;
  h_halt : iidx:int -> unit;
}

(* ---------------- opcode table ---------------------------------------- *)
(* Operand words follow each opcode; the executor's match arms must use
   integer literals to compile to a jump table, so keep this list and the
   match in [exec] in lockstep.  d/l/s/ln/lm are locations (0..15 guest
   register, 16 slot A, 17 slot B); k..=0 means the next word is an
   immediate, k..=1 a location; link is a location or -1. *)

let op_end = 0 (* END *)
let op_movi = 1 (* MOVI d imm *)
let op_mov = 2 (* MOV d l *)
let op_addi = 3 (* ADDI d l imm *)
let op_subi = 4 (* SUBI d l imm *)
let op_andi = 5 (* ANDI d l imm *)
let op_orri = 6 (* ORRI d l imm *)
let op_xori = 7 (* XORI d l imm *)
let op_muli = 8 (* MULI d l imm *)
let op_addr = 9 (* ADDR d ln lm *)
let op_subr = 10 (* SUBR d ln lm *)
let op_andr = 11 (* ANDR d ln lm *)
let op_orrr = 12 (* ORRR d ln lm *)
let op_xorr = 13 (* XORR d ln lm *)
let op_mulr = 14 (* MULR d ln lm *)
let op_lsli = 15 (* LSLI d l sh   (0 <= sh < 32) *)
let op_lsri = 16 (* LSRI d l sh *)
let op_asri = 17 (* ASRI d l sh   (0 <= sh <= 31) *)
let op_lslr = 18 (* LSLR d kn vn l *)
let op_lsrr = 19 (* LSRR d kn vn l *)
let op_asrr = 20 (* ASRR d kn vn l *)
let op_alu = 21 (* ALU aluop d kn vn km vm *)
let op_flags = 22 (* FLAGS aluop kd d kn vn km vm *)
let op_ld8p = 23 (* LD8P d kb vb off iva iidx   (physical: MMU off) *)
let op_ld16p = 24 (* LD16P d kb vb off iva iidx *)
let op_ld32p = 25 (* LD32P d kb vb off iva iidx *)
let op_ld8v = 26 (* LD8V d kb vb off iva iidx   (virtual: micro-TLB probe) *)
let op_ld16v = 27 (* LD16V d kb vb off iva iidx *)
let op_ld32v = 28 (* LD32V d kb vb off iva iidx *)
let op_ldu = 29 (* LDU m w d kb vb off iva iidx   (user-mode: always slow) *)
let op_st8p = 30 (* ST8P s kb vb off iva rva iidx *)
let op_st16p = 31 (* ST16P s kb vb off iva rva iidx *)
let op_st32p = 32 (* ST32P s kb vb off iva rva iidx *)
let op_st8v = 33 (* ST8V s kb vb off iva rva iidx *)
let op_st16v = 34 (* ST16V s kb vb off iva rva iidx *)
let op_st32v = 35 (* ST32V s kb vb off iva rva iidx *)
let op_stu = 36 (* STU m w s kb vb off iva rva iidx *)
let op_bd = 37 (* BD t link ret *)
let op_bi = 38 (* BI l link ret *)
let op_bcd = 39 (* BCD cond t link ret *)
let op_bci = 40 (* BCI cond l link ret *)
let op_bseam = 41 (* BSEAM link ret   (elided seam branch: no pc write) *)
let op_svc = 42 (* SVC imm ret iidx *)
let op_undef = 43 (* UNDEF iva iidx *)
let op_eret = 44 (* ERET *)
let op_coprd = 45 (* COPRD d creg *)
let op_copwr = 46 (* COPWR creg ks vs iva iidx *)
let op_tlbip = 47 (* TLBIP l *)
let op_tlbia = 48 (* TLBIA *)
let op_wfi = 49 (* WFI iidx *)
let op_halt = 50 (* HALT iidx *)

(* Specialised forms of the hottest shapes, selected at compile time when
   the operands allow it.  They skip the rd/wr location trampolines: the
   in-place add touches one known cell (or a cached-register loop
   parameter), and the linkless branches have no write at all. *)
let op_addip = 51 (* ADDIP d imm   (plain reg, src = dst) *)
let op_addia = 52 (* ADDIA imm     (slot A, src = dst) *)
let op_addib = 53 (* ADDIB imm     (slot B, src = dst) *)
let op_bd0 = 54 (* BD0 t ret     (direct branch, no link) *)
let op_bseam0 = 55 (* BSEAM0        (elided seam branch, no link) *)

let alu_code = function
  | Uop.Add -> 0
  | Uop.Sub -> 1
  | Uop.And_ -> 2
  | Uop.Orr -> 3
  | Uop.Xor -> 4
  | Uop.Lsl -> 5
  | Uop.Lsr -> 6
  | Uop.Asr -> 7
  | Uop.Mul -> 8

let alu_of_code = function
  | 0 -> Uop.Add
  | 1 -> Uop.Sub
  | 2 -> Uop.And_
  | 3 -> Uop.Orr
  | 4 -> Uop.Xor
  | 5 -> Uop.Lsl
  | 6 -> Uop.Lsr
  | 7 -> Uop.Asr
  | _ -> Uop.Mul

let cond_code = function
  | Uop.Always -> 0
  | Uop.Eq -> 1
  | Uop.Ne -> 2
  | Uop.Lt -> 3
  | Uop.Ge -> 4
  | Uop.Ltu -> 5
  | Uop.Geu -> 6

let cond_of_code = function
  | 1 -> Uop.Eq
  | 2 -> Uop.Ne
  | 3 -> Uop.Lt
  | 4 -> Uop.Ge
  | 5 -> Uop.Ltu
  | _ -> Uop.Geu

let width_code = function Uop.W8 -> 0 | Uop.W16 -> 1 | Uop.W32 -> 2
let width_of_code = function 0 -> Uop.W8 | 1 -> Uop.W16 | _ -> Uop.W32

(* ---------------- trace-scope slot selection --------------------------- *)

(* Caching only pays when enough uops run between two spill points to
   amortise the entry loads and exit spills; below this the trampoline
   savings are smaller than the seam traffic (measured on the
   control-flow benchmarks, whose 2-uop segments lose ~10% to
   unconditional caching). *)
let slot_min_uops = 12

(* Static reference counts over the whole translation unit (for a trace,
   the caller passes the concatenated IR of every segment so the same two
   registers stay cached across seams).  A register earns a slot only with
   two or more references — below that the entry load + exit spill cost
   exceeds the saving.  [spill_points] is the number of spill/reload
   boundaries the unit will execute (1 for a plain block, the segment
   count for a trace): units averaging fewer than [slot_min_uops] uops
   per boundary run uncached. *)
let choose_slots ?(spill_points = 1) (ir : Ir.insn array) =
  let total =
    Array.fold_left (fun acc i -> acc + List.length i.Ir.uops) 0 ir
  in
  if total < slot_min_uops * spill_points then (-1, -1)
  else
  let counts = Array.make 16 0 in
  let reg r = counts.(r) <- counts.(r) + 1 in
  let operand = function Uop.Reg r -> reg r | Uop.Imm _ -> () in
  Array.iter
    (fun (insn : Ir.insn) ->
      List.iter
        (fun uop ->
          match uop with
          | Uop.Alu { rd; rn; rm; _ } ->
            Option.iter reg rd;
            operand rn;
            operand rm
          | Uop.Load { rd; base; _ } ->
            reg rd;
            operand base
          | Uop.Store { rs; base; _ } ->
            reg rs;
            operand base
          | Uop.Branch { target; link; _ } ->
            (match target with Uop.Indirect r -> reg r | Uop.Direct _ -> ());
            Option.iter reg link
          | Uop.Cop_read { rd; _ } -> reg rd
          | Uop.Cop_write { src; _ } -> operand src
          | Uop.Tlb_inv_page r -> reg r
          | Uop.Nop | Uop.Svc _ | Uop.Undef | Uop.Eret | Uop.Tlb_inv_all
          | Uop.Wfi | Uop.Halt ->
            ())
        insn.Ir.uops)
    ir;
  let best exclude =
    let r = ref (-1) in
    for i = 0 to 15 do
      if i <> exclude && counts.(i) >= 2 && (!r < 0 || counts.(i) > counts.(!r))
      then r := i
    done;
    !r
  in
  let ra = best (-1) in
  if ra < 0 then (-1, -1) else (ra, best ra)

(* ---------------- compilation ----------------------------------------- *)

let compile ?slots ?(elide_uncond_seam = false) ~reg_cache ~mmu
    (ir : Ir.insn array) =
  let ra, rb =
    match slots with
    | Some s -> s
    | None -> if reg_cache then choose_slots ir else (-1, -1)
  in
  let loc r = if r = ra then 16 else if r = rb then 17 else r in
  let opnd = function
    | Uop.Reg r -> (1, loc r)
    | Uop.Imm v -> (0, v land u32_mask)
  in
  let buf = ref [] in
  let len = ref 0 in
  let emit ws =
    List.iter (fun w -> buf := w :: !buf) ws;
    len := !len + List.length ws
  in
  let uops_total = ref 0 in
  let n_insns = Array.length ir in
  let meta = Array.make n_insns (0, 0, 0) in
  Array.iteri
    (fun i (insn : Ir.insn) ->
      meta.(i) <- (!len, insn.Ir.va, insn.Ir.len);
      let iva = insn.Ir.va in
      let ilen = insn.Ir.len in
      let last_insn = i = n_insns - 1 in
      List.iter
        (fun uop ->
          incr uops_total;
          match uop with
          | Uop.Nop -> ()
          | Uop.Alu { op; rd; rn; rm; set_flags = true } ->
            let kd, d = match rd with None -> (0, 0) | Some r -> (1, loc r) in
            let kn, vn = opnd rn and km, vm = opnd rm in
            emit [ op_flags; alu_code op; kd; d; kn; vn; km; vm ]
          | Uop.Alu { rd = None; set_flags = false; _ } ->
            (* no destination, no flags: nothing to do (closure parity) *)
            ()
          | Uop.Alu { op; rd = Some r; rn; rm; set_flags = false } -> (
            let d = loc r in
            (* the specialisation table mirrors Dbt.emit_alu arm for arm;
               immediates are pre-masked to 32 bits, which is congruent for
               every op since register values are always kept masked *)
            match (op, rn, rm) with
            | Uop.Orr, Uop.Imm 0, Uop.Imm v | Uop.Orr, Uop.Imm v, Uop.Imm 0 ->
              emit [ op_movi; d; v land u32_mask ]
            | Uop.Orr, Uop.Reg rn, Uop.Imm 0 -> emit [ op_mov; d; loc rn ]
            | Uop.Add, Uop.Reg rn, Uop.Imm v ->
              let n = loc rn in
              let v = v land u32_mask in
              if n = d then
                if d < 16 then emit [ op_addip; d; v ]
                else if d = 16 then emit [ op_addia; v ]
                else emit [ op_addib; v ]
              else emit [ op_addi; d; n; v ]
            | Uop.Sub, Uop.Reg rn, Uop.Imm v ->
              emit [ op_subi; d; loc rn; v land u32_mask ]
            | Uop.Add, Uop.Reg x, Uop.Reg y -> emit [ op_addr; d; loc x; loc y ]
            | Uop.Sub, Uop.Reg x, Uop.Reg y -> emit [ op_subr; d; loc x; loc y ]
            | Uop.And_, Uop.Reg x, Uop.Reg y -> emit [ op_andr; d; loc x; loc y ]
            | Uop.And_, Uop.Reg rn, Uop.Imm v ->
              emit [ op_andi; d; loc rn; v land u32_mask ]
            | Uop.Orr, Uop.Reg x, Uop.Reg y -> emit [ op_orrr; d; loc x; loc y ]
            | Uop.Orr, Uop.Reg rn, Uop.Imm v ->
              emit [ op_orri; d; loc rn; v land u32_mask ]
            | Uop.Xor, Uop.Reg x, Uop.Reg y -> emit [ op_xorr; d; loc x; loc y ]
            | Uop.Xor, Uop.Reg rn, Uop.Imm v ->
              emit [ op_xori; d; loc rn; v land u32_mask ]
            | Uop.Mul, Uop.Reg x, Uop.Reg y -> emit [ op_mulr; d; loc x; loc y ]
            | Uop.Mul, Uop.Reg rn, Uop.Imm v ->
              emit [ op_muli; d; loc rn; v land u32_mask ]
            | Uop.Lsl, Uop.Reg rn, Uop.Imm v ->
              let s = v land 0xFF in
              if s >= 32 then emit [ op_movi; d; 0 ]
              else emit [ op_lsli; d; loc rn; s ]
            | Uop.Lsr, Uop.Reg rn, Uop.Imm v ->
              let s = v land 0xFF in
              if s >= 32 then emit [ op_movi; d; 0 ]
              else emit [ op_lsri; d; loc rn; s ]
            | Uop.Asr, Uop.Reg rn, Uop.Imm v ->
              emit [ op_asri; d; loc rn; min 31 (v land 0xFF) ]
            | (Uop.Lsl | Uop.Lsr | Uop.Asr), Uop.Imm n, Uop.Imm v ->
              (* constant shift of a constant: fold at translation time,
                 value-identical to the closure's generic Alu_eval call *)
              emit
                [
                  op_movi; d; Alu_eval.eval op (n land u32_mask) (v land u32_mask);
                ]
            | Uop.Lsl, rn, Uop.Reg rm ->
              let kn, vn = opnd rn in
              emit [ op_lslr; d; kn; vn; loc rm ]
            | Uop.Lsr, rn, Uop.Reg rm ->
              let kn, vn = opnd rn in
              emit [ op_lsrr; d; kn; vn; loc rm ]
            | Uop.Asr, rn, Uop.Reg rm ->
              let kn, vn = opnd rn in
              emit [ op_asrr; d; kn; vn; loc rm ]
            | _ ->
              let kn, vn = opnd rn and km, vm = opnd rm in
              emit [ op_alu; alu_code op; d; kn; vn; km; vm ])
          | Uop.Load { width; rd; base; offset; user } ->
            let kb, vb = opnd base in
            if user then
              emit
                [
                  op_ldu; (if mmu then 1 else 0); width_code width; loc rd; kb;
                  vb; offset; iva; i;
                ]
            else
              let opc =
                match (mmu, width) with
                | false, Uop.W8 -> op_ld8p
                | false, Uop.W16 -> op_ld16p
                | false, Uop.W32 -> op_ld32p
                | true, Uop.W8 -> op_ld8v
                | true, Uop.W16 -> op_ld16v
                | true, Uop.W32 -> op_ld32v
              in
              emit [ opc; loc rd; kb; vb; offset; iva; i ]
          | Uop.Store { width; rs; base; offset; user } ->
            let kb, vb = opnd base in
            let rva = iva + ilen in
            if user then
              emit
                [
                  op_stu; (if mmu then 1 else 0); width_code width; loc rs; kb;
                  vb; offset; iva; rva; i;
                ]
            else
              let opc =
                match (mmu, width) with
                | false, Uop.W8 -> op_st8p
                | false, Uop.W16 -> op_st16p
                | false, Uop.W32 -> op_st32p
                | true, Uop.W8 -> op_st8v
                | true, Uop.W16 -> op_st16v
                | true, Uop.W32 -> op_st32v
              in
              emit [ opc; loc rs; kb; vb; offset; iva; rva; i ]
          | Uop.Branch { cond; target; link } -> (
            let ret = (iva + ilen) land u32_mask in
            let lk = match link with Some l -> loc l | None -> -1 in
            match (cond, target) with
            | Uop.Always, Uop.Direct _ when elide_uncond_seam && last_insn ->
              (* seam branch into the next stitched segment: keep the
                 counters and the link write, drop the pc write *)
              if lk < 0 then emit [ op_bseam0 ] else emit [ op_bseam; lk; ret ]
            | Uop.Always, Uop.Direct t ->
              if lk < 0 then emit [ op_bd0; t; ret ]
              else emit [ op_bd; t; lk; ret ]
            | Uop.Always, Uop.Indirect r -> emit [ op_bi; loc r; lk; ret ]
            | _, Uop.Direct t -> emit [ op_bcd; cond_code cond; t; lk; ret ]
            | _, Uop.Indirect r ->
              emit [ op_bci; cond_code cond; loc r; lk; ret ])
          | Uop.Svc n ->
            emit [ op_svc; n; (iva + ilen) land u32_mask; i ]
          | Uop.Undef -> emit [ op_undef; iva; i ]
          | Uop.Eret -> emit [ op_eret ]
          | Uop.Cop_read { rd; creg } ->
            if creg < 0 || creg >= Cregs.count then emit [ op_undef; iva; i ]
            else emit [ op_coprd; loc rd; creg ]
          | Uop.Cop_write { creg; src } ->
            if creg < 0 || creg >= Cregs.count then emit [ op_undef; iva; i ]
            else
              let ks, vs = opnd src in
              emit [ op_copwr; creg; ks; vs; iva; i ]
          | Uop.Tlb_inv_page r -> emit [ op_tlbip; loc r ]
          | Uop.Tlb_inv_all -> emit [ op_tlbia ]
          | Uop.Wfi -> emit [ op_wfi; i ]
          | Uop.Halt -> emit [ op_halt; i ])
        insn.Ir.uops)
    ir;
  emit [ op_end ];
  let code = Array.make !len 0 in
  List.iteri (fun i w -> code.(!len - 1 - i) <- w) !buf;
  { code; ra; rb; p_insns = n_insns; p_uops = !uops_total; meta }

(* ---------------- execution ------------------------------------------- *)

(* [prepare] splits environment setup from dispatch: everything here —
   the field loads and the helper/dispatch closures — is allocated once
   per translated block, so the returned runner costs one indirect call
   per dispatch.  Building this environment inside the dispatch path
   instead costs ~10 closure allocations per block entry, which dominates
   on branchy short-block kernels. *)
let prepare h (p : program) =
  let code = p.code in
  let cpu = h.h_cpu in
  let regs = cpu.Cpu.regs in
  let cop = cpu.Cpu.cop in
  let perf = h.h_perf in
  let ram = h.h_ram in
  let ra = p.ra and rb = p.rb in
  let g i = Array.unsafe_get code i in
  let spill a b =
    if ra >= 0 then begin
      Array.unsafe_set regs ra a;
      if rb >= 0 then Array.unsafe_set regs rb b;
      Perf.incr perf Perf.Spills
    end
  in
  let rd a b l =
    if l < 16 then Array.unsafe_get regs l else if l = 16 then a else b
  in
  let ld a b k v = if k = 0 then v else rd a b v in
  let cond_true c =
    match c with
    | 1 -> cpu.Cpu.flag_z
    | 2 -> not cpu.Cpu.flag_z
    | 3 -> cpu.Cpu.flag_n <> cpu.Cpu.flag_v
    | 4 -> cpu.Cpu.flag_n = cpu.Cpu.flag_v
    | 5 -> not cpu.Cpu.flag_c
    | _ -> cpu.Cpu.flag_c
  in
  let priv () = if cpu.Cpu.mode = Sb_mmu.Access.Kernel then 1 else 0 in
  let code_page_hit ppage =
    Char.code (Bytes.unsafe_get h.h_code_pages (ppage lsr 3))
    land (1 lsl (ppage land 7))
    <> 0
  in
  let rec go ip a b =
    match Array.unsafe_get code ip with
    | 0 (* END *) -> spill a b
    | 1 (* MOVI *) -> wr (ip + 3) a b (g (ip + 1)) (g (ip + 2))
    | 2 (* MOV *) -> wr (ip + 3) a b (g (ip + 1)) (rd a b (g (ip + 2)))
    | 3 (* ADDI *) ->
      wr (ip + 4) a b (g (ip + 1)) ((rd a b (g (ip + 2)) + g (ip + 3)) land u32_mask)
    | 4 (* SUBI *) ->
      wr (ip + 4) a b (g (ip + 1)) ((rd a b (g (ip + 2)) - g (ip + 3)) land u32_mask)
    | 5 (* ANDI *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) land g (ip + 3))
    | 6 (* ORRI *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) lor g (ip + 3))
    | 7 (* XORI *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) lxor g (ip + 3))
    | 8 (* MULI *) ->
      wr (ip + 4) a b (g (ip + 1)) ((rd a b (g (ip + 2)) * g (ip + 3)) land u32_mask)
    | 9 (* ADDR *) ->
      wr (ip + 4) a b (g (ip + 1))
        ((rd a b (g (ip + 2)) + rd a b (g (ip + 3))) land u32_mask)
    | 10 (* SUBR *) ->
      wr (ip + 4) a b (g (ip + 1))
        ((rd a b (g (ip + 2)) - rd a b (g (ip + 3))) land u32_mask)
    | 11 (* ANDR *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) land rd a b (g (ip + 3)))
    | 12 (* ORRR *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) lor rd a b (g (ip + 3)))
    | 13 (* XORR *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) lxor rd a b (g (ip + 3)))
    | 14 (* MULR *) ->
      wr (ip + 4) a b (g (ip + 1))
        ((rd a b (g (ip + 2)) * rd a b (g (ip + 3))) land u32_mask)
    | 15 (* LSLI *) ->
      wr (ip + 4) a b (g (ip + 1)) ((rd a b (g (ip + 2)) lsl g (ip + 3)) land u32_mask)
    | 16 (* LSRI *) ->
      wr (ip + 4) a b (g (ip + 1)) (rd a b (g (ip + 2)) lsr g (ip + 3))
    | 17 (* ASRI *) ->
      wr (ip + 4) a b (g (ip + 1))
        (Sb_util.U32.shift_right_arith (rd a b (g (ip + 2))) (g (ip + 3)))
    | 18 (* LSLR *) ->
      wr (ip + 5) a b (g (ip + 1))
        (Sb_util.U32.shift_left
           (ld a b (g (ip + 2)) (g (ip + 3)))
           (rd a b (g (ip + 4)) land 0xFF))
    | 19 (* LSRR *) ->
      wr (ip + 5) a b (g (ip + 1))
        (Sb_util.U32.shift_right_logical
           (ld a b (g (ip + 2)) (g (ip + 3)))
           (rd a b (g (ip + 4)) land 0xFF))
    | 20 (* ASRR *) ->
      wr (ip + 5) a b (g (ip + 1))
        (Sb_util.U32.shift_right_arith
           (ld a b (g (ip + 2)) (g (ip + 3)))
           (rd a b (g (ip + 4)) land 0xFF))
    | 21 (* ALU *) ->
      wr (ip + 7) a b (g (ip + 2))
        (Alu_eval.eval (alu_of_code (g (ip + 1)))
           (ld a b (g (ip + 3)) (g (ip + 4)))
           (ld a b (g (ip + 5)) (g (ip + 6))))
    | 22 (* FLAGS *) ->
      let result, n, z, c, v =
        Alu_eval.eval_flags (alu_of_code (g (ip + 1)))
          (ld a b (g (ip + 4)) (g (ip + 5)))
          (ld a b (g (ip + 6)) (g (ip + 7)))
      in
      cpu.Cpu.flag_n <- n;
      cpu.Cpu.flag_z <- z;
      cpu.Cpu.flag_c <- c;
      cpu.Cpu.flag_v <- v;
      if g (ip + 2) = 0 then go (ip + 8) a b
      else wr (ip + 8) a b (g (ip + 3)) result
    | 23 (* LD8P *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va < h.h_ram_limit then
        wr (ip + 7) a b (g (ip + 1)) (Sb_mem.Phys_mem.unsafe_read8 ram va)
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:false ~width:Uop.W8 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 24 (* LD16P *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va <= h.h_ram_limit - 2 then
        wr (ip + 7) a b (g (ip + 1)) (Sb_mem.Phys_mem.unsafe_read16 ram va)
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:false ~width:Uop.W16 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 25 (* LD32P *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va <= h.h_ram_limit - 4 then
        wr (ip + 7) a b (g (ip + 1)) (Sb_mem.Phys_mem.unsafe_read32 ram va)
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:false ~width:Uop.W32 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 26 (* LD8V *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let base =
        Sb_mmu.Mtlb.probe h.h_dtlb_r ~vpn:(va lsr page_shift)
          ~asid:(Array.unsafe_get cop Cregs.asid)
          ~priv:(priv ())
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        wr (ip + 7) a b (g (ip + 1))
          (Sb_mem.Phys_mem.unsafe_read8 ram (base lor (va land page_mask)))
      end
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:true ~width:Uop.W8 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 27 (* LD16V *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let off = va land page_mask in
      let base =
        if off <= page_size - 2 then
          Sb_mmu.Mtlb.probe h.h_dtlb_r ~vpn:(va lsr page_shift)
            ~asid:(Array.unsafe_get cop Cregs.asid)
            ~priv:(priv ())
        else -1
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        wr (ip + 7) a b (g (ip + 1))
          (Sb_mem.Phys_mem.unsafe_read16 ram (base lor off))
      end
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:true ~width:Uop.W16 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 28 (* LD32V *) ->
      Perf.incr perf Perf.Loads;
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let off = va land page_mask in
      let base =
        if off <= page_size - 4 then
          Sb_mmu.Mtlb.probe h.h_dtlb_r ~vpn:(va lsr page_shift)
            ~asid:(Array.unsafe_get cop Cregs.asid)
            ~priv:(priv ())
        else -1
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        wr (ip + 7) a b (g (ip + 1))
          (Sb_mem.Phys_mem.unsafe_read32 ram (base lor off))
      end
      else begin
        spill a b;
        let v =
          h.h_load_slow ~mmu:true ~width:Uop.W32 ~user:false ~va ~iva:(g (ip + 5))
            ~iidx:(g (ip + 6))
        in
        wr (ip + 7) a b (g (ip + 1)) v
      end
    | 29 (* LDU *) ->
      Perf.incr perf Perf.Loads;
      Perf.incr perf Perf.User_accesses;
      let va = (ld a b (g (ip + 4)) (g (ip + 5)) + g (ip + 6)) land u32_mask in
      spill a b;
      let v =
        h.h_load_slow
          ~mmu:(g (ip + 1) <> 0)
          ~width:(width_of_code (g (ip + 2)))
          ~user:true ~va ~iva:(g (ip + 7)) ~iidx:(g (ip + 8))
      in
      wr (ip + 9) a b (g (ip + 3)) v
    | 30 (* ST8P *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va < h.h_ram_limit then begin
        Sb_mem.Phys_mem.unsafe_write8 ram va v;
        let ppage = va lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:false ~width:Uop.W8 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 31 (* ST16P *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va <= h.h_ram_limit - 2 then begin
        Sb_mem.Phys_mem.unsafe_write16 ram va v;
        let ppage = va lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:false ~width:Uop.W16 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 32 (* ST32P *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      if va <= h.h_ram_limit - 4 then begin
        Sb_mem.Phys_mem.unsafe_write32 ram va v;
        let ppage = va lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:false ~width:Uop.W32 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 33 (* ST8V *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let base =
        Sb_mmu.Mtlb.probe h.h_dtlb_w ~vpn:(va lsr page_shift)
          ~asid:(Array.unsafe_get cop Cregs.asid)
          ~priv:(priv ())
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        let hoff = base lor (va land page_mask) in
        Sb_mem.Phys_mem.unsafe_write8 ram hoff v;
        let ppage = hoff lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:true ~width:Uop.W8 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 34 (* ST16V *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let off = va land page_mask in
      let base =
        if off <= page_size - 2 then
          Sb_mmu.Mtlb.probe h.h_dtlb_w ~vpn:(va lsr page_shift)
            ~asid:(Array.unsafe_get cop Cregs.asid)
            ~priv:(priv ())
        else -1
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        let hoff = base lor off in
        Sb_mem.Phys_mem.unsafe_write16 ram hoff v;
        let ppage = hoff lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:true ~width:Uop.W16 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 35 (* ST32V *) ->
      Perf.incr perf Perf.Stores;
      let v = rd a b (g (ip + 1)) in
      let va = (ld a b (g (ip + 2)) (g (ip + 3)) + g (ip + 4)) land u32_mask in
      let off = va land page_mask in
      let base =
        if off <= page_size - 4 then
          Sb_mmu.Mtlb.probe h.h_dtlb_w ~vpn:(va lsr page_shift)
            ~asid:(Array.unsafe_get cop Cregs.asid)
            ~priv:(priv ())
        else -1
      in
      if base >= 0 then begin
        Perf.incr perf Perf.Tlb_fast_hits;
        let hoff = base lor off in
        Sb_mem.Phys_mem.unsafe_write32 ram hoff v;
        let ppage = hoff lsr page_shift in
        if code_page_hit ppage then begin
          spill a b;
          h.h_store_smc ~ppage ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7))
        end;
        go (ip + 8) a b
      end
      else begin
        spill a b;
        h.h_store_slow ~mmu:true ~width:Uop.W32 ~user:false ~va ~v ~iva:(g (ip + 5))
          ~resume_va:(g (ip + 6)) ~iidx:(g (ip + 7));
        go (ip + 8) a b
      end
    | 36 (* STU *) ->
      Perf.incr perf Perf.Stores;
      Perf.incr perf Perf.User_accesses;
      let v = rd a b (g (ip + 3)) in
      let va = (ld a b (g (ip + 4)) (g (ip + 5)) + g (ip + 6)) land u32_mask in
      spill a b;
      h.h_store_slow
        ~mmu:(g (ip + 1) <> 0)
        ~width:(width_of_code (g (ip + 2)))
        ~user:true ~va ~v ~iva:(g (ip + 7)) ~resume_va:(g (ip + 8))
        ~iidx:(g (ip + 9));
      go (ip + 10) a b
    | 37 (* BD *) ->
      Perf.incr perf Perf.Branch_direct;
      Perf.incr perf Perf.Branch_taken;
      cpu.Cpu.pc <- g (ip + 1);
      wr (ip + 4) a b (g (ip + 2)) (g (ip + 3))
    | 38 (* BI *) ->
      Perf.incr perf Perf.Branch_indirect;
      Perf.incr perf Perf.Branch_taken;
      let l = g (ip + 1) and link = g (ip + 2) in
      (* the link write precedes the target read (closure parity: an
         indirect branch through its own link register jumps to the old
         value only because do_link runs first there too — it does not,
         so the updated value must be visible here as well) *)
      if link < 0 then begin
        cpu.Cpu.pc <- rd a b l;
        go (ip + 4) a b
      end
      else if link < 16 then begin
        Array.unsafe_set regs link (g (ip + 3));
        cpu.Cpu.pc <- rd a b l;
        go (ip + 4) a b
      end
      else if link = 16 then begin
        let a = g (ip + 3) in
        cpu.Cpu.pc <- rd a b l;
        go (ip + 4) a b
      end
      else begin
        let b = g (ip + 3) in
        cpu.Cpu.pc <- rd a b l;
        go (ip + 4) a b
      end
    | 39 (* BCD *) ->
      Perf.incr perf Perf.Branch_direct;
      if cond_true (g (ip + 1)) then begin
        Perf.incr perf Perf.Branch_taken;
        cpu.Cpu.pc <- g (ip + 2);
        wr (ip + 5) a b (g (ip + 3)) (g (ip + 4))
      end
      else go (ip + 5) a b
    | 40 (* BCI *) ->
      Perf.incr perf Perf.Branch_indirect;
      if cond_true (g (ip + 1)) then begin
        Perf.incr perf Perf.Branch_taken;
        let l = g (ip + 2) and link = g (ip + 3) in
        if link < 0 then begin
          cpu.Cpu.pc <- rd a b l;
          go (ip + 5) a b
        end
        else if link < 16 then begin
          Array.unsafe_set regs link (g (ip + 4));
          cpu.Cpu.pc <- rd a b l;
          go (ip + 5) a b
        end
        else if link = 16 then begin
          let a = g (ip + 4) in
          cpu.Cpu.pc <- rd a b l;
          go (ip + 5) a b
        end
        else begin
          let b = g (ip + 4) in
          cpu.Cpu.pc <- rd a b l;
          go (ip + 5) a b
        end
      end
      else go (ip + 5) a b
    | 41 (* BSEAM *) ->
      Perf.incr perf Perf.Branch_direct;
      Perf.incr perf Perf.Branch_taken;
      wr (ip + 3) a b (g (ip + 1)) (g (ip + 2))
    | 42 (* SVC *) ->
      spill a b;
      h.h_svc ~ret:(g (ip + 2)) ~iidx:(g (ip + 3));
      go (ip + 4) a b
    | 43 (* UNDEF *) ->
      spill a b;
      h.h_undef ~iva:(g (ip + 1)) ~iidx:(g (ip + 2));
      go (ip + 3) a b
    | 44 (* ERET *) ->
      Exn.eret cpu;
      go (ip + 1) a b
    | 45 (* COPRD *) ->
      Perf.incr perf Perf.Cop_reads;
      wr (ip + 3) a b (g (ip + 1)) (Array.unsafe_get cop (g (ip + 2)))
    | 46 (* COPWR *) ->
      let value = ld a b (g (ip + 2)) (g (ip + 3)) in
      spill a b;
      h.h_cop_write ~creg:(g (ip + 1)) ~value ~iva:(g (ip + 4))
        ~iidx:(g (ip + 5));
      go (ip + 6) a b
    | 47 (* TLBIP *) ->
      h.h_tlb_inv_page ~va:(rd a b (g (ip + 1)));
      go (ip + 2) a b
    | 48 (* TLBIA *) ->
      h.h_tlb_inv_all ();
      go (ip + 1) a b
    | 49 (* WFI *) ->
      spill a b;
      h.h_wfi ~iidx:(g (ip + 1));
      go (ip + 2) a b
    | 50 (* HALT *) ->
      spill a b;
      h.h_halt ~iidx:(g (ip + 1));
      go (ip + 2) a b
    | 51 (* ADDIP *) ->
      let d = g (ip + 1) in
      Array.unsafe_set regs d
        ((Array.unsafe_get regs d + g (ip + 2)) land u32_mask);
      go (ip + 3) a b
    | 52 (* ADDIA *) -> go (ip + 2) ((a + g (ip + 1)) land u32_mask) b
    | 53 (* ADDIB *) -> go (ip + 2) a ((b + g (ip + 1)) land u32_mask)
    | 54 (* BD0 *) ->
      Perf.incr perf Perf.Branch_direct;
      Perf.incr perf Perf.Branch_taken;
      cpu.Cpu.pc <- g (ip + 1);
      go (ip + 3) a b
    | 55 (* BSEAM0 *) ->
      Perf.incr perf Perf.Branch_direct;
      Perf.incr perf Perf.Branch_taken;
      go (ip + 1) a b
    | _ -> assert false
  and wr ip a b d v =
    if d < 0 then go ip a b
    else if d < 16 then begin
      Array.unsafe_set regs d v;
      go ip a b
    end
    else if d = 16 then go ip v b
    else go ip a v
  in
  fun () ->
    go 0
      (if ra >= 0 then Array.unsafe_get regs ra else 0)
      (if rb >= 0 then Array.unsafe_get regs rb else 0)

let exec h p = prepare h p ()

(* ---------------- semantic model for the translation validator --------- *)

(* Decode an opstream back into the micro-op list each instruction
   implements, for symbolic comparison against the reference semantics.
   Redundant inline operands (instruction VA, resume VA, return address,
   retirement index) are re-derived from [meta] and checked; any mismatch
   decodes as [Uop.Undef], poisoning the instruction so the validator
   reports the broken emitter rather than silently trusting the stream. *)
let model ~mmu (p : program) =
  let code = p.code in
  let unloc l = if l = 16 then p.ra else if l = 17 then p.rb else l in
  let operand k v = if k = 0 then Uop.Imm v else Uop.Reg (unloc v) in
  let code_len = Array.length code in
  List.init p.p_insns (fun i ->
      let off, va, len = p.meta.(i) in
      let stop =
        if i + 1 < p.p_insns then (fun (o, _, _) -> o) p.meta.(i + 1)
        else code_len - 1 (* the trailing END *)
      in
      let poisoned = ref false in
      let check cond = if not cond then poisoned := true in
      let alu2 op ip d kn vn km vm =
        ( Uop.Alu
            {
              op;
              rd = Some (unloc d);
              rn = operand kn vn;
              rm = operand km vm;
              set_flags = false;
            },
          ip )
      in
      let rec walk acc ip =
        if ip >= stop then List.rev acc
        else
          let uop, next =
            match code.(ip) with
            | 1 -> alu2 Uop.Orr (ip + 3) (code.(ip + 1)) 0 0 0 (code.(ip + 2))
            | 2 -> alu2 Uop.Orr (ip + 3) (code.(ip + 1)) 1 (code.(ip + 2)) 0 0
            | 3 ->
              alu2 Uop.Add (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 4 ->
              alu2 Uop.Sub (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 5 ->
              alu2 Uop.And_ (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 6 ->
              alu2 Uop.Orr (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 7 ->
              alu2 Uop.Xor (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 8 ->
              alu2 Uop.Mul (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 9 ->
              alu2 Uop.Add (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 10 ->
              alu2 Uop.Sub (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 11 ->
              alu2 Uop.And_ (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 12 ->
              alu2 Uop.Orr (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 13 ->
              alu2 Uop.Xor (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 14 ->
              alu2 Uop.Mul (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 1
                (code.(ip + 3))
            | 15 ->
              check (code.(ip + 3) >= 0 && code.(ip + 3) < 32);
              alu2 Uop.Lsl (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 16 ->
              check (code.(ip + 3) >= 0 && code.(ip + 3) < 32);
              alu2 Uop.Lsr (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 17 ->
              check (code.(ip + 3) >= 0 && code.(ip + 3) <= 31);
              alu2 Uop.Asr (ip + 4) (code.(ip + 1)) 1 (code.(ip + 2)) 0
                (code.(ip + 3))
            | 18 ->
              ( Uop.Alu
                  {
                    op = Uop.Lsl;
                    rd = Some (unloc (code.(ip + 1)));
                    rn = operand (code.(ip + 2)) (code.(ip + 3));
                    rm = Uop.Reg (unloc (code.(ip + 4)));
                    set_flags = false;
                  },
                ip + 5 )
            | 19 ->
              ( Uop.Alu
                  {
                    op = Uop.Lsr;
                    rd = Some (unloc (code.(ip + 1)));
                    rn = operand (code.(ip + 2)) (code.(ip + 3));
                    rm = Uop.Reg (unloc (code.(ip + 4)));
                    set_flags = false;
                  },
                ip + 5 )
            | 20 ->
              ( Uop.Alu
                  {
                    op = Uop.Asr;
                    rd = Some (unloc (code.(ip + 1)));
                    rn = operand (code.(ip + 2)) (code.(ip + 3));
                    rm = Uop.Reg (unloc (code.(ip + 4)));
                    set_flags = false;
                  },
                ip + 5 )
            | 21 ->
              ( Uop.Alu
                  {
                    op = alu_of_code code.(ip + 1);
                    rd = Some (unloc (code.(ip + 2)));
                    rn = operand (code.(ip + 3)) (code.(ip + 4));
                    rm = operand (code.(ip + 5)) (code.(ip + 6));
                    set_flags = false;
                  },
                ip + 7 )
            | 22 ->
              ( Uop.Alu
                  {
                    op = alu_of_code code.(ip + 1);
                    rd =
                      (if code.(ip + 2) = 0 then None
                       else Some (unloc (code.(ip + 3))));
                    rn = operand (code.(ip + 4)) (code.(ip + 5));
                    rm = operand (code.(ip + 6)) (code.(ip + 7));
                    set_flags = true;
                  },
                ip + 8 )
            | (23 | 24 | 25 | 26 | 27 | 28) as opc ->
              let width =
                match opc with
                | 23 | 26 -> Uop.W8
                | 24 | 27 -> Uop.W16
                | _ -> Uop.W32
              in
              check (mmu = (opc >= 26));
              check (code.(ip + 5) = va && code.(ip + 6) = i);
              ( Uop.Load
                  {
                    width;
                    rd = unloc (code.(ip + 1));
                    base = operand (code.(ip + 2)) (code.(ip + 3));
                    offset = code.(ip + 4);
                    user = false;
                  },
                ip + 7 )
            | 29 ->
              check (mmu = (code.(ip + 1) <> 0));
              check (code.(ip + 7) = va && code.(ip + 8) = i);
              ( Uop.Load
                  {
                    width = width_of_code code.(ip + 2);
                    rd = unloc (code.(ip + 3));
                    base = operand (code.(ip + 4)) (code.(ip + 5));
                    offset = code.(ip + 6);
                    user = true;
                  },
                ip + 9 )
            | (30 | 31 | 32 | 33 | 34 | 35) as opc ->
              let width =
                match opc with
                | 30 | 33 -> Uop.W8
                | 31 | 34 -> Uop.W16
                | _ -> Uop.W32
              in
              check (mmu = (opc >= 33));
              check
                (code.(ip + 5) = va
                && code.(ip + 6) = va + len
                && code.(ip + 7) = i);
              ( Uop.Store
                  {
                    width;
                    rs = unloc (code.(ip + 1));
                    base = operand (code.(ip + 2)) (code.(ip + 3));
                    offset = code.(ip + 4);
                    user = false;
                  },
                ip + 8 )
            | 36 ->
              check (mmu = (code.(ip + 1) <> 0));
              check
                (code.(ip + 7) = va
                && code.(ip + 8) = va + len
                && code.(ip + 9) = i);
              ( Uop.Store
                  {
                    width = width_of_code code.(ip + 2);
                    rs = unloc (code.(ip + 3));
                    base = operand (code.(ip + 4)) (code.(ip + 5));
                    offset = code.(ip + 6);
                    user = true;
                  },
                ip + 10 )
            | 37 ->
              check (code.(ip + 3) = (va + len) land u32_mask);
              ( Uop.Branch
                  {
                    cond = Uop.Always;
                    target = Uop.Direct code.(ip + 1);
                    link =
                      (if code.(ip + 2) < 0 then None
                       else Some (unloc (code.(ip + 2))));
                  },
                ip + 4 )
            | 38 ->
              check (code.(ip + 3) = (va + len) land u32_mask);
              ( Uop.Branch
                  {
                    cond = Uop.Always;
                    target = Uop.Indirect (unloc (code.(ip + 1)));
                    link =
                      (if code.(ip + 2) < 0 then None
                       else Some (unloc (code.(ip + 2))));
                  },
                ip + 4 )
            | 39 ->
              check (code.(ip + 4) = (va + len) land u32_mask);
              ( Uop.Branch
                  {
                    cond = cond_of_code code.(ip + 1);
                    target = Uop.Direct code.(ip + 2);
                    link =
                      (if code.(ip + 3) < 0 then None
                       else Some (unloc (code.(ip + 3))));
                  },
                ip + 5 )
            | 40 ->
              check (code.(ip + 4) = (va + len) land u32_mask);
              ( Uop.Branch
                  {
                    cond = cond_of_code code.(ip + 1);
                    target = Uop.Indirect (unloc (code.(ip + 2)));
                    link =
                      (if code.(ip + 3) < 0 then None
                       else Some (unloc (code.(ip + 3))));
                  },
                ip + 5 )
            | 41 ->
              (* elided seam branch: never emitted for the programs the
                 validator compiles (blocks, elide off), so seeing one here
                 is itself an emitter bug *)
              check false;
              (Uop.Undef, ip + 3)
            | 42 ->
              check (code.(ip + 2) = (va + len) land u32_mask && code.(ip + 3) = i);
              (Uop.Svc code.(ip + 1), ip + 4)
            | 43 ->
              check (code.(ip + 1) = va && code.(ip + 2) = i);
              (Uop.Undef, ip + 3)
            | 44 -> (Uop.Eret, ip + 1)
            | 45 ->
              check (code.(ip + 2) >= 0 && code.(ip + 2) < Cregs.count);
              (Uop.Cop_read { rd = unloc (code.(ip + 1)); creg = code.(ip + 2) }, ip + 3)
            | 46 ->
              check (code.(ip + 1) >= 0 && code.(ip + 1) < Cregs.count);
              check (code.(ip + 4) = va && code.(ip + 5) = i);
              ( Uop.Cop_write
                  {
                    creg = code.(ip + 1);
                    src = operand (code.(ip + 2)) (code.(ip + 3));
                  },
                ip + 6 )
            | 47 -> (Uop.Tlb_inv_page (unloc (code.(ip + 1))), ip + 2)
            | 48 -> (Uop.Tlb_inv_all, ip + 1)
            | 49 ->
              check (code.(ip + 1) = i);
              (Uop.Wfi, ip + 2)
            | 50 ->
              check (code.(ip + 1) = i);
              (Uop.Halt, ip + 2)
            | 51 ->
              check (code.(ip + 1) >= 0 && code.(ip + 1) < 16);
              alu2 Uop.Add (ip + 3) (code.(ip + 1)) 1 (code.(ip + 1)) 0
                (code.(ip + 2))
            | 52 ->
              check (p.ra >= 0);
              alu2 Uop.Add (ip + 2) 16 1 16 0 (code.(ip + 1))
            | 53 ->
              check (p.rb >= 0);
              alu2 Uop.Add (ip + 2) 17 1 17 0 (code.(ip + 1))
            | 54 ->
              check (code.(ip + 2) = (va + len) land u32_mask);
              ( Uop.Branch
                  {
                    cond = Uop.Always;
                    target = Uop.Direct code.(ip + 1);
                    link = None;
                  },
                ip + 3 )
            | 55 ->
              (* linkless elided seam: like BSEAM, never reaches the
                 validator (blocks compile with elide off) *)
              check false;
              (Uop.Undef, ip + 1)
            | _ ->
              check false;
              (Uop.Undef, stop)
          in
          walk (uop :: acc) next
      in
      let uops = walk [] off in
      let uops = if !poisoned then uops @ [ Uop.Undef ] else uops in
      (va, len, uops))
