(** Per-instruction translation pipeline, usable without a running guest.

    The DBT proper ({!Dbt.Make_configured}) turns decoded instructions into
    closures over live machine state; a static checker cannot execute
    those.  This module exposes the two halves it needs instead: the
    optimiser front half verbatim ({!ir_of_decoded} is exactly the
    [Ir.of_decoded] + [Ir.run] sequence [translate_block] performs), and a
    semantic model of the emission back half ({!model_uop}), kept in
    lockstep with the specialisation table in [Dbt.emit_alu] /
    [Dbt.emit_uop].  [Sb_analysis.Tv] symbolically compares the composed
    pipeline against the decoder's reference semantics for every encoding
    class of every architecture under every registered release
    configuration. *)

val ir_of_decoded :
  config:Config.t ->
  ?validate:Ir.pass_validator ->
  Sb_isa.Uop.decoded list ->
  Ir.t * int
(** Build the IR for a decoded instruction sequence and run the
    configuration's optimiser passes over it, exactly as block translation
    does.  Returns the optimised IR and the number of passes run. *)

val model_uop : Sb_isa.Uop.t -> Sb_isa.Uop.t list
(** The micro-op sequence the emitted closure for [uop] is equivalent to:
    shift immediates pre-reduced to their architectural amount, ALU ops
    with no destination and no flags elided, out-of-range coprocessor
    registers rejected as undefined at emission time.  Everything else
    emits generically and models as itself. *)

val model_threaded :
  config:Config.t ->
  mmu:bool ->
  Sb_isa.Uop.decoded list ->
  (int * int * Sb_isa.Uop.t list) list
(** The threaded backend's semantic model for a decoded sequence: build the
    IR, run the configuration's optimiser passes, lower through the real
    token encoder ({!Threaded.compile}) and decode the opstream back with
    {!Threaded.model}, yielding [(va, len, uops)] per instruction.  [mmu]
    selects which memory fast-path lowering is exercised; the validator
    checks both regimes. *)

val set_mutation : (Sb_isa.Uop.t -> Sb_isa.Uop.t) option -> unit
(** Test hook: install a deliberately broken emitter (applied inside
    {!model_uop}) to prove the translation validator catches mis-emitted
    instructions.  Pass [None] to restore the real emitter.  Never set
    outside tests. *)

val set_threaded_mutation : (Sb_isa.Uop.t -> Sb_isa.Uop.t) option -> unit
(** Test hook: break only the threaded lowering (applied to the IR before
    {!Threaded.compile} inside {!model_threaded}) so the validator's
    component attribution can be proven.  Pass [None] to restore.  Never
    set outside tests. *)
