(** The QEMU release sweep (Figures 2, 6 and 8).

    Each entry names a release on the paper's x-axis and gives the DBT
    configuration modelling the implementation state of that release.  The
    knob trajectory encodes the documented changes the paper discusses:

    - v2.0.0 "Improvements to the TCG optimiser": pass budget 1 to 2, block
      cap 32 to 64, page cache enlarged and given a second level, lazy
      flushing — the across-the-board improvement visible in Figure 6.
    - v2.1.0 onwards: memory helpers gain indirection layers and the
      dispatch hot path gains verification work, the gradual control-flow
      and memory degradation of Figure 6.
    - v2.2.0 onwards: exception entry synchronises ever more state.
    - v2.5.0-rc0: the data-abort fast path (the off-scale Data-Fault
      improvement the paper calls out, with no matching SPEC change).
    - v2.6.0: profile-guided hot-trace superblocks (HQEMU-style region
      formation stitched across direct-chain seams; see docs/traces.md). *)

val all : (string * Config.t) list
(** In release order; first entry is the baseline the speedup plots divide
    by. *)

val baseline_name : string

val find : string -> Config.t option
val names : string list

val name_of : Config.t -> string option
(** Canonical (first-listed) release name shipping exactly this
    configuration; [None] when the configuration is not a registered
    release.  The inverse of {!find} up to release aliasing. *)
