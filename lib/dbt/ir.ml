open Sb_isa

type insn = { va : int; len : int; mutable uops : Uop.t list }

type t = insn array

let of_decoded decodeds =
  Array.of_list
    (List.map
       (fun (d : Uop.decoded) -> { va = d.Uop.addr; len = d.Uop.length; uops = d.Uop.uops })
       decodeds)

let subst consts = function
  | Uop.Reg r as operand -> (
    match consts.(r) with Some v -> Uop.Imm v | None -> operand)
  | Uop.Imm _ as operand -> operand

let const_prop ir =
  let consts = Array.make 16 None in
  let kill r = consts.(r) <- None in
  let rewrite_uop insn uop =
    match uop with
    | Uop.Alu { op; rd; rn; rm; set_flags } -> (
      let rn = subst consts rn in
      let rm = subst consts rm in
      match (rd, rn, rm, set_flags) with
      | Some rd', Uop.Imm a, Uop.Imm b, false ->
        (* fully-known result: fold to a constant move *)
        let v = Sb_sim.Alu_eval.eval op a b in
        consts.(rd') <- Some v;
        Uop.Alu { op = Uop.Orr; rd; rn = Uop.Imm 0; rm = Uop.Imm v; set_flags = false }
      | _ ->
        (match rd with Some rd' -> kill rd' | None -> ());
        Uop.Alu { op; rd; rn; rm; set_flags })
    | Uop.Load { width; rd; base; offset; user } ->
      let base = subst consts base in
      kill rd;
      Uop.Load { width; rd; base; offset; user }
    | Uop.Store { width; rs; base; offset; user } ->
      Uop.Store { width; rs; base = subst consts base; offset; user }
    | Uop.Branch { cond; target = _; link } ->
      (match link with
      | Some l ->
        if cond = Uop.Always then consts.(l) <- Some (insn.va + insn.len)
        else kill l
      | None -> ());
      uop
    | Uop.Cop_read { rd; _ } ->
      kill rd;
      uop
    | Uop.Cop_write { creg; src } -> Uop.Cop_write { creg; src = subst consts src }
    | Uop.Nop | Uop.Svc _ | Uop.Undef | Uop.Eret | Uop.Tlb_inv_page _
    | Uop.Tlb_inv_all | Uop.Wfi | Uop.Halt ->
      uop
  in
  Array.iter (fun insn -> insn.uops <- List.map (rewrite_uop insn) insn.uops) ir

let nop_elim ir =
  Array.iter
    (fun insn -> insn.uops <- List.filter (fun u -> u <> Uop.Nop) insn.uops)
    ir

let peephole ir =
  let simplify = function
    | Uop.Alu { op; rd = Some rd; rn = Uop.Reg rn; rm = Uop.Imm 0; set_flags = false }
      when op = Uop.Add || op = Uop.Sub || op = Uop.Orr || op = Uop.Xor
           || op = Uop.Lsl || op = Uop.Lsr || op = Uop.Asr ->
      if rd = rn then Uop.Nop
      else
        Uop.Alu
          { op = Uop.Orr; rd = Some rd; rn = Uop.Reg rn; rm = Uop.Imm 0; set_flags = false }
    | Uop.Alu { op = Uop.Mul; rd = Some rd; rn; rm = Uop.Imm 1; set_flags = false } ->
      Uop.Alu { op = Uop.Orr; rd = Some rd; rn; rm = Uop.Imm 0; set_flags = false }
    | Uop.Alu { op = Uop.Mul; rd = Some rd; rm = Uop.Imm 0; set_flags = false; _ } ->
      Uop.Alu
        { op = Uop.Orr; rd = Some rd; rn = Uop.Imm 0; rm = Uop.Imm 0; set_flags = false }
    | u -> u
  in
  Array.iter (fun insn -> insn.uops <- List.map simplify insn.uops) ir;
  nop_elim ir

let pipeline = [ ("const-prop", const_prop); ("nop-elim", nop_elim); ("peephole", peephole); ("const-prop-2", const_prop) ]

let pass_names = List.map fst pipeline

type pass_validator = pass:string -> before:t -> after:t -> unit

let copy ir = Array.map (fun insn -> { insn with uops = insn.uops }) ir

let run ?validate ~passes ir =
  let n = max 0 (min passes (List.length pipeline)) in
  List.iteri
    (fun i (name, pass) ->
      if i < n then
        match validate with
        | None -> pass ir
        | Some check ->
          let before = copy ir in
          pass ir;
          check ~pass:name ~before ~after:ir)
    pipeline;
  n
