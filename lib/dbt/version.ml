let v1_7_0 = Config.baseline

let v2_0_0 =
  {
    v1_7_0 with
    Config.opt_passes = 3;
    max_block_insns = 64;
    lazy_tlb_flush = true;
  }

let v2_1_0 =
  {
    v2_0_0 with
    Config.mem_helper_layers = 1;
    walk_extra_work = 9;
    exception_sync_work = 3;
  }

let v2_2_0 = { v2_1_0 with Config.exception_sync_work = 4; walk_extra_work = 12 }

let v2_3_0 =
  {
    v2_2_0 with
    Config.mem_helper_layers = 2;
    chain_verify_work = 2;
    walk_extra_work = 24;
    exception_sync_work = 5;
  }

let v2_4_0 =
  {
    v2_3_0 with
    Config.chain_verify_work = 4;
    walk_extra_work = 20;
    exception_sync_work = 6;
  }

let v2_5_0_rc0 =
  {
    v2_4_0 with
    Config.mem_helper_layers = 3;
    chain_verify_work = 6;
    walk_extra_work = 24;
    exception_sync_work = 7;
    data_fault_fast_path = true;
  }

let v2_6_0 =
  { v2_5_0_rc0 with Config.trace_threshold = 16; max_trace_blocks = 8 }

let v2_7_0 = { v2_6_0 with Config.threaded = true; reg_cache = true }

let all =
  [
    ("v1.7.0", v1_7_0);
    ("v1.7.1", v1_7_0);
    ("v1.7.2", v1_7_0);
    ("v2.0.0", v2_0_0);
    ("v2.0.1", v2_0_0);
    ("v2.0.2", v2_0_0);
    ("v2.1.0", v2_1_0);
    ("v2.1.1", v2_1_0);
    ("v2.1.2", v2_1_0);
    ("v2.1.3", v2_1_0);
    ("v2.2.0", v2_2_0);
    ("v2.2.1", v2_2_0);
    ("v2.3.0", v2_3_0);
    ("v2.3.1", v2_3_0);
    ("v2.4.0", v2_4_0);
    ("v2.4.0.1", v2_4_0);
    ("v2.4.1", v2_4_0);
    ("v2.5.0-rc0", v2_5_0_rc0);
    ("v2.5.0-rc1", v2_5_0_rc0);
    ("v2.5.0-rc2", v2_5_0_rc0);
    ("v2.6.0", v2_6_0);
    ("v2.7.0", v2_7_0);
  ]

let baseline_name = "v1.7.0"

let find name = List.assoc_opt name all

(* Releases alias configurations (v1.7.1 ships v1.7.0's), so the reverse
   lookup returns the canonical (first-listed) release name; [None] for
   configurations that are not a registered release (e.g. Config.default
   or ad-hoc experiment configs). *)
let name_of config =
  Option.map fst (List.find_opt (fun (_, c) -> c = config) all)

let names = List.map fst all
