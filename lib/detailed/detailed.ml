open Sb_isa
open Sb_sim

let page_shift = 12
let page_mask = (1 lsl page_shift) - 1

module Timing = struct
  type t = {
    fetch_latency : int;
    decode_latency : int;
    execute_latency : int;
    mul_latency : int;
    cache_hit_latency : int;
    cache_miss_latency : int;
    walk_level_latency : int;
    exception_latency : int;
  }

  let default =
    {
      fetch_latency = 1;
      decode_latency = 1;
      execute_latency = 1;
      mul_latency = 3;
      cache_hit_latency = 1;
      cache_miss_latency = 20;
      walk_level_latency = 20;
      exception_latency = 12;
    }
end

module Make (A : Arch_sig.ARCH) = struct
  let name = Printf.sprintf "detailed-%s" A.name

  let features =
    [
      ("Execution Model", "Detailed Interpreter");
      ("Memory Access", "Modelled TLB");
      ("Code Generation", "None");
      ("Control Flow", "Interpreted");
      ("Interrupts", "Insn. Boundaries");
      ("Synchronous Exceptions", "Interpreted");
      ("Undefined Instruction", "Interpreted");
    ]

  let timing = Timing.default

  exception Guest_fault of {
    vector : Exn.vector;
    cause : int;
    far : int option;
    return_addr : int;
  }

  exception Stop of Run_result.stop_reason

  type stage =
    | Fetch
    | Decode_stage
    | Execute_stage of Uop.decoded
    | Mem_stage of Uop.decoded
    | Writeback of Uop.decoded

  type ctx = {
    machine : Machine.t;
    cpu : Cpu.t;
    bus : Sb_mem.Bus.t;
    perf : Perf.t;
    itlb : Sb_mmu.Tlb.t;
    dtlb : Sb_mmu.Tlb.t;
    icache : Cache_model.t;
    dcache : Cache_model.t;
    events : stage Event_queue.t;
    mutable cycles : int;
    mutable mem_accesses : int list;  (* physical addresses touched by the current insn *)
    mutable extra_latency : int;      (* walk latencies accumulated during translation *)
    mutable timer_backlog : int;
  }

  let cycles_of_last_run = ref 0

  let make_ctx machine perf =
    {
      machine;
      cpu = machine.Machine.cpu;
      bus = machine.Machine.bus;
      perf;
      itlb = Sb_mmu.Tlb.create ~entries:32;
      dtlb = Sb_mmu.Tlb.create ~entries:64;
      icache = Cache_model.create ~size_bytes:(16 * 1024) ~line_bytes:32;
      dcache = Cache_model.create ~size_bytes:(32 * 1024) ~line_bytes:32;
      events = Event_queue.create ();
      cycles = 0;
      mem_accesses = [];
      extra_latency = 0;
      timer_backlog = 0;
    }

  let data_fault ~iaddr ~kind ~va fault =
    let cause = Exn.Cause.of_fault ~kind fault in
    match kind with
    | Sb_mmu.Access.Execute ->
      raise
        (Guest_fault
           { vector = Exn.Prefetch_abort; cause; far = Some va; return_addr = iaddr })
    | Sb_mmu.Access.Read | Sb_mmu.Access.Write ->
      raise
        (Guest_fault
           { vector = Exn.Data_abort; cause; far = Some va; return_addr = iaddr })

  let bus_fault ~iaddr ~kind ~va =
    let vector =
      match kind with
      | Sb_mmu.Access.Execute -> Exn.Prefetch_abort
      | Sb_mmu.Access.Read | Sb_mmu.Access.Write -> Exn.Data_abort
    in
    raise
      (Guest_fault
         { vector; cause = Exn.Cause.bus_error; far = Some va; return_addr = iaddr })

  let walker_read32 ctx pa =
    try Sb_mem.Bus.read32 ctx.bus pa with Sb_mem.Bus.Fault _ -> 0

  let translate ctx tlb ~va ~kind ~priv ~iaddr =
    if not (Cpu.mmu_enabled ctx.cpu) then va
    else begin
      let vpn = va lsr page_shift in
      match Sb_mmu.Tlb.lookup tlb ~vpn ~asid:0 with
      | Some e ->
        Perf.incr ctx.perf Perf.Tlb_hit;
        if Sb_mmu.Access.Ap.permits ~ap:e.Sb_mmu.Tlb.ap ~xn:e.Sb_mmu.Tlb.xn kind priv
        then (e.Sb_mmu.Tlb.ppn lsl page_shift) lor (va land page_mask)
        else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission
      | None -> (
        Perf.incr ctx.perf Perf.Tlb_miss;
        Perf.incr ctx.perf Perf.Mmu_walks;
        let ttbr = ctx.cpu.Cpu.cop.(Cregs.ttbr) in
        match Sb_mmu.Walker.walk ~read32:(walker_read32 ctx) ~ttbr ~va with
        | Error fault -> data_fault ~iaddr ~kind ~va fault
        | Ok m ->
          Perf.add ctx.perf Perf.Walk_levels m.Sb_mmu.Walker.levels;
          ctx.extra_latency <-
            ctx.extra_latency + (m.Sb_mmu.Walker.levels * timing.Timing.walk_level_latency);
          Sb_mmu.Tlb.insert tlb
            {
              Sb_mmu.Tlb.vpn;
              ppn = m.Sb_mmu.Walker.pa_page lsr page_shift;
              ap = m.Sb_mmu.Walker.ap;
              xn = m.Sb_mmu.Walker.xn;
              asid = 0;
            };
          if Sb_mmu.Access.Ap.permits ~ap:m.Sb_mmu.Walker.ap ~xn:m.Sb_mmu.Walker.xn
               kind priv
          then m.Sb_mmu.Walker.pa_page lor (va land page_mask)
          else data_fault ~iaddr ~kind ~va Sb_mmu.Access.Permission)
    end

  let read_phys ctx ~iaddr ~va width pa =
    ctx.mem_accesses <- pa :: ctx.mem_accesses;
    if Sb_mem.Bus.is_ram ctx.bus pa then
      let ram = Sb_mem.Bus.ram ctx.bus in
      match width with
      | Uop.W8 -> Sb_mem.Phys_mem.read8 ram pa
      | Uop.W16 -> Sb_mem.Phys_mem.read16 ram pa
      | Uop.W32 -> Sb_mem.Phys_mem.read32 ram pa
    else begin
      Perf.incr ctx.perf Perf.Io_reads;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.read8 ctx.bus pa
        | Uop.W16 -> Sb_mem.Bus.read16 ctx.bus pa
        | Uop.W32 -> Sb_mem.Bus.read32 ctx.bus pa
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Read ~va
    end

  let write_phys ctx ~iaddr ~va width pa v =
    ctx.mem_accesses <- pa :: ctx.mem_accesses;
    if Sb_mem.Bus.is_ram ctx.bus pa then
      let ram = Sb_mem.Bus.ram ctx.bus in
      match width with
      | Uop.W8 -> Sb_mem.Phys_mem.write8 ram pa v
      | Uop.W16 -> Sb_mem.Phys_mem.write16 ram pa v
      | Uop.W32 -> Sb_mem.Phys_mem.write32 ram pa v
    else begin
      Perf.incr ctx.perf Perf.Io_writes;
      try
        match width with
        | Uop.W8 -> Sb_mem.Bus.write8 ctx.bus pa v
        | Uop.W16 -> Sb_mem.Bus.write16 ctx.bus pa v
        | Uop.W32 -> Sb_mem.Bus.write32 ctx.bus pa v
      with Sb_mem.Bus.Fault _ -> bus_fault ~iaddr ~kind:Sb_mmu.Access.Write ~va
    end

  let fetch_byte ctx ~iaddr a =
    let pa = translate ctx ctx.itlb ~va:a ~kind:Sb_mmu.Access.Execute ~priv:ctx.cpu.Cpu.mode ~iaddr in
    if Sb_mem.Bus.is_ram ctx.bus pa then
      Sb_mem.Phys_mem.read8 (Sb_mem.Bus.ram ctx.bus) pa
    else bus_fault ~iaddr ~kind:Sb_mmu.Access.Execute ~va:a

  let operand ctx = function
    | Uop.Reg r -> ctx.cpu.Cpu.regs.(r)
    | Uop.Imm v -> v land 0xFFFF_FFFF

  let undef ~iaddr =
    raise
      (Guest_fault
         { vector = Exn.Undefined; cause = Exn.Cause.undefined; far = None; return_addr = iaddr })

  let exec_uop ctx (d : Uop.decoded) uop =
    let cpu = ctx.cpu in
    match uop with
    | Uop.Nop -> ()
    | Uop.Alu { op; rd; rn; rm; set_flags } ->
      let a = operand ctx rn in
      let b = operand ctx rm in
      if set_flags then begin
        let result, n, z, c, v = Alu_eval.eval_flags op a b in
        cpu.Cpu.flag_n <- n;
        cpu.Cpu.flag_z <- z;
        cpu.Cpu.flag_c <- c;
        cpu.Cpu.flag_v <- v;
        match rd with Some rd -> cpu.Cpu.regs.(rd) <- result | None -> ()
      end
      else begin
        match rd with
        | Some rd -> cpu.Cpu.regs.(rd) <- Alu_eval.eval op a b
        | None -> ignore (Alu_eval.eval op a b)
      end
    | Uop.Load { width; rd; base; offset; user } ->
      Perf.incr ctx.perf Perf.Loads;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ctx.dtlb ~va ~kind:Sb_mmu.Access.Read ~priv ~iaddr:d.Uop.addr in
      cpu.Cpu.regs.(rd) <- read_phys ctx ~iaddr:d.Uop.addr ~va width pa
    | Uop.Store { width; rs; base; offset; user } ->
      Perf.incr ctx.perf Perf.Stores;
      if user then Perf.incr ctx.perf Perf.User_accesses;
      let va = Sb_util.U32.add (operand ctx base) offset in
      let priv = if user then Sb_mmu.Access.User else cpu.Cpu.mode in
      let pa = translate ctx ctx.dtlb ~va ~kind:Sb_mmu.Access.Write ~priv ~iaddr:d.Uop.addr in
      write_phys ctx ~iaddr:d.Uop.addr ~va width pa cpu.Cpu.regs.(rs)
    | Uop.Branch { cond; target; link } ->
      (match target with
      | Uop.Direct _ -> Perf.incr ctx.perf Perf.Branch_direct
      | Uop.Indirect _ -> Perf.incr ctx.perf Perf.Branch_indirect);
      let taken =
        Uop.eval_cond cond ~n:cpu.Cpu.flag_n ~z:cpu.Cpu.flag_z ~c:cpu.Cpu.flag_c
          ~v:cpu.Cpu.flag_v
      in
      if taken then begin
        Perf.incr ctx.perf Perf.Branch_taken;
        let return_addr = d.Uop.addr + d.Uop.length in
        (match link with
        | Some l -> cpu.Cpu.regs.(l) <- return_addr land 0xFFFF_FFFF
        | None -> ());
        match target with
        | Uop.Direct t -> cpu.Cpu.pc <- t
        | Uop.Indirect r -> cpu.Cpu.pc <- cpu.Cpu.regs.(r)
      end
    | Uop.Svc _ ->
      raise
        (Guest_fault
           {
             vector = Exn.Syscall;
             cause = Exn.Cause.syscall;
             far = None;
             return_addr = d.Uop.addr + d.Uop.length;
           })
    | Uop.Undef -> undef ~iaddr:d.Uop.addr
    | Uop.Eret -> Exn.eret cpu
    | Uop.Cop_read { rd; creg } -> (
      match Cop.read cpu ~creg with
      | Ok v ->
        Perf.incr ctx.perf Perf.Cop_reads;
        cpu.Cpu.regs.(rd) <- v
      | Error `Undefined -> undef ~iaddr:d.Uop.addr)
    | Uop.Cop_write { creg; src } -> (
      match Cop.write cpu ~creg ~value:(operand ctx src) with
      | Ok Cop.No_effect -> Perf.incr ctx.perf Perf.Cop_writes
      | Ok Cop.Translation_changed ->
        Perf.incr ctx.perf Perf.Cop_writes;
        Sb_mmu.Tlb.flush ctx.itlb;
        Sb_mmu.Tlb.flush ctx.dtlb
      | Ok Cop.Asid_changed ->
        (* this model's TLBs are untagged: an address-space switch flushes,
           as in simulators without ASID support *)
        Perf.incr ctx.perf Perf.Cop_writes;
        Sb_mmu.Tlb.flush ctx.itlb;
        Sb_mmu.Tlb.flush ctx.dtlb
      | Error `Undefined -> undef ~iaddr:d.Uop.addr)
    | Uop.Tlb_inv_page r ->
      Perf.incr ctx.perf Perf.Tlb_inv_page_ops;
      let vpn = cpu.Cpu.regs.(r) lsr page_shift in
      Sb_mmu.Tlb.invalidate_page ctx.itlb ~vpn ~asid:0;
      Sb_mmu.Tlb.invalidate_page ctx.dtlb ~vpn ~asid:0
    | Uop.Tlb_inv_all ->
      Perf.incr ctx.perf Perf.Tlb_flush_ops;
      Sb_mmu.Tlb.flush ctx.itlb;
      Sb_mmu.Tlb.flush ctx.dtlb
    | Uop.Wfi -> (
      match Runner.wait_for_interrupt ctx.machine ~perf:ctx.perf with
      | `Wake -> ()
      | `Deadlock -> raise (Stop Run_result.Wfi_deadlock))
    | Uop.Halt -> raise (Stop Run_result.Halted)

  let has_mul (d : Uop.decoded) =
    List.exists
      (function Uop.Alu { op = Uop.Mul; _ } -> true | _ -> false)
      d.Uop.uops

  (* Drive one instruction through the event pipeline. *)
  let step_insn ctx =
    let cpu = ctx.cpu in
    let pc = cpu.Cpu.pc in
    Event_queue.schedule ctx.events ~time:ctx.cycles Fetch;
    let rec drain () =
      match Event_queue.pop ctx.events with
      | None -> ()
      | Some (t, stage) ->
        (match stage with
        | Fetch ->
          ctx.extra_latency <- 0;
          let pa =
            translate ctx ctx.itlb ~va:pc ~kind:Sb_mmu.Access.Execute
              ~priv:cpu.Cpu.mode ~iaddr:pc
          in
          if not (Sb_mem.Bus.is_ram ctx.bus pa) then
            bus_fault ~iaddr:pc ~kind:Sb_mmu.Access.Execute ~va:pc;
          let latency =
            timing.Timing.fetch_latency + ctx.extra_latency
            + (if Cache_model.access ctx.icache pa then timing.Timing.cache_hit_latency
               else timing.Timing.cache_miss_latency)
          in
          Event_queue.schedule ctx.events ~time:(t + latency) Decode_stage
        | Decode_stage ->
          ctx.extra_latency <- 0;
          let d = A.decode ~fetch8:(fetch_byte ctx ~iaddr:pc) ~addr:pc in
          Perf.incr ctx.perf Perf.Decodes;
          Event_queue.schedule ctx.events
            ~time:(t + timing.Timing.decode_latency + ctx.extra_latency)
            (Execute_stage d)
        | Execute_stage d ->
          ctx.extra_latency <- 0;
          ctx.mem_accesses <- [];
          cpu.Cpu.pc <- (d.Uop.addr + d.Uop.length) land 0xFFFF_FFFF;
          List.iter (exec_uop ctx d) d.Uop.uops;
          let latency =
            (if has_mul d then timing.Timing.mul_latency
             else timing.Timing.execute_latency)
            + ctx.extra_latency
          in
          Event_queue.schedule ctx.events ~time:(t + latency) (Mem_stage d)
        | Mem_stage d ->
          let latency =
            List.fold_left
              (fun acc pa ->
                acc
                + (if Cache_model.access ctx.dcache pa then
                     timing.Timing.cache_hit_latency
                   else timing.Timing.cache_miss_latency))
              0 ctx.mem_accesses
          in
          Event_queue.schedule ctx.events ~time:(t + latency) (Writeback d)
        | Writeback d ->
          ctx.cycles <- t + 1;
          Perf.incr ctx.perf Perf.Insns;
          Perf.add ctx.perf Perf.Uops (List.length d.Uop.uops));
        drain ()
    in
    drain ()

  let deliver ctx (vector, cause, far, return_addr) =
    Perf.incr ctx.perf Perf.Exceptions_total;
    (match vector with
    | Exn.Data_abort -> Perf.incr ctx.perf Perf.Data_abort
    | Exn.Prefetch_abort -> Perf.incr ctx.perf Perf.Prefetch_abort
    | Exn.Undefined -> Perf.incr ctx.perf Perf.Undef_insn
    | Exn.Syscall -> Perf.incr ctx.perf Perf.Svc_taken
    | Exn.Irq -> Perf.incr ctx.perf Perf.Irq_taken
    | Exn.Reset -> ());
    ctx.cycles <- ctx.cycles + timing.Timing.exception_latency;
    Exn.enter ctx.cpu vector ~return_addr ?far ~cause ()

  let flush_timer ctx =
    if ctx.timer_backlog > 0 then begin
      Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
      ctx.timer_backlog <- 0
    end

  (* Leaving at a switch point: flush batched timer ticks so the snapshot
     sees the timer state a cold run would at this instruction. *)
  let switch_stop ctx =
    flush_timer ctx;
    raise (Stop Run_result.Switch_point)

  (* Phase boundary: flush batched device time so timer state is a pure
     function of retired instructions at every phase edge (see interp). *)
  let phase_sync ctx benchdev =
    flush_timer ctx;
    Sb_mem.Benchdev.clear_sync benchdev;
    if Sb_mem.Benchdev.stop_pending benchdev then switch_stop ctx

  let execute ctx ~max_insns =
    let steps = ref 0 in
    let benchdev = ctx.machine.Machine.benchdev in
    try
      while !steps < max_insns do
        if Sb_mem.Benchdev.sync_pending benchdev then phase_sync ctx benchdev;
        if Machine.irq_pending ctx.machine then
          deliver ctx (Exn.Irq, Exn.Cause.irq, None, ctx.cpu.Cpu.pc)
        else begin
          (try step_insn ctx
           with Guest_fault { vector; cause; far; return_addr } ->
             Event_queue.clear ctx.events;
             deliver ctx (vector, cause, far, return_addr));
          incr steps;
          ctx.timer_backlog <- ctx.timer_backlog + 1;
          if ctx.timer_backlog >= 64 then begin
            Sb_mem.Timer.advance ctx.machine.Machine.timer ctx.timer_backlog;
            ctx.timer_backlog <- 0
          end
        end
      done;
      Run_result.Insn_limit
    with Stop reason ->
      Event_queue.clear ctx.events;
      reason

  (* Any run exit flushes the batched ticks, so snapshots taken between
     runs carry complete device time (see interp). *)
  let execute ctx ~max_insns =
    let stop = execute ctx ~max_insns in
    flush_timer ctx;
    stop

  let last_cycles () = !cycles_of_last_run

  (* Keep the last run's TLBs and cache models when the machine is
     unchanged ([(machine, state_gen)] match): stepping under a debugger
     stays warm, while external state changes force a rebuild. *)
  let session : (Machine.t * int * ctx) option ref = ref None

  let ctx_for machine =
    match !session with
    | Some (m, gen, ctx)
      when m == machine && gen = machine.Machine.state_gen ->
      (* the ctx owns its counter array; a new run starts it from zero *)
      Perf.reset ctx.perf;
      ctx
    | _ ->
      let ctx = make_ctx machine (Perf.create ()) in
      session := Some (machine, machine.Machine.state_gen, ctx);
      ctx

  let run ?max_insns machine =
    let max_insns =
      match max_insns with Some n -> n | None -> !Runner.insn_budget
    in
    let ctx = ctx_for machine in
    let result =
      Runner.wrap ~name ~machine ~perf:ctx.perf
        ~execute:(fun () -> execute ctx ~max_insns)
    in
    cycles_of_last_run := ctx.cycles;
    result
end
