(** Encoding-space enumeration for VLX (see {!Sb_isa.Encoding}).

    One class per opcode byte (or per ALU operation within the 0x10/0x20
    blocks), with concrete encodings exercising register fields through
    their [land 7] masking, 16- and 32-bit immediate sign-extension edges,
    shift amounts across the >=32 cliff, out-of-range coprocessor
    registers and invalid condition bytes; unallocated opcode bytes form
    the "undef" class.  The translation validator ([Sb_analysis.Tv])
    checks every case and asserts the classes tile the 256-value selector
    space. *)

val set : Sb_isa.Encoding.set
