open Sb_isa.Encoding

(* Encoding-space enumeration for VLX (variable-length, 1-6 bytes): the
   selector is the first opcode byte.  Keep in lockstep with Decode.decode
   — the translation validator fails the build when the classes stop
   tiling the 256-value selector space. *)

let le16 v = [ v land 0xFF; (v lsr 8) land 0xFF ]

let le32 v =
  [ v land 0xFF; (v lsr 8) land 0xFF; (v lsr 16) land 0xFF; (v lsr 24) land 0xFF ]

let regs_byte ~rd ~rn = ((rd land 15) lsl 4) lor (rn land 15)

let mk ?skip name selectors cases = { name; selectors; cases; skip }

(* register-pair bytes: plain pairs plus a byte with the high bit garbage
   (fields decode [land 7] / [land 15]) *)
let pair_cases f =
  List.map
    (fun (rd, rn) -> case ~label:(Printf.sprintf "rd=%d rn=%d" rd rn) (f rd rn))
    [ (0, 1); (7, 6); (3, 3); (15, 9) ]

let imm32s = [ 0; 1; 5; 0x7FFF_FFFF; 0x8000_0000; 0xFFFF_FFFF ]

let shift_imm32s = [ 0; 1; 31; 32; 33; 0xFFFF_FFFF ]

let off16s = [ 0; 4; 0x7FFF; 0x8000; 0xFFFF ]

let rel32s = [ 0; 1; 0x100; 0xFFFF_FFFC; 0xFFFF_FFFF ]

let cregs = [ 0; Sb_isa.Cregs.asid; Sb_isa.Cregs.count; 0xFF ]

let alu_names =
  [| "add"; "sub"; "and"; "orr"; "xor"; "lsl"; "lsr"; "asr"; "mul" |]

let alu_rr_classes =
  List.init 9 (fun i ->
      let op = 0x10 + i in
      mk (alu_names.(i) ^ "_rr") [ op ]
        (pair_cases (fun rd rn -> [ op; regs_byte ~rd ~rn; 2 ])
        @ [ case ~label:"rm byte with garbage high bits" [ op; 0x01; 0xFA ] ]))

let alu_ri_classes =
  List.init 9 (fun i ->
      let op = 0x20 + i in
      let imms = if i >= 5 && i <= 7 then shift_imm32s else imm32s in
      mk (alu_names.(i) ^ "_ri") [ op ]
        (List.map
           (fun imm ->
             case
               ~label:(Printf.sprintf "rd=7 rn=1 imm32=0x%x" imm)
               ([ op; regs_byte ~rd:7 ~rn:1 ] @ le32 imm))
           imms))

let mem name op =
  mk name [ op ]
    (List.map
       (fun off ->
         case
           ~label:(Printf.sprintf "rd=2 base=3 off16=0x%x" off)
           ([ op; regs_byte ~rd:2 ~rn:3 ] @ le16 off))
       off16s
    @ [ case ~label:"reg byte with garbage high bits" ([ op; 0xFA ] @ le16 8) ])

let zero_operand name op = mk name [ op ] [ case ~label:"plain" [ op ] ]

let undef_selectors =
  List.filter
    (fun s ->
      not
        (List.mem s [ 0x00; 0x01; 0x02; 0x0F ]
        || (s >= 0x10 && s <= 0x18)
        || (s >= 0x20 && s <= 0x28)
        || (s >= 0x30 && s <= 0x33)
        || (s >= 0x40 && s <= 0x44)
        || (s >= 0x50 && s <= 0x53)
        || (s >= 0x60 && s <= 0x66)))
    (List.init 256 (fun i -> i))

let classes =
  [
    zero_operand "nop" 0x00;
    zero_operand "halt" 0x01;
    zero_operand "wfi" 0x02;
    mk "ud2" [ 0x0F ]
      [
        case ~label:"0x0F 0x0B (canonical)" [ 0x0F; 0x0B ];
        (* without the 0x0B suffix the decoder takes only the prefix byte *)
        case ~label:"0x0F alone" [ 0x0F ];
      ];
  ]
  @ alu_rr_classes @ alu_ri_classes
  @ [
      mk "movi" [ 0x30 ]
        (List.concat_map
           (fun imm ->
             List.map
               (fun rd ->
                 case
                   ~label:(Printf.sprintf "rd=%d imm32=0x%x" rd imm)
                   ([ 0x30; regs_byte ~rd ~rn:0 ] @ le32 imm))
               [ 0; 7 ])
           [ 0; 5; 0xFFFF_FFFF ]);
      mk "mov" [ 0x31 ] (pair_cases (fun rd rn -> [ 0x31; regs_byte ~rd ~rn ]));
      mk "cmp_rr" [ 0x32 ]
        (pair_cases (fun rn rm -> [ 0x32; regs_byte ~rd:rn ~rn:rm ]));
      mk "cmp_ri" [ 0x33 ]
        (List.map
           (fun imm ->
             case
               ~label:(Printf.sprintf "rn=4 imm32=0x%x" imm)
               ([ 0x33; regs_byte ~rd:4 ~rn:0 ] @ le32 imm))
           imm32s);
      mk "jmp" [ 0x40 ]
        (List.map
           (fun rel ->
             case ~label:(Printf.sprintf "rel32=0x%x" rel) (0x40 :: le32 rel))
           rel32s);
      mk "call" [ 0x41 ]
        (List.map
           (fun rel ->
             case ~label:(Printf.sprintf "rel32=0x%x" rel) (0x41 :: le32 rel))
           rel32s);
      mk "jcc" [ 0x42 ]
        (List.concat_map
           (fun cond ->
             List.map
               (fun rel ->
                 case
                   ~label:(Printf.sprintf "cond=%d rel32=0x%x" cond rel)
                   ([ 0x42; cond ] @ le32 rel))
               [ 4; 0xFFFF_FFFC ])
           [ 0; 1; 2; 3; 4; 5; 6 ]
        @ List.map
            (fun cond ->
              case
                ~label:(Printf.sprintf "invalid cond=%d -> undef" cond)
                ([ 0x42; cond ] @ le32 4))
            [ 7; 0xFF ]);
      mk "jmp_r" [ 0x43 ]
        [
          case ~label:"r=1" [ 0x43; 0x01 ];
          case ~label:"reg byte with garbage high bits" [ 0x43; 0xFF ];
        ];
      mk "call_r" [ 0x44 ]
        [
          case ~label:"r=1" [ 0x44; 0x01 ];
          case ~label:"reg byte with garbage high bits" [ 0x44; 0xFF ];
        ];
      mem "load" 0x50;
      mem "store" 0x51;
      mem "loadb" 0x52;
      mem "storeb" 0x53;
      mk "svc" [ 0x60 ]
        [ case ~label:"imm=0" [ 0x60; 0x00 ]; case ~label:"imm=255" [ 0x60; 0xFF ] ];
      zero_operand "eret" 0x61;
      mk "cpr" [ 0x62 ]
        (List.map
           (fun creg ->
             case ~label:(Printf.sprintf "rd=2 creg=%d" creg)
               [ 0x62; regs_byte ~rd:2 ~rn:0; creg ])
           cregs);
      mk "cpw" [ 0x63 ]
        (List.map
           (fun creg ->
             case ~label:(Printf.sprintf "rs=2 creg=%d" creg)
               [ 0x63; regs_byte ~rd:2 ~rn:0; creg ])
           cregs);
      mk "tlbi" [ 0x64 ]
        [
          case ~label:"r=1" [ 0x64; 0x01 ];
          case ~label:"reg byte with garbage high bits" [ 0x64; 0xFF ];
        ];
      zero_operand "tlbiall" 0x65;
      zero_operand "copreset" 0x66;
      mk "undef" undef_selectors
        (List.map
           (fun s -> case ~label:(Printf.sprintf "op=0x%02x" s) [ s ])
           undef_selectors);
    ]

let set =
  {
    arch = Sb_isa.Arch_sig.Vlx;
    selector_space = 256;
    selector_desc = "first opcode byte";
    classes;
    (* movi r1, 5: the constant seed for cross-instruction const-prop *)
    const_prefix =
      case ~label:"movi r1, 5" ([ 0x30; regs_byte ~rd:1 ~rn:0 ] @ le32 5);
  }
