(* Self-healing client: reconnect, backoff, resume.

   The plain {!Client} is a single connection that fails fast.  This
   layer wraps one job submission in a retry loop: when the transport
   dies mid-stream (server killed, proxy reset, garbled frame) it
   reconnects with jittered exponential backoff and re-submits *only*
   the cells whose rows it has not yet received, flagged [resume:true]
   under the same job id.  The server's content-addressed store
   guarantees the already-computed cells of a resumed job are answered
   from cache, so a cell is never simulated twice on our account — and
   because we check received rows off a key multiset, a duplicate row
   (replayed by an overlapping delivery) is dropped and counted, never
   surfaced twice. *)

module Json = Sb_util.Json

type config = {
  retries : int;
  backoff : float;
  backoff_max : float;
  jitter : float;
  seed : int;
}

let default_config =
  { retries = 5; backoff = 0.25; backoff_max = 5.0; jitter = 0.25; seed = 7 }

type stats = {
  st_reconnects : int;
  st_rows_retried : int;
  st_duplicates : int;
}

type outcome = { ended : Client.job_end; stats : stats }

(* Cells keyed by their content address.  A multiset: the same spec may
   legitimately appear twice in one submission (the server streams two
   rows), so we track counts, not membership. *)
let canonical spec =
  { spec with
    Protocol.sp_engine = Simbench.Engines.canonical_name spec.Protocol.sp_engine
  }

let key_counts keyed =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (key, _) ->
      Hashtbl.replace counts key
        (1 + try Hashtbl.find counts key with Not_found -> 0))
    keyed;
  counts

(* Rows that still have to arrive, in original submission order. *)
let remaining_cells keyed counts =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (key, spec) ->
      let had = try Hashtbl.find seen key with Not_found -> 0 in
      Hashtbl.replace seen key (had + 1);
      let want = try Hashtbl.find counts key with Not_found -> 0 in
      if had < want then Some spec else None)
    keyed

let backoff_delay cfg rng attempt =
  let base = cfg.backoff *. (2.0 ** float_of_int (attempt - 1)) in
  let base = Float.min base cfg.backoff_max in
  let jitter =
    if cfg.jitter <= 0.0 then 1.0
    else begin
      let frac = float_of_int (Sb_util.Xorshift.int rng 1000) /. 1000.0 in
      1.0 -. cfg.jitter +. (2.0 *. cfg.jitter *. frac)
    end
  in
  Float.max 0.0 (base *. jitter)

let retryable = function
  | Client.Server_gone _ | Client.Connect_failed _ | Client.Protocol_error _ ->
    true
  | Client.Server_error _ -> false

let submit ?(cfg = default_config) ?(on_event = fun _ -> ())
    ?(on_row = fun ~key:_ ~cached:_ ~retried:_ _ -> ()) ~addr ~id ~cells () =
  let rng = Sb_util.Xorshift.create ~seed:cfg.seed in
  let keyed =
    List.map
      (fun spec ->
        let spec = canonical spec in
        (Protocol.spec_key spec, spec))
      cells
  in
  let counts = key_counts keyed in
  let reconnects = ref 0 in
  let rows_retried = ref 0 in
  let duplicates = ref 0 in
  let failed_rows = ref 0 in
  let stats () =
    { st_reconnects = !reconnects;
      st_rows_retried = !rows_retried;
      st_duplicates = !duplicates
    }
  in
  let receive ~resumed ~key ~cached cell =
    let want = try Hashtbl.find counts key with Not_found -> 0 in
    if want <= 0 then incr duplicates
    else begin
      Hashtbl.replace counts key (want - 1);
      if resumed then incr rows_retried;
      (match Option.bind (Json.member "status" cell) Json.string_opt with
      | Some "ok" | None -> ()
      | Some _ -> incr failed_rows);
      on_row ~key ~cached ~retried:resumed cell
    end
  in
  let total = List.length keyed in
  let outstanding () = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
  (* One attempt: connect, (re-)submit what is still missing, stream. *)
  let attempt_once ~resumed =
    match Client.connect addr with
    | Error e -> Error e
    | Ok client ->
      let cells = remaining_cells keyed counts in
      let result =
        Client.submit ~resume:resumed
          ~on_row:(fun ~key ~cached cell -> receive ~resumed ~key ~cached cell)
          client ~id ~cells
      in
      Client.close client;
      result
  in
  let rec go attempt =
    let resumed = attempt > 0 in
    if resumed then incr reconnects;
    let outcome = attempt_once ~resumed in
    let retry err =
      if outstanding () = 0 then
        (* the failure raced the final Job_done frame: every row is
           already in hand and there is nothing left to resubmit (the
           server rejects an empty resume), so conclude locally *)
        Ok
          { ended = Client.Completed { rows = total; failed = !failed_rows };
            stats = stats ()
          }
      else if attempt >= cfg.retries then Error err
      else begin
        let delay = backoff_delay cfg rng (attempt + 1) in
        on_event
          (Printf.sprintf "%s; reconnect %d/%d in %.2fs"
             (Client.error_message err) (attempt + 1) cfg.retries delay);
        if delay > 0.0 then Unix.sleepf delay;
        go (attempt + 1)
      end
    in
    match outcome with
    | Ok (Client.Completed _) when outstanding () = 0 ->
      (* a resumed job's done frame counts only the re-submitted cells;
         report the whole job's totals instead *)
      let ended =
        Client.Completed { rows = total; failed = !failed_rows }
      in
      Ok { ended; stats = stats () }
    | Ok (Client.Completed _) ->
      (* done frame without every row: the stream was tampered with —
         treat it like a lost connection and resume the remainder *)
      retry
        (Client.Protocol_error
           (Printf.sprintf "job done but %d row(s) missing" (outstanding ())))
    | Ok (Client.Was_cancelled _ as ended) -> Ok { ended; stats = stats () }
    | Ok (Client.Server_bye _ as ended) when outstanding () = 0 ->
      Ok { ended; stats = stats () }
    | Ok (Client.Server_bye reason) ->
      (* graceful shutdown mid-job: a restarted daemon can finish the
         rest from its persistent store, so this retries too *)
      retry
        (Client.Server_gone
           { addr; detail = "server shut down mid-job: " ^ reason })
    | Error err when retryable err -> retry err
    | Error err -> Error err
  in
  go 0
