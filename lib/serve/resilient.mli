(** Self-healing submission client: reconnect, jittered exponential
    backoff, idempotent resume.

    Wraps a {!Client} job submission in a retry loop.  When the
    transport dies mid-stream (server killed, connection reset, garbled
    frame) the client reconnects — backing off exponentially with
    seeded jitter, within a bounded retry budget — and re-submits only
    the cells whose rows it has not yet received, flagged
    [resume:true] under the same job id.  Rows are checked off a
    content-address key multiset, so duplicate deliveries are dropped
    and counted, never surfaced twice; rows received after a reconnect
    carry [retried:true].  The server's content-addressed store answers
    the already-computed cells of a resumed job from cache, so no cell
    is ever simulated twice on a client's account. *)

module Json = Sb_util.Json

type config = {
  retries : int;  (** reconnect budget for the whole job *)
  backoff : float;  (** first reconnect delay, seconds *)
  backoff_max : float;  (** delay ceiling *)
  jitter : float;  (** +/- fraction applied to each delay, in [0,1] *)
  seed : int;  (** jitter RNG seed (deterministic backoff sequences) *)
}

val default_config : config
(** 5 retries, 0.25 s doubling to 5 s, 25 % jitter. *)

type stats = {
  st_reconnects : int;  (** reconnect attempts made *)
  st_rows_retried : int;  (** rows received after a reconnect *)
  st_duplicates : int;  (** duplicate rows dropped *)
}

type outcome = { ended : Client.job_end; stats : stats }

val submit :
  ?cfg:config ->
  ?on_event:(string -> unit) ->
  ?on_row:(key:string -> cached:bool -> retried:bool -> Json.t -> unit) ->
  addr:string ->
  id:string ->
  cells:Protocol.cell_spec list ->
  unit ->
  (outcome, Client.error) result
(** Submit one job, surviving transport failures.  [on_event] receives a
    human line per reconnect decision.  [on_row] streams each distinct
    row exactly once; [retried] is true for rows delivered after at
    least one reconnect.  The returned error is the last failure once
    the retry budget is exhausted, or the first non-retryable one
    ({!Client.Server_error} — the server rejected the job itself). *)
