module Json = Sb_util.Json
module Pool = Sb_jobs.Pool
module Cache = Sb_jobs.Cache

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

type config = {
  unix_path : string option;
  tcp_port : int option;
  jobs : int;
  cache_dir : string option;
  deadline : float option;
  window : int;  (* 0 = derive from jobs *)
  max_buffer : int;
  heartbeat : float;  (* expected client liveness interval; <= 0 disables *)
  miss_limit : int;  (* missed intervals before a client is dropped *)
  verbose : bool;
}

let default_config =
  {
    unix_path = None;
    tcp_port = None;
    jobs = 1;
    cache_dir = None;
    deadline = None;
    window = 0;
    max_buffer = 1 lsl 20;
    heartbeat = 10.0;
    miss_limit = 3;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_jobs_accepted : int;
  mutable c_jobs_rejected : int;
  mutable c_cells : int;  (* cells accepted across all jobs *)
  mutable c_rows : int;  (* row frames delivered *)
  mutable c_rows_failed : int;  (* delivered rows with a failure status *)
  mutable c_simulated : int;  (* flights that actually ran a simulation *)
  mutable c_cache_hits : int;  (* cells served from memory or disk cache *)
  mutable c_coalesced : int;  (* cells attached to an in-flight computation *)
  mutable c_cancelled : int;  (* cells dropped by cancel/disconnect *)
  mutable c_clients_total : int;
  mutable c_reconnects : int;  (* submissions flagged resume=true *)
  mutable c_heartbeats_missed : int;  (* silent heartbeat intervals seen *)
  mutable c_clients_dropped : int;  (* clients dropped for missed heartbeats *)
}

type waiter = { w_client : int; w_job : string }

(* One in-flight computation, shared by every client that asked for the
   same content address while it was running. *)
type flight = {
  f_spec : Protocol.cell_spec;
  f_token : Pool.token;
  mutable f_waiters : waiter list;  (* origin first *)
}

type job = {
  j_id : string;
  j_pending : Protocol.cell_spec Queue.t;
  mutable j_inflight : int;
  mutable j_rows : int;
  mutable j_failed : int;
}

type client = {
  cl_id : int;
  cl_session : string;  (* server-assigned, announced in the hello frame *)
  cl_fd : Unix.file_descr;
  cl_in : Buffer.t;  (* partial inbound frame *)
  cl_out : Buffer.t;  (* outbound bytes not yet written *)
  mutable cl_out_off : int;
  mutable cl_inflight : int;
  cl_jobs : (string, job) Hashtbl.t;
  mutable cl_order : string list;  (* job ids, submission order *)
  mutable cl_closing : bool;  (* [Bye] queued: flush, then close *)
  mutable cl_last_heard : float;  (* last inbound byte, for liveness *)
  mutable cl_missed : int;  (* silent heartbeat intervals in a row *)
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  sched : Sb_report.Experiments.row Pool.Sched.t;
  pool_stats : Pool.stats;
  clients : (int, client) Hashtbl.t;
  flights : (string, flight) Hashtbl.t;
  produced : (string, Json.t) Hashtbl.t;  (* key -> cell json (non-failed) *)
  cnt : counters;
  read_buf : Bytes.t;
  mutable next_client : int;
  mutable shutting_down : bool;
  mutable stop_requested : bool;
}

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("[sb-serve] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let effective_window t =
  if t.cfg.window > 0 then t.cfg.window else max 2 (2 * t.cfg.jobs)

(* ------------------------------------------------------------------ *)
(* Listeners                                                            *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* Signals are trapped before the listeners bind, so a supervisor that
   waits for the socket file and then sends SIGTERM can never catch the
   daemon in the default-disposition window. *)
let stop_flag = ref false

let install_signal_handlers () =
  let on_signal _ = stop_flag := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let create cfg =
  if cfg.unix_path = None && cfg.tcp_port = None then
    invalid_arg "Serve.create: need a unix socket path or a TCP port";
  if cfg.jobs < 1 then invalid_arg "Serve.create: jobs must be >= 1";
  if cfg.heartbeat > 0.0 && cfg.miss_limit < 1 then
    invalid_arg "Serve.create: miss_limit must be >= 1";
  install_signal_handlers ();
  let listeners =
    (match cfg.unix_path with Some p -> [ listen_unix p ] | None -> [])
    @ (match cfg.tcp_port with Some p -> [ listen_tcp p ] | None -> [])
  in
  let cache = Option.map (fun dir -> Cache.create ~dir) cfg.cache_dir in
  let pool_stats = Pool.stats () in
  let sched =
    Pool.Sched.create ~jobs:cfg.jobs ?cache ~stats:pool_stats
      ?deadline:cfg.deadline ()
  in
  {
    cfg;
    listeners;
    sched;
    pool_stats;
    clients = Hashtbl.create 16;
    flights = Hashtbl.create 64;
    produced = Hashtbl.create 256;
    cnt =
      {
        c_jobs_accepted = 0;
        c_jobs_rejected = 0;
        c_cells = 0;
        c_rows = 0;
        c_rows_failed = 0;
        c_simulated = 0;
        c_cache_hits = 0;
        c_coalesced = 0;
        c_cancelled = 0;
        c_clients_total = 0;
        c_reconnects = 0;
        c_heartbeats_missed = 0;
        c_clients_dropped = 0;
      };
    read_buf = Bytes.create 65536;
    next_client = 0;
    shutting_down = false;
    stop_requested = false;
  }

(* ------------------------------------------------------------------ *)
(* Outbound frames                                                      *)
(* ------------------------------------------------------------------ *)

let out_pending c = Buffer.length c.cl_out - c.cl_out_off

let send t c resp =
  ignore t;
  Buffer.add_string c.cl_out (Protocol.frame (Protocol.response_to_json resp))

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_client t c =
  if Hashtbl.mem t.clients c.cl_id then begin
    Hashtbl.remove t.clients c.cl_id;
    (* abandon this client's share of every flight; flights nobody else is
       waiting on are cancelled (queued work vanishes, running workers
       finish and still feed the cache) *)
    let orphaned = ref [] in
    Hashtbl.iter
      (fun key fl ->
        let mine, rest =
          List.partition (fun w -> w.w_client = c.cl_id) fl.f_waiters
        in
        if mine <> [] then begin
          fl.f_waiters <- rest;
          t.cnt.c_cancelled <- t.cnt.c_cancelled + List.length mine;
          if rest = [] then orphaned := key :: !orphaned
        end)
      t.flights;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.flights key with
        | Some fl -> Pool.cancel fl.f_token
        | None -> ())
      !orphaned;
    Hashtbl.iter
      (fun _ j -> t.cnt.c_cancelled <- t.cnt.c_cancelled + Queue.length j.j_pending)
      c.cl_jobs;
    close_fd c.cl_fd;
    log t "client %d gone (%d still connected)" c.cl_id (Hashtbl.length t.clients)
  end

let flush_client t c =
  let rec go () =
    let len = out_pending c in
    if len > 0 then begin
      let data = Buffer.contents c.cl_out in
      match Unix.write_substring c.cl_fd data c.cl_out_off len with
      | 0 -> ()
      | n ->
        c.cl_out_off <- c.cl_out_off + n;
        if out_pending c = 0 then begin
          Buffer.clear c.cl_out;
          c.cl_out_off <- 0
        end
        else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        drop_client t c
      | exception Unix.Unix_error _ -> drop_client t c
    end
  in
  go ();
  if c.cl_closing && Hashtbl.mem t.clients c.cl_id && out_pending c = 0 then
    drop_client t c

(* ------------------------------------------------------------------ *)
(* Row delivery                                                         *)
(* ------------------------------------------------------------------ *)

let maybe_finish t c j =
  if Queue.is_empty j.j_pending && j.j_inflight = 0 then begin
    send t c (Protocol.Job_done { id = j.j_id; rows = j.j_rows; failed = j.j_failed });
    Hashtbl.remove c.cl_jobs j.j_id;
    c.cl_order <- List.filter (fun id -> id <> j.j_id) c.cl_order
  end

let deliver t w ~key ~cached ~json ~failed =
  match Hashtbl.find_opt t.clients w.w_client with
  | None -> ()
  | Some c -> (
    match Hashtbl.find_opt c.cl_jobs w.w_job with
    | None -> ()
    | Some j ->
      j.j_inflight <- j.j_inflight - 1;
      c.cl_inflight <- c.cl_inflight - 1;
      if failed then j.j_failed <- j.j_failed + 1 else j.j_rows <- j.j_rows + 1;
      t.cnt.c_rows <- t.cnt.c_rows + 1;
      if failed then t.cnt.c_rows_failed <- t.cnt.c_rows_failed + 1;
      send t c (Protocol.Row { id = j.j_id; key; cached; cell = json });
      maybe_finish t c j)

let on_outcome t key ~live outcome =
  match Hashtbl.find_opt t.flights key with
  | None -> ()
  | Some fl ->
    Hashtbl.remove t.flights key;
    let cached = not !live in
    if cached then t.cnt.c_cache_hits <- t.cnt.c_cache_hits + 1
    else t.cnt.c_simulated <- t.cnt.c_simulated + 1;
    let row, failed =
      match outcome with
      | Pool.Done r -> (r, false)
      | Pool.Retried (r, n) ->
        ( {
            r with
            Sb_report.Experiments.row_status = Printf.sprintf "retried %d" n;
          },
          false )
      | Pool.Failed f -> (Compute.failure_row fl.f_spec f, true)
    in
    let json = Protocol.row_to_json row in
    if not failed then Hashtbl.replace t.produced key json;
    List.iteri
      (fun i w -> deliver t w ~key ~cached:(cached || i > 0) ~json ~failed)
      fl.f_waiters

(* ------------------------------------------------------------------ *)
(* Dispatch and backpressure                                            *)
(* ------------------------------------------------------------------ *)

let dispatch_cell t c j sp =
  let key = Protocol.spec_key sp in
  j.j_inflight <- j.j_inflight + 1;
  c.cl_inflight <- c.cl_inflight + 1;
  let w = { w_client = c.cl_id; w_job = j.j_id } in
  match Hashtbl.find_opt t.produced key with
  | Some json ->
    t.cnt.c_cache_hits <- t.cnt.c_cache_hits + 1;
    deliver t w ~key ~cached:true ~json ~failed:false
  | None -> (
    match Hashtbl.find_opt t.flights key with
    | Some fl ->
      t.cnt.c_coalesced <- t.cnt.c_coalesced + 1;
      fl.f_waiters <- fl.f_waiters @ [ w ]
    | None ->
      let fl = { f_spec = sp; f_token = Pool.token (); f_waiters = [ w ] } in
      Hashtbl.replace t.flights key fl;
      let task =
        Pool.task ~key ~label:(Protocol.spec_label sp) (fun () ->
            Compute.measure sp)
      in
      (* a persistent-cache hit fires the callback inside [submit], before
         [live] flips — that is how cached rows are told apart from runs *)
      let live = ref false in
      Pool.Sched.submit t.sched ~cancel:fl.f_token task
        ~k:(fun o -> on_outcome t key ~live o);
      live := true)

let next_pending c =
  let rec go = function
    | [] -> None
    | id :: rest -> (
      match Hashtbl.find_opt c.cl_jobs id with
      | Some j when not (Queue.is_empty j.j_pending) -> Some j
      | _ -> go rest)
  in
  go c.cl_order

let feed_client t c =
  let window = effective_window t in
  let continue = ref true in
  while !continue do
    continue := false;
    if
      (not t.shutting_down) && (not c.cl_closing)
      && c.cl_inflight < window
      && out_pending c < t.cfg.max_buffer
    then
      match next_pending c with
      | Some j ->
        dispatch_cell t c j (Queue.pop j.j_pending);
        continue := true
      | None -> ()
  done

let feed t =
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  List.iter (fun c -> feed_client t c) cs

(* ------------------------------------------------------------------ *)
(* Status and dump                                                      *)
(* ------------------------------------------------------------------ *)

let status_json t =
  let cnt = t.cnt in
  let ps = t.pool_stats in
  Json.Obj
    [
      ("schema", Json.String Protocol.schema);
      ("jobs", Json.Int t.cfg.jobs);
      ("window", Json.Int (effective_window t));
      ("queue_depth", Json.Int (Pool.Sched.queued t.sched));
      ("active_workers", Json.Int (Pool.Sched.active t.sched));
      ("clients", Json.Int (Hashtbl.length t.clients));
      ("flights", Json.Int (Hashtbl.length t.flights));
      ("rows_known", Json.Int (Hashtbl.length t.produced));
      ( "counters",
        Json.Obj
          [
            ("jobs_accepted", Json.Int cnt.c_jobs_accepted);
            ("jobs_rejected", Json.Int cnt.c_jobs_rejected);
            ("cells_submitted", Json.Int cnt.c_cells);
            ("rows_delivered", Json.Int cnt.c_rows);
            ("rows_failed", Json.Int cnt.c_rows_failed);
            ("simulated", Json.Int cnt.c_simulated);
            ("cache_hits", Json.Int cnt.c_cache_hits);
            ("coalesced", Json.Int cnt.c_coalesced);
            ("deduplicated", Json.Int (cnt.c_cache_hits + cnt.c_coalesced));
            ("cancelled_cells", Json.Int cnt.c_cancelled);
            ("clients_total", Json.Int cnt.c_clients_total);
            ("reconnects", Json.Int cnt.c_reconnects);
            ("heartbeats_missed", Json.Int cnt.c_heartbeats_missed);
            ("clients_dropped", Json.Int cnt.c_clients_dropped);
            ("fsck_evictions", Json.Int (Cache.evictions ()));
          ] );
      ( "pool",
        Json.Obj
          [
            ("executed", Json.Int ps.Pool.executed);
            ("forked", Json.Int ps.Pool.forked);
            ("cache_hits", Json.Int ps.Pool.cache_hits);
            ("failed", Json.Int ps.Pool.failed);
            ("retried", Json.Int ps.Pool.retried);
            ("timed_out", Json.Int ps.Pool.timed_out);
            ("quarantined", Json.Int ps.Pool.quarantined);
            ("cancelled", Json.Int ps.Pool.cancelled);
          ] );
      ( "cache",
        match t.cfg.cache_dir with
        | None -> Json.Null
        | Some dir -> Json.Obj [ ("dir", Json.String dir) ] );
      ( "per_client",
        Json.List
          (List.sort compare
             (Hashtbl.fold
                (fun _ c acc ->
                  Json.Obj
                    [
                      ("id", Json.Int c.cl_id);
                      ("session", Json.String c.cl_session);
                      ("inflight", Json.Int c.cl_inflight);
                      ("jobs", Json.Int (Hashtbl.length c.cl_jobs));
                      ("buffered_bytes", Json.Int (out_pending c));
                      ("heartbeats_missed", Json.Int c.cl_missed);
                    ]
                  :: acc)
                t.clients [])) );
    ]

let dump_cells t =
  Hashtbl.fold (fun _ json acc -> json :: acc) t.produced []
  |> List.map (fun j -> (Json.to_string j, j))
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* Shutdown                                                             *)
(* ------------------------------------------------------------------ *)

let begin_shutdown t ~reason =
  if not t.shutting_down then begin
    t.shutting_down <- true;
    log t "shutting down: %s" reason;
    (* queued flights are abandoned (their waiters get cancelled rows);
       running workers finish and still populate the cache *)
    Hashtbl.iter (fun _ fl -> Pool.cancel fl.f_token) t.flights;
    (* window-held cells never reached the scheduler, but their clients
       still get a cancelled row per cell — every submitted cell is
       answered, so a draining shutdown never strands a job *)
    Hashtbl.iter
      (fun _ c ->
        Hashtbl.iter
          (fun _ j ->
            let pending = Queue.length j.j_pending in
            t.cnt.c_cancelled <- t.cnt.c_cancelled + pending;
            Queue.iter
              (fun sp ->
                let row =
                  Compute.failure_row sp
                    {
                      Pool.fl_label = Protocol.spec_label sp;
                      fl_kind = Pool.Cancelled;
                      fl_attempts = 0;
                      fl_detail = reason;
                    }
                in
                j.j_failed <- j.j_failed + 1;
                t.cnt.c_rows <- t.cnt.c_rows + 1;
                t.cnt.c_rows_failed <- t.cnt.c_rows_failed + 1;
                send t c
                  (Protocol.Row
                     {
                       id = j.j_id;
                       key = Protocol.spec_key sp;
                       cached = false;
                       cell = Protocol.row_to_json row;
                     }))
              j.j_pending;
            Queue.clear j.j_pending)
          c.cl_jobs;
        (* with the queues gone, jobs whose flights were all delivered
           can finish right away *)
        List.iter
          (fun id ->
            match Hashtbl.find_opt c.cl_jobs id with
            | Some j -> maybe_finish t c j
            | None -> ())
          c.cl_order)
      t.clients
  end

let request_stop t = t.stop_requested <- true
let shutting_down t = t.shutting_down
let idle t = Pool.Sched.idle t.sched
let client_count t = Hashtbl.length t.clients

let say_bye t ~reason =
  Hashtbl.iter
    (fun _ c ->
      if not c.cl_closing then begin
        (* flush [Job_done]s first, then the farewell *)
        send t c (Protocol.Bye { reason });
        c.cl_closing <- true
      end)
    t.clients

let close t =
  Hashtbl.iter (fun _ c -> close_fd c.cl_fd) t.clients;
  Hashtbl.reset t.clients;
  List.iter close_fd t.listeners;
  match t.cfg.unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Inbound frames                                                       *)
(* ------------------------------------------------------------------ *)

let handle_submit t c ~id ~cells ~resume =
  if resume then begin
    t.cnt.c_reconnects <- t.cnt.c_reconnects + 1;
    log t "client %d (%s) resumed job %s after a reconnect" c.cl_id
      c.cl_session id
  end;
  if t.shutting_down then
    send t c
      (Protocol.Error_msg { id = Some id; message = "server is shutting down" })
  else if Hashtbl.mem c.cl_jobs id then
    send t c
      (Protocol.Error_msg
         { id = Some id; message = Printf.sprintf "duplicate job id %S" id })
  else begin
    (* canonicalise engine spellings so alias submissions share flights
       and cache entries, then validate the whole job before accepting
       any of it *)
    let cells =
      List.map
        (fun sp ->
          {
            sp with
            Protocol.sp_engine =
              Simbench.Engines.canonical_name sp.Protocol.sp_engine;
          })
        cells
    in
    let bad =
      List.find_map
        (fun sp ->
          match Compute.validate sp with
          | Ok () -> None
          | Error msg ->
            Some (Printf.sprintf "%s: %s" (Protocol.spec_label sp) msg))
        cells
    in
    match bad with
    | Some message ->
      t.cnt.c_jobs_rejected <- t.cnt.c_jobs_rejected + 1;
      send t c (Protocol.Error_msg { id = Some id; message })
    | None ->
      let j =
        {
          j_id = id;
          j_pending = Queue.create ();
          j_inflight = 0;
          j_rows = 0;
          j_failed = 0;
        }
      in
      List.iter (fun sp -> Queue.push sp j.j_pending) cells;
      Hashtbl.replace c.cl_jobs id j;
      c.cl_order <- c.cl_order @ [ id ];
      t.cnt.c_jobs_accepted <- t.cnt.c_jobs_accepted + 1;
      t.cnt.c_cells <- t.cnt.c_cells + List.length cells;
      log t "client %d job %s: %d cells" c.cl_id id (List.length cells);
      send t c (Protocol.Ack { id; cells = List.length cells })
  end

let handle_cancel t c ~id =
  match Hashtbl.find_opt c.cl_jobs id with
  | None ->
    send t c
      (Protocol.Error_msg
         { id = Some id; message = Printf.sprintf "unknown job id %S" id })
  | Some j ->
    let dropped = ref (Queue.length j.j_pending) in
    Queue.clear j.j_pending;
    let orphaned = ref [] in
    Hashtbl.iter
      (fun key fl ->
        let mine, rest =
          List.partition
            (fun w -> w.w_client = c.cl_id && w.w_job = id)
            fl.f_waiters
        in
        if mine <> [] then begin
          fl.f_waiters <- rest;
          dropped := !dropped + List.length mine;
          c.cl_inflight <- c.cl_inflight - List.length mine;
          j.j_inflight <- j.j_inflight - List.length mine;
          if rest = [] then orphaned := key :: !orphaned
        end)
      t.flights;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.flights key with
        | Some fl -> Pool.cancel fl.f_token
        | None -> ())
      !orphaned;
    t.cnt.c_cancelled <- t.cnt.c_cancelled + !dropped;
    Hashtbl.remove c.cl_jobs id;
    c.cl_order <- List.filter (fun jid -> jid <> id) c.cl_order;
    log t "client %d cancelled job %s (%d cells dropped)" c.cl_id id !dropped;
    send t c (Protocol.Cancelled { id; dropped = !dropped })

let handle_line t c line =
  match Protocol.request_of_line line with
  | Error message -> send t c (Protocol.Error_msg { id = None; message })
  | Ok (Protocol.Submit { id; cells; resume }) ->
    handle_submit t c ~id ~cells ~resume
  | Ok (Protocol.Cancel { id }) -> handle_cancel t c ~id
  | Ok (Protocol.Ping { seq }) -> send t c (Protocol.Pong { seq })
  | Ok Protocol.Status -> send t c (Protocol.Status_report (status_json t))
  | Ok Protocol.Dump ->
    send t c (Protocol.Run_dump { source = "serve"; cells = dump_cells t })
  | Ok Protocol.Shutdown -> begin_shutdown t ~reason:"shutdown requested"

let process_input t c =
  let data = Buffer.contents c.cl_in in
  Buffer.clear c.cl_in;
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start <= n - 1 do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
         let line = String.sub data !start (nl - !start) in
         start := nl + 1;
         let line =
           if line <> "" && line.[String.length line - 1] = '\r' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         if line <> "" && not c.cl_closing then handle_line t c line
     done
   with Exit -> ());
  if !start < n then Buffer.add_substring c.cl_in data !start (n - !start)

let read_client t c =
  match Unix.read c.cl_fd t.read_buf 0 (Bytes.length t.read_buf) with
  | 0 -> drop_client t c
  | n ->
    c.cl_last_heard <- Unix.gettimeofday ();
    c.cl_missed <- 0;
    Buffer.add_subbytes c.cl_in t.read_buf 0 n;
    process_input t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_client t c

(* Liveness: any inbound byte counts as a heartbeat.  A client silent for a
   whole interval accrues one miss; [miss_limit] misses in a row and it is
   dropped — its queued cells are cancelled exactly as on a disconnect, so
   a wedged client cannot pin flights (or their backpressure window)
   forever. *)
let check_heartbeats t =
  if t.cfg.heartbeat > 0.0 then begin
    let now = Unix.gettimeofday () in
    let doomed = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if not c.cl_closing then begin
          let silent = now -. c.cl_last_heard in
          if silent > t.cfg.heartbeat *. float_of_int (c.cl_missed + 1) then begin
            c.cl_missed <- c.cl_missed + 1;
            t.cnt.c_heartbeats_missed <- t.cnt.c_heartbeats_missed + 1;
            log t "client %d (%s) missed heartbeat %d/%d" c.cl_id c.cl_session
              c.cl_missed t.cfg.miss_limit;
            if c.cl_missed >= t.cfg.miss_limit then doomed := c :: !doomed
          end
        end)
      t.clients;
    List.iter
      (fun c ->
        t.cnt.c_clients_dropped <- t.cnt.c_clients_dropped + 1;
        log t "client %d (%s) dropped: %d heartbeats missed" c.cl_id
          c.cl_session c.cl_missed;
        drop_client t c)
      !doomed
  end

let accept_clients t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      let id = t.next_client in
      t.next_client <- id + 1;
      t.cnt.c_clients_total <- t.cnt.c_clients_total + 1;
      let session = Printf.sprintf "s%d-%d" (Unix.getpid ()) id in
      let c =
        {
          cl_id = id;
          cl_session = session;
          cl_fd = fd;
          cl_in = Buffer.create 256;
          cl_out = Buffer.create 1024;
          cl_out_off = 0;
          cl_inflight = 0;
          cl_jobs = Hashtbl.create 4;
          cl_order = [];
          cl_closing = false;
          cl_last_heard = Unix.gettimeofday ();
          cl_missed = 0;
        }
      in
      Hashtbl.replace t.clients id c;
      (* the session handshake: every connection opens with the server's
         hello naming the assigned session and the heartbeat contract *)
      send t c
        (Protocol.Hello
           {
             session;
             heartbeat = t.cfg.heartbeat;
             miss_limit = t.cfg.miss_limit;
           });
      log t "client %d connected (session %s)" id session
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* The event loop                                                       *)
(* ------------------------------------------------------------------ *)

let step ?(timeout = 0.2) t =
  let sched_fds = Pool.Sched.fds t.sched in
  let listeners = if t.shutting_down then [] else t.listeners in
  let client_fds = Hashtbl.fold (fun _ c acc -> c.cl_fd :: acc) t.clients [] in
  let reads = listeners @ client_fds @ sched_fds in
  let writes =
    Hashtbl.fold
      (fun _ c acc -> if out_pending c > 0 then c.cl_fd :: acc else acc)
      t.clients []
  in
  let st = Pool.Sched.timeout t.sched in
  let tmo = if st >= 0.0 then min st timeout else timeout in
  let readable, writable, _ =
    try Unix.select reads writes [] tmo
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  List.iter
    (fun fd -> if List.mem fd t.listeners then accept_clients t fd)
    readable;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  List.iter
    (fun c ->
      if List.mem c.cl_fd readable && Hashtbl.mem t.clients c.cl_id then
        read_client t c)
    cs;
  (* worker pipes: pump ignores fds it does not own, and also promotes due
     retries / kills deadline overruns even with nothing readable *)
  Pool.Sched.pump t.sched ~readable;
  check_heartbeats t;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  List.iter
    (fun c ->
      if
        Hashtbl.mem t.clients c.cl_id
        && (List.mem c.cl_fd writable || out_pending c > 0)
      then flush_client t c)
    cs;
  feed t;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.clients [] in
  List.iter
    (fun c ->
      if Hashtbl.mem t.clients c.cl_id && out_pending c > 0 then
        flush_client t c)
    cs

let all_flushed t =
  Hashtbl.fold (fun _ c acc -> acc && out_pending c = 0) t.clients true

let run t =
  (match t.cfg.unix_path with
  | Some p -> log t "listening on unix:%s (%d jobs)" p t.cfg.jobs
  | None -> ());
  (match t.cfg.tcp_port with
  | Some p -> log t "listening on tcp:127.0.0.1:%d (%d jobs)" p t.cfg.jobs
  | None -> ());
  let bye_at = ref None in
  let finished = ref false in
  while not !finished do
    if !stop_flag then t.stop_requested <- true;
    if t.stop_requested && not t.shutting_down then
      begin_shutdown t ~reason:"signal";
    if t.shutting_down && idle t && !bye_at = None then begin
      say_bye t ~reason:"server stopping";
      bye_at := Some (Unix.gettimeofday ())
    end;
    (match !bye_at with
    | Some since ->
      if
        all_flushed t || client_count t = 0
        || Unix.gettimeofday () -. since > 5.0
      then finished := true
      else step ~timeout:0.1 t
    | None -> step t)
  done;
  close t;
  log t "bye"
