(* Turning a cell spec into a measured row.  [validate] runs in the daemon
   at submit time so a bad job is rejected whole with an [Error] frame;
   [measure] runs inside a forked pool worker and rebuilds everything from
   the spec's plain strings — rows it returns are marshallable records. *)

type target =
  | Bench of Simbench.Bench.t
  | Workload of Sb_workloads.Workloads.t

let resolve_target name =
  match Simbench.Suite.find name with
  | Some b -> Ok (Bench b)
  | None -> (
    match Simbench.Suite_ext.find name with
    | Some b -> Ok (Bench b)
    | None -> (
      match Sb_workloads.Workloads.find name with
      | Some w -> Ok (Workload w)
      | None ->
        Error (Printf.sprintf "unknown benchmark or workload %S" name)))

let validate (sp : Protocol.cell_spec) =
  match Simbench.Engines.of_string sp.Protocol.sp_arch sp.Protocol.sp_engine with
  | Error e -> Error e
  | Ok _ -> Result.map (fun _ -> ()) (resolve_target sp.Protocol.sp_bench)

let min_of = List.fold_left min infinity

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let perf_alist (o : Simbench.Harness.outcome) =
  match o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf with
  | None -> []
  | Some p ->
    List.map
      (fun (c, n) -> (Sb_sim.Perf.to_string c, n))
      (Sb_sim.Perf.to_alist p)

let measure (sp : Protocol.cell_spec) : Sb_report.Experiments.row =
  let arch = sp.Protocol.sp_arch in
  let support = Simbench.Engines.support arch in
  let engine =
    match Simbench.Engines.of_string arch sp.Protocol.sp_engine with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  let run1 () =
    match resolve_target sp.Protocol.sp_bench with
    | Error msg -> failwith msg
    | Ok (Bench b) ->
      Simbench.Harness.run ?iters:sp.Protocol.sp_iters ~support ~engine b
    | Ok (Workload w) ->
      Sb_workloads.Workloads.run ?iters:sp.Protocol.sp_iters ~support ~engine w
  in
  let repeats = max 1 sp.Protocol.sp_repeats in
  let first = ref None in
  let times = ref [] in
  for _ = 1 to repeats do
    let o = run1 () in
    if !first = None then first := Some o;
    times := o.Simbench.Harness.kernel_seconds :: !times
  done;
  let o = Option.get !first in
  let times = List.rev !times in
  {
    Sb_report.Experiments.row_cell = sp.Protocol.sp_bench;
    row_engine = sp.Protocol.sp_engine;
    row_arch = Protocol.arch_name arch;
    row_iters = o.Simbench.Harness.iters;
    row_repeats = repeats;
    row_seconds = min_of times;
    row_mean_seconds = mean times;
    row_samples = times;
    row_kernel_insns = o.Simbench.Harness.kernel_insns;
    row_perf = perf_alist o;
    row_status = "ok";
    row_note = "";
  }

let failure_row (sp : Protocol.cell_spec) (f : Sb_jobs.Pool.failure) :
    Sb_report.Experiments.row =
  let status =
    match f.Sb_jobs.Pool.fl_kind with
    | Sb_jobs.Pool.Crashed -> "failed"
    | Sb_jobs.Pool.Timed_out -> "timeout"
    | Sb_jobs.Pool.Quarantined -> "quarantined"
    | Sb_jobs.Pool.Cancelled -> "cancelled"
  in
  {
    Sb_report.Experiments.row_cell = sp.Protocol.sp_bench;
    row_engine = sp.Protocol.sp_engine;
    row_arch = Protocol.arch_name sp.Protocol.sp_arch;
    row_iters = 0;
    row_repeats = 0;
    row_seconds = nan;
    row_mean_seconds = nan;
    row_samples = [];
    row_kernel_insns = 0;
    row_perf = [];
    row_status = status;
    row_note = f.Sb_jobs.Pool.fl_detail;
  }
