(** The benchmark service: a persistent daemon that accepts
    {!Protocol}-framed job submissions over a Unix and/or loopback TCP
    socket, shards their cells across one {!Sb_jobs.Pool.Sched} of forked
    workers, and streams rows back as they land.

    Results are content-addressed by {!Protocol.spec_key}: a cell already
    produced in this process (or present in the persistent
    {!Sb_jobs.Cache} under [cache_dir]) is answered without running a
    simulation, and a cell currently being computed for one client is
    {e coalesced} — every other client asking for it is attached as a
    waiter and receives the same row when it lands.  A million identical
    requests cost one simulation.

    Backpressure is per client: at most [window] cells of a client are in
    flight at once, and no further cells are dispatched while more than
    [max_buffer] bytes of results are waiting in its socket buffer — a
    slow reader throttles only itself.

    Shutdown (SIGTERM, SIGINT, or a [shutdown] frame) is graceful: queued
    cells are abandoned through their {!Sb_jobs.Pool.token}s (clients get
    ["cancelled"] rows and their [done] frames), running workers complete
    and still populate the cache, then every client gets a [bye] frame and
    the sockets close.  Healthy workers are never SIGKILLed.

    The daemon is single-threaded: one [Unix.select] loop multiplexes
    listener sockets, client sockets and worker pipes.  Tests drive the
    same loop one {!step} at a time, in-process. *)

type config = {
  unix_path : string option;  (** Unix-domain listener socket path *)
  tcp_port : int option;  (** loopback TCP listener port *)
  jobs : int;  (** pool workers *)
  cache_dir : string option;  (** persistent shared result cache *)
  deadline : float option;  (** per-cell wall-clock budget, seconds *)
  window : int;  (** max in-flight cells per client; 0 = [2 * jobs] *)
  max_buffer : int;  (** per-client outbound watermark, bytes *)
  heartbeat : float;
      (** client-liveness interval announced in the hello frame: any
          inbound byte counts as a heartbeat, a client silent for one
          whole interval accrues a miss; [<= 0] disables dropping *)
  miss_limit : int;
      (** consecutive missed intervals before a silent client is dropped
          (its queued cells cancelled exactly as on a disconnect) *)
  verbose : bool;  (** log connections/jobs to stderr *)
}

val default_config : config
(** No listeners (callers must set one), [jobs = 1], no cache, no
    deadline, derived window, 1 MiB watermark, 10 s heartbeat with 3
    misses allowed, quiet. *)

type t

val create : config -> t
(** Binds the listeners (replacing a stale Unix socket file) and creates
    the cache directory if configured.  Raises [Invalid_argument] when
    neither listener is configured or [jobs < 1]. *)

val run : t -> unit
(** The daemon main loop: installs SIGTERM/SIGINT handlers (both request
    a graceful shutdown; SIGPIPE is ignored), serves until drained after
    a stop request, then closes and unlinks the sockets.  Returns
    normally — the CLI exits 0. *)

(** {2 Stepwise driving (tests)} *)

val step : ?timeout:float -> t -> unit
(** One event-loop iteration: select (at most [timeout] seconds, default
    0.2), accept, read client frames, pump the scheduler, flush, refill
    per-client in-flight windows. *)

val begin_shutdown : t -> reason:string -> unit
(** What a [shutdown] frame or signal triggers: stop accepting, abandon
    queued cells, let running workers drain. *)

val request_stop : t -> unit
(** What the signal handlers call. *)

val shutting_down : t -> bool

val idle : t -> bool
(** The worker scheduler has nothing queued and nothing running. *)

val client_count : t -> int

val status_json : t -> Sb_util.Json.t
(** The [status] response payload: queue depth, live clients/flights, and
    the counters — including ["deduplicated"] (cache hits + coalesced
    cells), which the CI soak gate asserts is positive. *)

val close : t -> unit
(** Close every socket and unlink the Unix listener path.  [run] calls
    this itself; stepwise users must. *)
