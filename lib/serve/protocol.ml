module Json = Sb_util.Json

let schema = "simbench-serve-json-2"

(* The previous wire schema, rejected with a migration hint rather than the
   generic unsupported-schema error: -2 added hello/session frames,
   ping/pong heartbeats, row content-address keys and submit resume. *)
let schema_v1 = "simbench-serve-json-1"

(* ------------------------------------------------------------------ *)
(* Cell specs                                                           *)
(* ------------------------------------------------------------------ *)

type cell_spec = {
  sp_bench : string;
  sp_engine : string;
  sp_arch : Sb_isa.Arch_sig.arch_id;
  sp_iters : int option;
  sp_repeats : int;
}

let arch_name = function
  | Sb_isa.Arch_sig.Sba -> "sba"
  | Sb_isa.Arch_sig.Vlx -> "vlx"

let arch_of_name = function
  | "sba" | "sba32" | "arm" -> Ok Sb_isa.Arch_sig.Sba
  | "vlx" | "vlx32" | "x86" -> Ok Sb_isa.Arch_sig.Vlx
  | s -> Error (Printf.sprintf "unknown architecture %S (sba|vlx)" s)

let spec_label sp =
  Printf.sprintf "%s/%s/%s" sp.sp_engine (arch_name sp.sp_arch) sp.sp_bench

(* The content address of one cell: everything that determines its row.
   The engine string must be canonical (Simbench.Engines.canonical_name)
   before keying, so dbt release aliases share one entry. *)
let spec_key sp =
  Sb_jobs.Cache.fingerprint
    ( "simbench-serve-cell",
      schema,
      sp.sp_bench,
      sp.sp_engine,
      arch_name sp.sp_arch,
      sp.sp_iters,
      sp.sp_repeats )

let spec_to_json sp =
  Json.Obj
    ([
       ("bench", Json.String sp.sp_bench);
       ("engine", Json.String sp.sp_engine);
       ("arch", Json.String (arch_name sp.sp_arch));
     ]
    @ (match sp.sp_iters with
      | None -> []
      | Some n -> [ ("iters", Json.Int n) ])
    @ [ ("repeats", Json.Int sp.sp_repeats) ])

let ( let* ) = Result.bind

let str_field obj name =
  match Option.bind (Json.member name obj) Json.string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "cell spec: missing string field %S" name)

let spec_of_json j =
  let* bench = str_field j "bench" in
  let* engine = str_field j "engine" in
  let* arch_s = str_field j "arch" in
  let* arch = arch_of_name arch_s in
  let* iters =
    match Json.member "iters" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.int_opt v with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error "cell spec: \"iters\" must be a positive integer")
  in
  let* repeats =
    match Json.member "repeats" j with
    | None | Some Json.Null -> Ok 1
    | Some v -> (
      match Json.int_opt v with
      | Some n when n >= 1 -> Ok n
      | _ -> Error "cell spec: \"repeats\" must be a positive integer")
  in
  Ok
    {
      sp_bench = bench;
      sp_engine = engine;
      sp_arch = arch;
      sp_iters = iters;
      sp_repeats = repeats;
    }

let specs_of_json j =
  match Option.bind (Json.member "cells" j) Json.list_opt with
  | None -> Error "missing \"cells\" array"
  | Some cells ->
    if cells = [] then Error "\"cells\" is empty"
    else
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* sp = spec_of_json c in
          Ok (sp :: acc))
        (Ok []) cells
      |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Rows: the same cell shape bench/main.exe --json writes, so serve     *)
(* output feeds straight into Sb_regress.Baseline readers.              *)
(* ------------------------------------------------------------------ *)

let row_to_json (r : Sb_report.Experiments.row) =
  Json.Obj
    [
      ("cell", Json.String r.Sb_report.Experiments.row_cell);
      ("engine", Json.String r.Sb_report.Experiments.row_engine);
      ("arch", Json.String r.Sb_report.Experiments.row_arch);
      ("iters", Json.Int r.Sb_report.Experiments.row_iters);
      ("repeats", Json.Int r.Sb_report.Experiments.row_repeats);
      ("seconds", Json.Float r.Sb_report.Experiments.row_seconds);
      ("mean_seconds", Json.Float r.Sb_report.Experiments.row_mean_seconds);
      ( "samples",
        Json.List
          (List.map
             (fun s -> Json.Float s)
             r.Sb_report.Experiments.row_samples) );
      ("kernel_insns", Json.Int r.Sb_report.Experiments.row_kernel_insns);
      ( "kernel_perf",
        Json.Obj
          (List.map
             (fun (name, n) -> (name, Json.Int n))
             r.Sb_report.Experiments.row_perf) );
      ("status", Json.String r.Sb_report.Experiments.row_status);
      ("status_note", Json.String r.Sb_report.Experiments.row_note);
    ]

let int_field obj name =
  match Option.bind (Json.member name obj) Json.int_opt with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "row: missing integer field %S" name)

let float_field obj name =
  match Option.bind (Json.member name obj) Json.float_opt with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "row: missing number field %S" name)

let row_of_json j =
  let* cell = str_field j "cell" in
  let* engine = str_field j "engine" in
  let* arch = str_field j "arch" in
  let* iters = int_field j "iters" in
  let* repeats = int_field j "repeats" in
  let* seconds = float_field j "seconds" in
  let* mean_seconds = float_field j "mean_seconds" in
  let* samples =
    match Option.bind (Json.member "samples" j) Json.list_opt with
    | None -> Error "row: missing \"samples\" array"
    | Some l ->
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match Json.float_opt s with
          | Some f -> Ok (f :: acc)
          | None -> Error "row: non-numeric entry in \"samples\"")
        (Ok []) l
      |> Result.map List.rev
  in
  let* kernel_insns = int_field j "kernel_insns" in
  let perf =
    match Json.member "kernel_perf" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (name, v) -> Option.map (fun n -> (name, n)) (Json.int_opt v))
        fields
    | _ -> []
  in
  let* status = str_field j "status" in
  let note =
    match Option.bind (Json.member "status_note" j) Json.string_opt with
    | Some s -> s
    | None -> ""
  in
  Ok
    {
      Sb_report.Experiments.row_cell = cell;
      row_engine = engine;
      row_arch = arch;
      row_iters = iters;
      row_repeats = repeats;
      row_seconds = seconds;
      row_mean_seconds = mean_seconds;
      row_samples = samples;
      row_kernel_insns = kernel_insns;
      row_perf = perf;
      row_status = status;
      row_note = note;
    }

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

type request =
  | Submit of { id : string; cells : cell_spec list; resume : bool }
  | Cancel of { id : string }
  | Ping of { seq : int }
  | Status
  | Dump
  | Shutdown

let tagged fields = Json.Obj (("schema", Json.String schema) :: fields)

let request_to_json = function
  | Submit { id; cells; resume } ->
    tagged
      ([
         ("op", Json.String "submit");
         ("id", Json.String id);
         ("cells", Json.List (List.map spec_to_json cells));
       ]
      @ if resume then [ ("resume", Json.Bool true) ] else [])
  | Cancel { id } ->
    tagged [ ("op", Json.String "cancel"); ("id", Json.String id) ]
  | Ping { seq } -> tagged [ ("op", Json.String "ping"); ("seq", Json.Int seq) ]
  | Status -> tagged [ ("op", Json.String "status") ]
  | Dump -> tagged [ ("op", Json.String "dump") ]
  | Shutdown -> tagged [ ("op", Json.String "shutdown") ]

let check_schema j =
  match Option.bind (Json.member "schema" j) Json.string_opt with
  | Some s when s = schema -> Ok ()
  | Some s when s = schema_v1 ->
    Error
      (Printf.sprintf
         "unsupported schema %S: protocol 2 adds session hello frames, \
          ping/pong heartbeats, row content-address keys and resumable \
          submissions — upgrade the client (this server speaks %S)"
         s schema)
  | Some s ->
    Error
      (Printf.sprintf "unsupported schema %S (this server speaks %S)" s schema)
  | None ->
    Error (Printf.sprintf "missing \"schema\" field (expected %S)" schema)

let op_of j =
  match Option.bind (Json.member "op" j) Json.string_opt with
  | Some op -> Ok op
  | None -> Error "missing \"op\" field"

let id_of j =
  match Option.bind (Json.member "id" j) Json.string_opt with
  | Some id when id <> "" -> Ok id
  | Some _ -> Error "\"id\" must be non-empty"
  | None -> Error "missing \"id\" field"

let request_of_json j =
  let* () = check_schema j in
  let* op = op_of j in
  match op with
  | "submit" ->
    let* id = id_of j in
    let* cells = specs_of_json j in
    let resume =
      match Json.member "resume" j with Some (Json.Bool b) -> b | _ -> false
    in
    Ok (Submit { id; cells; resume })
  | "cancel" ->
    let* id = id_of j in
    Ok (Cancel { id })
  | "ping" ->
    let* seq = int_field j "seq" in
    Ok (Ping { seq })
  | "status" -> Ok Status
  | "dump" -> Ok Dump
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("malformed frame: " ^ msg)
  | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

type response =
  | Hello of { session : string; heartbeat : float; miss_limit : int }
  | Ack of { id : string; cells : int }
  | Row of { id : string; key : string; cached : bool; cell : Json.t }
  | Job_done of { id : string; rows : int; failed : int }
  | Cancelled of { id : string; dropped : int }
  | Pong of { seq : int }
  | Status_report of Json.t
  | Run_dump of { source : string; cells : Json.t list }
  | Error_msg of { id : string option; message : string }
  | Bye of { reason : string }

let response_to_json = function
  | Hello { session; heartbeat; miss_limit } ->
    tagged
      [
        ("op", Json.String "hello");
        ("session", Json.String session);
        ("heartbeat", Json.Float heartbeat);
        ("miss_limit", Json.Int miss_limit);
      ]
  | Ack { id; cells } ->
    tagged
      [
        ("op", Json.String "ack");
        ("id", Json.String id);
        ("cells", Json.Int cells);
      ]
  | Row { id; key; cached; cell } ->
    tagged
      [
        ("op", Json.String "row");
        ("id", Json.String id);
        ("key", Json.String key);
        ("cached", Json.Bool cached);
        ("cell", cell);
      ]
  | Pong { seq } -> tagged [ ("op", Json.String "pong"); ("seq", Json.Int seq) ]
  | Job_done { id; rows; failed } ->
    tagged
      [
        ("op", Json.String "done");
        ("id", Json.String id);
        ("rows", Json.Int rows);
        ("failed", Json.Int failed);
      ]
  | Cancelled { id; dropped } ->
    tagged
      [
        ("op", Json.String "cancelled");
        ("id", Json.String id);
        ("dropped", Json.Int dropped);
      ]
  | Status_report payload -> tagged [ ("op", Json.String "status"); ("report", payload) ]
  | Run_dump { source; cells } ->
    tagged
      [
        ("op", Json.String "run");
        ("source", Json.String source);
        ("cells", Json.List cells);
      ]
  | Error_msg { id; message } ->
    tagged
      ([ ("op", Json.String "error") ]
      @ (match id with None -> [] | Some id -> [ ("id", Json.String id) ])
      @ [ ("message", Json.String message) ])
  | Bye { reason } ->
    tagged [ ("op", Json.String "bye"); ("reason", Json.String reason) ]

let response_of_json j =
  let* () = check_schema j in
  let* op = op_of j in
  match op with
  | "hello" ->
    let* session = str_field j "session" in
    let* heartbeat = float_field j "heartbeat" in
    let* miss_limit = int_field j "miss_limit" in
    Ok (Hello { session; heartbeat; miss_limit })
  | "ack" ->
    let* id = id_of j in
    let* cells = int_field j "cells" in
    Ok (Ack { id; cells })
  | "pong" ->
    let* seq = int_field j "seq" in
    Ok (Pong { seq })
  | "row" ->
    let* id = id_of j in
    let* key = str_field j "key" in
    let cached =
      match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false
    in
    let* cell =
      match Json.member "cell" j with
      | Some c -> Ok c
      | None -> Error "row response: missing \"cell\""
    in
    Ok (Row { id; key; cached; cell })
  | "done" ->
    let* id = id_of j in
    let* rows = int_field j "rows" in
    let* failed = int_field j "failed" in
    Ok (Job_done { id; rows; failed })
  | "cancelled" ->
    let* id = id_of j in
    let* dropped = int_field j "dropped" in
    Ok (Cancelled { id; dropped })
  | "status" -> (
    match Json.member "report" j with
    | Some payload -> Ok (Status_report payload)
    | None -> Error "status response: missing \"report\"")
  | "run" ->
    let* source = str_field j "source" in
    let* cells =
      match Option.bind (Json.member "cells" j) Json.list_opt with
      | Some l -> Ok l
      | None -> Error "run response: missing \"cells\" array"
    in
    Ok (Run_dump { source; cells })
  | "error" ->
    let id = Option.bind (Json.member "id" j) Json.string_opt in
    let* message = str_field j "message" in
    Ok (Error_msg { id; message })
  | "bye" ->
    let* reason = str_field j "reason" in
    Ok (Bye { reason })
  | op -> Error (Printf.sprintf "unknown op %S" op)

let response_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("malformed frame: " ^ msg)
  | Ok j -> response_of_json j

let frame j = Json.to_string j ^ "\n"
