(** Measuring one cell spec.

    [validate] runs in the daemon before a job is accepted — an unknown
    engine or bench rejects the whole submission with one error frame
    instead of producing a half-failed job.  [measure] is the pool-worker
    thunk: it rebuilds the engine and the bench from the spec's strings
    and returns a marshallable {!Sb_report.Experiments.row}. *)

val validate : Protocol.cell_spec -> (unit, string) result

val measure : Protocol.cell_spec -> Sb_report.Experiments.row
(** Runs the simulation ([repeats] times, min reported).  Raises on an
    invalid spec or a guest failure — inside a worker that becomes a
    [Failed] outcome. *)

val failure_row :
  Protocol.cell_spec -> Sb_jobs.Pool.failure -> Sb_report.Experiments.row
(** The placeholder row for a cell the pool could not produce, with
    status ["failed"], ["timeout"], ["quarantined"] or ["cancelled"]. *)
