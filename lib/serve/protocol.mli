(** Wire protocol of the benchmark service: newline-delimited JSON frames,
    schema [simbench-serve-json-1].

    Every frame — request or response — is one JSON object on one line,
    carrying a ["schema"] field; frames with a different schema value are
    rejected before any other field is inspected, so old clients get one
    clear error instead of a field-by-field parse failure.  Malformed JSON
    is reported with {!Sb_util.Json}'s line/column positions.

    Row cells reuse the exact JSON shape of [bench/main.exe --json] cells,
    so rows streamed from a server feed straight into
    [Sb_regress.Baseline.cell_of_json] and the [compare]/[baseline]
    verbs. *)

module Json = Sb_util.Json

val schema : string
(** ["simbench-serve-json-1"]. *)

(** {2 Cell specs} *)

type cell_spec = {
  sp_bench : string;  (** suite bench, extension bench or workload name *)
  sp_engine : string;  (** engine spelling per {!Simbench.Engines.of_string} *)
  sp_arch : Sb_isa.Arch_sig.arch_id;
  sp_iters : int option;  (** [None] = the bench/workload default *)
  sp_repeats : int;  (** >= 1 *)
}

val arch_name : Sb_isa.Arch_sig.arch_id -> string
(** ["sba"] / ["vlx"] — the row-JSON arch names. *)

val arch_of_name : string -> (Sb_isa.Arch_sig.arch_id, string) result
(** Accepts [sba]/[sba32]/[arm] and [vlx]/[vlx32]/[x86]. *)

val spec_label : cell_spec -> string
(** ["engine/arch/bench"], for logs and failure rows. *)

val spec_key : cell_spec -> string
(** Content address of the cell's result: a {!Sb_jobs.Cache.fingerprint}
    over the schema version and every spec field.  The engine string must
    already be canonical ({!Simbench.Engines.canonical_name}) so alias
    spellings of the same engine share one cache entry. *)

val spec_to_json : cell_spec -> Json.t
val spec_of_json : Json.t -> (cell_spec, string) result

val specs_of_json : Json.t -> (cell_spec list, string) result
(** The non-empty ["cells"] array of a submission frame or a spec file. *)

(** {2 Rows} *)

val row_to_json : Sb_report.Experiments.row -> Json.t
val row_of_json : Json.t -> (Sb_report.Experiments.row, string) result

(** {2 Requests (client to server)} *)

type request =
  | Submit of { id : string; cells : cell_spec list }
  | Cancel of { id : string }
  | Status
  | Dump  (** every row the server has produced or loaded, as a run *)
  | Shutdown

val request_to_json : request -> Json.t

val request_of_line : string -> (request, string) result
(** Parse one frame (without its trailing newline).  Errors cover
    malformed JSON (with line/column), schema mismatch, and missing or
    ill-typed fields. *)

(** {2 Responses (server to client)} *)

type response =
  | Ack of { id : string; cells : int }  (** job accepted, cells validated *)
  | Row of { id : string; cached : bool; cell : Json.t }
      (** one result row; [cached] when it was served without running a
          simulation (persistent cache hit or coalesced with an in-flight
          computation) *)
  | Job_done of { id : string; rows : int; failed : int }
  | Cancelled of { id : string; dropped : int }
      (** [dropped] cells were abandoned before running *)
  | Status_report of Json.t
  | Run_dump of { source : string; cells : Json.t list }
  | Error_msg of { id : string option; message : string }
      (** [id] present when the error rejects a specific job *)
  | Bye of { reason : string }  (** server is shutting down *)

val response_to_json : response -> Json.t
val response_of_line : string -> (response, string) result

val frame : Json.t -> string
(** One wire frame: the compact JSON encoding plus the ['\n'] terminator. *)
