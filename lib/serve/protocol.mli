(** Wire protocol of the benchmark service: newline-delimited JSON frames,
    schema [simbench-serve-json-2].

    Every frame — request or response — is one JSON object on one line,
    carrying a ["schema"] field; frames with a different schema value are
    rejected before any other field is inspected, so old clients get one
    clear error instead of a field-by-field parse failure (the retired
    [-1] schema gets a dedicated migration message naming what changed).
    Malformed JSON is reported with {!Sb_util.Json}'s line/column
    positions.

    Protocol 2 adds the resilience layer: the server opens every
    connection with a [hello] frame carrying a server-assigned session id
    and its heartbeat contract; clients send [ping] frames answered by
    [pong] so both sides detect a dead peer in bounded time; every [row]
    frame carries the cell's content-address [key] so a reconnecting
    client can resume exactly the cells it has not yet received; and
    [submit] frames may be flagged [resume] so reconnections are counted
    by the server.

    Row cells reuse the exact JSON shape of [bench/main.exe --json] cells,
    so rows streamed from a server feed straight into
    [Sb_regress.Baseline.cell_of_json] and the [compare]/[baseline]
    verbs. *)

module Json = Sb_util.Json

val schema : string
(** ["simbench-serve-json-2"]. *)

val schema_v1 : string
(** The retired ["simbench-serve-json-1"], rejected with a migration
    message. *)

(** {2 Cell specs} *)

type cell_spec = {
  sp_bench : string;  (** suite bench, extension bench or workload name *)
  sp_engine : string;  (** engine spelling per {!Simbench.Engines.of_string} *)
  sp_arch : Sb_isa.Arch_sig.arch_id;
  sp_iters : int option;  (** [None] = the bench/workload default *)
  sp_repeats : int;  (** >= 1 *)
}

val arch_name : Sb_isa.Arch_sig.arch_id -> string
(** ["sba"] / ["vlx"] — the row-JSON arch names. *)

val arch_of_name : string -> (Sb_isa.Arch_sig.arch_id, string) result
(** Accepts [sba]/[sba32]/[arm] and [vlx]/[vlx32]/[x86]. *)

val spec_label : cell_spec -> string
(** ["engine/arch/bench"], for logs and failure rows. *)

val spec_key : cell_spec -> string
(** Content address of the cell's result: a {!Sb_jobs.Cache.fingerprint}
    over the schema version and every spec field.  The engine string must
    already be canonical ({!Simbench.Engines.canonical_name}) so alias
    spellings of the same engine share one cache entry. *)

val spec_to_json : cell_spec -> Json.t
val spec_of_json : Json.t -> (cell_spec, string) result

val specs_of_json : Json.t -> (cell_spec list, string) result
(** The non-empty ["cells"] array of a submission frame or a spec file. *)

(** {2 Rows} *)

val row_to_json : Sb_report.Experiments.row -> Json.t
val row_of_json : Json.t -> (Sb_report.Experiments.row, string) result

(** {2 Requests (client to server)} *)

type request =
  | Submit of { id : string; cells : cell_spec list; resume : bool }
      (** [resume] marks a re-submission after a reconnect (counted by the
          server; the content-addressed store guarantees no re-runs) *)
  | Cancel of { id : string }
  | Ping of { seq : int }  (** heartbeat; the server echoes [Pong seq] *)
  | Status
  | Dump  (** every row the server has produced or loaded, as a run *)
  | Shutdown

val request_to_json : request -> Json.t

val request_of_line : string -> (request, string) result
(** Parse one frame (without its trailing newline).  Errors cover
    malformed JSON (with line/column), schema mismatch, and missing or
    ill-typed fields. *)

(** {2 Responses (server to client)} *)

type response =
  | Hello of { session : string; heartbeat : float; miss_limit : int }
      (** first frame of every connection: the server-assigned session id
          and the heartbeat contract — the server drops a client silent
          for more than [heartbeat *. miss_limit] seconds, and a client
          should declare the server gone on the same budget *)
  | Ack of { id : string; cells : int }  (** job accepted, cells validated *)
  | Row of { id : string; key : string; cached : bool; cell : Json.t }
      (** one result row; [key] is the cell's {!spec_key} content address
          (what a resuming client checks off), [cached] when it was served
          without running a simulation (persistent cache hit or coalesced
          with an in-flight computation) *)
  | Job_done of { id : string; rows : int; failed : int }
  | Cancelled of { id : string; dropped : int }
      (** [dropped] cells were abandoned before running *)
  | Pong of { seq : int }  (** heartbeat echo *)
  | Status_report of Json.t
  | Run_dump of { source : string; cells : Json.t list }
  | Error_msg of { id : string option; message : string }
      (** [id] present when the error rejects a specific job *)
  | Bye of { reason : string }  (** server is shutting down *)

val response_to_json : response -> Json.t
val response_of_line : string -> (response, string) result

val frame : Json.t -> string
(** One wire frame: the compact JSON encoding plus the ['\n'] terminator. *)
