module Json = Sb_util.Json

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let prefix p = String.length s > String.length p
                 && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefix "tcp:" then
    match String.rindex_opt (after "tcp:") ':' with
    | None -> (
      (* bare port *)
      match int_of_string_opt (after "tcp:") with
      | Some port -> Ok (Tcp ("127.0.0.1", port))
      | None -> Error (Printf.sprintf "bad tcp address %S (HOST:PORT)" s))
    | Some i -> (
      let hp = after "tcp:" in
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      match int_of_string_opt port with
      | Some port -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
      | None -> Error (Printf.sprintf "bad tcp port in %S" s))
  else if s <> "" then Ok (Unix_sock s)
  else Error "empty server address"

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type t = {
  fd : Unix.file_descr;
  addr : addr;
  mutable pending : Buffer.t;  (* bytes read past the last frame *)
}

let connect_addr addr =
  try
    let fd =
      match addr with
      | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> raise Not_found
            | h -> h.Unix.h_addr_list.(0))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
    in
    Ok { fd; addr; pending = Buffer.create 256 }
  with
  | Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot connect to %s: %s" (addr_to_string addr)
         (Unix.error_message e))
  | Not_found ->
    Error (Printf.sprintf "cannot resolve host in %s" (addr_to_string addr))

let connect s = Result.bind (addr_of_string s) connect_addr

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let data = Protocol.frame (Protocol.request_to_json req) in
  let n = String.length data in
  let rec go off =
    if off < n then
      match Unix.write_substring t.fd data off (n - off) with
      | 0 -> Error "server closed the connection"
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "write failed: %s" (Unix.error_message e))
    else Ok ()
  in
  go 0

let read_frame t =
  let buf = Bytes.create 65536 in
  let rec take_line () =
    let data = Buffer.contents t.pending in
    match String.index_opt data '\n' with
    | Some nl ->
      let line = String.sub data 0 nl in
      Buffer.clear t.pending;
      Buffer.add_substring t.pending data (nl + 1)
        (String.length data - nl - 1);
      Ok line
    | None -> (
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 -> Error "server closed the connection"
      | n ->
        Buffer.add_subbytes t.pending buf 0 n;
        take_line ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take_line ())
  in
  match take_line () with
  | Error _ as e -> e
  | Ok line -> Protocol.response_of_line line

(* ------------------------------------------------------------------ *)
(* High-level verbs                                                     *)
(* ------------------------------------------------------------------ *)

type job_end =
  | Completed of { rows : int; failed : int }
  | Was_cancelled of { dropped : int }
  | Server_bye of string

(* Stream one job: send the submission, call [on_row] per row, return how
   the job ended.  [cancel_after], when set, sends a cancel frame as soon
   as that many rows have arrived — the [--cancel N] test hook. *)
let submit ?cancel_after ?(on_row = fun ~cached:_ _ -> ()) t ~id ~cells =
  match send t (Protocol.Submit { id; cells }) with
  | Error _ as e -> e
  | Ok () ->
    let seen = ref 0 in
    let cancel_sent = ref false in
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Ack _) -> loop ()
      | Ok (Protocol.Row { id = rid; cached; cell }) ->
        if rid = id then begin
          incr seen;
          on_row ~cached cell;
          (match cancel_after with
          | Some n when !seen >= n && not !cancel_sent -> (
            cancel_sent := true;
            match send t (Protocol.Cancel { id }) with
            | Ok () -> ()
            | Error _ -> ())
          | _ -> ())
        end;
        loop ()
      | Ok (Protocol.Job_done { id = rid; rows; failed }) ->
        if rid = id then Ok (Completed { rows; failed }) else loop ()
      | Ok (Protocol.Cancelled { id = rid; dropped }) ->
        if rid = id then Ok (Was_cancelled { dropped }) else loop ()
      | Ok (Protocol.Error_msg { message; _ }) -> Error message
      | Ok (Protocol.Bye { reason }) -> Ok (Server_bye reason)
      | Ok (Protocol.Status_report _) | Ok (Protocol.Run_dump _) -> loop ()
    in
    loop ()

let cancel t ~id =
  match send t (Protocol.Cancel { id }) with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Cancelled { id = rid; dropped }) when rid = id ->
        Ok dropped
      | Ok (Protocol.Error_msg { message; _ }) -> Error message
      | Ok (Protocol.Bye { reason }) ->
        Error ("server shut down: " ^ reason)
      | Ok _ -> loop ()
    in
    loop ()

let status t =
  match send t Protocol.Status with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Status_report payload) -> Ok payload
      | Ok (Protocol.Error_msg { message; _ }) -> Error message
      | Ok (Protocol.Bye { reason }) ->
        Error ("server shut down: " ^ reason)
      | Ok _ -> loop ()
    in
    loop ()

let dump t =
  match send t Protocol.Dump with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Run_dump { source; cells }) -> Ok (source, cells)
      | Ok (Protocol.Error_msg { message; _ }) -> Error message
      | Ok (Protocol.Bye { reason }) ->
        Error ("server shut down: " ^ reason)
      | Ok _ -> loop ()
    in
    loop ()

let shutdown t = send t Protocol.Shutdown
