module Json = Sb_util.Json

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let prefix p = String.length s > String.length p
                 && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefix "tcp:" then
    match String.rindex_opt (after "tcp:") ':' with
    | None -> (
      (* bare port *)
      match int_of_string_opt (after "tcp:") with
      | Some port -> Ok (Tcp ("127.0.0.1", port))
      | None -> Error (Printf.sprintf "bad tcp address %S (HOST:PORT)" s))
    | Some i -> (
      let hp = after "tcp:" in
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      match int_of_string_opt port with
      | Some port -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
      | None -> Error (Printf.sprintf "bad tcp port in %S" s))
  else if s <> "" then Ok (Unix_sock s)
  else Error "empty server address"

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Typed errors                                                         *)
(* ------------------------------------------------------------------ *)

type error =
  | Connect_failed of { addr : string; detail : string }
  | Server_gone of { addr : string; detail : string }
  | Protocol_error of string
  | Server_error of string

let error_message = function
  | Connect_failed { addr; detail } ->
    Printf.sprintf "cannot connect to %s: %s" addr detail
  | Server_gone { addr; detail } ->
    Printf.sprintf "lost the server at %s: %s" addr detail
  | Protocol_error msg -> msg
  | Server_error msg -> msg

type t = {
  fd : Unix.file_descr;
  addr : addr;
  mutable pending : Buffer.t;  (* bytes read past the last frame *)
  mutable session : string option;  (* server-assigned, from the hello *)
  mutable heartbeat : float;  (* hello contract; <= 0 = no heartbeats *)
  mutable miss_limit : int;
  mutable last_heard : float;  (* last byte seen from the server *)
  mutable last_ping : float;  (* last ping we sent *)
  mutable ping_seq : int;
}

let session t = t.session
let heartbeat t = t.heartbeat
let addr t = addr_to_string t.addr

(* EPIPE/ECONNRESET/ECONNREFUSED and friends surface as typed
   [Server_gone]/[Connect_failed] values naming the address — the CLI maps
   them to distinct exit codes and the resilient client to reconnects —
   never as an uncaught exception backtrace. *)
let gone t e detail_prefix =
  Server_gone
    {
      addr = addr_to_string t.addr;
      detail = Printf.sprintf "%s: %s" detail_prefix (Unix.error_message e);
    }

let gone_eof t detail =
  Server_gone { addr = addr_to_string t.addr; detail }

(* ------------------------------------------------------------------ *)
(* Raw framing                                                          *)
(* ------------------------------------------------------------------ *)

let send t req =
  let data = Protocol.frame (Protocol.request_to_json req) in
  let n = String.length data in
  let rec go off =
    if off < n then
      match Unix.write_substring t.fd data off (n - off) with
      | 0 -> Error (gone_eof t "server closed the connection")
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED) as e, _, _) ->
        Error (gone t e "write failed")
      | exception Unix.Unix_error (e, _, _) -> Error (gone t e "write failed")
    else Ok ()
  in
  go 0

let take_line t =
  let data = Buffer.contents t.pending in
  match String.index_opt data '\n' with
  | Some nl ->
    let line = String.sub data 0 nl in
    Buffer.clear t.pending;
    Buffer.add_substring t.pending data (nl + 1) (String.length data - nl - 1);
    Some line
  | None -> None

(* One protocol frame, heartbeat-aware: while blocked waiting for the
   server, send a ping every half interval, and declare the server gone —
   in bounded time — once it has been silent for [heartbeat * miss_limit]
   seconds.  Pong frames are consumed transparently (their bytes already
   proved liveness); with no heartbeat contract this degrades to a plain
   blocking read. *)
let read_frame t =
  let buf = Bytes.create 65536 in
  let rec next_line () =
    match take_line t with
    | Some line -> Ok line
    | None ->
      let now = Unix.gettimeofday () in
      let tmo =
        if t.heartbeat > 0.0 then begin
          let dead =
            t.last_heard +. (t.heartbeat *. float_of_int (max 1 t.miss_limit))
          in
          if now >= dead then
            Error
              (gone_eof t
                 (Printf.sprintf
                    "unresponsive for %.1fs (%d heartbeats missed)"
                    (now -. t.last_heard) (max 1 t.miss_limit)))
          else begin
            let ping_due = t.last_ping +. (t.heartbeat /. 2.0) in
            if now >= ping_due then begin
              t.last_ping <- now;
              t.ping_seq <- t.ping_seq + 1;
              match send t (Protocol.Ping { seq = t.ping_seq }) with
              | Ok () -> Ok (min (dead -. now) (t.heartbeat /. 2.0))
              | Error e -> Error e
            end
            else Ok (min (dead -. now) (ping_due -. now))
          end
        end
        else Ok (-1.0)
      in
      (match tmo with
      | Error e -> Error e
      | Ok tmo -> (
        match Unix.select [ t.fd ] [] [] tmo with
        | [], _, _ -> next_line ()
        | _ :: _, _, _ -> (
          match Unix.read t.fd buf 0 (Bytes.length buf) with
          | 0 -> Error (gone_eof t "server closed the connection")
          | n ->
            t.last_heard <- Unix.gettimeofday ();
            Buffer.add_subbytes t.pending buf 0 n;
            next_line ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line ()
          | exception
              Unix.Unix_error
                ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED) as e, _, _)
            ->
            Error (gone t e "read failed")
          | exception Unix.Unix_error (e, _, _) ->
            Error (gone t e "read failed"))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line ()
        | exception Unix.Unix_error (e, _, _) ->
          Error (gone t e "select failed")))
  in
  let rec frame () =
    match next_line () with
    | Error _ as e -> e
    | Ok line -> (
      match Protocol.response_of_line line with
      | Error msg -> Error (Protocol_error msg)
      | Ok (Protocol.Pong _) -> frame ()
      | Ok resp -> Ok resp)
  in
  frame ()

(* ------------------------------------------------------------------ *)
(* Connection                                                           *)
(* ------------------------------------------------------------------ *)

let connect_addr addr =
  let fail detail = Error (Connect_failed { addr = addr_to_string addr; detail }) in
  match
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | h -> h.Unix.h_addr_list.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  with
  | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
  | exception Not_found -> fail "cannot resolve host"
  | fd -> (
    let now = Unix.gettimeofday () in
    let t =
      {
        fd;
        addr;
        pending = Buffer.create 256;
        session = None;
        heartbeat = 0.0;
        miss_limit = 0;
        last_heard = now;
        last_ping = now;
        ping_seq = 0;
      }
    in
    (* the session handshake: the first frame of every v2 connection is the
       server's hello.  Bound the wait so connecting to something that is
       not a simbench server fails in seconds, not forever. *)
    t.heartbeat <- 10.0;
    t.miss_limit <- 1;
    match read_frame t with
    | Ok (Protocol.Hello { session; heartbeat; miss_limit }) ->
      t.session <- Some session;
      t.heartbeat <- heartbeat;
      t.miss_limit <- miss_limit;
      Ok t
    | Ok _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "server did not open with a hello frame (old protocol?)"
    | Error (Protocol_error msg) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail (Printf.sprintf "bad hello frame: %s" msg)
    | Error e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail
        (Printf.sprintf "no hello frame from the server (%s)"
           (error_message e)))

let connect s =
  match addr_of_string s with
  | Error detail -> Error (Connect_failed { addr = s; detail })
  | Ok a -> connect_addr a

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* High-level verbs                                                     *)
(* ------------------------------------------------------------------ *)

type job_end =
  | Completed of { rows : int; failed : int }
  | Was_cancelled of { dropped : int }
  | Server_bye of string

(* Stream one job: send the submission, call [on_row] per row, return how
   the job ended.  [cancel_after], when set, sends a cancel frame as soon
   as that many rows have arrived — the [--cancel N] test hook. *)
let submit ?cancel_after ?(resume = false)
    ?(on_row = fun ~key:_ ~cached:_ _ -> ()) t ~id ~cells =
  match send t (Protocol.Submit { id; cells; resume }) with
  | Error _ as e -> e
  | Ok () ->
    let seen = ref 0 in
    let cancel_sent = ref false in
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Ack _) -> loop ()
      | Ok (Protocol.Row { id = rid; key; cached; cell }) ->
        if rid = id then begin
          incr seen;
          on_row ~key ~cached cell;
          (match cancel_after with
          | Some n when !seen >= n && not !cancel_sent -> (
            cancel_sent := true;
            match send t (Protocol.Cancel { id }) with
            | Ok () -> ()
            | Error _ -> ())
          | _ -> ())
        end;
        loop ()
      | Ok (Protocol.Job_done { id = rid; rows; failed }) ->
        if rid = id then Ok (Completed { rows; failed }) else loop ()
      | Ok (Protocol.Cancelled { id = rid; dropped }) ->
        if rid = id then Ok (Was_cancelled { dropped }) else loop ()
      | Ok (Protocol.Error_msg { id = eid; message }) ->
        (* an error naming this job is a rejection; an untagged error means
           the server could not even parse a frame of ours (garbled in
           transit) — a transport-level failure the resilient layer
           retries, not a verdict on the job *)
        if eid = Some id then Error (Server_error message)
        else if eid = None then
          Error (Protocol_error ("server rejected a frame: " ^ message))
        else loop ()
      | Ok (Protocol.Bye { reason }) -> Ok (Server_bye reason)
      | Ok (Protocol.Hello _)
      | Ok (Protocol.Pong _)
      | Ok (Protocol.Status_report _)
      | Ok (Protocol.Run_dump _) -> loop ()
    in
    loop ()

let cancel t ~id =
  match send t (Protocol.Cancel { id }) with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Cancelled { id = rid; dropped }) when rid = id ->
        Ok dropped
      | Ok (Protocol.Error_msg { message; _ }) -> Error (Server_error message)
      | Ok (Protocol.Bye { reason }) ->
        Error (Server_error ("server shut down: " ^ reason))
      | Ok _ -> loop ()
    in
    loop ()

let status t =
  match send t Protocol.Status with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Status_report payload) -> Ok payload
      | Ok (Protocol.Error_msg { message; _ }) -> Error (Server_error message)
      | Ok (Protocol.Bye { reason }) ->
        Error (Server_error ("server shut down: " ^ reason))
      | Ok _ -> loop ()
    in
    loop ()

let dump t =
  match send t Protocol.Dump with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_frame t with
      | Error _ as e -> e
      | Ok (Protocol.Run_dump { source; cells }) -> Ok (source, cells)
      | Ok (Protocol.Error_msg { message; _ }) -> Error (Server_error message)
      | Ok (Protocol.Bye { reason }) ->
        Error (Server_error ("server shut down: " ^ reason))
      | Ok _ -> loop ()
    in
    loop ()

let shutdown t = send t Protocol.Shutdown
