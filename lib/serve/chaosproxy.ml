(* Seeded transport-chaos proxy.

   Sits between a client and the benchmark service and injects the
   failures the resilient layer must survive: forwarding in small
   chunks (partial frames), bounded random delays, mid-message
   connection resets, and byte corruption.  Corrupted bytes are NUL
   (0x00): {!Sb_util.Json}'s parser rejects unescaped control
   characters inside strings and NUL is never valid frame JSON, so a
   corrupted frame always surfaces as a detectable protocol error —
   never as silently altered data.

   All fault decisions are drawn from seeded {!Sb_util.Xorshift}
   streams keyed on absolute byte ordinals per direction, so a given
   (seed, connection, direction) replays the same fault schedule
   regardless of how reads happen to be chunked by the kernel. *)

module X = Sb_util.Xorshift

type config = {
  listen : string;
  upstream : string;
  seed : int;
  reset_after : int * int;
  corrupt_after : int * int;
  max_delay : float;
  chunk : int;
  verbose : bool;
}

let default_config =
  { listen = "";
    upstream = "";
    seed = 1;
    reset_after = (0, 0);
    corrupt_after = (0, 0);
    max_delay = 0.0;
    chunk = 256;
    verbose = false
  }

(* One forwarding direction of one connection.  [sched] drives the
   reset/corruption ordinals: its draws happen only when an event
   ordinal is crossed, and those ordinals are themselves functions of
   earlier draws, so the schedule is chunking-independent.  [jrng]
   (delays) is consumed once per chunk — timing-dependent, hence its
   own stream so it cannot perturb the fault schedule. *)
type dir = {
  tag : string;
  mutable sent : int;
  mutable next_reset : int;
  mutable next_corrupt : int;
  sched : X.t;
  jrng : X.t;
}

type conn = {
  cn_id : int;
  cl_fd : Unix.file_descr;
  up_fd : Unix.file_descr;
  c2s : dir;
  s2c : dir;
  mutable cn_open : bool;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  listen_addr : Client.addr;
  upstream_addr : Client.addr;
  mutable conns : conn list;
  mutable next_conn : int;
  mutable stop : bool;
  mutable resets : int;
  mutable corruptions : int;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "[chaos] %s\n%!" s)
    fmt

let draw_interval rng (lo, hi) =
  if hi <= 0 then max_int
  else begin
    let lo = max 1 lo in
    let hi = max lo hi in
    lo + X.int rng (hi - lo + 1)
  end

let make_dir t ~conn_id ~dirno tag cfg =
  let mix k = cfg.seed lxor (conn_id * 0x9e3779b9) lxor (dirno * 0x85eb) lxor k in
  let sched = X.create ~seed:(mix 0x1) in
  let d =
    { tag;
      sent = 0;
      next_reset = 0;
      next_corrupt = 0;
      sched;
      jrng = X.create ~seed:(mix 0x2)
    }
  in
  d.next_reset <- draw_interval sched cfg.reset_after;
  d.next_corrupt <- draw_interval sched cfg.corrupt_after;
  ignore t;
  d

let bind_listener addr =
  match addr with
  | Client.Unix_sock path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Client.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 64;
    fd

let connect_upstream addr =
  match addr with
  | Client.Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> Unix.close fd; raise e);
    fd
  | Client.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (ip, port))
     with e -> Unix.close fd; raise e);
    fd

let addr_or_fail what s =
  match Client.addr_of_string s with
  | Ok a -> a
  | Error e -> invalid_arg (Printf.sprintf "chaos-proxy %s address: %s" what e)

let create cfg =
  if cfg.chunk < 1 then invalid_arg "chaos-proxy: chunk must be >= 1";
  let listen_addr = addr_or_fail "listen" cfg.listen in
  let upstream_addr = addr_or_fail "upstream" cfg.upstream in
  let lfd = bind_listener listen_addr in
  { cfg;
    lfd;
    listen_addr;
    upstream_addr;
    conns = [];
    next_conn = 0;
    stop = false;
    resets = 0;
    corruptions = 0
  }

let close_conn c =
  if c.cn_open then begin
    c.cn_open <- false;
    (* an abrupt RST (not a tidy FIN) is the failure mode we are
       simulating; zero linger makes TCP closes look like crashes *)
    (try Unix.setsockopt_optint c.cl_fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    (try Unix.setsockopt_optint c.up_fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    (try Unix.close c.cl_fd with Unix.Unix_error _ -> ());
    (try Unix.close c.up_fd with Unix.Unix_error _ -> ())
  end

let write_all fd buf len =
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

let accept_conn t =
  match Unix.accept t.lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | cl_fd, _ ->
    (match connect_upstream t.upstream_addr with
     | exception e ->
       (try Unix.close cl_fd with Unix.Unix_error _ -> ());
       log t "upstream connect failed: %s" (Printexc.to_string e)
     | up_fd ->
       let id = t.next_conn in
       t.next_conn <- id + 1;
       let c =
         { cn_id = id;
           cl_fd;
           up_fd;
           c2s = make_dir t ~conn_id:id ~dirno:1 "c>s" t.cfg;
           s2c = make_dir t ~conn_id:id ~dirno:2 "s>c" t.cfg;
           cn_open = true
         }
       in
       t.conns <- c :: t.conns;
       log t "conn %d open (reset@%d/%d corrupt@%d/%d)" id c.c2s.next_reset
         c.s2c.next_reset c.c2s.next_corrupt c.s2c.next_corrupt)

(* Forward one chunk from [src] to [dst], applying the direction's fault
   schedule.  Returns false when the connection must die (EOF, error, or
   an injected reset). *)
let forward t c d ~src ~dst =
  let buf = Bytes.create t.cfg.chunk in
  match Unix.read src buf 0 t.cfg.chunk with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> true
  | exception Unix.Unix_error _ -> false
  | 0 -> false
  | n ->
    (* corrupt every scheduled ordinal that falls inside this chunk *)
    while d.next_corrupt < d.sent + n do
      Bytes.set buf (d.next_corrupt - d.sent) '\000';
      t.corruptions <- t.corruptions + 1;
      log t "conn %d %s: corrupt byte %d" c.cn_id d.tag d.next_corrupt;
      d.next_corrupt <- d.next_corrupt + draw_interval d.sched t.cfg.corrupt_after
    done;
    let cut =
      if d.next_reset < d.sent + n then begin
        (* forward the prefix, then kill the connection mid-message *)
        let keep = d.next_reset - d.sent in
        t.resets <- t.resets + 1;
        log t "conn %d %s: reset at byte %d" c.cn_id d.tag d.next_reset;
        Some keep
      end
      else None
    in
    let len = match cut with Some keep -> keep | None -> n in
    let ok =
      len = 0
      || (match write_all dst buf len with
          | () -> true
          | exception Unix.Unix_error _ -> false)
    in
    d.sent <- d.sent + n;
    if ok && cut = None && t.cfg.max_delay > 0.0 && X.int d.jrng 4 = 0 then begin
      let frac = float_of_int (X.int d.jrng 1000) /. 1000.0 in
      Unix.sleepf (t.cfg.max_delay *. frac)
    end;
    ok && cut = None

let step ?(timeout = 0.2) t =
  let fds =
    t.lfd
    :: List.concat_map
         (fun c -> if c.cn_open then [ c.cl_fd; c.up_fd ] else [])
         t.conns
  in
  match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
    if List.memq t.lfd readable then accept_conn t;
    List.iter
      (fun c ->
        if c.cn_open && List.memq c.cl_fd readable then
          if not (forward t c c.c2s ~src:c.cl_fd ~dst:c.up_fd) then
            close_conn c;
        if c.cn_open && List.memq c.up_fd readable then
          if not (forward t c c.s2c ~src:c.up_fd ~dst:c.cl_fd) then
            close_conn c)
      t.conns;
    t.conns <- List.filter (fun c -> c.cn_open) t.conns

let request_stop t = t.stop <- true

let close t =
  List.iter (fun c -> close_conn c) t.conns;
  t.conns <- [];
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  match t.listen_addr with
  | Client.Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Client.Tcp _ -> ()

let resets t = t.resets
let corruptions t = t.corruptions

let run t =
  let self = t in
  let stop_handler = Sys.Signal_handle (fun _ -> request_stop self) in
  let prev_term = Sys.signal Sys.sigterm stop_handler in
  let prev_int = Sys.signal Sys.sigint stop_handler in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  log t "proxy %s -> %s (seed %d)" t.cfg.listen t.cfg.upstream t.cfg.seed;
  (try
     while not t.stop do
       step t
     done
   with e ->
     close t;
     Sys.set_signal Sys.sigterm prev_term;
     Sys.set_signal Sys.sigint prev_int;
     Sys.set_signal Sys.sigpipe prev_pipe;
     raise e);
  log t "proxy stopping: %d reset(s), %d corruption(s)" t.resets t.corruptions;
  close t;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  Sys.set_signal Sys.sigpipe prev_pipe
