(** Blocking client for the benchmark service.

    Addresses are ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"]
    (loopback), or a bare path (treated as a Unix socket).  All calls
    block until the server replies; errors are strings, never
    exceptions. *)

module Json = Sb_util.Json

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string

type t

val connect : string -> (t, string) result
val close : t -> unit

val send : t -> Protocol.request -> (unit, string) result
val read_frame : t -> (Protocol.response, string) result

(** How a streamed job ended. *)
type job_end =
  | Completed of { rows : int; failed : int }
  | Was_cancelled of { dropped : int }
  | Server_bye of string  (** the server shut down mid-job *)

val submit :
  ?cancel_after:int ->
  ?on_row:(cached:bool -> Json.t -> unit) ->
  t ->
  id:string ->
  cells:Protocol.cell_spec list ->
  (job_end, string) result
(** Submit one job and stream its rows through [on_row] until the
    server reports it done (or cancelled, or shuts down).
    [cancel_after n] sends a cancel frame after the [n]-th row — the
    mid-run cancellation path, exercised by tests and [--cancel]. *)

val cancel : t -> id:string -> (int, string) result
(** Returns the number of dropped (never-run) cells. *)

val status : t -> (Json.t, string) result
(** The server's {!Serve.status_json} payload. *)

val dump : t -> (string * Json.t list, string) result
(** [(source, cells)]: every row the server knows, as bench-JSON cell
    objects — the feed for [compare]/[baseline] against a live server. *)

val shutdown : t -> (unit, string) result
(** Fire-and-forget graceful-shutdown request. *)
