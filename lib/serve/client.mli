(** Blocking client for the benchmark service.

    Addresses are ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"]
    (loopback), or a bare path (treated as a Unix socket).  All calls
    block until the server replies; errors are typed {!error} values,
    never exceptions — raw [EPIPE]/[ECONNRESET]/[ECONNREFUSED] and EOF
    surface as {!Server_gone}/{!Connect_failed} naming the address.

    Connections speak protocol 2: the first frame of every connection is
    the server's [hello] (session id + heartbeat contract), and while a
    call is blocked waiting for the server the client pings every half
    interval and declares the server gone — in bounded time — once it has
    been silent for [heartbeat * miss_limit] seconds.

    This client does not reconnect; {!Resilient} layers retry, backoff
    and resume on top of it. *)

module Json = Sb_util.Json

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
val addr_to_string : addr -> string

(** Why a call failed.  [Connect_failed] is returned when no session was
    ever established (refused, unresolvable, no hello); [Server_gone]
    when an established connection died (EOF, [EPIPE], [ECONNRESET],
    missed heartbeats) — the distinction drives the CLI's exit codes and
    the resilient client's retry decisions. *)
type error =
  | Connect_failed of { addr : string; detail : string }
  | Server_gone of { addr : string; detail : string }
  | Protocol_error of string  (** unparsable frame from the server *)
  | Server_error of string  (** the server answered with an error frame *)

val error_message : error -> string
(** Human message, naming the address for transport errors. *)

type t

val connect : string -> (t, error) result
(** Connect and wait (bounded) for the server's hello frame. *)

val close : t -> unit

val session : t -> string option
(** The server-assigned session id from the hello frame. *)

val heartbeat : t -> float
(** The heartbeat interval the server announced ([<= 0] = none). *)

val addr : t -> string
(** The rendered address this client is connected to. *)

val send : t -> Protocol.request -> (unit, error) result

val read_frame : t -> (Protocol.response, error) result
(** One response frame.  Heartbeat-aware: pings while waiting, fails with
    {!Server_gone} after [heartbeat * miss_limit] seconds of server
    silence.  [Pong] frames are consumed transparently. *)

(** How a streamed job ended. *)
type job_end =
  | Completed of { rows : int; failed : int }
  | Was_cancelled of { dropped : int }
  | Server_bye of string  (** the server shut down mid-job *)

val submit :
  ?cancel_after:int ->
  ?resume:bool ->
  ?on_row:(key:string -> cached:bool -> Json.t -> unit) ->
  t ->
  id:string ->
  cells:Protocol.cell_spec list ->
  (job_end, error) result
(** Submit one job and stream its rows through [on_row] (the [key] is the
    cell's content address, what a resuming client checks off) until the
    server reports it done (or cancelled, or shuts down).
    [cancel_after n] sends a cancel frame after the [n]-th row — the
    mid-run cancellation path, exercised by tests and [--cancel].
    [resume] marks the submission as a post-reconnect resume. *)

val cancel : t -> id:string -> (int, error) result
(** Returns the number of dropped (never-run) cells. *)

val status : t -> (Json.t, error) result
(** The server's {!Serve.status_json} payload. *)

val dump : t -> (string * Json.t list, error) result
(** [(source, cells)]: every row the server knows, as bench-JSON cell
    objects — the feed for [compare]/[baseline] against a live server. *)

val shutdown : t -> (unit, error) result
(** Fire-and-forget graceful-shutdown request. *)
