(** Seeded transport-chaos proxy for the benchmark service.

    A tiny single-threaded TCP/Unix-socket proxy that sits between a
    client and the daemon and injects transport failures: forwarding in
    small chunks (partial frames), bounded random delays, mid-message
    connection resets, and byte corruption (NUL bytes — never valid
    frame JSON, so corruption always surfaces as a detectable protocol
    error, not silently altered data).

    Fault schedules are drawn from {!Sb_util.Xorshift} streams keyed on
    the seed, the connection ordinal and the direction, and fire on
    absolute byte ordinals — a given seed replays the same faults
    regardless of how the kernel chunks reads.  The CI chaos-soak gate
    runs the full multi-client soak through this proxy with fixed
    seeds. *)

type config = {
  listen : string;  (** address to accept clients on ({!Client.addr} syntax) *)
  upstream : string;  (** the real server's address *)
  seed : int;  (** fault-schedule seed *)
  reset_after : int * int;
      (** (min, max) bytes forwarded between injected connection resets,
          per direction; [(0, 0)] (or max [<= 0]) disables resets *)
  corrupt_after : int * int;
      (** (min, max) bytes between injected NUL corruptions; [(0, 0)]
          disables *)
  max_delay : float;  (** upper bound of injected per-chunk delays, seconds;
                          [0] disables *)
  chunk : int;  (** max bytes forwarded per read — small values force
                    partial frames *)
  verbose : bool;
}

val default_config : config
(** No faults, 256-byte chunks, seed 1; [listen]/[upstream] must be
    set. *)

type t

val create : config -> t
(** Binds the listener (replacing a stale Unix socket file).  Raises
    [Invalid_argument] on bad addresses. *)

val run : t -> unit
(** Serve until SIGTERM/SIGINT (handled gracefully), then close every
    connection and the listener. *)

val step : ?timeout:float -> t -> unit
(** One select-loop iteration, for in-process tests. *)

val request_stop : t -> unit
val close : t -> unit

val resets : t -> int
(** Connection resets injected so far. *)

val corruptions : t -> int
(** Bytes corrupted so far. *)
