open Simbench.Pasm

type t = {
  name : string;
  spec_name : string;
  weight : float;
  bench : Simbench.Bench.t;
}

let add r a b = Alu (Sb_isa.Uop.Add, r, a, b)
let sub r a b = Alu (Sb_isa.Uop.Sub, r, a, b)
let xor r a b = Alu (Sb_isa.Uop.Xor, r, a, b)
let and_ r a b = Alu (Sb_isa.Uop.And_, r, a, b)
let mul r a b = Alu (Sb_isa.Uop.Mul, r, a, b)
let lsl_ r a b = Alu (Sb_isa.Uop.Lsl, r, a, b)
let lsr_ r a b = Alu (Sb_isa.Uop.Lsr, r, a, b)

(* r := r * 1103515245 + 12345 (the classic LCG step) *)
let lcg r = [ mul r r (I 1103515245); add r r (I 12345) ]

(* [counted_loop ~label ~counter n body]: body must preserve [counter]. *)
let counted_loop ~label ~counter n body =
  [ Li (counter, n); L label ]
  @ body
  @ [ sub counter counter (I 1); Cmp (counter, I 0); Br (Sb_isa.Uop.Ne, label) ]

let workload ~name ~spec_name ?(weight = 1.0) ~description body =
  {
    name;
    spec_name;
    weight;
    bench =
      {
        Simbench.Bench.name;
        category = Simbench.Category.Application;
        description;
        default_iters = 40;
        ops_per_iter = 0;
        platform_specific = false;
        body;
      };
  }

(* ------------------------------------------------------------------ *)

let sjeng =
  let body ~support:_ ~platform:_ =
    let skip n = Printf.sprintf "sj_s%d" n in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0x2B5E); Li (v2, 0) ];
      kernel =
        counted_loop ~label:"sj_inner" ~counter:v0 512
          (lcg v1
          @ [
              and_ v3 v1 (I 1);
              Cmp (v3, I 0);
              Br (Sb_isa.Uop.Eq, skip 1);
              add v2 v2 (I 13);
              L (skip 1);
              and_ v3 v1 (I 6);
              Cmp (v3, I 0);
              Br (Sb_isa.Uop.Eq, skip 2);
              xor v2 v2 (R v1);
              L (skip 2);
              and_ v3 v1 (I 24);
              Cmp (v3, I 24);
              Br (Sb_isa.Uop.Ne, skip 3);
              add v2 v2 (R v1);
              L (skip 3);
              and_ v3 v1 (I 256);
              Cmp (v3, I 0);
              Br (Sb_isa.Uop.Eq, skip 4);
              sub v2 v2 (I 7);
              L (skip 4);
            ]);
    }
  in
  workload ~name:"sjeng" ~spec_name:"458.sjeng"
    ~description:"branchy game-tree search: dense unpredictable intra-page branches"
    body

let mcf =
  let body ~support ~platform:(p : Simbench.Platform.t) =
    let (module S : Simbench.Support.SUPPORT) = support in
    let heap = p.Simbench.Platform.heap_base in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup =
        (* node(i) at heap + ((i*577) mod 2048) pages; each holds a pointer
           to node(i+1): a page-stride linked list that overflows both levels
           of any simulator page cache *)
        [ Li (v0, 0); L "mcf_build" ]
        @ [
            mul v2 v0 (I 577);
            and_ v2 v2 (I 2047);
            lsl_ v2 v2 (I 12);
            add v2 v2 (I heap);
            add v3 v0 (I 1);
            mul v3 v3 (I 577);
            and_ v3 v3 (I 2047);
            lsl_ v3 v3 (I 12);
            add v3 v3 (I heap);
            Store (W32, v3, v2, 0);
            add v0 v0 (I 1);
            Cmp (v0, I 2048);
            Br (Sb_isa.Uop.Ne, "mcf_build");
            Li (v1, 0);
          ];
      kernel =
        [ Li (v0, heap) ]
        @ counted_loop ~label:"mcf_chase" ~counter:v2 2048 [ Load (W32, v0, v0, 0) ]
        @ [ xor v1 v1 (R v0) ]
        (* a demand-paging event per pass: one recoverable data fault *)
        @ [ Li (v3, p.Simbench.Platform.fault_va); Load (W32, v3, v3, 0) ];
      handlers =
        [
          ( Sb_sim.Exn.Data_abort,
            [
              Cop_read (v3, Sb_isa.Cregs.elr);
              add v3 v3 (I S.load_skip_bytes);
              Cop_write (Sb_isa.Cregs.elr, v3);
              Eret;
            ] );
        ];
    }
  in
  workload ~name:"mcf" ~spec_name:"429.mcf"
    ~description:"page-stride pointer chasing with paging events: TLB-hostile"
    body

let libquantum =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0) ];
      kernel =
        [ Li (v2, heap) ]
        @ counted_loop ~label:"lq_sweep" ~counter:v3 4096
            [
              Load (W32, v0, v2, 0);
              xor v0 v0 (I 0x5A5A);
              Store (W32, v0, v2, 0);
              add v2 v2 (I 4);
            ]
        @ [ xor v1 v1 (R v0) ];
    }
  in
  workload ~name:"libquantum" ~spec_name:"462.libquantum"
    ~description:"streaming gate application over a large register vector" body

let h264ref =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.kernel =
        [ Li (v2, heap); Li (v3, heap + 0x10000) ]
        @ counted_loop ~label:"h264_copy" ~counter:v0 2048
            [
              Load (W32, v1, v2, 0);
              Store (W32, v1, v3, 0);
              add v2 v2 (I 4);
              add v3 v3 (I 4);
            ];
    }
  in
  workload ~name:"h264ref" ~spec_name:"464.h264ref"
    ~description:"reference-frame block copies: hot load/store pairs" body

let bzip2 =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let scratch = p.Simbench.Platform.scratch_base in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0xB21F); Li (v2, 0) ];
      kernel =
        counted_loop ~label:"bz_inner" ~counter:v0 1024
          (lcg v1
          @ [
              and_ v3 v1 (I 0xFF);
              add v3 v3 (I scratch);
              Load (W8, v3, v3, 0);
              xor v2 v2 (R v3);
              lsl_ v2 v2 (I 1);
              lsr_ v3 v1 (I 8);
              and_ v3 v3 (I 0xFF);
              add v3 v3 (I scratch);
              Store (W8, v2, v3, 0);
            ]);
    }
  in
  workload ~name:"bzip2" ~spec_name:"401.bzip2"
    ~description:"byte-granular bit twiddling over a block-sorting buffer" body

(* A small family of leaf functions with different ALU mixes, called through
   a function-pointer table — the classic compiler/interpreter shape. *)
let dispatch_functions ~prefix =
  let fn i = Printf.sprintf "%s_f%d" prefix i in
  let table = prefix ^ "_table" in
  let bodies =
    [
      [ add v2 v2 (I 3) ];
      [ xor v2 v2 (I 0x55) ];
      [ lsl_ v2 v2 (I 1); add v2 v2 (I 1) ];
      [ sub v2 v2 (I 5) ];
      [ mul v2 v2 (I 3) ];
      [ lsr_ v2 v2 (I 2); xor v2 v2 (I 9) ];
      [ add v2 v2 (R v1) ];
      [ xor v2 v2 (R v1); add v2 v2 (I 1) ];
    ]
  in
  let functions =
    (* a fresh page: calls into the dispatch targets cross a page boundary,
       as they do in real call-heavy applications *)
    [ Align 4096 ]
    @ List.concat (List.mapi (fun i body -> [ L (fn i) ] @ body @ [ Ret ]) bodies)
    @ [ Align 4; L table ]
    @ List.init 8 (fun i -> Word_sym (fn i))
  in
  (functions, table)

let gcc =
  (* dispatch: v0 is the loop counter, v1 the rng, v2 the value being
     transformed, v3 the computed function pointer; lr doubles as the table
     base because the call is about to clobber it anyway *)
  let body ~support:_ ~platform:_ =
    let functions, table = dispatch_functions ~prefix:"gcc" in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0x6CC1); Li (v2, 0) ];
      kernel =
        counted_loop ~label:"gcc_inner" ~counter:v0 256
          (lcg v1
          @ [
              and_ v3 v1 (I 7);
              lsl_ v3 v3 (I 2);
              La (lr, table);
              add v3 v3 (R lr);
              Load (W32, v3, v3, 0);
              Call_reg v3;
            ])
        @ [ Cop_safe_read v3 ];
      functions;
    }
  in
  workload ~name:"gcc" ~spec_name:"403.gcc"
    ~description:"pass dispatch through function-pointer tables" body

let perlbench =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let functions, table = dispatch_functions ~prefix:"pl" in
    let scratch = p.Simbench.Platform.scratch_base + 0x1000 in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup =
        (* pre-compile a little "bytecode" program: opcode(i) = (i*31) & 7 *)
        [ Li (v0, 0); Li (v2, scratch); L "pl_compile" ]
        @ [
            mul v3 v0 (I 31);
            and_ v3 v3 (I 7);
            Store (W8, v3, v2, 0);
            add v2 v2 (I 1);
            add v0 v0 (I 1);
            Cmp (v0, I 512);
            Br (Sb_isa.Uop.Ne, "pl_compile");
            Li (v1, 0);
            Li (v2, 0);
          ];
      kernel =
        [ Li (v1, scratch) ]
        @ counted_loop ~label:"pl_exec" ~counter:v0 512
            ([
               Load (W8, v3, v1, 0);
               lsl_ v3 v3 (I 2);
               add v1 v1 (I 1);
             ]
            @ [ La (lr, table); add v3 v3 (R lr); Load (W32, v3, v3, 0); Call_reg v3 ])
        @ [ Syscall ]
        @ [
            (* progress output on the console *)
            Li (v3, p.Simbench.Platform.uart_base);
            Li (v1, Char.code '.');
            Store (W32, v1, v3, 0);
          ];
      handlers = [ (Sb_sim.Exn.Syscall, [ Eret ]) ];
      functions;
    }
  in
  workload ~name:"perlbench" ~spec_name:"400.perlbench"
    ~description:
      "opcode-dispatch interpreter loop with system calls and console output"
    body

let gobmk =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base + 0x40000 in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0x60B3); Li (v2, 0) ];
      kernel =
        counted_loop ~label:"gb_inner" ~counter:v0 512
          (lcg v1
          @ [
              and_ v3 v1 (I 0x3FFC);
              add v3 v3 (I heap);
              Load (W32, v2, v3, 0);
              add v2 v2 (I 1);
              Store (W32, v2, v3, 0);
              and_ v3 v1 (I 16);
              Cmp (v3, I 0);
              Br (Sb_isa.Uop.Eq, "gb_skip");
              xor v2 v2 (R v1);
              L "gb_skip";
            ]);
    }
  in
  workload ~name:"gobmk" ~spec_name:"445.gobmk"
    ~description:"board-state reads/updates mixed with unpredictable branches" body

let hmmer =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base + 0x80000 in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0) ];
      kernel =
        [ Li (v0, heap) ]
        @ counted_loop ~label:"hm_inner" ~counter:v3 1024
            [
              Load (W32, v2, v0, 0);
              Load (W32, v1, v0, 2048) (* second row of the score matrix *);
              mul v2 v2 (R v1);
              add v1 v1 (R v2);
              Store (W32, v1, v0, 4096);
              add v0 v0 (I 4);
            ];
    }
  in
  workload ~name:"hmmer" ~spec_name:"456.hmmer"
    ~description:"profile-HMM inner loop: load/load/multiply/accumulate/store" body

let omnetpp =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base + 0xC0000 in
    let intc = p.Simbench.Platform.intc_base in
    let timer = p.Simbench.Platform.timer_base in
    let timer_mask = 1 lsl Sb_mem.Intc.timer_line in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup =
        [
          (* periodic simulation-clock interrupts via the platform timer *)
          Li (v1, intc);
          Li (v0, timer_mask);
          Store (W32, v0, v1, 0x4);
          Li (v1, timer);
          Li (v0, 1);
          Store (W32, v0, v1, 0x8);
          Load (W32, v0, v1, 0x0);
          add v0 v0 (I 20_000);
          Store (W32, v0, v1, 0x4);
          Li (v1, 0x03E7);
          Li (v2, 0);
        ];
      kernel =
        counted_loop ~label:"om_inner" ~counter:v0 512
          (lcg v1
          @ [
              and_ v3 v1 (I 0xFFC);
              add v3 v3 (I heap);
              Load (W32, v2, v3, 0);
              Cmp (v2, R v1);
              Br (Sb_isa.Uop.Ltu, "om_keep");
              Store (W32, v1, v3, 0);
              L "om_keep";
            ]);
      handlers =
        [
          ( Sb_sim.Exn.Irq,
            Simbench.Rt.wrap_irq_handler
              [
                Li (v3, intc);
                Li (v0, timer_mask);
                Store (W32, v0, v3, 0xC);
                Li (v3, timer);
                Load (W32, v0, v3, 0x0);
                add v0 v0 (I 20_000);
                Store (W32, v0, v3, 0x4);
              ] );
        ];
      needs_irqs = true;
    }
  in
  workload ~name:"omnetpp" ~spec_name:"471.omnetpp"
    ~description:"event-queue updates driven by periodic timer interrupts" body

let astar =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base + 0x100000 in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0); Li (v2, 0xA57A) ];
      kernel =
        counted_loop ~label:"as_inner" ~counter:v0 512
          (lcg v2
          @ [
              and_ v3 v2 (I 12);
              add v1 v1 (R v3);
              and_ v1 v1 (I 0xFFFC);
              add v3 v1 (I heap);
              Load (W32, v3, v3, 0);
              Cmp (v3, I 0);
              Br (Sb_isa.Uop.Eq, "as_open");
              add v1 v1 (I 4);
              and_ v1 v1 (I 0xFFFC);
              L "as_open";
            ]);
    }
  in
  workload ~name:"astar" ~spec_name:"473.astar"
    ~description:"grid path exploration: data-dependent position updates" body

let xalancbmk =
  let body ~support:_ ~platform:(p : Simbench.Platform.t) =
    let heap = p.Simbench.Platform.heap_base + 0x140000 in
    {
      Simbench.Bench.empty_body with
      Simbench.Bench.setup = [ Li (v1, 0x3A1A); Li (v2, 0) ];
      kernel =
        counted_loop ~label:"xa_walk" ~counter:v0 128
          ((* walk a binary tree of 1024 implicit nodes, 10 levels deep,
              guided by the rng bits *)
           [ Li (v3, 0) (* node index *) ]
          @ lcg v1
          @ List.concat
              (List.init 10 (fun level ->
                   [
                     lsl_ v3 v3 (I 1);
                     add v3 v3 (I 1);
                     lsr_ v2 v1 (I level);
                     and_ v2 v2 (I 1);
                     add v3 v3 (R v2);
                     and_ v3 v3 (I 1023);
                   ]))
          @ [
              lsl_ v3 v3 (I 4);
              add v3 v3 (I heap);
              Load (W32, v2, v3, 0);
              add v2 v2 (I 1);
              Store (W32, v2, v3, 0);
            ]);
    }
  in
  workload ~name:"xalancbmk" ~spec_name:"483.xalancbmk"
    ~description:"tree traversal with data-dependent descent" body

let all =
  [
    perlbench;
    bzip2;
    gcc;
    mcf;
    gobmk;
    hmmer;
    sjeng;
    libquantum;
    h264ref;
    omnetpp;
    astar;
    xalancbmk;
  ]

let names = List.map (fun w -> w.name) all

let find name = List.find_opt (fun w -> w.name = name) all

let default_iters = 40

let run ?platform ?(iters = default_iters) ?switch_at ?setup_engine ?checkpoints
    ~support ~engine w =
  Simbench.Harness.run ?platform ~iters ?switch_at ?setup_engine ?checkpoints
    ~support ~engine w.bench
