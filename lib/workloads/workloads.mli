(** SPEC CPU2006 INT analog workloads.

    Twelve synthetic integer applications whose instruction-mix signatures
    follow the SPEC INT programs the paper runs: sjeng's branchy search,
    mcf's TLB-hostile pointer chasing, libquantum's streaming array sweeps,
    perlbench's indirect-dispatch interpreter loop with system calls, and so
    on.  They are guest programs built on the same portable assembly and
    bare-metal runtime as the suite, so they run on every engine and both
    guest ISAs.

    These are not the SPEC benchmarks (those are proprietary and need an OS);
    what the paper's experiments require of them is (a) realistic,
    {e differing} operation densities (Figure 3's rightmost column) and
    (b) sensitivity profiles that differ across SimBench categories, so the
    version sweep moves them in different directions (Figures 2 and 8).
    DESIGN.md documents the substitution. *)

type t = {
  name : string;       (** short name, e.g. ["sjeng"] *)
  spec_name : string;  (** the SPEC program it models, e.g. ["458.sjeng"] *)
  weight : float;      (** weight in the overall rating (geometric mean) *)
  bench : Simbench.Bench.t;
}

val all : t list

val find : string -> t option

val names : string list

val sjeng : t
val mcf : t

val default_iters : int
(** Kernel passes per run used by the reporting layer (the workloads fix
    their own working-set sizes; iterations scale run time). *)

val run :
  ?platform:Simbench.Platform.t ->
  ?iters:int ->
  ?switch_at:Simbench.Checkpoint.point ->
  ?setup_engine:Sb_sim.Engine.t ->
  ?checkpoints:Simbench.Checkpoint.store ->
  support:Simbench.Support.t ->
  engine:Sb_sim.Engine.t ->
  t ->
  Simbench.Harness.outcome
(** Run one workload; same contract as {!Simbench.Harness.run}, including
    checkpointed fast-forward through [switch_at]/[checkpoints]. *)
