lib/interp/interp.mli: Sb_isa Sb_sim
