lib/virt/virt.mli: Sb_isa Sb_sim
