lib/virt/virt.ml: Alu_eval Arch_sig Array Bool Bytes Char Cop Cpu Cregs Exn Hashtbl List Machine Perf Printf Run_result Runner Sb_isa Sb_mem Sb_mmu Sb_sim Sb_util Uop
