(** Direct-execution engines: the hardware-assisted-virtualization (QEMU-KVM)
    analog and the native-hardware baseline.

    Both engines share the same direct-execution core: guest translations
    are resolved through a flat, hardware-style translation cache covering
    the whole address space (no geometry conflicts, no software-TLB
    evictions), code is executed from pre-decoded pages, and there is no
    per-access privilege-modelling overhead beyond the architectural check.

    They differ exactly where virtualization and bare metal differ
    (Section III-B2 of the paper):

    - on the {b virt} engine, device accesses, undefined instructions,
      interrupt injection and WFI each take a {e vm-exit} — a full vCPU
      state save/restore plus a pass through the emulation-layer dispatcher
      — while syscalls, page faults and ordinary memory traffic run at
      guest speed;
    - on the {b native} engine those operations are direct.

    The vm-exit cost is deliberate simulated hardware: there is no
    hypervisor in this repository, so the world-switch work is modelled by
    measurable state-copy rounds (see DESIGN.md, substitution table). *)

module Config : sig
  type t = {
    vm_exit_rounds : int;
        (** state save/restore rounds per vm-exit; 0 means no exit taken *)
    name_suffix : string;
  }

  val virt : t
  val native : t
end

module Make_configured
    (A : Sb_isa.Arch_sig.ARCH) (C : sig
      val config : Config.t
    end) : Sb_sim.Engine.ENGINE

module Make_virt (A : Sb_isa.Arch_sig.ARCH) : Sb_sim.Engine.ENGINE
module Make_native (A : Sb_isa.Arch_sig.ARCH) : Sb_sim.Engine.ENGINE
