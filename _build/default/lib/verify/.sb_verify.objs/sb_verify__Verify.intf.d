lib/verify/verify.mli: Sb_asm Sb_isa Sb_sim
