lib/verify/verify.ml: Array Bytes Char List Printf Sb_arch_sba Sb_arch_vlx Sb_asm Sb_isa Sb_mem Sb_sim Sb_util Simbench String
