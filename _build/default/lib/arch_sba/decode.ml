open Sb_isa

let lr = 14

let undef ~addr = Uop.make_decoded ~addr ~length:4 [ Uop.Undef ]

let alu_rr op ~w =
  let rd = (w lsr 22) land 15 in
  let rn = (w lsr 18) land 15 in
  let rm = (w lsr 14) land 15 in
  Uop.Alu { op; rd = Some rd; rn = Reg rn; rm = Reg rm; set_flags = false }

let alu_ri op ~w =
  let rd = (w lsr 22) land 15 in
  let rn = (w lsr 18) land 15 in
  let imm = Sb_util.U32.to_signed (Sb_util.U32.sign_extend ~bits:14 w) in
  Uop.Alu { op; rd = Some rd; rn = Reg rn; rm = Imm imm; set_flags = false }

let mem_fields w =
  let rd = (w lsr 22) land 15 in
  let rn = (w lsr 18) land 15 in
  let offset = Sb_util.U32.to_signed (Sb_util.U32.sign_extend ~bits:14 w) in
  (rd, rn, offset)

let branch_target ~addr ~w ~bits =
  let words = Sb_util.U32.to_signed (Sb_util.U32.sign_extend ~bits w) in
  (addr + (words * 4)) land 0xFFFF_FFFF

let decode_word ~addr w =
  let open Opcodes in
  let op = (w lsr 26) land 0x3F in
  let one uop = Uop.make_decoded ~addr ~length:4 [ uop ] in
  if op = nop then one Uop.Nop
  else if op = halt then one Uop.Halt
  else if op = wfi then one Uop.Wfi
  else if op = add then one (alu_rr Uop.Add ~w)
  else if op = addi then one (alu_ri Uop.Add ~w)
  else if op = sub then one (alu_rr Uop.Sub ~w)
  else if op = subi then one (alu_ri Uop.Sub ~w)
  else if op = and_ then one (alu_rr Uop.And_ ~w)
  else if op = orr then one (alu_rr Uop.Orr ~w)
  else if op = xor then one (alu_rr Uop.Xor ~w)
  else if op = lsl_ then one (alu_rr Uop.Lsl ~w)
  else if op = lsli then one (alu_ri Uop.Lsl ~w)
  else if op = lsr_ then one (alu_rr Uop.Lsr ~w)
  else if op = lsri then one (alu_ri Uop.Lsr ~w)
  else if op = asr_ then one (alu_rr Uop.Asr ~w)
  else if op = asri then one (alu_ri Uop.Asr ~w)
  else if op = mul then one (alu_rr Uop.Mul ~w)
  else if op = movw then
    let rd = (w lsr 22) land 15 in
    one (Uop.Alu { op = Orr; rd = Some rd; rn = Imm 0; rm = Imm (w land 0xFFFF); set_flags = false })
  else if op = movt then
    let rd = (w lsr 22) land 15 in
    let high = (w land 0xFFFF) lsl 16 in
    Uop.make_decoded ~addr ~length:4
      [
        Uop.Alu { op = And_; rd = Some rd; rn = Reg rd; rm = Imm 0xFFFF; set_flags = false };
        Uop.Alu { op = Orr; rd = Some rd; rn = Reg rd; rm = Imm high; set_flags = false };
      ]
  else if op = mov then
    let rd = (w lsr 22) land 15 in
    let rm = (w lsr 14) land 15 in
    one (Uop.Alu { op = Orr; rd = Some rd; rn = Reg rm; rm = Imm 0; set_flags = false })
  else if op = cmp then
    let rn = (w lsr 18) land 15 in
    let rm = (w lsr 14) land 15 in
    one (Uop.Alu { op = Sub; rd = None; rn = Reg rn; rm = Reg rm; set_flags = true })
  else if op = cmpi then
    let rn = (w lsr 18) land 15 in
    let imm = Sb_util.U32.to_signed (Sb_util.U32.sign_extend ~bits:14 w) in
    one (Uop.Alu { op = Sub; rd = None; rn = Reg rn; rm = Imm imm; set_flags = true })
  else if op = b then
    one (Uop.Branch { cond = Always; target = Direct (branch_target ~addr ~w ~bits:26); link = None })
  else if op = bl then
    one (Uop.Branch { cond = Always; target = Direct (branch_target ~addr ~w ~bits:26); link = Some lr })
  else if op = bcc then (
    match cond_of_bits ((w lsr 22) land 15) with
    | Some cond ->
      one (Uop.Branch { cond; target = Direct (branch_target ~addr ~w ~bits:22); link = None })
    | None -> undef ~addr)
  else if op = br then
    one (Uop.Branch { cond = Always; target = Indirect ((w lsr 14) land 15); link = None })
  else if op = blr then
    one (Uop.Branch { cond = Always; target = Indirect ((w lsr 14) land 15); link = Some lr })
  else if op = ldr then
    let rd, rn, offset = mem_fields w in
    one (Uop.Load { width = W32; rd; base = Reg rn; offset; user = false })
  else if op = str then
    let rs, rn, offset = mem_fields w in
    one (Uop.Store { width = W32; rs; base = Reg rn; offset; user = false })
  else if op = ldrb then
    let rd, rn, offset = mem_fields w in
    one (Uop.Load { width = W8; rd; base = Reg rn; offset; user = false })
  else if op = strb then
    let rs, rn, offset = mem_fields w in
    one (Uop.Store { width = W8; rs; base = Reg rn; offset; user = false })
  else if op = ldrt then
    let rd, rn, offset = mem_fields w in
    one (Uop.Load { width = W32; rd; base = Reg rn; offset; user = true })
  else if op = strt then
    let rs, rn, offset = mem_fields w in
    one (Uop.Store { width = W32; rs; base = Reg rn; offset; user = true })
  else if op = svc then one (Uop.Svc (w land 0xFFFF))
  else if op = eret then one Uop.Eret
  else if op = mrc then
    one (Uop.Cop_read { rd = (w lsr 22) land 15; creg = w land 0xFF })
  else if op = mcr then
    one (Uop.Cop_write { creg = w land 0xFF; src = Reg ((w lsr 22) land 15) })
  else if op = tlbi then one (Uop.Tlb_inv_page ((w lsr 14) land 15))
  else if op = tlbiall then one Uop.Tlb_inv_all
  else undef ~addr

let decode ~fetch8 ~addr =
  let b0 = fetch8 addr in
  let b1 = fetch8 (addr + 1) in
  let b2 = fetch8 (addr + 2) in
  let b3 = fetch8 (addr + 3) in
  let w = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  decode_word ~addr w
