(** SBA-32 instruction set: assembler-facing type and binary encoder.

    SBA-32 is a 32-bit fixed-width RISC ISA modelled on ARMv5's system
    architecture: 16 general registers (r13 = stack pointer and r14 = link
    register by convention), kernel/user modes, vectored exceptions,
    coprocessor system registers, TLB maintenance operations and
    non-privileged load/store (LDRT/STRT). *)

type reg = int
(** 0..15. *)

type operand2 = Rm of reg | Imm of int
(** Second ALU operand: register, or signed 14-bit immediate. *)

type insn =
  | Nop
  | Halt
  | Wfi
  | Add of reg * reg * operand2
  | Sub of reg * reg * operand2
  | And_ of reg * reg * reg
  | Orr of reg * reg * reg
  | Xor of reg * reg * reg
  | Lsl of reg * reg * operand2
  | Lsr of reg * reg * operand2
  | Asr of reg * reg * operand2
  | Mul of reg * reg * reg
  | Movw of reg * int  (** rd := zero-extended imm16 *)
  | Movt of reg * int  (** rd\[31:16\] := imm16 *)
  | Movw_sym of reg * string  (** rd := label & 0xFFFF *)
  | Movt_sym of reg * string  (** rd\[31:16\] := label >> 16 *)
  | Mov of reg * reg
  | Cmp of reg * operand2
  | B of string
  | Bl of string
  | Bcc of Sb_isa.Uop.cond * string
  | Br of reg
  | Blr of reg
  | Ldr of reg * reg * int   (** rd, \[rn, #simm14\] *)
  | Str of reg * reg * int   (** rs, \[rn, #simm14\] *)
  | Ldrb of reg * reg * int
  | Strb of reg * reg * int
  | Ldrt of reg * reg * int  (** non-privileged load *)
  | Strt of reg * reg * int  (** non-privileged store *)
  | Svc of int
  | Eret
  | Udf
  | Mrc of reg * int  (** rd := coprocessor\[creg\] *)
  | Mcr of int * reg  (** coprocessor\[creg\] := rs *)
  | Tlbi of reg
  | Tlbiall

val sp : reg
val lr : reg

val li : reg -> int -> insn list
(** Load an arbitrary 32-bit constant (MOVW, plus MOVT when needed). *)

val la : reg -> string -> insn list
(** Load a label's address (MOVW_sym + MOVT_sym). *)

val encode_word : resolve:(string -> int) -> pc:int -> insn -> int
(** The 32-bit encoding; raises {!Sb_asm.Assembler.Error} on out-of-range
    operands or branch displacements. *)

module Encoder : Sb_asm.Assembler.ENCODER with type insn = insn

module Asm : sig
  val assemble :
    ?base:int -> ?entry:string -> insn Sb_asm.Assembler.item list -> Sb_asm.Program.t

  val layout : ?base:int -> insn Sb_asm.Assembler.item list -> (string * int) list
end
