type reg = int

type operand2 = Rm of reg | Imm of int

type insn =
  | Nop
  | Halt
  | Wfi
  | Add of reg * reg * operand2
  | Sub of reg * reg * operand2
  | And_ of reg * reg * reg
  | Orr of reg * reg * reg
  | Xor of reg * reg * reg
  | Lsl of reg * reg * operand2
  | Lsr of reg * reg * operand2
  | Asr of reg * reg * operand2
  | Mul of reg * reg * reg
  | Movw of reg * int
  | Movt of reg * int
  | Movw_sym of reg * string
  | Movt_sym of reg * string
  | Mov of reg * reg
  | Cmp of reg * operand2
  | B of string
  | Bl of string
  | Bcc of Sb_isa.Uop.cond * string
  | Br of reg
  | Blr of reg
  | Ldr of reg * reg * int
  | Str of reg * reg * int
  | Ldrb of reg * reg * int
  | Strb of reg * reg * int
  | Ldrt of reg * reg * int
  | Strt of reg * reg * int
  | Svc of int
  | Eret
  | Udf
  | Mrc of reg * int
  | Mcr of int * reg
  | Tlbi of reg
  | Tlbiall

let sp = 13
let lr = 14

let li rd v =
  let v = v land 0xFFFF_FFFF in
  let low = v land 0xFFFF in
  let high = v lsr 16 in
  if high = 0 then [ Movw (rd, low) ] else [ Movw (rd, low); Movt (rd, high) ]

let la rd label = [ Movw_sym (rd, label); Movt_sym (rd, label) ]

let asm_error fmt = Printf.ksprintf (fun s -> raise (Sb_asm.Assembler.Error s)) fmt

let check_reg r = if r < 0 || r > 15 then asm_error "register r%d out of range" r

let check_imm14 v =
  if v < -8192 || v > 8191 then asm_error "immediate %d exceeds simm14" v

let check_imm16 v =
  if v < 0 || v > 0xFFFF then asm_error "immediate %d exceeds imm16" v

(* field builders *)
let op_field op = op lsl 26
let rd_field r = check_reg r; r lsl 22
let rn_field r = check_reg r; r lsl 18
let rm_field r = check_reg r; r lsl 14
let imm14_field v = check_imm14 v; v land 0x3FFF
let imm16_field v = check_imm16 v; v land 0xFFFF

let branch_offset ~pc ~target ~bits =
  if (target - pc) land 3 <> 0 then
    asm_error "branch target 0x%x misaligned relative to 0x%x" target pc;
  let words = (target - pc) asr 2 in
  let limit = 1 lsl (bits - 1) in
  if words < -limit || words >= limit then
    asm_error "branch displacement %d words exceeds %d bits" words bits;
  words land ((1 lsl bits) - 1)

let alu_rr op rd rn rm = op_field op lor rd_field rd lor rn_field rn lor rm_field rm

let alu_ri op rd rn imm = op_field op lor rd_field rd lor rn_field rn lor imm14_field imm

let alu op_r op_i rd rn = function
  | Rm rm -> alu_rr op_r rd rn rm
  | Imm v -> alu_ri op_i rd rn v

let mem_insn op rd rn offset =
  op_field op lor rd_field rd lor rn_field rn lor imm14_field offset

let encode_word ~resolve ~pc insn =
  let open Opcodes in
  match insn with
  | Nop -> op_field nop
  | Halt -> op_field halt
  | Wfi -> op_field wfi
  | Add (rd, rn, o2) -> alu add addi rd rn o2
  | Sub (rd, rn, o2) -> alu sub subi rd rn o2
  | And_ (rd, rn, rm) -> alu_rr and_ rd rn rm
  | Orr (rd, rn, rm) -> alu_rr orr rd rn rm
  | Xor (rd, rn, rm) -> alu_rr xor rd rn rm
  | Lsl (rd, rn, o2) -> alu lsl_ lsli rd rn o2
  | Lsr (rd, rn, o2) -> alu lsr_ lsri rd rn o2
  | Asr (rd, rn, o2) -> alu asr_ asri rd rn o2
  | Mul (rd, rn, rm) -> alu_rr mul rd rn rm
  | Movw (rd, v) -> op_field movw lor rd_field rd lor imm16_field v
  | Movt (rd, v) -> op_field movt lor rd_field rd lor imm16_field v
  | Movw_sym (rd, name) ->
    op_field movw lor rd_field rd lor imm16_field (resolve name land 0xFFFF)
  | Movt_sym (rd, name) ->
    op_field movt lor rd_field rd lor imm16_field ((resolve name lsr 16) land 0xFFFF)
  | Mov (rd, rm) -> op_field mov lor rd_field rd lor rm_field rm
  | Cmp (rn, Rm rm) -> op_field cmp lor rn_field rn lor rm_field rm
  | Cmp (rn, Imm v) -> op_field cmpi lor rn_field rn lor imm14_field v
  | B name -> op_field b lor branch_offset ~pc ~target:(resolve name) ~bits:26
  | Bl name -> op_field bl lor branch_offset ~pc ~target:(resolve name) ~bits:26
  | Bcc (cond, name) ->
    op_field bcc
    lor (cond_to_bits cond lsl 22)
    lor branch_offset ~pc ~target:(resolve name) ~bits:22
  | Br rm -> op_field br lor rm_field rm
  | Blr rm -> op_field blr lor rm_field rm
  | Ldr (rd, rn, off) -> mem_insn ldr rd rn off
  | Str (rs, rn, off) -> mem_insn str rs rn off
  | Ldrb (rd, rn, off) -> mem_insn ldrb rd rn off
  | Strb (rs, rn, off) -> mem_insn strb rs rn off
  | Ldrt (rd, rn, off) -> mem_insn ldrt rd rn off
  | Strt (rs, rn, off) -> mem_insn strt rs rn off
  | Svc v -> op_field svc lor imm16_field v
  | Eret -> op_field eret
  | Udf -> op_field udf
  | Mrc (rd, creg) ->
    if creg < 0 || creg > 0xFF then asm_error "coprocessor register %d" creg;
    op_field mrc lor rd_field rd lor creg
  | Mcr (creg, rs) ->
    if creg < 0 || creg > 0xFF then asm_error "coprocessor register %d" creg;
    op_field mcr lor rd_field rs lor creg
  | Tlbi rm -> op_field tlbi lor rm_field rm
  | Tlbiall -> op_field tlbiall

module Encoder = struct
  type nonrec insn = insn

  let size _ = 4

  let encode ~resolve ~pc insn =
    let word = encode_word ~resolve ~pc insn in
    let buf = Bytes.create 4 in
    Bytes.set_int32_le buf 0 (Int32.of_int word);
    Bytes.to_string buf
end

module Asm = Sb_asm.Assembler.Make (Encoder)
