let name = "sba32"
let id = Sb_isa.Arch_sig.Sba
let nregs = 16
let sp_reg = Insn.sp
let link_reg = Insn.lr
let max_insn_bytes = 4
let decode = Decode.decode
