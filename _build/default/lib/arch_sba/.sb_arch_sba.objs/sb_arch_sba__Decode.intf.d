lib/arch_sba/decode.mli: Sb_isa
