lib/arch_sba/insn.ml: Bytes Int32 Opcodes Printf Sb_asm Sb_isa
