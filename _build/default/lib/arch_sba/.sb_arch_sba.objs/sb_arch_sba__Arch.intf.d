lib/arch_sba/arch.mli: Sb_isa
