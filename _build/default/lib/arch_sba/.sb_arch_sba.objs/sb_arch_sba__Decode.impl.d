lib/arch_sba/decode.ml: Opcodes Sb_isa Sb_util Uop
