lib/arch_sba/arch.ml: Decode Insn Sb_isa
