lib/arch_sba/insn.mli: Sb_asm Sb_isa
