lib/arch_sba/opcodes.ml: Sb_isa
