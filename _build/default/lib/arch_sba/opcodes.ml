(* Opcode assignments for SBA-32 (bits [31:26] of the instruction word).
   Unallocated opcodes decode to the architecturally undefined instruction. *)

let nop = 0x00
let halt = 0x01
let add = 0x02
let addi = 0x03
let sub = 0x04
let subi = 0x05
let and_ = 0x06
let orr = 0x07
let xor = 0x08
let lsl_ = 0x09
let lsli = 0x0A
let lsr_ = 0x0B
let lsri = 0x0C
let asr_ = 0x0D
let asri = 0x0E
let mul = 0x0F
let movw = 0x10
let movt = 0x11
let mov = 0x12
let cmp = 0x13
let cmpi = 0x14
let b = 0x15
let bl = 0x16
let bcc = 0x17
let br = 0x18
let blr = 0x19
let ldr = 0x1A
let str = 0x1B
let ldrb = 0x1C
let strb = 0x1D
let ldrt = 0x1E
let strt = 0x1F
let svc = 0x20
let eret = 0x21
let mrc = 0x22
let mcr = 0x23
let tlbi = 0x24
let tlbiall = 0x25
let wfi = 0x26
let udf = 0x3F

let cond_to_bits = function
  | Sb_isa.Uop.Always -> 0
  | Eq -> 1
  | Ne -> 2
  | Lt -> 3
  | Ge -> 4
  | Ltu -> 5
  | Geu -> 6

let cond_of_bits = function
  | 0 -> Some Sb_isa.Uop.Always
  | 1 -> Some Eq
  | 2 -> Some Ne
  | 3 -> Some Lt
  | 4 -> Some Ge
  | 5 -> Some Ltu
  | 6 -> Some Geu
  | _ -> None
