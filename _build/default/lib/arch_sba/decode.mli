(** SBA-32 decoder: one 32-bit word into micro-ops. *)

val decode_word : addr:int -> int -> Sb_isa.Uop.decoded
(** [decode_word ~addr w] decodes the instruction word [w] fetched from
    virtual address [addr] (needed to resolve PC-relative branch targets).
    Unallocated encodings produce {!Sb_isa.Uop.Undef}. *)

val decode : fetch8:(int -> int) -> addr:int -> Sb_isa.Uop.decoded
(** {!Sb_isa.Arch_sig.ARCH}-shaped entry point. *)
