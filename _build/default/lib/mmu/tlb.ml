type entry = { vpn : int; ppn : int; ap : int; xn : bool; asid : int }

type t = {
  slots : entry option array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
  mutable page_invalidations : int;
}

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Tlb.create: entries must be a positive power of two";
  {
    slots = Array.make entries None;
    mask = entries - 1;
    hits = 0;
    misses = 0;
    flushes = 0;
    page_invalidations = 0;
  }

let entries t = Array.length t.slots

(* mix the ASID into the index so address spaces do not contend for the
   same direct-mapped slot *)
let slot_index t ~vpn ~asid = (vpn lxor (asid * 0x9E3779B1)) land t.mask

let lookup t ~vpn ~asid =
  match t.slots.(slot_index t ~vpn ~asid) with
  | Some e when e.vpn = vpn && e.asid = asid -> Some e
  | _ -> None

let probe t ~vpn ~asid =
  match lookup t ~vpn ~asid with
  | Some _ as hit ->
    t.hits <- t.hits + 1;
    hit
  | None ->
    t.misses <- t.misses + 1;
    None

let insert t entry =
  t.slots.(slot_index t ~vpn:entry.vpn ~asid:entry.asid) <- Some entry

let invalidate_page t ~vpn ~asid =
  t.page_invalidations <- t.page_invalidations + 1;
  let i = slot_index t ~vpn ~asid in
  match t.slots.(i) with
  | Some e when e.vpn = vpn && e.asid = asid -> t.slots.(i) <- None
  | _ -> ()

let flush t =
  t.flushes <- t.flushes + 1;
  Array.fill t.slots 0 (Array.length t.slots) None

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
let page_invalidations t = t.page_invalidations

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0;
  t.page_invalidations <- 0
