(** Page-table entry formats for the SBP reference platform MMU.

    Two-level tables over a 32-bit virtual address space:

    - L1 table: 1024 word entries, indexed by va\[31:22\]; each entry is
      invalid, a 4 MiB section mapping, or a pointer to an L2 table.
    - L2 table: 1024 word entries, indexed by va\[21:12\]; each entry is
      invalid or a 4 KiB page mapping.

    Entry layout: bits\[1:0\] type (0 invalid / 1 section-or-page /
    2 table pointer), bits\[5:4\] AP, bit 6 XN, high bits the output base. *)

val l1_index : int -> int
val l2_index : int -> int

(** [section_shift] is 22 (a section maps 4 MiB); [page_shift] is 12
    (a page maps 4 KiB). *)

val section_shift : int

val page_shift : int

type l1 =
  | L1_invalid
  | L1_section of { pa_base : int; ap : int; xn : bool }
  | L1_table of { l2_base : int }

type l2 =
  | L2_invalid
  | L2_page of { pa_base : int; ap : int; xn : bool }

val decode_l1 : int -> l1
val decode_l2 : int -> l2

val encode_section : pa_base:int -> ap:int -> xn:bool -> int
(** [pa_base] must be 4 MiB aligned. *)

val encode_table : l2_base:int -> int
(** [l2_base] must be 4 KiB aligned. *)

val encode_page : pa_base:int -> ap:int -> xn:bool -> int
(** [pa_base] must be 4 KiB aligned. *)

val invalid : int
