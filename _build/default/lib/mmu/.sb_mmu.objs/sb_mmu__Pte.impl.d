lib/mmu/pte.ml: Printf
