lib/mmu/pte.mli:
