lib/mmu/tlb.ml: Array
