lib/mmu/access.mli: Format
