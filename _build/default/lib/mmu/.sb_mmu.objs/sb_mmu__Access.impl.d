lib/mmu/access.ml: Format
