lib/mmu/walker.ml: Access Pte
