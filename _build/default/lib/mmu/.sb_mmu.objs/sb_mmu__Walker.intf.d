lib/mmu/walker.mli: Access
