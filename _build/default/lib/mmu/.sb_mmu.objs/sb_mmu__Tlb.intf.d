lib/mmu/tlb.mli:
