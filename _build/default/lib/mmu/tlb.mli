(** Software TLB: a direct-mapped cache of 4 KiB translations.

    Engines keep one (or several, for split I/D) of these.  Geometry is set
    at creation so the TLB ablation bench can sweep sizes.  Entries carry the
    walk attributes; permission checks happen on every lookup, so a single
    entry serves both privilege levels safely.

    Entries are tagged with the address-space identifier current when they
    were filled (see {!Sb_isa.Cregs.asid}): lookups only hit entries of the
    current ASID, and the slot index mixes the ASID so two address spaces do
    not thrash one slot.  Callers that do not use ASIDs pass 0
    throughout. *)

type entry = {
  vpn : int;  (** va lsr 12 *)
  ppn : int;  (** pa lsr 12 *)
  ap : int;
  xn : bool;
  asid : int;
}

type t

val create : entries:int -> t
(** [entries] must be a power of two. *)

val entries : t -> int

val lookup : t -> vpn:int -> asid:int -> entry option
(** Does not update hit/miss statistics; use [probe] in engine paths. *)

val probe : t -> vpn:int -> asid:int -> entry option
(** Like [lookup] but counts a hit or a miss. *)

val insert : t -> entry -> unit

val invalidate_page : t -> vpn:int -> asid:int -> unit
(** ASID-qualified invalidate-by-VA (ARM's TLBIMVA): O(1).  Guests changing
    mappings shared across address spaces must use a full flush. *)

val flush : t -> unit

val hits : t -> int
val misses : t -> int
val flushes : t -> int
val page_invalidations : t -> int

val reset_stats : t -> unit
