(** Hardware page-table walker.

    Walks the two-level tables rooted at TTBR.  The walker does not check
    permissions — it returns the mapping attributes and lets the caller
    (engine memory path or TLB fill) apply {!Access.Ap.permits}, which is
    what lets a single walk result be cached and re-checked per access. *)

type mapping = {
  va_page : int;   (** 4 KiB-aligned VA of the translated page *)
  pa_page : int;   (** 4 KiB-aligned PA it maps to *)
  ap : int;
  xn : bool;
  from_section : bool;  (** true when the mapping came from an L1 section *)
  levels : int;         (** table loads performed: 1 for section, 2 for page *)
}

val walk :
  read32:(int -> int) ->
  ttbr:int ->
  va:int ->
  (mapping, Access.fault) result
(** [read32] reads guest physical memory (table entries are physical). *)

val translate :
  read32:(int -> int) ->
  ttbr:int ->
  va:int ->
  kind:Access.kind ->
  priv:Access.privilege ->
  (int, Access.fault) result
(** Full translation including the permission check; returns the physical
    address for [va]. *)
