type mapping = {
  va_page : int;
  pa_page : int;
  ap : int;
  xn : bool;
  from_section : bool;
  levels : int;
}

let walk ~read32 ~ttbr ~va =
  let l1_addr = (ttbr land 0xFFFF_F000) + (Pte.l1_index va * 4) in
  match Pte.decode_l1 (read32 l1_addr) with
  | Pte.L1_invalid -> Error Access.Translation
  | Pte.L1_section { pa_base; ap; xn } ->
    (* normalise the section to the 4 KiB granule containing [va] so that
       TLBs can cache sections and pages uniformly *)
    let va_page = va land lnot 0xFFF in
    let offset_in_section = va land ((1 lsl Pte.section_shift) - 1) in
    let pa_page = pa_base + (offset_in_section land lnot 0xFFF) in
    Ok { va_page; pa_page; ap; xn; from_section = true; levels = 1 }
  | Pte.L1_table { l2_base } -> (
    let l2_addr = l2_base + (Pte.l2_index va * 4) in
    match Pte.decode_l2 (read32 l2_addr) with
    | Pte.L2_invalid -> Error Access.Translation
    | Pte.L2_page { pa_base; ap; xn } ->
      Ok
        {
          va_page = va land lnot 0xFFF;
          pa_page = pa_base;
          ap;
          xn;
          from_section = false;
          levels = 2;
        })

let translate ~read32 ~ttbr ~va ~kind ~priv =
  match walk ~read32 ~ttbr ~va with
  | Error _ as e -> e
  | Ok m ->
    if Access.Ap.permits ~ap:m.ap ~xn:m.xn kind priv then
      Ok (m.pa_page lor (va land 0xFFF))
    else Error Access.Permission
