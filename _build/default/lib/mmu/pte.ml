let section_shift = 22
let page_shift = 12

let l1_index va = (va lsr section_shift) land 0x3FF
let l2_index va = (va lsr page_shift) land 0x3FF

type l1 =
  | L1_invalid
  | L1_section of { pa_base : int; ap : int; xn : bool }
  | L1_table of { l2_base : int }

type l2 =
  | L2_invalid
  | L2_page of { pa_base : int; ap : int; xn : bool }

let ap_of entry = (entry lsr 4) land 0x3
let xn_of entry = entry land 0x40 <> 0

let decode_l1 entry =
  match entry land 0x3 with
  | 1 ->
    L1_section
      {
        pa_base = entry land 0xFFC0_0000;
        ap = ap_of entry;
        xn = xn_of entry;
      }
  | 2 -> L1_table { l2_base = entry land 0xFFFF_F000 }
  | _ -> L1_invalid

let decode_l2 entry =
  match entry land 0x3 with
  | 1 ->
    L2_page
      {
        pa_base = entry land 0xFFFF_F000;
        ap = ap_of entry;
        xn = xn_of entry;
      }
  | _ -> L2_invalid

let check_aligned what base align =
  if base land (align - 1) <> 0 then
    invalid_arg (Printf.sprintf "Pte.%s: base 0x%x not %d-aligned" what base align)

let encode_section ~pa_base ~ap ~xn =
  check_aligned "encode_section" pa_base (1 lsl section_shift);
  pa_base lor (ap lsl 4) lor (if xn then 0x40 else 0) lor 1

let encode_table ~l2_base =
  check_aligned "encode_table" l2_base (1 lsl page_shift);
  l2_base lor 2

let encode_page ~pa_base ~ap ~xn =
  check_aligned "encode_page" pa_base (1 lsl page_shift);
  pa_base lor (ap lsl 4) lor (if xn then 0x40 else 0) lor 1

let invalid = 0
