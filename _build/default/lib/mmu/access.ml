type kind = Read | Write | Execute

type privilege = User | Kernel

type fault = Translation | Permission

module Ap = struct
  let kernel_only = 0
  let user_read = 1
  let user_full = 2
  let kernel_read = 3

  let permits ~ap ~xn kind priv =
    match kind with
    | Execute ->
      if xn then false
      else (
        match priv with
        | Kernel -> true
        | User -> ap = user_read || ap = user_full)
    | Read -> (
      match priv with
      | Kernel -> true
      | User -> ap = user_read || ap = user_full)
    | Write -> (
      match priv with
      | Kernel -> ap <> kernel_read
      | User -> ap = user_full)
end

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Read -> "read" | Write -> "write" | Execute -> "execute")

let pp_fault ppf f =
  Format.pp_print_string ppf
    (match f with Translation -> "translation" | Permission -> "permission")
