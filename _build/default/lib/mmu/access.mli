(** Access kinds, privileges and translation faults shared by the walker,
    the TLBs and every engine's memory path. *)

type kind = Read | Write | Execute

type privilege = User | Kernel

type fault =
  | Translation  (** no valid mapping for the address *)
  | Permission   (** mapping exists but forbids this access *)

(** Access-permission field values, mirroring a simplified ARM AP encoding. *)
module Ap : sig
  (** [kernel_only] = 0: kernel RW, user no access.
      [user_read] = 1: kernel RW, user RO.
      [user_full] = 2: kernel RW, user RW.
      [kernel_read] = 3: kernel RO, user no access. *)

  val kernel_only : int

  val user_read : int
  val user_full : int
  val kernel_read : int

  val permits : ap:int -> xn:bool -> kind -> privilege -> bool
end

val pp_kind : Format.formatter -> kind -> unit
val pp_fault : Format.formatter -> fault -> unit
