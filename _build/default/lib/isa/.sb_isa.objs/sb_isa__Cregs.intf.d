lib/isa/cregs.mli:
