lib/isa/disasm.ml: Arch_sig Buffer Char Format List Printf String Uop
