lib/isa/cregs.ml: Printf
