lib/isa/uop.mli: Format
