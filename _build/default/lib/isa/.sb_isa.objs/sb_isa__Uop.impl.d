lib/isa/uop.ml: Format List Printf Sb_util
