lib/isa/disasm.mli: Arch_sig Format
