lib/isa/arch_sig.ml: Uop
