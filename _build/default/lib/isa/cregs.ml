let sctlr = 0
let ttbr = 1
let vbar = 2
let dacr = 3
let far = 4
let esr = 5
let elr = 6
let spsr = 7
let cpuid = 8
let fpctl = 9
let tpidr0 = 10
let tpidr1 = 11
let asid = 12
let count = 13

let name = function
  | 0 -> "SCTLR"
  | 1 -> "TTBR"
  | 2 -> "VBAR"
  | 3 -> "DACR"
  | 4 -> "FAR"
  | 5 -> "ESR"
  | 6 -> "ELR"
  | 7 -> "SPSR"
  | 8 -> "CPUID"
  | 9 -> "FPCTL"
  | 10 -> "TPIDR0"
  | 11 -> "TPIDR1"
  | 12 -> "ASID"
  | n -> Printf.sprintf "CP%d" n

let sctlr_mmu_enable = 1
