(** Architecture-neutral micro-operation IR.

    Both guest ISAs (SBA-32 and VLX-32) decode into this IR, and every
    execution engine — interpreter, DBT, detailed model, direct execution —
    consumes it.  This is the retargetability seam: porting the simulator
    family to a new guest ISA means writing one decoder into this IR, exactly
    as porting SimBench itself means writing one support package. *)

type cond =
  | Always
  | Eq
  | Ne
  | Lt   (** signed less-than *)
  | Ge   (** signed greater-or-equal *)
  | Ltu  (** unsigned less-than *)
  | Geu  (** unsigned greater-or-equal *)

type width = W8 | W16 | W32

type alu_op = Add | Sub | And_ | Orr | Xor | Lsl | Lsr | Asr | Mul

type operand =
  | Reg of int
  | Imm of int

type branch_target =
  | Direct of int   (** absolute virtual address, resolved at decode time *)
  | Indirect of int (** register holding the target *)

type t =
  | Nop
  | Alu of {
      op : alu_op;
      rd : int option;  (** [None] discards the result (compare-only) *)
      rn : operand;
      rm : operand;
      set_flags : bool;
    }
  | Load of { width : width; rd : int; base : operand; offset : int; user : bool }
      (** [user] marks a non-privileged access (LDRT-style). *)
  | Store of { width : width; rs : int; base : operand; offset : int; user : bool }
  | Branch of { cond : cond; target : branch_target; link : int option }
      (** [link = Some r] writes the return address into register [r]. *)
  | Svc of int
  | Undef
  | Eret
  | Cop_read of { rd : int; creg : int }
  | Cop_write of { creg : int; src : operand }
  | Tlb_inv_page of int  (** register holding the VA to invalidate *)
  | Tlb_inv_all
  | Wfi
  | Halt

type decoded = {
  addr : int;     (** virtual address of the instruction *)
  length : int;   (** encoded length in bytes *)
  uops : t list;
  terminates_block : bool;
      (** true when a basic-block builder must stop after this instruction *)
}

val terminates_block : t -> bool
(** Branches, exception-raising operations and translation-affecting system
    operations end a basic block. *)

val make_decoded : addr:int -> length:int -> t list -> decoded

val writes_flags : t -> bool
val reads_flags : t -> bool

val eval_cond : cond -> n:bool -> z:bool -> c:bool -> v:bool -> bool
(** Architectural condition evaluation shared by every engine. *)

val pp : Format.formatter -> t -> unit
val pp_decoded : Format.formatter -> decoded -> unit
