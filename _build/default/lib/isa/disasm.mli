(** Generic disassembler: walks an image with an architecture's decoder and
    renders one line per instruction (address, raw bytes, micro-ops).

    Used by the CLI's [disasm] subcommand and handy when debugging
    benchmark code generation. *)

type line = {
  addr : int;
  bytes : string;  (** raw encoded bytes *)
  text : string;   (** rendered micro-ops *)
}

val decode_range :
  arch:(module Arch_sig.ARCH) ->
  read8:(int -> int) ->
  base:int ->
  len:int ->
  line list
(** Decode [len] bytes starting at [base].  The walk is linear (no control
    flow following); data words disassemble as whatever they decode to,
    like any flat disassembler. *)

val pp_line : Format.formatter -> line -> unit

val dump :
  arch:(module Arch_sig.ARCH) -> read8:(int -> int) -> base:int -> len:int -> string
(** The whole range as text. *)
