type line = { addr : int; bytes : string; text : string }

let render_uops uops =
  String.concat "; " (List.map (fun u -> Format.asprintf "%a" Uop.pp u) uops)

let decode_range ~arch ~read8 ~base ~len =
  let (module A : Arch_sig.ARCH) = arch in
  let stop = base + len in
  let rec go addr acc =
    if addr >= stop then List.rev acc
    else begin
      let d = A.decode ~fetch8:read8 ~addr in
      let length = max 1 d.Uop.length in
      let bytes = String.init length (fun i -> Char.chr (read8 (addr + i) land 0xFF)) in
      let line = { addr; bytes; text = render_uops d.Uop.uops } in
      go (addr + length) (line :: acc)
    end
  in
  go base []

let pp_line ppf { addr; bytes; text } =
  let hex =
    String.concat "" (List.init (String.length bytes) (fun i ->
        Printf.sprintf "%02x" (Char.code bytes.[i])))
  in
  Format.fprintf ppf "%08x  %-12s  %s" addr hex text

let dump ~arch ~read8 ~base ~len =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line -> Buffer.add_string buf (Format.asprintf "%a\n" pp_line line))
    (decode_range ~arch ~read8 ~base ~len);
  Buffer.contents buf
