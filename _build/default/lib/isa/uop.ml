type cond = Always | Eq | Ne | Lt | Ge | Ltu | Geu

type width = W8 | W16 | W32

type alu_op = Add | Sub | And_ | Orr | Xor | Lsl | Lsr | Asr | Mul

type operand = Reg of int | Imm of int

type branch_target = Direct of int | Indirect of int

type t =
  | Nop
  | Alu of {
      op : alu_op;
      rd : int option;
      rn : operand;
      rm : operand;
      set_flags : bool;
    }
  | Load of { width : width; rd : int; base : operand; offset : int; user : bool }
  | Store of { width : width; rs : int; base : operand; offset : int; user : bool }
  | Branch of { cond : cond; target : branch_target; link : int option }
  | Svc of int
  | Undef
  | Eret
  | Cop_read of { rd : int; creg : int }
  | Cop_write of { creg : int; src : operand }
  | Tlb_inv_page of int
  | Tlb_inv_all
  | Wfi
  | Halt

type decoded = {
  addr : int;
  length : int;
  uops : t list;
  terminates_block : bool;
}

let terminates_block = function
  | Branch _ | Svc _ | Undef | Eret | Wfi | Halt -> true
  | Cop_write _ | Tlb_inv_page _ | Tlb_inv_all ->
    (* may change address translation or privilege; end the block so the
       dispatch loop re-resolves the execution environment *)
    true
  | Nop | Alu _ | Load _ | Store _ | Cop_read _ -> false

let make_decoded ~addr ~length uops =
  {
    addr;
    length;
    uops;
    terminates_block = List.exists terminates_block uops;
  }

let writes_flags = function
  | Alu { set_flags; _ } -> set_flags
  | _ -> false

let reads_flags = function
  | Branch { cond; _ } -> cond <> Always
  | _ -> false

let eval_cond cond ~n ~z ~c ~v =
  match cond with
  | Always -> true
  | Eq -> z
  | Ne -> not z
  | Lt -> n <> v
  | Ge -> n = v
  | Ltu -> not c
  | Geu -> c

let pp_cond ppf cond =
  let s =
    match cond with
    | Always -> "al"
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Ge -> "ge"
    | Ltu -> "ltu"
    | Geu -> "geu"
  in
  Format.pp_print_string ppf s

let pp_alu ppf op =
  let s =
    match op with
    | Add -> "add"
    | Sub -> "sub"
    | And_ -> "and"
    | Orr -> "orr"
    | Xor -> "xor"
    | Lsl -> "lsl"
    | Lsr -> "lsr"
    | Asr -> "asr"
    | Mul -> "mul"
  in
  Format.pp_print_string ppf s

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "#%d" i

let pp_width ppf w =
  Format.pp_print_string ppf (match w with W8 -> "b" | W16 -> "h" | W32 -> "")

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Alu { op; rd; rn; rm; set_flags } ->
    let dest =
      match rd with Some r -> Printf.sprintf "r%d" r | None -> "_"
    in
    Format.fprintf ppf "%a%s %s, %a, %a" pp_alu op
      (if set_flags then "s" else "")
      dest pp_operand rn pp_operand rm
  | Load { width; rd; base; offset; user } ->
    Format.fprintf ppf "ldr%a%s r%d, [%a, #%d]" pp_width width
      (if user then "t" else "")
      rd pp_operand base offset
  | Store { width; rs; base; offset; user } ->
    Format.fprintf ppf "str%a%s r%d, [%a, #%d]" pp_width width
      (if user then "t" else "")
      rs pp_operand base offset
  | Branch { cond; target; link } ->
    let mnemonic = if link <> None then "call" else "b" in
    (match target with
    | Direct addr -> Format.fprintf ppf "%s.%a %a" mnemonic pp_cond cond Sb_util.U32.pp addr
    | Indirect r -> Format.fprintf ppf "%s.%a r%d" mnemonic pp_cond cond r)
  | Svc n -> Format.fprintf ppf "svc #%d" n
  | Undef -> Format.pp_print_string ppf "udf"
  | Eret -> Format.pp_print_string ppf "eret"
  | Cop_read { rd; creg } -> Format.fprintf ppf "mrc r%d, cp%d" rd creg
  | Cop_write { creg; src } -> Format.fprintf ppf "mcr cp%d, %a" creg pp_operand src
  | Tlb_inv_page r -> Format.fprintf ppf "tlbi r%d" r
  | Tlb_inv_all -> Format.pp_print_string ppf "tlbiall"
  | Wfi -> Format.pp_print_string ppf "wfi"
  | Halt -> Format.pp_print_string ppf "halt"

let pp_decoded ppf d =
  Format.fprintf ppf "%a: " Sb_util.U32.pp d.addr;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp ppf d.uops
