(** Guest-architecture signature.

    An architecture is exactly a decoder into the shared micro-op IR plus a
    handful of register-file conventions.  Engines are functors over this
    signature, so adding a guest ISA retargets all five engines at once. *)

type arch_id = Sba | Vlx

let arch_id_name = function Sba -> "sba32" | Vlx -> "vlx32"

module type ARCH = sig
  val name : string
  val id : arch_id

  val nregs : int
  val sp_reg : int
  val link_reg : int

  val max_insn_bytes : int
  (** Upper bound on encoded instruction length; engines use it to reason
      about page-crossing fetches. *)

  val decode : fetch8:(int -> int) -> addr:int -> Uop.decoded
  (** Decode one instruction at virtual address [addr].  [fetch8 a] returns
      the byte at virtual address [a] and may raise the engine's fetch-fault
      exception, which [decode] must let escape untouched.  Undefined
      encodings decode to a {!Uop.Undef} micro-op (never an error), so the
      undefined-instruction exception is raised architecturally at execute
      time. *)
end
