(** Coprocessor (system control) register numbering, shared by both guest
    ISAs and all engines. *)

(** Register indices. *)

val sctlr : int
(** System control; bit 0 enables the MMU. *)

val ttbr : int
(** Translation table base (physical, 4 KiB aligned). *)

val vbar : int
(** Exception vector base. *)

val dacr : int
(** Domain access control — the architecturally "safe" register the
    Coprocessor Access benchmark reads (no side effects, never optimised to a
    constant because it is writable). *)

val far : int
(** Fault address register. *)

val esr : int
(** Exception syndrome (cause code). *)

val elr : int
(** Exception link register: return address for [ERET]. *)

val spsr : int
(** Saved program status. *)

val cpuid : int
(** Read-only implementation identifier. *)

val fpctl : int
(** Floating-point/coprocessor control; VLX's COPRESET writes 0 here. *)

val tpidr0 : int
(** Software thread-ID / scratch registers (as on ARM): interrupt handlers
    bank live general registers here, since asynchronous interrupts may hit
    while any general register is live. *)

val tpidr1 : int

val asid : int
(** Address-space identifier (the ARM ASID / x86 PCID analog the paper
    defers to future work).  Translations cached in tagged TLBs are keyed
    by it, so switching address spaces needs no TLB flush. *)

val count : int
(** Number of architected coprocessor registers. *)

val name : int -> string

val sctlr_mmu_enable : int
(** Bit mask within SCTLR. *)
