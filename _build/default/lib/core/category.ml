type t =
  | Code_generation
  | Control_flow
  | Exception_handling
  | Io
  | Memory_system
  | Application

let all = [ Code_generation; Control_flow; Exception_handling; Io; Memory_system ]

let name = function
  | Code_generation -> "Code Generation"
  | Control_flow -> "Control Flow"
  | Exception_handling -> "Exception Handling"
  | Io -> "I/O"
  | Memory_system -> "Memory System"
  | Application -> "Application"

let of_name s =
  List.find_opt (fun c -> String.lowercase_ascii (name c) = String.lowercase_ascii s) all
