(** Platform support package: the memory-map and address-space knowledge a
    SimBench port needs.  Porting to a new board means providing one of
    these records (the paper's "around 200 lines of C per platform"). *)

type t = {
  name : string;
  ram_size : int;
  code_base : int;       (** load address of the benchmark image *)
  stack_top : int;
  page_table_base : int; (** physical address of the L1 table *)
  l2_table_base : int;   (** physical arena for L2 tables *)
  scratch_base : int;    (** physical data area benchmarks may clobber *)
  scratch_pages : int;
  uart_base : int;
  intc_base : int;
  timer_base : int;
  devid_base : int;
  bench_base : int;
  device_section_va : int;  (** 4 MiB-aligned VA covering all device windows *)
  fault_va : int;           (** a VA guaranteed never mapped *)
  cold_region_va : int;     (** VA of the large page-mapped region *)
  cold_region_pages : int;
  user_page_va : int;       (** VA of the user-accessible page *)
  softint_mask : int;       (** INTC line mask used for software interrupts *)
  heap_base : int;          (** physical arena for application workloads *)
  heap_pages : int;
}

val sbp_ref : t
(** The default platform, matching {!Sb_sim.Machine.Map}. *)

val sbp_mini : t
(** A constrained board: 8 MiB of RAM, a quarter-size page-mapped region
    and a small scratch arena.  Exists to keep the suite honest about its
    platform parameterisation (examples/port_new_platform.ml builds a third
    one ad hoc). *)

val all : t list

val machine : t -> ?now:(unit -> float) -> unit -> Sb_sim.Machine.t
(** Build a machine laid out for this platform. *)
