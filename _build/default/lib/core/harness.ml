type outcome = {
  bench_name : string;
  engine_name : string;
  arch_name : string;
  iters : int;
  scale : int;
  result : Sb_sim.Run_result.t;
  kernel_seconds : float;
  kernel_insns : int;
  tested_ops : int;
}

exception Benchmark_failed of string

let default_scale = 20_000

let fail fmt = Printf.ksprintf (fun s -> raise (Benchmark_failed s)) fmt

let run ?(platform = Platform.sbp_ref) ?(scale = default_scale) ?iters ~support
    ~engine bench =
  let (module S : Support.SUPPORT) = support in
  let iters =
    match iters with
    | Some n -> max 1 n
    | None -> max 10 (bench.Bench.default_iters / scale)
  in
  let machine = Platform.machine platform ~now:Unix.gettimeofday () in
  Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev iters;
  let program = Rt.program ~support ~platform ~bench in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine machine in
  let engine_name = result.Sb_sim.Run_result.engine in
  (match result.Sb_sim.Run_result.stop with
  | Sb_sim.Run_result.Halted -> ()
  | stop ->
    fail "%s on %s stopped early (%s)" bench.Bench.name engine_name
      (Format.asprintf "%a" Sb_sim.Run_result.pp_stop stop));
  if result.Sb_sim.Run_result.exit_code <> 0 then
    fail "%s on %s: guest reported exit code 0x%x" bench.Bench.name engine_name
      result.Sb_sim.Run_result.exit_code;
  let kernel_seconds =
    match result.Sb_sim.Run_result.kernel_seconds with
    | Some s -> s
    | None -> fail "%s on %s: kernel phase never signalled" bench.Bench.name engine_name
  in
  let kernel_insns =
    match Sb_sim.Run_result.kernel_insns result with
    | Some n -> n
    | None -> fail "%s on %s: no kernel perf snapshot" bench.Bench.name engine_name
  in
  {
    bench_name = bench.Bench.name;
    engine_name;
    arch_name = S.name;
    iters;
    scale;
    result;
    kernel_seconds;
    kernel_insns;
    tested_ops = iters * bench.Bench.ops_per_iter;
  }

let density outcome =
  if outcome.kernel_insns = 0 then nan
  else float_of_int outcome.tested_ops /. float_of_int outcome.kernel_insns

let run_suite ?platform ?scale ~support ~engine () =
  List.map (fun bench -> run ?platform ?scale ~support ~engine bench) Suite.all
