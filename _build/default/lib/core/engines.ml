type arch = Sb_isa.Arch_sig.arch_id

module Interp_sba = Sb_interp.Interp.Make (Sb_arch_sba.Arch)
module Interp_vlx = Sb_interp.Interp.Make (Sb_arch_vlx.Arch)
module Dbt_sba = Sb_dbt.Dbt.Make (Sb_arch_sba.Arch)
module Dbt_vlx = Sb_dbt.Dbt.Make (Sb_arch_vlx.Arch)
module Detailed_sba = Sb_detailed.Detailed.Make (Sb_arch_sba.Arch)
module Detailed_vlx = Sb_detailed.Detailed.Make (Sb_arch_vlx.Arch)
module Virt_sba = Sb_virt.Virt.Make_virt (Sb_arch_sba.Arch)
module Virt_vlx = Sb_virt.Virt.Make_virt (Sb_arch_vlx.Arch)
module Native_sba = Sb_virt.Virt.Make_native (Sb_arch_sba.Arch)
module Native_vlx = Sb_virt.Virt.Make_native (Sb_arch_vlx.Arch)

let pick arch ~sba ~vlx =
  match arch with Sb_isa.Arch_sig.Sba -> sba | Sb_isa.Arch_sig.Vlx -> vlx

let interp arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Interp_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Interp_vlx)

let dbt arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Dbt_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Dbt_vlx)

let detailed arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Detailed_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Detailed_vlx)

let virt arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Virt_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Virt_vlx)

let native arch : Sb_sim.Engine.t =
  pick arch ~sba:(module Native_sba : Sb_sim.Engine.ENGINE) ~vlx:(module Native_vlx)

let dbt_configured arch config : Sb_sim.Engine.t =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    (module Sb_dbt.Dbt.Make_configured
              (Sb_arch_sba.Arch)
              (struct
                let config = config
              end))
  | Sb_isa.Arch_sig.Vlx ->
    (module Sb_dbt.Dbt.Make_configured
              (Sb_arch_vlx.Arch)
              (struct
                let config = config
              end))

let dbt_version arch name =
  match Sb_dbt.Version.find name with
  | Some config -> dbt_configured arch config
  | None -> raise Not_found

let interp_configured arch config : Sb_sim.Engine.t =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    (module Sb_interp.Interp.Make_configured
              (Sb_arch_sba.Arch)
              (struct
                let config = config
              end))
  | Sb_isa.Arch_sig.Vlx ->
    (module Sb_interp.Interp.Make_configured
              (Sb_arch_vlx.Arch)
              (struct
                let config = config
              end))

let paper_set arch =
  match arch with
  | Sb_isa.Arch_sig.Sba ->
    [
      ("QEMU-DBT", dbt arch);
      ("SimIt-ARM", interp arch);
      ("Gem5", detailed arch);
      ("QEMU-KVM", virt arch);
      ("Hardware", native arch);
    ]
  | Sb_isa.Arch_sig.Vlx ->
    (* the paper's x86 table has no SimIt or Gem5 columns *)
    [ ("QEMU-DBT", dbt arch); ("QEMU-KVM", virt arch); ("Hardware", native arch) ]

let all_arches = [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

let support arch : Support.t =
  pick arch ~sba:(module Sba_support : Support.SUPPORT) ~vlx:(module Vlx_support)
