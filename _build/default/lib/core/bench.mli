(** A SimBench benchmark definition.

    Benchmarks follow the paper's three-phase structure: a setup phase, a
    timed kernel executed for a configurable number of iterations, and a
    cleanup phase.  Only the kernel is timed — the runtime ({!Rt}) signals
    the phase boundaries to the harness through the bench device.

    Register conventions inside benchmark code (see {!Pasm}): [v4] is the
    runtime's iteration counter, [v3] is exception-handler scratch, and the
    runtime clobbers [v0] and [v3] between setup and the kernel, so values
    that must survive from setup into the kernel live in [v1]/[v2]. *)

type body = {
  setup : Pasm.op list;
  kernel : Pasm.op list;  (** one iteration of the timed kernel *)
  cleanup : Pasm.op list;
  functions : Pasm.op list;
      (** additional code/data (call chains, rewritten blocks, pointer
          tables) placed after the main control flow *)
  handlers : (Sb_sim.Exn.vector * Pasm.op list) list;
      (** exception-handler overrides; unhandled vectors report failure *)
  needs_irqs : bool;
}

val empty_body : body

type t = {
  name : string;
  category : Category.t;
  description : string;
  default_iters : int;
      (** the Figure 3 iteration count (scaled down by the harness) *)
  ops_per_iter : int;
      (** tested operations per kernel iteration, for op-density reporting *)
  platform_specific : bool;  (** the dagger marker in Figure 3 *)
  body : support:Support.t -> platform:Platform.t -> body;
}
