type reg = int

let v0 = 0
let v1 = 1
let v2 = 2
let v3 = 3
let v4 = 4
let sp = 5
let lr = 6

type operand = R of reg | I of int

type width = W8 | W32

type op =
  | L of string
  | Li of reg * int
  | La of reg * string
  | Mov of reg * reg
  | Alu of Sb_isa.Uop.alu_op * reg * reg * operand
  | Cmp of reg * operand
  | Br of Sb_isa.Uop.cond * string
  | Jmp of string
  | Jmp_reg of reg
  | Call of string
  | Call_reg of reg
  | Ret
  | Load of width * reg * reg * int
  | Store of width * reg * reg * int
  | Load_user of reg * reg * int
  | Store_user of reg * reg * int
  | Syscall
  | Undef
  | Eret
  | Nop
  | Halt
  | Wfi
  | Cop_read of reg * int
  | Cop_write of int * reg
  | Cop_write_lr of int
  | Cop_safe_read of reg
  | Tlb_inv_page of reg
  | Tlb_inv_all
  | Raw_word of int
  | Word_sym of string
  | Align of int
  | Org of int
  | Space of int

let reg_name r =
  if r <= 4 then Printf.sprintf "v%d" r
  else if r = sp then "sp"
  else if r = lr then "lr"
  else Printf.sprintf "v?%d" r

let operand_name = function
  | R r -> reg_name r
  | I i -> Printf.sprintf "#%d" i

let pp ppf op =
  let p fmt = Format.fprintf ppf fmt in
  match op with
  | L s -> p "%s:" s
  | Li (r, v) -> p "li %s, 0x%x" (reg_name r) v
  | La (r, s) -> p "la %s, %s" (reg_name r) s
  | Mov (a, b) -> p "mov %s, %s" (reg_name a) (reg_name b)
  | Alu (o, d, a, b) ->
    p "alu.%s %s, %s, %s"
      (match o with
      | Sb_isa.Uop.Add -> "add"
      | Sub -> "sub"
      | And_ -> "and"
      | Orr -> "orr"
      | Xor -> "xor"
      | Lsl -> "lsl"
      | Lsr -> "lsr"
      | Asr -> "asr"
      | Mul -> "mul")
      (reg_name d) (reg_name a) (operand_name b)
  | Cmp (r, o) -> p "cmp %s, %s" (reg_name r) (operand_name o)
  | Br (_, s) -> p "bcc %s" s
  | Jmp s -> p "jmp %s" s
  | Jmp_reg r -> p "jmp %s" (reg_name r)
  | Call s -> p "call %s" s
  | Call_reg r -> p "call %s" (reg_name r)
  | Ret -> p "ret"
  | Load (_, d, b, o) -> p "load %s, [%s+%d]" (reg_name d) (reg_name b) o
  | Store (_, s, b, o) -> p "store %s, [%s+%d]" (reg_name s) (reg_name b) o
  | Load_user (d, b, o) -> p "load.user %s, [%s+%d]" (reg_name d) (reg_name b) o
  | Store_user (s, b, o) -> p "store.user %s, [%s+%d]" (reg_name s) (reg_name b) o
  | Syscall -> p "syscall"
  | Undef -> p "undef"
  | Eret -> p "eret"
  | Nop -> p "nop"
  | Halt -> p "halt"
  | Wfi -> p "wfi"
  | Cop_read (r, c) -> p "cop.read %s, cp%d" (reg_name r) c
  | Cop_write (c, r) -> p "cop.write cp%d, %s" c (reg_name r)
  | Cop_write_lr c -> p "cop.write cp%d, lr" c
  | Cop_safe_read r -> p "cop.safe %s" (reg_name r)
  | Tlb_inv_page r -> p "tlbi %s" (reg_name r)
  | Tlb_inv_all -> p "tlbiall"
  | Raw_word w -> p ".word 0x%x" w
  | Word_sym s -> p ".word %s" s
  | Align n -> p ".align %d" n
  | Org a -> p ".org 0x%x" a
  | Space n -> p ".space %d" n
