(** Portable benchmark assembly.

    SimBench benchmarks are written once, against this small portable
    instruction set, and lowered to each guest ISA by an architecture
    support package ({!Sba_support}, {!Vlx_support}) — the OCaml analog of
    the paper's "benchmarks in standards-compliant C, architecture specifics
    in support packages" structure.  Porting the suite to a new guest ISA
    means writing one lowering, not touching any benchmark.

    Register model: five virtual registers [v0..v4] (narrow enough to fit
    the smallest guest register file), plus [sp] and [lr].  Conventions used
    by the runtime and benchmark bodies:
    - [v4] is the runtime's iteration counter — kernels must preserve it;
    - [v3] is the exception-handler scratch register — kernels must not keep
      a live value in it across a faulting operation. *)

type reg = int

val v0 : reg
val v1 : reg
val v2 : reg
val v3 : reg
val v4 : reg
val sp : reg
val lr : reg

type operand = R of reg | I of int

type width = W8 | W32

type op =
  | L of string  (** label *)
  | Li of reg * int
  | La of reg * string
  | Mov of reg * reg
  | Alu of Sb_isa.Uop.alu_op * reg * reg * operand
  | Cmp of reg * operand
  | Br of Sb_isa.Uop.cond * string
  | Jmp of string
  | Jmp_reg of reg
  | Call of string
  | Call_reg of reg
  | Ret  (** jump through [lr] *)
  | Load of width * reg * reg * int   (** rd, \[rn + #off\] *)
  | Store of width * reg * reg * int  (** rs, \[rn + #off\] *)
  | Load_user of reg * reg * int
      (** non-privileged load; lowered to [Nop] on ISAs without one *)
  | Store_user of reg * reg * int
  | Syscall
  | Undef
  | Eret
  | Nop
  | Halt
  | Wfi
  | Cop_read of reg * int
  | Cop_write of int * reg
  | Cop_write_lr of int  (** coprocessor\[creg\] := lr (the unwind handler) *)
  | Cop_safe_read of reg
      (** the architecture's side-effect-free coprocessor access *)
  | Tlb_inv_page of reg
  | Tlb_inv_all
  | Raw_word of int
  | Word_sym of string
  | Align of int
  | Org of int
  | Space of int

val pp : Format.formatter -> op -> unit
