(** VLX-32 architecture support package: lowers {!Pasm} to VLX-32.

    VLX has no non-privileged access instructions, so [Load_user] and
    [Store_user] lower to [Nop] — the Nonprivileged Access benchmark is a
    no-op on this architecture, exactly as on the paper's x86 port. *)

include Support.SUPPORT
