(** Extension benchmarks.

    The paper's conclusion lists "the development of additional targeted
    benchmarks" as future work; these three follow the SimBench methodology
    (three phases, portable kernels, one isolated mechanism each) and cover
    paths the original 18 leave unmeasured. *)

val nested_exception : Bench.t
(** A system call whose handler itself takes (and recovers from) a data
    abort: exercises exception-state banking and the nested entry/exit
    paths.  Handlers must spill ELR/SPSR to memory around the inner fault,
    exactly as a real kernel does. *)

val page_table_modification : Bench.t
(** Remap a page (rewrite its PTE), invalidate its TLB entry and touch it:
    the remap-latency path behind copy-on-write and page migration.  Each
    iteration must observe the {e new} mapping — caching the old translation
    past the TLBI is a correctness bug this benchmark would expose. *)

val exception_return : Bench.t
(** Minimal ERET round trip: the system-call benchmark measures entry +
    return; this isolates return by entering once per iteration through a
    pre-faulted path with an empty handler chain of ERETs. *)

val context_switch : Bench.t
(** Alternate ASIDs over a small working set: measures the cost of address-
    space switches, separating ASID-tagged TLB implementations (both spaces
    stay cached) from untagged ones (full flush per switch).  This is the
    ASID/PCID support the paper explicitly defers to future work. *)

val all : Bench.t list

val find : string -> Bench.t option
