(** Engine registry: every execution engine instantiated for both guest
    ISAs, plus DBT engines configured for arbitrary version configurations.

    Paper-role naming: [dbt] plays QEMU-DBT, [interp] plays SimIt-ARM,
    [detailed] plays Gem5, [virt] plays QEMU-KVM, [native] plays the
    hardware baseline. *)

type arch = Sb_isa.Arch_sig.arch_id

val interp : arch -> Sb_sim.Engine.t
val dbt : arch -> Sb_sim.Engine.t
val detailed : arch -> Sb_sim.Engine.t
val virt : arch -> Sb_sim.Engine.t
val native : arch -> Sb_sim.Engine.t

val dbt_configured : arch -> Sb_dbt.Config.t -> Sb_sim.Engine.t
(** A DBT engine with an explicit configuration (used by the version sweep
    and the ablation benches). *)

val dbt_version : arch -> string -> Sb_sim.Engine.t
(** By {!Sb_dbt.Version} release name; raises [Not_found] on an unknown
    name. *)

val interp_configured : arch -> Sb_interp.Interp.Config.t -> Sb_sim.Engine.t

val paper_set : arch -> (string * Sb_sim.Engine.t) list
(** The Figure 7 column set, labelled with the paper's platform names. *)

val all_arches : arch list

val support : arch -> Support.t
(** The matching architecture support package. *)
