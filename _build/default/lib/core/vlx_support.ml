module VI = Sb_arch_vlx.Insn
open Sb_asm.Assembler

let name = "vlx32"
let arch_id = Sb_isa.Arch_sig.Vlx
let nonpriv_supported = false
let undef_skip_bytes = 2 (* UD2 *)
let load_skip_bytes = 4
let store_skip_bytes = 4

let reg r =
  if r <= 4 then r
  else if r = Pasm.sp then VI.sp
  else if r = Pasm.lr then VI.lr
  else invalid_arg (Printf.sprintf "Vlx_support: virtual register %d" r)

let insns is = List.map (fun i -> Insn i) is

let lower_op (op : Pasm.op) : VI.insn item list =
  match op with
  | Pasm.L s -> [ Label s ]
  | Pasm.Li (r, v) -> insns (VI.li (reg r) v)
  | Pasm.La (r, s) -> insns (VI.la (reg r) s)
  | Pasm.Mov (a, b) -> insns [ VI.Mov (reg a, reg b) ]
  | Pasm.Alu (o, d, a, Pasm.R b) -> insns [ VI.Alu_rr (o, reg d, reg a, reg b) ]
  | Pasm.Alu (o, d, a, Pasm.I i) -> insns [ VI.Alu_ri (o, reg d, reg a, i) ]
  | Pasm.Cmp (r, Pasm.R b) -> insns [ VI.Cmp_rr (reg r, reg b) ]
  | Pasm.Cmp (r, Pasm.I i) -> insns [ VI.Cmp_ri (reg r, i) ]
  | Pasm.Br (c, s) -> insns [ VI.Jcc (c, s) ]
  | Pasm.Jmp s -> insns [ VI.Jmp s ]
  | Pasm.Jmp_reg r -> insns [ VI.Jmp_r (reg r) ]
  | Pasm.Call s -> insns [ VI.Call s ]
  | Pasm.Call_reg r -> insns [ VI.Call_r (reg r) ]
  | Pasm.Ret -> insns [ VI.Jmp_r VI.lr ]
  | Pasm.Load (Pasm.W32, d, b, off) -> insns [ VI.Load (reg d, reg b, off) ]
  | Pasm.Load (Pasm.W8, d, b, off) -> insns [ VI.Loadb (reg d, reg b, off) ]
  | Pasm.Store (Pasm.W32, s, b, off) -> insns [ VI.Store (reg s, reg b, off) ]
  | Pasm.Store (Pasm.W8, s, b, off) -> insns [ VI.Storeb (reg s, reg b, off) ]
  | Pasm.Load_user _ | Pasm.Store_user _ -> insns [ VI.Nop ]
  | Pasm.Syscall -> insns [ VI.Svc 0 ]
  | Pasm.Undef -> insns [ VI.Ud2 ]
  | Pasm.Eret -> insns [ VI.Eret ]
  | Pasm.Nop -> insns [ VI.Nop ]
  | Pasm.Halt -> insns [ VI.Halt ]
  | Pasm.Wfi -> insns [ VI.Wfi ]
  | Pasm.Cop_read (r, c) -> insns [ VI.Cpr (reg r, c) ]
  | Pasm.Cop_write (c, r) -> insns [ VI.Cpw (c, reg r) ]
  | Pasm.Cop_write_lr c -> insns [ VI.Cpw (c, VI.lr) ]
  | Pasm.Cop_safe_read _ -> insns [ VI.Copreset ]
  | Pasm.Tlb_inv_page r -> insns [ VI.Tlbi (reg r) ]
  | Pasm.Tlb_inv_all -> insns [ VI.Tlbiall ]
  | Pasm.Raw_word w -> [ Word w ]
  | Pasm.Word_sym s -> [ Word_sym s ]
  | Pasm.Align n -> [ Align n ]
  | Pasm.Org a -> [ Org a ]
  | Pasm.Space n -> [ Space n ]

let assemble ?base ?entry ops =
  VI.Asm.assemble ?base ?entry (List.concat_map lower_op ops)
