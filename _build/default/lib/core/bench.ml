type body = {
  setup : Pasm.op list;
  kernel : Pasm.op list;
  cleanup : Pasm.op list;
  functions : Pasm.op list;
  handlers : (Sb_sim.Exn.vector * Pasm.op list) list;
  needs_irqs : bool;
}

let empty_body =
  { setup = []; kernel = []; cleanup = []; functions = []; handlers = []; needs_irqs = false }

type t = {
  name : string;
  category : Category.t;
  description : string;
  default_iters : int;
  ops_per_iter : int;
  platform_specific : bool;
  body : support:Support.t -> platform:Platform.t -> body;
}
