module SI = Sb_arch_sba.Insn
open Sb_asm.Assembler

let name = "sba32"
let arch_id = Sb_isa.Arch_sig.Sba
let nonpriv_supported = true
let undef_skip_bytes = 4
let load_skip_bytes = 4
let store_skip_bytes = 4

let scratch = 10

let reg r =
  if r <= 4 then r
  else if r = Pasm.sp then 13
  else if r = Pasm.lr then 14
  else invalid_arg (Printf.sprintf "Sba_support: virtual register %d" r)

let insns is = List.map (fun i -> Insn i) is

let fits_imm14 i = i >= -8192 && i <= 8191

let alu_rr op d a b =
  match op with
  | Sb_isa.Uop.Add -> SI.Add (d, a, SI.Rm b)
  | Sub -> SI.Sub (d, a, SI.Rm b)
  | And_ -> SI.And_ (d, a, b)
  | Orr -> SI.Orr (d, a, b)
  | Xor -> SI.Xor (d, a, b)
  | Lsl -> SI.Lsl (d, a, SI.Rm b)
  | Lsr -> SI.Lsr (d, a, SI.Rm b)
  | Asr -> SI.Asr (d, a, SI.Rm b)
  | Mul -> SI.Mul (d, a, b)

let alu_ri op d a i =
  match op with
  | Sb_isa.Uop.Add when fits_imm14 i -> [ SI.Add (d, a, SI.Imm i) ]
  | Sub when fits_imm14 i -> [ SI.Sub (d, a, SI.Imm i) ]
  | Lsl when fits_imm14 i -> [ SI.Lsl (d, a, SI.Imm i) ]
  | Lsr when fits_imm14 i -> [ SI.Lsr (d, a, SI.Imm i) ]
  | Asr when fits_imm14 i -> [ SI.Asr (d, a, SI.Imm i) ]
  | op -> SI.li scratch i @ [ alu_rr op d a scratch ]

let lower_op (op : Pasm.op) : SI.insn item list =
  match op with
  | Pasm.L s -> [ Label s ]
  | Pasm.Li (r, v) -> insns (SI.li (reg r) v)
  | Pasm.La (r, s) -> insns (SI.la (reg r) s)
  | Pasm.Mov (a, b) -> insns [ SI.Mov (reg a, reg b) ]
  | Pasm.Alu (o, d, a, Pasm.R b) -> insns [ alu_rr o (reg d) (reg a) (reg b) ]
  | Pasm.Alu (o, d, a, Pasm.I i) -> insns (alu_ri o (reg d) (reg a) i)
  | Pasm.Cmp (r, Pasm.R b) -> insns [ SI.Cmp (reg r, SI.Rm (reg b)) ]
  | Pasm.Cmp (r, Pasm.I i) ->
    if fits_imm14 i then insns [ SI.Cmp (reg r, SI.Imm i) ]
    else insns (SI.li scratch i @ [ SI.Cmp (reg r, SI.Rm scratch) ])
  | Pasm.Br (c, s) -> insns [ SI.Bcc (c, s) ]
  | Pasm.Jmp s -> insns [ SI.B s ]
  | Pasm.Jmp_reg r -> insns [ SI.Br (reg r) ]
  | Pasm.Call s -> insns [ SI.Bl s ]
  | Pasm.Call_reg r -> insns [ SI.Blr (reg r) ]
  | Pasm.Ret -> insns [ SI.Br 14 ]
  | Pasm.Load (Pasm.W32, d, b, off) -> insns [ SI.Ldr (reg d, reg b, off) ]
  | Pasm.Load (Pasm.W8, d, b, off) -> insns [ SI.Ldrb (reg d, reg b, off) ]
  | Pasm.Store (Pasm.W32, s, b, off) -> insns [ SI.Str (reg s, reg b, off) ]
  | Pasm.Store (Pasm.W8, s, b, off) -> insns [ SI.Strb (reg s, reg b, off) ]
  | Pasm.Load_user (d, b, off) -> insns [ SI.Ldrt (reg d, reg b, off) ]
  | Pasm.Store_user (s, b, off) -> insns [ SI.Strt (reg s, reg b, off) ]
  | Pasm.Syscall -> insns [ SI.Svc 0 ]
  | Pasm.Undef -> insns [ SI.Udf ]
  | Pasm.Eret -> insns [ SI.Eret ]
  | Pasm.Nop -> insns [ SI.Nop ]
  | Pasm.Halt -> insns [ SI.Halt ]
  | Pasm.Wfi -> insns [ SI.Wfi ]
  | Pasm.Cop_read (r, c) -> insns [ SI.Mrc (reg r, c) ]
  | Pasm.Cop_write (c, r) -> insns [ SI.Mcr (c, reg r) ]
  | Pasm.Cop_write_lr c -> insns [ SI.Mcr (c, 14) ]
  | Pasm.Cop_safe_read r -> insns [ SI.Mrc (reg r, Sb_isa.Cregs.dacr) ]
  | Pasm.Tlb_inv_page r -> insns [ SI.Tlbi (reg r) ]
  | Pasm.Tlb_inv_all -> insns [ SI.Tlbiall ]
  | Pasm.Raw_word w -> [ Word w ]
  | Pasm.Word_sym s -> [ Word_sym s ]
  | Pasm.Align n -> [ Align n ]
  | Pasm.Org a -> [ Org a ]
  | Pasm.Space n -> [ Space n ]

let assemble ?base ?entry ops =
  SI.Asm.assemble ?base ?entry (List.concat_map lower_op ops)
