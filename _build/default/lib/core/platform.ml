type t = {
  name : string;
  ram_size : int;
  code_base : int;
  stack_top : int;
  page_table_base : int;
  l2_table_base : int;
  scratch_base : int;
  scratch_pages : int;
  uart_base : int;
  intc_base : int;
  timer_base : int;
  devid_base : int;
  bench_base : int;
  device_section_va : int;
  fault_va : int;
  cold_region_va : int;
  cold_region_pages : int;
  user_page_va : int;
  softint_mask : int;
  heap_base : int;
  heap_pages : int;
}

let sbp_ref =
  {
    name = "sbp-ref";
    ram_size = 32 * 1024 * 1024;
    code_base = 0x0000_0000;
    stack_top = 0x0100_0000;
    page_table_base = 0x0110_0000;
    l2_table_base = 0x0111_0000;
    scratch_base = 0x0120_0000;
    scratch_pages = 64;
    uart_base = Sb_sim.Machine.Map.uart_base;
    intc_base = Sb_sim.Machine.Map.intc_base;
    timer_base = Sb_sim.Machine.Map.timer_base;
    devid_base = Sb_sim.Machine.Map.devid_base;
    bench_base = Sb_sim.Machine.Map.bench_base;
    device_section_va = 0xF000_0000;
    fault_va = 0x6000_0000;
    cold_region_va = 0x4000_0000;
    cold_region_pages = 2048;
    user_page_va = 0x5000_0000;
    softint_mask = 1 lsl Sb_mem.Intc.softint_line;
    heap_base = 0x0180_0000;
    heap_pages = 2048;
  }

let sbp_mini =
  {
    sbp_ref with
    name = "sbp-mini";
    ram_size = 8 * 1024 * 1024;
    stack_top = 0x0040_0000;
    page_table_base = 0x0041_0000;
    l2_table_base = 0x0042_0000;
    scratch_base = 0x0048_0000;
    scratch_pages = 16;
    cold_region_pages = 512;
    heap_base = 0x0050_0000;
    heap_pages = 512;
  }

let all = [ sbp_ref; sbp_mini ]

let machine t ?now () = Sb_sim.Machine.create ~ram_size:t.ram_size ?now ()
