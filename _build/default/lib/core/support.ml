(** Architecture support package interface.

    One of these per guest ISA: it lowers the portable benchmark assembly
    ({!Pasm}) to the ISA and reports the architecture-specific constants the
    runtime's exception handlers need (how many bytes to skip over a faulted
    load or an undefined instruction). *)

module type SUPPORT = sig
  val name : string
  val arch_id : Sb_isa.Arch_sig.arch_id

  val nonpriv_supported : bool
  (** false lowers [Load_user]/[Store_user] to [Nop], as on the paper's x86
      port. *)

  val undef_skip_bytes : int
  (** encoded size of the canonical undefined instruction *)

  val load_skip_bytes : int
  (** encoded size of the word-load instruction (data-abort handler skip) *)

  val store_skip_bytes : int

  val assemble :
    ?base:int -> ?entry:string -> Pasm.op list -> Sb_asm.Program.t
end

type t = (module SUPPORT)

let name (module S : SUPPORT) = S.name
