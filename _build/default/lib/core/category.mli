(** The five benchmark categories of the SimBench suite (Figure 3). *)

type t =
  | Code_generation
  | Control_flow
  | Exception_handling
  | Io
  | Memory_system
  | Application
      (** not part of the suite's five categories: used by the SPEC-analog
          workloads, which share the benchmark runtime *)

(** The five SimBench categories (excludes [Application]). *)
val all : t list

val name : t -> string
val of_name : string -> t option
