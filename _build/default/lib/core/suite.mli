(** The SimBench suite: 18 benchmarks in 5 categories (Figure 3). *)

val all : Bench.t list

val find : string -> Bench.t option
(** Lookup by the Figure 3 name, e.g. ["Small Blocks"]. *)

val by_category : Category.t -> Bench.t list

val names : string list

(** Individual benchmarks, in Figure 3 order. *)

val small_blocks : Bench.t

val large_blocks : Bench.t
val inter_page_direct : Bench.t
val inter_page_indirect : Bench.t
val intra_page_direct : Bench.t
val intra_page_indirect : Bench.t
val data_access_fault : Bench.t
val instruction_access_fault : Bench.t
val undefined_instruction : Bench.t
val system_call : Bench.t
val external_software_interrupt : Bench.t
val memory_mapped_device : Bench.t
val coprocessor_access : Bench.t
val cold_memory_access : Bench.t
val hot_memory_access : Bench.t
val nonprivileged_access : Bench.t
val tlb_eviction : Bench.t
val tlb_flush : Bench.t
