(** SBA-32 architecture support package: lowers {!Pasm} to SBA-32. *)

include Support.SUPPORT
