lib/core/category.mli:
