lib/core/vlx_support.ml: List Pasm Printf Sb_arch_vlx Sb_asm Sb_isa
