lib/core/sba_support.mli: Support
