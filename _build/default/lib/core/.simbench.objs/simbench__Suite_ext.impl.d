lib/core/suite_ext.ml: Bench Category List Pasm Platform Printf Sb_isa Sb_mmu Sb_sim String Support
