lib/core/rt.mli: Bench Pasm Platform Sb_asm Support
