lib/core/platform.ml: Sb_mem Sb_sim
