lib/core/platform.mli: Sb_sim
