lib/core/bench.ml: Category Pasm Platform Sb_sim Support
