lib/core/pasm.ml: Format Printf Sb_isa
