lib/core/suite_ext.mli: Bench
