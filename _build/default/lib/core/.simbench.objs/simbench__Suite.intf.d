lib/core/suite.mli: Bench Category
