lib/core/category.ml: List String
