lib/core/support.ml: Pasm Sb_asm Sb_isa
