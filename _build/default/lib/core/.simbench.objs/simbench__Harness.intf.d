lib/core/harness.mli: Bench Platform Sb_sim Support
