lib/core/suite.ml: Bench Category List Pasm Platform Printf Rt Sb_isa Sb_sim String Support
