lib/core/bench.mli: Category Pasm Platform Sb_sim Support
