lib/core/rt.ml: Bench List Pasm Platform Sb_isa Sb_mmu Sb_sim Support
