lib/core/engines.ml: Sb_arch_sba Sb_arch_vlx Sb_dbt Sb_detailed Sb_interp Sb_isa Sb_sim Sb_virt Sba_support Support Vlx_support
