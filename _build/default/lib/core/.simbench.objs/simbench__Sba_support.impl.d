lib/core/sba_support.ml: List Pasm Printf Sb_arch_sba Sb_asm Sb_isa
