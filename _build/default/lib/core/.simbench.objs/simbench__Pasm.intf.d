lib/core/pasm.mli: Format Sb_isa
