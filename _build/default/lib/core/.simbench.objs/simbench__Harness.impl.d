lib/core/harness.ml: Bench Format List Platform Printf Rt Sb_mem Sb_sim Suite Support Unix
