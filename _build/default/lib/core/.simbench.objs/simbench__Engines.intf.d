lib/core/engines.mli: Sb_dbt Sb_interp Sb_isa Sb_sim Support
