lib/core/vlx_support.mli: Support
