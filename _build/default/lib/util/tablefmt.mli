(** Plain-text table and series rendering for experiment reports.

    The bench harness prints each paper table/figure as an aligned ASCII
    table (for tabular data) or as a set of labelled series (for the
    line-graph figures). *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out an aligned table with a rule under the
    header.  [align] defaults to left for the first column and right for the
    rest. *)

val render_series :
  x_label:string ->
  x_values:string list ->
  (string * float list) list ->
  string
(** [render_series ~x_label ~x_values series] prints one row per x value and
    one column per named series — the textual equivalent of the paper's line
    graphs (Figures 2, 6, 8).  Series shorter than [x_values] are padded with
    [nan], rendered as ["-"]. *)

val float_cell : float -> string
(** Compact float formatting: 3 significant decimals, ["-"] for nan. *)

val sci_cell : float -> string
(** Scientific notation as used by the density columns of Figure 3. *)
