(** Deterministic xorshift64* pseudo-random generator.

    Workload generators and benchmark layouts must be reproducible across
    runs and across engines, so they draw from this generator rather than
    [Random]. *)

type t

val create : seed:int -> t
(** [seed] may be any int; a zero seed is remapped internally. *)

val next : t -> int
(** Next 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val u32 : t -> int
(** Uniform 32-bit value. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
