lib/util/xorshift.mli:
