lib/util/stats.mli:
