lib/util/u32.ml: Format Printf
