lib/util/tablefmt.mli:
