lib/util/hexdump.ml: Buffer Bytes Char Printf
