(** Unsigned 32-bit arithmetic carried on native [int]s.

    All guest-visible 32-bit values in the simulator are represented as OCaml
    [int]s in the range [0, 0xFFFF_FFFF].  Every operation here re-normalises
    its result into that range, so values produced by this module can be mixed
    freely with array indexing and hashing. *)

val mask : int
(** [0xFFFF_FFFF]. *)

val of_int : int -> int
(** Truncate a native int to its low 32 bits. *)

val to_signed : int -> int
(** Reinterpret a u32 as a signed 32-bit quantity (two's complement). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int

val shift_left : int -> int -> int
(** [shift_left x n] for [n >= 32] is [0]. *)

val shift_right_logical : int -> int -> int
val shift_right_arith : int -> int -> int

val lt_signed : int -> int -> bool
val lt_unsigned : int -> int -> bool

val add_with_flags : int -> int -> int * bool * bool
(** [add_with_flags a b] is [(result, carry, overflow)]. *)

val sub_with_flags : int -> int -> int * bool * bool
(** [sub_with_flags a b] is [(result, borrow, overflow)] where [borrow] is
    the inverted ARM-style carry (set when [a < b] unsigned). *)

val sign_extend : bits:int -> int -> int
(** [sign_extend ~bits v] sign-extends the low [bits] bits of [v] into a u32. *)

val pp : Format.formatter -> int -> unit
(** Print as [0x%08x]. *)

val to_hex : int -> string
