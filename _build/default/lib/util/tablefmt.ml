type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.of_list (List.map String.length header) in
  let note_row row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  List.iter note_row rows;
  let fmt_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = List.nth aligns (min i (ncols - 1)) in
          pad a widths.(min i (ncols - 1)) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let float_cell v =
  if Float.is_nan v then "-" else Printf.sprintf "%.3f" v

let sci_cell v =
  if Float.is_nan v then "-"
  else if v = 0. then "0"
  else if v >= 0.001 then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.2e" v

let render_series ~x_label ~x_values series =
  let names = List.map fst series in
  let header = x_label :: names in
  let nth_or_nan values i =
    match List.nth_opt values i with Some v -> v | None -> nan
  in
  let rows =
    List.mapi
      (fun i x ->
        x :: List.map (fun (_, values) -> float_cell (nth_or_nan values i)) series)
      x_values
  in
  render ~header rows
