let mask = 0xFFFF_FFFF

let of_int x = x land mask

let to_signed x =
  let x = x land mask in
  if x land 0x8000_0000 <> 0 then x - 0x1_0000_0000 else x

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask
let logand a b = a land b land mask
let logor a b = (a lor b) land mask
let logxor a b = (a lxor b) land mask
let lognot a = lnot a land mask

let shift_left x n = if n >= 32 then 0 else (x lsl n) land mask

let shift_right_logical x n =
  if n >= 32 then 0 else (x land mask) lsr n

let shift_right_arith x n =
  let n = if n >= 32 then 31 else n in
  (to_signed x asr n) land mask

let lt_signed a b = to_signed a < to_signed b
let lt_unsigned a b = of_int a < of_int b

let add_with_flags a b =
  let wide = of_int a + of_int b in
  let result = wide land mask in
  let carry = wide > mask in
  let overflow = to_signed a + to_signed b <> to_signed result in
  (result, carry, overflow)

let sub_with_flags a b =
  let result = (a - b) land mask in
  let borrow = of_int a < of_int b in
  let overflow = to_signed a - to_signed b <> to_signed result in
  (result, borrow, overflow)

let sign_extend ~bits v =
  let v = v land ((1 lsl bits) - 1) in
  if v land (1 lsl (bits - 1)) <> 0 then (v - (1 lsl bits)) land mask else v

let pp ppf x = Format.fprintf ppf "0x%08x" (of_int x)

let to_hex x = Printf.sprintf "0x%08x" (of_int x)
