type t = { mutable state : int64 }

let create ~seed =
  let s = Int64.of_int seed in
  let s = if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s in
  { state = s }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 2)

let int t bound =
  assert (bound > 0);
  next t mod bound

let u32 t = next t land 0xFFFF_FFFF

let bool t = next t land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
