(** Hex dump of guest memory regions, for debugging and example output. *)

val bytes : ?base:int -> Bytes.t -> string
(** Classic 16-bytes-per-line dump with an address column starting at
    [base] (default 0) and a printable-ASCII gutter. *)
