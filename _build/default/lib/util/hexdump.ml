let bytes ?(base = 0) data =
  let len = Bytes.length data in
  let buf = Buffer.create (len * 4) in
  let line_start = ref 0 in
  while !line_start < len do
    let start = !line_start in
    let stop = min len (start + 16) in
    Buffer.add_string buf (Printf.sprintf "%08x  " (base + start));
    for i = start to start + 15 do
      if i < stop then
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code (Bytes.get data i)))
      else Buffer.add_string buf "   ";
      if i - start = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = start to stop - 1 do
      let c = Bytes.get data i in
      Buffer.add_char buf (if c >= ' ' && c < '\x7f' then c else '.')
    done;
    Buffer.add_string buf "|\n";
    line_start := stop
  done;
  Buffer.contents buf
