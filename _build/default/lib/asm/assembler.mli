(** Generic two-pass assembler.

    The assembler is parametric in the instruction encoder, so both guest
    ISAs share the same label-resolution, alignment and layout machinery.
    Pass one computes label addresses from instruction sizes; pass two
    encodes with a resolver. *)

type 'insn item =
  | Label of string
  | Insn of 'insn
  | Word of int               (** 32-bit little-endian literal *)
  | Word_sym of string        (** 32-bit literal holding a label's address *)
  | Byte_string of string     (** raw bytes *)
  | Align of int              (** pad with zeros to the given power-of-two *)
  | Org of int                (** advance the location counter to an absolute
                                  address (never backwards) *)
  | Space of int              (** zero-filled gap *)

exception Error of string

module type ENCODER = sig
  type insn

  val size : insn -> int
  (** Encoded size in bytes; must not depend on label values. *)

  val encode : resolve:(string -> int) -> pc:int -> insn -> string
  (** Produce exactly [size insn] bytes.  [resolve] raises {!Error} on an
      undefined label. *)
end

module Make (E : ENCODER) : sig
  val assemble : ?base:int -> ?entry:string -> E.insn item list -> Program.t
  (** [assemble ~base ~entry items] lays the items out starting at [base]
      (default 0) and sets the program entry point to label [entry]
      (default: [base]).  Raises {!Error} on duplicate or undefined labels,
      backwards [Org], or encoder size mismatches. *)

  val layout : ?base:int -> E.insn item list -> (string * int) list
  (** Label addresses only (pass one), for tests and code generators that
      need to reason about placement. *)
end
