lib/asm/program.mli: Bytes
