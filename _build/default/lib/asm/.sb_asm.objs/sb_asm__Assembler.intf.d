lib/asm/assembler.mli: Program
