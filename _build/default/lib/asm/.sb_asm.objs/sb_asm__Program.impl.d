lib/asm/program.ml: Bytes List
