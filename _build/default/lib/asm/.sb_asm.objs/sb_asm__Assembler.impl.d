lib/asm/assembler.ml: Bytes Int32 List Printf Program String
