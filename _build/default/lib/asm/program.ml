type t = {
  base : int;
  image : Bytes.t;
  entry : int;
  symbols : (string * int) list;
}

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some addr -> addr
  | None -> raise Not_found

let symbol_opt t name = List.assoc_opt name t.symbols

let size t = Bytes.length t.image
