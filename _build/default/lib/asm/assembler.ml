type 'insn item =
  | Label of string
  | Insn of 'insn
  | Word of int
  | Word_sym of string
  | Byte_string of string
  | Align of int
  | Org of int
  | Space of int

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module type ENCODER = sig
  type insn

  val size : insn -> int
  val encode : resolve:(string -> int) -> pc:int -> insn -> string
end

module Make (E : ENCODER) = struct
  let item_size pc = function
    | Label _ -> 0
    | Insn i -> E.size i
    | Word _ | Word_sym _ -> 4
    | Byte_string s -> String.length s
    | Align n ->
      if n <= 0 || n land (n - 1) <> 0 then
        error "Align %d: not a positive power of two" n
      else (n - (pc land (n - 1))) land (n - 1)
    | Org target ->
      if target < pc then error "Org 0x%x: location counter already at 0x%x" target pc
      else target - pc
    | Space n -> if n < 0 then error "Space %d: negative" n else n

  let layout ?(base = 0) items =
    let pc = ref base in
    let symbols = ref [] in
    List.iter
      (fun item ->
        (match item with
        | Label name ->
          if List.mem_assoc name !symbols then error "duplicate label %S" name;
          symbols := (name, !pc) :: !symbols
        | _ -> ());
        pc := !pc + item_size !pc item)
      items;
    List.rev !symbols

  let assemble ?(base = 0) ?entry items =
    let symbols = layout ~base items in
    let resolve name =
      match List.assoc_opt name symbols with
      | Some addr -> addr
      | None -> error "undefined label %S" name
    in
    let total =
      List.fold_left (fun pc item -> pc + item_size pc item) base items - base
    in
    let image = Bytes.make total '\000' in
    let pc = ref base in
    let emit_string s =
      Bytes.blit_string s 0 image (!pc - base) (String.length s);
      pc := !pc + String.length s
    in
    let emit_word v =
      Bytes.set_int32_le image (!pc - base) (Int32.of_int v);
      pc := !pc + 4
    in
    List.iter
      (fun item ->
        match item with
        | Label _ -> ()
        | Insn i ->
          let encoded = E.encode ~resolve ~pc:!pc i in
          if String.length encoded <> E.size i then
            error "encoder size mismatch at 0x%x: declared %d, produced %d" !pc
              (E.size i) (String.length encoded);
          emit_string encoded
        | Word v -> emit_word v
        | Word_sym name -> emit_word (resolve name)
        | Byte_string s -> emit_string s
        | Align _ | Org _ | Space _ -> pc := !pc + item_size !pc item)
      items;
    let entry =
      match entry with Some name -> resolve name | None -> base
    in
    { Program.base; image; entry; symbols }
end
