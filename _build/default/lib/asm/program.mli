(** An assembled guest program image. *)

type t = {
  base : int;  (** load address of the first image byte *)
  image : Bytes.t;
  entry : int;  (** initial PC *)
  symbols : (string * int) list;
}

val symbol : t -> string -> int
(** Raises [Not_found] when the label does not exist. *)

val symbol_opt : t -> string -> int option

val size : t -> int
