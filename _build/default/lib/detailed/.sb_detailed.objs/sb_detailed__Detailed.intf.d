lib/detailed/detailed.mli: Sb_isa Sb_sim
