lib/detailed/event_queue.mli:
