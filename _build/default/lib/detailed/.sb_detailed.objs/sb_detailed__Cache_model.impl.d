lib/detailed/cache_model.ml: Array Printf
