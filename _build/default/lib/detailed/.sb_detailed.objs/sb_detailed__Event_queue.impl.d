lib/detailed/event_queue.ml: Array
