lib/detailed/detailed.ml: Alu_eval Arch_sig Array Cache_model Cop Cpu Cregs Event_queue Exn List Machine Perf Printf Run_result Runner Sb_isa Sb_mem Sb_mmu Sb_sim Sb_util Uop
