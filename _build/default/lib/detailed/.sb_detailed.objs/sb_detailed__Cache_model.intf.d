lib/detailed/cache_model.mli:
