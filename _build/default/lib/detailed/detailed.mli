(** Detailed (timing) interpreter engine — the Gem5 analog.

    Figure 4 row: interpreter execution model, modelled TLB, no code
    generation, interpreted control flow, interrupts at instruction
    boundaries.

    Every instruction is re-decoded and pushed through a five-stage
    discrete-event pipeline (fetch, decode, execute, memory, writeback) with
    modelled split TLBs and L1 instruction/data caches.  The functional
    result is bit-identical to the fast interpreter — the equivalence
    property tests enforce it — but the engine additionally produces a cycle
    count, and the modelling work makes it one to two orders of magnitude
    slower to host-execute, exactly the trade the paper measures. *)

module Timing : sig
  type t = {
    fetch_latency : int;
    decode_latency : int;
    execute_latency : int;
    mul_latency : int;
    cache_hit_latency : int;
    cache_miss_latency : int;
    walk_level_latency : int;
    exception_latency : int;
  }

  val default : t
end

module Make (A : Sb_isa.Arch_sig.ARCH) : sig
  include Sb_sim.Engine.ENGINE

  val last_cycles : unit -> int
  (** Simulated cycles of the most recent [run] (a timing-model output the
      functional engines cannot provide). *)
end
