(** Direct-mapped cache timing model (tags only — data flows through the
    functional path; the model just decides hit or miss latency). *)

type t

val create : size_bytes:int -> line_bytes:int -> t
(** Both sizes must be powers of two. *)

val access : t -> int -> bool
(** [access t pa] is [true] on hit; a miss fills the line. *)

val hits : t -> int
val misses : t -> int
val flush : t -> unit
