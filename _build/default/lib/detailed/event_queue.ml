type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size >= capacity then begin
    let bigger = Array.make (max 16 (capacity * 2)) entry in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before heap.(i) heap.(parent) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(i);
      heap.(i) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < size && before heap.(left) heap.(!smallest) then smallest := left;
  if right < size && before heap.(right) heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = heap.(!smallest) in
    heap.(!smallest) <- heap.(i);
    heap.(i) <- tmp;
    sift_down heap size !smallest
  end

let schedule t ~time payload =
  let entry = { time; seq = t.seq; payload } in
  t.seq <- t.seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t.heap t.size 0
    end;
    Some (top.time, top.payload)
  end

let clear t =
  t.size <- 0;
  t.seq <- 0
