(** Discrete-event queue for the detailed timing model: a binary min-heap of
    (time, event) pairs.  Ties execute in insertion order, which keeps the
    pipeline stages of one instruction ordered. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val schedule : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Earliest event, or [None] when empty. *)

val clear : 'a t -> unit
