type t = {
  tags : int array;
  line_shift : int;
  index_mask : int;
  mutable hits : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~size_bytes ~line_bytes =
  let check what n =
    if n <= 0 || n land (n - 1) <> 0 then
      invalid_arg (Printf.sprintf "Cache_model: %s must be a power of two" what)
  in
  check "size_bytes" size_bytes;
  check "line_bytes" line_bytes;
  let lines = size_bytes / line_bytes in
  {
    tags = Array.make lines (-1);
    line_shift = log2 line_bytes;
    index_mask = lines - 1;
    hits = 0;
    misses = 0;
  }

let access t pa =
  let line = pa lsr t.line_shift in
  let index = line land t.index_mask in
  if t.tags.(index) = line then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(index) <- line;
    false
  end

let hits t = t.hits
let misses t = t.misses
let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
