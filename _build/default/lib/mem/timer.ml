type t = {
  on_fire : unit -> unit;
  mutable count : int;
  mutable compare : int;
  mutable irq_enabled : bool;
  mutable armed : bool;
}

let create ~on_fire =
  { on_fire; count = 0; compare = 0; irq_enabled = false; armed = false }

let advance t n =
  t.count <- t.count + n;
  if t.armed && t.irq_enabled && t.count >= t.compare then begin
    t.armed <- false;
    t.on_fire ()
  end

let count t = t.count

let reset t =
  t.count <- 0;
  t.compare <- 0;
  t.irq_enabled <- false;
  t.armed <- false

let device t =
  let read32 = function
    | 0x0 -> t.count land 0xFFFF_FFFF
    | 0x4 -> t.compare
    | 0x8 -> if t.irq_enabled then 1 else 0
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x0 -> t.count <- v
    | 0x4 ->
      t.compare <- v;
      t.armed <- true
    | 0x8 -> t.irq_enabled <- v land 1 = 1
    | _ -> ()
  in
  { Device.name = "timer"; read32; write32 }
