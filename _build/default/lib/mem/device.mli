(** Memory-mapped device interface.

    Devices expose 32-bit registers at word-aligned offsets within their bus
    window.  Sub-word accesses are synthesised by the bus from whole-register
    reads/writes, which matches the behaviour of simple SoC peripherals. *)

type t = {
  name : string;
  read32 : int -> int;  (** [read32 offset] — offset is relative to the window base. *)
  write32 : int -> int -> unit;  (** [write32 offset value]. *)
}

val rom : name:string -> (int * int) list -> t
(** A read-only register file: association list of offset to constant value.
    Writes are ignored; unknown offsets read as 0. *)
