(** Harness/semihosting device.

    SimBench benchmarks run in three phases; only the kernel phase is timed.
    The guest signals phase transitions by writing the PHASE register, and
    this device timestamps the writes with a host clock supplied by the
    harness.  It also carries the iteration count into the guest and an exit
    code out of it.

    Register map (byte offsets):
    - [0x0] PHASE: write 1 = kernel start, 2 = kernel end; read back.
    - [0x4] EXIT: write records the exit code and requests halt.
    - [0x8] OPCOUNT: write adds the value to the tested-operation counter.
    - [0xC] ITERS: read returns the harness-provided iteration count.
    - [0x10] ARG0, [0x14] ARG1: extra harness-provided parameters. *)

type t

type phase = Setup | Kernel | Cleanup

val create : ?now:(unit -> float) -> unit -> t
(** [now] defaults to [Sys.time]-independent monotonic-ish wall clock
    injected by the harness; tests can supply a fake clock. *)

val device : t -> Device.t

val set_iters : t -> int -> unit

val set_on_phase : t -> (phase -> unit) -> unit
(** Install a callback fired on every PHASE write, after the timestamp is
    recorded.  Engines use it to snapshot perf counters at kernel-phase
    boundaries without polling. *)

val set_arg : t -> int -> int -> unit
(** [set_arg t i v] with [i] in 0..1. *)

val phase : t -> phase
val kernel_seconds : t -> float option
(** Wall-clock duration between the kernel-start and kernel-end writes. *)

val kernel_started_at : t -> float option
val op_count : t -> int
val exit_code : t -> int option
val exited : t -> bool
val reset : t -> unit
