type phase = Setup | Kernel | Cleanup

type t = {
  now : unit -> float;
  mutable phase : phase;
  mutable kernel_start : float option;
  mutable kernel_end : float option;
  mutable iters : int;
  mutable args : int array;
  mutable ops : int;
  mutable exit_code : int option;
  mutable on_phase : phase -> unit;
}

let create ?(now = fun () -> Sys.time ()) () =
  {
    now;
    phase = Setup;
    kernel_start = None;
    kernel_end = None;
    iters = 0;
    args = [| 0; 0 |];
    ops = 0;
    exit_code = None;
    on_phase = ignore;
  }

let set_iters t n = t.iters <- n
let set_on_phase t f = t.on_phase <- f
let set_arg t i v = t.args.(i) <- v

let phase t = t.phase
let kernel_started_at t = t.kernel_start
let op_count t = t.ops
let exit_code t = t.exit_code
let exited t = t.exit_code <> None

let kernel_seconds t =
  match (t.kernel_start, t.kernel_end) with
  | Some a, Some b -> Some (b -. a)
  | _ -> None

let reset t =
  t.phase <- Setup;
  t.kernel_start <- None;
  t.kernel_end <- None;
  t.ops <- 0;
  t.exit_code <- None

let phase_code = function Setup -> 0 | Kernel -> 1 | Cleanup -> 2

let device t =
  let read32 = function
    | 0x0 -> phase_code t.phase
    | 0xC -> t.iters
    | 0x10 -> t.args.(0)
    | 0x14 -> t.args.(1)
    | _ -> 0
  in
  let write32 offset v =
    match offset with
    | 0x0 ->
      (match v with
      | 1 ->
        t.phase <- Kernel;
        t.kernel_start <- Some (t.now ())
      | 2 ->
        t.phase <- Cleanup;
        t.kernel_end <- Some (t.now ())
      | _ -> t.phase <- Setup);
      t.on_phase t.phase
    | 0x4 -> t.exit_code <- Some v
    | 0x8 -> t.ops <- t.ops + v
    | _ -> ()
  in
  { Device.name = "bench"; read32; write32 }
