type t = {
  name : string;
  read32 : int -> int;
  write32 : int -> int -> unit;
}

let rom ~name regs =
  let read32 offset =
    match List.assoc_opt offset regs with Some v -> v | None -> 0
  in
  { name; read32; write32 = (fun _ _ -> ()) }
