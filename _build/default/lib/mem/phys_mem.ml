type t = { data : Bytes.t; size : int }

exception Out_of_range of int

let create ~size = { data = Bytes.make size '\000'; size }

let size t = t.size

let check t addr width =
  if addr < 0 || addr + width > t.size then raise (Out_of_range addr)

let read8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let read16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

let read32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFF_FFFF

let write8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let write16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let write32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let load t ~addr image =
  check t addr (Bytes.length image);
  Bytes.blit image 0 t.data addr (Bytes.length image)

let blit_out t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let clear t = Bytes.fill t.data 0 t.size '\000'
