lib/mem/benchdev.ml: Array Device Sys
