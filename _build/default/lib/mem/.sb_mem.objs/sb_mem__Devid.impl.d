lib/mem/devid.ml: Device
