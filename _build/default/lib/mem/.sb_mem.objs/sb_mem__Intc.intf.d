lib/mem/intc.mli: Device
