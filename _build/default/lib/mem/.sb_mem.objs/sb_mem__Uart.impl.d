lib/mem/uart.ml: Buffer Char Device
