lib/mem/timer.ml: Device
