lib/mem/uart.mli: Device
