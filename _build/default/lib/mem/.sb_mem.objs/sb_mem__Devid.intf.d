lib/mem/devid.mli: Device
