lib/mem/timer.mli: Device
