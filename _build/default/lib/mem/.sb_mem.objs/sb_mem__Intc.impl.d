lib/mem/intc.ml: Device
