lib/mem/device.mli:
