lib/mem/benchdev.mli: Device
