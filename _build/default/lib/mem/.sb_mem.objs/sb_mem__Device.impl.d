lib/mem/device.ml: List
