lib/mem/phys_mem.ml: Bytes Char Int32
