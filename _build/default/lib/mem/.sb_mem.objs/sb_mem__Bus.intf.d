lib/mem/bus.mli: Device Phys_mem
