lib/mem/bus.ml: Array Device List Phys_mem Printf
