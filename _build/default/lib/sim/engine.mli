(** Execution-engine interface.

    An engine is one simulation technology (interpreter, DBT, detailed
    timing model, direct execution).  Engines are packaged as first-class
    modules so the harness can run the same machine image across all of
    them. *)

module type ENGINE = sig
  val name : string

  val features : (string * string) list
  (** Feature matrix entries for the paper's Figure 4, e.g.
      [("Execution Model", "DBT")]. *)

  val run : ?max_insns:int -> Machine.t -> Run_result.t
  (** Execute from the current CPU state until HALT, the instruction limit
      (default 2 billion), or a WFI deadlock. *)
end

type t = (module ENGINE)

val name : t -> string
val features : t -> (string * string) list
val run : t -> ?max_insns:int -> Machine.t -> Run_result.t
