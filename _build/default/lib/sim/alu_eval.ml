open Sb_util

let eval op a b =
  match op with
  | Sb_isa.Uop.Add -> U32.add a b
  | Sub -> U32.sub a b
  | And_ -> U32.logand a b
  | Orr -> U32.logor a b
  | Xor -> U32.logxor a b
  | Lsl -> U32.shift_left a (b land 0xFF)
  | Lsr -> U32.shift_right_logical a (b land 0xFF)
  | Asr -> U32.shift_right_arith a (b land 0xFF)
  | Mul -> U32.mul a b

let eval_flags op a b =
  match op with
  | Sb_isa.Uop.Add ->
    let result, carry, overflow = U32.add_with_flags a b in
    (result, result land 0x8000_0000 <> 0, result = 0, carry, overflow)
  | Sub ->
    let result, borrow, overflow = U32.sub_with_flags a b in
    (* ARM convention: C is the inverted borrow *)
    (result, result land 0x8000_0000 <> 0, result = 0, not borrow, overflow)
  | And_ | Orr | Xor | Lsl | Lsr | Asr | Mul ->
    let result = eval op a b in
    (result, result land 0x8000_0000 <> 0, result = 0, false, false)
