(** ALU semantics shared by every engine: one evaluator, one flag rule. *)

val eval : Sb_isa.Uop.alu_op -> int -> int -> int
(** [eval op a b] over u32 operands. *)

val eval_flags : Sb_isa.Uop.alu_op -> int -> int -> int * bool * bool * bool * bool
(** [eval_flags op a b] is [(result, n, z, c, v)].  For logical and shift
    operations C and V are cleared (the simplified SBA flag rule). *)
