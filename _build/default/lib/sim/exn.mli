(** Architectural exception model, shared by both guest ISAs.

    Vector table lives at VBAR; each vector slot is 8 bytes apart so a slot
    can hold a trampoline branch on either ISA.  Exception entry banks the
    return address into ELR and the status word into SPSR, switches to
    kernel mode and masks IRQs; [ERET] reverses it. *)

type vector =
  | Reset
  | Undefined
  | Syscall
  | Prefetch_abort
  | Data_abort
  | Irq

val vector_offset : vector -> int
(** Byte offset of the vector slot from VBAR. *)

val vector_name : vector -> string

(** ESR cause codes written on entry. *)
module Cause : sig
  val undefined : int
  val syscall : int
  val prefetch_translation : int
  val prefetch_permission : int
  val data_translation : int
  val data_permission : int
  val irq : int
  val bus_error : int

  val of_fault : kind:Sb_mmu.Access.kind -> Sb_mmu.Access.fault -> int
  (** Maps a translation-stage fault on a given access kind to its cause. *)
end

val enter :
  Cpu.t -> vector -> return_addr:int -> ?far:int -> cause:int -> unit -> unit
(** Take an exception: bank state, switch mode, jump to the vector.  [far]
    updates the fault-address register (aborts only). *)

val eret : Cpu.t -> unit
(** Return from exception: restore PC from ELR and status from SPSR. *)
