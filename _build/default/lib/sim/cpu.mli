(** Architectural CPU state shared by every engine.

    The register file is sized for the widest guest ISA (16 registers);
    narrower ISAs simply never touch the upper registers.  Status flags are
    unpacked booleans because engines evaluate conditions on every branch. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable mode : Sb_mmu.Access.privilege;
  mutable irq_enabled : bool;
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  mutable flag_v : bool;
  cop : int array;  (** coprocessor registers, indexed by {!Sb_isa.Cregs} *)
}

val create : unit -> t
(** Reset state: kernel mode, IRQs disabled, pc = 0, everything zeroed. *)

val reset : t -> unit

val mmu_enabled : t -> bool

val psr_encode : t -> int
(** Pack mode / IRQ-enable / NZCV into the SPSR format. *)

val psr_restore : t -> int -> unit
(** Unpack an SPSR value back into the live status fields. *)

val pp : Format.formatter -> t -> unit
