(** Shared engine plumbing: wall-clock measurement, kernel-phase perf
    snapshots, WFI waiting, result assembly.  Engines implement only their
    execution loop and delegate the rest here. *)

val default_max_insns : int

val wrap :
  name:string ->
  machine:Machine.t ->
  perf:Perf.t ->
  execute:(unit -> Run_result.stop_reason) ->
  Run_result.t
(** Runs [execute] with phase-snapshot callbacks installed on the machine's
    bench device, and assembles the {!Run_result.t}. *)

val wait_for_interrupt : Machine.t -> perf:Perf.t -> [ `Wake | `Deadlock ]
(** Architectural WFI: advance the timer until the interrupt controller has
    an enabled line pending (wake even if the CPU masks IRQs, as real WFI
    does).  Returns [`Deadlock] when no interrupt source can ever fire. *)
