type vector = Reset | Undefined | Syscall | Prefetch_abort | Data_abort | Irq

let vector_offset = function
  | Reset -> 0x00
  | Undefined -> 0x08
  | Syscall -> 0x10
  | Prefetch_abort -> 0x18
  | Data_abort -> 0x20
  | Irq -> 0x28

let vector_name = function
  | Reset -> "reset"
  | Undefined -> "undefined"
  | Syscall -> "syscall"
  | Prefetch_abort -> "prefetch-abort"
  | Data_abort -> "data-abort"
  | Irq -> "irq"

module Cause = struct
  let undefined = 1
  let syscall = 2
  let prefetch_translation = 3
  let prefetch_permission = 4
  let data_translation = 5
  let data_permission = 6
  let irq = 7
  let bus_error = 8

  let of_fault ~kind fault =
    match (kind, fault) with
    | Sb_mmu.Access.Execute, Sb_mmu.Access.Translation -> prefetch_translation
    | Sb_mmu.Access.Execute, Sb_mmu.Access.Permission -> prefetch_permission
    | (Sb_mmu.Access.Read | Sb_mmu.Access.Write), Sb_mmu.Access.Translation ->
      data_translation
    | (Sb_mmu.Access.Read | Sb_mmu.Access.Write), Sb_mmu.Access.Permission ->
      data_permission
end

let enter cpu vector ~return_addr ?far ~cause () =
  cpu.Cpu.cop.(Sb_isa.Cregs.elr) <- return_addr land 0xFFFF_FFFF;
  cpu.Cpu.cop.(Sb_isa.Cregs.spsr) <- Cpu.psr_encode cpu;
  cpu.Cpu.cop.(Sb_isa.Cregs.esr) <- cause;
  (match far with
  | Some a -> cpu.Cpu.cop.(Sb_isa.Cregs.far) <- a land 0xFFFF_FFFF
  | None -> ());
  cpu.Cpu.mode <- Sb_mmu.Access.Kernel;
  cpu.Cpu.irq_enabled <- false;
  cpu.Cpu.pc <-
    (cpu.Cpu.cop.(Sb_isa.Cregs.vbar) + vector_offset vector) land 0xFFFF_FFFF

let eret cpu =
  cpu.Cpu.pc <- cpu.Cpu.cop.(Sb_isa.Cregs.elr);
  Cpu.psr_restore cpu cpu.Cpu.cop.(Sb_isa.Cregs.spsr)
