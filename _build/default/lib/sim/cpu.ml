type t = {
  regs : int array;
  mutable pc : int;
  mutable mode : Sb_mmu.Access.privilege;
  mutable irq_enabled : bool;
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  mutable flag_v : bool;
  cop : int array;
}

let reset t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  t.pc <- 0;
  t.mode <- Sb_mmu.Access.Kernel;
  t.irq_enabled <- false;
  t.flag_n <- false;
  t.flag_z <- false;
  t.flag_c <- false;
  t.flag_v <- false;
  Array.fill t.cop 0 (Array.length t.cop) 0;
  t.cop.(Sb_isa.Cregs.cpuid) <- 0x5B00_0001

let create () =
  let t =
    {
      regs = Array.make 16 0;
      pc = 0;
      mode = Sb_mmu.Access.Kernel;
      irq_enabled = false;
      flag_n = false;
      flag_z = false;
      flag_c = false;
      flag_v = false;
      cop = Array.make Sb_isa.Cregs.count 0;
    }
  in
  reset t;
  t

let mmu_enabled t =
  t.cop.(Sb_isa.Cregs.sctlr) land Sb_isa.Cregs.sctlr_mmu_enable <> 0

let bit b n = if b then 1 lsl n else 0

let psr_encode t =
  bit (t.mode = Sb_mmu.Access.Kernel) 0
  lor bit t.irq_enabled 1
  lor bit t.flag_n 4
  lor bit t.flag_z 5
  lor bit t.flag_c 6
  lor bit t.flag_v 7

let psr_restore t v =
  t.mode <- (if v land 1 <> 0 then Sb_mmu.Access.Kernel else Sb_mmu.Access.User);
  t.irq_enabled <- v land 2 <> 0;
  t.flag_n <- v land 0x10 <> 0;
  t.flag_z <- v land 0x20 <> 0;
  t.flag_c <- v land 0x40 <> 0;
  t.flag_v <- v land 0x80 <> 0

let pp ppf t =
  Format.fprintf ppf "pc=%a mode=%s irq=%b nzcv=%d%d%d%d@."
    Sb_util.U32.pp t.pc
    (match t.mode with Sb_mmu.Access.Kernel -> "krn" | User -> "usr")
    t.irq_enabled
    (Bool.to_int t.flag_n) (Bool.to_int t.flag_z)
    (Bool.to_int t.flag_c) (Bool.to_int t.flag_v);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "r%-2d=%a%s" i Sb_util.U32.pp r
        (if i mod 4 = 3 then "\n" else "  "))
    t.regs
