(** The outcome of one engine run. *)

type stop_reason =
  | Halted            (** guest executed HALT *)
  | Insn_limit        (** [max_insns] reached *)
  | Wfi_deadlock      (** WFI with no interrupt source able to fire *)

type t = {
  engine : string;
  stop : stop_reason;
  wall_seconds : float;          (** whole run, including setup/cleanup *)
  kernel_seconds : float option; (** timed kernel phase, when signalled *)
  perf : Perf.t;                 (** whole-run counters *)
  kernel_perf : Perf.t option;   (** counters for the kernel phase only *)
  exit_code : int;
  uart_output : string;
  tested_ops : int;              (** guest-reported OPCOUNT total *)
}

val insns : t -> int
val kernel_insns : t -> int option

val pp_stop : Format.formatter -> stop_reason -> unit
val pp_summary : Format.formatter -> t -> unit
