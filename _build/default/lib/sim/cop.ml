type write_effect = No_effect | Translation_changed | Asid_changed

let read cpu ~creg =
  if creg < 0 || creg >= Sb_isa.Cregs.count then Error `Undefined
  else Ok cpu.Cpu.cop.(creg)

let write cpu ~creg ~value =
  let open Sb_isa.Cregs in
  if creg < 0 || creg >= count then Error `Undefined
  else if creg = cpuid then Ok No_effect
  else begin
    cpu.Cpu.cop.(creg) <- value land 0xFFFF_FFFF;
    if creg = sctlr || creg = ttbr then Ok Translation_changed
    else if creg = asid then Ok Asid_changed
    else Ok No_effect
  end
