(** Coprocessor (system register) access semantics, shared by every engine. *)

type write_effect =
  | No_effect
  | Translation_changed
      (** SCTLR or TTBR was written: engines must flush any cached
          translations (software TLBs, decode caches keyed by VA, block
          chains across translation regimes). *)
  | Asid_changed
      (** the address-space identifier was written: ASID-tagged TLBs keep
          their entries (tagged with the old ASID); untagged implementations
          must flush. *)

val read : Cpu.t -> creg:int -> (int, [ `Undefined ]) result
(** [`Undefined] for an unarchitected register number: the access raises an
    undefined-instruction exception. *)

val write : Cpu.t -> creg:int -> value:int -> (write_effect, [ `Undefined ]) result
(** Writes to read-only registers (CPUID) are ignored architecturally. *)
