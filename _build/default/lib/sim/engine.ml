module type ENGINE = sig
  val name : string
  val features : (string * string) list
  val run : ?max_insns:int -> Machine.t -> Run_result.t
end

type t = (module ENGINE)

let name (module E : ENGINE) = E.name
let features (module E : ENGINE) = E.features

let run (module E : ENGINE) ?max_insns machine = E.run ?max_insns machine
