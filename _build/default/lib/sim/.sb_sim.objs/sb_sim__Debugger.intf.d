lib/sim/debugger.pp.mli: Engine Machine Sb_isa
