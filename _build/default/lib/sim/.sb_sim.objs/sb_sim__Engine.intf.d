lib/sim/engine.pp.mli: Machine Run_result
