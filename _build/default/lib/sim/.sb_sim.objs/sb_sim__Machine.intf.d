lib/sim/machine.pp.mli: Cpu Sb_asm Sb_mem
