lib/sim/perf.pp.mli: Format
