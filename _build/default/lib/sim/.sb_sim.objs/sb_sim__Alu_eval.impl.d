lib/sim/alu_eval.pp.ml: Sb_isa Sb_util U32
