lib/sim/exn.pp.ml: Array Cpu Sb_isa Sb_mmu
