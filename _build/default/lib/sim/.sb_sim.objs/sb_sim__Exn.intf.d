lib/sim/exn.pp.mli: Cpu Sb_mmu
