lib/sim/run_result.pp.mli: Format Perf
