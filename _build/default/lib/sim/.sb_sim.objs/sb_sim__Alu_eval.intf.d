lib/sim/alu_eval.pp.mli: Sb_isa
