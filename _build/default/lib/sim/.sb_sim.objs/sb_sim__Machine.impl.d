lib/sim/machine.pp.ml: Cpu Sb_asm Sb_mem
