lib/sim/runner.pp.mli: Machine Perf Run_result
