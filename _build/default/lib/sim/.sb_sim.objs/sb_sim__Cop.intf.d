lib/sim/cop.pp.mli: Cpu
