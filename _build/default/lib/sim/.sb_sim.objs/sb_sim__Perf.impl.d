lib/sim/perf.pp.ml: Array Format List Ppx_deriving_runtime
