lib/sim/debugger.pp.ml: Cpu Engine Format List Machine Run_result Sb_isa Sb_mem String
