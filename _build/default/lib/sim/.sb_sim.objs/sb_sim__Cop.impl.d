lib/sim/cop.pp.ml: Array Cpu Sb_isa
