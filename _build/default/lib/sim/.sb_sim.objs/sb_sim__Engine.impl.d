lib/sim/engine.pp.ml: Machine Run_result
