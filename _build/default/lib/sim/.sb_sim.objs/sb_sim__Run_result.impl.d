lib/sim/run_result.pp.ml: Format Option Perf Printf
