lib/sim/cpu.pp.ml: Array Bool Format Sb_isa Sb_mmu Sb_util
