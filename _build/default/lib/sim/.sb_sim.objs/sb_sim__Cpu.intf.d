lib/sim/cpu.pp.mli: Format Sb_mmu
