lib/sim/runner.pp.ml: Machine Perf Run_result Sb_mem Unix
