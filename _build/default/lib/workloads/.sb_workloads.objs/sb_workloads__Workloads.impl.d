lib/workloads/workloads.ml: Char List Printf Sb_isa Sb_mem Sb_sim Simbench
