lib/workloads/workloads.mli: Sb_sim Simbench
