lib/dbt/version.mli: Config
