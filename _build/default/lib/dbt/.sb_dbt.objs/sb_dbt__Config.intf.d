lib/dbt/config.mli:
