lib/dbt/dbt.mli: Config Sb_isa Sb_sim
