lib/dbt/ir.mli: Sb_isa
