lib/dbt/config.ml:
