lib/dbt/page_cache.mli:
