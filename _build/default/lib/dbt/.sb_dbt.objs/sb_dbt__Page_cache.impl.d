lib/dbt/page_cache.ml: Array Printf
