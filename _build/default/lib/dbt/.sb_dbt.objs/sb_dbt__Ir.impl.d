lib/dbt/ir.ml: Array List Sb_isa Sb_sim Uop
