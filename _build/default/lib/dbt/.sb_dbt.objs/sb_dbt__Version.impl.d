lib/dbt/version.ml: Config List
