lib/dbt/dbt.ml: Alu_eval Arch_sig Array Bool Bytes Char Config Cop Cpu Cregs Exn Hashtbl Ir List Machine Page_cache Perf Printf Run_result Runner Sb_isa Sb_mem Sb_mmu Sb_sim Sb_util Uop
