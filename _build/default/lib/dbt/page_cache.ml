type entry = { vpn : int; ppn : int; ap : int; xn : bool; asid : int }

type slot = { e : entry; gen : int }

type t = {
  l1 : slot option array;
  l1_mask : int;
  l2 : slot option array;  (* empty array when disabled *)
  l2_mask : int;
  lazy_flush : bool;
  mutable gen : int;
  mutable last_flush_cost : int;
}

let check_pow2 what n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg (Printf.sprintf "Page_cache: %s must be a positive power of two" what)

let create ~l1_entries ~l2_entries ~lazy_flush =
  check_pow2 "l1_entries" l1_entries;
  if l2_entries <> 0 then check_pow2 "l2_entries" l2_entries;
  {
    l1 = Array.make l1_entries None;
    l1_mask = l1_entries - 1;
    l2 = Array.make l2_entries None;
    l2_mask = l2_entries - 1;
    lazy_flush;
    gen = 0;
    last_flush_cost = 0;
  }

let mix ~vpn ~asid = vpn lxor (asid * 0x9E3779B1)

let lookup_l1 t ~vpn ~asid =
  match t.l1.(mix ~vpn ~asid land t.l1_mask) with
  | Some { e; gen } when e.vpn = vpn && e.asid = asid && gen = t.gen -> Some e
  | _ -> None

let insert t e =
  t.l1.(mix ~vpn:e.vpn ~asid:e.asid land t.l1_mask) <- Some { e; gen = t.gen }

let lookup_l2 t ~vpn ~asid =
  if Array.length t.l2 = 0 then None
  else
    match t.l2.(mix ~vpn ~asid land t.l2_mask) with
    | Some { e; gen } when e.vpn = vpn && e.asid = asid && gen = t.gen ->
      insert t e;
      Some e
    | _ -> None

let demote t e =
  if Array.length t.l2 > 0 then
    t.l2.(mix ~vpn:e.vpn ~asid:e.asid land t.l2_mask) <- Some { e; gen = t.gen }

(* On L1 conflict the displaced entry moves to L2; callers use [insert]
   directly after a walk, so wire the demotion here. *)
let insert t e =
  let i = mix ~vpn:e.vpn ~asid:e.asid land t.l1_mask in
  (match t.l1.(i) with
  | Some { e = old; gen } when gen = t.gen && (old.vpn <> e.vpn || old.asid <> e.asid) ->
    demote t old
  | _ -> ());
  insert t e

let invalidate_page t ~vpn ~asid =
  let i1 = mix ~vpn ~asid land t.l1_mask in
  (match t.l1.(i1) with
  | Some { e; _ } when e.vpn = vpn && e.asid = asid -> t.l1.(i1) <- None
  | _ -> ());
  if Array.length t.l2 > 0 then begin
    let i2 = mix ~vpn ~asid land t.l2_mask in
    match t.l2.(i2) with
    | Some { e; _ } when e.vpn = vpn && e.asid = asid -> t.l2.(i2) <- None
    | _ -> ()
  end

let flush t =
  if t.lazy_flush then begin
    t.gen <- t.gen + 1;
    t.last_flush_cost <- 0
  end
  else begin
    Array.fill t.l1 0 (Array.length t.l1) None;
    Array.fill t.l2 0 (Array.length t.l2) None;
    t.last_flush_cost <- Array.length t.l1 + Array.length t.l2
  end

let flush_cost t = t.last_flush_cost
