(** The DBT's multi-level software page cache ("softmmu TLB").

    Level 1 is a small direct-mapped array probed inline by emitted code;
    level 2 is an optional larger victim cache probed by the slow-path
    helper before falling back to a hardware-style table walk.  Flushes can
    be eager (clear the arrays) or lazy (bump a generation tag), matching
    the [lazy_tlb_flush] knob. *)

type entry = { vpn : int; ppn : int; ap : int; xn : bool; asid : int }

type t

val create : l1_entries:int -> l2_entries:int -> lazy_flush:bool -> t

val lookup_l1 : t -> vpn:int -> asid:int -> entry option
(** The inline fast path. *)

val lookup_l2 : t -> vpn:int -> asid:int -> entry option
(** Slow-path probe; on a hit the entry is promoted to L1. *)

val insert : t -> entry -> unit
val invalidate_page : t -> vpn:int -> asid:int -> unit
val flush : t -> unit

val flush_cost : t -> int
(** Entries actually cleared by the last flush (0 under lazy flushing) —
    exposed for tests and the ablation bench. *)
