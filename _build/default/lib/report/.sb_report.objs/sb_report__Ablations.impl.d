lib/report/ablations.ml: List Printf Sb_arch_sba Sb_dbt Sb_interp Sb_isa Sb_sim Sb_util Sb_virt Simbench String
