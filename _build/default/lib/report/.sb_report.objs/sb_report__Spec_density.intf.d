lib/report/spec_density.mli: Sb_isa
