lib/report/spec_density.ml: List Sb_isa Sb_sim Sb_workloads Simbench
