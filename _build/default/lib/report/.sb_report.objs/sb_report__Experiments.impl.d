lib/report/experiments.ml: Hashtbl List Printf Sb_dbt Sb_isa Sb_sim Sb_util Sb_workloads Simbench Spec_density String Sys
