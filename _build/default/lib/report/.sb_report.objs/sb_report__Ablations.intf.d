lib/report/ablations.mli:
