lib/report/experiments.mli: Sb_dbt Sb_isa
