module Perf = Sb_sim.Perf

type t = Perf.t

let measure ?(arch = Sb_isa.Arch_sig.Sba) ?(iters = 10) () =
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.interp arch in
  let total = Perf.create () in
  List.iter
    (fun w ->
      let outcome = Sb_workloads.Workloads.run ~iters ~support ~engine w in
      match outcome.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf with
      | Some kp ->
        List.iter (fun c -> Perf.add total c (Perf.get kp c)) Perf.all
      | None -> ())
    Sb_workloads.Workloads.all;
  total

let insns t = Perf.get t Perf.Insns

let get = Perf.get

(* Direct branches are the only conditional ones in both guest ISAs, so
   taken-direct = taken - indirect. *)
let taken_direct t = get t Perf.Branch_taken - get t Perf.Branch_indirect

let ops t ~bench_name =
  match bench_name with
  | "Small Blocks" | "Large Blocks" -> get t Perf.Smc_invalidations
  | "Inter-Page Direct" -> get t Perf.Branch_cross_direct
  | "Inter-Page Indirect" -> get t Perf.Branch_cross_indirect
  | "Intra-Page Direct" -> taken_direct t - get t Perf.Branch_cross_direct
  | "Intra-Page Indirect" ->
    get t Perf.Branch_indirect - get t Perf.Branch_cross_indirect
  | "Data Access Fault" -> get t Perf.Data_abort
  | "Instruction Access Fault" -> get t Perf.Prefetch_abort
  | "Undefined Instruction" -> get t Perf.Undef_insn
  | "System Call" -> get t Perf.Svc_taken
  | "External Software Interrupt" -> get t Perf.Irq_taken
  | "Memory Mapped Device" -> get t Perf.Io_reads + get t Perf.Io_writes
  | "Coprocessor Access" -> get t Perf.Cop_reads + get t Perf.Cop_writes
  | "Cold Memory Access" -> get t Perf.Tlb_miss
  | "Hot Memory Access" ->
    get t Perf.Loads + get t Perf.Stores - get t Perf.Tlb_miss
  | "Nonprivileged Access" -> get t Perf.User_accesses
  | "TLB Eviction" -> get t Perf.Tlb_inv_page_ops
  | "TLB Flush" -> get t Perf.Tlb_flush_ops
  | _ -> -1

let density t ~bench_name =
  let n = ops t ~bench_name in
  if n < 0 || insns t = 0 then nan else float_of_int n /. float_of_int (insns t)
