(** Experiment drivers: one entry point per table/figure of the paper's
    evaluation (see DESIGN.md section 6 for the index).

    Each driver runs the required sweep and renders a plain-text table (for
    the paper's tables) or a labelled series table (for its line graphs).
    Results are memoized per (engine-configuration, architecture, scale), so
    Figures 2, 6 and 8 — which share the QEMU-version sweep — do not re-run
    each other's measurements within a process. *)

type config = {
  scale : int;          (** Figure 3 iteration counts are divided by this *)
  workload_iters : int; (** kernel passes per workload run *)
  repeats : int;        (** timing repeats; the minimum is reported *)
  spec_density_iters : int;
}

val default_config : config

val quick_config : config
(** Cheap settings for tests and smoke runs. *)

val fig2 : ?config:config -> unit -> string
(** sjeng vs mcf vs overall SPEC rating across QEMU versions. *)

val fig3 : ?config:config -> unit -> string
(** The benchmark table: iterations and operation densities. *)

val fig4 : unit -> string
(** Implementation-technique matrix of the evaluated platforms. *)

val fig5 : unit -> string
(** Host environment description. *)

val fig6 : ?config:config -> unit -> string
(** Per-category SimBench speedups across QEMU versions, both guests. *)

val fig7 : ?config:config -> unit -> string
(** Full suite runtimes on every platform, both guests. *)

val fig8 : ?config:config -> unit -> string
(** Geomean SPEC vs geomean SimBench speedup across QEMU versions. *)

val extensions : ?config:config -> unit -> string
(** The extension benchmarks (future work implemented) across the five
    platforms. *)

val all : ?config:config -> unit -> string
(** Every experiment, in figure order, with headers. *)

(** Raw data access for tests and ablations. *)

val suite_times_for_version :
  arch:Sb_isa.Arch_sig.arch_id ->
  config:config ->
  Sb_dbt.Config.t ->
  (string * float) list
(** Kernel seconds per benchmark for one DBT configuration (memoized). *)

val workload_times_for_version :
  arch:Sb_isa.Arch_sig.arch_id ->
  config:config ->
  Sb_dbt.Config.t ->
  (string * float) list
