(** The SPEC-column operation densities of Figure 3.

    Runs the SPEC-analog workload set on the fast interpreter (the canonical
    counting engine: it retires one instruction at a time and maintains the
    page-crossing branch counters) and maps each SimBench benchmark to the
    rate of its tested operation in the aggregated workload stream. *)

type t

val measure : ?arch:Sb_isa.Arch_sig.arch_id -> ?iters:int -> unit -> t
(** Aggregate kernel-phase counters over all twelve workloads (default
    architecture SBA-32). *)

val density : t -> bench_name:string -> float
(** Tested operations per instruction for the given Figure 3 benchmark's
    operation class across the aggregated workloads; [nan] for an unknown
    benchmark name. *)

val insns : t -> int
(** Total kernel instructions aggregated. *)
