module Tablefmt = Sb_util.Tablefmt
module Stats = Sb_util.Stats

type config = {
  scale : int;
  workload_iters : int;
  repeats : int;
  spec_density_iters : int;
}

let default_config =
  { scale = 2_000; workload_iters = 60; repeats = 2; spec_density_iters = 10 }

let quick_config =
  { scale = 100_000; workload_iters = 5; repeats = 1; spec_density_iters = 6 }

let arch_label = function
  | Sb_isa.Arch_sig.Sba -> "ARM Guest (SBA-32)"
  | Sb_isa.Arch_sig.Vlx -> "x86 Guest (VLX-32)"

(* ------------------------------------------------------------------ *)
(* Measurement memoization                                              *)
(* ------------------------------------------------------------------ *)

type key = {
  k_arch : Sb_isa.Arch_sig.arch_id;
  k_dbt : Sb_dbt.Config.t;
  k_scale : int;
  k_repeats : int;
  k_kind : [ `Suite | `Workloads of int ];
}

let memo : (key, (string * float) list) Hashtbl.t = Hashtbl.create 64

let min_time ~repeats f =
  let rec go best n =
    if n = 0 then best
    else
      let t = f () in
      go (min best t) (n - 1)
  in
  go (f ()) (max 0 (repeats - 1))

let suite_times_for_version ~arch ~config dbt_config =
  let key =
    {
      k_arch = arch;
      k_dbt = dbt_config;
      k_scale = config.scale;
      k_repeats = config.repeats;
      k_kind = `Suite;
    }
  in
  match Hashtbl.find_opt memo key with
  | Some times -> times
  | None ->
    let support = Simbench.Engines.support arch in
    let engine = Simbench.Engines.dbt_configured arch dbt_config in
    let times =
      List.map
        (fun bench ->
          let seconds =
            min_time ~repeats:config.repeats (fun () ->
                (Simbench.Harness.run ~scale:config.scale ~support ~engine bench)
                  .Simbench.Harness.kernel_seconds)
          in
          (bench.Simbench.Bench.name, seconds))
        Simbench.Suite.all
    in
    Hashtbl.add memo key times;
    times

let workload_times_for_version ~arch ~config dbt_config =
  let key =
    {
      k_arch = arch;
      k_dbt = dbt_config;
      k_scale = config.scale;
      k_repeats = config.repeats;
      k_kind = `Workloads config.workload_iters;
    }
  in
  match Hashtbl.find_opt memo key with
  | Some times -> times
  | None ->
    let support = Simbench.Engines.support arch in
    let engine = Simbench.Engines.dbt_configured arch dbt_config in
    let times =
      List.map
        (fun w ->
          let seconds =
            min_time ~repeats:config.repeats (fun () ->
                (Sb_workloads.Workloads.run ~iters:config.workload_iters ~support
                   ~engine w)
                  .Simbench.Harness.kernel_seconds)
          in
          (w.Sb_workloads.Workloads.name, seconds))
        Sb_workloads.Workloads.all
    in
    Hashtbl.add memo key times;
    times

(* The twenty release names map onto a handful of distinct configurations;
   measure each configuration once. *)
let version_names = Sb_dbt.Version.names

let config_of_version name =
  match Sb_dbt.Version.find name with
  | Some c -> c
  | None -> invalid_arg ("unknown version " ^ name)

let baseline_dbt = config_of_version Sb_dbt.Version.baseline_name

(* ------------------------------------------------------------------ *)
(* Figure 2                                                             *)
(* ------------------------------------------------------------------ *)

let fig2 ?(config = default_config) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let base_times = workload_times_for_version ~arch ~config baseline_dbt in
  let speedups_for version_name =
    let times = workload_times_for_version ~arch ~config (config_of_version version_name) in
    List.map
      (fun (name, t) -> (name, Stats.speedup ~baseline:(List.assoc name base_times) t))
      times
  in
  let per_version = List.map (fun v -> (v, speedups_for v)) version_names in
  let series_of name = List.map (fun (_, s) -> List.assoc name s) per_version in
  let overall =
    List.map
      (fun (_, speedups) ->
        Stats.weighted_geomean
          (List.map
             (fun w ->
               ( List.assoc w.Sb_workloads.Workloads.name speedups,
                 w.Sb_workloads.Workloads.weight ))
             Sb_workloads.Workloads.all))
      per_version
  in
  "Figure 2: relative performance of sjeng and mcf and the overall SPEC\n\
   rating (weighted geometric mean) across QEMU-DBT versions (v1.7.0 = 1.0)\n\n"
  ^ Tablefmt.render_series ~x_label:"version" ~x_values:version_names
      [
        ("sjeng", series_of "sjeng");
        ("SPEC (overall)", overall);
        ("mcf", series_of "mcf");
      ]

(* ------------------------------------------------------------------ *)
(* Figure 3                                                             *)
(* ------------------------------------------------------------------ *)

let fig3 ?(config = default_config) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.interp arch in
  let spec = Spec_density.measure ~arch ~iters:config.spec_density_iters () in
  let rows =
    List.map
      (fun bench ->
        let outcome = Simbench.Harness.run ~scale:config.scale ~support ~engine bench in
        [
          bench.Simbench.Bench.name
          ^ (if bench.Simbench.Bench.platform_specific then " +" else "");
          Simbench.Category.name bench.Simbench.Bench.category;
          string_of_int bench.Simbench.Bench.default_iters;
          Tablefmt.sci_cell (Simbench.Harness.density outcome);
          Tablefmt.sci_cell
            (Spec_density.density spec ~bench_name:bench.Simbench.Bench.name);
        ])
      Simbench.Suite.all
  in
  "Figure 3: the SimBench suite with default iteration counts and measured\n\
   operation densities (tested operations per kernel instruction), for the\n\
   suite itself and across the SPEC-analog workloads.  '+' marks benchmarks\n\
   with significant platform-specific portions.\n\n"
  ^ Tablefmt.render
      ~header:[ "Benchmark"; "Category"; "Iterations"; "SimBench"; "SPEC" ]
      rows

(* ------------------------------------------------------------------ *)
(* Figure 4                                                             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  let engines = Simbench.Engines.paper_set Sb_isa.Arch_sig.Sba in
  let feature_keys =
    [
      "Execution Model";
      "Memory Access";
      "Code Generation";
      "Control Flow";
      "Interrupts";
      "Synchronous Exceptions";
      "Undefined Instruction";
    ]
  in
  let rows =
    List.map
      (fun key ->
        key
        :: List.map
             (fun (_, engine) ->
               match List.assoc_opt key (Sb_sim.Engine.features engine) with
               | Some v -> v
               | None -> "-")
             engines)
      feature_keys
  in
  let align =
    Tablefmt.Left :: List.map (fun _ -> Tablefmt.Left) engines
  in
  "Figure 4: implementation techniques of the evaluated platforms.\n\n"
  ^ Tablefmt.render ~align ~header:("Feature" :: List.map fst engines) rows

(* ------------------------------------------------------------------ *)
(* Figure 5                                                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  let rows =
    [
      [ "Host"; Printf.sprintf "OCaml %s (%s)" Sys.ocaml_version Sys.os_type ];
      [ "Word size"; string_of_int Sys.word_size ];
      [ "Guest ISAs"; "SBA-32 (ARM analog), VLX-32 (x86 analog)" ];
      [ "Guest RAM"; "32 MiB" ];
      [
        "Platforms";
        "dbt / interp / detailed / virt / native (QEMU-DBT / SimIt-ARM / \
         Gem5 / QEMU-KVM / hardware analogs)";
      ];
    ]
  in
  let align = [ Tablefmt.Left; Tablefmt.Left ] in
  "Figure 5: experimental environment (the paper's hardware table; here the\n\
   'hardware' is the simulator substrate itself, see DESIGN.md).\n\n"
  ^ Tablefmt.render ~align ~header:[ "Property"; "Value" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 6                                                             *)
(* ------------------------------------------------------------------ *)

let fig6_arch ~config arch =
  let base = suite_times_for_version ~arch ~config baseline_dbt in
  let per_version =
    List.map
      (fun v ->
        (v, suite_times_for_version ~arch ~config (config_of_version v)))
      version_names
  in
  let speedup_series bench_name =
    List.map
      (fun (_, times) ->
        Stats.speedup ~baseline:(List.assoc bench_name base)
          (List.assoc bench_name times))
      per_version
  in
  let category_block category =
    let benches = Simbench.Suite.by_category category in
    let series =
      List.map
        (fun b -> (b.Simbench.Bench.name, speedup_series b.Simbench.Bench.name))
        benches
    in
    Printf.sprintf "%s — %s\n\n%s\n" (arch_label arch)
      (Simbench.Category.name category)
      (Tablefmt.render_series ~x_label:"version" ~x_values:version_names series)
  in
  String.concat "\n" (List.map category_block Simbench.Category.all)

let fig6 ?(config = default_config) () =
  "Figure 6: SimBench speedups per category across QEMU-DBT versions\n\
   (v1.7.0 = 1.0; larger is faster).\n\n"
  ^ fig6_arch ~config Sb_isa.Arch_sig.Sba
  ^ "\n"
  ^ fig6_arch ~config Sb_isa.Arch_sig.Vlx

(* ------------------------------------------------------------------ *)
(* Figure 7                                                             *)
(* ------------------------------------------------------------------ *)

let fig7_arch ~config arch =
  let support = Simbench.Engines.support arch in
  let engines = Simbench.Engines.paper_set arch in
  let columns =
    List.map
      (fun (label, engine) ->
        ( label,
          List.map
            (fun bench ->
              let seconds =
                min_time ~repeats:config.repeats (fun () ->
                    (Simbench.Harness.run ~scale:config.scale ~support ~engine
                       bench)
                      .Simbench.Harness.kernel_seconds)
              in
              (bench.Simbench.Bench.name, seconds))
            Simbench.Suite.all ))
      engines
  in
  let rows =
    List.map
      (fun bench ->
        let name = bench.Simbench.Bench.name in
        let iters =
          max 10 (bench.Simbench.Bench.default_iters / config.scale)
        in
        (name :: string_of_int iters
        :: List.map
             (fun (_, times) -> Printf.sprintf "%.4f" (List.assoc name times))
             columns))
      Simbench.Suite.all
  in
  Printf.sprintf "%s (kernel seconds; iterations = Figure 3 counts / %d)\n\n%s"
    (arch_label arch) config.scale
    (Tablefmt.render
       ~header:(("Benchmark" :: "Iters" :: List.map fst columns))
       rows)

let fig7 ?(config = default_config) () =
  "Figure 7: SimBench runtimes on every platform.\n\n"
  ^ fig7_arch ~config Sb_isa.Arch_sig.Sba
  ^ "\n\n"
  ^ fig7_arch ~config Sb_isa.Arch_sig.Vlx

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let fig8 ?(config = default_config) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let base_suite = suite_times_for_version ~arch ~config baseline_dbt in
  let base_workloads = workload_times_for_version ~arch ~config baseline_dbt in
  let geo_suite version =
    let times = suite_times_for_version ~arch ~config (config_of_version version) in
    Stats.geomean
      (List.map
         (fun (name, t) -> Stats.speedup ~baseline:(List.assoc name base_suite) t)
         times)
  in
  let geo_workloads version =
    let times =
      workload_times_for_version ~arch ~config (config_of_version version)
    in
    Stats.geomean
      (List.map
         (fun (name, t) ->
           Stats.speedup ~baseline:(List.assoc name base_workloads) t)
         times)
  in
  "Figure 8: geometric-mean speedup of the SPEC-analog workloads and of\n\
   SimBench across QEMU-DBT versions (v1.7.0 = 1.0).\n\n"
  ^ Tablefmt.render_series ~x_label:"version" ~x_values:version_names
      [
        ("SPEC", List.map geo_workloads version_names);
        ("SimBench", List.map geo_suite version_names);
      ]

let extensions ?(config = default_config) () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engines = Simbench.Engines.paper_set arch in
  let rows =
    List.map
      (fun bench ->
        bench.Simbench.Bench.name
        :: List.map
             (fun (_, engine) ->
               let seconds =
                 min_time ~repeats:config.repeats (fun () ->
                     (Simbench.Harness.run ~scale:config.scale ~support ~engine
                        bench)
                       .Simbench.Harness.kernel_seconds)
               in
               Printf.sprintf "%.4f" seconds)
             engines)
      Simbench.Suite_ext.all
  in
  "Extension benchmarks (the paper's future work): kernel seconds.\n\n"
  ^ Tablefmt.render
      ~header:("Benchmark" :: List.map fst engines)
      rows

let all ?(config = default_config) () =
  String.concat "\n\n"
    [
      fig2 ~config ();
      fig3 ~config ();
      fig4 ();
      fig5 ();
      fig6 ~config ();
      fig7 ~config ();
      fig8 ~config ();
      extensions ~config ();
    ]
