type reg = int

type insn =
  | Nop
  | Halt
  | Wfi
  | Alu_rr of Sb_isa.Uop.alu_op * reg * reg * reg
  | Alu_ri of Sb_isa.Uop.alu_op * reg * reg * int
  | Movi of reg * int
  | Movi_sym of reg * string
  | Mov of reg * reg
  | Cmp_rr of reg * reg
  | Cmp_ri of reg * int
  | Jmp of string
  | Call of string
  | Jcc of Sb_isa.Uop.cond * string
  | Jmp_r of reg
  | Call_r of reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Loadb of reg * reg * int
  | Storeb of reg * reg * int
  | Svc of int
  | Eret
  | Ud2
  | Cpr of reg * int
  | Cpw of int * reg
  | Copreset
  | Tlbi of reg
  | Tlbiall

let sp = 5
let lr = 6

let li rd v = [ Movi (rd, v land 0xFFFF_FFFF) ]
let la rd label = [ Movi_sym (rd, label) ]

let size = function
  | Nop | Halt | Wfi | Eret | Tlbiall | Copreset -> 1
  | Ud2 | Mov _ | Cmp_rr _ | Jmp_r _ | Call_r _ | Svc _ | Tlbi _ -> 2
  | Alu_rr _ | Cpr _ | Cpw _ -> 3
  | Load _ | Store _ | Loadb _ | Storeb _ -> 4
  | Jmp _ | Call _ -> 5
  | Alu_ri _ | Movi _ | Movi_sym _ | Cmp_ri _ | Jcc _ -> 6

let asm_error fmt = Printf.ksprintf (fun s -> raise (Sb_asm.Assembler.Error s)) fmt

let check_reg r = if r < 0 || r > 7 then asm_error "register r%d out of range" r

let alu_index = function
  | Sb_isa.Uop.Add -> 0
  | Sub -> 1
  | And_ -> 2
  | Orr -> 3
  | Xor -> 4
  | Lsl -> 5
  | Lsr -> 6
  | Asr -> 7
  | Mul -> 8

let alu_of_index = function
  | 0 -> Some Sb_isa.Uop.Add
  | 1 -> Some Sub
  | 2 -> Some And_
  | 3 -> Some Orr
  | 4 -> Some Xor
  | 5 -> Some Lsl
  | 6 -> Some Lsr
  | 7 -> Some Asr
  | 8 -> Some Mul
  | _ -> None

let cond_to_byte = function
  | Sb_isa.Uop.Always -> 0
  | Eq -> 1
  | Ne -> 2
  | Lt -> 3
  | Ge -> 4
  | Ltu -> 5
  | Geu -> 6

let cond_of_byte = function
  | 0 -> Some Sb_isa.Uop.Always
  | 1 -> Some Eq
  | 2 -> Some Ne
  | 3 -> Some Lt
  | 4 -> Some Ge
  | 5 -> Some Ltu
  | 6 -> Some Geu
  | _ -> None

let regs_byte a b =
  check_reg a;
  check_reg b;
  Char.chr ((a lsl 4) lor b)

let imm32_bytes v =
  let buf = Bytes.create 4 in
  Bytes.set_int32_le buf 0 (Int32.of_int v);
  Bytes.to_string buf

let imm16_bytes v =
  if v < -32768 || v > 32767 then asm_error "offset %d exceeds simm16" v;
  let buf = Bytes.create 2 in
  Bytes.set_int16_le buf 0 v;
  Bytes.to_string buf

let byte n = String.make 1 (Char.chr (n land 0xFF))

(* Relative displacements are measured from the end of the instruction,
   x86-style. *)
let rel32 ~pc ~len ~target = imm32_bytes ((target - (pc + len)) land 0xFFFF_FFFF)

let encode ~resolve ~pc insn =
  let len = size insn in
  match insn with
  | Nop -> byte 0x00
  | Halt -> byte 0x01
  | Wfi -> byte 0x02
  | Alu_rr (op, rd, rn, rm) ->
    check_reg rm;
    byte (0x10 + alu_index op) ^ String.make 1 (regs_byte rd rn) ^ byte rm
  | Alu_ri (op, rd, rn, imm) ->
    byte (0x20 + alu_index op) ^ String.make 1 (regs_byte rd rn) ^ imm32_bytes imm
  | Movi (rd, imm) -> byte 0x30 ^ String.make 1 (regs_byte rd 0) ^ imm32_bytes imm
  | Movi_sym (rd, name) ->
    byte 0x30 ^ String.make 1 (regs_byte rd 0) ^ imm32_bytes (resolve name)
  | Mov (rd, rm) -> byte 0x31 ^ String.make 1 (regs_byte rd rm)
  | Cmp_rr (rn, rm) -> byte 0x32 ^ String.make 1 (regs_byte rn rm)
  | Cmp_ri (rn, imm) -> byte 0x33 ^ String.make 1 (regs_byte rn 0) ^ imm32_bytes imm
  | Jmp name -> byte 0x40 ^ rel32 ~pc ~len ~target:(resolve name)
  | Call name -> byte 0x41 ^ rel32 ~pc ~len ~target:(resolve name)
  | Jcc (cond, name) ->
    byte 0x42 ^ byte (cond_to_byte cond) ^ rel32 ~pc ~len ~target:(resolve name)
  | Jmp_r rm ->
    check_reg rm;
    byte 0x43 ^ byte rm
  | Call_r rm ->
    check_reg rm;
    byte 0x44 ^ byte rm
  | Load (rd, rn, off) -> byte 0x50 ^ String.make 1 (regs_byte rd rn) ^ imm16_bytes off
  | Store (rs, rn, off) -> byte 0x51 ^ String.make 1 (regs_byte rs rn) ^ imm16_bytes off
  | Loadb (rd, rn, off) -> byte 0x52 ^ String.make 1 (regs_byte rd rn) ^ imm16_bytes off
  | Storeb (rs, rn, off) -> byte 0x53 ^ String.make 1 (regs_byte rs rn) ^ imm16_bytes off
  | Svc imm ->
    if imm < 0 || imm > 0xFF then asm_error "svc immediate %d exceeds imm8" imm;
    byte 0x60 ^ byte imm
  | Eret -> byte 0x61
  | Ud2 -> byte 0x0F ^ byte 0x0B
  | Cpr (rd, creg) ->
    if creg < 0 || creg > 0xFF then asm_error "coprocessor register %d" creg;
    byte 0x62 ^ String.make 1 (regs_byte rd 0) ^ byte creg
  | Cpw (creg, rs) ->
    if creg < 0 || creg > 0xFF then asm_error "coprocessor register %d" creg;
    byte 0x63 ^ String.make 1 (regs_byte rs 0) ^ byte creg
  | Copreset -> byte 0x66
  | Tlbi rm ->
    check_reg rm;
    byte 0x64 ^ byte rm
  | Tlbiall -> byte 0x65

module Encoder = struct
  type nonrec insn = insn

  let size = size
  let encode = encode
end

module Asm = Sb_asm.Assembler.Make (Encoder)
