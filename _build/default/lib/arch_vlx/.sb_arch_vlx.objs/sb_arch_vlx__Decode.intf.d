lib/arch_vlx/decode.mli: Sb_isa
