lib/arch_vlx/insn.mli: Sb_asm Sb_isa
