lib/arch_vlx/decode.ml: Insn Sb_isa Sb_util Uop
