lib/arch_vlx/arch.mli: Sb_isa
