lib/arch_vlx/insn.ml: Bytes Char Int32 Printf Sb_asm Sb_isa String
