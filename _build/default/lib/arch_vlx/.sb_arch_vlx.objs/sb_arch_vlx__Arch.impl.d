lib/arch_vlx/arch.ml: Decode Insn Sb_isa
