(** VLX-32 as an engine-pluggable architecture. *)

include Sb_isa.Arch_sig.ARCH
