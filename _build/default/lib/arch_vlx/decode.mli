(** VLX-32 decoder: variable-length byte stream into micro-ops. *)

val decode : fetch8:(int -> int) -> addr:int -> Sb_isa.Uop.decoded
(** Unknown opcode bytes decode to a one-byte {!Sb_isa.Uop.Undef};
    the canonical two-byte [0x0F 0x0B] pair decodes to a two-byte one, so
    handlers can skip UD2 by advancing two bytes (as on x86). *)
