let name = "vlx32"
let id = Sb_isa.Arch_sig.Vlx
let nregs = 8
let sp_reg = Insn.sp
let link_reg = Insn.lr
let max_insn_bytes = 6
let decode = Decode.decode
