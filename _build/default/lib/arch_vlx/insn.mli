(** VLX-32 instruction set: the x86-flavoured second architecture.

    VLX-32 has 8 general registers (r5 = stack pointer, r6 = link register
    by convention) and a variable-length encoding of 1 to 6 bytes.  Like the
    paper's x86 port it has {e no} non-privileged memory access — the
    Nonprivileged Access benchmark is a no-op on this architecture — and its
    "safe coprocessor access" is COPRESET, the analog of resetting the x87
    coprocessor.  The canonical undefined instruction is the two-byte
    [0x0F 0x0B] pair, mirroring x86 [UD2]. *)

type reg = int
(** 0..7. *)

type insn =
  | Nop
  | Halt
  | Wfi
  | Alu_rr of Sb_isa.Uop.alu_op * reg * reg * reg    (** rd, rn, rm *)
  | Alu_ri of Sb_isa.Uop.alu_op * reg * reg * int    (** rd, rn, imm32 *)
  | Movi of reg * int
  | Movi_sym of reg * string    (** rd := label address *)
  | Mov of reg * reg
  | Cmp_rr of reg * reg
  | Cmp_ri of reg * int
  | Jmp of string
  | Call of string              (** link register convention: r6 *)
  | Jcc of Sb_isa.Uop.cond * string
  | Jmp_r of reg
  | Call_r of reg
  | Load of reg * reg * int     (** rd, \[rn + simm16\] *)
  | Store of reg * reg * int
  | Loadb of reg * reg * int
  | Storeb of reg * reg * int
  | Svc of int                  (** imm8 *)
  | Eret
  | Ud2
  | Cpr of reg * int            (** rd := coprocessor\[creg\] *)
  | Cpw of int * reg            (** coprocessor\[creg\] := rs *)
  | Copreset                    (** safe coprocessor access: FPCTL := 0 *)
  | Tlbi of reg
  | Tlbiall

val sp : reg
val lr : reg

val li : reg -> int -> insn list
val la : reg -> string -> insn list

val size : insn -> int

(** Encoding tables shared with the decoder. *)

val alu_index : Sb_isa.Uop.alu_op -> int

val alu_of_index : int -> Sb_isa.Uop.alu_op option
val cond_to_byte : Sb_isa.Uop.cond -> int
val cond_of_byte : int -> Sb_isa.Uop.cond option

module Encoder : Sb_asm.Assembler.ENCODER with type insn = insn

module Asm : sig
  val assemble :
    ?base:int -> ?entry:string -> insn Sb_asm.Assembler.item list -> Sb_asm.Program.t

  val layout : ?base:int -> insn Sb_asm.Assembler.item list -> (string * int) list
end
