open Sb_isa

let lr = Insn.lr

let fetch16 fetch8 a = fetch8 a lor (fetch8 (a + 1) lsl 8)

let fetch32 fetch8 a =
  fetch8 a
  lor (fetch8 (a + 1) lsl 8)
  lor (fetch8 (a + 2) lsl 16)
  lor (fetch8 (a + 3) lsl 24)

let simm16 v = Sb_util.U32.to_signed (Sb_util.U32.sign_extend ~bits:16 v)

let hi_reg b = (b lsr 4) land 7
let lo_reg b = b land 7

let decode ~fetch8 ~addr =
  let op = fetch8 addr in
  let make length uops = Uop.make_decoded ~addr ~length uops in
  let one length uop = make length [ uop ] in
  match op with
  | 0x00 -> one 1 Uop.Nop
  | 0x01 -> one 1 Uop.Halt
  | 0x02 -> one 1 Uop.Wfi
  | _ when op >= 0x10 && op <= 0x18 -> (
    match Insn.alu_of_index (op - 0x10) with
    | Some alu ->
      let regs = fetch8 (addr + 1) in
      let rm = fetch8 (addr + 2) land 7 in
      one 3
        (Uop.Alu
           {
             op = alu;
             rd = Some (hi_reg regs);
             rn = Reg (lo_reg regs);
             rm = Reg rm;
             set_flags = false;
           })
    | None -> one 1 Uop.Undef)
  | _ when op >= 0x20 && op <= 0x28 -> (
    match Insn.alu_of_index (op - 0x20) with
    | Some alu ->
      let regs = fetch8 (addr + 1) in
      let imm = Sb_util.U32.to_signed (fetch32 fetch8 (addr + 2)) in
      one 6
        (Uop.Alu
           {
             op = alu;
             rd = Some (hi_reg regs);
             rn = Reg (lo_reg regs);
             rm = Imm imm;
             set_flags = false;
           })
    | None -> one 1 Uop.Undef)
  | 0x30 ->
    let rd = hi_reg (fetch8 (addr + 1)) in
    let imm = fetch32 fetch8 (addr + 2) in
    one 6 (Uop.Alu { op = Orr; rd = Some rd; rn = Imm 0; rm = Imm imm; set_flags = false })
  | 0x31 ->
    let regs = fetch8 (addr + 1) in
    one 2
      (Uop.Alu
         { op = Orr; rd = Some (hi_reg regs); rn = Reg (lo_reg regs); rm = Imm 0; set_flags = false })
  | 0x32 ->
    let regs = fetch8 (addr + 1) in
    one 2
      (Uop.Alu
         { op = Sub; rd = None; rn = Reg (hi_reg regs); rm = Reg (lo_reg regs); set_flags = true })
  | 0x33 ->
    let rn = hi_reg (fetch8 (addr + 1)) in
    let imm = Sb_util.U32.to_signed (fetch32 fetch8 (addr + 2)) in
    one 6 (Uop.Alu { op = Sub; rd = None; rn = Reg rn; rm = Imm imm; set_flags = true })
  | 0x40 ->
    let rel = Sb_util.U32.to_signed (fetch32 fetch8 (addr + 1)) in
    one 5
      (Uop.Branch
         { cond = Always; target = Direct ((addr + 5 + rel) land 0xFFFF_FFFF); link = None })
  | 0x41 ->
    let rel = Sb_util.U32.to_signed (fetch32 fetch8 (addr + 1)) in
    one 5
      (Uop.Branch
         { cond = Always; target = Direct ((addr + 5 + rel) land 0xFFFF_FFFF); link = Some lr })
  | 0x42 -> (
    match Insn.cond_of_byte (fetch8 (addr + 1)) with
    | Some cond ->
      let rel = Sb_util.U32.to_signed (fetch32 fetch8 (addr + 2)) in
      one 6
        (Uop.Branch { cond; target = Direct ((addr + 6 + rel) land 0xFFFF_FFFF); link = None })
    | None -> one 1 Uop.Undef)
  | 0x43 -> one 2 (Uop.Branch { cond = Always; target = Indirect (fetch8 (addr + 1) land 7); link = None })
  | 0x44 ->
    one 2 (Uop.Branch { cond = Always; target = Indirect (fetch8 (addr + 1) land 7); link = Some lr })
  | 0x50 ->
    let regs = fetch8 (addr + 1) in
    let off = simm16 (fetch16 fetch8 (addr + 2)) in
    one 4 (Uop.Load { width = W32; rd = hi_reg regs; base = Reg (lo_reg regs); offset = off; user = false })
  | 0x51 ->
    let regs = fetch8 (addr + 1) in
    let off = simm16 (fetch16 fetch8 (addr + 2)) in
    one 4 (Uop.Store { width = W32; rs = hi_reg regs; base = Reg (lo_reg regs); offset = off; user = false })
  | 0x52 ->
    let regs = fetch8 (addr + 1) in
    let off = simm16 (fetch16 fetch8 (addr + 2)) in
    one 4 (Uop.Load { width = W8; rd = hi_reg regs; base = Reg (lo_reg regs); offset = off; user = false })
  | 0x53 ->
    let regs = fetch8 (addr + 1) in
    let off = simm16 (fetch16 fetch8 (addr + 2)) in
    one 4 (Uop.Store { width = W8; rs = hi_reg regs; base = Reg (lo_reg regs); offset = off; user = false })
  | 0x60 -> one 2 (Uop.Svc (fetch8 (addr + 1)))
  | 0x61 -> one 1 Uop.Eret
  | 0x62 ->
    let rd = hi_reg (fetch8 (addr + 1)) in
    one 3 (Uop.Cop_read { rd; creg = fetch8 (addr + 2) })
  | 0x63 ->
    let rs = hi_reg (fetch8 (addr + 1)) in
    one 3 (Uop.Cop_write { creg = fetch8 (addr + 2); src = Reg rs })
  | 0x64 -> one 2 (Uop.Tlb_inv_page (fetch8 (addr + 1) land 7))
  | 0x65 -> one 1 Uop.Tlb_inv_all
  | 0x66 -> one 1 (Uop.Cop_write { creg = Sb_isa.Cregs.fpctl; src = Imm 0 })
  | 0x0F -> if fetch8 (addr + 1) = 0x0B then one 2 Uop.Undef else one 1 Uop.Undef
  | _ -> one 1 Uop.Undef
