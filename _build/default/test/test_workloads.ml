(* Tests for the SPEC-analog workloads: completion on every engine,
   cross-engine agreement, and the signature properties the paper's
   experiments rely on (differing operation mixes). *)

module Perf = Sb_sim.Perf
module W = Sb_workloads.Workloads

let engines arch =
  [
    ("interp", Simbench.Engines.interp arch);
    ("dbt", Simbench.Engines.dbt arch);
    ("detailed", Simbench.Engines.detailed arch);
    ("virt", Simbench.Engines.virt arch);
    ("native", Simbench.Engines.native arch);
  ]

let run ~arch ~engine ?(iters = 3) w =
  W.run ~iters ~support:(Simbench.Engines.support arch) ~engine w

let test_workload_all_engines arch w () =
  let outcomes = List.map (fun (l, e) -> (l, run ~arch ~engine:e w)) (engines arch) in
  let insns =
    List.map (fun (_, o) -> Sb_sim.Run_result.insns o.Simbench.Harness.result) outcomes
  in
  List.iter
    (fun (label, o) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s ran" w.W.name label)
        true
        (o.Simbench.Harness.kernel_insns > 100))
    outcomes;
  Alcotest.(check bool)
    (w.W.name ^ " whole-run instruction counts agree across engines")
    true
    (List.for_all (fun i -> i = List.hd insns) insns)

let workload_cases arch =
  List.map
    (fun w -> Alcotest.test_case w.W.name `Quick (test_workload_all_engines arch w))
    W.all

let kernel_counter w c =
  let arch = Sb_isa.Arch_sig.Sba in
  let o = run ~arch ~engine:(Simbench.Engines.interp arch) ~iters:4 w in
  ( Perf.get (Option.get o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf) c,
    o.Simbench.Harness.kernel_insns )

let ratio w c =
  let ops, insns = kernel_counter w c in
  float_of_int ops /. float_of_int insns

let test_registry () =
  Alcotest.(check int) "twelve workloads" 12 (List.length W.all);
  Alcotest.(check bool) "find" true (W.find "mcf" <> None);
  List.iter
    (fun w ->
      Alcotest.(check bool) (w.W.name ^ " weight") true (w.W.weight > 0.);
      Alcotest.(check bool)
        (w.W.name ^ " models a SPEC program")
        true
        (String.contains w.W.spec_name '.'))
    W.all

let test_signatures () =
  (* mcf is TLB-hostile; sjeng is not *)
  let mcf_miss = ratio (Option.get (W.find "mcf")) Perf.Tlb_miss in
  let sjeng_miss = ratio (Option.get (W.find "sjeng")) Perf.Tlb_miss in
  Alcotest.(check bool)
    (Printf.sprintf "mcf misses TLB more (%.4f vs %.4f)" mcf_miss sjeng_miss)
    true
    (mcf_miss > 10. *. sjeng_miss);
  (* sjeng is branch-heavy *)
  let sjeng_br = ratio (Option.get (W.find "sjeng")) Perf.Branch_direct in
  let lq_br = ratio (Option.get (W.find "libquantum")) Perf.Branch_direct in
  Alcotest.(check bool) "sjeng branchier than libquantum" true (sjeng_br > lq_br);
  (* h264 is load/store heavy *)
  let h264_mem = ratio (Option.get (W.find "h264ref")) Perf.Loads in
  let sjeng_mem = ratio (Option.get (W.find "sjeng")) Perf.Loads in
  Alcotest.(check bool) "h264 more memory traffic" true (h264_mem > sjeng_mem);
  (* perlbench performs system calls and console I/O *)
  let svc, _ = kernel_counter (Option.get (W.find "perlbench")) Perf.Svc_taken in
  Alcotest.(check bool) "perl syscalls" true (svc >= 4);
  let io, _ = kernel_counter (Option.get (W.find "perlbench")) Perf.Io_writes in
  Alcotest.(check bool) "perl console output" true (io >= 4);
  (* gcc and perlbench drive indirect control flow *)
  let gcc_ind = ratio (Option.get (W.find "gcc")) Perf.Branch_indirect in
  let lq_ind = ratio (Option.get (W.find "libquantum")) Perf.Branch_indirect in
  Alcotest.(check bool) "gcc indirect-heavy" true (gcc_ind > lq_ind);
  (* omnetpp takes timer interrupts (longer run: the timer period must
     elapse inside the kernel phase) *)
  let o =
    run ~arch:Sb_isa.Arch_sig.Sba
      ~engine:(Simbench.Engines.interp Sb_isa.Arch_sig.Sba)
      ~iters:16
      (Option.get (W.find "omnetpp"))
  in
  let irqs =
    Perf.get
      (Option.get o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf)
      Perf.Irq_taken
  in
  Alcotest.(check bool) "omnetpp timer irqs" true (irqs >= 1);
  (* mcf suffers paging events *)
  let faults, _ = kernel_counter (Option.get (W.find "mcf")) Perf.Data_abort in
  Alcotest.(check bool) "mcf paging" true (faults >= 4)

let test_vlx_port () =
  (* the same workload sources run on the second ISA *)
  let arch = Sb_isa.Arch_sig.Vlx in
  List.iter
    (fun w ->
      let o = run ~arch ~engine:(Simbench.Engines.interp arch) ~iters:2 w in
      Alcotest.(check bool) (w.W.name ^ " on vlx") true
        (o.Simbench.Harness.kernel_insns > 100))
    W.all

let () =
  Alcotest.run "sb_workloads"
    [
      ("engines-sba", workload_cases Sb_isa.Arch_sig.Sba);
      ( "properties",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "signatures" `Quick test_signatures;
          Alcotest.test_case "vlx port" `Quick test_vlx_port;
        ] );
    ]
