(* SBA-32 encoder/decoder tests. *)

module I = Sb_arch_sba.Insn
module D = Sb_arch_sba.Decode
module Uop = Sb_isa.Uop

let no_resolve name = Alcotest.failf "unexpected label %s" name

let decode_of ?(pc = 0x1000) ?(resolve = no_resolve) insn =
  let w = I.encode_word ~resolve ~pc insn in
  D.decode_word ~addr:pc w

let check_single ?pc ?resolve insn expect_uop =
  let d = decode_of ?pc ?resolve insn in
  Alcotest.(check int) "length" 4 d.Uop.length;
  match d.Uop.uops with
  | [ u ] -> expect_uop u
  | us -> Alcotest.failf "expected one uop, got %d" (List.length us)

let test_alu_rr () =
  check_single (I.Add (1, 2, I.Rm 3)) (function
    | Uop.Alu { op = Uop.Add; rd = Some 1; rn = Uop.Reg 2; rm = Uop.Reg 3; set_flags = false } -> ()
    | u -> Alcotest.failf "bad uop %s" (Format.asprintf "%a" Uop.pp u));
  check_single (I.Mul (15, 14, 13)) (function
    | Uop.Alu { op = Uop.Mul; rd = Some 15; rn = Uop.Reg 14; rm = Uop.Reg 13; _ } -> ()
    | _ -> Alcotest.fail "bad mul")

let test_alu_ri_signed () =
  check_single (I.Add (1, 2, I.Imm (-5))) (function
    | Uop.Alu { op = Uop.Add; rm = Uop.Imm (-5); _ } -> ()
    | _ -> Alcotest.fail "negative imm14 lost");
  check_single (I.Sub (0, 0, I.Imm 8191)) (function
    | Uop.Alu { op = Uop.Sub; rm = Uop.Imm 8191; _ } -> ()
    | _ -> Alcotest.fail "max imm14")

let test_movw_movt () =
  check_single (I.Movw (4, 0xBEEF)) (function
    | Uop.Alu { rd = Some 4; rn = Uop.Imm 0; rm = Uop.Imm 0xBEEF; _ } -> ()
    | _ -> Alcotest.fail "movw");
  let d = decode_of (I.Movt (4, 0xDEAD)) in
  match d.Uop.uops with
  | [ Uop.Alu { op = Uop.And_; rm = Uop.Imm 0xFFFF; _ };
      Uop.Alu { op = Uop.Orr; rm = Uop.Imm high; _ } ] ->
    Alcotest.(check int) "movt high" (0xDEAD lsl 16) high
  | _ -> Alcotest.fail "movt shape"

let test_cmp_sets_flags () =
  check_single (I.Cmp (3, I.Rm 4)) (function
    | Uop.Alu { op = Uop.Sub; rd = None; set_flags = true; _ } -> ()
    | _ -> Alcotest.fail "cmp")

let test_branches () =
  let resolve = function "target" -> 0x2000 | n -> no_resolve n in
  check_single ~pc:0x1000 ~resolve (I.B "target") (function
    | Uop.Branch { cond = Uop.Always; target = Uop.Direct 0x2000; link = None } -> ()
    | _ -> Alcotest.fail "b");
  check_single ~pc:0x1000 ~resolve (I.Bl "target") (function
    | Uop.Branch { link = Some 14; _ } -> ()
    | _ -> Alcotest.fail "bl links lr");
  (* backwards conditional *)
  let resolve = function "back" -> 0x0F00 | n -> no_resolve n in
  check_single ~pc:0x1000 ~resolve (I.Bcc (Uop.Ne, "back")) (function
    | Uop.Branch { cond = Uop.Ne; target = Uop.Direct 0x0F00; link = None } -> ()
    | _ -> Alcotest.fail "bcc backwards");
  check_single (I.Br 7) (function
    | Uop.Branch { target = Uop.Indirect 7; link = None; _ } -> ()
    | _ -> Alcotest.fail "br");
  check_single (I.Blr 7) (function
    | Uop.Branch { target = Uop.Indirect 7; link = Some 14; _ } -> ()
    | _ -> Alcotest.fail "blr")

let test_memory () =
  check_single (I.Ldr (1, 2, -4)) (function
    | Uop.Load { width = Uop.W32; rd = 1; base = Uop.Reg 2; offset = -4; user = false } -> ()
    | _ -> Alcotest.fail "ldr");
  check_single (I.Strb (3, 4, 100)) (function
    | Uop.Store { width = Uop.W8; rs = 3; offset = 100; _ } -> ()
    | _ -> Alcotest.fail "strb");
  check_single (I.Ldrt (5, 6, 0)) (function
    | Uop.Load { user = true; _ } -> ()
    | _ -> Alcotest.fail "ldrt user bit");
  check_single (I.Strt (5, 6, 8)) (function
    | Uop.Store { user = true; _ } -> ()
    | _ -> Alcotest.fail "strt user bit")

let test_system () =
  check_single I.Eret (function Uop.Eret -> () | _ -> Alcotest.fail "eret");
  check_single I.Udf (function Uop.Undef -> () | _ -> Alcotest.fail "udf");
  check_single (I.Svc 42) (function Uop.Svc 42 -> () | _ -> Alcotest.fail "svc");
  check_single (I.Mrc (3, Sb_isa.Cregs.dacr)) (function
    | Uop.Cop_read { rd = 3; creg } when creg = Sb_isa.Cregs.dacr -> ()
    | _ -> Alcotest.fail "mrc");
  check_single (I.Mcr (Sb_isa.Cregs.ttbr, 9)) (function
    | Uop.Cop_write { creg; src = Uop.Reg 9 } when creg = Sb_isa.Cregs.ttbr -> ()
    | _ -> Alcotest.fail "mcr");
  check_single (I.Tlbi 2) (function
    | Uop.Tlb_inv_page 2 -> ()
    | _ -> Alcotest.fail "tlbi");
  check_single I.Tlbiall (function Uop.Tlb_inv_all -> () | _ -> Alcotest.fail "tlbiall");
  check_single I.Wfi (function Uop.Wfi -> () | _ -> Alcotest.fail "wfi");
  check_single I.Halt (function Uop.Halt -> () | _ -> Alcotest.fail "halt");
  check_single I.Nop (function Uop.Nop -> () | _ -> Alcotest.fail "nop")

let test_li_la () =
  (match I.li 0 0x42 with
  | [ I.Movw (0, 0x42) ] -> ()
  | _ -> Alcotest.fail "small li is a single movw");
  match I.li 0 0xDEADBEEF with
  | [ I.Movw (0, 0xBEEF); I.Movt (0, 0xDEAD) ] -> ()
  | _ -> Alcotest.fail "li splits into movw/movt"

let test_range_errors () =
  let check_err name f =
    let raised = try ignore (f ()); false with Sb_asm.Assembler.Error _ -> true in
    Alcotest.(check bool) name true raised
  in
  check_err "imm14 too big" (fun () ->
      I.encode_word ~resolve:no_resolve ~pc:0 (I.Add (0, 0, I.Imm 9000)));
  check_err "imm16 negative" (fun () ->
      I.encode_word ~resolve:no_resolve ~pc:0 (I.Movw (0, -1)));
  check_err "branch misaligned" (fun () ->
      I.encode_word ~resolve:(fun _ -> 0x1001) ~pc:0 (I.B "x"));
  check_err "bcc out of range" (fun () ->
      I.encode_word ~resolve:(fun _ -> 0x4000000) ~pc:0 (I.Bcc (Sb_isa.Uop.Eq, "x")))

(* Decoding is total: any 32-bit word decodes without raising, to exactly one
   4-byte instruction. *)
let prop_decode_total =
  QCheck.Test.make ~name:"decode total on random words" ~count:2000
    QCheck.(int_bound 0x3FFFFFFF)
    (fun w ->
      let w = w lxor (w lsl 3) land 0xFFFF_FFFF in
      let d = D.decode_word ~addr:0x1000 w in
      d.Uop.length = 4 && List.length d.Uop.uops >= 1)

(* Branch displacement roundtrip across the encodable range. *)
let prop_branch_roundtrip =
  QCheck.Test.make ~name:"direct branch target roundtrips" ~count:500
    QCheck.(int_range (-100000) 100000)
    (fun words ->
      let pc = 0x0100_0000 in
      let target = pc + (words * 4) in
      let w = I.encode_word ~resolve:(fun _ -> target) ~pc (I.B "t") in
      match (D.decode_word ~addr:pc w).Uop.uops with
      | [ Uop.Branch { target = Uop.Direct t; _ } ] -> t = target land 0xFFFF_FFFF
      | _ -> false)

let test_disasm () =
  (* assemble a small program and disassemble it back *)
  let program =
    I.Asm.assemble ~base:0x1000
      (List.map
         (fun i -> Sb_asm.Assembler.Insn i)
         [ I.Movw (1, 42); I.Add (2, 1, I.Rm 1); I.B "l"; I.Nop ]
      @ [ Sb_asm.Assembler.Label "l"; Sb_asm.Assembler.Insn I.Halt ])
  in
  let image = program.Sb_asm.Program.image in
  let read8 a = Char.code (Bytes.get image (a - 0x1000)) in
  let lines =
    Sb_isa.Disasm.decode_range
      ~arch:(module Sb_arch_sba.Arch)
      ~read8 ~base:0x1000 ~len:(Bytes.length image)
  in
  Alcotest.(check int) "five instructions" 5 (List.length lines);
  let first = List.hd lines in
  Alcotest.(check int) "first addr" 0x1000 first.Sb_isa.Disasm.addr;
  Alcotest.(check int) "fixed width" 4 (String.length first.Sb_isa.Disasm.bytes);
  let all_text =
    String.concat "\n"
      (List.map (fun l -> l.Sb_isa.Disasm.text) lines)
  in
  let contains needle =
    let n = String.length needle in
    let rec loop i =
      if i + n > String.length all_text then false
      else String.sub all_text i n = needle || loop (i + 1)
    in
    loop 0
  in
  Alcotest.(check bool) "add rendered" true (contains "add r2, r1, r1");
  Alcotest.(check bool) "halt rendered" true (contains "halt");
  (* the branch target resolved to the absolute address of the label *)
  Alcotest.(check bool) "branch target" true (contains "0x00001010")

let () =
  Alcotest.run "sb_arch_sba"
    [
      ( "decode",
        [
          Alcotest.test_case "alu rr" `Quick test_alu_rr;
          Alcotest.test_case "alu ri signed" `Quick test_alu_ri_signed;
          Alcotest.test_case "movw/movt" `Quick test_movw_movt;
          Alcotest.test_case "cmp" `Quick test_cmp_sets_flags;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "system" `Quick test_system;
        ] );
      ( "encode",
        [
          Alcotest.test_case "li/la" `Quick test_li_la;
          Alcotest.test_case "range errors" `Quick test_range_errors;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_decode_total; prop_branch_roundtrip ] );
      ("disasm", [ Alcotest.test_case "roundtrip" `Quick test_disasm ]);
    ]
