(* Unit tests for the detailed engine's timing substrates. *)

module Eq = Sb_detailed.Event_queue
module Cache = Sb_detailed.Cache_model

let test_event_queue_order () =
  let q = Eq.create () in
  Eq.schedule q ~time:5 "c";
  Eq.schedule q ~time:1 "a";
  Eq.schedule q ~time:3 "b";
  Alcotest.(check int) "length" 3 (Eq.length q);
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Eq.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Eq.create () in
  Eq.schedule q ~time:2 "x";
  Eq.schedule q ~time:2 "y";
  Eq.schedule q ~time:2 "z";
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check string) "insertion order preserved" "xyz" (first ^ second ^ third)

let test_event_queue_clear () =
  let q = Eq.create () in
  Eq.schedule q ~time:1 1;
  Eq.clear q;
  Alcotest.(check bool) "cleared" true (Eq.is_empty q);
  Alcotest.(check bool) "pop none" true (Eq.pop q = None)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops sorted" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1000))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.schedule q ~time:t t) times;
      let rec drain acc =
        match Eq.pop q with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare times)

let test_cache_model () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:32 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x100);
  Alcotest.(check bool) "warm hit" true (Cache.access c 0x100);
  Alcotest.(check bool) "same line" true (Cache.access c 0x11F);
  (* 1024-byte direct-mapped: +1024 conflicts *)
  Alcotest.(check bool) "conflict" false (Cache.access c 0x500);
  Alcotest.(check bool) "evicted" false (Cache.access c 0x100);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 3 (Cache.misses c);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.access c 0x11F)

let test_cache_validation () =
  let raised f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "size pow2" true
    (raised (fun () -> Cache.create ~size_bytes:1000 ~line_bytes:32));
  Alcotest.(check bool) "line pow2" true
    (raised (fun () -> Cache.create ~size_bytes:1024 ~line_bytes:24))

(* The timing model must report cycles >= instructions. *)
module Detailed_sba = Sb_detailed.Detailed.Make (Sb_arch_sba.Arch)

let test_cycles_exceed_insns () =
  let module SI = Sb_arch_sba.Insn in
  let open Sb_asm.Assembler in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start"; Insn (SI.Movw (2, 200)); Label "loop" ]
      @ List.map
          (fun i -> Insn i)
          [
            SI.Add (3, 3, SI.Rm 2);
            SI.Sub (2, 2, SI.Imm 1);
            SI.Cmp (2, SI.Imm 0);
            SI.Bcc (Sb_isa.Uop.Ne, "loop");
            SI.Halt;
          ])
  in
  let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run (module Detailed_sba) ~max_insns:100_000 machine in
  let insns = Sb_sim.Run_result.insns result in
  let cycles = Detailed_sba.last_cycles () in
  Alcotest.(check bool) "ran" true (insns > 700);
  Alcotest.(check bool)
    (Printf.sprintf "cycles (%d) >= insns (%d)" cycles insns)
    true (cycles >= insns)

let () =
  Alcotest.run "sb_detailed"
    [
      ( "event_queue",
        [
          Alcotest.test_case "order" `Quick test_event_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_event_queue_fifo_ties;
          Alcotest.test_case "clear" `Quick test_event_queue_clear;
          QCheck_alcotest.to_alcotest prop_event_queue_sorted;
        ] );
      ( "cache_model",
        [
          Alcotest.test_case "behaviour" `Quick test_cache_model;
          Alcotest.test_case "validation" `Quick test_cache_validation;
        ] );
      ( "timing", [ Alcotest.test_case "cycles >= insns" `Quick test_cycles_exceed_insns ] );
    ]
