(* Tests for the generic two-pass assembler, via a trivial byte encoder. *)

module E = struct
  type insn = Op of int list (* encodes to exactly these bytes *)

  let size (Op bytes) = List.length bytes

  let encode ~resolve:_ ~pc:_ (Op bytes) =
    String.init (List.length bytes) (fun i -> Char.chr (List.nth bytes i land 0xFF))
end

module A = Sb_asm.Assembler.Make (E)
open Sb_asm.Assembler

let test_layout_and_labels () =
  let items =
    [
      Label "start";
      Insn (E.Op [ 1; 2; 3 ]);
      Label "mid";
      Word 0xAABBCCDD;
      Label "end";
    ]
  in
  let symbols = A.layout ~base:0x100 items in
  Alcotest.(check (list (pair string int)))
    "symbols"
    [ ("start", 0x100); ("mid", 0x103); ("end", 0x107) ]
    symbols

let test_assemble_image () =
  let p =
    A.assemble ~base:0x10
      [ Label "a"; Insn (E.Op [ 0xDE; 0xAD ]); Word_sym "a"; Byte_string "xyz" ]
  in
  Alcotest.(check int) "base" 0x10 p.Sb_asm.Program.base;
  Alcotest.(check int) "size" 9 (Sb_asm.Program.size p);
  Alcotest.(check int) "entry defaults to base" 0x10 p.Sb_asm.Program.entry;
  let image = p.Sb_asm.Program.image in
  Alcotest.(check int) "insn byte" 0xDE (Char.code (Bytes.get image 0));
  Alcotest.(check int) "word_sym low byte" 0x10 (Char.code (Bytes.get image 2));
  Alcotest.(check char) "byte_string" 'x' (Bytes.get image 6)

let test_align_org_space () =
  let p =
    A.assemble ~base:0
      [
        Insn (E.Op [ 1 ]);
        Align 4;
        Label "aligned";
        Space 2;
        Label "after_space";
        Org 0x20;
        Label "org";
        Insn (E.Op [ 9 ]);
      ]
  in
  Alcotest.(check int) "aligned" 4 (Sb_asm.Program.symbol p "aligned");
  Alcotest.(check int) "after_space" 6 (Sb_asm.Program.symbol p "after_space");
  Alcotest.(check int) "org" 0x20 (Sb_asm.Program.symbol p "org");
  Alcotest.(check int) "org byte" 9 (Char.code (Bytes.get p.Sb_asm.Program.image 0x20));
  (* the gap is zero-filled *)
  Alcotest.(check int) "gap zero" 0 (Char.code (Bytes.get p.Sb_asm.Program.image 0x10))

let check_error name f =
  let raised = try ignore (f ()); false with Error _ -> true in
  Alcotest.(check bool) name true raised

let test_errors () =
  check_error "duplicate label" (fun () ->
      A.assemble [ Label "x"; Label "x" ]);
  check_error "undefined label" (fun () -> A.assemble [ Word_sym "nope" ]);
  check_error "backwards org" (fun () ->
      A.assemble ~base:0x100 [ Insn (E.Op [ 1 ]); Org 0x50 ]);
  check_error "bad align" (fun () -> A.assemble [ Align 3 ]);
  check_error "negative space" (fun () -> A.assemble [ Space (-1) ])

let test_entry_label () =
  let p = A.assemble ~base:0 ~entry:"go" [ Space 8; Label "go"; Insn (E.Op [ 1 ]) ] in
  Alcotest.(check int) "entry" 8 p.Sb_asm.Program.entry

let prop_layout_monotonic =
  QCheck.Test.make ~name:"label addresses are monotonic" ~count:200
    QCheck.(list_of_size Gen.(0 -- 30) (int_bound 5))
    (fun sizes ->
      let items =
        List.concat
          (List.mapi
             (fun i n ->
               [ Label (Printf.sprintf "l%d" i); Insn (E.Op (List.init n (fun _ -> 0))) ])
             sizes)
      in
      let symbols = A.layout ~base:0 items in
      let addrs = List.map snd symbols in
      List.sort compare addrs = addrs)

let () =
  Alcotest.run "sb_asm"
    [
      ( "assembler",
        [
          Alcotest.test_case "layout" `Quick test_layout_and_labels;
          Alcotest.test_case "image" `Quick test_assemble_image;
          Alcotest.test_case "align/org/space" `Quick test_align_org_space;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "entry" `Quick test_entry_label;
          QCheck_alcotest.to_alcotest prop_layout_monotonic;
        ] );
    ]
