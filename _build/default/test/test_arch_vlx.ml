(* VLX-32 encoder/decoder tests (variable-length ISA). *)

module I = Sb_arch_vlx.Insn
module Uop = Sb_isa.Uop

let no_resolve name = Alcotest.failf "unexpected label %s" name

let encode ?(pc = 0x1000) ?(resolve = no_resolve) insn =
  I.Encoder.encode ~resolve ~pc insn

let decode_bytes ?(addr = 0x1000) s =
  Sb_arch_vlx.Decode.decode ~fetch8:(fun a -> Char.code s.[a - addr]) ~addr

let decode_of ?(pc = 0x1000) ?resolve insn =
  decode_bytes ~addr:pc (encode ~pc ?resolve insn)

let check_single ?pc ?resolve insn ~len expect =
  let d = decode_of ?pc ?resolve insn in
  Alcotest.(check int) "length" len d.Uop.length;
  match d.Uop.uops with
  | [ u ] -> expect u
  | us -> Alcotest.failf "expected one uop, got %d" (List.length us)

let test_sizes_match_encoder () =
  let resolve _ = 0x1020 in
  let cases =
    [
      I.Nop; I.Halt; I.Wfi; I.Eret; I.Tlbiall; I.Copreset; I.Ud2;
      I.Mov (1, 2); I.Cmp_rr (1, 2); I.Jmp_r 3; I.Call_r 3; I.Svc 9; I.Tlbi 1;
      I.Alu_rr (Uop.Add, 1, 2, 3); I.Cpr (1, 0); I.Cpw (0, 1);
      I.Load (1, 2, -8); I.Store (1, 2, 8); I.Loadb (1, 2, 0); I.Storeb (1, 2, 0);
      I.Jmp "x"; I.Call "x";
      I.Alu_ri (Uop.Xor, 1, 2, 0xFFFF); I.Movi (1, 5); I.Movi_sym (1, "x");
      I.Cmp_ri (1, -3); I.Jcc (Uop.Eq, "x");
    ]
  in
  List.iter
    (fun insn ->
      Alcotest.(check int) "declared size = encoded size" (I.size insn)
        (String.length (I.Encoder.encode ~resolve ~pc:0x1000 insn)))
    cases

let test_alu () =
  check_single (I.Alu_rr (Uop.Sub, 7, 1, 2)) ~len:3 (function
    | Uop.Alu { op = Uop.Sub; rd = Some 7; rn = Uop.Reg 1; rm = Uop.Reg 2; _ } -> ()
    | _ -> Alcotest.fail "alu_rr");
  check_single (I.Alu_ri (Uop.Lsl, 0, 0, 12)) ~len:6 (function
    | Uop.Alu { op = Uop.Lsl; rm = Uop.Imm 12; _ } -> ()
    | _ -> Alcotest.fail "alu_ri");
  check_single (I.Alu_ri (Uop.Add, 1, 1, -1)) ~len:6 (function
    | Uop.Alu { rm = Uop.Imm (-1); _ } -> ()
    | _ -> Alcotest.fail "negative imm32")

let test_mov_cmp () =
  check_single (I.Movi (3, 0xCAFEBABE)) ~len:6 (function
    | Uop.Alu { rd = Some 3; rn = Uop.Imm 0; rm = Uop.Imm 0xCAFEBABE; _ } -> ()
    | _ -> Alcotest.fail "movi");
  check_single (I.Mov (3, 4)) ~len:2 (function
    | Uop.Alu { rd = Some 3; rn = Uop.Reg 4; rm = Uop.Imm 0; _ } -> ()
    | _ -> Alcotest.fail "mov");
  check_single (I.Cmp_rr (3, 4)) ~len:2 (function
    | Uop.Alu { rd = None; set_flags = true; _ } -> ()
    | _ -> Alcotest.fail "cmp")

let test_branches () =
  let resolve = function "t" -> 0x2000 | n -> no_resolve n in
  check_single ~resolve (I.Jmp "t") ~len:5 (function
    | Uop.Branch { cond = Uop.Always; target = Uop.Direct 0x2000; link = None } -> ()
    | _ -> Alcotest.fail "jmp");
  check_single ~resolve (I.Call "t") ~len:5 (function
    | Uop.Branch { link = Some l; _ } when l = I.lr -> ()
    | _ -> Alcotest.fail "call links");
  check_single ~resolve (I.Jcc (Uop.Geu, "t")) ~len:6 (function
    | Uop.Branch { cond = Uop.Geu; target = Uop.Direct 0x2000; _ } -> ()
    | _ -> Alcotest.fail "jcc");
  (* backwards branch *)
  let resolve = function "b" -> 0x0800 | n -> no_resolve n in
  check_single ~resolve (I.Jmp "b") ~len:5 (function
    | Uop.Branch { target = Uop.Direct 0x0800; _ } -> ()
    | _ -> Alcotest.fail "jmp backwards");
  check_single (I.Jmp_r 4) ~len:2 (function
    | Uop.Branch { target = Uop.Indirect 4; link = None; _ } -> ()
    | _ -> Alcotest.fail "jmp_r")

let test_memory () =
  check_single (I.Load (2, 3, -100)) ~len:4 (function
    | Uop.Load { width = Uop.W32; rd = 2; base = Uop.Reg 3; offset = -100; user = false } -> ()
    | _ -> Alcotest.fail "load");
  check_single (I.Storeb (2, 3, 7)) ~len:4 (function
    | Uop.Store { width = Uop.W8; offset = 7; _ } -> ()
    | _ -> Alcotest.fail "storeb")

let test_system () =
  check_single I.Ud2 ~len:2 (function Uop.Undef -> () | _ -> Alcotest.fail "ud2");
  check_single (I.Svc 3) ~len:2 (function Uop.Svc 3 -> () | _ -> Alcotest.fail "svc");
  check_single I.Copreset ~len:1 (function
    | Uop.Cop_write { creg; src = Uop.Imm 0 } when creg = Sb_isa.Cregs.fpctl -> ()
    | _ -> Alcotest.fail "copreset");
  check_single (I.Cpr (2, Sb_isa.Cregs.dacr)) ~len:3 (function
    | Uop.Cop_read { rd = 2; _ } -> ()
    | _ -> Alcotest.fail "cpr");
  check_single (I.Tlbi 1) ~len:2 (function
    | Uop.Tlb_inv_page 1 -> ()
    | _ -> Alcotest.fail "tlbi")

let test_unknown_opcode_is_undef () =
  let d = decode_bytes ~addr:0 (String.make 6 '\xEE') in
  (match d.Uop.uops with
  | [ Uop.Undef ] -> ()
  | _ -> Alcotest.fail "unknown byte should be undef");
  Alcotest.(check int) "one byte" 1 d.Uop.length;
  (* 0x0F not followed by 0x0B is a 1-byte undef, UD2 proper is 2 bytes *)
  let d = decode_bytes ~addr:0 "\x0f\x00\x00\x00\x00\x00" in
  Alcotest.(check int) "0F alone" 1 d.Uop.length

(* Decode is total over random byte streams and always consumes 1..6 bytes. *)
let prop_decode_total =
  QCheck.Test.make ~name:"vlx decode total" ~count:2000
    QCheck.(string_of_size (QCheck.Gen.return 8))
    (fun s ->
      if String.length s < 8 then true
      else
        let d = decode_bytes ~addr:0 s in
        d.Uop.length >= 1 && d.Uop.length <= 6)

(* x86-style end-relative displacement roundtrip. *)
let prop_jmp_roundtrip =
  QCheck.Test.make ~name:"vlx jmp target roundtrips" ~count:500
    QCheck.(int_range (-1000000) 1000000)
    (fun delta ->
      let pc = 0x0200_0000 in
      let target = pc + delta in
      let s = encode ~pc ~resolve:(fun _ -> target) (I.Jmp "t") in
      match (decode_bytes ~addr:pc s).Uop.uops with
      | [ Uop.Branch { target = Uop.Direct t; _ } ] -> t = target land 0xFFFF_FFFF
      | _ -> false)

let () =
  Alcotest.run "sb_arch_vlx"
    [
      ( "decode",
        [
          Alcotest.test_case "sizes" `Quick test_sizes_match_encoder;
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "mov/cmp" `Quick test_mov_cmp;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "system" `Quick test_system;
          Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode_is_undef;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_decode_total; prop_jmp_roundtrip ] );
    ]
