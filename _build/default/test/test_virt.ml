(* Tests specific to the direct-execution engines: vm-exit accounting and
   the virt/native cost split. *)

module Virt = Sb_virt.Virt.Make_virt (Sb_arch_sba.Arch)
module Native = Sb_virt.Virt.Make_native (Sb_arch_sba.Arch)
module SI = Sb_arch_sba.Insn
open Sb_asm.Assembler

let insns l = List.map (fun i -> Insn i) l

let run engine program =
  let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine ~max_insns:1_000_000 machine in
  (machine, result)

let vm_exits result = Sb_sim.Perf.get result.Sb_sim.Run_result.perf Sb_sim.Perf.Vm_exits

let device_program n =
  SI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ insns (SI.li 1 Sb_sim.Machine.Map.devid_base)
    @ insns [ SI.Movw (2, n) ]
    @ [ Label "loop" ]
    @ insns
        [
          SI.Ldr (0, 1, 0);
          SI.Sub (2, 2, SI.Imm 1);
          SI.Cmp (2, SI.Imm 0);
          SI.Bcc (Sb_isa.Uop.Ne, "loop");
          SI.Halt;
        ])

let test_vm_exits_per_device_access () =
  let _, result = run (module Virt) (device_program 100) in
  Alcotest.(check int) "one exit per device read" 100 (vm_exits result);
  let _, native_result = run (module Native) (device_program 100) in
  Alcotest.(check int) "native never exits" 0 (vm_exits native_result)

let test_vm_exit_preserves_state () =
  (* the world switch must be architecturally invisible *)
  let program = device_program 10 in
  let virt_machine, _ = run (module Virt) program in
  let native_machine, _ = run (module Native) program in
  Alcotest.(check (array int))
    "identical registers despite exits"
    native_machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs
    virt_machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs

let test_undef_is_hypercall () =
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ insns (SI.la 0 "vectors" @ [ SI.Mcr (Sb_isa.Cregs.vbar, 0) ])
      @ insns [ SI.Udf; SI.Halt ]
      @ [ Label "h" ]
      @ insns
          [
            SI.Mrc (0, Sb_isa.Cregs.elr);
            SI.Add (0, 0, SI.Imm 4);
            SI.Mcr (Sb_isa.Cregs.elr, 0);
            SI.Eret;
          ]
      @ [ Label "vectors"; Insn (SI.B "start"); Insn SI.Nop ]
      @ [ Insn (SI.B "h"); Insn SI.Nop ]
      @ List.concat (List.init 4 (fun _ -> [ Insn (SI.B "start"); Insn SI.Nop ])))
  in
  let _, virt_result = run (module Virt) program in
  Alcotest.(check int) "undef exits once" 1 (vm_exits virt_result);
  let _, native_result = run (module Native) program in
  Alcotest.(check int) "native direct" 0 (vm_exits native_result)

let test_virt_cost_scales () =
  (* more exit rounds must cost measurably more wall time on an I/O loop *)
  let mk rounds : Sb_sim.Engine.t =
    (module Sb_virt.Virt.Make_configured
              (Sb_arch_sba.Arch)
              (struct
                let config =
                  { Sb_virt.Virt.Config.vm_exit_rounds = rounds; name_suffix = "t" }
              end))
  in
  let time rounds =
    let program = device_program 10_000 in
    let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
    Sb_sim.Machine.load_program machine program;
    let t0 = Unix.gettimeofday () in
    ignore (Sb_sim.Engine.run (mk rounds) ~max_insns:10_000_000 machine);
    Unix.gettimeofday () -. t0
  in
  let cheap = min (time 4) (time 4) in
  let expensive = min (time 512) (time 512) in
  Alcotest.(check bool)
    (Printf.sprintf "512 rounds (%.4fs) slower than 4 (%.4fs)" expensive cheap)
    true
    (expensive > 2. *. cheap)

let () =
  Alcotest.run "sb_virt"
    [
      ( "vm-exits",
        [
          Alcotest.test_case "per device access" `Quick test_vm_exits_per_device_access;
          Alcotest.test_case "state preserved" `Quick test_vm_exit_preserves_state;
          Alcotest.test_case "undef hypercall" `Quick test_undef_is_hypercall;
          Alcotest.test_case "cost scales" `Quick test_virt_cost_scales;
        ] );
    ]
