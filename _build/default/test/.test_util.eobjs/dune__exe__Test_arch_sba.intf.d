test/test_arch_sba.mli:
