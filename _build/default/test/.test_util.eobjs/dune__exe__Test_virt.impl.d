test/test_virt.ml: Alcotest List Printf Sb_arch_sba Sb_asm Sb_isa Sb_sim Sb_virt Unix
