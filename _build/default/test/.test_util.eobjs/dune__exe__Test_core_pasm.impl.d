test/test_core_pasm.ml: Alcotest Array List Printf Sb_isa Sb_sim Simbench
