test/test_workloads.ml: Alcotest List Option Printf Sb_isa Sb_sim Sb_workloads Simbench String
