test/test_util.ml: Alcotest Bytes Gen List QCheck QCheck_alcotest Sb_util String
