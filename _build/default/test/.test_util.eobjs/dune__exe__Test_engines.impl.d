test/test_engines.ml: Alcotest Array Bytes Char List Printf QCheck QCheck_alcotest Sb_arch_sba Sb_arch_vlx Sb_asm Sb_dbt Sb_detailed Sb_interp Sb_isa Sb_mem Sb_mmu Sb_sim Sb_util Sb_virt
