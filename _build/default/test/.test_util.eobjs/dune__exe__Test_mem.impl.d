test/test_mem.ml: Alcotest Bytes Char Sb_mem Sb_sim
