test/test_report.ml: Alcotest Float List Sb_dbt Sb_isa Sb_report Simbench String Unix
