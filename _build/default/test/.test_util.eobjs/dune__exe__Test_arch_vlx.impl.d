test/test_arch_vlx.ml: Alcotest Char List QCheck QCheck_alcotest Sb_arch_vlx Sb_isa String
