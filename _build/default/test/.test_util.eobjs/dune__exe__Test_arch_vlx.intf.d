test/test_arch_vlx.mli:
