test/test_mmu.ml: Alcotest Ap Gen List Printf QCheck QCheck_alcotest Sb_mem Sb_mmu
