test/test_dbt.ml: Alcotest Array Format List Option QCheck QCheck_alcotest Sb_arch_sba Sb_asm Sb_dbt Sb_isa Sb_sim
