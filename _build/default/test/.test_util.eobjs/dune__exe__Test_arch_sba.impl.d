test/test_arch_sba.ml: Alcotest Bytes Char Format List QCheck QCheck_alcotest Sb_arch_sba Sb_asm Sb_isa String
