test/test_simbench.ml: Alcotest List Option Printf Sb_isa Sb_mem Sb_mmu Sb_sim Simbench
