test/test_detailed.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Sb_arch_sba Sb_asm Sb_detailed Sb_isa Sb_sim
