test/test_sim.ml: Alcotest Array List Printf Sb_isa Sb_mem Sb_mmu Sb_sim
