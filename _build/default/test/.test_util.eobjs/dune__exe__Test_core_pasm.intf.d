test/test_core_pasm.mli:
