test/test_detailed.mli:
