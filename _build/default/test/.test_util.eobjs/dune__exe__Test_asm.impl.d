test/test_asm.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest Sb_asm String
