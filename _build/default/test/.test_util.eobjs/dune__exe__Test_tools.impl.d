test/test_tools.ml: Alcotest Array List Sb_arch_sba Sb_asm Sb_interp Sb_isa Sb_mem Sb_sim Sb_verify Simbench String
