test/test_simbench.mli:
