(* Portable-assembly lowering tests: the same Pasm program must produce the
   same architectural result through both architecture support packages.
   This is the mechanised version of the paper's portability claim. *)

module P = Simbench.Pasm
open Simbench.Pasm

let supports =
  [
    ("sba", Simbench.Engines.support Sb_isa.Arch_sig.Sba, Simbench.Engines.interp Sb_isa.Arch_sig.Sba);
    ("vlx", Simbench.Engines.support Sb_isa.Arch_sig.Vlx, Simbench.Engines.interp Sb_isa.Arch_sig.Vlx);
  ]

(* Run raw Pasm (MMU off, no runtime) and return the machine. *)
let run_raw (support : Simbench.Support.t) engine ops =
  let (module S : Simbench.Support.SUPPORT) = support in
  let program = S.assemble ~base:0 (ops @ [ P.Halt ]) in
  let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine ~max_insns:100_000 machine in
  Alcotest.(check bool) "halted" true
    (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted);
  machine

let check_reg machine r expected label =
  Alcotest.(check int) label expected machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs.(r)

let on_all ops check =
  List.iter
    (fun (name, support, engine) ->
      let machine = run_raw support engine ops in
      check name machine)
    supports

let test_li_mov () =
  on_all
    [ Li (v0, 0xDEADBEEF); Li (v1, 7); Mov (v2, v0) ]
    (fun name m ->
      check_reg m 0 0xDEADBEEF (name ^ " li32");
      check_reg m 1 7 (name ^ " li small");
      check_reg m 2 0xDEADBEEF (name ^ " mov"))

let test_la_and_data () =
  on_all
    [
      Jmp "start";
      Align 4;
      L "datum";
      Raw_word 0x1234_5678;
      L "ref";
      Word_sym "datum";
      L "start";
      La (v0, "datum");
      Load (W32, v1, v0, 0);
      La (v2, "ref");
      Load (W32, v2, v2, 0);
      Load (W32, v3, v2, 0);
    ]
    (fun name m ->
      check_reg m 1 0x1234_5678 (name ^ " load via la");
      check_reg m 3 0x1234_5678 (name ^ " load via stored pointer"))

let all_alu_ops =
  [
    (Sb_isa.Uop.Add, 13, 5, 18);
    (Sb_isa.Uop.Sub, 13, 5, 8);
    (Sb_isa.Uop.And_, 0xFC, 0x3F, 0x3C);
    (Sb_isa.Uop.Orr, 0xF0, 0x0F, 0xFF);
    (Sb_isa.Uop.Xor, 0xFF, 0x0F, 0xF0);
    (Sb_isa.Uop.Lsl, 3, 4, 48);
    (Sb_isa.Uop.Lsr, 48, 4, 3);
    (Sb_isa.Uop.Asr, 0x8000_0000, 4, 0xF800_0000);
    (Sb_isa.Uop.Mul, 7, 6, 42);
  ]

let test_alu_rr () =
  List.iter
    (fun (op, a, b, expected) ->
      on_all
        [ Li (v1, a); Li (v2, b); Alu (op, v0, v1, R v2) ]
        (fun name m -> check_reg m 0 expected (name ^ " alu rr")))
    all_alu_ops

let test_alu_ri () =
  List.iter
    (fun (op, a, b, expected) ->
      on_all
        [ Li (v1, a); Alu (op, v0, v1, I b) ]
        (fun name m -> check_reg m 0 expected (name ^ " alu ri")))
    all_alu_ops;
  (* immediates beyond the RISC encoding's 14-bit range still lower *)
  on_all
    [ Li (v1, 1); Alu (Sb_isa.Uop.Add, v0, v1, I 0x123456) ]
    (fun name m -> check_reg m 0 0x123457 (name ^ " wide imm add"));
  on_all
    [ Li (v1, 0xFFFF); Alu (Sb_isa.Uop.And_, v0, v1, I 0xFF00FF) ]
    (fun name m -> check_reg m 0 0xFF (name ^ " wide imm and"))

let test_all_conditions () =
  let conds =
    [
      (Sb_isa.Uop.Eq, 5, 5, true);
      (Sb_isa.Uop.Eq, 5, 6, false);
      (Sb_isa.Uop.Ne, 5, 6, true);
      (Sb_isa.Uop.Lt, -1, 1, true);   (* signed *)
      (Sb_isa.Uop.Lt, 1, -1, false);
      (Sb_isa.Uop.Ge, 1, -1, true);
      (Sb_isa.Uop.Ltu, 1, -1, true);  (* -1 is 0xFFFFFFFF unsigned *)
      (Sb_isa.Uop.Geu, -1, 1, true);
    ]
  in
  List.iteri
    (fun i (cond, a, b, taken) ->
      on_all
        [
          Li (v0, 0);
          Li (v1, a);
          Cmp (v1, I b);
          Br (cond, Printf.sprintf "c%d" i);
          Li (v0, 1);
          L (Printf.sprintf "c%d" i);
        ]
        (fun name m ->
          check_reg m 0
            (if taken then 0 else 1)
            (Printf.sprintf "%s cond %d" name i)))
    conds

let test_calls () =
  on_all
    [
      Li (v0, 0);
      Call "f";
      Alu (Sb_isa.Uop.Add, v0, v0, I 100);
      Jmp "end";
      L "f";
      Alu (Sb_isa.Uop.Add, v0, v0, I 1);
      Ret;
      L "end";
    ]
    (fun name m -> check_reg m 0 101 (name ^ " call/ret"));
  on_all
    [
      Li (v0, 0);
      La (v1, "g");
      Call_reg v1;
      Alu (Sb_isa.Uop.Add, v0, v0, I 100);
      Jmp "end2";
      L "g";
      Alu (Sb_isa.Uop.Add, v0, v0, I 3);
      Ret;
      L "end2";
    ]
    (fun name m -> check_reg m 0 103 (name ^ " call_reg"));
  on_all
    [ Li (v0, 7); La (v1, "h"); Jmp_reg v1; Li (v0, 0); L "h" ]
    (fun name m -> check_reg m 0 7 (name ^ " jmp_reg skips"))

let test_memory_widths () =
  on_all
    [
      Li (v1, 0x8000);
      Li (v0, 0xAABBCCDD);
      Store (W32, v0, v1, 0);
      Load (W8, v2, v1, 0);
      Load (W8, v3, v1, 3);
      Store (W8, v3, v1, 8);
      Load (W32, v0, v1, 8);
    ]
    (fun name m ->
      check_reg m 2 0xDD (name ^ " byte low");
      check_reg m 3 0xAA (name ^ " byte high");
      check_reg m 0 0xAA (name ^ " stored byte"))

let test_nonpriv_lowering () =
  (* kernel mode with MMU off: the non-privileged access faults nowhere on
     SBA (permissions are only checked under the MMU... it must simply move
     data); on VLX it is a no-op and the register keeps its old value *)
  on_all
    [
      Li (v1, 0x8000);
      Li (v0, 0x1111);
      Store (W32, v0, v1, 0);
      Li (v2, 0xFFFF);
      Load_user (v2, v1, 0);
    ]
    (fun name m ->
      let (module S : Simbench.Support.SUPPORT) =
        if name = "sba" then Simbench.Engines.support Sb_isa.Arch_sig.Sba
        else Simbench.Engines.support Sb_isa.Arch_sig.Vlx
      in
      if S.nonpriv_supported then check_reg m 2 0x1111 (name ^ " ldrt moved data")
      else check_reg m 2 0xFFFF (name ^ " no-op kept value"))

let test_cop_roundtrip () =
  on_all
    [
      Li (v0, 0x5A);
      Cop_write (Sb_isa.Cregs.dacr, v0);
      Cop_read (v1, Sb_isa.Cregs.dacr);
      Cop_safe_read v2;
    ]
    (fun name m -> check_reg m 1 0x5A (name ^ " cop roundtrip"))

let test_org_space_align () =
  on_all
    [
      Jmp "code";
      Org 0x100;
      L "table";
      Raw_word 0xCAFE;
      Space 12;
      Raw_word 0xF00D;
      L "code";
      La (v0, "table");
      Load (W32, v1, v0, 0);
      Load (W32, v2, v0, 16);
    ]
    (fun name m ->
      check_reg m 1 0xCAFE (name ^ " org word");
      check_reg m 2 0xF00D (name ^ " after space"))

let () =
  Alcotest.run "simbench_pasm"
    [
      ( "lowering",
        [
          Alcotest.test_case "li/mov" `Quick test_li_mov;
          Alcotest.test_case "la and data" `Quick test_la_and_data;
          Alcotest.test_case "alu rr" `Quick test_alu_rr;
          Alcotest.test_case "alu ri" `Quick test_alu_ri;
          Alcotest.test_case "conditions" `Quick test_all_conditions;
          Alcotest.test_case "calls" `Quick test_calls;
          Alcotest.test_case "memory widths" `Quick test_memory_widths;
          Alcotest.test_case "nonpriv" `Quick test_nonpriv_lowering;
          Alcotest.test_case "coprocessor" `Quick test_cop_roundtrip;
          Alcotest.test_case "org/space" `Quick test_org_space_align;
        ] );
    ]
