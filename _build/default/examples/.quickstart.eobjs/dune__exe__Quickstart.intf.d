examples/quickstart.mli:
