examples/port_new_platform.mli:
