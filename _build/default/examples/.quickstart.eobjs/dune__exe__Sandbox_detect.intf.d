examples/sandbox_detect.mli:
