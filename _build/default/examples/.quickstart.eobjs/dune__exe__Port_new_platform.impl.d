examples/port_new_platform.ml: List Option Printf Sb_isa Sb_sim Simbench
