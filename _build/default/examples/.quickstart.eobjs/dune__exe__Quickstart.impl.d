examples/quickstart.ml: Array Char Format List Printf Sb_arch_sba Sb_asm Sb_isa Sb_sim Simbench String
