examples/version_bisect.mli:
