examples/compare_engines.mli:
