examples/compare_engines.ml: List Printf Sb_isa Sb_util Simbench
