examples/version_bisect.ml: List Option Printf Sb_isa Sb_util Sb_workloads Simbench
