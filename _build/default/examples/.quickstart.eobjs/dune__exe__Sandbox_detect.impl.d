examples/sandbox_detect.ml: List Printf Sb_isa Simbench
