(* "We might also investigate the use of SimBench-like kernels for sandbox
   detection."  — the paper's closing sentence, implemented.

     dune exec examples/sandbox_detect.exe

   The observation: each execution technology has a timing *fingerprint*
   over the SimBench operations, independent of absolute machine speed.
   Trap-and-emulate virtualization makes device access catastrophically
   expensive relative to arithmetic; a DBT makes self-modifying code
   expensive; a detailed model is uniformly slow per instruction.  A guest
   that can time its own operations can therefore tell what is running it.

   This example plays both sides: it fingerprints each engine with
   normalized per-operation costs, then classifies engines it is not told
   the identity of. *)

let arch = Sb_isa.Arch_sig.Sba
let support = Simbench.Engines.support arch

(* seconds per tested operation, best of 3 *)
let per_op engine bench ~iters =
  let best = ref infinity in
  for _ = 1 to 3 do
    let o = Simbench.Harness.run ~iters ~support ~engine bench in
    best := min !best (o.Simbench.Harness.kernel_seconds /. float_of_int o.Simbench.Harness.tested_ops)
  done;
  !best

type fingerprint = {
  io_vs_alu : float;   (* device access cost over hot-memory cost *)
  smc_vs_alu : float;  (* self-modifying-code cost over hot-memory cost *)
  undef_vs_svc : float;(* undefined-instruction cost over system-call cost *)
  hot_ns : float;      (* absolute per-op cost of the hot loop *)
}

let fingerprint engine =
  let hot = per_op engine Simbench.Suite.hot_memory_access ~iters:8_000 in
  let io = per_op engine Simbench.Suite.memory_mapped_device ~iters:8_000 in
  let smc = per_op engine Simbench.Suite.small_blocks ~iters:600 in
  let undef = per_op engine Simbench.Suite.undefined_instruction ~iters:6_000 in
  let svc = per_op engine Simbench.Suite.system_call ~iters:6_000 in
  {
    io_vs_alu = io /. hot;
    smc_vs_alu = smc /. hot;
    undef_vs_svc = undef /. svc;
    hot_ns = hot *. 1e9;
  }

(* Classification rules, in the order a guest would apply them.  The
   thresholds are scale-free ratios except the last, which needs a
   calibration constant (a real detector would calibrate against a known
   physical machine, as timing side channels do). *)
let classify ~native_hot_ns fp =
  if fp.io_vs_alu > 40. && fp.undef_vs_svc > 5. then
    "virtualized (trap-and-emulate: I/O and undef trap to a hypervisor)"
  else if fp.io_vs_alu > 40. then
    "virtualized or emulated I/O"
  else if fp.smc_vs_alu > 25. then
    "DBT simulator (self-modifying code forces retranslation)"
  else if fp.hot_ns > 3.5 *. native_hot_ns then
    "detailed simulator (uniformly slow per instruction)"
  else if fp.hot_ns > 1.7 *. native_hot_ns then
    "interpreter"
  else "bare metal (or a very good simulator)"

let () =
  let engines =
    [
      ("QEMU-DBT", Simbench.Engines.dbt arch);
      ("SimIt-ARM", Simbench.Engines.interp arch);
      ("Gem5", Simbench.Engines.detailed arch);
      ("QEMU-KVM", Simbench.Engines.virt arch);
      ("Hardware", Simbench.Engines.native arch);
    ]
  in
  (* calibrate the absolute scale on the known-native machine *)
  let native_hot_ns =
    min
      (fingerprint (Simbench.Engines.native arch)).hot_ns
      (fingerprint (Simbench.Engines.native arch)).hot_ns
  in
  Printf.printf "calibration: native hot-loop cost = %.1f ns/op\n\n" native_hot_ns;
  Printf.printf "%-10s %10s %10s %10s %10s  verdict\n" "engine" "io/alu" "smc/alu"
    "undef/svc" "hot ns";
  List.iter
    (fun (name, engine) ->
      let fp = fingerprint engine in
      Printf.printf "%-10s %10.1f %10.1f %10.1f %10.1f  %s\n" name fp.io_vs_alu
        fp.smc_vs_alu fp.undef_vs_svc fp.hot_ns
        (classify ~native_hot_ns fp))
    engines
