(* Compare simulation technologies the way Section III-B of the paper does:
   run targeted benchmarks on every engine and read the implementation
   trade-offs directly off the table.

     dune exec examples/compare_engines.exe

   Expected shapes (the paper's findings):
   - the DBT loses on Small Blocks (self-modifying code forces constant
     retranslation) but wins Intra-Page Direct (block chaining);
   - the detailed model is 1-2 orders slower everywhere;
   - virt ~ native except on Memory Mapped Device and Undefined
     Instruction, where every operation traps to the emulation layer. *)

let benchmarks =
  [
    Simbench.Suite.small_blocks;
    Simbench.Suite.intra_page_direct;
    Simbench.Suite.undefined_instruction;
    Simbench.Suite.memory_mapped_device;
    Simbench.Suite.hot_memory_access;
  ]

let () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engines = Simbench.Engines.paper_set arch in
  let scale = 4_000 in
  let rows =
    List.map
      (fun bench ->
        bench.Simbench.Bench.name
        :: List.map
             (fun (_, engine) ->
               let o = Simbench.Harness.run ~scale ~support ~engine bench in
               Printf.sprintf "%.4f" o.Simbench.Harness.kernel_seconds)
             engines)
      benchmarks
  in
  print_string
    (Sb_util.Tablefmt.render
       ~header:("Benchmark (kernel s)" :: List.map fst engines)
       rows);
  print_newline ();
  (* narrate the two headline comparisons *)
  let time engine bench =
    (Simbench.Harness.run ~scale ~support ~engine bench).Simbench.Harness.kernel_seconds
  in
  let dbt = Simbench.Engines.dbt arch and interp = Simbench.Engines.interp arch in
  let sb = Simbench.Suite.small_blocks and ipd = Simbench.Suite.intra_page_direct in
  Printf.printf
    "Code generation: DBT/interpreter on Small Blocks = %.1fx (translation cost)\n"
    (time dbt sb /. time interp sb);
  Printf.printf
    "Control flow:    interpreter/DBT on Intra-Page Direct = %.1fx (block chaining)\n"
    (time interp ipd /. time dbt ipd)
