(* The paper's motivating workflow (Section I-A): an application benchmark
   shows a performance regression between two simulator releases, but not
   *why*.  SimBench pinpoints the responsible mechanism.

     dune exec examples/version_bisect.exe

   Step 1 reproduces the mystery: a workload got slower between v1.7.0 and
   v2.5.0-rc2, and the aggregate number explains nothing.
   Step 2 runs one SimBench benchmark per category across the releases and
   reports which *mechanisms* regressed — turning "mcf got slower" into
   "memory helpers and exception handling regressed; data-fault handling
   improved at v2.5.0-rc0". *)

let arch = Sb_isa.Arch_sig.Sba
let support = Simbench.Engines.support arch

let versions = [ "v1.7.0"; "v2.0.0"; "v2.2.0"; "v2.4.0"; "v2.5.0-rc2" ]

let () =
  (* Step 1: the application-level mystery *)
  let best_of n f =
    let rec go best k = if k = 0 then best else go (min best (f ())) (k - 1) in
    go (f ()) (n - 1)
  in
  let mcf = Option.get (Sb_workloads.Workloads.find "mcf") in
  let time_workload version =
    let engine = Simbench.Engines.dbt_version arch version in
    best_of 3 (fun () ->
        (Sb_workloads.Workloads.run ~iters:120 ~support ~engine mcf)
          .Simbench.Harness.kernel_seconds)
  in
  let times = List.map (fun v -> (v, time_workload v)) versions in
  let first = List.assoc (List.hd versions) times in
  print_endline "Step 1: the application benchmark only says *that* it changed:";
  List.iter
    (fun (v, t) ->
      Printf.printf "  mcf on %-12s %.3fs (%.2fx vs %s)\n" v t (first /. t)
        (List.hd versions))
    times;
  print_newline ();
  (* Step 2: SimBench says *what* changed *)
  let probes =
    [
      Simbench.Suite.large_blocks;
      Simbench.Suite.intra_page_direct;
      Simbench.Suite.data_access_fault;
      Simbench.Suite.system_call;
      Simbench.Suite.memory_mapped_device;
      Simbench.Suite.cold_memory_access;
      Simbench.Suite.tlb_flush;
    ]
  in
  let time_bench version bench =
    let engine = Simbench.Engines.dbt_version arch version in
    best_of 3 (fun () ->
        (Simbench.Harness.run ~scale:2_000 ~support ~engine bench)
          .Simbench.Harness.kernel_seconds)
  in
  print_endline "Step 2: SimBench pinpoints the mechanisms (speedup vs v1.7.0):";
  let rows =
    List.map
      (fun bench ->
        let base = time_bench (List.hd versions) bench in
        bench.Simbench.Bench.name
        :: List.map
             (fun v -> Printf.sprintf "%.2f" (base /. time_bench v bench))
             versions)
      probes
  in
  print_string (Sb_util.Tablefmt.render ~header:("Benchmark" :: versions) rows);
  print_newline ();
  print_endline
    "Reading: Cold Memory / TLB data degrade steadily (memory-helper and walk\n\
     complexity growth) while Data Access Fault jumps at v2.5.0-rc0 — exactly\n\
     the per-mechanism story the aggregate mcf number hides."
