(* Quickstart: assemble a bare-metal guest program, run it on two different
   simulation engines, and inspect what happened.

     dune exec examples/quickstart.exe

   This uses the lowest-level public API: the SBA-32 assembler, a machine,
   and an engine.  For running the actual benchmark suite, see
   compare_engines.ml; for the paper's experiments, bench/main.exe. *)

module SI = Sb_arch_sba.Insn
open Sb_asm.Assembler

(* A guest program: print a message over the UART, then compute a few
   Fibonacci numbers and leave the result in r3. *)
let program =
  let insns l = List.map (fun i -> Insn i) l in
  let print_string s =
    SI.li 1 Sb_sim.Machine.Map.uart_base
    @ List.concat_map
        (fun c -> [ SI.Movw (0, Char.code c); SI.Str (0, 1, 0) ])
        (List.init (String.length s) (String.get s))
  in
  SI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ insns (print_string "Hello, SimBench!\n")
    @ insns [ SI.Movw (2, 1); SI.Movw (3, 1); SI.Movw (4, 20) ]
    @ [ Label "fib" ]
    @ insns
        [
          SI.Add (5, 2, SI.Rm 3);   (* next = a + b *)
          SI.Mov (2, 3);
          SI.Mov (3, 5);
          SI.Sub (4, 4, SI.Imm 1);
          SI.Cmp (4, SI.Imm 0);
          SI.Bcc (Sb_isa.Uop.Ne, "fib");
          SI.Halt;
        ])

let run_on engine_name (engine : Sb_sim.Engine.t) =
  let machine = Sb_sim.Machine.create () in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine machine in
  Printf.printf "--- %s ---\n" engine_name;
  Printf.printf "guest output: %s" result.Sb_sim.Run_result.uart_output;
  Printf.printf "fib(22) in r3 = %d\n" machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs.(3);
  Printf.printf "retired %d instructions in %.4fs (%s)\n\n"
    (Sb_sim.Run_result.insns result)
    result.Sb_sim.Run_result.wall_seconds
    (Format.asprintf "%a" Sb_sim.Run_result.pp_stop result.Sb_sim.Run_result.stop)

let () =
  let arch = Sb_isa.Arch_sig.Sba in
  run_on "fast interpreter (SimIt-ARM analog)" (Simbench.Engines.interp arch);
  run_on "dynamic binary translator (QEMU analog)" (Simbench.Engines.dbt arch);
  (* both engines must agree on the architectural result, whatever their
     performance characteristics *)
  print_endline "Same answer from both engines; see compare_engines.ml for timing."
