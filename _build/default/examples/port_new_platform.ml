(* Porting SimBench to a new platform (Section II-C of the paper: "porting
   to a new platform is straightforward — each platform library is made up
   of around 200 lines of C").

   Here the platform support package is a record: this example defines
   "sbp-big", a board with 64 MiB of RAM, a much larger page-mapped region
   and a bigger scratch arena, and runs the memory-system benchmarks on it.
   The benchmarks themselves are untouched — exactly the paper's portability
   claim.

     dune exec examples/port_new_platform.exe *)

let sbp_big =
  {
    Simbench.Platform.sbp_ref with
    Simbench.Platform.name = "sbp-big";
    ram_size = 64 * 1024 * 1024;
    (* a larger cold region: 4096 pages of VA, still aliasing the scratch *)
    cold_region_pages = 4096;
    scratch_pages = 128;
    (* move the benchmark arenas up: this board has more headroom *)
    scratch_base = 0x0200_0000;
    heap_base = 0x0280_0000;
  }

let () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.dbt arch in
  Printf.printf "Running the memory-system benchmarks on platform %S:\n\n"
    sbp_big.Simbench.Platform.name;
  List.iter
    (fun bench ->
      let reference =
        Simbench.Harness.run ~platform:Simbench.Platform.sbp_ref ~scale:20_000
          ~support ~engine bench
      in
      let ported =
        Simbench.Harness.run ~platform:sbp_big ~scale:20_000 ~support ~engine bench
      in
      Printf.printf "  %-24s sbp-ref %.4fs   sbp-big %.4fs  (iters %d)\n"
        bench.Simbench.Bench.name reference.Simbench.Harness.kernel_seconds
        ported.Simbench.Harness.kernel_seconds ported.Simbench.Harness.iters)
    (Simbench.Suite.by_category Simbench.Category.Memory_system);
  print_newline ();
  print_endline
    "No benchmark changed: only the platform record did.  The Cold Memory\n\
     region doubled (4096 pages), so each iteration performs twice the page\n\
     walks on the ported board.";
  (* sanity: the cold benchmark really saw the larger region *)
  let o =
    Simbench.Harness.run ~platform:sbp_big ~iters:4 ~support
      ~engine:(Simbench.Engines.interp arch)
      Simbench.Suite.cold_memory_access
  in
  let kp = Option.get o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf in
  Printf.printf "cold accesses per run at 4 iterations: %d loads, %d TLB misses\n"
    (Sb_sim.Perf.get kp Sb_sim.Perf.Loads)
    (Sb_sim.Perf.get kp Sb_sim.Perf.Tlb_miss)
