(* SimBench benchmark harness.

   Usage:
     bench/main.exe                 - regenerate every paper table/figure
     bench/main.exe fig3 fig7       - selected experiments only
     bench/main.exe --quick [...]   - cheap settings (CI smoke)
     bench/main.exe --bechamel      - Bechamel micro-benchmarks of the
                                      engine hot paths (one Test per suite
                                      category, plus workloads)

   Every experiment prints the same rows/series the paper reports; see
   EXPERIMENTS.md for the expected shapes and the recorded run. *)

(* ablation configs share the scale/repeats of the main experiments *)
let abl (config : Sb_report.Experiments.config) =
  {
    Sb_report.Ablations.scale = config.Sb_report.Experiments.scale;
    repeats = config.Sb_report.Experiments.repeats;
  }

let experiments =
  [
    ("fig2", fun config -> Sb_report.Experiments.fig2 ~config ());
    ("fig3", fun config -> Sb_report.Experiments.fig3 ~config ());
    ("fig4", fun _ -> Sb_report.Experiments.fig4 ());
    ("fig5", fun _ -> Sb_report.Experiments.fig5 ());
    ("fig6", fun config -> Sb_report.Experiments.fig6 ~config ());
    ("fig7", fun config -> Sb_report.Experiments.fig7 ~config ());
    ("fig8", fun config -> Sb_report.Experiments.fig8 ~config ());
    ("ext", fun config -> Sb_report.Experiments.extensions ~config ());
    ("abl-chain", fun config -> Sb_report.Ablations.chaining ~config:(abl config) ());
    ("abl-tlb", fun config -> Sb_report.Ablations.page_cache ~config:(abl config) ());
    ("abl-opt", fun config -> Sb_report.Ablations.optimiser ~config:(abl config) ());
    ("abl-vmexit", fun config -> Sb_report.Ablations.vm_exit ~config:(abl config) ());
    ("abl-predecode", fun config -> Sb_report.Ablations.predecode ~config:(abl config) ());
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  (* iteration counts chosen so the timed kernel dominates the ~20ms of
     per-run machine construction and guest assembly *)
  let run_bench engine bench ~iters =
    Staged.stage (fun () ->
        ignore (Simbench.Harness.run ~iters ~support ~engine bench))
  in
  let engine_test label engine bench ~iters =
    Test.make ~name:label (run_bench engine bench ~iters)
  in
  let dbt = Simbench.Engines.dbt arch in
  let interp = Simbench.Engines.interp arch in
  Test.make_grouped ~name:"simbench"
    [
      Test.make_grouped ~name:"code-generation"
        [
          engine_test "small-blocks/dbt" dbt Simbench.Suite.small_blocks ~iters:2_000;
          engine_test "small-blocks/interp" interp Simbench.Suite.small_blocks
            ~iters:2_000;
        ];
      Test.make_grouped ~name:"control-flow"
        [
          engine_test "intra-direct/dbt" dbt Simbench.Suite.intra_page_direct
            ~iters:100_000;
          engine_test "intra-direct/interp" interp Simbench.Suite.intra_page_direct
            ~iters:100_000;
        ];
      Test.make_grouped ~name:"exceptions"
        [
          engine_test "syscall/dbt" dbt Simbench.Suite.system_call ~iters:50_000;
          engine_test "syscall/interp" interp Simbench.Suite.system_call ~iters:50_000;
        ];
      Test.make_grouped ~name:"memory"
        [
          engine_test "hot/dbt" dbt Simbench.Suite.hot_memory_access ~iters:50_000;
          engine_test "hot/interp" interp Simbench.Suite.hot_memory_access ~iters:50_000;
        ];
      Test.make_grouped ~name:"workloads"
        [
          Test.make ~name:"sjeng/dbt"
            (Staged.stage (fun () ->
                 ignore
                   (Sb_workloads.Workloads.run ~iters:50 ~support ~engine:dbt
                      Sb_workloads.Workloads.sjeng)));
        ];
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "## %s\n" measure;
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-45s %14.2f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let bechamel = List.mem "--bechamel" args in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if bechamel then run_bechamel ()
  else begin
    let config =
      if quick then Sb_report.Experiments.quick_config
      else Sb_report.Experiments.default_config
    in
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> Some (name, f)
            | None ->
              Printf.eprintf "unknown experiment %S (have: %s)\n" name
                (String.concat ", " (List.map fst experiments));
              None)
          names
    in
    List.iter
      (fun (name, f) ->
        Printf.printf "=== %s ===\n%!" name;
        let t0 = Unix.gettimeofday () in
        print_string (f config);
        Printf.printf "\n[%s generated in %.1fs]\n\n%!" name
          (Unix.gettimeofday () -. t0))
      to_run
  end
