(* Tests for the symbolic translation validator: a clean run over every
   registered DBT version on both ISAs, enumeration-coverage assertions,
   and mutation tests proving that a deliberately broken emitter is caught
   and attributed to the offending encoding class, version and state
   component. *)

module Tv = Sb_analysis.Tv
module Encoding = Sb_isa.Encoding
module Uop = Sb_isa.Uop

let arches = [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

let with_mutation f body =
  Sb_dbt.Emission.set_mutation (Some f);
  Fun.protect ~finally:(fun () -> Sb_dbt.Emission.set_mutation None) body

let with_threaded_mutation f body =
  Sb_dbt.Emission.set_threaded_mutation (Some f);
  Fun.protect
    ~finally:(fun () -> Sb_dbt.Emission.set_threaded_mutation None)
    body

(* ---------------- clean validation ---------------- *)

let test_clean_all_versions () =
  List.iter
    (fun arch ->
      let r = Tv.run ~arch () in
      (match r.Tv.rep_divergences with
      | [] -> ()
      | d :: _ ->
        Alcotest.failf "%s dbt %s: %s (%s): %s" d.Tv.arch d.Tv.version d.Tv.cls
          d.Tv.case d.Tv.detail);
      Alcotest.(check bool)
        (r.Tv.rep_arch ^ " strict-clean")
        true (Tv.ok ~strict:true r);
      Alcotest.(check int)
        (r.Tv.rep_arch ^ " all versions covered")
        (List.length Sb_dbt.Version.all)
        (List.length r.Tv.rep_versions))
    arches

let test_enumeration_tiles_selector_space () =
  List.iter
    (fun arch ->
      let set = Tv.encodings arch in
      let gaps, overlaps = Encoding.gaps set in
      Alcotest.(check (list int))
        (Sb_isa.Arch_sig.arch_id_name arch ^ " gaps")
        [] gaps;
      Alcotest.(check (list int))
        (Sb_isa.Arch_sig.arch_id_name arch ^ " overlaps")
        [] overlaps;
      (* every class is either skipped with a reason or carries cases *)
      List.iter
        (fun (c : Encoding.cls) ->
          if c.Encoding.skip = None && c.Encoding.cases = [] then
            Alcotest.failf "class %s has no cases and no skip reason"
              c.Encoding.name)
        set.Encoding.classes)
    arches

let test_every_class_checked () =
  List.iter
    (fun arch ->
      let r = Tv.run ~arch ~versions:[ Sb_dbt.Version.baseline_name ] () in
      List.iter
        (fun c ->
          match c.Tv.cov_skip with
          | Some _ -> ()
          | None ->
            if c.Tv.cov_checks < 2 * c.Tv.cov_cases then
              Alcotest.failf "%s %s: %d cases but only %d checks"
                r.Tv.rep_arch c.Tv.cov_cls c.Tv.cov_cases c.Tv.cov_checks)
        r.Tv.rep_coverage)
    arches

(* ---------------- mutation tests ---------------- *)

(* A wrong-operation emitter: every non-flag-setting add comes out as a
   subtract.  The validator must report the first affected encoding class
   under the first version checked, pinned to the destination register. *)
let test_mutation_wrong_op_caught () =
  let mutate = function
    | Uop.Alu ({ op = Uop.Add; rd = Some _; set_flags = false; _ } as a) ->
      Uop.Alu { a with op = Uop.Sub }
    | u -> u
  in
  with_mutation mutate (fun () ->
      List.iter
        (fun arch ->
          let r = Tv.run ~arch ~versions:[ "v1.7.0"; "v2.6.0" ] () in
          match r.Tv.rep_divergences with
          | [] -> Alcotest.failf "%s: broken emitter not caught" r.Tv.rep_arch
          | d :: _ ->
            Alcotest.(check bool) "not ok" false (Tv.ok r);
            Alcotest.(check string) "first version" "v1.7.0" d.Tv.version;
            Alcotest.(check string) "closure component" "closure"
              d.Tv.component;
            (* both ISAs enumerate plain register add first among the
               affected classes *)
            Alcotest.(check bool)
              (Printf.sprintf "class %s is an add form" d.Tv.cls)
              true
              (d.Tv.cls = "add" || d.Tv.cls = "add_rr");
            Alcotest.(check bool)
              (Printf.sprintf "component names a register: %s" d.Tv.detail)
              true
              (String.length d.Tv.detail >= 8
              && String.sub d.Tv.detail 0 8 = "register"))
        arches)

(* A dropped-effect emitter: stores vanish.  The divergence must be in the
   ordered effect sequence, not the register file. *)
let test_mutation_dropped_store_caught () =
  let mutate = function Uop.Store _ -> Uop.Nop | u -> u in
  with_mutation mutate (fun () ->
      List.iter
        (fun arch ->
          let r = Tv.run ~arch ~versions:[ "v2.6.0" ] () in
          match r.Tv.rep_divergences with
          | [] -> Alcotest.failf "%s: dropped store not caught" r.Tv.rep_arch
          | d :: _ ->
            Alcotest.(check bool)
              (Printf.sprintf "component is an effect: %s" d.Tv.detail)
              true
              (String.length d.Tv.detail >= 6
              && String.sub d.Tv.detail 0 6 = "effect"))
        arches)

(* A broken threaded emitter only: the closure model stays correct, so the
   divergence must be attributed to the threaded component — named by
   encoding class, version and component. *)
let test_mutation_threaded_only_caught () =
  let mutate = function
    | Uop.Alu ({ op = Uop.Add; rd = Some _; set_flags = false; _ } as a) ->
      Uop.Alu { a with op = Uop.Sub }
    | u -> u
  in
  with_threaded_mutation mutate (fun () ->
      List.iter
        (fun arch ->
          let r = Tv.run ~arch ~versions:[ "v1.7.0"; "v2.7.0" ] () in
          match r.Tv.rep_divergences with
          | [] ->
            Alcotest.failf "%s: broken threaded emitter not caught"
              r.Tv.rep_arch
          | d :: _ ->
            Alcotest.(check bool) "not ok" false (Tv.ok r);
            (* the closure lowering is clean, so attribution must land on
               the threaded opstream *)
            Alcotest.(check bool)
              (Printf.sprintf "threaded component: %s" d.Tv.component)
              true
              (d.Tv.component = "threaded" || d.Tv.component = "threaded+mmu");
            Alcotest.(check bool)
              (Printf.sprintf "class %s is an add form" d.Tv.cls)
              true
              (d.Tv.cls = "add" || d.Tv.cls = "add_rr");
            Alcotest.(check bool) "version named" true
              (d.Tv.version = "v1.7.0" || d.Tv.version = "v2.7.0"))
        arches)

(* A dropped threaded store: the opstream loses the effect while the
   closure model keeps it. *)
let test_mutation_threaded_dropped_store_caught () =
  let mutate = function Uop.Store _ -> Uop.Nop | u -> u in
  with_threaded_mutation mutate (fun () ->
      let r = Tv.run ~arch:Sb_isa.Arch_sig.Sba ~versions:[ "v2.7.0" ] () in
      match r.Tv.rep_divergences with
      | [] -> Alcotest.fail "dropped threaded store not caught"
      | d :: _ ->
        Alcotest.(check bool)
          (Printf.sprintf "threaded component: %s" d.Tv.component)
          true
          (d.Tv.component = "threaded" || d.Tv.component = "threaded+mmu");
        Alcotest.(check bool)
          (Printf.sprintf "component is an effect: %s" d.Tv.detail)
          true
          (String.length d.Tv.detail >= 6
          && String.sub d.Tv.detail 0 6 = "effect"))

(* The report must carry the offending encoding bytes so the finding is
   reproducible from the JSON alone. *)
let test_mutation_reports_bytes () =
  let mutate = function
    | Uop.Alu ({ op = Uop.Xor; rd = Some _; set_flags = false; _ } as a) ->
      Uop.Alu { a with op = Uop.Orr }
    | u -> u
  in
  with_mutation mutate (fun () ->
      let r = Tv.run ~arch:Sb_isa.Arch_sig.Sba ~versions:[ "v1.7.0" ] () in
      match r.Tv.rep_divergences with
      | [] -> Alcotest.fail "xor mutation not caught"
      | d :: _ ->
        Alcotest.(check bool) "bytes present" true (String.length d.Tv.bytes > 0);
        String.iter
          (fun c ->
            match c with
            | '0' .. '9' | 'a' .. 'f' -> ()
            | _ -> Alcotest.failf "non-hex byte rendering %S" d.Tv.bytes)
          d.Tv.bytes)

(* ---------------- check_case unit ---------------- *)

let sba_add_r0_r1_r2 =
  (* add r0, r1, r2 under SBA-32 field placement *)
  let w =
    (Sb_arch_sba.Opcodes.add lsl 26) lor (0 lsl 22) lor (1 lsl 18)
    lor (2 lsl 14)
  in
  [ w land 0xFF; (w lsr 8) land 0xFF; (w lsr 16) land 0xFF; (w lsr 24) land 0xFF ]

let test_check_case_direct () =
  let config = Sb_dbt.Config.default in
  (match
     Tv.check_case (module Sb_arch_sba.Arch) ~config sba_add_r0_r1_r2
   with
  | None -> ()
  | Some (component, detail) ->
    Alcotest.failf "clean add diverged (%s): %s" component detail);
  let mutate = function
    | Uop.Alu ({ op = Uop.Add; rd = Some _; set_flags = false; _ } as a) ->
      Uop.Alu { a with op = Uop.Sub }
    | u -> u
  in
  with_mutation mutate (fun () ->
      match
        Tv.check_case (module Sb_arch_sba.Arch) ~config sba_add_r0_r1_r2
      with
      | None -> Alcotest.fail "mutated add not caught"
      | Some (component, detail) ->
        Alcotest.(check string) "closure component" "closure" component;
        Alcotest.(check bool)
          (Printf.sprintf "names r0: %s" detail)
          true
          (String.length detail >= 11
          && String.sub detail 0 11 = "register r0"));
  with_threaded_mutation mutate (fun () ->
      match
        Tv.check_case (module Sb_arch_sba.Arch) ~config sba_add_r0_r1_r2
      with
      | None -> Alcotest.fail "threaded-mutated add not caught"
      | Some (component, detail) ->
        Alcotest.(check string) "threaded component" "threaded" component;
        Alcotest.(check bool)
          (Printf.sprintf "names r0: %s" detail)
          true
          (String.length detail >= 11
          && String.sub detail 0 11 = "register r0"))

(* ---------------- whole-image sweep ---------------- *)

let test_sweep_program_clean () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let bench =
    match Simbench.Suite.find "Small Blocks" with
    | Some b -> b
    | None -> Alcotest.fail "Small Blocks bench missing"
  in
  let program =
    Simbench.Rt.program ~support ~platform:Simbench.Platform.sbp_ref ~bench
  in
  let image = program.Sb_asm.Program.image in
  let base = program.Sb_asm.Program.base in
  let read8 a =
    let i = a - base in
    if i >= 0 && i < Bytes.length image then Char.code (Bytes.get image i)
    else 0
  in
  match
    Tv.sweep_program ~arch ~read8 ~base ~len:(Bytes.length image) ()
  with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "pass violation in shipped image: %s"
      (Sb_analysis.Ir_check.message v)

(* ---------------- JSON ---------------- *)

let test_json_shape () =
  let r = Tv.run ~arch:Sb_isa.Arch_sig.Vlx ~versions:[ "v2.0.0" ] () in
  match Sb_util.Json.of_string (Sb_util.Json.to_string (Tv.to_json r)) with
  | Ok (Sb_util.Json.Obj fields) ->
    let has k = List.mem_assoc k fields in
    List.iter
      (fun k ->
        Alcotest.(check bool) ("field " ^ k) true (has k))
      [ "schema"; "arch"; "versions"; "coverage"; "divergences"; "gaps" ];
    Alcotest.(check bool)
      "schema id" true
      (List.assoc "schema" fields
      = Sb_util.Json.String Tv.json_schema)
  | _ -> Alcotest.fail "tv JSON did not round-trip through the parser"

let () =
  Alcotest.run "sb_analysis tv"
    [
      ( "translation-validation",
        [
          Alcotest.test_case "clean across all versions" `Quick
            test_clean_all_versions;
          Alcotest.test_case "enumeration tiles selector space" `Quick
            test_enumeration_tiles_selector_space;
          Alcotest.test_case "every class checked" `Quick
            test_every_class_checked;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "wrong-op emitter caught" `Quick
            test_mutation_wrong_op_caught;
          Alcotest.test_case "dropped store caught" `Quick
            test_mutation_dropped_store_caught;
          Alcotest.test_case "threaded-only breakage attributed" `Quick
            test_mutation_threaded_only_caught;
          Alcotest.test_case "threaded dropped store caught" `Quick
            test_mutation_threaded_dropped_store_caught;
          Alcotest.test_case "reports offending bytes" `Quick
            test_mutation_reports_bytes;
          Alcotest.test_case "check_case direct" `Quick test_check_case_direct;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "shipped image is pass-clean" `Quick
            test_sweep_program_clean;
        ] );
      ( "json",
        [ Alcotest.test_case "schema and fields" `Quick test_json_shape ] );
    ]
