(* Integration tests for the SimBench suite itself: every benchmark runs to
   completion on every engine and both guest ISAs, and its perf counters
   prove the targeted operation actually happened at the advertised rate. *)

module Perf = Sb_sim.Perf
module H = Simbench.Harness

let scale = 400_000 (* tiny iteration counts: correctness, not timing *)

let get o c = Perf.get (Option.get o.H.result.Sb_sim.Run_result.kernel_perf) c

let run ~arch ~engine bench =
  let support = Simbench.Engines.support arch in
  H.run ~scale ~support ~engine bench

(* counter expectations per benchmark: at least [iters] tested operations
   must land in the kernel phase *)
let expectation ~arch ~engine_label bench_name (o : H.outcome) =
  let iters = o.H.iters in
  let at_least c n = get o c >= n in
  match bench_name with
  | "Small Blocks" | "Large Blocks" ->
    if engine_label = "detailed" then
      (* the detailed model re-decodes every instruction and caches no
         translations, so there is nothing to invalidate; the rewrites still
         happen as stores *)
      at_least Perf.Stores iters
    else
      (* the first iteration rewrites code that has never been executed, so
         there is nothing cached to invalidate yet *)
      at_least Perf.Smc_invalidations (iters - 1)
  | "Inter-Page Direct" | "Inter-Page Indirect" | "Intra-Page Direct"
  | "Intra-Page Indirect" ->
    at_least Perf.Branch_taken (iters * Simbench.Suite.inter_page_direct.Simbench.Bench.ops_per_iter)
  | "Data Access Fault" -> at_least Perf.Data_abort iters
  | "Instruction Access Fault" -> at_least Perf.Prefetch_abort iters
  | "Undefined Instruction" -> at_least Perf.Undef_insn iters
  | "System Call" -> at_least Perf.Svc_taken iters
  | "External Software Interrupt" -> at_least Perf.Irq_taken iters
  | "Memory Mapped Device" -> at_least Perf.Io_reads (4 * iters)
  | "Coprocessor Access" -> (
    match arch with
    | Sb_isa.Arch_sig.Sba -> at_least Perf.Cop_reads (4 * iters)
    | Sb_isa.Arch_sig.Vlx -> at_least Perf.Cop_writes (4 * iters))
  | "Cold Memory Access" -> at_least Perf.Loads (iters * 2048)
  | "Hot Memory Access" -> at_least Perf.Loads (iters * 16)
  | "Nonprivileged Access" -> (
    match arch with
    | Sb_isa.Arch_sig.Sba -> at_least Perf.User_accesses (16 * iters)
    | Sb_isa.Arch_sig.Vlx -> get o Perf.User_accesses = 0)
  | "TLB Eviction" -> at_least Perf.Tlb_inv_page_ops iters
  | "TLB Flush" -> at_least Perf.Tlb_flush_ops iters
  | _ -> false

let engines_for arch =
  [
    ("interp", Simbench.Engines.interp arch);
    ("dbt", Simbench.Engines.dbt arch);
    ("detailed", Simbench.Engines.detailed arch);
    ("virt", Simbench.Engines.virt arch);
    ("native", Simbench.Engines.native arch);
  ]

let test_bench_on_engines arch bench () =
  List.iter
    (fun (label, engine) ->
      let o = run ~arch ~engine bench in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s tested op happened" bench.Simbench.Bench.name label)
        true
        (expectation ~arch ~engine_label:label bench.Simbench.Bench.name o);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s kernel time measured" bench.Simbench.Bench.name label)
        true (o.H.kernel_seconds >= 0.);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s kernel insns positive" bench.Simbench.Bench.name label)
        true (o.H.kernel_insns > 0))
    (engines_for arch)

let suite_cases arch =
  List.map
    (fun bench ->
      Alcotest.test_case bench.Simbench.Bench.name `Quick
        (test_bench_on_engines arch bench))
    Simbench.Suite.all

(* ------------------------------------------------------------------ *)

let test_suite_registry () =
  Alcotest.(check int) "eighteen benchmarks" 18 (List.length Simbench.Suite.all);
  Alcotest.(check int) "five categories" 5 (List.length Simbench.Category.all);
  List.iter
    (fun category ->
      Alcotest.(check bool)
        (Simbench.Category.name category ^ " non-empty")
        true
        (Simbench.Suite.by_category category <> []))
    Simbench.Category.all;
  Alcotest.(check bool) "find by name" true (Simbench.Suite.find "small blocks" <> None);
  Alcotest.(check bool) "daggers present" true
    (List.exists (fun b -> b.Simbench.Bench.platform_specific) Simbench.Suite.all)

let test_default_iters_match_paper () =
  let expect =
    [
      ("Small Blocks", 100_000);
      ("Large Blocks", 500_000);
      ("Inter-Page Direct", 100_000_000);
      ("Inter-Page Indirect", 250_000);
      ("Intra-Page Direct", 500_000_000);
      ("Intra-Page Indirect", 200_000);
      ("Data Access Fault", 25_000_000);
      ("Instruction Access Fault", 25_000_000);
      ("Undefined Instruction", 50_000_000);
      ("System Call", 50_000_000);
      ("External Software Interrupt", 20_000_000);
      ("Memory Mapped Device", 400_000_000);
      ("Coprocessor Access", 250_000_000);
    ]
  in
  List.iter
    (fun (name, iters) ->
      match Simbench.Suite.find name with
      | Some b -> Alcotest.(check int) name iters b.Simbench.Bench.default_iters
      | None -> Alcotest.failf "missing %s" name)
    expect

let test_harness_scaling () =
  let arch = Sb_isa.Arch_sig.Sba in
  let o =
    H.run ~scale:10_000_000
      ~support:(Simbench.Engines.support arch)
      ~engine:(Simbench.Engines.interp arch)
      Simbench.Suite.system_call
  in
  Alcotest.(check int) "floor of 10 iterations" 10 o.H.iters;
  let o =
    H.run ~iters:25
      ~support:(Simbench.Engines.support arch)
      ~engine:(Simbench.Engines.interp arch)
      Simbench.Suite.system_call
  in
  Alcotest.(check int) "explicit iters" 25 o.H.iters;
  Alcotest.(check int) "tested ops follow iters" 25 o.H.tested_ops

let test_density_positive () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.interp arch in
  List.iter
    (fun bench ->
      let o = H.run ~scale ~support ~engine bench in
      let d = H.density o in
      Alcotest.(check bool)
        (bench.Simbench.Bench.name ^ " density in (0, 1]")
        true
        (d > 0. && d <= 1.))
    Simbench.Suite.all

let test_page_table_runtime () =
  (* the generated table-builder must produce exactly the mappings the
     walker expects: run any benchmark, then inspect guest RAM *)
  let arch = Sb_isa.Arch_sig.Sba in
  let p = Simbench.Platform.sbp_ref in
  let machine = Simbench.Platform.machine p () in
  Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev 10;
  let program =
    Simbench.Rt.program
      ~support:(Simbench.Engines.support arch)
      ~platform:p ~bench:Simbench.Suite.system_call
  in
  Sb_sim.Machine.load_program machine program;
  let result =
    Sb_sim.Engine.run (Simbench.Engines.interp arch) ~max_insns:10_000_000 machine
  in
  Alcotest.(check bool) "completed" true
    (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted);
  let ram = Sb_mem.Bus.ram machine.Sb_sim.Machine.bus in
  let read32 = Sb_mem.Phys_mem.read32 ram in
  let ttbr = p.Simbench.Platform.page_table_base in
  (* identity section for RAM base *)
  (match Sb_mmu.Walker.walk ~read32 ~ttbr ~va:0x1234 with
  | Ok m ->
    Alcotest.(check int) "identity" 0x1000 m.Sb_mmu.Walker.pa_page;
    Alcotest.(check bool) "one level" true m.Sb_mmu.Walker.from_section
  | Error _ -> Alcotest.fail "RAM must be mapped");
  (* device section *)
  (match Sb_mmu.Walker.walk ~read32 ~ttbr ~va:p.Simbench.Platform.uart_base with
  | Ok m -> Alcotest.(check bool) "device xn" true m.Sb_mmu.Walker.xn
  | Error _ -> Alcotest.fail "devices must be mapped");
  (* cold region: two-level, aliasing scratch *)
  (match
     Sb_mmu.Walker.walk ~read32 ~ttbr ~va:p.Simbench.Platform.cold_region_va
   with
  | Ok m ->
    Alcotest.(check bool) "two level" true (m.Sb_mmu.Walker.levels = 2);
    Alcotest.(check int) "aliases scratch" p.Simbench.Platform.scratch_base
      m.Sb_mmu.Walker.pa_page
  | Error _ -> Alcotest.fail "cold region must be mapped");
  (* wrap-around aliasing within the cold region *)
  (match
     Sb_mmu.Walker.walk ~read32 ~ttbr
       ~va:
         (p.Simbench.Platform.cold_region_va
         + (p.Simbench.Platform.scratch_pages * 4096))
   with
  | Ok m ->
    Alcotest.(check int) "alias wraps" p.Simbench.Platform.scratch_base
      m.Sb_mmu.Walker.pa_page
  | Error _ -> Alcotest.fail "cold region page must be mapped");
  (* user page is user-accessible *)
  (match
     Sb_mmu.Walker.translate ~read32 ~ttbr ~va:p.Simbench.Platform.user_page_va
       ~kind:Sb_mmu.Access.Read ~priv:Sb_mmu.Access.User
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "user page must be user-readable");
  (* fault va really is unmapped *)
  match Sb_mmu.Walker.walk ~read32 ~ttbr ~va:p.Simbench.Platform.fault_va with
  | Error Sb_mmu.Access.Translation -> ()
  | _ -> Alcotest.fail "fault va must be unmapped"

let test_sbp_mini_platform () =
  (* the whole suite must run unmodified on the constrained board *)
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let engine = Simbench.Engines.interp arch in
  List.iter
    (fun bench ->
      let o =
        H.run ~platform:Simbench.Platform.sbp_mini ~scale ~support ~engine bench
      in
      Alcotest.(check bool)
        (bench.Simbench.Bench.name ^ " on sbp-mini")
        true
        (o.H.kernel_insns > 0))
    Simbench.Suite.all;
  (* the cold benchmark really saw the smaller region *)
  let o =
    H.run ~platform:Simbench.Platform.sbp_mini ~iters:2 ~support ~engine
      Simbench.Suite.cold_memory_access
  in
  let loads = get o Perf.Loads in
  Alcotest.(check bool)
    (Printf.sprintf "quarter-size region (%d loads)" loads)
    true
    (loads >= 2 * 512 && loads < 2 * 600)

let test_support_constants () =
  let (module Sba : Simbench.Support.SUPPORT) =
    Simbench.Engines.support Sb_isa.Arch_sig.Sba
  in
  let (module Vlx : Simbench.Support.SUPPORT) =
    Simbench.Engines.support Sb_isa.Arch_sig.Vlx
  in
  Alcotest.(check bool) "sba nonpriv" true Sba.nonpriv_supported;
  Alcotest.(check bool) "vlx nonpriv" false Vlx.nonpriv_supported;
  Alcotest.(check int) "sba undef skip" 4 Sba.undef_skip_bytes;
  Alcotest.(check int) "vlx ud2 skip" 2 Vlx.undef_skip_bytes

let test_fig4_features () =
  (* the feature matrix distinguishes the engines the way Figure 4 does *)
  let feature engine key =
    List.assoc key (Sb_sim.Engine.features engine)
  in
  let arch = Sb_isa.Arch_sig.Sba in
  Alcotest.(check string) "dbt codegen" "Threaded Code"
    (feature (Simbench.Engines.dbt arch) "Code Generation");
  Alcotest.(check string) "interp codegen" "None"
    (feature (Simbench.Engines.interp arch) "Code Generation");
  Alcotest.(check string) "virt undef" "Hypercall"
    (feature (Simbench.Engines.virt arch) "Undefined Instruction");
  Alcotest.(check string) "native direct" "Direct"
    (feature (Simbench.Engines.native arch) "Undefined Instruction");
  Alcotest.(check string) "dbt interrupts" "Block Boundaries"
    (feature (Simbench.Engines.dbt arch) "Interrupts")

let test_extensions () =
  List.iter
    (fun arch ->
      let support = Simbench.Engines.support arch in
      List.iter
        (fun (label, engine) ->
          (* nested exception: one svc + one data abort per iteration *)
          let o =
            H.run ~scale ~support ~engine Simbench.Suite_ext.nested_exception
          in
          Alcotest.(check bool)
            (Printf.sprintf "nested/%s svc+abort" label)
            true
            (get o Perf.Svc_taken >= o.H.iters && get o Perf.Data_abort >= o.H.iters);
          (* page-table modification: remaps must be observed *)
          let o =
            H.run ~iters:10 ~support ~engine
              Simbench.Suite_ext.page_table_modification
          in
          Alcotest.(check bool)
            (Printf.sprintf "ptmod/%s tlbi" label)
            true
            (get o Perf.Tlb_inv_page_ops >= 10);
          (* exception return: five returns per iteration *)
          let o =
            H.run ~scale ~support ~engine Simbench.Suite_ext.exception_return
          in
          Alcotest.(check bool)
            (Printf.sprintf "eret/%s" label)
            true
            (get o Perf.Svc_taken >= o.H.iters);
          (* context switch: two ASID writes are cop writes *)
          let o =
            H.run ~iters:50 ~support ~engine Simbench.Suite_ext.context_switch
          in
          Alcotest.(check bool)
            (Printf.sprintf "asid/%s" label)
            true
            (get o Perf.Cop_writes >= 50 && get o Perf.Loads >= 400))
        (engines_for arch))
    [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

let test_page_table_modification_observes_remap () =
  (* the marker loaded on the last iteration must match the frame the last
     PTE write installed: 10 iterations end on frame 0 (0xAAAA) *)
  List.iter
    (fun (label, engine) ->
      let arch = Sb_isa.Arch_sig.Sba in
      let p = Simbench.Platform.sbp_ref in
      let machine = Simbench.Platform.machine p () in
      Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev 10;
      let program =
        Simbench.Rt.program
          ~support:(Simbench.Engines.support arch)
          ~platform:p ~bench:Simbench.Suite_ext.page_table_modification
      in
      Sb_sim.Machine.load_program machine program;
      let result = Sb_sim.Engine.run engine ~max_insns:10_000_000 machine in
      Alcotest.(check bool) (label ^ " halted") true
        (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted);
      let observed =
        Sb_mem.Phys_mem.read32
          (Sb_mem.Bus.ram machine.Sb_sim.Machine.bus)
          (p.Simbench.Platform.scratch_base + (2 * 4096))
      in
      Alcotest.(check int) (label ^ " final marker observed") 0xAAAA observed)
    (engines_for Sb_isa.Arch_sig.Sba)

let test_asid_tagging_signature () =
  (* the Context Switch benchmark separates ASID-tagged implementations
     (DBT, virt: working set stays cached across switches) from untagged
     ones (detailed: full flush per switch) *)
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let walks engine =
    let o = H.run ~iters:500 ~support ~engine Simbench.Suite_ext.context_switch in
    get o Perf.Mmu_walks
  in
  let tagged = walks (Simbench.Engines.dbt arch) in
  let untagged = walks (Simbench.Engines.detailed arch) in
  Alcotest.(check bool)
    (Printf.sprintf "tagged (%d) walks far less than untagged (%d)" tagged untagged)
    true
    (untagged > 20 * max 1 tagged)

let test_front_cache_signature () =
  (* the dispatch front caches must fire on indirect control flow (which
     cannot chain, so every taken branch goes through block lookup) and
     must not change what executes: the retired-instruction stream is
     identical with the knob on and off *)
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let bench = Simbench.Suite.intra_page_indirect in
  let probe engine =
    let o = H.run ~iters:2_000 ~support ~engine bench in
    (get o Perf.Front_cache_hits, Perf.get o.H.result.Sb_sim.Run_result.perf Perf.Insns)
  in
  let dbt_on, dbt_insns =
    probe (Simbench.Engines.dbt_configured arch Sb_dbt.Config.default)
  in
  let dbt_off, dbt_insns' =
    probe
      (Simbench.Engines.dbt_configured arch
         { Sb_dbt.Config.default with Sb_dbt.Config.front_cache = false })
  in
  Alcotest.(check bool)
    (Printf.sprintf "dbt front cache fires (%d hits)" dbt_on)
    true (dbt_on > 1_000);
  Alcotest.(check int) "dbt: off means zero hits" 0 dbt_off;
  Alcotest.(check int) "dbt: same instruction stream" dbt_insns dbt_insns';
  let interp_on, i_insns =
    probe (Simbench.Engines.interp_configured arch Sb_interp.Interp.Config.default)
  in
  let interp_off, i_insns' =
    probe
      (Simbench.Engines.interp_configured arch
         { Sb_interp.Interp.Config.default with Sb_interp.Interp.Config.front_cache = false })
  in
  Alcotest.(check bool)
    (Printf.sprintf "interp front cache fires (%d hits)" interp_on)
    true (interp_on > 1_000);
  Alcotest.(check int) "interp: off means zero hits" 0 interp_off;
  Alcotest.(check int) "interp: same instruction stream" i_insns i_insns'

(* The token-threaded opstream backend must retire exactly the same
   instruction stream as the closure backend it replaced, on every
   benchmark of the suite.  (The interpreter is not a valid baseline here:
   the DBT retires in block units, so the kernel-phase boundary attributes
   a handful of extra instructions to the DBT's kernel window on every
   benchmark — a pre-existing property shared by both backends.) *)
let test_kernel_insns_identity arch () =
  let threaded = Simbench.Engines.dbt arch in
  let closure =
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.threaded = false }
  in
  List.iter
    (fun bench ->
      let insns engine = (run ~arch ~engine bench).H.kernel_insns in
      Alcotest.(check int)
        (bench.Simbench.Bench.name ^ " threaded vs closure")
        (insns closure) (insns threaded))
    Simbench.Suite.all

let () =
  Alcotest.run "simbench"
    [
      ("suite-sba", suite_cases Sb_isa.Arch_sig.Sba);
      ("suite-vlx", suite_cases Sb_isa.Arch_sig.Vlx);
      ( "kernel-insns",
        [
          Alcotest.test_case "sba threaded/closure identical" `Quick
            (test_kernel_insns_identity Sb_isa.Arch_sig.Sba);
          Alcotest.test_case "vlx threaded/closure identical" `Quick
            (test_kernel_insns_identity Sb_isa.Arch_sig.Vlx);
        ] );
      ( "registry",
        [
          Alcotest.test_case "structure" `Quick test_suite_registry;
          Alcotest.test_case "figure 3 iterations" `Quick test_default_iters_match_paper;
          Alcotest.test_case "harness scaling" `Quick test_harness_scaling;
          Alcotest.test_case "densities" `Quick test_density_positive;
          Alcotest.test_case "support constants" `Quick test_support_constants;
          Alcotest.test_case "sbp-mini platform" `Quick test_sbp_mini_platform;
          Alcotest.test_case "figure 4 features" `Quick test_fig4_features;
        ] );
      ( "runtime",
        [ Alcotest.test_case "guest-built page tables" `Quick test_page_table_runtime ] );
      ( "extensions",
        [
          Alcotest.test_case "all engines" `Quick test_extensions;
          Alcotest.test_case "remap observed" `Quick
            test_page_table_modification_observes_remap;
          Alcotest.test_case "asid tagging distinguishes engines" `Quick
            test_asid_tagging_signature;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "front caches fire and are transparent" `Quick
            test_front_cache_signature;
        ] );
    ]
